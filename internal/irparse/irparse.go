// Package irparse parses the textual IR format emitted by
// ir.Module.String back into an ir.Module; printing and parsing
// round-trip. The format is LLVM-flavoured:
//
//	type %pair = {i32, i32}
//	@tab = constant [2 x i32] [10, 20]
//	declare i32 @ext(i32 %x) readonly
//	func i32 @main(i32 %a) {
//	entry:
//	  %t = add i32 %a, 5
//	  ret i32 %t
//	}
package irparse

import (
	"fmt"
	"strconv"
	"strings"

	"rolag/internal/ir"
)

// ParseModule parses a textual module.
func ParseModule(src string) (*ir.Module, error) {
	p := &parser{lex: newLexer(src), mod: ir.NewModule("parsed")}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.mod.Verify(); err != nil {
		return nil, fmt.Errorf("irparse: parsed module does not verify: %w", err)
	}
	return p.mod, nil
}

// Error is a parse error with a line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("irparse: line %d: %s", e.Line, e.Msg) }

type tokKind int

const (
	tEOF tokKind = iota
	tWord
	tLocal  // %name
	tGlobal // @name
	tInt
	tFloat
	tPunct
)

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	line int
}

type lexer struct {
	src  string
	off  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) next() (token, error) {
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == '\n' {
			lx.line++
			lx.off++
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			lx.off++
			continue
		}
		if c == ';' { // comment to end of line
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.off++
			}
			continue
		}
		break
	}
	if lx.off >= len(lx.src) {
		return token{kind: tEOF, line: lx.line}, nil
	}
	start := lx.off
	c := lx.src[lx.off]
	switch {
	case c == '%' || c == '@':
		lx.off++
		for lx.off < len(lx.src) && isWordByte(lx.src[lx.off]) {
			lx.off++
		}
		kind := tLocal
		if c == '@' {
			kind = tGlobal
		}
		return token{kind: kind, text: lx.src[start+1 : lx.off], line: lx.line}, nil
	case isWordByte(c) && !isDigitByte(c) && c != '-' && c != '+':
		for lx.off < len(lx.src) && isWordByte(lx.src[lx.off]) {
			lx.off++
		}
		return token{kind: tWord, text: lx.src[start:lx.off], line: lx.line}, nil
	case isDigitByte(c) || c == '-' || c == '+':
		lx.off++
		isFloat := false
		for lx.off < len(lx.src) {
			d := lx.src[lx.off]
			if isDigitByte(d) {
				lx.off++
				continue
			}
			if d == '.' || d == 'e' || d == 'E' || d == 'n' || d == 'a' || d == 'f' || d == 'i' {
				// floats, nan, inf
				isFloat = true
				lx.off++
				continue
			}
			if (d == '-' || d == '+') && (lx.src[lx.off-1] == 'e' || lx.src[lx.off-1] == 'E') {
				lx.off++
				continue
			}
			break
		}
		text := lx.src[start:lx.off]
		if !isFloat {
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return token{}, &Error{Line: lx.line, Msg: "bad integer " + text}
			}
			return token{kind: tInt, text: text, i: v, line: lx.line}, nil
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, &Error{Line: lx.line, Msg: "bad float " + text}
		}
		return token{kind: tFloat, text: text, f: v, line: lx.line}, nil
	default:
		lx.off++
		return token{kind: tPunct, text: string(c), line: lx.line}, nil
	}
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }

type parser struct {
	lex    *lexer
	tok    token
	peeked *token
	mod    *ir.Module
}

func (p *parser) next() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.next()
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tPunct && p.tok.text == s }
func (p *parser) isWord(s string) bool  { return p.tok.kind == tWord && p.tok.text == s }

func (p *parser) parse() error {
	if err := p.next(); err != nil {
		return err
	}
	for p.tok.kind != tEOF {
		switch {
		case p.isWord("type"):
			if err := p.parseTypeDef(); err != nil {
				return err
			}
		case p.tok.kind == tGlobal:
			if err := p.parseGlobal(); err != nil {
				return err
			}
		case p.isWord("declare"), p.isWord("func"):
			if err := p.parseFunc(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected token %q at top level", p.tok.text)
		}
	}
	return nil
}

// parseType parses a type, with trailing '*' for pointers.
func (p *parser) parseType() (ir.Type, error) {
	var t ir.Type
	switch {
	case p.tok.kind == tWord:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch name {
		case "void":
			t = ir.Void
		case "f32":
			t = ir.F32
		case "f64":
			t = ir.F64
		default:
			if !strings.HasPrefix(name, "i") {
				return nil, p.errf("unknown type %q", name)
			}
			bits, err := strconv.Atoi(name[1:])
			if err != nil || bits <= 0 || bits > 64 {
				return nil, p.errf("unknown type %q", name)
			}
			t = ir.IntType{Bits: bits}
		}
	case p.tok.kind == tLocal:
		st := p.mod.FindStruct(p.tok.text)
		if st == nil {
			st = p.mod.AddStruct(&ir.StructType{TypeName: p.tok.text})
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		t = st
	case p.isPunct("["):
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tInt {
			return nil, p.errf("expected array length")
		}
		n := int(p.tok.i)
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.isWord("x") {
			return nil, p.errf("expected 'x' in array type")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		t = ir.ArrayOf(n, elem)
	case p.isPunct("{"):
		if err := p.next(); err != nil {
			return nil, err
		}
		st := &ir.StructType{}
		for !p.isPunct("}") {
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, ft)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		t = st
	default:
		return nil, p.errf("expected type, found %q", p.tok.text)
	}
	for p.isPunct("*") {
		if err := p.next(); err != nil {
			return nil, err
		}
		t = ir.Ptr(t)
	}
	return t, nil
}

func (p *parser) parseTypeDef() error {
	if err := p.next(); err != nil { // consume "type"
		return err
	}
	if p.tok.kind != tLocal {
		return p.errf("expected %%name after 'type'")
	}
	name := p.tok.text
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != tPunct || p.tok.text != "=" {
		return p.errf("expected '='")
	}
	if err := p.next(); err != nil {
		return err
	}
	body, err := p.parseType()
	if err != nil {
		return err
	}
	st, ok := body.(*ir.StructType)
	if !ok {
		return p.errf("type definition body must be a struct")
	}
	if existing := p.mod.FindStruct(name); existing != nil {
		existing.Fields = st.Fields
		return nil
	}
	st.TypeName = name
	p.mod.AddStruct(st)
	return nil
}

func (p *parser) parseGlobal() error {
	name := p.tok.text
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != tPunct || p.tok.text != "=" {
		return p.errf("expected '=' after global name")
	}
	if err := p.next(); err != nil {
		return err
	}
	readonly := false
	switch {
	case p.isWord("global"):
	case p.isWord("constant"):
		readonly = true
	default:
		return p.errf("expected 'global' or 'constant'")
	}
	if err := p.next(); err != nil {
		return err
	}
	elem, err := p.parseType()
	if err != nil {
		return err
	}
	var init ir.Const
	if p.tok.kind != tGlobal && !p.isWord("declare") && !p.isWord("func") && !p.isWord("type") && p.tok.kind != tEOF {
		c, err := p.parseConst(elem)
		if err != nil {
			return err
		}
		init = c
	}
	g := p.mod.NewGlobal(name, elem, init)
	g.ReadOnly = readonly
	return nil
}

func (p *parser) parseConst(t ir.Type) (ir.Const, error) {
	switch {
	case p.isWord("zeroinitializer"):
		return &ir.ZeroConst{Typ: t}, p.next()
	case p.isWord("null"):
		pt, ok := t.(ir.PointerType)
		if !ok {
			return nil, p.errf("null requires a pointer type")
		}
		return ir.ConstNull(pt), p.next()
	case p.isWord("undef"):
		return &ir.UndefConst{Typ: t}, p.next()
	case p.tok.kind == tInt:
		v := p.tok.i
		if err := p.next(); err != nil {
			return nil, err
		}
		switch t := t.(type) {
		case ir.IntType:
			return ir.ConstInt(t, v), nil
		case ir.FloatType:
			return ir.ConstFloat(t, float64(v)), nil
		}
		return nil, p.errf("integer constant for non-numeric type %s", t)
	case p.tok.kind == tFloat:
		ft, ok := t.(ir.FloatType)
		if !ok {
			return nil, p.errf("float constant for non-float type %s", t)
		}
		v := p.tok.f
		return ir.ConstFloat(ft, v), p.next()
	case p.isPunct("["):
		at, ok := t.(ir.ArrayType)
		if !ok {
			return nil, p.errf("array constant for non-array type %s", t)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		arr := &ir.ArrayConst{Typ: at}
		for !p.isPunct("]") {
			e, err := p.parseConst(at.Elem)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, e)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		return arr, p.next()
	}
	return nil, p.errf("expected constant, found %q", p.tok.text)
}

func (p *parser) parseFunc() error {
	isDecl := p.isWord("declare")
	if err := p.next(); err != nil {
		return err
	}
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if p.tok.kind != tGlobal {
		return p.errf("expected function name")
	}
	name := p.tok.text
	if err := p.next(); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var params []*ir.Param
	for !p.isPunct(")") {
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		if p.tok.kind != tLocal {
			return p.errf("expected parameter name")
		}
		params = append(params, &ir.Param{Name: p.tok.text, Typ: pt})
		if err := p.next(); err != nil {
			return err
		}
		if p.isPunct(",") {
			if err := p.next(); err != nil {
				return err
			}
		}
	}
	if err := p.next(); err != nil { // consume ")"
		return err
	}
	f := p.mod.NewFunc(name, ret, params...)
	if isDecl {
		f.Blocks = nil
		if p.isWord("readonly") {
			f.ReadOnly = true
			return p.next()
		}
		return nil
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	return p.parseBody(f)
}
