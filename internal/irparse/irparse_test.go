package irparse_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/irparse"
	"rolag/internal/passes"
	"rolag/internal/rolag"
	"rolag/internal/workloads/angha"
	"rolag/internal/workloads/tsvc"
)

func TestParseSimpleModule(t *testing.T) {
	src := `
type %pair = {i32, i32}

@tab = constant [3 x i32] [10, 20, 30]
@g = global i64 7

declare void @ext(i32 %x)
declare i32 @pure_fn(i32 %x) readonly

func i32 @main(i32 %a, i32* %p) {
entry:
  %t = add i32 %a, 5
  %c = icmp slt i32 %t, 100
  condbr i1 %c, %then, %done
then:
  %v = load i32, i32* %p
  %m = mul i32 %v, %t
  store i32 %m, i32* %p
  call void @ext(i32 %m)
  br %done
done:
  %r = phi i32 [0, %entry], [%m, %then]
  ret i32 %r
}
`
	m, err := irparse.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.FindStruct("pair") == nil {
		t.Error("struct not parsed")
	}
	g := m.FindGlobal("tab")
	if g == nil || !g.ReadOnly {
		t.Error("constant global not parsed")
	}
	if f := m.FindFunc("pure_fn"); f == nil || !f.ReadOnly {
		t.Error("readonly declaration not parsed")
	}
	f := m.FindFunc("main")
	if f == nil || len(f.Blocks) != 3 {
		t.Fatalf("main not parsed correctly")
	}
	// Execute it.
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	addr, aerr := in.Alloc(4, 4)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if err := in.StoreTyped(addr, parseI32(), interp.IntVal(6)); err != nil {
		t.Fatal(err)
	}
	v, err := in.Call("main", interp.IntVal(2), interp.IntVal(addr))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Errorf("main = %d, want 42", v.I)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func i32 @f() { entry: ret i32 %nosuch }`,
		`func i32 @f() { entry: br %nowhere }`,
		`func void @f() { entry: %x = frobnicate i32 1, 2 }`,
		`@g = global nonsense 5`,
		`func void @f() { %x = add i32 1, 2 }`, // instruction before label
		`func i32 @f() { entry: ret i32 1`,     // unterminated body
	}
	for i, src := range cases {
		if _, err := irparse.ParseModule(src); err == nil {
			t.Errorf("case %d: expected a parse error", i)
		}
	}
}

func TestRoundTripCorpus(t *testing.T) {
	// Property: print(parse(print(m))) == print(m) for compiled corpus
	// modules, and the parsed module still verifies and behaves the
	// same.
	funcs := angha.Generate(60, 13)
	for _, fn := range funcs {
		m, err := cc.Compile(fn.Src, fn.Name)
		if err != nil {
			t.Fatal(err)
		}
		passes.Standard().Run(m)
		text1 := m.String()
		parsed, err := irparse.ParseModule(text1)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", fn.Name, err, text1)
		}
		text2 := parsed.String()
		if text1 != text2 {
			t.Errorf("%s: round-trip differs:\n--- printed ---\n%s\n--- reparsed ---\n%s", fn.Name, text1, text2)
			continue
		}
		for _, f := range parsed.Funcs {
			if f.IsDecl() || m.FindFunc(f.Name) == nil {
				continue
			}
			if err := interp.CheckEquiv(m, parsed, f.Name, 1, nil); err != nil {
				t.Errorf("%s/@%s: parsed module behaves differently: %v", fn.Name, f.Name, err)
			}
		}
	}
}

func TestRoundTripRolledTSVC(t *testing.T) {
	// Rolled output (with its phis, recurrences and constant pools) must
	// also survive the round trip.
	for _, name := range []string{"s000", "s311", "s451", "vpvtv"} {
		kr := tsvc.Find(name)
		m, err := cc.Compile(kr.Src, kr.Name)
		if err != nil {
			t.Fatal(err)
		}
		passes.Standard().Run(m)
		rolag.RollModule(m, nil)
		passes.Standard().Run(m)
		text := m.String()
		parsed, err := irparse.ParseModule(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, text)
		}
		if parsed.String() != text {
			t.Errorf("%s: rolled module round-trip differs", name)
		}
	}
}

func parseI32() ir.IntType { return ir.I32 }
