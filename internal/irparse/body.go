package irparse

import (
	"rolag/internal/ir"
)

// ref is an operand awaiting resolution: constants and globals resolve
// immediately (val set); local names resolve after the whole body has
// been read (forward references from phis).
type ref struct {
	val   ir.Value
	local string
	typ   ir.Type
	line  int
}

// blockRef names a branch target or phi predecessor.
type blockRef struct {
	name string
	line int
}

type pendingInstr struct {
	instr  *ir.Instr
	ops    []ref
	blocks []blockRef
}

func (p *parser) parseBody(f *ir.Func) error {
	names := make(map[string]ir.Value)
	for _, prm := range f.Params {
		names[prm.Name] = prm
	}
	blocks := make(map[string]*ir.Block)
	var pendings []pendingInstr
	var cur *ir.Block

	getBlock := func(name string) *ir.Block {
		if b, ok := blocks[name]; ok {
			return b
		}
		b := &ir.Block{Name: name, Parent: f}
		blocks[name] = b
		return b
	}

	for !p.isPunct("}") {
		if p.tok.kind == tEOF {
			return p.errf("unexpected end of input in function body")
		}
		// Block label: word ':'.
		if p.tok.kind == tWord {
			if nxt, err := p.peek(); err != nil {
				return err
			} else if nxt.kind == tPunct && nxt.text == ":" {
				name := p.tok.text
				if err := p.next(); err != nil {
					return err
				}
				if err := p.next(); err != nil { // consume ':'
					return err
				}
				cur = getBlock(name)
				f.Blocks = append(f.Blocks, cur)
				continue
			}
		}
		if cur == nil {
			return p.errf("instruction before any block label")
		}
		pi, err := p.parseInstr()
		if err != nil {
			return err
		}
		pi.instr.Parent = cur
		cur.Instrs = append(cur.Instrs, pi.instr)
		if pi.instr.Name != "" {
			names[pi.instr.Name] = pi.instr
		}
		pendings = append(pendings, pi)
	}
	if err := p.next(); err != nil { // consume '}'
		return err
	}

	// Resolve local operands and block references.
	for _, pi := range pendings {
		pi.instr.Operands = make([]ir.Value, len(pi.ops))
		for i, r := range pi.ops {
			if r.val != nil {
				pi.instr.Operands[i] = r.val
				continue
			}
			v, ok := names[r.local]
			if !ok {
				return &Error{Line: r.line, Msg: "undefined value %" + r.local}
			}
			pi.instr.Operands[i] = v
		}
		if len(pi.blocks) > 0 {
			pi.instr.Blocks = make([]*ir.Block, len(pi.blocks))
			for i, br := range pi.blocks {
				b, ok := blocks[br.name]
				if !ok {
					return &Error{Line: br.line, Msg: "undefined block %" + br.name}
				}
				pi.instr.Blocks[i] = b
			}
		}
	}
	return nil
}

// parseOperand parses "<type> <value>"; withType=false reuses typ.
func (p *parser) parseOperand(typ ir.Type, withType bool) (ref, ir.Type, error) {
	var err error
	if withType {
		typ, err = p.parseType()
		if err != nil {
			return ref{}, nil, err
		}
	}
	line := p.tok.line
	switch {
	case p.tok.kind == tLocal:
		name := p.tok.text
		if err := p.next(); err != nil {
			return ref{}, nil, err
		}
		return ref{local: name, typ: typ, line: line}, typ, nil
	case p.tok.kind == tGlobal:
		g := p.mod.FindGlobal(p.tok.text)
		if g == nil {
			return ref{}, nil, p.errf("undefined global @%s", p.tok.text)
		}
		if err := p.next(); err != nil {
			return ref{}, nil, err
		}
		return ref{val: g, typ: typ, line: line}, typ, nil
	default:
		c, err := p.parseConst(typ)
		if err != nil {
			return ref{}, nil, err
		}
		return ref{val: c, typ: typ, line: line}, typ, nil
	}
}

var castOps = map[string]ir.Op{
	"trunc": ir.OpTrunc, "zext": ir.OpZExt, "sext": ir.OpSExt,
	"fptrunc": ir.OpFPTrunc, "fpext": ir.OpFPExt,
	"fptosi": ir.OpFPToSI, "sitofp": ir.OpSIToFP,
	"ptrtoint": ir.OpPtrToInt, "inttoptr": ir.OpIntToPtr, "bitcast": ir.OpBitcast,
}

var binOps = map[string]ir.Op{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul,
	"sdiv": ir.OpSDiv, "udiv": ir.OpUDiv, "srem": ir.OpSRem, "urem": ir.OpURem,
	"and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "lshr": ir.OpLShr, "ashr": ir.OpAShr,
	"fadd": ir.OpFAdd, "fsub": ir.OpFSub, "fmul": ir.OpFMul, "fdiv": ir.OpFDiv,
}

var preds = map[string]ir.Pred{
	"eq": ir.PredEQ, "ne": ir.PredNE,
	"slt": ir.PredSLT, "sle": ir.PredSLE, "sgt": ir.PredSGT, "sge": ir.PredSGE,
	"ult": ir.PredULT, "ule": ir.PredULE, "ugt": ir.PredUGT, "uge": ir.PredUGE,
	"oeq": ir.PredOEQ, "one": ir.PredONE,
	"olt": ir.PredOLT, "ole": ir.PredOLE, "ogt": ir.PredOGT, "oge": ir.PredOGE,
}

func (p *parser) parseInstr() (pendingInstr, error) {
	name := ""
	if p.tok.kind == tLocal {
		name = p.tok.text
		if err := p.next(); err != nil {
			return pendingInstr{}, err
		}
		if p.tok.kind != tPunct || p.tok.text != "=" {
			return pendingInstr{}, p.errf("expected '=' after %%%s", name)
		}
		if err := p.next(); err != nil {
			return pendingInstr{}, err
		}
	}
	if p.tok.kind != tWord {
		return pendingInstr{}, p.errf("expected opcode, found %q", p.tok.text)
	}
	op := p.tok.text
	if err := p.next(); err != nil {
		return pendingInstr{}, err
	}

	pi := pendingInstr{instr: &ir.Instr{Name: name, Typ: ir.Void}}
	in := pi.instr

	addOp := func(typ ir.Type, withType bool) (ir.Type, error) {
		r, t, err := p.parseOperand(typ, withType)
		if err != nil {
			return nil, err
		}
		pi.ops = append(pi.ops, r)
		return t, nil
	}
	comma := func() error { return p.expectPunct(",") }

	if bop, ok := binOps[op]; ok {
		in.Op = bop
		t, err := addOp(nil, true)
		if err != nil {
			return pi, err
		}
		if err := comma(); err != nil {
			return pi, err
		}
		if _, err := addOp(t, false); err != nil {
			return pi, err
		}
		in.Typ = t
		return pi, nil
	}

	switch op {
	case "icmp", "fcmp":
		in.Op = ir.OpICmp
		if op == "fcmp" {
			in.Op = ir.OpFCmp
		}
		pr, ok := preds[p.tok.text]
		if !ok {
			return pi, p.errf("unknown predicate %q", p.tok.text)
		}
		in.Pred = pr
		if err := p.next(); err != nil {
			return pi, err
		}
		t, err := addOp(nil, true)
		if err != nil {
			return pi, err
		}
		if err := comma(); err != nil {
			return pi, err
		}
		if _, err := addOp(t, false); err != nil {
			return pi, err
		}
		in.Typ = ir.I1
	case "alloca":
		in.Op = ir.OpAlloca
		elem, err := p.parseType()
		if err != nil {
			return pi, err
		}
		in.Alloc = elem
		in.Typ = ir.Ptr(elem)
		if err := comma(); err != nil {
			return pi, err
		}
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
	case "load":
		in.Op = ir.OpLoad
		t, err := p.parseType()
		if err != nil {
			return pi, err
		}
		in.Typ = t
		if err := comma(); err != nil {
			return pi, err
		}
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
	case "store":
		in.Op = ir.OpStore
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
		if err := comma(); err != nil {
			return pi, err
		}
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
	case "gep":
		in.Op = ir.OpGEP
		baseT, err := addOp(nil, true)
		if err != nil {
			return pi, err
		}
		var idxTypes []ir.Value
		_ = idxTypes
		var idxRefs []ir.Type
		for p.isPunct(",") {
			if err := p.next(); err != nil {
				return pi, err
			}
			it, err := addOp(nil, true)
			if err != nil {
				return pi, err
			}
			idxRefs = append(idxRefs, it)
		}
		// Result type: computed from the base type and the *index
		// constants*; variable indices only step arrays, which GEPType
		// tolerates via non-constant values. Build a probe index list.
		probe := make([]ir.Value, len(idxRefs))
		for i, r := range pi.ops[1:] {
			if r.val != nil {
				probe[i] = r.val
			} else {
				// A local: use a placeholder of the right type; struct
				// indices must be constants so this stays an array or
				// pointer step.
				probe[i] = &ir.UndefConst{Typ: r.typ}
			}
		}
		t, gerr := ir.GEPType(baseT, probe)
		if gerr != nil {
			return pi, p.errf("%v", gerr)
		}
		in.Typ = t
	case "call":
		in.Op = ir.OpCall
		ret, err := p.parseType()
		if err != nil {
			return pi, err
		}
		in.Typ = ret
		if p.tok.kind != tGlobal {
			return pi, p.errf("expected callee name")
		}
		callee := p.mod.FindFunc(p.tok.text)
		if callee == nil {
			return pi, p.errf("undefined function @%s", p.tok.text)
		}
		in.Callee = callee
		if err := p.next(); err != nil {
			return pi, err
		}
		if err := p.expectPunct("("); err != nil {
			return pi, err
		}
		for !p.isPunct(")") {
			if _, err := addOp(nil, true); err != nil {
				return pi, err
			}
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return pi, err
				}
			}
		}
		if err := p.next(); err != nil {
			return pi, err
		}
	case "phi":
		in.Op = ir.OpPhi
		t, err := p.parseType()
		if err != nil {
			return pi, err
		}
		in.Typ = t
		for {
			if err := p.expectPunct("["); err != nil {
				return pi, err
			}
			if _, err := addOp(t, false); err != nil {
				return pi, err
			}
			if err := comma(); err != nil {
				return pi, err
			}
			if p.tok.kind != tLocal {
				return pi, p.errf("expected block name in phi")
			}
			pi.blocks = append(pi.blocks, blockRef{name: p.tok.text, line: p.tok.line})
			if err := p.next(); err != nil {
				return pi, err
			}
			if err := p.expectPunct("]"); err != nil {
				return pi, err
			}
			if !p.isPunct(",") {
				break
			}
			if err := p.next(); err != nil {
				return pi, err
			}
		}
	case "select":
		in.Op = ir.OpSelect
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
		if err := comma(); err != nil {
			return pi, err
		}
		t, err := addOp(nil, true)
		if err != nil {
			return pi, err
		}
		if err := comma(); err != nil {
			return pi, err
		}
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
		in.Typ = t
	case "br":
		in.Op = ir.OpBr
		if p.tok.kind != tLocal {
			return pi, p.errf("expected block name")
		}
		pi.blocks = append(pi.blocks, blockRef{name: p.tok.text, line: p.tok.line})
		if err := p.next(); err != nil {
			return pi, err
		}
	case "condbr":
		in.Op = ir.OpCondBr
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
		for i := 0; i < 2; i++ {
			if err := comma(); err != nil {
				return pi, err
			}
			if p.tok.kind != tLocal {
				return pi, p.errf("expected block name")
			}
			pi.blocks = append(pi.blocks, blockRef{name: p.tok.text, line: p.tok.line})
			if err := p.next(); err != nil {
				return pi, err
			}
		}
	case "ret":
		in.Op = ir.OpRet
		if p.isWord("void") {
			return pi, p.next()
		}
		if _, err := addOp(nil, true); err != nil {
			return pi, err
		}
	default:
		if co, ok := castOps[op]; ok {
			in.Op = co
			if _, err := addOp(nil, true); err != nil {
				return pi, err
			}
			if !p.isWord("to") {
				return pi, p.errf("expected 'to' in cast")
			}
			if err := p.next(); err != nil {
				return pi, err
			}
			t, err := p.parseType()
			if err != nil {
				return pi, err
			}
			in.Typ = t
			return pi, nil
		}
		if in.Op == ir.OpInvalid {
			return pi, p.errf("unknown opcode %q", op)
		}
	}
	return pi, nil
}
