package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Remark statuses, following the LLVM remark vocabulary: "passed" for
// an applied transformation, "missed" for a rejected one (Reason names
// the stable rejection code), and "analysis" for intermediate facts
// the optimizer established on the way.
const (
	StatusPassed   = "passed"
	StatusMissed   = "missed"
	StatusAnalysis = "analysis"
)

// Remark is one optimizer decision with provenance. The struct holds
// no timestamps, pointers, or other run-varying state: two compilations
// of the same input must produce byte-identical remark streams, which
// is what makes the streams diffable and cacheable. Field order is the
// serialization order for both JSON and YAML.
type Remark struct {
	// Pass is the emitting pass: "rolag" or "reroll".
	Pass string `json:"pass"`
	// Name is the decision kind within the pass (the remark taxonomy is
	// documented in DESIGN.md): "seed", "align-node", "align-reject",
	// "schedule-reject", "not-profitable", "rolled", "rerolled",
	// "reroll-reject".
	Name string `json:"name"`
	// Status is StatusPassed, StatusMissed, or StatusAnalysis.
	Status string `json:"status"`
	// Func, Block, and Instr locate the decision. Instr is an SSA name
	// ("%t35") when the anchor instruction produces a value, or
	// "op@index" ("store@12") when it does not.
	Func  string `json:"func"`
	Block string `json:"block,omitempty"`
	Instr string `json:"instr,omitempty"`
	// Kind carries a per-name discriminator: the seed-group kind for
	// "seed", the node kind for "align-node", the lane type for
	// mismatch nodes.
	Kind string `json:"kind,omitempty"`
	// Reason is the stable machine-readable rejection code for missed
	// remarks (e.g. "memory-reorder", "not-profitable"); aggregation
	// keys on it, human text goes in Detail.
	Reason string `json:"reason,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail,omitempty"`
	// Lanes is the number of lanes involved (seed width, roll factor).
	Lanes int `json:"lanes,omitempty"`
	// CostBefore/CostAfter/DeltaBytes report the cost-model verdict in
	// bytes (Delta = after - before, negative when the roll shrinks the
	// function). Set on "rolled" and "not-profitable".
	CostBefore int `json:"costBefore,omitempty"`
	CostAfter  int `json:"costAfter,omitempty"`
	DeltaBytes int `json:"deltaBytes,omitempty"`
}

// Collector accumulates remarks for one function. It is append-only
// and NOT safe for concurrent use: the parallel pipeline gives every
// function a private Collector and merges them in function order, so
// the merged stream is byte-identical to a serial run's.
type Collector struct {
	remarks []Remark
}

// Add appends one remark. A nil Collector drops it.
func (c *Collector) Add(r Remark) {
	if c != nil {
		c.remarks = append(c.remarks, r)
	}
}

// Remarks returns the collected remarks in emission order.
func (c *Collector) Remarks() []Remark {
	if c == nil {
		return nil
	}
	return c.remarks
}

// Len returns the number of collected remarks.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.remarks)
}

// Recorder bundles the per-compilation observability state threaded
// through the optimizer: the remark collector and the request trace.
// A nil *Recorder (or a nil Collector inside one) disables remarks;
// every method is nil-safe so hot-path call sites stay unconditional.
type Recorder struct {
	// Remarks receives emitted remarks; nil disables collection.
	Remarks *Collector
	// Trace is the request's trace context; the zero value is inactive.
	Trace TraceContext
}

// On reports whether remark emission is enabled. Emission sites guard
// remark construction with it so the disabled path allocates nothing.
func (r *Recorder) On() bool { return r != nil && r.Remarks != nil }

// Add appends one remark to the underlying collector (nil-safe).
func (r *Recorder) Add(rm Remark) {
	if r != nil {
		r.Remarks.Add(rm)
	}
}

// TraceCtx returns the trace context (zero for a nil Recorder).
func (r *Recorder) TraceCtx() TraceContext {
	if r == nil {
		return TraceContext{}
	}
	return r.Trace
}

// WriteJSON serializes remarks as an indented JSON array. The output
// is deterministic: field order is the Remark declaration order and no
// run-varying data exists in a Remark.
func WriteJSON(w io.Writer, remarks []Remark) error {
	if remarks == nil {
		remarks = []Remark{}
	}
	data, err := json.MarshalIndent(remarks, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteYAML serializes remarks as a YAML sequence of mappings, one
// document, same field order and determinism as WriteJSON. The emitter
// is hand-rolled (the repo takes no external dependencies): scalars
// are double-quoted with JSON-compatible escaping, which every YAML
// parser accepts.
func WriteYAML(w io.Writer, remarks []Remark) error {
	var sb strings.Builder
	if len(remarks) == 0 {
		sb.WriteString("[]\n")
	}
	for _, r := range remarks {
		first := true
		field := func(key, val string) {
			if val == "" {
				return
			}
			if first {
				sb.WriteString("- ")
				first = false
			} else {
				sb.WriteString("  ")
			}
			sb.WriteString(key)
			sb.WriteString(": ")
			sb.WriteString(yamlScalar(val))
			sb.WriteByte('\n')
		}
		num := func(key string, v int) {
			if v != 0 {
				field(key, strconv.Itoa(v))
			}
		}
		field("pass", r.Pass)
		field("name", r.Name)
		field("status", r.Status)
		field("func", r.Func)
		field("block", r.Block)
		field("instr", r.Instr)
		field("kind", r.Kind)
		field("reason", r.Reason)
		field("detail", r.Detail)
		num("lanes", r.Lanes)
		num("costBefore", r.CostBefore)
		num("costAfter", r.CostAfter)
		num("deltaBytes", r.DeltaBytes)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// yamlScalar renders one scalar value. Numbers pass through bare;
// strings are double-quoted via the JSON encoder (a strict subset of
// YAML double-quoted style).
func yamlScalar(s string) string {
	if s != "" && strings.IndexFunc(s, func(r rune) bool { return r < '0' || r > '9' }) < 0 {
		return s
	}
	q, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf("%q", s)
	}
	return string(q)
}
