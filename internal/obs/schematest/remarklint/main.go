// Command remarklint validates remark JSON documents against the
// committed remark schema (internal/obs/schematest/remarks.schema.json).
// It reads each file argument — or standard input with no arguments —
// and exits non-zero on the first violation. `make explain-smoke` runs
// it over rolagc -remarks=json output for every example program, so a
// remark-format change that breaks the schema contract fails CI.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rolag/internal/obs/schematest"
)

func main() {
	if len(os.Args) < 2 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "remarklint: %v\n", err)
			os.Exit(1)
		}
		check("<stdin>", data)
		return
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "remarklint: %v\n", err)
			os.Exit(1)
		}
		check(path, data)
	}
}

func check(name string, data []byte) {
	if err := schematest.Validate(data); err != nil {
		fmt.Fprintf(os.Stderr, "remarklint: %s: %v\n", name, err)
		os.Exit(1)
	}
	var remarks []json.RawMessage
	if err := json.Unmarshal(data, &remarks); err != nil {
		fmt.Fprintf(os.Stderr, "remarklint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d remarks)\n", name, len(remarks))
}
