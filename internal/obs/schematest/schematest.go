// Package schematest pins the remark wire format: remarks.schema.json
// is the committed JSON Schema of the stream rolagc -remarks=json and
// rolagd emit, and Validate checks an instance against it with a small
// built-in validator (the project takes no dependencies, so it
// implements just the draft-07 subset the schema uses: type, enum,
// required, properties, additionalProperties, items, minimum).
//
// The schema is the compatibility contract for external remark
// consumers; changing it is an API change and should be deliberate.
package schematest

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

//go:embed remarks.schema.json
var schemaJSON []byte

// Schema returns the committed remark schema document.
func Schema() []byte { return schemaJSON }

// Validate checks that data (a JSON document) conforms to the remark
// schema. It returns the first violation found, with a JSON-pointer-ish
// path to the offending value.
func Validate(data []byte) error {
	var schema, instance any
	if err := json.Unmarshal(schemaJSON, &schema); err != nil {
		return fmt.Errorf("schematest: embedded schema is invalid JSON: %w", err)
	}
	if err := json.Unmarshal(data, &instance); err != nil {
		return fmt.Errorf("schematest: instance is invalid JSON: %w", err)
	}
	return validate(schema, instance, "$")
}

func validate(schema, value any, path string) error {
	s, ok := schema.(map[string]any)
	if !ok {
		return fmt.Errorf("schematest: schema node at %s is not an object", path)
	}
	if typ, ok := s["type"].(string); ok {
		if err := checkType(typ, value, path); err != nil {
			return err
		}
	}
	if enum, ok := s["enum"].([]any); ok {
		if err := checkEnum(enum, value, path); err != nil {
			return err
		}
	}
	if min, ok := s["minimum"].(float64); ok {
		if n, isNum := value.(float64); isNum && n < min {
			return fmt.Errorf("%s: %v is below minimum %v", path, n, min)
		}
	}
	if obj, isObj := value.(map[string]any); isObj {
		if err := validateObject(s, obj, path); err != nil {
			return err
		}
	}
	if arr, isArr := value.([]any); isArr {
		if items, ok := s["items"]; ok {
			for i, el := range arr {
				if err := validate(items, el, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateObject(s map[string]any, obj map[string]any, path string) error {
	if req, ok := s["required"].([]any); ok {
		for _, r := range req {
			name, _ := r.(string)
			if _, present := obj[name]; !present {
				return fmt.Errorf("%s: missing required property %q", path, name)
			}
		}
	}
	props, _ := s["properties"].(map[string]any)
	addl, hasAddl := s["additionalProperties"].(bool)
	// Walk in sorted key order so the first violation is deterministic.
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sub, known := props[k]
		if !known {
			if hasAddl && !addl {
				return fmt.Errorf("%s: unexpected property %q", path, k)
			}
			continue
		}
		if err := validate(sub, obj[k], path+"."+k); err != nil {
			return err
		}
	}
	return nil
}

func checkType(typ string, value any, path string) error {
	ok := false
	switch typ {
	case "array":
		_, ok = value.([]any)
	case "object":
		_, ok = value.(map[string]any)
	case "string":
		_, ok = value.(string)
	case "boolean":
		_, ok = value.(bool)
	case "number":
		_, ok = value.(float64)
	case "integer":
		n, isNum := value.(float64)
		ok = isNum && n == math.Trunc(n)
	case "null":
		ok = value == nil
	default:
		return fmt.Errorf("schematest: unsupported schema type %q at %s", typ, path)
	}
	if !ok {
		return fmt.Errorf("%s: want %s, got %T", path, typ, value)
	}
	return nil
}

func checkEnum(enum []any, value any, path string) error {
	for _, e := range enum {
		if e == value {
			return nil
		}
	}
	return fmt.Errorf("%s: value %v not in enum %v", path, value, enum)
}
