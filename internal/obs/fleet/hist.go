// Package fleet is the cluster-wide telemetry plane: mergeable latency
// histograms shards report and the router aggregates, a scrape
// collector that turns per-shard counter snapshots into fleet-level
// RED metrics (rate, errors, duration), and the trace-stitching
// helpers that merge per-process Chrome trace segments into one
// aligned timeline. It is deliberately stdlib-only and importable from
// both sides of the wire (daemon and router) without cycles.
package fleet

import (
	"math"
	"sort"
	"sync"
)

// LatencyBounds are the request-latency histogram bucket upper bounds
// in seconds — the same bounds as rolagd's compile-latency histogram,
// so per-route request histograms and engine compile histograms render
// on the same axis.
var LatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Inf stands in for +Inf so snapshots stay JSON-encodable (matching
// the sentinel the service package uses for its bucket bounds).
const Inf = 1e308

// Bucket is one cumulative histogram bucket, Prometheus-style.
type Bucket struct {
	// LE is the inclusive upper bound in seconds (Inf for the last).
	LE float64 `json:"le"`
	// Count is cumulative: observations at or below LE.
	Count int64 `json:"count"`
}

// Hist is a live, concurrency-safe latency histogram over
// LatencyBounds. The zero value is ready to use.
type Hist struct {
	mu      sync.Mutex
	count   int64
	sumSec  float64
	buckets [14]int64 // len(LatencyBounds) + 1 for +Inf; non-cumulative
}

// Observe records one latency, in seconds.
func (h *Hist) Observe(sec float64) {
	idx := len(LatencyBounds)
	for i, ub := range LatencyBounds {
		if sec <= ub {
			idx = i
			break
		}
	}
	h.mu.Lock()
	h.count++
	h.sumSec += sec
	h.buckets[idx]++
	h.mu.Unlock()
}

// Snapshot returns a point-in-time copy with cumulative buckets.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, SumSeconds: h.sumSec}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i]
		le := Inf
		if i < len(LatencyBounds) {
			le = LatencyBounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, Count: cum})
	}
	return s
}

// HistSnapshot is a serialized latency histogram: what shards report
// in /v1/cachestats and what the router merges fleet-wide.
type HistSnapshot struct {
	Count      int64    `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Merge folds other into s. Histograms over the same bounds merge
// bucket-by-bucket; mismatched bounds (a rolling-upgrade fleet) merge
// by the union of bounds, which loses no counts but may coarsen
// quantile interpolation.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.SumSeconds += other.SumSeconds
	if len(other.Buckets) == 0 {
		return
	}
	if len(s.Buckets) == 0 {
		s.Buckets = append([]Bucket(nil), other.Buckets...)
		return
	}
	if sameBounds(s.Buckets, other.Buckets) {
		for i := range s.Buckets {
			s.Buckets[i].Count += other.Buckets[i].Count
		}
		return
	}
	s.Buckets = mergeBounds(s.Buckets, other.Buckets)
}

func sameBounds(a, b []Bucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LE != b[i].LE {
			return false
		}
	}
	return true
}

// mergeBounds merges two cumulative bucket sets over the union of
// their bounds. Each side's cumulative count at a foreign bound is its
// count at the nearest bound at or above it (an upper bound — safe for
// cumulative histograms).
func mergeBounds(a, b []Bucket) []Bucket {
	les := map[float64]bool{}
	for _, bk := range a {
		les[bk.LE] = true
	}
	for _, bk := range b {
		les[bk.LE] = true
	}
	bounds := make([]float64, 0, len(les))
	for le := range les {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	cumAt := func(set []Bucket, le float64) int64 {
		for _, bk := range set {
			if bk.LE >= le {
				return bk.Count
			}
		}
		if len(set) == 0 {
			return 0
		}
		return set[len(set)-1].Count
	}
	out := make([]Bucket, 0, len(bounds))
	for _, le := range bounds {
		out = append(out, Bucket{LE: le, Count: cumAt(a, le) + cumAt(b, le)})
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation within the bucket containing the target rank.
// Observations in the +Inf bucket are attributed to the last finite
// bound — a deliberate underestimate; the alternative (infinity)
// makes every downstream comparison meaningless.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var prevCum int64
	prevLE := 0.0
	lastFinite := 0.0
	for _, b := range s.Buckets {
		if b.LE < Inf {
			lastFinite = b.LE
		}
		if float64(b.Count) >= target && b.Count > prevCum {
			le := b.LE
			if le >= Inf {
				return lastFinite
			}
			frac := (target - float64(prevCum)) / float64(b.Count-prevCum)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return prevLE + frac*(le-prevLE)
		}
		if b.LE < Inf {
			prevLE = b.LE
		}
		prevCum = b.Count
	}
	return lastFinite
}

// Mean returns the average observation in seconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}

// round3 trims a float for JSON presentation (milliseconds with
// microsecond precision survive; the noise below that does not).
func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1e6) / 1e6
}
