package fleet

import (
	"sort"
	"sync"
	"time"
)

// ShardObservation is one scrape of a shard's counters — the subset of
// /v1/cachestats the fleet plane aggregates. Counters are cumulative
// since shard start; the Collector keeps the previous observation per
// shard and differentiates to get RED rates.
type ShardObservation struct {
	Requests         int64
	Errors           int64
	Shed             int64
	Degraded         int64
	InFlight         int64
	Hits             int64 // cache + dedup hits
	Misses           int64
	PeerHits         int64
	SnapshotWarmHits int64
	TraceDropped     uint64
	// Routes maps request path ("/v1/compile", "/v1/batch") to that
	// shard's request-latency histogram.
	Routes map[string]HistSnapshot
}

// shardRecord is the collector's per-shard state: the latest
// observation, the one before it (for rate deltas), and scrape health.
type shardRecord struct {
	cur    ShardObservation
	curAt  time.Time
	prev   ShardObservation
	prevAt time.Time
	hasCur bool
	ok     bool
	errMsg string
}

// Collector accumulates shard scrapes and aggregates them into
// fleet-level overviews. Safe for concurrent use (the scrape loop
// writes while /debug/fleet reads).
type Collector struct {
	mu     sync.Mutex
	shards map[string]*shardRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{shards: make(map[string]*shardRecord)}
}

// Record stores one successful scrape of shard taken at the given time.
func (c *Collector) Record(shard string, o ShardObservation, at time.Time) {
	c.mu.Lock()
	r := c.shards[shard]
	if r == nil {
		r = &shardRecord{}
		c.shards[shard] = r
	}
	if r.hasCur {
		r.prev, r.prevAt = r.cur, r.curAt
	}
	r.cur, r.curAt, r.hasCur = o, at, true
	r.ok, r.errMsg = true, ""
	c.mu.Unlock()
}

// RecordError marks shard's latest scrape as failed. The previous
// observation is kept so the overview can show stale data labeled as
// such instead of a blank row.
func (c *Collector) RecordError(shard, msg string, at time.Time) {
	c.mu.Lock()
	r := c.shards[shard]
	if r == nil {
		r = &shardRecord{}
		c.shards[shard] = r
	}
	r.ok, r.errMsg = false, msg
	c.mu.Unlock()
}

// RouteLatency is one route's latency summary (per shard or merged
// fleet-wide).
type RouteLatency struct {
	Route string  `json:"route"`
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

func routeLatency(route string, h HistSnapshot) RouteLatency {
	return RouteLatency{
		Route: route,
		Count: h.Count,
		P50Ms: round3(h.Quantile(0.50) * 1e3),
		P95Ms: round3(h.Quantile(0.95) * 1e3),
		P99Ms: round3(h.Quantile(0.99) * 1e3),
	}
}

// ShardOverview is one shard's row in /debug/fleet: latest counters,
// RED rates from the last scrape interval, and latency quantiles.
type ShardOverview struct {
	Shard       string  `json:"shard"`
	State       string  `json:"state"` // router health: up/suspect/down
	ScrapeOK    bool    `json:"scrape_ok"`
	ScrapeError string  `json:"scrape_error,omitempty"`
	AgeSeconds  float64 `json:"age_seconds"` // since last good scrape

	Requests         int64   `json:"requests"`
	Errors           int64   `json:"errors"`
	Shed             int64   `json:"shed"`
	Degraded         int64   `json:"degraded"`
	InFlight         int64   `json:"in_flight"`
	HitRate          float64 `json:"hit_rate"`
	PeerHits         int64   `json:"peer_hits"`
	SnapshotWarmHits int64   `json:"snapshot_warm_hits"`
	TraceDropped     uint64  `json:"trace_dropped"`

	// RED rates, differentiated over the last scrape interval; zero
	// until two scrapes exist.
	RatePerSec      float64 `json:"rate_per_sec"`
	ErrorRatePerSec float64 `json:"error_rate_per_sec"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`

	Routes []RouteLatency `json:"routes,omitempty"`
}

// Shards returns one overview row per scraped shard, sorted by name.
// State is left empty — the caller (the router, which owns health)
// fills it in.
func (c *Collector) Shards(now time.Time) []ShardOverview {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardOverview, 0, len(c.shards))
	for name, r := range c.shards {
		ov := ShardOverview{Shard: name, ScrapeOK: r.ok, ScrapeError: r.errMsg}
		if !r.hasCur {
			out = append(out, ov)
			continue
		}
		o := r.cur
		ov.AgeSeconds = round3(now.Sub(r.curAt).Seconds())
		ov.Requests = o.Requests
		ov.Errors = o.Errors
		ov.Shed = o.Shed
		ov.Degraded = o.Degraded
		ov.InFlight = o.InFlight
		ov.PeerHits = o.PeerHits
		ov.SnapshotWarmHits = o.SnapshotWarmHits
		ov.TraceDropped = o.TraceDropped
		if o.Hits+o.Misses > 0 {
			ov.HitRate = round3(float64(o.Hits) / float64(o.Hits+o.Misses))
		}
		if r.prevAt.Before(r.curAt) && !r.prevAt.IsZero() {
			dt := r.curAt.Sub(r.prevAt).Seconds()
			if dt > 0 {
				ov.RatePerSec = round3(float64(o.Requests-r.prev.Requests) / dt)
				ov.ErrorRatePerSec = round3(float64(o.Errors-r.prev.Errors) / dt)
			}
		}
		var all HistSnapshot
		routes := make([]string, 0, len(o.Routes))
		for route := range o.Routes {
			routes = append(routes, route)
		}
		sort.Strings(routes)
		for _, route := range routes {
			h := o.Routes[route]
			all.Merge(h)
			ov.Routes = append(ov.Routes, routeLatency(route, h))
		}
		ov.P50Ms = round3(all.Quantile(0.50) * 1e3)
		ov.P95Ms = round3(all.Quantile(0.95) * 1e3)
		ov.P99Ms = round3(all.Quantile(0.99) * 1e3)
		out = append(out, ov)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// RouteHist returns the fleet-wide merge of every shard's latest
// histogram for one route — the series the SLO gate compares against
// the router's own observations.
func (c *Collector) RouteHist(route string) HistSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var merged HistSnapshot
	for _, r := range c.shards {
		if !r.hasCur {
			continue
		}
		if h, ok := r.cur.Routes[route]; ok {
			merged.Merge(h)
		}
	}
	return merged
}

// Routes returns fleet-level latency summaries, one per route seen on
// any shard, sorted by route.
func (c *Collector) Routes() []RouteLatency {
	c.mu.Lock()
	seen := map[string]bool{}
	for _, r := range c.shards {
		if !r.hasCur {
			continue
		}
		for route := range r.cur.Routes {
			seen[route] = true
		}
	}
	c.mu.Unlock()
	names := make([]string, 0, len(seen))
	for route := range seen {
		names = append(names, route)
	}
	sort.Strings(names)
	out := make([]RouteLatency, 0, len(names))
	for _, route := range names {
		out = append(out, routeLatency(route, c.RouteHist(route)))
	}
	return out
}

// TraceDroppedTotal sums the fleet's shard-side dropped-span counters.
func (c *Collector) TraceDroppedTotal() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total uint64
	for _, r := range c.shards {
		if r.hasCur {
			total += r.cur.TraceDropped
		}
	}
	return total
}

// RouterStats is the router's own contribution to the fleet overview:
// counters no shard can see (hedging, failover, router-observed
// latency).
type RouterStats struct {
	Requests     int64  `json:"requests"`
	Batches      int64  `json:"batches"`
	Items        int64  `json:"items"`
	Failovers    int64  `json:"failovers"`
	HedgePrimary int64  `json:"hedge_primary"`
	HedgeWins    int64  `json:"hedge_wins"`
	HedgeFailed  int64  `json:"hedge_failed"`
	TraceDropped uint64 `json:"trace_dropped"`
	// Routes is latency as the router observed it (including hop time),
	// per route.
	Routes []RouteLatency `json:"routes,omitempty"`
}

// Overview is the /debug/fleet JSON document.
type Overview struct {
	// Shards is one row per shard: health, RED rates, quantiles.
	Shards []ShardOverview `json:"shards"`
	// Routes is the fleet-wide merge of shard-reported route histograms.
	Routes []RouteLatency `json:"routes"`
	// Router is the router's own counters and observed latencies.
	Router RouterStats `json:"router"`
}
