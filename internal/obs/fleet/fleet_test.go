package fleet

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestHistObserveAndQuantile: observations land in the right buckets
// and interpolated quantiles come out in the right neighborhood.
func TestHistObserveAndQuantile(t *testing.T) {
	var h Hist
	// 90 fast (≈2ms) + 10 slow (≈200ms): p50 must be small, p99 large.
	for i := 0; i < 90; i++ {
		h.Observe(0.002)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.200)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if got := s.SumSeconds; math.Abs(got-(90*0.002+10*0.200)) > 1e-9 {
		t.Errorf("SumSeconds = %v", got)
	}
	if len(s.Buckets) != len(LatencyBounds)+1 {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(LatencyBounds)+1)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.LE != Inf || last.Count != 100 {
		t.Errorf("+Inf bucket = %+v", last)
	}
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if p50 <= 0 || p50 > 0.0025 {
		t.Errorf("p50 = %v, want in (0, 2.5ms]", p50)
	}
	if p99 < 0.1 || p99 > 0.25 {
		t.Errorf("p99 = %v, want in [100ms, 250ms]", p99)
	}
	if s.Quantile(0.99) < s.Quantile(0.50) {
		t.Error("quantiles not monotone")
	}
}

// TestHistQuantileEdges: empty histograms and +Inf-bucket overflow
// degrade to 0 and the last finite bound respectively.
func TestHistQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty Quantile = %v", q)
	}
	var h Hist
	h.Observe(10_000) // beyond every bound → +Inf bucket
	s := h.Snapshot()
	last := LatencyBounds[len(LatencyBounds)-1]
	if q := s.Quantile(0.99); q != last {
		t.Errorf("overflow Quantile = %v, want last finite bound %v", q, last)
	}
}

// TestMergeSameBounds: bucket-wise merge preserves counts and sums.
func TestMergeSameBounds(t *testing.T) {
	var a, b Hist
	for i := 0; i < 50; i++ {
		a.Observe(0.001)
		b.Observe(0.3)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Count != 100 {
		t.Fatalf("merged Count = %d", m.Count)
	}
	if p50 := m.Quantile(0.50); p50 > 0.0025 {
		t.Errorf("merged p50 = %v, want fast half", p50)
	}
	if p99 := m.Quantile(0.99); p99 < 0.25 {
		t.Errorf("merged p99 = %v, want slow tail", p99)
	}
	// Merging into an empty snapshot copies.
	var zero HistSnapshot
	zero.Merge(b.Snapshot())
	if zero.Count != 50 || len(zero.Buckets) == 0 {
		t.Errorf("merge into zero = %+v", zero)
	}
}

// TestMergeMismatchedBounds: a union merge loses no counts.
func TestMergeMismatchedBounds(t *testing.T) {
	a := HistSnapshot{Count: 4, SumSeconds: 0.04, Buckets: []Bucket{{LE: 0.01, Count: 2}, {LE: Inf, Count: 4}}}
	b := HistSnapshot{Count: 6, SumSeconds: 0.3, Buckets: []Bucket{{LE: 0.05, Count: 3}, {LE: Inf, Count: 6}}}
	a.Merge(b)
	if a.Count != 10 {
		t.Fatalf("Count = %d", a.Count)
	}
	lastBucket := a.Buckets[len(a.Buckets)-1]
	if lastBucket.LE != Inf || lastBucket.Count != 10 {
		t.Errorf("+Inf bucket after union merge = %+v (buckets %+v)", lastBucket, a.Buckets)
	}
}

// TestCollectorREDAndOverview: two scrapes produce rates, quantiles,
// hit rate, and stable sorting; scrape errors keep stale data visible.
func TestCollectorREDAndOverview(t *testing.T) {
	c := NewCollector()
	t0 := time.Unix(1000, 0)
	mk := func(reqs, errs int64) ShardObservation {
		var h Hist
		for i := int64(0); i < reqs; i++ {
			h.Observe(0.004)
		}
		return ShardObservation{
			Requests: reqs, Errors: errs, Hits: reqs / 2, Misses: reqs / 2,
			InFlight: 1, TraceDropped: 7,
			Routes: map[string]HistSnapshot{"/v1/compile": h.Snapshot()},
		}
	}
	c.Record("shard-b", mk(100, 2), t0)
	c.Record("shard-b", mk(300, 4), t0.Add(10*time.Second))
	c.Record("shard-a", mk(50, 0), t0.Add(10*time.Second))
	c.RecordError("shard-c", "connection refused", t0.Add(10*time.Second))

	rows := c.Shards(t0.Add(11 * time.Second))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Shard != "shard-a" || rows[1].Shard != "shard-b" || rows[2].Shard != "shard-c" {
		t.Fatalf("sort order: %s %s %s", rows[0].Shard, rows[1].Shard, rows[2].Shard)
	}
	b := rows[1]
	if !b.ScrapeOK || b.Requests != 300 {
		t.Errorf("shard-b row = %+v", b)
	}
	if math.Abs(b.RatePerSec-20) > 0.01 {
		t.Errorf("RatePerSec = %v, want 20 (200 reqs / 10s)", b.RatePerSec)
	}
	if math.Abs(b.ErrorRatePerSec-0.2) > 0.001 {
		t.Errorf("ErrorRatePerSec = %v, want 0.2", b.ErrorRatePerSec)
	}
	if math.Abs(b.HitRate-0.5) > 0.001 {
		t.Errorf("HitRate = %v", b.HitRate)
	}
	if b.P99Ms <= 0 || b.P99Ms > 5 {
		t.Errorf("P99Ms = %v, want ≈4ms", b.P99Ms)
	}
	a := rows[0]
	if a.RatePerSec != 0 {
		t.Errorf("single-scrape shard has RatePerSec %v, want 0", a.RatePerSec)
	}
	cRow := rows[2]
	if cRow.ScrapeOK || cRow.ScrapeError == "" {
		t.Errorf("failed-scrape row = %+v", cRow)
	}

	routes := c.Routes()
	if len(routes) != 1 || routes[0].Route != "/v1/compile" || routes[0].Count != 350 {
		t.Errorf("fleet routes = %+v", routes)
	}
	if h := c.RouteHist("/v1/compile"); h.Count != 350 {
		t.Errorf("RouteHist count = %d", h.Count)
	}
	if d := c.TraceDroppedTotal(); d != 14 {
		t.Errorf("TraceDroppedTotal = %d, want 14 (two good shards × 7)", d)
	}
}

// TestStitchAndProcesses: segments become per-process tracks with
// metadata names, empty segments are dropped, and statuses survive.
func TestStitchAndProcesses(t *testing.T) {
	seg := func(spans ...chromeEvent) []byte {
		b, err := json.Marshal(chromeDoc{TraceEvents: spans})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	router := seg(
		chromeEvent{Name: "router:/v1/compile", Ph: "X", Ts: 100, Dur: 50, PID: 1, TID: 1, Args: map[string]string{"trace": "t1"}},
		chromeEvent{Name: "hop:shard-b", Ph: "X", Ts: 110, Dur: 20, PID: 1, TID: 1, Args: map[string]string{"status": "canceled"}},
	)
	shard := seg(
		chromeEvent{Name: "http:/v1/compile", Ph: "X", Ts: 112, Dur: 30, PID: 1, TID: 9, Args: map[string]string{"status": "ok"}},
	)
	stitched, err := Stitch([]Segment{
		{Process: "router", Data: router},
		{Process: "shard-a", Data: shard},
		{Process: "shard-b", Data: seg()}, // recorded nothing → dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	procs, err := Processes(stitched)
	if err != nil {
		t.Fatal(err)
	}
	if procs["router"] != 2 || procs["shard-a"] != 1 {
		t.Errorf("process spans = %+v", procs)
	}
	if _, ok := procs["shard-b"]; ok {
		t.Error("empty segment produced a track")
	}
	statuses, err := SpanStatuses(stitched)
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 || statuses[0] != "canceled" || statuses[1] != "ok" {
		t.Errorf("statuses = %v", statuses)
	}
	// Distinct pids per process.
	var doc chromeDoc
	if err := json.Unmarshal(stitched, &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			pids[ev.Args["name"]] = ev.PID
		}
	}
	if pids["router"] == pids["shard-a"] {
		t.Errorf("router and shard share pid: %+v", pids)
	}

	if _, err := Stitch([]Segment{{Process: "bad", Data: []byte("{nope")}}); err == nil {
		t.Error("invalid segment JSON not rejected")
	}
}
