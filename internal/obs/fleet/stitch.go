package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Trace stitching. Every process in the fleet records spans for a
// given trace ID into its own ring and exports them as a Chrome trace
// with pid 1 and Unix-epoch-microsecond timestamps. The router's
// collector fetches those per-process segments and Stitch merges them
// into one document: each segment gets a distinct pid plus a
// process_name metadata event, so the viewer renders one track per
// process and the shared epoch puts router and shard spans on one
// aligned timeline.

// chromeEvent mirrors the Chrome trace-event wire format closely
// enough to re-pid events without losing fields the fleet emits.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// Segment is one process's contribution to a stitched trace.
type Segment struct {
	// Process is the track name ("router", "shard-a", ...).
	Process string
	// Data is that process's Chrome trace-event JSON (the /debug/trace
	// export, already filtered to one trace ID).
	Data []byte
}

// Stitch merges per-process Chrome trace segments into one document.
// Each segment becomes its own pid with a process_name metadata event;
// span events keep their tids (lanes) within the process. Segments
// with no span events are dropped — a process that recorded nothing
// for the trace gets no empty track. Returns an error if any segment
// is not valid Chrome trace JSON.
func Stitch(segments []Segment) ([]byte, error) {
	var out chromeDoc
	pid := 0
	for _, seg := range segments {
		var doc chromeDoc
		if err := json.Unmarshal(seg.Data, &doc); err != nil {
			return nil, fmt.Errorf("segment %q: %w", seg.Process, err)
		}
		spans := doc.TraceEvents[:0]
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				spans = append(spans, ev)
			}
		}
		if len(spans) == 0 {
			continue
		}
		pid++
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]string{"name": seg.Process},
		})
		for _, ev := range spans {
			ev.PID = pid
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	return json.Marshal(out)
}

// Processes inspects a (stitched) Chrome trace and returns the span
// count per process track name — the completeness check's input: a
// fully-stitched trace has the router process plus at least one shard
// process, each with ≥1 span.
func Processes(data []byte) (map[string]int, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	names := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" && ev.Args != nil {
			names[ev.PID] = ev.Args["name"]
		}
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		name := names[ev.PID]
		if name == "" {
			name = fmt.Sprintf("pid-%d", ev.PID)
		}
		counts[name]++
	}
	return counts, nil
}

// SpanStatuses returns the status arg of every span in a Chrome trace,
// sorted — test and gate helper for asserting hedge losers ("canceled")
// survived stitching.
func SpanStatuses(data []byte) ([]string, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	var out []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Args != nil && ev.Args["status"] != "" {
			out = append(out, ev.Args["status"])
		}
	}
	sort.Strings(out)
	return out, nil
}
