package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// The tests mutate package-global gates and buffers; disabled() puts
// everything back to the default-off state so ordering between tests
// does not matter.
func disabled(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		EnableSpanStats(false)
		EnableTracing(false)
		ResetSpanStats()
		SetTraceCapacity(0)
	})
	EnableSpanStats(false)
	EnableTracing(false)
	ResetSpanStats()
	SetTraceCapacity(0)
}

var testClass = RegisterSpanClass("test-phase")

// TestDisabledIsFree pins the package's core contract: with every gate
// off, Now returns the zero time, End/EndSpan are no-ops, and the whole
// instrumented sequence allocates nothing.
func TestDisabledIsFree(t *testing.T) {
	disabled(t)
	if st := Now(); !st.IsZero() {
		t.Errorf("Now() with gates off = %v, want zero time", st)
	}
	avg := testing.AllocsPerRun(200, func() {
		st := Now()
		testClass.End(TraceContext{}, st)
		EndSpan(TraceContext{}, "free-form", st, "detail")
	})
	if avg != 0 {
		t.Errorf("disabled instrumented site allocates %.2f/op, want 0", avg)
	}
	for _, st := range SpanStats() {
		if st.Count != 0 || st.Nanos != 0 {
			t.Errorf("disabled End accumulated into %q: %+v", st.Name, st)
		}
	}
	if evs := TraceEvents(); len(evs) != 0 {
		t.Errorf("disabled EndSpan buffered %d trace events", len(evs))
	}
}

// TestSpanStatsAccumulate: with the stats gate on, a closed span lands
// in its class histogram with a plausible duration and bucket.
func TestSpanStatsAccumulate(t *testing.T) {
	disabled(t)
	EnableSpanStats(true)
	if !SpanStatsEnabled() {
		t.Fatal("SpanStatsEnabled() = false after EnableSpanStats(true)")
	}
	// Backdate the start so the duration is at least 5ms regardless of
	// scheduling noise; that pins which buckets must stay empty.
	testClass.End(TraceContext{}, time.Now().Add(-5*time.Millisecond))
	var got *SpanStat
	for i, st := range SpanStats() {
		if st.Name == "test-phase" {
			got = &SpanStats()[i]
		}
	}
	if got == nil {
		t.Fatal("test-phase missing from SpanStats()")
	}
	if got.Count != 1 {
		t.Fatalf("Count = %d, want 1", got.Count)
	}
	if got.Nanos < 5_000_000 {
		t.Errorf("Nanos = %d, want >= 5ms", got.Nanos)
	}
	// 5ms cannot land in any bucket bounded below 10ms.
	for i, b := range got.Buckets {
		if SpanBounds[i] < 5e-3 && b != 0 {
			t.Errorf("bucket %d (<= %gs) = %d, want 0", i, SpanBounds[i], b)
		}
	}
	ResetSpanStats()
	for _, st := range SpanStats() {
		if st.Count != 0 || st.Nanos != 0 {
			t.Errorf("ResetSpanStats left %q non-zero: %+v", st.Name, st)
		}
	}
}

// TestSpanClassRegistry: re-registering a name returns the same handle,
// and SpanStats reports classes in registration order.
func TestSpanClassRegistry(t *testing.T) {
	if again := RegisterSpanClass("test-phase"); again != testClass {
		t.Errorf("re-registration returned %d, want %d", again, testClass)
	}
	if testClass.Name() != "test-phase" {
		t.Errorf("Name() = %q", testClass.Name())
	}
	stats := SpanStats()
	if int(testClass) >= len(stats) || stats[testClass].Name != "test-phase" {
		t.Errorf("SpanStats not in registration order: %+v", stats)
	}
}

// TestNilCollectorAndRecorder: every Collector/Recorder method must be
// nil-safe, because hot-path call sites are unconditional.
func TestNilCollectorAndRecorder(t *testing.T) {
	var c *Collector
	c.Add(Remark{Name: "dropped"})
	if c.Len() != 0 || c.Remarks() != nil {
		t.Error("nil Collector retained a remark")
	}
	var r *Recorder
	if r.On() {
		t.Error("nil Recorder reports On")
	}
	r.Add(Remark{Name: "dropped"})
	if tr := r.TraceCtx(); tr.Active() {
		t.Error("nil Recorder has an active trace")
	}
	// A Recorder with a nil Collector is the tracing-only shape: Add
	// must drop silently and On must be false.
	r2 := &Recorder{}
	if r2.On() {
		t.Error("Recorder without Collector reports On")
	}
	r2.Add(Remark{Name: "dropped"})
}

// TestWriteJSONShape: empty and nil streams serialize as an empty
// array, and field order follows the Remark declaration.
func TestWriteJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Errorf("nil stream = %q, want []\\n", buf.String())
	}
	buf.Reset()
	rm := Remark{
		Pass: "rolag", Name: "rolled", Status: StatusPassed,
		Func: "f", Block: "entry", Instr: "%t1",
		Lanes: 4, CostBefore: 10, CostAfter: 6, DeltaBytes: -4,
	}
	if err := WriteJSON(&buf, []Remark{rm}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{`"pass"`, `"name"`, `"status"`, `"func"`, `"lanes"`, `"deltaBytes"`} {
		if !strings.Contains(out, key) {
			t.Errorf("JSON output missing %s:\n%s", key, out)
		}
	}
	if i, j := strings.Index(out, `"pass"`), strings.Index(out, `"deltaBytes"`); i > j {
		t.Error("JSON field order does not follow declaration order")
	}
	var back []Remark
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output does not round-trip: %v", err)
	}
	if len(back) != 1 || back[0] != rm {
		t.Errorf("round-trip = %+v, want %+v", back, rm)
	}
}

// TestWriteYAMLShape: the hand-rolled YAML emitter quotes strings
// JSON-style, omits zero-valued numerics, and renders the empty stream
// as a flow-style empty sequence.
func TestWriteYAMLShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteYAML(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Errorf("empty stream = %q, want []\\n", buf.String())
	}
	buf.Reset()
	err := WriteYAML(&buf, []Remark{{
		Pass: "rolag", Name: "not-profitable", Status: StatusMissed,
		Func: "f", Reason: "not-profitable",
		Detail: `cost "went" up`, DeltaBytes: 35,
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "- pass: ") {
		t.Errorf("first field not sequence-led:\n%s", out)
	}
	if !strings.Contains(out, `detail: "cost \"went\" up"`) {
		t.Errorf("detail not JSON-escaped:\n%s", out)
	}
	if strings.Contains(out, "lanes:") || strings.Contains(out, "costBefore:") {
		t.Errorf("zero-valued numerics not omitted:\n%s", out)
	}
	if !strings.Contains(out, "deltaBytes: 35") {
		t.Errorf("deltaBytes missing:\n%s", out)
	}
}

// TestTraceContextPlumbing: zero contexts are inert, NewTrace mints
// active ones, Fork keeps the ID on a fresh lane, and WithTrace /
// TraceFrom round-trip through a context.Context.
func TestTraceContextPlumbing(t *testing.T) {
	var zero TraceContext
	if zero.Active() {
		t.Error("zero TraceContext is active")
	}
	if zero.Fork().Active() {
		t.Error("Fork of an inactive context became active")
	}
	tr := NewTrace("abc")
	if !tr.Active() || tr.ID != "abc" {
		t.Errorf("NewTrace(abc) = %+v", tr)
	}
	minted := NewTrace("")
	if minted.ID == "" || len(minted.ID) != 16 {
		t.Errorf("minted trace ID = %q, want 16 hex chars", minted.ID)
	}
	fork := tr.Fork()
	if fork.ID != tr.ID || fork.tid == tr.tid {
		t.Errorf("Fork = %+v from %+v: want same ID, fresh lane", fork, tr)
	}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Errorf("TraceFrom(WithTrace(tr)) = %+v, want %+v", got, tr)
	}
	if got := TraceFrom(context.Background()); got.Active() {
		t.Errorf("TraceFrom(empty ctx) = %+v, want zero", got)
	}
	if WithTrace(context.Background(), zero) != context.Background() {
		t.Error("WithTrace(zero) wrapped the context for nothing")
	}
}

// TestTraceRingOverwrite: the ring keeps the newest capacity events,
// ignores spans under an inactive context, and exports valid Chrome
// trace-event JSON.
func TestTraceRingOverwrite(t *testing.T) {
	disabled(t)
	EnableTracing(true)
	if !TracingEnabled() {
		t.Fatal("TracingEnabled() = false after EnableTracing(true)")
	}
	SetTraceCapacity(4)
	tr := NewTrace("ringtest")
	names := []string{"e0", "e1", "e2", "e3", "e4", "e5"}
	for _, name := range names {
		EndSpan(tr, name, Now().Add(-time.Microsecond), "fn")
		time.Sleep(time.Microsecond)
	}
	// An inactive context must record nothing.
	EndSpan(TraceContext{}, "ignored", Now(), "")
	evs := TraceEvents()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(evs))
	}
	for i, ev := range evs {
		if want := names[i+2]; ev.Name != want {
			t.Errorf("event %d = %q, want %q (newest 4, oldest first)", i, ev.Name, want)
		}
		if ev.Trace != "ringtest" || ev.TID != tr.tid {
			t.Errorf("event %d provenance = %+v", i, ev)
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(chrome.TraceEvents) != 4 {
		t.Fatalf("Chrome trace has %d events, want 4", len(chrome.TraceEvents))
	}
	ev := chrome.TraceEvents[0]
	if ev.Ph != "X" || ev.Args["trace"] != "ringtest" || ev.Args["detail"] != "fn" {
		t.Errorf("Chrome event shape: %+v", ev)
	}
	ResetTrace()
	if evs := TraceEvents(); len(evs) != 0 {
		t.Errorf("ResetTrace left %d events", len(evs))
	}
}

// TestCountByReason: missed remarks tally by Reason (falling back to
// Name), sorted by descending count then reason; passed and analysis
// remarks are excluded.
func TestCountByReason(t *testing.T) {
	remarks := []Remark{
		{Status: StatusMissed, Name: "not-profitable", Reason: "not-profitable"},
		{Status: StatusMissed, Name: "align-reject", Reason: "mismatch-type"},
		{Status: StatusMissed, Name: "align-reject", Reason: "mismatch-type"},
		{Status: StatusMissed, Name: "schedule-reject"}, // empty Reason -> Name
		{Status: StatusPassed, Name: "rolled"},
		{Status: StatusAnalysis, Name: "seed"},
	}
	got := CountByReason(remarks)
	want := []ReasonCount{
		{Reason: "mismatch-type", Count: 2},
		{Reason: "not-profitable", Count: 1},
		{Reason: "schedule-reject", Count: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("CountByReason = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestExplainFallbacks: the report degrades to an explicit sentence for
// an unknown function and for an empty stream, and filters to the
// requested function otherwise.
func TestExplainFallbacks(t *testing.T) {
	var buf bytes.Buffer
	Explain(&buf, nil, "")
	if !strings.Contains(buf.String(), "no remarks recorded") {
		t.Errorf("empty stream: %q", buf.String())
	}
	buf.Reset()
	Explain(&buf, nil, "ghost")
	if !strings.Contains(buf.String(), `no remarks for function "ghost"`) {
		t.Errorf("unknown function: %q", buf.String())
	}
	remarks := []Remark{
		{Pass: "rolag", Name: "rolled", Status: StatusPassed, Func: "a", Block: "entry", Instr: "%t1", Lanes: 4},
		{Pass: "rolag", Name: "not-profitable", Status: StatusMissed, Func: "b", Block: "entry", Instr: "store@0", Reason: "not-profitable", DeltaBytes: 3},
	}
	buf.Reset()
	Explain(&buf, remarks, "b")
	out := buf.String()
	if strings.Contains(out, "function a:") {
		t.Errorf("filter leaked another function:\n%s", out)
	}
	if !strings.Contains(out, "MISSED") || !strings.Contains(out, "[not-profitable]") {
		t.Errorf("missed line not rendered:\n%s", out)
	}
	buf.Reset()
	Explain(&buf, remarks, "all")
	if out := buf.String(); !strings.Contains(out, "function a:") || !strings.Contains(out, "function b:") {
		t.Errorf("'all' filter dropped a function:\n%s", out)
	}
}
