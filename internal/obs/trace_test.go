package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestAdoptTraceID: the wire-boundary sanitizer accepts only 8–64
// lowercase-hex characters; everything else re-mints (empty return).
func TestAdoptTraceID(t *testing.T) {
	ok := []string{"cafe0000", "cafe0000deadbeef", strings.Repeat("a", 64)}
	for _, id := range ok {
		if got := AdoptTraceID(id); got != id {
			t.Errorf("AdoptTraceID(%q) = %q, want accepted", id, got)
		}
	}
	bad := []string{
		"",                        // empty
		"abc",                     // too short
		strings.Repeat("a", 65),   // oversized
		"CAFE0000DEADBEEF",        // uppercase hex is junk on the wire
		"cafe0000deadbeez",        // non-hex
		"cafe0000 deadbeef",       // whitespace
		"../../../etc/passwd0000", // traversal junk
	}
	for _, id := range bad {
		if got := AdoptTraceID(id); got != "" {
			t.Errorf("AdoptTraceID(%q) = %q, want rejected", id, got)
		}
	}
}

// TestAdoptSpanID: parent span IDs must be exactly 16 hex characters.
func TestAdoptSpanID(t *testing.T) {
	if id := NewSpanID(); AdoptSpanID(id) != id {
		t.Errorf("minted span ID %q rejected", id)
	}
	for _, id := range []string{"", "cafe", strings.Repeat("a", 17), "CAFE0000DEADBEEF", "cafe0000deadbeez"} {
		if got := AdoptSpanID(id); got != "" {
			t.Errorf("AdoptSpanID(%q) = %q, want rejected", id, got)
		}
	}
}

// TestTraceRingDropped: overwrites count as drops, Reset zeroes the
// counter, and SetCapacity preserves it.
func TestTraceRingDropped(t *testing.T) {
	r := NewTraceRing(2)
	tr := NewTrace("droptest").InRing(r)
	if r.Dropped() != 0 {
		t.Fatalf("fresh ring Dropped = %d", r.Dropped())
	}
	// Bypass the gate check by adding directly; gate behavior is pinned
	// elsewhere and this test must not flip global state.
	for i := 0; i < 5; i++ {
		r.add(TraceEvent{Name: "e", Trace: tr.ID})
	}
	if got := r.Dropped(); got != 3 {
		t.Errorf("Dropped = %d after 5 adds into capacity 2, want 3", got)
	}
	r.SetCapacity(4)
	if got := r.Dropped(); got != 3 {
		t.Errorf("SetCapacity cleared Dropped (= %d), want preserved 3", got)
	}
	r.Reset()
	if got := r.Dropped(); got != 0 {
		t.Errorf("Reset left Dropped = %d", got)
	}
}

// TestPerRingIsolation: contexts bound to different rings record into
// those rings only — the multi-daemon-in-one-process shape.
func TestPerRingIsolation(t *testing.T) {
	disabled(t)
	EnableTracing(true)
	ra, rb := NewTraceRing(8), NewTraceRing(8)
	ta := NewTrace("aaaa0000").InRing(ra)
	tb := NewTrace("bbbb0000").InRing(rb)
	EndSpan(ta, "in-a", time.Now().Add(-time.Microsecond), "")
	EndSpan(tb, "in-b", time.Now().Add(-time.Microsecond), "")
	if evs := ra.Events(); len(evs) != 1 || evs[0].Name != "in-a" {
		t.Errorf("ring a holds %+v", evs)
	}
	if evs := rb.Events(); len(evs) != 1 || evs[0].Name != "in-b" {
		t.Errorf("ring b holds %+v", evs)
	}
	if evs := TraceEvents(); len(evs) != 0 {
		t.Errorf("default ring caught %d events from ring-bound contexts", len(evs))
	}
	// Fork must preserve the ring binding.
	EndSpan(ta.Fork(), "forked", time.Now().Add(-time.Microsecond), "")
	if evs := ra.Events(); len(evs) != 2 {
		t.Errorf("fork lost the ring binding: %+v", evs)
	}
}

// TestParentAndHopSpans: WithParent stamps every span, EndHopSpan
// records its own span ID + status, and EventsFor filters by trace.
func TestParentAndHopSpans(t *testing.T) {
	disabled(t)
	EnableTracing(true)
	r := NewTraceRing(16)
	hop := NewSpanID()
	tr := NewTrace("cafe0000deadbeef").InRing(r).WithParent(hop)
	if tr.Parent() != hop {
		t.Fatalf("Parent() = %q, want %q", tr.Parent(), hop)
	}
	EndSpan(tr, "child", time.Now().Add(-time.Microsecond), "fn")
	out := NewSpanID()
	EndHopSpan(tr, "hop:peer", time.Now().Add(-time.Microsecond), out, "shard-b", "canceled")
	// Noise under another trace ID must not leak into EventsFor.
	EndSpan(NewTrace("ffff0000").InRing(r), "noise", time.Now().Add(-time.Microsecond), "")

	evs := r.EventsFor("cafe0000deadbeef")
	if len(evs) != 2 {
		t.Fatalf("EventsFor = %d events, want 2: %+v", len(evs), evs)
	}
	for _, ev := range evs {
		if ev.Parent != hop {
			t.Errorf("event %q Parent = %q, want %q", ev.Name, ev.Parent, hop)
		}
	}
	var hopEv *TraceEvent
	for i := range evs {
		if evs[i].Name == "hop:peer" {
			hopEv = &evs[i]
		}
	}
	if hopEv == nil {
		t.Fatal("hop span missing")
	}
	if hopEv.Span != out || hopEv.Status != "canceled" || hopEv.Detail != "shard-b" {
		t.Errorf("hop event = %+v", *hopEv)
	}

	// Filtered Chrome export carries span/parent/status in args and
	// Unix-epoch microsecond timestamps.
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf, "cafe0000deadbeef"); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ts   float64           `json:"ts"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("invalid Chrome JSON: %v\n%s", err, buf.String())
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("filtered export has %d events, want 2", len(chrome.TraceEvents))
	}
	now := float64(time.Now().UnixNano()) / 1e3
	for _, ev := range chrome.TraceEvents {
		if ev.Args["parent"] != hop {
			t.Errorf("chrome event %q parent arg = %q", ev.Name, ev.Args["parent"])
		}
		if ev.Ts < now-60e6 || ev.Ts > now+60e6 {
			t.Errorf("chrome ts %f not Unix-epoch microseconds (now ≈ %f)", ev.Ts, now)
		}
		if ev.Name == "hop:peer" {
			if ev.Args["span"] != out || ev.Args["status"] != "canceled" {
				t.Errorf("hop chrome args = %+v", ev.Args)
			}
		}
	}
}

// TestHopSpanDisabledIsFree: the hop-span site obeys the same
// one-load/zero-alloc contract as End/EndSpan when gates are off.
func TestHopSpanDisabledIsFree(t *testing.T) {
	disabled(t)
	avg := testing.AllocsPerRun(200, func() {
		st := Now()
		EndHopSpan(TraceContext{}, "hop", st, "", "", "")
	})
	if avg != 0 {
		t.Errorf("disabled hop span allocates %.2f/op, want 0", avg)
	}
	if evs := TraceEvents(); len(evs) != 0 {
		t.Errorf("disabled hop span buffered %d events", len(evs))
	}
}
