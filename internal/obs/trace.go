package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext identifies one traced request. The zero value is
// inactive: spans ended under it record nothing. rolagd mints one per
// HTTP request (honoring an incoming X-Trace-Id) and propagates it via
// context through the engine into the pipeline.
type TraceContext struct {
	// ID is the request's trace identifier, echoed in logs, response
	// headers, and trace-event args.
	ID string
	// tid is the Chrome trace "thread" lane; fresh per Fork so
	// concurrent work renders on separate rows.
	tid uint64
}

var tidCounter atomic.Uint64

// NewTrace returns an active trace context with the given ID (a fresh
// one is minted when empty).
func NewTrace(id string) TraceContext {
	if id == "" {
		id = NewTraceID()
	}
	return TraceContext{ID: id, tid: tidCounter.Add(1)}
}

// NewTraceID mints a random 16-hex-character identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the monotone counter; uniqueness within the
		// process is all the ring buffer needs.
		return fmt.Sprintf("t%015x", tidCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Active reports whether spans under this context are recorded.
func (t TraceContext) Active() bool { return t.tid != 0 }

// Fork returns a context with the same ID but a fresh lane, so spans
// from a concurrent worker render on their own row in the trace view.
func (t TraceContext) Fork() TraceContext {
	if !t.Active() {
		return t
	}
	return TraceContext{ID: t.ID, tid: tidCounter.Add(1)}
}

type traceCtxKey struct{}

// WithTrace attaches a trace context to ctx.
func WithTrace(ctx context.Context, t TraceContext) context.Context {
	if !t.Active() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom extracts the trace context from ctx (zero when absent).
func TraceFrom(ctx context.Context) TraceContext {
	t, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return t
}

// TraceEvent is one completed span in the ring buffer.
type TraceEvent struct {
	Name   string
	Trace  string
	TID    uint64
	Start  time.Time
	Dur    time.Duration
	Detail string
}

// DefaultTraceCapacity is the ring-buffer size when none is set.
const DefaultTraceCapacity = 16384

// ring is the bounded in-process trace buffer: newest events overwrite
// oldest. A mutex (not atomics) is fine here — the buffer is touched
// only when tracing is enabled, which the one-load gate already
// guards.
var ring struct {
	mu  sync.Mutex
	buf []TraceEvent
	n   int // total events ever added, for overwrite position
}

// EnableTracing turns trace-event recording on or off process-wide.
func EnableTracing(on bool) { setGate(gateTrace, on) }

// TracingEnabled reports whether tracing is on.
func TracingEnabled() bool { return gates.Load()&gateTrace != 0 }

// SetTraceCapacity resizes the ring buffer and clears it (0 restores
// DefaultTraceCapacity).
func SetTraceCapacity(n int) {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	ring.mu.Lock()
	ring.buf = make([]TraceEvent, 0, n)
	ring.n = 0
	ring.mu.Unlock()
}

// ResetTrace drops every buffered event.
func ResetTrace() {
	ring.mu.Lock()
	ring.buf = ring.buf[:0]
	ring.n = 0
	ring.mu.Unlock()
}

func addEvent(ev TraceEvent) {
	ring.mu.Lock()
	if cap(ring.buf) == 0 {
		ring.buf = make([]TraceEvent, 0, DefaultTraceCapacity)
	}
	if len(ring.buf) < cap(ring.buf) {
		ring.buf = append(ring.buf, ev)
	} else {
		ring.buf[ring.n%len(ring.buf)] = ev
	}
	ring.n++
	ring.mu.Unlock()
}

// TraceEvents returns a copy of the buffered events sorted by start
// time.
func TraceEvents() []TraceEvent {
	ring.mu.Lock()
	out := append([]TraceEvent(nil), ring.buf...)
	ring.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// processStart anchors exported timestamps; Chrome's trace viewer
// wants microseconds from an arbitrary epoch.
var processStart = time.Now()

// chromeEvent is the Chrome trace-event wire format ("X" = complete
// event; ts/dur in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the buffered events as Chrome trace-event
// JSON (load it in chrome://tracing or https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer) error {
	events := TraceEvents()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		args := map[string]string{"trace": ev.Trace}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name,
			Cat:  "rolag",
			Ph:   "X",
			Ts:   float64(ev.Start.Sub(processStart).Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  ev.TID,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
