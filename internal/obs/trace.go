package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext identifies one traced request. The zero value is
// inactive: spans ended under it record nothing. rolagd mints one per
// HTTP request (honoring a valid incoming X-Trace-Id) and propagates
// it via context through the engine into the pipeline. In a cluster
// the router and every shard carry the same ID, each recording into
// its own ring, and the router's trace collector stitches the
// per-process segments back together by that ID.
type TraceContext struct {
	// ID is the request's trace identifier, echoed in logs, response
	// headers, and trace-event args.
	ID string
	// parent is the span ID of the upstream hop that caused this
	// request (the X-Trace-Parent header), stamped on every span
	// recorded under this context so a stitched trace keeps causality
	// across process boundaries. Empty at the trace root.
	parent string
	// ring is where spans under this context are recorded; nil means
	// the process-default ring. Multi-daemon processes (tests, the
	// loadgen harness) give each daemon its own ring so /debug/trace
	// stays per-"process" even in one address space.
	ring *TraceRing
	// tid is the Chrome trace "thread" lane; fresh per Fork so
	// concurrent work renders on separate rows.
	tid uint64
}

var tidCounter atomic.Uint64

// NewTrace returns an active trace context with the given ID (a fresh
// one is minted when empty). The ID is taken as given — callers
// adopting an untrusted header must sanitize it with AdoptTraceID
// first.
func NewTrace(id string) TraceContext {
	if id == "" {
		id = NewTraceID()
	}
	return TraceContext{ID: id, tid: tidCounter.Add(1)}
}

// NewTraceID mints a random 16-hex-character identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the monotone counter; uniqueness within the
		// process is all the ring buffer needs.
		return fmt.Sprintf("t%015x", tidCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a random 16-hex-character span identifier for one
// cross-process hop (the value sent as X-Trace-Parent).
func NewSpanID() string { return NewTraceID() }

// Trace-ID adoption limits. IDs are opaque hex so log lines, ring
// buffers, and stitched traces cannot be polluted by hostile headers:
// anything non-hex, shorter than 8 or longer than 64 characters is
// rejected and the server re-mints instead.
const (
	minTraceIDLen = 8
	maxTraceIDLen = 64
	spanIDLen     = 16
)

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ValidTraceID reports whether s is an acceptable wire trace ID:
// 8 to 64 lowercase-hex characters.
func ValidTraceID(s string) bool {
	return len(s) >= minTraceIDLen && len(s) <= maxTraceIDLen && isHex(s)
}

// AdoptTraceID sanitizes an untrusted X-Trace-Id header: the value is
// returned unchanged when valid and replaced by the empty string
// (mint a fresh one) otherwise.
func AdoptTraceID(s string) string {
	if ValidTraceID(s) {
		return s
	}
	return ""
}

// ValidSpanID reports whether s is an acceptable wire span ID:
// exactly 16 lowercase-hex characters.
func ValidSpanID(s string) bool { return len(s) == spanIDLen && isHex(s) }

// AdoptSpanID sanitizes an untrusted X-Trace-Parent header: the value
// when valid, empty (no parent) otherwise.
func AdoptSpanID(s string) string {
	if ValidSpanID(s) {
		return s
	}
	return ""
}

// Active reports whether spans under this context are recorded.
func (t TraceContext) Active() bool { return t.tid != 0 }

// Parent returns the upstream hop's span ID ("" at the trace root).
func (t TraceContext) Parent() string { return t.parent }

// WithParent returns a copy whose spans record parent as their parent
// span ID (the adopted X-Trace-Parent header).
func (t TraceContext) WithParent(parent string) TraceContext {
	t.parent = parent
	return t
}

// InRing returns a copy whose spans record into r instead of the
// process-default ring (nil restores the default).
func (t TraceContext) InRing(r *TraceRing) TraceContext {
	t.ring = r
	return t
}

// Fork returns a context with the same ID (and ring and parent) but a
// fresh lane, so spans from a concurrent worker render on their own
// row in the trace view.
func (t TraceContext) Fork() TraceContext {
	if !t.Active() {
		return t
	}
	t.tid = tidCounter.Add(1)
	return t
}

type traceCtxKey struct{}

// WithTrace attaches a trace context to ctx.
func WithTrace(ctx context.Context, t TraceContext) context.Context {
	if !t.Active() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom extracts the trace context from ctx (zero when absent).
func TraceFrom(ctx context.Context) TraceContext {
	t, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return t
}

// TraceEvent is one completed span in a ring buffer.
type TraceEvent struct {
	Name  string
	Trace string
	TID   uint64
	Start time.Time
	Dur   time.Duration
	// Detail is free-form context (the function name, typically).
	Detail string
	// Span is this event's own span ID — set only on cross-process
	// hops, where the ID was also sent downstream as X-Trace-Parent.
	Span string
	// Parent is the span ID of the hop that caused this event's
	// request ("" at the trace root).
	Parent string
	// Status distinguishes hop outcomes: "", "ok", "error", or
	// "canceled" (a hedge race's losing leg).
	Status string
}

// DefaultTraceCapacity is the ring-buffer size when none is set.
const DefaultTraceCapacity = 16384

// TraceRing is a bounded trace-event buffer: newest events overwrite
// oldest, and every overwrite counts toward Dropped so silent
// incompleteness under load is visible. A mutex (not atomics) is fine
// here — the buffer is touched only when tracing is enabled, which the
// one-load gate already guards. The zero value is ready to use with
// DefaultTraceCapacity.
type TraceRing struct {
	mu      sync.Mutex
	buf     []TraceEvent
	n       int // total events ever added, for overwrite position
	dropped uint64
}

// NewTraceRing returns a ring holding up to capacity events
// (0 or negative = DefaultTraceCapacity).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{buf: make([]TraceEvent, 0, capacity)}
}

// defaultRing is the process-wide ring used by contexts without an
// explicit ring (rolagc, a standalone rolagd).
var defaultRing = &TraceRing{}

// DefaultRing returns the process-wide trace ring.
func DefaultRing() *TraceRing { return defaultRing }

// EnableTracing turns trace-event recording on or off process-wide.
func EnableTracing(on bool) { setGate(gateTrace, on) }

// TracingEnabled reports whether tracing is on.
func TracingEnabled() bool { return gates.Load()&gateTrace != 0 }

// SetTraceCapacity resizes the default ring and clears it (0 restores
// DefaultTraceCapacity).
func SetTraceCapacity(n int) { defaultRing.SetCapacity(n) }

// ResetTrace drops every event buffered in the default ring.
func ResetTrace() { defaultRing.Reset() }

// TraceEvents returns a copy of the default ring's events sorted by
// start time.
func TraceEvents() []TraceEvent { return defaultRing.Events() }

// TraceDropped returns how many events the default ring has
// overwritten before they were ever exported.
func TraceDropped() uint64 { return defaultRing.Dropped() }

// WriteChromeTrace renders the default ring as Chrome trace-event
// JSON (load it in chrome://tracing or https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer) error { return defaultRing.WriteChrome(w, "") }

// SetCapacity resizes the ring and clears it (0 restores
// DefaultTraceCapacity). The dropped counter is preserved: resizing is
// an operator action, losing the overflow evidence is not.
func (r *TraceRing) SetCapacity(n int) {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	r.mu.Lock()
	r.buf = make([]TraceEvent, 0, n)
	r.n = 0
	r.mu.Unlock()
}

// Reset drops every buffered event and zeroes the dropped counter.
func (r *TraceRing) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.n = 0
	r.dropped = 0
	r.mu.Unlock()
}

// Dropped returns how many events have been overwritten before export
// (the rolagd_trace_dropped_total / router_trace_dropped_total series).
func (r *TraceRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

func (r *TraceRing) add(ev TraceEvent) {
	r.mu.Lock()
	if cap(r.buf) == 0 {
		r.buf = make([]TraceEvent, 0, DefaultTraceCapacity)
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.n%len(r.buf)] = ev
		r.dropped++
	}
	r.n++
	r.mu.Unlock()
}

// Events returns a copy of the buffered events sorted by start time.
func (r *TraceRing) Events() []TraceEvent {
	r.mu.Lock()
	out := append([]TraceEvent(nil), r.buf...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// EventsFor returns the buffered events belonging to one trace ID,
// sorted by start time.
func (r *TraceRing) EventsFor(traceID string) []TraceEvent {
	r.mu.Lock()
	var out []TraceEvent
	for _, ev := range r.buf {
		if ev.Trace == traceID {
			out = append(out, ev)
		}
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// resolveRing maps a context to the ring its spans land in.
func (t TraceContext) resolveRing() *TraceRing {
	if t.ring != nil {
		return t.ring
	}
	return defaultRing
}

// chromeEvent is the Chrome trace-event wire format ("X" = complete
// event; ts/dur in microseconds). Timestamps are Unix-epoch
// microseconds — an arbitrary epoch as far as the viewer cares, but
// one shared by every process on a machine, so segments recorded by
// different processes stitch into one aligned timeline.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

func toChrome(ev TraceEvent) chromeEvent {
	args := map[string]string{"trace": ev.Trace}
	if ev.Detail != "" {
		args["detail"] = ev.Detail
	}
	if ev.Span != "" {
		args["span"] = ev.Span
	}
	if ev.Parent != "" {
		args["parent"] = ev.Parent
	}
	if ev.Status != "" {
		args["status"] = ev.Status
	}
	return chromeEvent{
		Name: ev.Name,
		Cat:  "rolag",
		Ph:   "X",
		Ts:   float64(ev.Start.UnixNano()) / 1e3,
		Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
		PID:  1,
		TID:  ev.TID,
		Args: args,
	}
}

// WriteChrome renders the ring's events — all of them, or only one
// trace's when traceID is non-empty — as Chrome trace-event JSON.
func (r *TraceRing) WriteChrome(w io.Writer, traceID string) error {
	var events []TraceEvent
	if traceID == "" {
		events = r.Events()
	} else {
		events = r.EventsFor(traceID)
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, toChrome(ev))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
