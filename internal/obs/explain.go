package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Explain renders a human-readable "why did/didn't this roll" report
// from a remark stream. fn filters to one function; "" or "all" keeps
// every function. The report walks functions in first-remark order and
// remarks in emission order, so it reads as the optimizer's decision
// log.
func Explain(w io.Writer, remarks []Remark, fn string) {
	var order []string
	byFunc := make(map[string][]Remark)
	for _, r := range remarks {
		if fn != "" && fn != "all" && r.Func != fn {
			continue
		}
		if _, ok := byFunc[r.Func]; !ok {
			order = append(order, r.Func)
		}
		byFunc[r.Func] = append(byFunc[r.Func], r)
	}
	if len(order) == 0 {
		if fn != "" && fn != "all" {
			fmt.Fprintf(w, "no remarks for function %q (nothing attempted, or remarks disabled)\n", fn)
		} else {
			fmt.Fprintln(w, "no remarks recorded")
		}
		return
	}
	for i, name := range order {
		if i > 0 {
			fmt.Fprintln(w)
		}
		explainFunc(w, name, byFunc[name])
	}
}

func explainFunc(w io.Writer, name string, remarks []Remark) {
	rolled, missed := 0, 0
	for _, r := range remarks {
		switch r.Status {
		case StatusPassed:
			rolled++
		case StatusMissed:
			missed++
		}
	}
	fmt.Fprintf(w, "function %s: %d rolled, %d rejected\n", name, rolled, missed)
	block := ""
	for _, r := range remarks {
		if r.Block != block {
			block = r.Block
			if block != "" {
				fmt.Fprintf(w, "  block %s:\n", block)
			}
		}
		fmt.Fprintf(w, "    %s\n", explainLine(r))
	}
}

// explainLine renders one remark as a sentence.
func explainLine(r Remark) string {
	var sb strings.Builder
	switch r.Status {
	case StatusPassed:
		sb.WriteString("PASSED  ")
	case StatusMissed:
		sb.WriteString("MISSED  ")
	default:
		sb.WriteString("note    ")
	}
	switch r.Name {
	case "seed":
		fmt.Fprintf(&sb, "seed group (%s, %s) at %s", r.Kind, lanes(r.Lanes), r.Instr)
	case "align-node":
		fmt.Fprintf(&sb, "aligned %s node", r.Kind)
		if r.Instr != "" {
			fmt.Fprintf(&sb, " at %s", r.Instr)
		}
		if r.Detail != "" {
			fmt.Fprintf(&sb, " (%s)", r.Detail)
		}
	case "rolled":
		fmt.Fprintf(&sb, "rolled %s at %s: %d -> %d bytes (%+d)", lanes(r.Lanes), r.Instr, r.CostBefore, r.CostAfter, r.DeltaBytes)
	case "not-profitable":
		fmt.Fprintf(&sb, "cost model rejected roll at %s: %d -> %d bytes (%+d)", r.Instr, r.CostBefore, r.CostAfter, r.DeltaBytes)
	case "rerolled":
		fmt.Fprintf(&sb, "rerolled loop by factor %d", r.Lanes)
	default:
		fmt.Fprintf(&sb, "%s", r.Name)
		if r.Instr != "" {
			fmt.Fprintf(&sb, " at %s", r.Instr)
		}
		if r.Detail != "" {
			fmt.Fprintf(&sb, ": %s", r.Detail)
		}
	}
	if r.Status == StatusMissed && r.Reason != "" {
		fmt.Fprintf(&sb, " [%s]", r.Reason)
	}
	return sb.String()
}

func lanes(n int) string {
	if n == 1 {
		return "1 lane"
	}
	return fmt.Sprintf("%d lanes", n)
}

// ReasonCount is one row of a rejected-by-reason breakdown.
type ReasonCount struct {
	// Reason is the stable rejection code of a missed remark.
	Reason string `json:"reason"`
	Count  int    `json:"count"`
}

// CountByReason tallies missed remarks by Reason, sorted by descending
// count then reason, for the experiments' rejected-by-reason tables.
func CountByReason(remarks []Remark) []ReasonCount {
	m := make(map[string]int)
	for _, r := range remarks {
		if r.Status != StatusMissed {
			continue
		}
		reason := r.Reason
		if reason == "" {
			reason = r.Name
		}
		m[reason]++
	}
	out := make([]ReasonCount, 0, len(m))
	for reason, n := range m {
		out = append(out, ReasonCount{Reason: reason, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Reason < out[j].Reason
	})
	return out
}
