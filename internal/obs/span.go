package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanBounds are the span-duration histogram bucket upper bounds, in
// seconds. An implicit +Inf bucket (== Count) follows the last bound.
var SpanBounds = []float64{100e-9, 1e-6, 10e-6, 100e-6, 1e-3, 10e-3, 100e-3, 1}

const numSpanBuckets = 8

var spanBoundNanos = [numSpanBuckets]int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}

// maxSpanClasses bounds the registry; classes are registered at
// package-init time (the four RoLAG phases today) and never removed.
const maxSpanClasses = 32

// SpanClass identifies one registered span kind whose durations are
// accumulated into a process-wide histogram when span stats are
// enabled (rolagd's rolagd_phase_seconds series and cmd/rolag-bench's
// per-phase percentiles both read these, so daemon and harness always
// agree on phase boundaries). The timed region also becomes a trace
// event when tracing is on.
type SpanClass int

type spanCounters struct {
	count   atomic.Uint64
	nanos   atomic.Uint64
	buckets [numSpanBuckets]atomic.Uint64
}

var (
	classMu    sync.Mutex
	classCount atomic.Int32
	// classNames holds a copy-on-write snapshot of the registered names
	// so End can read it without taking classMu.
	classNames atomic.Value // []string
	classTimes [maxSpanClasses]spanCounters
)

// RegisterSpanClass registers a named span class and returns its
// handle. Registration is expected at init time; re-registering a name
// returns the existing handle. It panics when the registry is full.
func RegisterSpanClass(name string) SpanClass {
	classMu.Lock()
	defer classMu.Unlock()
	names, _ := classNames.Load().([]string)
	for i, n := range names {
		if n == name {
			return SpanClass(i)
		}
	}
	if len(names) >= maxSpanClasses {
		panic("obs: span class registry full")
	}
	next := append(append([]string(nil), names...), name)
	classNames.Store(next)
	classCount.Store(int32(len(next)))
	return SpanClass(len(next) - 1)
}

// Name returns the class's registered name.
func (c SpanClass) Name() string {
	names, _ := classNames.Load().([]string)
	if int(c) < len(names) {
		return names[c]
	}
	return "unknown"
}

// EnableSpanStats turns per-class duration accounting on or off
// process-wide. Disabled (the default), an instrumented site pays one
// atomic load. Safe for concurrent use.
func EnableSpanStats(on bool) { setGate(gateStats, on) }

// SpanStatsEnabled reports whether span stats are on.
func SpanStatsEnabled() bool { return gates.Load()&gateStats != 0 }

// ResetSpanStats zeroes the accumulated histograms.
func ResetSpanStats() {
	n := int(classCount.Load())
	for i := 0; i < n; i++ {
		c := &classTimes[i]
		c.count.Store(0)
		c.nanos.Store(0)
		for j := range c.buckets {
			c.buckets[j].Store(0)
		}
	}
}

// SpanStat is the accumulated timing of one span class.
type SpanStat struct {
	Name  string
	Count uint64
	Nanos uint64
	// Buckets holds non-cumulative histogram counts per SpanBounds
	// entry; durations above the last bound count only toward Count.
	Buckets [numSpanBuckets]uint64
}

// SpanStats returns a snapshot of every registered class's histogram,
// in registration order.
func SpanStats() []SpanStat {
	names, _ := classNames.Load().([]string)
	out := make([]SpanStat, len(names))
	for i, name := range names {
		c := &classTimes[i]
		out[i].Name = name
		out[i].Count = c.count.Load()
		out[i].Nanos = c.nanos.Load()
		for j := range c.buckets {
			out[i].Buckets[j] = c.buckets[j].Load()
		}
	}
	return out
}

// End closes a span opened with Now: it accumulates the duration into
// the class histogram (stats gate) and records a trace event under tr
// (trace gate). A zero start — Now with everything disabled — is a
// no-op, so call sites need no conditionals.
func (c SpanClass) End(tr TraceContext, start time.Time) {
	if start.IsZero() {
		return
	}
	g := gates.Load()
	if g == 0 {
		return
	}
	d := time.Since(start)
	if g&gateStats != 0 {
		ns := d.Nanoseconds()
		ct := &classTimes[c]
		ct.count.Add(1)
		ct.nanos.Add(uint64(ns))
		for i, bound := range spanBoundNanos {
			if ns <= bound {
				ct.buckets[i].Add(1)
				break
			}
		}
	}
	if g&gateTrace != 0 && tr.Active() {
		tr.resolveRing().add(TraceEvent{Name: c.Name(), Trace: tr.ID, TID: tr.tid, Start: start, Dur: d, Parent: tr.parent})
	}
}

// EndSpan closes a free-form (unregistered) span opened with Now,
// recording it as a trace event only — engine requests, sandboxed pass
// executions, and pipeline stages use this; they want per-request
// timelines, not process-wide histograms. detail lands in the event's
// args (the function name, typically).
func EndSpan(tr TraceContext, name string, start time.Time, detail string) {
	if start.IsZero() || gates.Load()&gateTrace == 0 || !tr.Active() {
		return
	}
	tr.resolveRing().add(TraceEvent{Name: name, Trace: tr.ID, TID: tr.tid, Start: start, Dur: time.Since(start), Detail: detail, Parent: tr.parent})
}

// EndHopSpan closes a cross-process hop span: a span that was given its
// own span ID, which traveled downstream as the X-Trace-Parent header
// so the receiving process's spans attach under it in the stitched
// trace. status distinguishes outcomes ("ok", "error", or "canceled" —
// a hedge race's losing leg). Like EndSpan it ignores a zero start, so
// a disabled site pays one atomic load inside Now and nothing here.
func EndHopSpan(tr TraceContext, name string, start time.Time, spanID, detail, status string) {
	if start.IsZero() || gates.Load()&gateTrace == 0 || !tr.Active() {
		return
	}
	tr.resolveRing().add(TraceEvent{
		Name: name, Trace: tr.ID, TID: tr.tid,
		Start: start, Dur: time.Since(start),
		Detail: detail, Span: spanID, Parent: tr.parent, Status: status,
	})
}
