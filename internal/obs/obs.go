// Package obs is the observability substrate of the pipeline:
// structured optimization remarks, span statistics, and request
// tracing. It is deliberately tiny and dependency-free (it must be
// importable from ir-adjacent packages without cycles) and follows the
// faultpoint discipline for overhead: with every feature disabled —
// the default — an instrumented site pays exactly one atomic load and
// a branch, and allocates nothing.
//
// Three independently-gated features share that one load:
//
//   - Remarks: typed records of optimizer decisions (why a region did
//     or did not roll) carrying function/block/instruction provenance.
//     Remarks are collected per function into plain Collectors (no
//     locks, no timestamps, no pointers), so streams are byte-identical
//     across runs and across serial/parallel pipelines after the
//     deterministic in-function-order merge. Remarks are pulled, not
//     pushed: a nil *Recorder disables them with no global state.
//   - Span stats: per-class duration histograms (the RoLAG phase
//     timers), process-wide atomics behind the stats gate.
//   - Tracing: per-request trace IDs with wall-clock spans recorded
//     into a bounded in-process ring buffer, exported as Chrome
//     trace-event JSON (rolagd's /debug/trace).
package obs

import (
	"sync/atomic"
	"time"
)

// Feature gates, packed into one word so an instrumented site checks
// everything with a single atomic load.
const (
	gateStats uint32 = 1 << iota
	gateTrace
)

var gates atomic.Uint32

func setGate(bit uint32, on bool) {
	for {
		old := gates.Load()
		nw := old &^ bit
		if on {
			nw = old | bit
		}
		if gates.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Now returns the current time when any time-consuming feature (span
// stats or tracing) is enabled and the zero time otherwise. Pair it
// with SpanClass.End or EndSpan, both of which ignore a zero start, so
// a disabled site costs one atomic load and never calls time.Now.
func Now() time.Time {
	if gates.Load() == 0 {
		return time.Time{}
	}
	return time.Now()
}
