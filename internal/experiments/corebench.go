package experiments

// The core benchmark harness behind cmd/rolag-bench: reproducible
// wall-clock, per-phase, and allocation measurements of the RoLAG
// optimizer hot path over the synthesized corpora. The per-phase
// numbers come from the obs span-stat histograms (obs.SpanStats) that
// also feed rolagd's rolagd_phase_seconds metrics, so the daemon and
// the harness always agree on phase boundaries; the histograms are
// plain atomics, so the harness stays correct under Parallelism > 1
// and alongside concurrent load.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"rolag"
	"rolag/internal/obs"
	"rolag/internal/workloads/angha"
	"rolag/internal/workloads/tsvc"
)

// CoreBenchConfig parameterizes one core-benchmark run.
type CoreBenchConfig struct {
	// Corpus selects the workload: "angha" (default) compiles N
	// synthesized AnghaBench-style functions with OptRoLAG; "tsvc"
	// compiles every TSVC kernel with the paper's unroll-8 + RoLAG
	// methodology.
	Corpus string `json:"corpus"`
	// N is the angha corpus size (default 300; ignored for tsvc).
	N int `json:"n"`
	// Seed derives the angha corpus (default 20220402).
	Seed int64 `json:"seed"`
	// Iterations is how many times the whole corpus is compiled
	// (default 5). Percentiles are taken across iterations.
	Iterations int `json:"iterations"`
	// Parallelism is passed to rolag.Config.Parallelism (0 = serial).
	Parallelism int `json:"parallelism"`
}

func (cfg *CoreBenchConfig) defaults() {
	if cfg.Corpus == "" {
		cfg.Corpus = "angha"
	}
	if cfg.N == 0 {
		cfg.N = 300
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20220402
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 5
	}
}

// CoreBenchIteration records one full-corpus compilation.
type CoreBenchIteration struct {
	WallSeconds float64 `json:"wall_seconds"`
	// PhaseSeconds is wall-clock per RoLAG phase for this iteration
	// (seed/align/schedule/codegen), from obs.SpanStats deltas.
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
	// Allocs and AllocBytes are the Go heap allocations performed
	// during the iteration (runtime.MemStats deltas; process-global, so
	// run the harness without concurrent load).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// CoreBenchPhase summarizes one RoLAG phase across iterations.
type CoreBenchPhase struct {
	Phase string `json:"phase"`
	// Count is the total number of phase executions across the run.
	Count uint64 `json:"count"`
	// P50Seconds and P99Seconds are percentiles of the per-iteration
	// phase totals. With few iterations p99 degrades to the maximum;
	// the iterations array preserves the raw data.
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	SumSeconds float64 `json:"sum_seconds"`
}

// CoreBenchMachine identifies the measurement environment.
type CoreBenchMachine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CoreBench is the harness result, serialized to results/BENCH_core.json.
type CoreBench struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	Machine     CoreBenchMachine `json:"machine"`
	Config      CoreBenchConfig  `json:"config"`
	Methodology string           `json:"methodology"`

	// Corpus accounting, so runs are comparable only when they measured
	// the same work.
	Functions   int `json:"functions"`
	LoopsRolled int `json:"loops_rolled_per_iteration"`

	WallP50Seconds  float64 `json:"wall_p50_seconds"`
	WallP99Seconds  float64 `json:"wall_p99_seconds"`
	WallMeanSeconds float64 `json:"wall_mean_seconds"`
	// NsPerFunction normalizes wall-clock by corpus size; the
	// regression gate compares this, so baselines with different N stay
	// comparable.
	NsPerFunction      float64 `json:"ns_per_function"`
	AllocsPerIteration uint64  `json:"allocs_per_iteration"`
	BytesPerIteration  uint64  `json:"bytes_per_iteration"`

	Phases     []CoreBenchPhase     `json:"phases"`
	Iterations []CoreBenchIteration `json:"iterations"`
}

// coreBenchUnit is one translation unit of the benchmark workload.
type coreBenchUnit struct {
	name string
	src  string
	cfg  rolag.Config
}

func coreBenchUnits(cfg *CoreBenchConfig) ([]coreBenchUnit, error) {
	switch cfg.Corpus {
	case "angha":
		funcs := angha.Generate(cfg.N, cfg.Seed)
		units := make([]coreBenchUnit, len(funcs))
		for i, fn := range funcs {
			units[i] = coreBenchUnit{
				name: fn.Name,
				src:  fn.Src,
				cfg:  rolag.Config{Name: fn.Name, Opt: rolag.OptRoLAG, Parallelism: cfg.Parallelism},
			}
		}
		return units, nil
	case "tsvc":
		var units []coreBenchUnit
		for _, kr := range tsvc.Kernels() {
			units = append(units, coreBenchUnit{
				name: kr.Name,
				src:  kr.Src,
				cfg: rolag.Config{
					Name: kr.Name, Unroll: 8, Opt: rolag.OptRoLAG,
					Flatten: true, Parallelism: cfg.Parallelism,
				},
			})
		}
		return units, nil
	default:
		return nil, fmt.Errorf("corebench: unknown corpus %q (want angha or tsvc)", cfg.Corpus)
	}
}

// RunCoreBench compiles the configured corpus Iterations times and
// aggregates wall-clock, per-phase, and allocation statistics. Phase
// timing is enabled for the duration of the run and restored after.
func RunCoreBench(cfg CoreBenchConfig) (*CoreBench, error) {
	cfg.defaults()
	units, err := coreBenchUnits(&cfg)
	if err != nil {
		return nil, err
	}

	wasOn := obs.SpanStatsEnabled()
	obs.EnableSpanStats(true)
	defer obs.EnableSpanStats(wasOn)

	out := &CoreBench{
		Schema:      "rolag-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Machine: CoreBenchMachine{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Config:    cfg,
		Functions: len(units),
		Methodology: "Each iteration compiles the full corpus through rolag.Build " +
			"(frontend + canonicalization + RoLAG + cleanup) in one goroutine; " +
			"wall-clock is per iteration, phase times are obs.SpanStats deltas " +
			"(atomic histograms, parallel-safe), " +
			"allocations are runtime.MemStats deltas after a forced GC. " +
			"Percentiles are across iterations; p99 degrades to the maximum for small runs.",
	}

	phaseNames := phaseNameOrder()
	phaseCounts := make([]uint64, len(phaseNames))
	perPhase := make([][]float64, len(phaseNames))
	var walls []float64
	for it := 0; it < cfg.Iterations; it++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		obs.ResetSpanStats()

		rolled := 0
		start := time.Now()
		for _, u := range units {
			res, err := rolag.Build(u.src, u.cfg)
			if err != nil {
				return nil, fmt.Errorf("corebench %s: %w", u.name, err)
			}
			if res.Stats != nil {
				rolled += res.Stats.LoopsRolled
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		out.LoopsRolled = rolled

		timings := phaseSnapshots(phaseNames)
		iter := CoreBenchIteration{
			WallSeconds:  wall.Seconds(),
			PhaseSeconds: make(map[string]float64, len(phaseNames)),
			Allocs:       after.Mallocs - before.Mallocs,
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		}
		for p, name := range phaseNames {
			sec := float64(timings[p].Nanos) / 1e9
			iter.PhaseSeconds[name] = sec
			perPhase[p] = append(perPhase[p], sec)
			phaseCounts[p] += timings[p].Count
		}
		out.Iterations = append(out.Iterations, iter)
		walls = append(walls, wall.Seconds())
	}

	out.WallP50Seconds = percentile(walls, 0.50)
	out.WallP99Seconds = percentile(walls, 0.99)
	for _, w := range walls {
		out.WallMeanSeconds += w
	}
	out.WallMeanSeconds /= float64(len(walls))
	out.NsPerFunction = out.WallMeanSeconds * 1e9 / float64(len(units))
	var allocs, bytes uint64
	for _, it := range out.Iterations {
		allocs += it.Allocs
		bytes += it.AllocBytes
	}
	out.AllocsPerIteration = allocs / uint64(len(out.Iterations))
	out.BytesPerIteration = bytes / uint64(len(out.Iterations))

	for p, name := range phaseNames {
		ph := CoreBenchPhase{
			Phase:      name,
			Count:      phaseCounts[p],
			P50Seconds: percentile(perPhase[p], 0.50),
			P99Seconds: percentile(perPhase[p], 0.99),
		}
		for _, s := range perPhase[p] {
			ph.SumSeconds += s
		}
		out.Phases = append(out.Phases, ph)
	}
	return out, nil
}

// phaseNameOrder returns the RoLAG phase labels in pipeline order —
// the registration order of the obs span classes.
func phaseNameOrder() []string {
	names := make([]string, 0, 4)
	for _, st := range obs.SpanStats() {
		names = append(names, st.Name)
	}
	return names
}

// phaseSnapshots reads the current span stats for the named classes,
// in the same order.
func phaseSnapshots(names []string) []obs.SpanStat {
	stats := obs.SpanStats()
	byName := make(map[string]obs.SpanStat, len(stats))
	for _, st := range stats {
		byName[st.Name] = st
	}
	out := make([]obs.SpanStat, len(names))
	for i, name := range names {
		out[i] = byName[name]
	}
	return out
}

// percentile returns the q-th percentile (0..1) of xs using
// nearest-rank on a sorted copy; 0 for an empty slice.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
