package experiments

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// fakeRolagd serves the rolagd wire protocol on top of a real engine,
// so the daemon driver can be validated end-to-end without a process
// boundary. shedFirst makes the handler reject the first shedFirst
// requests with 429 to exercise the client's retry path.
func fakeRolagd(t *testing.T, shedFirst int64) *httptest.Server {
	t.Helper()
	engine := service.New(service.Config{Workers: 2, CacheEntries: -1})
	t.Cleanup(func() { engine.Close(context.Background()) })
	var seen atomic.Int64
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/compile" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		if seen.Add(1) <= shedFirst {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(rolagdapi.ErrorResponse{Error: "shed"})
			return
		}
		var req rolagdapi.CompileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		sreq, err := req.ToService()
		if err != nil {
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(rolagdapi.ErrorResponse{Error: err.Error()})
			return
		}
		resp, err := engine.Compile(r.Context(), sreq)
		if err != nil {
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(rolagdapi.ErrorResponse{Error: err.Error()})
			return
		}
		out := rolagdapi.CompileResponse{
			BinaryAfter: resp.BinaryAfter,
			Rerolled:    resp.Rerolled,
			Remarks:     resp.Remarks,
		}
		if resp.Stats != nil {
			out.LoopsRolled = resp.Stats.LoopsRolled
			out.NodeCounts = rolagdapi.NodeCountsToWire(resp.Stats.NodeCounts)
		}
		json.NewEncoder(w).Encode(out)
	}))
}

// TestRunAnghaDaemonMatchesSerial checks the remote driver reproduces
// the serial reference exactly — same corpus, same aggregation, deeply
// equal summaries — through a wire round-trip.
func TestRunAnghaDaemonMatchesSerial(t *testing.T) {
	srv := fakeRolagd(t, 0)
	defer srv.Close()

	n := 30
	want, err := RunAngha(AnghaConfig{N: n, Serial: true})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	got, err := RunAngha(AnghaConfig{N: n, Daemon: srv.URL})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("daemon summary diverged from serial reference:\nserial: %+v\ndaemon: %+v", want, got)
	}
}

// TestRunAnghaDaemonRetriesShed checks the driver rides out load
// shedding: the fake daemon 429s the first few requests and the
// client's backoff retries them to completion.
func TestRunAnghaDaemonRetriesShed(t *testing.T) {
	srv := fakeRolagd(t, 5)
	defer srv.Close()

	n := 10
	want, err := RunAngha(AnghaConfig{N: n, Serial: true})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	got, err := RunAngha(AnghaConfig{N: n, Daemon: srv.URL})
	if err != nil {
		t.Fatalf("daemon with shedding: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("daemon summary diverged from serial reference after retries")
	}
}
