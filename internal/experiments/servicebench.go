package experiments

import (
	"context"
	"reflect"
	"time"

	"rolag/internal/service"
)

// ServiceBenchConfig tunes the service-mode benchmark.
type ServiceBenchConfig struct {
	// N is the AnghaBench corpus size to drive (default 600).
	N int
	// Seed drives the generator (0 = the experiment default).
	Seed int64
	// Workers sizes the engine pool (0 = GOMAXPROCS).
	Workers int
}

// ServiceBench is the machine-readable record cmd/experiments writes to
// BENCH_service.json so successive PRs have a performance trajectory.
type ServiceBench struct {
	// Corpus and pool shape.
	N       int `json:"n"`
	Workers int `json:"workers"`
	// Wall-clock seconds for the serial reference driver, the parallel
	// cold-cache run, and the parallel warm-cache rerun.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	// Speedup is serial/parallel (cold cache).
	Speedup float64 `json:"speedup"`
	// WarmSpeedup is serial/warm (every request a cache hit).
	WarmSpeedup float64 `json:"warm_speedup"`
	// FunctionsPerSecond is corpus throughput of the parallel cold run.
	FunctionsPerSecond float64 `json:"functions_per_second"`
	// ColdHitRate is the cache+dedup hit rate of the cold run (nonzero
	// when the generated corpus contains duplicate sources).
	ColdHitRate float64 `json:"cold_hit_rate"`
	// WarmHitRate is the hit rate of the warm rerun (expected ≈1).
	WarmHitRate float64 `json:"warm_hit_rate"`
	// Identical records that the parallel driver's summary was deeply
	// equal to the serial driver's.
	Identical bool `json:"identical_to_serial"`
}

// RunServiceBench times the AnghaBench corpus through the serial
// reference driver and through the engine (cold, then warm cache), and
// verifies the two drivers agree result-for-result.
func RunServiceBench(cfg ServiceBenchConfig) (*ServiceBench, error) {
	if cfg.N == 0 {
		cfg.N = 600
	}
	b := &ServiceBench{N: cfg.N}

	start := time.Now()
	serial, err := RunAngha(AnghaConfig{N: cfg.N, Seed: cfg.Seed, Serial: true})
	if err != nil {
		return nil, err
	}
	b.SerialSeconds = time.Since(start).Seconds()

	engine := service.New(service.Config{Workers: cfg.Workers})
	defer engine.Close(context.Background())
	b.Workers = engine.Workers()

	start = time.Now()
	parallel, err := RunAngha(AnghaConfig{N: cfg.N, Seed: cfg.Seed, Engine: engine})
	if err != nil {
		return nil, err
	}
	b.ParallelSeconds = time.Since(start).Seconds()
	cold := engine.Metrics()
	b.ColdHitRate = cold.HitRate()

	start = time.Now()
	warm, err := RunAngha(AnghaConfig{N: cfg.N, Seed: cfg.Seed, Engine: engine})
	if err != nil {
		return nil, err
	}
	b.WarmSeconds = time.Since(start).Seconds()
	after := engine.Metrics()
	if d := after.Requests - cold.Requests; d > 0 {
		b.WarmHitRate = float64(after.CacheHits+after.DedupHits-cold.CacheHits-cold.DedupHits) / float64(d)
	}

	if b.ParallelSeconds > 0 {
		b.Speedup = b.SerialSeconds / b.ParallelSeconds
		b.FunctionsPerSecond = float64(cfg.N) / b.ParallelSeconds
	}
	if b.WarmSeconds > 0 {
		b.WarmSpeedup = b.SerialSeconds / b.WarmSeconds
	}
	b.Identical = reflect.DeepEqual(serial, parallel) && reflect.DeepEqual(serial, warm)
	return b, nil
}
