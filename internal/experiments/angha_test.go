package experiments_test

import (
	"testing"

	"rolag/internal/experiments"
)

func TestRunAngha(t *testing.T) {
	s, err := experiments.RunAngha(experiments.AnghaConfig{N: 800})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("total=%d affected=%d mean=%.2f%% best=%.2f%% regressions=%d llvm=%d",
		s.Total, len(s.Affected), s.MeanReduction, s.BestReduction, s.Regressions, s.AffectedLLVM)
	t.Logf("node counts: %v", s.NodeCounts)
	t.Logf("family affected: %v", s.FamilyAffected)
	if len(s.Affected) == 0 {
		t.Fatal("no affected functions")
	}
	if s.AffectedLLVM >= len(s.Affected)/10 {
		t.Errorf("LLVM rerolling affected %d functions; paper expects orders of magnitude fewer than RoLAG's %d", s.AffectedLLVM, len(s.Affected))
	}
	if s.BestReduction < 60 {
		t.Errorf("best reduction %.1f%% < 60%%; paper's best (KVM field copy) is ~90%%", s.BestReduction)
	}
	if s.MeanReduction < 3 {
		t.Errorf("mean reduction %.2f%% too small", s.MeanReduction)
	}
}
