package experiments

import (
	"fmt"
	"sort"

	"rolag"
	rl "rolag/internal/rolag"
	"rolag/internal/workloads/angha"
)

// AnghaResult is one corpus function's outcome.
type AnghaResult struct {
	Name      string
	Family    string
	SizeBase  int
	SizeRoLAG int
	SizeLLVM  int
	Rolled    int
}

// Red returns the RoLAG binary-size reduction in percent (negative =
// growth, the paper's false positives).
func (r *AnghaResult) Red() float64 { return pct(r.SizeBase, r.SizeRoLAG) }

// AnghaSummary aggregates the §V.A experiment.
type AnghaSummary struct {
	Total int
	// Affected holds the functions whose size changed under RoLAG,
	// sorted by reduction descending — the Fig. 15 curve.
	Affected []AnghaResult
	// MeanReduction is the average over affected functions (the paper's
	// 9.12%).
	MeanReduction float64
	// BestReduction is the top of the curve (the paper's ~90% KVM field
	// copy).
	BestReduction float64
	// Regressions counts affected functions that grew (profitability
	// false positives).
	Regressions int
	// AffectedLLVM counts functions changed by the reroll baseline (the
	// paper: negligible, <50 of 1M).
	AffectedLLVM int
	// NodeCounts tallies node kinds over profitable graphs — Fig. 16.
	NodeCounts map[rl.NodeKind]int
	// FamilyAffected maps generator family to affected count
	// (diagnostic).
	FamilyAffected map[string]int
}

// AnghaConfig tunes the corpus run.
type AnghaConfig struct {
	// N is the corpus size (default 2000).
	N int
	// Seed drives the generator.
	Seed int64
}

// RunAngha reproduces Fig. 15 and Fig. 16 on the synthesized corpus.
func RunAngha(cfg AnghaConfig) (*AnghaSummary, error) {
	if cfg.N == 0 {
		cfg.N = 2000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20220402 // CGO 2022 presentation date
	}
	funcs := angha.Generate(cfg.N, cfg.Seed)
	summary := &AnghaSummary{
		Total:          len(funcs),
		NodeCounts:     make(map[rl.NodeKind]int),
		FamilyAffected: make(map[string]int),
	}
	for _, fn := range funcs {
		base, err := rolag.Build(fn.Src, rolag.Config{Name: fn.Name, Opt: rolag.OptNone})
		if err != nil {
			return nil, fmt.Errorf("angha %s: %w", fn.Name, err)
		}
		rg, err := rolag.Build(fn.Src, rolag.Config{Name: fn.Name, Opt: rolag.OptRoLAG})
		if err != nil {
			return nil, fmt.Errorf("angha %s (rolag): %w", fn.Name, err)
		}
		lv, err := rolag.Build(fn.Src, rolag.Config{Name: fn.Name, Opt: rolag.OptLLVMReroll})
		if err != nil {
			return nil, fmt.Errorf("angha %s (llvm): %w", fn.Name, err)
		}
		res := AnghaResult{
			Name:      fn.Name,
			Family:    fn.Family,
			SizeBase:  base.BinaryAfter,
			SizeRoLAG: rg.BinaryAfter,
			SizeLLVM:  lv.BinaryAfter,
			Rolled:    rg.Stats.LoopsRolled,
		}
		if lv.Rerolled > 0 && res.SizeLLVM != res.SizeBase {
			summary.AffectedLLVM++
		}
		if res.Rolled > 0 && res.SizeRoLAG != res.SizeBase {
			summary.Affected = append(summary.Affected, res)
			summary.FamilyAffected[fn.Family]++
			if res.SizeRoLAG < res.SizeBase {
				for k, v := range rg.Stats.NodeCounts {
					summary.NodeCounts[k] += v
				}
			} else {
				summary.Regressions++
			}
		}
	}
	sort.SliceStable(summary.Affected, func(i, j int) bool {
		return summary.Affected[i].Red() > summary.Affected[j].Red()
	})
	if len(summary.Affected) > 0 {
		for _, r := range summary.Affected {
			summary.MeanReduction += r.Red()
		}
		summary.MeanReduction /= float64(len(summary.Affected))
		summary.BestReduction = summary.Affected[0].Red()
	}
	return summary, nil
}
