package experiments

import (
	"context"
	"fmt"
	"sort"

	"rolag"
	"rolag/internal/obs"
	rl "rolag/internal/rolag"
	"rolag/internal/service"
	"rolag/internal/workloads/angha"
)

// AnghaResult is one corpus function's outcome.
type AnghaResult struct {
	Name      string
	Family    string
	SizeBase  int
	SizeRoLAG int
	SizeLLVM  int
	Rolled    int
}

// Red returns the RoLAG binary-size reduction in percent (negative =
// growth, the paper's false positives).
func (r *AnghaResult) Red() float64 { return pct(r.SizeBase, r.SizeRoLAG) }

// AnghaSummary aggregates the §V.A experiment.
type AnghaSummary struct {
	Total int
	// Affected holds the functions whose size changed under RoLAG,
	// sorted by reduction descending — the Fig. 15 curve.
	Affected []AnghaResult
	// MeanReduction is the average over affected functions (the paper's
	// 9.12%).
	MeanReduction float64
	// BestReduction is the top of the curve (the paper's ~90% KVM field
	// copy).
	BestReduction float64
	// Regressions counts affected functions that grew (profitability
	// false positives).
	Regressions int
	// AffectedLLVM counts functions changed by the reroll baseline (the
	// paper: negligible, <50 of 1M).
	AffectedLLVM int
	// NodeCounts tallies node kinds over profitable graphs — Fig. 16.
	NodeCounts map[rl.NodeKind]int
	// FamilyAffected maps generator family to affected count
	// (diagnostic).
	FamilyAffected map[string]int
	// RejectedByReason tallies every rejected rolling decision across
	// the corpus by its stable reason code (not-profitable,
	// seeds-not-isomorphic, circular-dependence, ...), from the
	// optimization remarks the RoLAG builds record. It explains the gap
	// between candidates and Affected.
	RejectedByReason []obs.ReasonCount
}

// AnghaConfig tunes the corpus run.
type AnghaConfig struct {
	// N is the corpus size (default 2000).
	N int
	// Seed drives the generator.
	Seed int64
	// Engine optionally supplies a shared compilation engine; nil makes
	// the run start (and drain) a temporary one.
	Engine *service.Engine
	// Serial forces the original single-threaded facade driver — the
	// reference path the parallel engine driver is validated against.
	Serial bool
	// Daemon, when non-empty, is the base URL of a running rolagd
	// instance; the corpus is compiled remotely through the retrying
	// rolagdapi client instead of an in-process engine. Takes precedence
	// over Engine and Serial.
	Daemon string
}

// anghaBuild is the slice of one compilation the aggregation needs.
type anghaBuild struct {
	binaryAfter int
	rolled      int // RoLAG loops rolled
	nodeCounts  map[rl.NodeKind]int
	rerolled    int // LLVM baseline loops rerolled
	// remarks is the RoLAG build's optimization-remark stream, for the
	// rejected-by-reason aggregation.
	remarks []rolag.Remark
}

// anghaConfigs returns the three per-function pipeline configurations of
// the §V.A experiment, in aggregation order (base, RoLAG, LLVM). The
// RoLAG build records remarks so the summary can break rejections down
// by reason; the stream is deterministic, so it cannot perturb the
// serial/engine/daemon parity.
func anghaConfigs(name string) [3]rolag.Config {
	return [3]rolag.Config{
		{Name: name, Opt: rolag.OptNone},
		{Name: name, Opt: rolag.OptRoLAG, Remarks: true},
		{Name: name, Opt: rolag.OptLLVMReroll},
	}
}

// RunAngha reproduces Fig. 15 and Fig. 16 on the synthesized corpus. By
// default the corpus fans out over the service engine's worker pool;
// cfg.Serial recovers the paper-faithful one-at-a-time driver, and
// cfg.Daemon offloads compilation to a remote rolagd over HTTP. All
// paths aggregate identically, so their summaries are deeply equal.
func RunAngha(cfg AnghaConfig) (*AnghaSummary, error) {
	if cfg.N == 0 {
		cfg.N = 2000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20220402 // CGO 2022 presentation date
	}
	funcs := angha.Generate(cfg.N, cfg.Seed)
	if cfg.Daemon != "" {
		builds, err := runAnghaDaemon(context.Background(), cfg.Daemon, funcs)
		if err != nil {
			return nil, err
		}
		return aggregateAngha(funcs, builds), nil
	}
	builds := make([][3]anghaBuild, len(funcs))
	if cfg.Serial {
		for i, fn := range funcs {
			for c, bcfg := range anghaConfigs(fn.Name) {
				res, err := rolag.Build(fn.Src, bcfg)
				if err != nil {
					return nil, fmt.Errorf("angha %s (%s): %w", fn.Name, bcfg.Opt, err)
				}
				builds[i][c] = anghaBuild{binaryAfter: res.BinaryAfter, rerolled: res.Rerolled, remarks: res.Remarks}
				if res.Stats != nil {
					builds[i][c].rolled = res.Stats.LoopsRolled
					builds[i][c].nodeCounts = res.Stats.NodeCounts
				}
			}
		}
	} else {
		engine := cfg.Engine
		if engine == nil {
			engine = service.New(service.Config{})
			defer engine.Close(context.Background())
		}
		reqs := make([]service.Request, 0, 3*len(funcs))
		for _, fn := range funcs {
			for _, bcfg := range anghaConfigs(fn.Name) {
				reqs = append(reqs, service.Request{Source: fn.Src, Config: bcfg})
			}
		}
		items := engine.CompileBatch(context.Background(), reqs)
		for i, fn := range funcs {
			for c := 0; c < 3; c++ {
				item := items[3*i+c]
				if item.Err != nil {
					return nil, fmt.Errorf("angha %s (%s): %w", fn.Name, reqs[3*i+c].Config.Opt, item.Err)
				}
				builds[i][c] = anghaBuild{binaryAfter: item.Resp.BinaryAfter, rerolled: item.Resp.Rerolled, remarks: item.Resp.Remarks}
				if item.Resp.Stats != nil {
					builds[i][c].rolled = item.Resp.Stats.LoopsRolled
					builds[i][c].nodeCounts = item.Resp.Stats.NodeCounts
				}
			}
		}
	}
	return aggregateAngha(funcs, builds), nil
}

// aggregateAngha folds per-function builds into the summary. Shared by
// the serial and parallel drivers so both produce identical output for
// identical per-function results.
func aggregateAngha(funcs []angha.Function, builds [][3]anghaBuild) *AnghaSummary {
	summary := &AnghaSummary{
		Total:          len(funcs),
		NodeCounts:     make(map[rl.NodeKind]int),
		FamilyAffected: make(map[string]int),
	}
	var remarks []rolag.Remark
	for i, fn := range funcs {
		remarks = append(remarks, builds[i][1].remarks...)
		base, rg, lv := builds[i][0], builds[i][1], builds[i][2]
		res := AnghaResult{
			Name:      fn.Name,
			Family:    fn.Family,
			SizeBase:  base.binaryAfter,
			SizeRoLAG: rg.binaryAfter,
			SizeLLVM:  lv.binaryAfter,
			Rolled:    rg.rolled,
		}
		if lv.rerolled > 0 && res.SizeLLVM != res.SizeBase {
			summary.AffectedLLVM++
		}
		if res.Rolled > 0 && res.SizeRoLAG != res.SizeBase {
			summary.Affected = append(summary.Affected, res)
			summary.FamilyAffected[fn.Family]++
			if res.SizeRoLAG < res.SizeBase {
				for k, v := range rg.nodeCounts {
					summary.NodeCounts[k] += v
				}
			} else {
				summary.Regressions++
			}
		}
	}
	sort.SliceStable(summary.Affected, func(i, j int) bool {
		return summary.Affected[i].Red() > summary.Affected[j].Red()
	})
	if len(summary.Affected) > 0 {
		for _, r := range summary.Affected {
			summary.MeanReduction += r.Red()
		}
		summary.MeanReduction /= float64(len(summary.Affected))
		summary.BestReduction = summary.Affected[0].Red()
	}
	summary.RejectedByReason = obs.CountByReason(remarks)
	return summary
}
