package experiments_test

import (
	"testing"

	"rolag/internal/experiments"
)

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 is slow")
	}
	rows, err := experiments.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	neg := 0
	for _, r := range rows {
		t.Logf("%-8s %-16s size=%8.1fKB red=%+7.2fKB (%+5.2f%%; paper %+5.2f%%) rolled=%d llvm=%d",
			r.Suite, r.Name, r.SizeKB, r.ReductionKB, r.ReductionPct, r.PaperRedPct, r.RolledLoops, r.LLVMRerolled)
		if r.LLVMRerolled != 0 {
			t.Errorf("%s: LLVM rerolling triggered %d times; paper reports none on full programs", r.Name, r.LLVMRerolled)
		}
		if r.ReductionPct < 0 {
			neg++
		}
		if r.PaperRedPct >= 1.0 && r.ReductionPct <= 0 {
			t.Errorf("%s: paper reports a clear win (%.1f%%), we measured %.2f%%", r.Name, r.PaperRedPct, r.ReductionPct)
		}
	}
	if neg == 0 {
		t.Error("expected at least one regressing program (paper: typeset, sha, xz_s, mcf_s)")
	}
}
