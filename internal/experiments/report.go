package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rolag/internal/backend/calib"
	rl "rolag/internal/rolag"
)

// Report renders every experiment artifact as a text table and a CSV,
// mirroring the figures/tables of the paper.
type Report struct {
	// Dir receives the CSV files; empty disables file output.
	Dir string
	// W receives the human-readable tables (default os.Stdout).
	W io.Writer
}

func (r *Report) w() io.Writer {
	if r.W == nil {
		return os.Stdout
	}
	return r.W
}

func (r *Report) writeCSV(name string, header []string, rows [][]string) error {
	if r.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(header, ","))
	sb.WriteByte('\n')
	for _, row := range rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(r.Dir, name), []byte(sb.String()), 0o644)
}

// Fig15 renders the AnghaBench reduction curve.
func (r *Report) Fig15(s *AnghaSummary) error {
	fmt.Fprintf(r.w(), "\n== Fig. 15: code-size reduction on the AnghaBench corpus ==\n")
	fmt.Fprintf(r.w(), "corpus: %d functions; affected by RoLAG: %d; by LLVM rerolling: %d\n",
		s.Total, len(s.Affected), s.AffectedLLVM)
	fmt.Fprintf(r.w(), "mean reduction over affected functions: %.2f%% (paper: 9.12%%)\n", s.MeanReduction)
	fmt.Fprintf(r.w(), "best: %.2f%% (paper: ~90%%, the KVM field copy); regressions: %d\n",
		s.BestReduction, s.Regressions)
	fmt.Fprintf(r.w(), "curve (sorted reduction %%, every 10th function):\n  ")
	for i, a := range s.Affected {
		if i%10 == 0 {
			fmt.Fprintf(r.w(), "%.0f ", a.Red())
		}
	}
	fmt.Fprintln(r.w())
	rows := make([][]string, 0, len(s.Affected))
	for i, a := range s.Affected {
		rows = append(rows, []string{
			fmt.Sprint(i), a.Name, a.Family,
			fmt.Sprint(a.SizeBase), fmt.Sprint(a.SizeRoLAG), fmt.Sprintf("%.3f", a.Red()),
		})
	}
	return r.writeCSV("fig15-angha-curve.csv",
		[]string{"rank", "function", "family", "size_base", "size_rolag", "reduction_pct"}, rows)
}

// nodeKindOrder is the presentation order for breakdowns.
var nodeKindOrder = []rl.NodeKind{
	rl.KindMatch, rl.KindIdentical, rl.KindMismatch, rl.KindIntSeq,
	rl.KindRecurrence, rl.KindReduction, rl.KindJoint,
}

func (r *Report) nodeBreakdown(title, csvName string, counts map[rl.NodeKind]int) error {
	fmt.Fprintf(r.w(), "\n== %s ==\n", title)
	total := 0
	for _, c := range counts {
		total += c
	}
	var rows [][]string
	for _, k := range nodeKindOrder {
		c := counts[k]
		pctv := 0.0
		if total > 0 {
			pctv = 100 * float64(c) / float64(total)
		}
		fmt.Fprintf(r.w(), "  %-11s %6d (%5.1f%%)\n", k, c, pctv)
		rows = append(rows, []string{k.String(), fmt.Sprint(c), fmt.Sprintf("%.2f", pctv)})
	}
	return r.writeCSV(csvName, []string{"node_kind", "count", "pct"}, rows)
}

// Fig16 renders the AnghaBench node-kind breakdown.
func (r *Report) Fig16(s *AnghaSummary) error {
	return r.nodeBreakdown("Fig. 16: node kinds in profitable alignment graphs (AnghaBench)",
		"fig16-angha-nodes.csv", s.NodeCounts)
}

// Rejections renders the rejected-by-reason breakdown built from the
// corpus run's optimization remarks: every candidate RoLAG considered
// and turned down, keyed by the stable reason code.
func (r *Report) Rejections(s *AnghaSummary) error {
	fmt.Fprintf(r.w(), "\n== Rejected rolling decisions by reason (AnghaBench, from remarks) ==\n")
	if len(s.RejectedByReason) == 0 {
		fmt.Fprintln(r.w(), "  (no rejections recorded)")
		return nil
	}
	total := 0
	for _, rc := range s.RejectedByReason {
		total += rc.Count
	}
	var rows [][]string
	for _, rc := range s.RejectedByReason {
		fmt.Fprintf(r.w(), "  %-26s %6d (%5.1f%%)\n", rc.Reason, rc.Count, 100*float64(rc.Count)/float64(total))
		rows = append(rows, []string{rc.Reason, fmt.Sprint(rc.Count)})
	}
	return r.writeCSV("angha-rejections.csv", []string{"reason", "count"}, rows)
}

// Table1 renders the MiBench/SPEC table.
func (r *Report) Table1(rows []Table1Row) error {
	fmt.Fprintf(r.w(), "\n== Table I: code reduction on full programs (MiBench, SPEC 2017) ==\n")
	fmt.Fprintf(r.w(), "%-8s %-16s %10s %10s %8s %8s %6s\n",
		"suite", "program", "size KB", "red KB", "red %", "paper %", "loops")
	var csvRows [][]string
	for _, row := range rows {
		fmt.Fprintf(r.w(), "%-8s %-16s %10.1f %10.2f %8.2f %8.2f %6d\n",
			row.Suite, row.Name, row.SizeKB, row.ReductionKB, row.ReductionPct, row.PaperRedPct, row.RolledLoops)
		csvRows = append(csvRows, []string{
			row.Suite, row.Name,
			fmt.Sprintf("%.2f", row.SizeKB), fmt.Sprintf("%.3f", row.ReductionKB),
			fmt.Sprintf("%.3f", row.ReductionPct), fmt.Sprintf("%.2f", row.PaperRedPct),
			fmt.Sprint(row.RolledLoops), fmt.Sprint(row.LLVMRerolled),
		})
	}
	return r.writeCSV("table1-programs.csv",
		[]string{"suite", "program", "size_kb", "reduction_kb", "reduction_pct", "paper_pct", "rolled_loops", "llvm_rerolled"}, csvRows)
}

// Fig17 renders the TSVC per-kernel bars and suite means.
func (r *Report) Fig17(s *TSVCSummary) error {
	fmt.Fprintf(r.w(), "\n== Fig. 17: code-size reduction on TSVC (unrolled x8) ==\n")
	fmt.Fprintf(r.w(), "mean over all %d kernels: LLVM %.2f%% (paper 13.69%%), RoLAG %.2f%% (paper 23.4%%)\n",
		len(s.Results), s.MeanLLVM, s.MeanRoLAG)
	fmt.Fprintf(r.w(), "kernels profitably rerolled: LLVM %d (paper 38), RoLAG %d (paper 84)\n",
		s.AffectedLLVM, s.AffectedRoLAG)
	fmt.Fprintf(r.w(), "with loop flattening after RoLAG (the paper's suggested cleanup): mean %.2f%%\n", s.MeanFlat)
	fmt.Fprintf(r.w(), "%-10s %8s %8s %8s\n", "kernel", "llvm%", "rolag%", "oracle%")
	var rows [][]string
	for _, res := range s.Results {
		if res.RedLLVM() != 0 || res.RedRoLAG() != 0 {
			fmt.Fprintf(r.w(), "%-10s %8.1f %8.1f %8.1f\n", res.Name, res.RedLLVM(), res.RedRoLAG(), res.RedOracle())
		}
		rows = append(rows, []string{
			res.Name,
			fmt.Sprintf("%.3f", res.RedLLVM()), fmt.Sprintf("%.3f", res.RedRoLAG()),
			fmt.Sprintf("%.3f", res.RedOracle()),
			fmt.Sprint(res.LLVMRerolled), fmt.Sprint(res.RoLAGRolled),
		})
	}
	return r.writeCSV("fig17-tsvc-bars.csv",
		[]string{"kernel", "red_llvm_pct", "red_rolag_pct", "red_oracle_pct", "llvm_rerolled", "rolag_rolled"}, rows)
}

// Fig18 renders the oracle-vs-RoLAG curve.
func (r *Report) Fig18(s *TSVCSummary) error {
	fmt.Fprintf(r.w(), "\n== Fig. 18: oracle vs RoLAG across the whole TSVC suite ==\n")
	fmt.Fprintf(r.w(), "oracle mean %.2f%% (paper 55.5%%), RoLAG mean %.2f%% (paper 23.4%%)\n",
		s.MeanOracle, s.MeanRoLAG)
	sorted := append([]TSVCResult(nil), s.Results...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].RedOracle() > sorted[j].RedOracle() })
	fmt.Fprintf(r.w(), "oracle curve (every 10th): ")
	for i, res := range sorted {
		if i%10 == 0 {
			fmt.Fprintf(r.w(), "%.0f ", res.RedOracle())
		}
	}
	fmt.Fprintln(r.w())
	var rows [][]string
	for i, res := range sorted {
		rows = append(rows, []string{
			fmt.Sprint(i), res.Name,
			fmt.Sprintf("%.3f", res.RedOracle()), fmt.Sprintf("%.3f", res.RedRoLAG()),
		})
	}
	return r.writeCSV("fig18-tsvc-curve.csv",
		[]string{"rank", "kernel", "red_oracle_pct", "red_rolag_pct"}, rows)
}

// Fig19 renders the TSVC node-kind breakdown plus the special-node
// ablation.
func (r *Report) Fig19(s *TSVCSummary) error {
	if err := r.nodeBreakdown("Fig. 19: node kinds in profitable alignment graphs (TSVC)",
		"fig19-tsvc-nodes.csv", s.NodeCounts); err != nil {
		return err
	}
	fmt.Fprintf(r.w(), "ablation: with special nodes disabled, %d kernels reroll profitably instead of %d (paper: 19 vs 84)\n",
		s.AffectedNoSpecial, s.AffectedRoLAG)
	if s.AffectedExtensions > 0 {
		fmt.Fprintf(r.w(), "extensions (min/max reductions, beyond the paper): %d kernels, mean %.2f%%\n",
			s.AffectedExtensions, s.MeanExtensions)
	}
	return nil
}

// ServiceBench renders the service-mode benchmark and writes the
// machine-readable BENCH_service.json used to track the perf trajectory
// across PRs.
func (r *Report) ServiceBench(b *ServiceBench) error {
	fmt.Fprintf(r.w(), "\n== Service-mode benchmark (AnghaBench, %d functions, %d workers) ==\n", b.N, b.Workers)
	fmt.Fprintf(r.w(), "serial driver:   %.2fs\n", b.SerialSeconds)
	fmt.Fprintf(r.w(), "parallel (cold): %.2fs  (%.2fx speedup, %.1f functions/s, hit rate %.1f%%)\n",
		b.ParallelSeconds, b.Speedup, b.FunctionsPerSecond, 100*b.ColdHitRate)
	fmt.Fprintf(r.w(), "parallel (warm): %.2fs  (%.2fx speedup, hit rate %.1f%%)\n",
		b.WarmSeconds, b.WarmSpeedup, 100*b.WarmHitRate)
	fmt.Fprintf(r.w(), "parallel results identical to serial: %t\n", b.Identical)
	if r.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(r.Dir, "BENCH_service.json"), append(data, '\n'), 0o644)
}

// Calib renders the cost-model calibration summary and writes the
// machine-readable CALIB_costmodel.json that pins the model's error
// bars against the assembly backend across PRs.
func (r *Report) Calib(c *calib.Report) error {
	fmt.Fprintf(r.w(), "\n== Cost-model calibration vs assembly backend (%d functions, seed %d) ==\n",
		c.Functions, c.Seed)
	fmt.Fprintf(r.w(), "MAPE:            %.2f%%  (gate: <= %.0f%%)\n", 100*c.MAPE, 100*calib.MaxMAPE)
	fmt.Fprintf(r.w(), "sign agreement:  %.2f%%  (gate: >= %.0f%%, %d disagreements)\n",
		100*c.SignAgreement, 100*calib.MinSignAgreement, c.Disagreements)
	fmt.Fprintf(r.w(), "changed by RoLAG: %d functions, measured mean delta %.1f bytes (model: %.1f)\n",
		c.Changed, c.MeanMeasuredDelta, c.MeanEstimatedDelta)
	fams := make([]string, 0, len(c.FamilyMAPE))
	for fam := range c.FamilyMAPE {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		fmt.Fprintf(r.w(), "  family %-12s MAPE %.2f%%\n", fam, 100*c.FamilyMAPE[fam])
	}
	if r.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(r.Dir, "CALIB_costmodel.json"), append(data, '\n'), 0o644)
}

// Perf renders the §V.D runtime overhead summary.
func (r *Report) Perf(s *TSVCSummary) error {
	fmt.Fprintf(r.w(), "\n== §V.D: performance overhead on TSVC ==\n")
	fmt.Fprintf(r.w(), "mean relative performance of rolled code (interpreted steps): %.2fx (paper: 0.8x)\n", s.RelPerf)
	var rows [][]string
	for _, res := range s.Results {
		if res.StepsBase > 0 {
			rows = append(rows, []string{
				res.Name, fmt.Sprint(res.StepsBase), fmt.Sprint(res.StepsRoLAG),
				fmt.Sprintf("%.3f", float64(res.StepsBase)/float64(res.StepsRoLAG)),
			})
		}
	}
	return r.writeCSV("perf-tsvc.csv",
		[]string{"kernel", "steps_base", "steps_rolag", "relative_perf"}, rows)
}
