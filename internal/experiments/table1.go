package experiments

import (
	"fmt"

	"rolag"
	"rolag/internal/workloads/programs"
)

// Table1Row is one program's measurement (Table I of the paper).
type Table1Row struct {
	Suite   string
	Name    string
	PaperKB float64
	// PaperRedPct is the paper's reported reduction for side-by-side
	// comparison in EXPERIMENTS.md.
	PaperRedPct float64
	// SizeKB is the synthetic program's binary size (measurement model).
	SizeKB float64
	// ReductionKB is the absolute saving (negative = growth).
	ReductionKB float64
	// ReductionPct is the relative saving.
	ReductionPct float64
	// RolledLoops counts RoLAG's successful (kept) rolls.
	RolledLoops int
	// LLVMRerolled counts the baseline's rerolls (the paper: never
	// triggered on these programs).
	LLVMRerolled int
}

// RunTable1 builds every Table I program stand-in with and without RoLAG
// and reports the deltas.
func RunTable1() ([]Table1Row, error) { return RunTable1Scaled(1) }

// RunTable1Scaled runs Table I with every program's function count
// multiplied by frac (minimum 4 functions); the benchmarks use small
// fractions to keep iterations cheap while cmd/experiments runs the full
// scale.
func RunTable1Scaled(frac float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range programs.Table() {
		if frac < 1 {
			p.NumFuncs = int(float64(p.NumFuncs) * frac)
			if p.NumFuncs < 4 {
				p.NumFuncs = 4
			}
		}
		var before, after int
		var rolled, llvm int
		for _, fn := range p.Functions() {
			base, err := rolag.Build(fn.Src, rolag.Config{Name: fn.Name, Opt: rolag.OptNone})
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s: %w", p.Name, fn.Name, err)
			}
			rg, err := rolag.Build(fn.Src, rolag.Config{Name: fn.Name, Opt: rolag.OptRoLAG})
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s (rolag): %w", p.Name, fn.Name, err)
			}
			lv, err := rolag.Build(fn.Src, rolag.Config{Name: fn.Name, Opt: rolag.OptLLVMReroll})
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s (llvm): %w", p.Name, fn.Name, err)
			}
			before += base.BinaryAfter
			after += rg.BinaryAfter
			rolled += rg.Stats.LoopsRolled
			llvm += lv.Rerolled
		}
		row := Table1Row{
			Suite:        p.Suite,
			Name:         p.Name,
			PaperKB:      p.PaperKB,
			PaperRedPct:  p.PaperRedPct,
			SizeKB:       float64(before) / 1024,
			ReductionKB:  float64(before-after) / 1024,
			RolledLoops:  rolled,
			LLVMRerolled: llvm,
		}
		if before > 0 {
			row.ReductionPct = 100 * float64(before-after) / float64(before)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
