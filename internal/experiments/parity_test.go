package experiments_test

import (
	"reflect"
	"testing"

	"rolag/internal/experiments"
	"rolag/internal/workloads/tsvc"
)

// TestAnghaParallelMatchesSerial checks the engine-driven corpus run is
// result-for-result identical to the serial reference driver.
func TestAnghaParallelMatchesSerial(t *testing.T) {
	serial, err := experiments.RunAngha(experiments.AnghaConfig{N: 150, Seed: 7, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.RunAngha(experiments.AnghaConfig{N: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel summary diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestTSVCParallelMatchesSerial does the same for the TSVC methodology,
// including the interpreted §V.D step counts (which exercise the
// engine's module cloning).
func TestTSVCParallelMatchesSerial(t *testing.T) {
	cfg := experiments.DefaultTSVCConfig()
	for i, kr := range tsvc.Kernels() {
		if i%8 == 0 { // a cross-section of the suite, kept small for -race
			cfg.Kernels = append(cfg.Kernels, kr.Name)
		}
	}
	if len(cfg.Kernels) == 0 {
		t.Fatal("no kernels selected")
	}
	cfg.MeasurePerf = true
	cfg.WithExtensions = true

	scfg := cfg
	scfg.Serial = true
	serial, err := experiments.RunTSVC(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(cfg.Kernels) {
		t.Fatalf("serial run produced %d results for %d kernels", len(serial.Results), len(cfg.Kernels))
	}
	parallel, err := experiments.RunTSVC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel summary diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
