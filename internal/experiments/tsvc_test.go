package experiments_test

import (
	"testing"

	"rolag/internal/experiments"
)

func TestRunTSVC(t *testing.T) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.MeasurePerf = true
	s, err := experiments.RunTSVC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kernels=%d meanLLVM=%.2f%% meanRoLAG=%.2f%% meanOracle=%.2f%%",
		len(s.Results), s.MeanLLVM, s.MeanRoLAG, s.MeanOracle)
	t.Logf("affected: llvm=%d rolag=%d noSpecial=%d relPerf=%.2f",
		s.AffectedLLVM, s.AffectedRoLAG, s.AffectedNoSpecial, s.RelPerf)
	t.Logf("node counts: %v", s.NodeCounts)
	for i, r := range s.Results {
		if i > 25 {
			break
		}
		t.Logf("%-8s base=%4d llvm=%+6.1f%% rolag=%+6.1f%% oracle=%+6.1f%% (n=%d/%d)",
			r.Name, r.SizeBase, r.RedLLVM(), r.RedRoLAG(), r.RedOracle(), r.LLVMRerolled, r.RoLAGRolled)
	}
	if s.AffectedRoLAG <= s.AffectedLLVM {
		t.Errorf("RoLAG affected %d <= LLVM %d; paper expects RoLAG to apply more broadly", s.AffectedRoLAG, s.AffectedLLVM)
	}
	if s.MeanRoLAG <= s.MeanLLVM {
		t.Errorf("RoLAG mean %.2f <= LLVM mean %.2f", s.MeanRoLAG, s.MeanLLVM)
	}
	if s.MeanOracle <= s.MeanRoLAG {
		t.Errorf("oracle mean %.2f <= RoLAG mean %.2f", s.MeanOracle, s.MeanRoLAG)
	}
	if s.AffectedNoSpecial >= s.AffectedRoLAG {
		t.Errorf("no-special %d >= full %d; special nodes should matter", s.AffectedNoSpecial, s.AffectedRoLAG)
	}
}

func TestTSVCExtensions(t *testing.T) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.WithExtensions = true
	cfg.Kernels = []string{"s314", "s316", "s3113", "s000", "s311"}
	s, err := experiments.RunTSVC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full=%d extensions=%d meanExt=%.2f%%", s.AffectedRoLAG, s.AffectedExtensions, s.MeanExtensions)
	if s.AffectedExtensions <= s.AffectedRoLAG {
		t.Errorf("min/max extension should reroll more kernels (%d vs %d): s314/s316/s3113 are max/min loops",
			s.AffectedExtensions, s.AffectedRoLAG)
	}
}
