package experiments_test

import (
	"bytes"
	"os"
	"testing"

	"rolag/internal/experiments"
)

// TestExperimentsDeterministic: the same seeds must give identical
// results across runs — the artifact property the paper's own scripts
// promise ("similar but not necessarily identical" for hardware; exact
// here, since nothing depends on the machine).
func TestExperimentsDeterministic(t *testing.T) {
	run := func() string {
		s, err := experiments.RunAngha(experiments.AnghaConfig{N: 120, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep := &experiments.Report{W: &buf}
		if err := rep.Fig15(s); err != nil {
			t.Fatal(err)
		}
		if err := rep.Fig16(s); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Error("AnghaBench experiment is not deterministic")
	}

	runTSVC := func() string {
		cfg := experiments.DefaultTSVCConfig()
		cfg.Kernels = []string{"s000", "s311", "va", "vpvtv", "s451"}
		s, err := experiments.RunTSVC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep := &experiments.Report{W: &buf}
		if err := rep.Fig17(s); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	c, d := runTSVC(), runTSVC()
	if c != d {
		t.Error("TSVC experiment is not deterministic")
	}
}

// TestReportCSVOutput: the report writer produces the promised CSV files.
func TestReportCSVOutput(t *testing.T) {
	dir := t.TempDir()
	s, err := experiments.RunAngha(experiments.AnghaConfig{N: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep := &experiments.Report{Dir: dir, W: &buf}
	if err := rep.Fig15(s); err != nil {
		t.Fatal(err)
	}
	if err := rep.Fig16(s); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig15-angha-curve.csv", "fig16-angha-nodes.csv"} {
		if !fileExists(t, dir, f) {
			t.Errorf("missing %s", f)
		}
	}
}

func fileExists(t *testing.T, dir, name string) bool {
	t.Helper()
	_, err := os.Stat(dir + "/" + name)
	return err == nil
}
