package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"rolag"
	"rolag/internal/rolagdapi"
	"rolag/internal/workloads/angha"
)

// daemonJobs is the fan-out of the remote driver. The daemon sheds load
// past its admission cap and the client backs off with jitter, so this
// only bounds how many requests are in flight from this process.
const daemonJobs = 8

// optWire maps a facade optimization onto its rolagd wire name.
func optWire(o rolag.Optimization) string {
	switch o {
	case rolag.OptNone:
		return "none"
	case rolag.OptLLVMReroll:
		return "llvm"
	default:
		return "rolag"
	}
}

// runAnghaDaemon compiles the corpus against a remote rolagd instance
// through the retrying client, preserving the (function, config) build
// layout of the in-process drivers. A degraded compile is an error: the
// experiment's numbers must come from the full pipeline, not from a
// fail-soft fallback, so the caller should retry once the daemon is
// healthy again.
func runAnghaDaemon(ctx context.Context, baseURL string, funcs []angha.Function) ([][3]anghaBuild, error) {
	client := &rolagdapi.Client{BaseURL: strings.TrimRight(baseURL, "/")}
	builds := make([][3]anghaBuild, len(funcs))

	type job struct{ fn, cfg int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}

	noIR := false
	for w := 0; w < daemonJobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fn := funcs[j.fn]
				bcfg := anghaConfigs(fn.Name)[j.cfg]
				req := &rolagdapi.CompileRequest{
					Source:  fn.Src,
					EmitIR:  &noIR,
					Config:  rolagdapi.CompileConfig{Name: bcfg.Name, Opt: optWire(bcfg.Opt)},
					Remarks: bcfg.Remarks,
				}
				resp, err := client.Compile(ctx, req)
				if err != nil {
					fail(fmt.Errorf("angha %s (%s): %w", fn.Name, bcfg.Opt, err))
					return
				}
				if resp.Degraded {
					fail(fmt.Errorf("angha %s (%s): daemon compile degraded (passes %v); rerun against a healthy daemon",
						fn.Name, bcfg.Opt, resp.DegradedPasses))
					return
				}
				b := anghaBuild{binaryAfter: resp.BinaryAfter, rerolled: resp.Rerolled, rolled: resp.LoopsRolled, remarks: resp.Remarks}
				if len(resp.NodeCounts) > 0 {
					b.nodeCounts = rolagdapi.NodeCountsFromWire(resp.NodeCounts)
				}
				builds[j.fn][j.cfg] = b
			}
		}()
	}

feed:
	for i := range funcs {
		for c := 0; c < 3; c++ {
			select {
			case jobs <- job{i, c}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return builds, nil
}
