package experiments_test

import (
	"testing"

	"rolag"
	"rolag/internal/experiments"
	"rolag/internal/workloads/angha"
)

// pinnedCorpusFunc returns fn_fieldcopy_0007 from the canonical seeded
// corpus — the Linux-KVM struct-copy shape that tops the paper's
// Fig. 15, and the heaviest single roll in the corpus prefix (136
// instructions matched). Pinning one function keeps the allocation
// budget below meaningful: the work per Build call never changes.
func pinnedCorpusFunc(t testing.TB) angha.Function {
	funcs := angha.Generate(8, 20220402)
	fn := funcs[7]
	if fn.Name != "fn_fieldcopy_0007" || fn.Family != angha.FamFieldCopy {
		t.Fatalf("corpus drifted: funcs[7] = %s (%s), want fn_fieldcopy_0007 (field-copy); "+
			"re-pin the function and re-measure the allocation budget", fn.Name, fn.Family)
	}
	return fn
}

// rollAllocBudget is the allocs-per-Build ceiling for the pinned
// function. Measured at ~4.6k allocs/op after the analysis-cache and
// allocation-lean work; the ceiling leaves ~2x headroom for legitimate
// churn while still catching a return of the per-call map-rebuild
// pattern (which costs several times more).
const rollAllocBudget = 10000

// TestRollAllocBudget is the tier-1 allocation regression gate on the
// RoLAG hot path.
func TestRollAllocBudget(t *testing.T) {
	fn := pinnedCorpusFunc(t)
	cfg := rolag.Config{Opt: rolag.OptRoLAG}
	// Warm-up and sanity: the pinned function must actually roll,
	// otherwise the budget would silently measure a no-op pipeline.
	res, err := rolag.Build(fn.Src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.LoopsRolled == 0 {
		t.Fatalf("pinned function %s no longer rolls; stats: %+v", fn.Name, res.Stats)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := rolag.Build(fn.Src, cfg); err != nil {
			t.Error(err)
		}
	})
	if avg > rollAllocBudget {
		t.Errorf("rolag.Build(%s): %.0f allocs/op, budget %d", fn.Name, avg, rollAllocBudget)
	}

	// The same ceiling must hold with the remark machinery compiled in
	// but disabled (the default): the disabled path is a handful of nil
	// Recorder checks and must not allocate. Config.Remarks defaults to
	// false, so this re-measure only documents the claim explicitly —
	// if remarks ever leak allocations into the disabled hot path, both
	// measurements blow the budget together.
	cfg.Remarks = false
	avgOff := testing.AllocsPerRun(10, func() {
		if _, err := rolag.Build(fn.Src, cfg); err != nil {
			t.Error(err)
		}
	})
	if avgOff > rollAllocBudget {
		t.Errorf("rolag.Build(%s) with remarks disabled: %.0f allocs/op, budget %d", fn.Name, avgOff, rollAllocBudget)
	}
}

// BenchmarkRollAngha compiles a fixed slice of the canonical corpus
// with RoLAG per iteration; allocs/op is the headline metric the
// allocation-lean work targets.
func BenchmarkRollAngha(b *testing.B) {
	funcs := angha.Generate(60, 20220402)
	cfg := rolag.Config{Opt: rolag.OptRoLAG}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fn := range funcs {
			if _, err := rolag.Build(fn.Src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRollAnghaParallel is BenchmarkRollAngha with function-level
// parallelism enabled (Parallelism = GOMAXPROCS); output is
// byte-identical, so the delta is pure pipeline overhead or speedup.
func BenchmarkRollAnghaParallel(b *testing.B) {
	funcs := angha.Generate(60, 20220402)
	cfg := rolag.Config{Opt: rolag.OptRoLAG, Parallelism: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fn := range funcs {
			if _, err := rolag.Build(fn.Src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestCoreBenchSmoke runs the harness at minimum size and checks the
// result is structurally sound — every phase present, percentiles
// ordered, iteration data consistent with the summary.
func TestCoreBenchSmoke(t *testing.T) {
	res, err := experiments.RunCoreBench(experiments.CoreBenchConfig{N: 20, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != "rolag-bench/v1" {
		t.Errorf("schema = %q", res.Schema)
	}
	if res.Functions != 20 || len(res.Iterations) != 2 {
		t.Errorf("functions=%d iterations=%d, want 20 and 2", res.Functions, len(res.Iterations))
	}
	if res.LoopsRolled == 0 {
		t.Error("corpus rolled nothing; the harness is measuring a no-op")
	}
	if res.WallP50Seconds <= 0 || res.WallP99Seconds < res.WallP50Seconds {
		t.Errorf("bad wall percentiles: p50=%g p99=%g", res.WallP50Seconds, res.WallP99Seconds)
	}
	if res.NsPerFunction <= 0 || res.AllocsPerIteration == 0 {
		t.Errorf("bad normalization: ns/func=%g allocs=%d", res.NsPerFunction, res.AllocsPerIteration)
	}
	want := map[string]bool{"seed": true, "align": true, "schedule": true, "codegen": true}
	for _, ph := range res.Phases {
		delete(want, ph.Phase)
	}
	if len(want) != 0 {
		t.Errorf("phases missing from result: %v", want)
	}
}
