// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): the AnghaBench reduction curve and node breakdown
// (Fig. 15, Fig. 16), the MiBench/SPEC program table (Table I), the TSVC
// comparison (Fig. 17, Fig. 18, Fig. 19) and the runtime overhead
// (§V.D). The corpus drivers fan out over the concurrent compilation
// engine (internal/service) by default and keep a serial reference path
// the parallel results are validated against.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"rolag"
	"rolag/internal/interp"
	"rolag/internal/ir"
	rl "rolag/internal/rolag"
	"rolag/internal/service"
	"rolag/internal/workloads/tsvc"
)

// TSVCResult holds one kernel's outcome in the §V.C methodology.
type TSVCResult struct {
	Name string
	// Sizes under the binary measurement model.
	SizeBase   int // unrolled ×8, no rerolling (the experiment baseline)
	SizeLLVM   int // after LLVM-style rerolling
	SizeRoLAG  int // after RoLAG
	SizeFlat   int // after RoLAG + loop flattening (§V.C's suggested cleanup)
	SizeOracle int // the original rolled source (Fig. 18's oracle)
	// Applied counts.
	LLVMRerolled int
	RoLAGRolled  int
	// Interpreted step counts for §V.D (0 when the kernel needs
	// arguments the perf harness does not synthesize).
	StepsBase  int64
	StepsRoLAG int64
}

// Reduction percentages relative to the unrolled baseline.
func (r *TSVCResult) RedLLVM() float64  { return pct(r.SizeBase, r.SizeLLVM) }
func (r *TSVCResult) RedRoLAG() float64 { return pct(r.SizeBase, r.SizeRoLAG) }

// RedFlat is the reduction with loop flattening after RoLAG.
func (r *TSVCResult) RedFlat() float64   { return pct(r.SizeBase, r.SizeFlat) }
func (r *TSVCResult) RedOracle() float64 { return pct(r.SizeBase, r.SizeOracle) }

func pct(base, after int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-after) / float64(base)
}

// TSVCSummary aggregates the suite-wide numbers the paper quotes.
type TSVCSummary struct {
	Results []TSVCResult
	// Means across ALL kernels (the paper's 13.69% vs 23.4%).
	MeanLLVM, MeanRoLAG, MeanOracle float64
	// MeanFlat is the suite mean for RoLAG followed by loop flattening.
	MeanFlat float64
	// Kernels affected by each technique (the paper's 38 vs 84).
	AffectedLLVM, AffectedRoLAG int
	// Loops rolled with special nodes disabled (the paper's 19 vs 84,
	// Fig. 19).
	AffectedNoSpecial int
	// Kernels profitably rolled with the beyond-paper extensions
	// (min/max reductions) enabled.
	AffectedExtensions int
	// MeanExtensions is the suite mean with extensions on.
	MeanExtensions float64
	// Node-kind tally over profitable graphs (Fig. 19).
	NodeCounts map[rl.NodeKind]int
	// §V.D: geometric-mean relative performance of rolled code
	// (paper: ≈0.8, i.e. rolled code is slower).
	RelPerf float64
}

// TSVCConfig tunes the experiment.
type TSVCConfig struct {
	// UnrollFactor applied to every inner loop (paper: 8).
	UnrollFactor int
	// FastMath permits floating-point reassociation, as the paper
	// requires for FP reduction kernels.
	FastMath bool
	// MeasurePerf additionally interprets each kernel to estimate the
	// §V.D slowdown (slower).
	MeasurePerf bool
	// Kernels restricts the run to the named kernels (nil = all).
	Kernels []string
	// WithExtensions additionally measures the beyond-paper extension
	// configuration (min/max reductions).
	WithExtensions bool
	// Engine optionally supplies a shared compilation engine; nil makes
	// the run start (and drain) a temporary one.
	Engine *service.Engine
	// Serial forces the original single-threaded facade driver.
	Serial bool
}

// DefaultTSVCConfig returns the paper's §V.C setup.
func DefaultTSVCConfig() TSVCConfig {
	return TSVCConfig{UnrollFactor: 8, FastMath: true, MeasurePerf: false}
}

// tsvcBuild is the slice of one compilation the aggregation needs.
type tsvcBuild struct {
	binaryBefore, binaryAfter int
	rerolled                  int
	rolled                    int
	nodeCounts                map[rl.NodeKind]int
	module                    *ir.Module
}

// tsvcVariant names one of the per-kernel pipeline configurations, in
// aggregation order.
const (
	vOracle = iota
	vBase
	vLLVM
	vRoLAG
	vFlat
	vNoSpecial
	vExt // only populated when WithExtensions
	numVariants
)

// tsvcConfigs returns the per-kernel configurations of the §V.C
// methodology. The vExt slot is a zero Config unless extensions are on.
func tsvcConfigs(cfg *TSVCConfig, name string, opts, noSpecial, extOpts *rolag.Options) [numVariants]rolag.Config {
	out := [numVariants]rolag.Config{
		vOracle:    {Name: name, Opt: rolag.OptNone},
		vBase:      {Name: name, Unroll: cfg.UnrollFactor, Opt: rolag.OptNone},
		vLLVM:      {Name: name, Unroll: cfg.UnrollFactor, Opt: rolag.OptLLVMReroll},
		vRoLAG:     {Name: name, Unroll: cfg.UnrollFactor, Opt: rolag.OptRoLAG, Options: opts},
		vFlat:      {Name: name, Unroll: cfg.UnrollFactor, Opt: rolag.OptRoLAG, Options: opts, Flatten: true},
		vNoSpecial: {Name: name, Unroll: cfg.UnrollFactor, Opt: rolag.OptRoLAG, Options: noSpecial},
	}
	if cfg.WithExtensions {
		out[vExt] = rolag.Config{Name: name, Unroll: cfg.UnrollFactor, Opt: rolag.OptRoLAG, Options: extOpts}
	}
	return out
}

var variantNames = [numVariants]string{
	vOracle: "oracle", vBase: "base", vLLVM: "llvm", vRoLAG: "rolag",
	vFlat: "flatten", vNoSpecial: "no-special", vExt: "extensions",
}

// RunTSVC reproduces Fig. 17 (per-kernel bars + means), Fig. 18 (oracle
// curve), Fig. 19 (node breakdown + no-special-nodes ablation) and §V.D.
func RunTSVC(cfg TSVCConfig) (*TSVCSummary, error) {
	if cfg.UnrollFactor == 0 {
		cfg.UnrollFactor = 8
	}
	kernels := tsvc.Kernels()
	if cfg.Kernels != nil {
		want := make(map[string]bool)
		for _, n := range cfg.Kernels {
			want[n] = true
		}
		var filtered []tsvc.Kernel
		for _, kr := range kernels {
			if want[kr.Name] {
				filtered = append(filtered, kr)
			}
		}
		kernels = filtered
	}
	opts := rolag.DefaultOptions()
	opts.FastMath = cfg.FastMath
	noSpecial := rolag.NoSpecialNodes()
	noSpecial.FastMath = cfg.FastMath
	extOpts := rolag.Extensions()
	extOpts.FastMath = cfg.FastMath

	variants := numVariants - 1
	if cfg.WithExtensions {
		variants = numVariants
	}
	builds := make([][numVariants]tsvcBuild, len(kernels))

	if cfg.Serial {
		for i, kr := range kernels {
			cfgs := tsvcConfigs(&cfg, kr.Name, opts, noSpecial, extOpts)
			for v := 0; v < variants; v++ {
				res, err := rolag.Build(kr.Src, cfgs[v])
				if err != nil {
					return nil, fmt.Errorf("tsvc %s (%s): %w", kr.Name, variantNames[v], err)
				}
				builds[i][v] = tsvcBuild{
					binaryBefore: res.BinaryBefore,
					binaryAfter:  res.BinaryAfter,
					rerolled:     res.Rerolled,
					module:       res.Module,
				}
				if res.Stats != nil {
					builds[i][v].rolled = res.Stats.LoopsRolled
					builds[i][v].nodeCounts = res.Stats.NodeCounts
				}
			}
		}
	} else {
		engine := cfg.Engine
		if engine == nil {
			engine = service.New(service.Config{})
			defer engine.Close(context.Background())
		}
		reqs := make([]service.Request, 0, variants*len(kernels))
		for _, kr := range kernels {
			cfgs := tsvcConfigs(&cfg, kr.Name, opts, noSpecial, extOpts)
			for v := 0; v < variants; v++ {
				req := service.Request{Source: kr.Src, Config: cfgs[v]}
				// §V.D interprets the baseline and rolled modules.
				req.NeedModule = cfg.MeasurePerf && (v == vBase || v == vRoLAG)
				reqs = append(reqs, req)
			}
		}
		items := engine.CompileBatch(context.Background(), reqs)
		for i, kr := range kernels {
			for v := 0; v < variants; v++ {
				item := items[i*variants+v]
				if item.Err != nil {
					return nil, fmt.Errorf("tsvc %s (%s): %w", kr.Name, variantNames[v], item.Err)
				}
				builds[i][v] = tsvcBuild{
					binaryBefore: item.Resp.BinaryBefore,
					binaryAfter:  item.Resp.BinaryAfter,
					rerolled:     item.Resp.Rerolled,
					module:       item.Resp.Module,
				}
				if item.Resp.Stats != nil {
					builds[i][v].rolled = item.Resp.Stats.LoopsRolled
					builds[i][v].nodeCounts = item.Resp.Stats.NodeCounts
				}
			}
		}
	}
	return aggregateTSVC(&cfg, kernels, builds)
}

// aggregateTSVC folds per-kernel builds into the summary. Shared by the
// serial and parallel drivers so both produce identical output for
// identical per-kernel results.
func aggregateTSVC(cfg *TSVCConfig, kernels []tsvc.Kernel, builds [][numVariants]tsvcBuild) (*TSVCSummary, error) {
	summary := &TSVCSummary{NodeCounts: make(map[rl.NodeKind]int)}
	var extSum float64
	var perfSum float64
	var perfN int
	for i, kr := range kernels {
		b := &builds[i]
		res := TSVCResult{
			Name:         kr.Name,
			SizeOracle:   b[vOracle].binaryAfter,
			SizeBase:     b[vBase].binaryAfter,
			SizeLLVM:     b[vLLVM].binaryAfter,
			LLVMRerolled: b[vLLVM].rerolled,
			SizeRoLAG:    b[vRoLAG].binaryAfter,
			RoLAGRolled:  b[vRoLAG].rolled,
			SizeFlat:     b[vFlat].binaryAfter,
		}
		if b[vRoLAG].rolled > 0 && b[vRoLAG].binaryAfter < b[vRoLAG].binaryBefore {
			for kk, v := range b[vRoLAG].nodeCounts {
				summary.NodeCounts[kk] += v
			}
		}
		if b[vNoSpecial].rolled > 0 && b[vNoSpecial].binaryAfter < b[vNoSpecial].binaryBefore {
			summary.AffectedNoSpecial++
		}
		if cfg.WithExtensions {
			if b[vExt].rolled > 0 && b[vExt].binaryAfter < b[vExt].binaryBefore {
				summary.AffectedExtensions++
			}
			extSum += pct(res.SizeBase, b[vExt].binaryAfter)
		}
		if cfg.MeasurePerf && res.RoLAGRolled > 0 {
			sb, sr, ok := measureSteps(kr, b[vBase].module, b[vRoLAG].module)
			if ok {
				res.StepsBase, res.StepsRoLAG = sb, sr
				if sr > 0 {
					perfSum += float64(sb) / float64(sr)
					perfN++
				}
			}
		}
		if res.LLVMRerolled > 0 && res.SizeLLVM < res.SizeBase {
			summary.AffectedLLVM++
		}
		if res.RoLAGRolled > 0 && res.SizeRoLAG < res.SizeBase {
			summary.AffectedRoLAG++
		}
		summary.Results = append(summary.Results, res)
	}
	n := float64(len(summary.Results))
	for _, r := range summary.Results {
		summary.MeanLLVM += r.RedLLVM() / n
		summary.MeanRoLAG += r.RedRoLAG() / n
		summary.MeanOracle += r.RedOracle() / n
		summary.MeanFlat += r.RedFlat() / n
	}
	if perfN > 0 {
		summary.RelPerf = perfSum / float64(perfN)
	}
	if cfg.WithExtensions && len(summary.Results) > 0 {
		summary.MeanExtensions = extSum / float64(len(summary.Results))
	}
	// Fig. 17 sorts kernels by RoLAG's reduction.
	sort.SliceStable(summary.Results, func(i, j int) bool {
		return summary.Results[i].RedRoLAG() > summary.Results[j].RedRoLAG()
	})
	return summary, nil
}

// measureSteps interprets the kernel in both modules with the shared
// harness and returns the executed instruction counts.
func measureSteps(kr tsvc.Kernel, baseMod, rolagMod *ir.Module) (int64, int64, bool) {
	h := &interp.Harness{MaxSteps: 5_000_000}
	ob, err := h.Run(baseMod, kr.Func, 1)
	if err != nil {
		return 0, 0, false
	}
	or, err := h.Run(rolagMod, kr.Func, 1)
	if err != nil {
		return 0, 0, false
	}
	return ob.Steps, or.Steps, true
}
