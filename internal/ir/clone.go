package ir

// CloneFunc returns a deep copy of f inside module m (which may be f's
// own module; the clone gets the given name). Instruction and block
// identities are fresh; references to globals and callees are preserved.
func CloneFunc(f *Func, m *Module, name string) *Func {
	params := make([]*Param, len(f.Params))
	for i, p := range f.Params {
		params[i] = &Param{Name: p.Name, Typ: p.Typ}
	}
	nf := m.NewFunc(name, f.Sig.Ret, params...)
	nf.ReadOnly = f.ReadOnly
	if f.IsDecl() {
		nf.Blocks = nil
		return nf
	}

	vmap := make(map[Value]Value)
	for i, p := range f.Params {
		vmap[p] = params[i]
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Parent: nf}
		nf.Blocks = append(nf.Blocks, nb)
		bmap[b] = nb
	}
	// First pass: clone instructions without operands so that forward
	// references (phis) resolve.
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Name:   in.Name,
				Op:     in.Op,
				Typ:    in.Typ,
				Pred:   in.Pred,
				Callee: in.Callee,
				Alloc:  in.Alloc,
				Parent: nb,
			}
			nb.Instrs = append(nb.Instrs, ni)
			vmap[in] = ni
		}
	}
	// Second pass: fill operands and block references.
	for _, b := range f.Blocks {
		nb := bmap[b]
		for ii, in := range b.Instrs {
			ni := nb.Instrs[ii]
			if len(in.Operands) > 0 {
				ni.Operands = make([]Value, len(in.Operands))
				for oi, op := range in.Operands {
					ni.Operands[oi] = mapValue(op, vmap)
				}
			}
			if len(in.Blocks) > 0 {
				ni.Blocks = make([]*Block, len(in.Blocks))
				for bi, tb := range in.Blocks {
					ni.Blocks[bi] = bmap[tb]
				}
			}
		}
	}
	return nf
}

// CloneBlocks returns a deep copy of f's blocks that keeps referring to
// f's own parameters, globals and callees. Swapping f.Blocks with the
// returned slice restores (or snapshots) the body — used by
// transformations that must be rolled back when not profitable.
func CloneBlocks(f *Func) []*Block {
	vmap := make(map[Value]Value)
	bmap := make(map[*Block]*Block, len(f.Blocks))
	out := make([]*Block, 0, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Parent: f}
		out = append(out, nb)
		bmap[b] = nb
	}
	for bi, b := range f.Blocks {
		nb := out[bi]
		for _, in := range b.Instrs {
			ni := &Instr{
				Name:   in.Name,
				Op:     in.Op,
				Typ:    in.Typ,
				Pred:   in.Pred,
				Callee: in.Callee,
				Alloc:  in.Alloc,
				Parent: nb,
			}
			nb.Instrs = append(nb.Instrs, ni)
			vmap[in] = ni
		}
	}
	for bi, b := range f.Blocks {
		nb := out[bi]
		for ii, in := range b.Instrs {
			ni := nb.Instrs[ii]
			if len(in.Operands) > 0 {
				ni.Operands = make([]Value, len(in.Operands))
				for oi, op := range in.Operands {
					ni.Operands[oi] = mapValue(op, vmap)
				}
			}
			if len(in.Blocks) > 0 {
				ni.Blocks = make([]*Block, len(in.Blocks))
				for i, tb := range in.Blocks {
					ni.Blocks[i] = bmap[tb]
				}
			}
		}
	}
	return out
}

// ShadowFunc returns a detached deep copy of f's body for sandboxed
// pass execution. The shadow shares f's Params (so cloned operands keep
// referring to the same values and committing the body back needs no
// remapping), keeps f's Parent (so global references verify), and
// carries f's name counter (so names generated while transforming the
// shadow are exactly the names in-place execution would have produced).
// The shadow is NOT registered in Parent.Funcs; it is reachable only by
// its creator, which makes it safe to abandon to a timed-out goroutine.
func ShadowFunc(f *Func) *Func {
	sh := &Func{
		Name:        f.Name,
		Sig:         f.Sig,
		Params:      f.Params,
		Parent:      f.Parent,
		ReadOnly:    f.ReadOnly,
		nameCounter: f.nameCounter,
	}
	sh.Blocks = CloneBlocks(f)
	for _, b := range sh.Blocks {
		b.Parent = sh
	}
	return sh
}

// AdoptBody commits a shadow produced by ShadowFunc back into f: the
// shadow's blocks (reparented to f) and its name-counter state replace
// f's. After adoption the shadow must not be used again.
func (f *Func) AdoptBody(sh *Func) {
	f.Blocks = sh.Blocks
	for _, b := range f.Blocks {
		b.Parent = f
	}
	f.nameCounter = sh.nameCounter
}

func mapValue(v Value, vmap map[Value]Value) Value {
	if nv, ok := vmap[v]; ok {
		return nv
	}
	return v
}

// CloneModule returns a deep copy of m. Globals and named struct types
// are copied; function bodies are cloned with all internal references
// remapped to the new module's functions and globals.
func CloneModule(m *Module) *Module {
	nm := NewModule(m.Name)
	nm.Structs = append(nm.Structs, m.Structs...)
	gmap := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Elem: g.Elem, Init: g.Init, ReadOnly: g.ReadOnly, Parent: nm}
		nm.Globals = append(nm.Globals, ng)
		gmap[g] = ng
	}
	fmap := make(map[*Func]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		nf := CloneFunc(f, nm, f.Name)
		fmap[f] = nf
	}
	// Remap globals and callees inside all cloned bodies.
	for _, nf := range nm.Funcs {
		for _, b := range nf.Blocks {
			for _, in := range b.Instrs {
				if in.Callee != nil {
					if nc, ok := fmap[in.Callee]; ok {
						in.Callee = nc
					}
				}
				for oi, op := range in.Operands {
					switch ov := op.(type) {
					case *Global:
						if ng, ok := gmap[ov]; ok {
							in.Operands[oi] = ng
						}
					case *Func:
						if nc, ok := fmap[ov]; ok {
							in.Operands[oi] = nc
						}
					}
				}
			}
		}
	}
	return nm
}
