package ir

import (
	"strings"
	"testing"
)

// buildSumFunc creates: i32 @sum(i32 %n) { loop 0..n-1 accumulating }.
func buildSumFunc(m *Module) *Func {
	f := m.NewFunc("sum", I32, &Param{Name: "n", Typ: I32})
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	be := NewBuilder(entry)
	c0 := be.ICmp(PredSLT, ConstInt(I32, 0), f.Params[0])
	be.CondBr(c0, loop, exit)

	bl := NewBuilder(loop)
	iv := bl.Phi(I32, "i")
	acc := bl.Phi(I32, "s")
	AddIncoming(iv, ConstInt(I32, 0), entry)
	AddIncoming(acc, ConstInt(I32, 0), entry)
	nacc := bl.Add(acc, iv)
	niv := bl.Add(iv, ConstInt(I32, 1))
	AddIncoming(iv, niv, loop)
	AddIncoming(acc, nacc, loop)
	cmp := bl.ICmp(PredSLT, niv, f.Params[0])
	bl.CondBr(cmp, loop, exit)

	bx := NewBuilder(exit)
	out := bx.Phi(I32, "out")
	AddIncoming(out, ConstInt(I32, 0), entry)
	AddIncoming(out, nacc, loop)
	bx.Ret(out)
	return f
}

func TestBuilderAndVerify(t *testing.T) {
	m := NewModule("t")
	f := buildSumFunc(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	if f.NumInstrs() != 10 {
		t.Errorf("NumInstrs = %d, want 10", f.NumInstrs())
	}
	text := m.String()
	for _, want := range []string{"func i32 @sum(i32 %n)", "phi i32 [0, %entry]", "condbr i1"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
}

func TestVerifyCatchesUnterminatedBlock(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	f.NewBlock("entry") // no terminator
	if err := m.Verify(); err == nil {
		t.Error("expected error for unterminated block")
	}
}

func TestVerifyCatchesTypeErrors(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void, &Param{Name: "p", Typ: Ptr(I32)})
	b := f.NewBlock("entry")
	// store i64 into i32*.
	bad := &Instr{Op: OpStore, Typ: Void, Operands: []Value{ConstInt(I64, 1), f.Params[0]}}
	b.Append(bad)
	NewBuilder(b).Ret(nil)
	if err := m.Verify(); err == nil {
		t.Error("expected store type mismatch error")
	}
}

func TestVerifyCatchesDominanceViolation(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", I32)
	entry := f.NewBlock("entry")
	other := f.NewBlock("other")
	// %x defined in other, used in entry: entry does not dominate...
	// Actually use-before-def within block order:
	bo := NewBuilder(other)
	x := bo.Add(ConstInt(I32, 1), ConstInt(I32, 2))
	bo.Ret(x)
	be := NewBuilder(entry)
	be.Ret(x) // use of %x not dominated (other does not dominate entry)
	if err := m.Verify(); err == nil {
		t.Error("expected dominance violation")
	}
}

func TestVerifyCatchesDuplicateNames(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	b := f.NewBlock("entry")
	i1 := &Instr{Op: OpAdd, Typ: I32, Name: "x", Operands: []Value{ConstInt(I32, 1), ConstInt(I32, 2)}}
	i2 := &Instr{Op: OpAdd, Typ: I32, Name: "x", Operands: []Value{ConstInt(I32, 1), ConstInt(I32, 2)}}
	b.Append(i1)
	b.Append(i2)
	NewBuilder(b).Ret(nil)
	if err := m.Verify(); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestVerifyCatchesPhiEdgeMismatch(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	NewBuilder(entry).Br(next)
	bn := NewBuilder(next)
	phi := bn.Phi(I32, "p") // no incoming edges but one predecessor
	_ = phi
	bn.Ret(nil)
	if err := m.Verify(); err == nil {
		t.Error("expected phi edge mismatch")
	}
}

func TestUniqueNames(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void, &Param{Name: "x", Typ: I32})
	a := f.UniqueName("x")
	if a == "x" {
		t.Error("UniqueName must avoid the parameter name")
	}
	b1 := f.NewBlock("bb")
	b2 := f.NewBlock("bb")
	if b1.Name == b2.Name {
		t.Error("blocks must get unique names")
	}
}

func TestUsersAndReplaceAllUses(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", I32, &Param{Name: "x", Typ: I32})
	b := f.NewBlock("entry")
	bd := NewBuilder(b)
	a := bd.Add(f.Params[0], ConstInt(I32, 1))
	c := bd.Mul(a, a)
	bd.Ret(c)
	users := f.Users()
	if len(users[a]) != 1 || users[a][0] != c {
		t.Errorf("users of %%%s = %v", a.Name, users[a])
	}
	if len(users[f.Params[0]]) != 1 {
		t.Error("param should have one user")
	}
	n := f.ReplaceAllUses(a, ConstInt(I32, 7))
	if n != 2 {
		t.Errorf("ReplaceAllUses replaced %d operands, want 2", n)
	}
	if c.Operand(0).Ident() != "7" || c.Operand(1).Ident() != "7" {
		t.Error("operands not replaced")
	}
}

func TestCloneFuncIndependence(t *testing.T) {
	m := NewModule("t")
	f := buildSumFunc(m)
	clone := CloneFunc(f, m, "sum2")
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after clone: %v", err)
	}
	// Mutating the clone must not affect the original.
	clone.Blocks[1].Instrs[2].SetOperand(1, ConstInt(I32, 99))
	orig := f.Blocks[1].Instrs[2].Operand(1)
	if c, ok := orig.(*IntConst); ok && c.Val == 99 {
		t.Error("clone shares operand slices with the original")
	}
	if f.String() == "" || clone.String() == "" {
		t.Error("printing failed")
	}
}

func TestCloneBlocksRestores(t *testing.T) {
	m := NewModule("t")
	f := buildSumFunc(m)
	before := f.String()
	snapshot := CloneBlocks(f)
	// Wreck the function.
	f.Blocks[1].Instrs = f.Blocks[1].Instrs[:2]
	f.Blocks = f.Blocks[:1]
	// Restore.
	f.Blocks = snapshot
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after restore: %v", err)
	}
	after := f.String()
	if before != after {
		t.Errorf("restored body differs:\n%s\nvs\n%s", before, after)
	}
}

func TestCloneModule(t *testing.T) {
	m := NewModule("t")
	g := m.NewGlobal("data", ArrayOf(4, I32), &ZeroConst{Typ: ArrayOf(4, I32)})
	f := m.NewFunc("f", I32)
	b := f.NewBlock("entry")
	bd := NewBuilder(b)
	p := bd.GEP(g, ConstInt(I64, 0), ConstInt(I64, 1))
	v := bd.Load(p)
	bd.Ret(v)

	nm := CloneModule(m)
	if err := nm.Verify(); err != nil {
		t.Fatalf("verify clone: %v", err)
	}
	// The clone must reference its own global, not the original's.
	ng := nm.FindGlobal("data")
	if ng == nil || ng == g {
		t.Fatal("global not cloned")
	}
	ninstr := nm.FindFunc("f").Blocks[0].Instrs[0]
	if ninstr.Operand(0) != Value(ng) {
		t.Error("cloned gep still references the original module's global")
	}
}

func TestPredsSuccsTerminator(t *testing.T) {
	m := NewModule("t")
	f := buildSumFunc(m)
	entry, loop, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	if got := entry.Succs(); len(got) != 2 {
		t.Errorf("entry succs = %d", len(got))
	}
	preds := f.Preds(loop)
	if len(preds) != 2 {
		t.Errorf("loop preds = %d, want 2 (entry + itself)", len(preds))
	}
	if exit.Terminator().Op != OpRet {
		t.Error("exit terminator should be ret")
	}
	if len(loop.Phis()) != 2 {
		t.Errorf("loop phis = %d, want 2", len(loop.Phis()))
	}
}

func TestBlockInsertRemove(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	b := f.NewBlock("entry")
	bd := NewBuilder(b)
	x := bd.Add(ConstInt(I32, 1), ConstInt(I32, 2))
	bd.Ret(nil)
	mid := &Instr{Op: OpMul, Typ: I32, Name: f.UniqueName("m"), Operands: []Value{x, x}}
	b.InsertAt(1, mid)
	if b.Instrs[1] != mid || mid.Index() != 1 {
		t.Error("InsertAt misplaced instruction")
	}
	b.Remove(mid)
	if len(b.Instrs) != 2 || mid.Parent != nil {
		t.Error("Remove failed")
	}
}

func TestGEPTypeRules(t *testing.T) {
	st := &StructType{TypeName: "S", Fields: []Type{I32, ArrayOf(4, F32)}}
	// gep S* p, 0, 1, 2 → f32*
	typ, err := GEPType(Ptr(st), []Value{ConstInt(I64, 0), ConstInt(I32, 1), ConstInt(I64, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !typ.Equal(Ptr(F32)) {
		t.Errorf("gep type = %s, want f32*", typ)
	}
	// Struct index must be constant.
	m := NewModule("t")
	f := m.NewFunc("f", Void, &Param{Name: "i", Typ: I32})
	if _, err := GEPType(Ptr(st), []Value{ConstInt(I64, 0), f.Params[0]}); err == nil {
		t.Error("expected error for variable struct index")
	}
	// Out-of-range field.
	if _, err := GEPType(Ptr(st), []Value{ConstInt(I64, 0), ConstInt(I32, 5)}); err == nil {
		t.Error("expected error for out-of-range field")
	}
	// gep into scalar beyond the first index.
	if _, err := GEPType(Ptr(I32), []Value{ConstInt(I64, 0), ConstInt(I64, 0)}); err == nil {
		t.Error("expected error for gep into scalar")
	}
	// Non-pointer base.
	if _, err := GEPType(I32, []Value{ConstInt(I64, 0)}); err == nil {
		t.Error("expected error for non-pointer base")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpAdd.IsCommutative() || OpSub.IsCommutative() {
		t.Error("commutativity misclassified")
	}
	if !OpAdd.IsAssociative() || OpFAdd.IsAssociative() {
		t.Error("associativity misclassified (fadd needs fast-math)")
	}
	if !OpBr.IsTerminator() || OpAdd.IsTerminator() {
		t.Error("terminators misclassified")
	}
	if !OpZExt.IsCast() || OpAdd.IsCast() {
		t.Error("casts misclassified")
	}
	// Neutral elements.
	if c, _ := IntValue(OpAdd.NeutralElement(I32)); c != 0 {
		t.Error("add neutral is 0")
	}
	if c, _ := IntValue(OpMul.NeutralElement(I32)); c != 1 {
		t.Error("mul neutral is 1")
	}
	if c, _ := IntValue(OpAnd.NeutralElement(I32)); c != -1 {
		t.Error("and neutral is all-ones")
	}
	if OpICmp.NeutralElement(I32) != nil {
		t.Error("icmp has no neutral element")
	}
	if fc, ok := OpFMul.NeutralElement(F64).(*FloatConst); !ok || fc.Val != 1 {
		t.Error("fmul neutral is 1.0")
	}
}

func TestMemoryEffectClassification(t *testing.T) {
	m := NewModule("t")
	decl := m.NewDecl("ext", Void, I32)
	pure := m.NewDecl("pure_fn", I32, I32)
	pure.ReadOnly = true
	f := m.NewFunc("f", Void, &Param{Name: "p", Typ: Ptr(I32)})
	b := f.NewBlock("entry")
	bd := NewBuilder(b)
	ld := bd.Load(f.Params[0])
	st := bd.Store(ld, f.Params[0])
	call := bd.Call(decl, ld)
	pcall := bd.Call(pure, ld)
	add := bd.Add(ld, ld)
	bd.Ret(nil)

	if !ld.MayReadMemory() || ld.MayWriteMemory() {
		t.Error("load classification")
	}
	if !st.MayWriteMemory() || st.MayReadMemory() {
		t.Error("store classification")
	}
	if !call.MayWriteMemory() {
		t.Error("opaque call may write")
	}
	if pcall.MayWriteMemory() {
		t.Error("readonly call must not write")
	}
	if add.HasMemoryEffect() {
		t.Error("add has no memory effect")
	}
}
