package ir

import (
	"testing"
	"testing/quick"
)

func TestScalarSizes(t *testing.T) {
	cases := []struct {
		typ   Type
		size  int
		align int
		str   string
	}{
		{I1, 1, 1, "i1"},
		{I8, 1, 1, "i8"},
		{I16, 2, 2, "i16"},
		{I32, 4, 4, "i32"},
		{I64, 8, 8, "i64"},
		{F32, 4, 4, "f32"},
		{F64, 8, 8, "f64"},
		{Ptr(I32), 8, 8, "i32*"},
		{Ptr(Ptr(F64)), 8, 8, "f64**"},
		{ArrayOf(10, I32), 40, 4, "[10 x i32]"},
		{ArrayOf(3, ArrayOf(2, I16)), 12, 2, "[3 x [2 x i16]]"},
		{Void, 0, 1, "void"},
	}
	for _, c := range cases {
		if got := c.typ.Size(); got != c.size {
			t.Errorf("%s: size %d, want %d", c.str, got, c.size)
		}
		if got := c.typ.Align(); got != c.align {
			t.Errorf("%s: align %d, want %d", c.str, got, c.align)
		}
		if got := c.typ.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// {i8, i32, i8, i64} → offsets 0, 4, 8, 16, size 24, align 8.
	s := &StructType{Fields: []Type{I8, I32, I8, I64}}
	wantOff := []int{0, 4, 8, 16}
	for i, w := range wantOff {
		if got := s.FieldOffset(i); got != w {
			t.Errorf("field %d offset %d, want %d", i, got, w)
		}
	}
	if s.Size() != 24 {
		t.Errorf("size %d, want 24", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("align %d, want 8", s.Align())
	}
	// Homogeneous struct: offsets are linear in the index.
	h := &StructType{Fields: []Type{I32, I32, I32, I32}}
	for i := range h.Fields {
		if h.FieldOffset(i) != 4*i {
			t.Errorf("homogeneous offset %d != %d", h.FieldOffset(i), 4*i)
		}
	}
	if h.Size() != 16 {
		t.Errorf("homogeneous size %d, want 16", h.Size())
	}
	// Empty struct.
	e := &StructType{}
	if e.Size() != 0 || e.Align() != 1 {
		t.Errorf("empty struct size/align = %d/%d", e.Size(), e.Align())
	}
}

func TestTypeEquality(t *testing.T) {
	if !I32.Equal(IntType{Bits: 32}) {
		t.Error("i32 should equal i32")
	}
	if I32.Equal(I64) {
		t.Error("i32 should not equal i64")
	}
	if I32.Equal(F32) {
		t.Error("i32 should not equal f32")
	}
	if !Ptr(I8).Equal(Ptr(I8)) {
		t.Error("i8* should equal i8*")
	}
	if Ptr(I8).Equal(Ptr(I16)) {
		t.Error("i8* should not equal i16*")
	}
	if !ArrayOf(4, F32).Equal(ArrayOf(4, F32)) {
		t.Error("[4 x f32] equality")
	}
	if ArrayOf(4, F32).Equal(ArrayOf(5, F32)) {
		t.Error("array lengths must match")
	}
	// Named structs compare by name.
	a := &StructType{TypeName: "A", Fields: []Type{I32}}
	a2 := &StructType{TypeName: "A", Fields: []Type{I64}}
	b := &StructType{TypeName: "B", Fields: []Type{I32}}
	if !a.Equal(a2) {
		t.Error("same-named structs should be equal")
	}
	if a.Equal(b) {
		t.Error("differently named structs should differ")
	}
	// Anonymous structs compare structurally.
	s1 := &StructType{Fields: []Type{I32, F64}}
	s2 := &StructType{Fields: []Type{I32, F64}}
	s3 := &StructType{Fields: []Type{F64, I32}}
	if !s1.Equal(s2) || s1.Equal(s3) {
		t.Error("anonymous struct structural equality broken")
	}
	// Function types.
	f1 := &FuncType{Ret: I32, Params: []Type{I32, Ptr(I8)}}
	f2 := &FuncType{Ret: I32, Params: []Type{I32, Ptr(I8)}}
	f3 := &FuncType{Ret: Void, Params: []Type{I32, Ptr(I8)}}
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Error("function type equality broken")
	}
}

func TestBitcastLossless(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{I32, I32, true},
		{I32, F32, true},
		{I64, F64, true},
		{I64, Ptr(I8), true},
		{I32, I64, false},
		{F32, F64, false},
		{ArrayOf(1, I32), I32, false}, // aggregates never bitcast
		{I8, I8, true},
	}
	for _, c := range cases {
		if got := BitcastLossless(c.a, c.b); got != c.want {
			t.Errorf("BitcastLossless(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAlignUpProperties(t *testing.T) {
	f := func(n uint16, aexp uint8) bool {
		a := 1 << (aexp % 4) // 1,2,4,8
		v := alignUp(int(n), a)
		return v >= int(n) && v%a == 0 && v < int(n)+a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructOffsetsAligned(t *testing.T) {
	// Property: every field offset is aligned to the field's alignment
	// and offsets are strictly increasing for non-empty fields.
	f := func(kinds []uint8) bool {
		if len(kinds) == 0 || len(kinds) > 12 {
			return true
		}
		var fields []Type
		for _, k := range kinds {
			switch k % 5 {
			case 0:
				fields = append(fields, I8)
			case 1:
				fields = append(fields, I16)
			case 2:
				fields = append(fields, I32)
			case 3:
				fields = append(fields, I64)
			default:
				fields = append(fields, F64)
			}
		}
		s := &StructType{Fields: fields}
		prevEnd := 0
		for i, ft := range fields {
			off := s.FieldOffset(i)
			if off%ft.Align() != 0 {
				return false
			}
			if off < prevEnd {
				return false
			}
			prevEnd = off + ft.Size()
		}
		return s.Size() >= prevEnd && s.Size()%s.Align() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
