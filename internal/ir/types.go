// Package ir implements a typed SSA intermediate representation in the
// style of LLVM IR: modules hold globals and functions, functions hold
// basic blocks, and blocks hold instructions in static single assignment
// form. The package provides construction (Builder), verification,
// printing, cloning, and use-def utilities. It is the substrate on which
// the RoLAG loop-rolling optimization and the loop-rerolling baseline
// operate.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all IR types. Types are compared
// structurally with Equal; named struct types compare by identity of the
// name when both are named.
type Type interface {
	// String returns the textual form of the type (e.g. "i32", "f64*").
	String() string
	// Size returns the store size of the type in bytes under the fixed
	// x86-64-flavoured data layout used throughout this project.
	Size() int
	// Align returns the ABI alignment of the type in bytes.
	Align() int
	// Equal reports whether t and u are the same type.
	Equal(u Type) bool
}

// VoidType is the type of instructions that produce no value.
type VoidType struct{}

func (VoidType) String() string    { return "void" }
func (VoidType) Size() int         { return 0 }
func (VoidType) Align() int        { return 1 }
func (VoidType) Equal(u Type) bool { _, ok := u.(VoidType); return ok }

// IntType is an integer type of a fixed bit width. Width 1 is the boolean
// type produced by comparisons.
type IntType struct {
	Bits int
}

func (t IntType) String() string { return fmt.Sprintf("i%d", t.Bits) }

func (t IntType) Size() int {
	if t.Bits <= 8 {
		return 1
	}
	return t.Bits / 8
}

func (t IntType) Align() int { return t.Size() }

func (t IntType) Equal(u Type) bool {
	v, ok := u.(IntType)
	return ok && v.Bits == t.Bits
}

// FloatType is a binary floating-point type (32 or 64 bits).
type FloatType struct {
	Bits int
}

func (t FloatType) String() string {
	if t.Bits == 32 {
		return "f32"
	}
	return "f64"
}

func (t FloatType) Size() int  { return t.Bits / 8 }
func (t FloatType) Align() int { return t.Bits / 8 }

func (t FloatType) Equal(u Type) bool {
	v, ok := u.(FloatType)
	return ok && v.Bits == t.Bits
}

// PointerType is a typed pointer. All pointers are 8 bytes.
type PointerType struct {
	Elem Type
}

func (t PointerType) String() string { return t.Elem.String() + "*" }
func (t PointerType) Size() int      { return 8 }
func (t PointerType) Align() int     { return 8 }

func (t PointerType) Equal(u Type) bool {
	v, ok := u.(PointerType)
	return ok && v.Elem.Equal(t.Elem)
}

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	Len  int
}

func (t ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.Len, t.Elem) }
func (t ArrayType) Size() int      { return t.Len * t.Elem.Size() }
func (t ArrayType) Align() int     { return t.Elem.Align() }

func (t ArrayType) Equal(u Type) bool {
	v, ok := u.(ArrayType)
	return ok && v.Len == t.Len && v.Elem.Equal(t.Elem)
}

// StructType is a struct with laid-out fields. A StructType may be named,
// in which case two named struct types are equal iff their names are
// equal; anonymous struct types compare structurally.
type StructType struct {
	TypeName string
	Fields   []Type
}

func (t *StructType) String() string {
	if t.TypeName != "" {
		return "%" + t.TypeName
	}
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FieldOffset returns the byte offset of field i under natural alignment.
func (t *StructType) FieldOffset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off = alignUp(off, t.Fields[j].Align())
		off += t.Fields[j].Size()
	}
	return alignUp(off, t.Fields[i].Align())
}

func (t *StructType) Size() int {
	if len(t.Fields) == 0 {
		return 0
	}
	last := len(t.Fields) - 1
	end := t.FieldOffset(last) + t.Fields[last].Size()
	return alignUp(end, t.Align())
}

func (t *StructType) Align() int {
	a := 1
	for _, f := range t.Fields {
		if f.Align() > a {
			a = f.Align()
		}
	}
	return a
}

func (t *StructType) Equal(u Type) bool {
	v, ok := u.(*StructType)
	if !ok {
		return false
	}
	if t == v {
		return true
	}
	if t.TypeName != "" || v.TypeName != "" {
		return t.TypeName == v.TypeName
	}
	if len(t.Fields) != len(v.Fields) {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].Equal(v.Fields[i]) {
			return false
		}
	}
	return true
}

// FuncType is the type of a function: a return type and parameter types.
type FuncType struct {
	Ret    Type
	Params []Type
}

func (t *FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s (%s)", t.Ret, strings.Join(parts, ", "))
}

func (t *FuncType) Size() int  { return 0 }
func (t *FuncType) Align() int { return 1 }

func (t *FuncType) Equal(u Type) bool {
	v, ok := u.(*FuncType)
	if !ok || !v.Ret.Equal(t.Ret) || len(v.Params) != len(t.Params) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Equal(v.Params[i]) {
			return false
		}
	}
	return true
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Common type singletons.
var (
	Void = VoidType{}
	I1   = IntType{Bits: 1}
	I8   = IntType{Bits: 8}
	I16  = IntType{Bits: 16}
	I32  = IntType{Bits: 32}
	I64  = IntType{Bits: 64}
	F32  = FloatType{Bits: 32}
	F64  = FloatType{Bits: 64}
)

// Ptr returns the pointer type to elem.
func Ptr(elem Type) PointerType { return PointerType{Elem: elem} }

// ArrayOf returns the array type [n x elem].
func ArrayOf(n int, elem Type) ArrayType { return ArrayType{Elem: elem, Len: n} }

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { _, ok := t.(IntType); return ok }

// IsFloat reports whether t is a floating-point type.
func IsFloat(t Type) bool { _, ok := t.(FloatType); return ok }

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool { _, ok := t.(PointerType); return ok }

// IsVoid reports whether t is the void type.
func IsVoid(t Type) bool { _, ok := t.(VoidType); return ok }

// BitcastLossless reports whether a value of type a can be reinterpreted
// as type b without loss: the types have the same size and both are
// scalar (integer, float or pointer) types. This is the type-equivalence
// relation used by the alignment strategy (§IV.B of the paper).
func BitcastLossless(a, b Type) bool {
	if a.Equal(b) {
		return true
	}
	scalar := func(t Type) bool { return IsInt(t) || IsFloat(t) || IsPointer(t) }
	return scalar(a) && scalar(b) && a.Size() == b.Size()
}
