package ir

import "fmt"

// Builder constructs instructions appended at the end of a current block
// (or at a chosen insertion point), computing result types and assigning
// unique SSA names.
type Builder struct {
	Func  *Func
	Block *Block
	// At is the insertion index within Block, or -1 to append.
	At int
}

// NewBuilder returns a builder appending to block b.
func NewBuilder(b *Block) *Builder {
	return &Builder{Func: b.Parent, Block: b, At: -1}
}

// SetBlock moves the builder to append at the end of b.
func (bd *Builder) SetBlock(b *Block) {
	bd.Block = b
	bd.At = -1
}

// SetInsertBefore positions the builder to insert before instruction in.
func (bd *Builder) SetInsertBefore(in *Instr) {
	bd.Block = in.Parent
	bd.At = in.Index()
}

func (bd *Builder) insert(in *Instr) *Instr {
	if !IsVoid(in.Typ) && in.Name == "" {
		in.Name = bd.Func.uniqueName("t")
	}
	if bd.At < 0 {
		bd.Block.Append(in)
	} else {
		bd.Block.InsertAt(bd.At, in)
		bd.At++
	}
	return in
}

// Named sets the name hint for the next instruction built.
func (bd *Builder) named(name string, in *Instr) *Instr {
	if name != "" && !IsVoid(in.Typ) {
		in.Name = bd.Func.uniqueName(name)
	}
	return bd.insert(in)
}

// Bin builds a binary operation.
func (bd *Builder) Bin(op Op, lhs, rhs Value) *Instr {
	if !op.IsBinary() {
		panic(fmt.Sprintf("ir: Bin called with non-binary op %s", op))
	}
	return bd.insert(&Instr{Op: op, Typ: lhs.Type(), Operands: []Value{lhs, rhs}})
}

// Add builds an integer add.
func (bd *Builder) Add(lhs, rhs Value) *Instr { return bd.Bin(OpAdd, lhs, rhs) }

// Sub builds an integer sub.
func (bd *Builder) Sub(lhs, rhs Value) *Instr { return bd.Bin(OpSub, lhs, rhs) }

// Mul builds an integer mul.
func (bd *Builder) Mul(lhs, rhs Value) *Instr { return bd.Bin(OpMul, lhs, rhs) }

// ICmp builds an integer comparison producing an i1.
func (bd *Builder) ICmp(p Pred, lhs, rhs Value) *Instr {
	return bd.insert(&Instr{Op: OpICmp, Typ: I1, Pred: p, Operands: []Value{lhs, rhs}})
}

// FCmp builds a floating-point comparison producing an i1.
func (bd *Builder) FCmp(p Pred, lhs, rhs Value) *Instr {
	return bd.insert(&Instr{Op: OpFCmp, Typ: I1, Pred: p, Operands: []Value{lhs, rhs}})
}

// Alloca builds a stack allocation of count elements of type elem,
// producing an elem*.
func (bd *Builder) Alloca(elem Type, count Value, name string) *Instr {
	if count == nil {
		count = ConstInt(I64, 1)
	}
	return bd.named(name, &Instr{Op: OpAlloca, Typ: Ptr(elem), Alloc: elem, Operands: []Value{count}})
}

// Load builds a load from ptr.
func (bd *Builder) Load(ptr Value) *Instr {
	pt, ok := ptr.Type().(PointerType)
	if !ok {
		panic("ir: Load from non-pointer")
	}
	return bd.insert(&Instr{Op: OpLoad, Typ: pt.Elem, Operands: []Value{ptr}})
}

// Store builds a store of val to ptr.
func (bd *Builder) Store(val, ptr Value) *Instr {
	return bd.insert(&Instr{Op: OpStore, Typ: Void, Operands: []Value{val, ptr}})
}

// GEPType computes the result type of a gep with the given base type and
// index count/values. The first index steps over the pointee; subsequent
// indices drill into aggregates.
func GEPType(base Type, indices []Value) (Type, error) {
	pt, ok := base.(PointerType)
	if !ok {
		return nil, fmt.Errorf("ir: gep base is not a pointer: %s", base)
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("ir: gep requires at least one index")
	}
	cur := pt.Elem
	for _, idx := range indices[1:] {
		switch t := cur.(type) {
		case ArrayType:
			cur = t.Elem
		case *StructType:
			c, ok := idx.(*IntConst)
			if !ok {
				return nil, fmt.Errorf("ir: gep struct index must be a constant")
			}
			if c.Val < 0 || int(c.Val) >= len(t.Fields) {
				return nil, fmt.Errorf("ir: gep struct index %d out of range for %s", c.Val, t)
			}
			cur = t.Fields[c.Val]
		default:
			return nil, fmt.Errorf("ir: gep into non-aggregate type %s", cur)
		}
	}
	return Ptr(cur), nil
}

// GEP builds a getelementptr: base is a pointer, indices index into the
// pointee.
func (bd *Builder) GEP(base Value, indices ...Value) *Instr {
	t, err := GEPType(base.Type(), indices)
	if err != nil {
		panic(err)
	}
	ops := append([]Value{base}, indices...)
	return bd.insert(&Instr{Op: OpGEP, Typ: t, Operands: ops})
}

// Call builds a call to callee with the given arguments.
func (bd *Builder) Call(callee *Func, args ...Value) *Instr {
	return bd.insert(&Instr{Op: OpCall, Typ: callee.Sig.Ret, Callee: callee, Operands: args})
}

// Cast builds a conversion of val to type to.
func (bd *Builder) Cast(op Op, val Value, to Type) *Instr {
	if !op.IsCast() {
		panic(fmt.Sprintf("ir: Cast called with non-cast op %s", op))
	}
	return bd.insert(&Instr{Op: op, Typ: to, Operands: []Value{val}})
}

// Phi builds a phi node of type t. Incoming edges are added with
// AddIncoming.
func (bd *Builder) Phi(t Type, name string) *Instr {
	return bd.named(name, &Instr{Op: OpPhi, Typ: t})
}

// AddIncoming appends an incoming (value, predecessor) edge to phi.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Operands = append(phi.Operands, v)
	phi.Blocks = append(phi.Blocks, pred)
}

// Select builds a select cond ? ifTrue : ifFalse.
func (bd *Builder) Select(cond, ifTrue, ifFalse Value) *Instr {
	return bd.insert(&Instr{Op: OpSelect, Typ: ifTrue.Type(), Operands: []Value{cond, ifTrue, ifFalse}})
}

// Br builds an unconditional branch to target.
func (bd *Builder) Br(target *Block) *Instr {
	return bd.insert(&Instr{Op: OpBr, Typ: Void, Blocks: []*Block{target}})
}

// CondBr builds a conditional branch.
func (bd *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	return bd.insert(&Instr{Op: OpCondBr, Typ: Void, Operands: []Value{cond}, Blocks: []*Block{ifTrue, ifFalse}})
}

// Ret builds a return; val may be nil for void functions.
func (bd *Builder) Ret(val Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if val != nil {
		in.Operands = []Value{val}
	}
	return bd.insert(in)
}
