package ir

import (
	"fmt"
)

// VerifyError describes a structural or type error found by Verify.
type VerifyError struct {
	Func  string
	Block string
	Instr string
	Msg   string
}

func (e *VerifyError) Error() string {
	loc := e.Func
	if e.Block != "" {
		loc += ":" + e.Block
	}
	if e.Instr != "" {
		loc += ": " + e.Instr
	}
	return fmt.Sprintf("ir verify: %s: %s", loc, e.Msg)
}

// Verify checks the structural invariants of the module: every block is
// terminated, SSA definitions dominate uses (checked conservatively via a
// reverse-postorder dominance walk for straight-line regions and phi edge
// validity), operand types match opcode requirements, and names are
// unique. It returns the first error found, or nil.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks the invariants of a single function.
func (f *Func) Verify() error {
	if f.IsDecl() {
		return nil
	}
	errf := func(b *Block, in *Instr, format string, args ...any) error {
		e := &VerifyError{Func: f.Name, Msg: fmt.Sprintf(format, args...)}
		if b != nil {
			e.Block = b.Name
		}
		if in != nil {
			e.Instr = in.String()
		}
		return e
	}

	// Name uniqueness and block well-formedness.
	names := make(map[string]bool)
	for _, p := range f.Params {
		if names[p.Name] {
			return errf(nil, nil, "duplicate name %%%s", p.Name)
		}
		names[p.Name] = true
	}
	blockNames := make(map[string]bool)
	defined := make(map[Value]bool)
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		if blockNames[b.Name] {
			return errf(b, nil, "duplicate block name")
		}
		blockNames[b.Name] = true
		if b.Terminator() == nil {
			return errf(b, nil, "block is not terminated")
		}
		for i, in := range b.Instrs {
			if in.Parent != b {
				return errf(b, in, "instruction parent mismatch")
			}
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return errf(b, in, "terminator in the middle of a block")
			}
			if in.Op == OpPhi && i > 0 && b.Instrs[i-1].Op != OpPhi {
				return errf(b, in, "phi not grouped at the start of the block")
			}
			if !IsVoid(in.Typ) {
				if in.Name == "" {
					return errf(b, in, "value-producing instruction has no name")
				}
				if names[in.Name] {
					return errf(b, in, "duplicate name %%%s", in.Name)
				}
				names[in.Name] = true
			}
			defined[in] = true
		}
	}

	// Operand validity and typing.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for oi, op := range in.Operands {
				if op == nil {
					return errf(b, in, "nil operand %d", oi)
				}
				switch v := op.(type) {
				case *Instr:
					if !defined[v] {
						return errf(b, in, "operand %%%s is not defined in this function", v.Name)
					}
				case *Param:
					if !defined[v] {
						return errf(b, in, "operand %%%s is not a parameter of this function", v.Name)
					}
				case *Global:
					if v.Parent != f.Parent {
						return errf(b, in, "operand @%s belongs to another module", v.Name)
					}
				}
			}
			if err := checkTypes(in); err != nil {
				return errf(b, in, "%v", err)
			}
			if in.Op == OpPhi {
				preds := f.Preds(b)
				if len(in.Blocks) != len(preds) {
					return errf(b, in, "phi has %d incoming edges, block has %d predecessors", len(in.Blocks), len(preds))
				}
				for _, p := range preds {
					if _, ok := in.PhiIncoming(p); !ok {
						return errf(b, in, "phi missing incoming value for predecessor %%%s", p.Name)
					}
				}
			}
		}
	}

	// Dominance: a simple iterative dominator computation over blocks,
	// then each non-phi use must be dominated by its definition.
	dom := f.dominators()
	blockIndex := make(map[*Block]int, len(f.Blocks))
	instrIndex := make(map[*Instr]int)
	for bi, b := range f.Blocks {
		blockIndex[b] = bi
		for ii, in := range b.Instrs {
			instrIndex[in] = ii
		}
	}
	dominates := func(def *Instr, useBlock *Block, useIdx int, usePhiPred *Block) bool {
		db := def.Parent
		if usePhiPred != nil {
			// A phi use must be dominated at the end of the incoming edge.
			useBlock = usePhiPred
			useIdx = len(useBlock.Instrs)
		}
		if db == useBlock {
			return instrIndex[def] < useIdx
		}
		return dom[useBlock][db]
	}
	for _, b := range f.Blocks {
		for ii, in := range b.Instrs {
			for oi, op := range in.Operands {
				def, ok := op.(*Instr)
				if !ok {
					continue
				}
				var phiPred *Block
				if in.Op == OpPhi {
					phiPred = in.Blocks[oi]
				}
				if !dominates(def, b, ii, phiPred) {
					return errf(b, in, "use of %%%s is not dominated by its definition", def.Name)
				}
			}
		}
	}
	return nil
}

// dominators returns, for each block b, the set of blocks that dominate
// b, computed by the standard iterative data-flow algorithm.
func (f *Func) dominators() map[*Block]map[*Block]bool {
	all := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		all[b] = true
	}
	dom := make(map[*Block]map[*Block]bool, len(f.Blocks))
	entry := f.Entry()
	for _, b := range f.Blocks {
		if b == entry {
			dom[b] = map[*Block]bool{b: true}
		} else {
			full := make(map[*Block]bool, len(all))
			for k := range all {
				full[k] = true
			}
			dom[b] = full
		}
	}
	preds := make(map[*Block][]*Block)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			if b == entry {
				continue
			}
			var inter map[*Block]bool
			for _, p := range preds[b] {
				if inter == nil {
					inter = make(map[*Block]bool, len(dom[p]))
					for k := range dom[p] {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !dom[p][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = make(map[*Block]bool)
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[b][k] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func checkTypes(in *Instr) error {
	want := func(n int) error {
		if len(in.Operands) != n {
			return fmt.Errorf("%s expects %d operands, has %d", in.Op, n, len(in.Operands))
		}
		return nil
	}
	switch {
	case in.Op.IsIntBinary():
		if err := want(2); err != nil {
			return err
		}
		if !IsInt(in.Operands[0].Type()) || !in.Operands[0].Type().Equal(in.Operands[1].Type()) {
			return fmt.Errorf("integer binary op on mismatched types %s, %s", in.Operands[0].Type(), in.Operands[1].Type())
		}
		if !in.Typ.Equal(in.Operands[0].Type()) {
			return fmt.Errorf("result type %s does not match operand type %s", in.Typ, in.Operands[0].Type())
		}
	case in.Op.IsFloatBinary():
		if err := want(2); err != nil {
			return err
		}
		if !IsFloat(in.Operands[0].Type()) || !in.Operands[0].Type().Equal(in.Operands[1].Type()) {
			return fmt.Errorf("float binary op on mismatched types")
		}
	case in.Op == OpICmp:
		if err := want(2); err != nil {
			return err
		}
		t := in.Operands[0].Type()
		if !IsInt(t) && !IsPointer(t) {
			return fmt.Errorf("icmp on non-integer type %s", t)
		}
		if !t.Equal(in.Operands[1].Type()) {
			return fmt.Errorf("icmp on mismatched types")
		}
	case in.Op == OpFCmp:
		if err := want(2); err != nil {
			return err
		}
		if !IsFloat(in.Operands[0].Type()) {
			return fmt.Errorf("fcmp on non-float type")
		}
	case in.Op == OpLoad:
		if err := want(1); err != nil {
			return err
		}
		pt, ok := in.Operands[0].Type().(PointerType)
		if !ok {
			return fmt.Errorf("load from non-pointer")
		}
		if !in.Typ.Equal(pt.Elem) {
			return fmt.Errorf("load type %s does not match pointee %s", in.Typ, pt.Elem)
		}
	case in.Op == OpStore:
		if err := want(2); err != nil {
			return err
		}
		pt, ok := in.Operands[1].Type().(PointerType)
		if !ok {
			return fmt.Errorf("store to non-pointer")
		}
		if !in.Operands[0].Type().Equal(pt.Elem) {
			return fmt.Errorf("store of %s to %s*", in.Operands[0].Type(), pt.Elem)
		}
	case in.Op == OpGEP:
		t, err := GEPType(in.Operands[0].Type(), in.Operands[1:])
		if err != nil {
			return err
		}
		if !in.Typ.Equal(t) {
			return fmt.Errorf("gep result type %s, want %s", in.Typ, t)
		}
		for _, idx := range in.Operands[1:] {
			if !IsInt(idx.Type()) {
				return fmt.Errorf("gep index is not an integer")
			}
		}
	case in.Op == OpCall:
		if in.Callee == nil {
			return fmt.Errorf("call with nil callee")
		}
		sig := in.Callee.Sig
		if len(in.Operands) != len(sig.Params) {
			return fmt.Errorf("call to @%s with %d args, want %d", in.Callee.Name, len(in.Operands), len(sig.Params))
		}
		for i, a := range in.Operands {
			if !a.Type().Equal(sig.Params[i]) {
				return fmt.Errorf("call arg %d has type %s, want %s", i, a.Type(), sig.Params[i])
			}
		}
		if !in.Typ.Equal(sig.Ret) {
			return fmt.Errorf("call result type %s, want %s", in.Typ, sig.Ret)
		}
	case in.Op.IsCast():
		if err := want(1); err != nil {
			return err
		}
	case in.Op == OpPhi:
		for _, v := range in.Operands {
			if !v.Type().Equal(in.Typ) {
				return fmt.Errorf("phi incoming type %s, want %s", v.Type(), in.Typ)
			}
		}
		if len(in.Operands) != len(in.Blocks) {
			return fmt.Errorf("phi operand/block count mismatch")
		}
	case in.Op == OpSelect:
		if err := want(3); err != nil {
			return err
		}
		if !in.Operands[0].Type().Equal(I1) {
			return fmt.Errorf("select condition is not i1")
		}
		if !in.Operands[1].Type().Equal(in.Operands[2].Type()) {
			return fmt.Errorf("select arms have different types")
		}
	case in.Op == OpBr:
		if len(in.Blocks) != 1 {
			return fmt.Errorf("br needs 1 target")
		}
	case in.Op == OpCondBr:
		if err := want(1); err != nil {
			return err
		}
		if len(in.Blocks) != 2 {
			return fmt.Errorf("condbr needs 2 targets")
		}
		if !in.Operands[0].Type().Equal(I1) {
			return fmt.Errorf("condbr condition is not i1")
		}
	case in.Op == OpRet:
		if len(in.Operands) > 1 {
			return fmt.Errorf("ret with %d operands", len(in.Operands))
		}
	case in.Op == OpAlloca:
		if err := want(1); err != nil {
			return err
		}
		if in.Alloc == nil {
			return fmt.Errorf("alloca without element type")
		}
	default:
		return fmt.Errorf("unknown opcode")
	}
	return nil
}
