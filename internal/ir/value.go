package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, globals, functions (as callees) and instructions.
type Value interface {
	// Type returns the type of the value.
	Type() Type
	// Ident returns the operand spelling of the value, e.g. "%x", "42",
	// "@g". It does not include the type.
	Ident() string
}

// Const is the interface implemented by all constants.
type Const interface {
	Value
	isConst()
}

// IntConst is an integer constant. Val holds the value sign-extended to
// 64 bits regardless of the width of Typ.
type IntConst struct {
	Typ IntType
	Val int64
}

// ConstInt returns an integer constant of type t with value v truncated
// and sign-extended to t's width.
func ConstInt(t IntType, v int64) *IntConst {
	return &IntConst{Typ: t, Val: truncSExt(v, t.Bits)}
}

// ConstBool returns an i1 constant.
func ConstBool(b bool) *IntConst {
	if b {
		return &IntConst{Typ: I1, Val: 1}
	}
	return &IntConst{Typ: I1, Val: 0}
}

func truncSExt(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return v << shift >> shift
}

func (c *IntConst) Type() Type    { return c.Typ }
func (c *IntConst) Ident() string { return strconv.FormatInt(c.Val, 10) }
func (c *IntConst) isConst()      {}

// FloatConst is a floating-point constant.
type FloatConst struct {
	Typ FloatType
	Val float64
}

// ConstFloat returns a floating-point constant of type t.
func ConstFloat(t FloatType, v float64) *FloatConst {
	if t.Bits == 32 {
		v = float64(float32(v))
	}
	return &FloatConst{Typ: t, Val: v}
}

func (c *FloatConst) Type() Type { return c.Typ }

func (c *FloatConst) Ident() string {
	if math.IsInf(c.Val, 1) {
		return "+inf"
	}
	if math.IsInf(c.Val, -1) {
		return "-inf"
	}
	s := strconv.FormatFloat(c.Val, 'g', -1, 64)
	// Ensure the token is recognizably a float.
	for _, r := range s {
		if r == '.' || r == 'e' || r == 'n' || r == 'i' {
			return s
		}
	}
	return s + ".0"
}

func (c *FloatConst) isConst() {}

// NullConst is the null pointer constant of a given pointer type.
type NullConst struct {
	Typ PointerType
}

// ConstNull returns the null constant of pointer type t.
func ConstNull(t PointerType) *NullConst { return &NullConst{Typ: t} }

func (c *NullConst) Type() Type    { return c.Typ }
func (c *NullConst) Ident() string { return "null" }
func (c *NullConst) isConst()      {}

// UndefConst is an undefined value of any type; used only as a
// placeholder during transformations.
type UndefConst struct {
	Typ Type
}

func (c *UndefConst) Type() Type    { return c.Typ }
func (c *UndefConst) Ident() string { return "undef" }
func (c *UndefConst) isConst()      {}

// ArrayConst is a constant array aggregate, used as a global initializer
// (e.g. the constant mismatch arrays emitted by RoLAG's code generator).
type ArrayConst struct {
	Typ   ArrayType
	Elems []Const
}

func (c *ArrayConst) Type() Type { return c.Typ }

func (c *ArrayConst) Ident() string {
	s := "["
	for i, e := range c.Elems {
		if i > 0 {
			s += ", "
		}
		s += e.Ident()
	}
	return s + "]"
}

func (c *ArrayConst) isConst() {}

// ZeroConst is the zero initializer for an aggregate type.
type ZeroConst struct {
	Typ Type
}

func (c *ZeroConst) Type() Type    { return c.Typ }
func (c *ZeroConst) Ident() string { return "zeroinitializer" }
func (c *ZeroConst) isConst()      {}

// ZeroValue returns the zero constant of type t.
func ZeroValue(t Type) Const {
	switch t := t.(type) {
	case IntType:
		return ConstInt(t, 0)
	case FloatType:
		return ConstFloat(t, 0)
	case PointerType:
		return ConstNull(t)
	default:
		return &ZeroConst{Typ: t}
	}
}

// SameConst reports whether two constants denote the same value.
func SameConst(a, b Const) bool {
	switch a := a.(type) {
	case *IntConst:
		b, ok := b.(*IntConst)
		return ok && a.Typ == b.Typ && a.Val == b.Val
	case *FloatConst:
		b, ok := b.(*FloatConst)
		return ok && a.Typ == b.Typ && (a.Val == b.Val || (math.IsNaN(a.Val) && math.IsNaN(b.Val)))
	case *NullConst:
		b, ok := b.(*NullConst)
		return ok && a.Typ.Equal(b.Typ)
	case *ZeroConst:
		b, ok := b.(*ZeroConst)
		return ok && a.Typ.Equal(b.Typ)
	case *ArrayConst:
		b, ok := b.(*ArrayConst)
		if !ok || !a.Typ.Equal(b.Typ) || len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !SameConst(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case *UndefConst:
		return false
	}
	return false
}

// Param is a function parameter.
type Param struct {
	Name   string
	Typ    Type
	Parent *Func
}

func (p *Param) Type() Type    { return p.Typ }
func (p *Param) Ident() string { return "%" + p.Name }

// Global is a module-level global variable. Its value type is Elem; as an
// operand it has type Elem*.
type Global struct {
	Name     string
	Elem     Type
	Init     Const // may be nil for external globals
	ReadOnly bool  // constant data (e.g. RoLAG's constant mismatch arrays)
	Parent   *Module
}

func (g *Global) Type() Type    { return Ptr(g.Elem) }
func (g *Global) Ident() string { return "@" + g.Name }

// SameValue reports whether a and b are statically the same value: the
// same SSA definition, or equal constants. This is the "identical value"
// relation used when classifying alignment-graph nodes.
func SameValue(a, b Value) bool {
	if a == b {
		return true
	}
	ca, aok := a.(Const)
	cb, bok := b.(Const)
	if aok && bok {
		return SameConst(ca, cb)
	}
	return false
}

// IsConst reports whether v is a constant.
func IsConst(v Value) bool {
	_, ok := v.(Const)
	return ok
}

// IntValue returns the integer value of v if v is an integer constant.
func IntValue(v Value) (int64, bool) {
	c, ok := v.(*IntConst)
	if !ok {
		return 0, false
	}
	return c.Val, true
}

func typedIdent(v Value) string {
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}
