package ir

import "fmt"

// Block is a basic block: a straight-line sequence of instructions ending
// in a terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Parent *Func
}

// Append adds an instruction at the end of the block and sets its parent.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertAt inserts an instruction at position i.
func (b *Block) InsertAt(i int, in *Instr) {
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Remove detaches the instruction from the block. It does not update
// uses; callers must have replaced or removed all uses first.
func (b *Block) Remove(in *Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.Parent = nil
			return
		}
	}
}

// Terminator returns the block's terminator instruction, or nil if the
// block is not yet terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil || t.Op == OpRet {
		return nil
	}
	return t.Blocks
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}

// Func is a function: a signature plus, for definitions, a list of basic
// blocks (the first block is the entry). A Func with no blocks is an
// external declaration.
type Func struct {
	Name     string
	Sig      *FuncType
	Params   []*Param
	Blocks   []*Block
	Parent   *Module
	ReadOnly bool // declaration known not to write caller-visible memory

	nameCounter int
}

// Type returns the type of the function when used as a callee value.
func (f *Func) Type() Type    { return f.Sig }
func (f *Func) Ident() string { return "@" + f.Name }

// IsDecl reports whether f is an external declaration (no body).
func (f *Func) IsDecl() bool { return len(f.Blocks) == 0 }

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock creates a block with a unique name based on name and appends
// it to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: f.uniqueName(name), Parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// RemoveBlock detaches block b from the function.
func (f *Func) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			b.Parent = nil
			return
		}
	}
}

// UniqueName returns a function-unique SSA or block name derived from
// base.
func (f *Func) UniqueName(base string) string { return f.uniqueName(base) }

// uniqueName returns a function-unique SSA or block name derived from
// base.
func (f *Func) uniqueName(base string) string {
	if base == "" {
		base = "t"
	}
	if !f.nameTaken(base) {
		return base
	}
	for {
		f.nameCounter++
		cand := fmt.Sprintf("%s%d", base, f.nameCounter)
		if !f.nameTaken(cand) {
			return cand
		}
	}
}

func (f *Func) nameTaken(name string) bool {
	for _, p := range f.Params {
		if p.Name == name {
			return true
		}
	}
	for _, b := range f.Blocks {
		if b.Name == name {
			return true
		}
		for _, in := range b.Instrs {
			if in.Name == name {
				return true
			}
		}
	}
	return false
}

// NumInstrs returns the total number of instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Users returns a map from each value to the instructions in f that use
// it as an operand (def-use chains). The map is computed by scanning the
// function; callers should recompute it after mutating the IR.
func (f *Func) Users() map[Value][]*Instr {
	users := make(map[Value][]*Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			seen := make(map[Value]bool, len(in.Operands))
			for _, op := range in.Operands {
				if op == nil || seen[op] {
					continue
				}
				seen[op] = true
				users[op] = append(users[op], in)
			}
		}
	}
	return users
}

// ReplaceAllUses rewrites every use of old inside f to new.
func (f *Func) ReplaceAllUses(old, new Value) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			n += in.ReplaceUsesOf(old, new)
		}
	}
	return n
}

// Preds returns the predecessor blocks of b within f.
func (f *Func) Preds(b *Block) []*Block {
	var preds []*Block
	for _, p := range f.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				preds = append(preds, p)
				break
			}
		}
	}
	return preds
}

// Module is a compilation unit: named struct types, globals and
// functions.
type Module struct {
	Name    string
	Structs []*StructType
	Globals []*Global
	Funcs   []*Func

	globalCounter int
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// NewFunc creates a function definition with the given name, return type
// and parameters, and adds it to the module.
func (m *Module) NewFunc(name string, ret Type, params ...*Param) *Func {
	ptypes := make([]Type, len(params))
	for i, p := range params {
		ptypes[i] = p.Typ
	}
	f := &Func{
		Name:   name,
		Sig:    &FuncType{Ret: ret, Params: ptypes},
		Params: params,
		Parent: m,
	}
	for _, p := range params {
		p.Parent = f
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// NewDecl creates an external function declaration.
func (m *Module) NewDecl(name string, ret Type, paramTypes ...Type) *Func {
	params := make([]*Param, len(paramTypes))
	for i, t := range paramTypes {
		params[i] = &Param{Name: fmt.Sprintf("a%d", i), Typ: t}
	}
	f := m.NewFunc(name, ret, params...)
	f.Blocks = nil
	return f
}

// NewGlobal creates a global variable and adds it to the module. The name
// is made unique within the module.
func (m *Module) NewGlobal(name string, elem Type, init Const) *Global {
	g := &Global{Name: m.uniqueGlobalName(name), Elem: elem, Init: init, Parent: m}
	m.Globals = append(m.Globals, g)
	return g
}

func (m *Module) uniqueGlobalName(base string) string {
	if base == "" {
		base = "g"
	}
	if m.FindGlobal(base) == nil && m.FindFunc(base) == nil {
		return base
	}
	for {
		m.globalCounter++
		cand := fmt.Sprintf("%s.%d", base, m.globalCounter)
		if m.FindGlobal(cand) == nil && m.FindFunc(cand) == nil {
			return cand
		}
	}
}

// GlobalsMark is a snapshot of a module's globals list and unique-name
// counter, taken with MarkGlobals and restored with ResetGlobals.
type GlobalsMark struct {
	n       int
	counter int
}

// MarkGlobals snapshots the globals state so a speculative
// transformation can be rolled back without leaving a trace: restoring
// the mark also restores the name counter, keeping subsequent
// unique-name generation independent of abandoned attempts.
func (m *Module) MarkGlobals() GlobalsMark {
	return GlobalsMark{n: len(m.Globals), counter: m.globalCounter}
}

// ResetGlobals drops every global added since mark was taken and
// restores the unique-name counter.
func (m *Module) ResetGlobals(mark GlobalsMark) {
	m.Globals = m.Globals[:mark.n]
	m.globalCounter = mark.counter
}

// AdoptGlobal moves a global created in another module (a staging sink
// used by the parallel pipeline) into m, renaming it to a fresh
// m-unique name derived from base. Instructions referencing g through
// its pointer stay valid; only the name changes. Adopting staged
// globals in deterministic order replays the exact name sequence a
// serial pipeline would have produced.
func (m *Module) AdoptGlobal(g *Global, base string) {
	g.Name = m.uniqueGlobalName(base)
	g.Parent = m
	m.Globals = append(m.Globals, g)
}

// FindFunc returns the function with the given name, or nil.
func (m *Module) FindFunc(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FindGlobal returns the global with the given name, or nil.
func (m *Module) FindGlobal(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// FindStruct returns the named struct type with the given name, or nil.
func (m *Module) FindStruct(name string) *StructType {
	for _, s := range m.Structs {
		if s.TypeName == name {
			return s
		}
	}
	return nil
}

// AddStruct registers a named struct type with the module.
func (m *Module) AddStruct(s *StructType) *StructType {
	m.Structs = append(m.Structs, s)
	return s
}
