package ir

import "fmt"

// Op identifies the operation an instruction performs.
type Op int

// Instruction opcodes.
const (
	OpInvalid Op = iota

	// Integer binary operations.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating-point binary operations.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons.
	OpICmp
	OpFCmp

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP

	// Calls.
	OpCall

	// Conversions.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpFPToSI
	OpSIToFP
	OpPtrToInt
	OpIntToPtr
	OpBitcast

	// Other.
	OpPhi
	OpSelect

	// Terminators.
	OpBr
	OpCondBr
	OpRet
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpCall:  "call",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext", OpFPTrunc: "fptrunc",
	OpFPExt: "fpext", OpFPToSI: "fptosi", OpSIToFP: "sitofp",
	OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr", OpBitcast: "bitcast",
	OpPhi: "phi", OpSelect: "select",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsBinary reports whether op is an integer or floating-point binary
// arithmetic/logical operation.
func (op Op) IsBinary() bool { return op >= OpAdd && op <= OpFDiv }

// IsIntBinary reports whether op is an integer binary operation.
func (op Op) IsIntBinary() bool { return op >= OpAdd && op <= OpAShr }

// IsFloatBinary reports whether op is a floating-point binary operation.
func (op Op) IsFloatBinary() bool { return op >= OpFAdd && op <= OpFDiv }

// IsCast reports whether op is a conversion.
func (op Op) IsCast() bool { return op >= OpTrunc && op <= OpBitcast }

// IsTerminator reports whether op terminates a basic block.
func (op Op) IsTerminator() bool { return op == OpBr || op == OpCondBr || op == OpRet }

// IsCommutative reports whether the operands of op may be swapped.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpFAdd, OpFMul:
		return true
	}
	return false
}

// IsAssociative reports whether op is associative. Floating-point
// operations are only associative under fast-math, which callers must
// gate explicitly (see rolag.Options.FastMath).
func (op Op) IsAssociative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// NeutralElement returns the neutral (identity) element of op for type t,
// or nil if op has none: x op neutral == x.
func (op Op) NeutralElement(t Type) Const {
	switch op {
	case OpAdd, OpSub, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		if it, ok := t.(IntType); ok {
			return ConstInt(it, 0)
		}
	case OpMul, OpSDiv, OpUDiv:
		if it, ok := t.(IntType); ok {
			return ConstInt(it, 1)
		}
	case OpAnd:
		if it, ok := t.(IntType); ok {
			return ConstInt(it, -1)
		}
	case OpFAdd, OpFSub:
		if ft, ok := t.(FloatType); ok {
			return ConstFloat(ft, 0)
		}
	case OpFMul, OpFDiv:
		if ft, ok := t.(FloatType); ok {
			return ConstFloat(ft, 1)
		}
	}
	return nil
}

// Pred is a comparison predicate for icmp and fcmp.
type Pred int

// Comparison predicates. The O-prefixed predicates are ordered
// floating-point comparisons.
const (
	PredInvalid Pred = iota
	PredEQ
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE
	PredOEQ
	PredONE
	PredOLT
	PredOLE
	PredOGT
	PredOGE
)

var predNames = map[Pred]string{
	PredEQ: "eq", PredNE: "ne",
	PredSLT: "slt", PredSLE: "sle", PredSGT: "sgt", PredSGE: "sge",
	PredULT: "ult", PredULE: "ule", PredUGT: "ugt", PredUGE: "uge",
	PredOEQ: "oeq", PredONE: "one",
	PredOLT: "olt", PredOLE: "ole", PredOGT: "ogt", PredOGE: "oge",
}

func (p Pred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// Instr is a single IR instruction. All instruction kinds share this
// struct; Op selects the operation, Operands holds the SSA operands, and
// the remaining fields are used only by the kinds that need them.
//
// Operand layout by opcode:
//
//	binary ops       [lhs, rhs]
//	icmp/fcmp        [lhs, rhs]           (Pred set)
//	alloca           [count]              (Alloc set to the element type)
//	load             [ptr]
//	store            [val, ptr]
//	gep              [base, idx...]
//	call             [arg...]             (Callee set)
//	casts            [val]
//	phi              [incoming...]        (Blocks parallel to Operands)
//	select           [cond, ifTrue, ifFalse]
//	br               []                   (Blocks[0] = target)
//	condbr           [cond]               (Blocks[0] = true, Blocks[1] = false)
//	ret              [] or [val]
type Instr struct {
	Name     string // SSA name; empty for void-typed instructions
	Op       Op
	Typ      Type
	Operands []Value
	Blocks   []*Block // phi incoming blocks or branch targets
	Pred     Pred     // icmp/fcmp predicate
	Callee   *Func    // call target
	Alloc    Type     // alloca element type
	Parent   *Block
}

func (in *Instr) Type() Type { return in.Typ }

func (in *Instr) Ident() string {
	if in.Name == "" {
		return "%<void>"
	}
	return "%" + in.Name
}

// NumOperands returns the number of SSA operands.
func (in *Instr) NumOperands() int { return len(in.Operands) }

// Operand returns the i-th operand.
func (in *Instr) Operand(i int) Value { return in.Operands[i] }

// SetOperand replaces the i-th operand.
func (in *Instr) SetOperand(i int, v Value) { in.Operands[i] = v }

// IsTerminator reports whether the instruction terminates its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// MayWriteMemory reports whether executing the instruction may write
// memory or have other side effects visible outside the function.
func (in *Instr) MayWriteMemory() bool {
	switch in.Op {
	case OpStore:
		return true
	case OpCall:
		// Conservative: any call may write memory unless it is known
		// read-only.
		return in.Callee == nil || !in.Callee.ReadOnly
	}
	return false
}

// MayReadMemory reports whether executing the instruction may read memory.
func (in *Instr) MayReadMemory() bool {
	switch in.Op {
	case OpLoad, OpCall:
		return true
	}
	return false
}

// HasMemoryEffect reports whether the instruction reads or writes memory
// (and therefore may not be reordered with conflicting accesses).
func (in *Instr) HasMemoryEffect() bool {
	return in.MayReadMemory() || in.MayWriteMemory()
}

// PhiIncoming returns the incoming value for predecessor block b of a phi.
func (in *Instr) PhiIncoming(b *Block) (Value, bool) {
	for i, blk := range in.Blocks {
		if blk == b {
			return in.Operands[i], true
		}
	}
	return nil, false
}

// ReplaceUsesOf replaces every operand equal to old with new. It returns
// the number of replacements.
func (in *Instr) ReplaceUsesOf(old, new Value) int {
	n := 0
	for i, op := range in.Operands {
		if op == old {
			in.Operands[i] = new
			n++
		}
	}
	return n
}

// Index returns the position of the instruction in its parent block, or
// -1 if detached.
func (in *Instr) Index() int {
	if in.Parent == nil {
		return -1
	}
	for i, x := range in.Parent.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}
