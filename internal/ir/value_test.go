package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstIntTruncation(t *testing.T) {
	cases := []struct {
		typ  IntType
		in   int64
		want int64
	}{
		{I8, 127, 127},
		{I8, 128, -128},
		{I8, 255, -1},
		{I8, 256, 0},
		{I16, 1 << 15, -(1 << 15)},
		{I32, 1<<31 - 1, 1<<31 - 1},
		{I32, 1 << 31, -(1 << 31)},
		{I64, math.MaxInt64, math.MaxInt64},
		{I1, 1, -1}, // i1 1 sign-extends to -1 in the 64-bit carrier
		{I1, 0, 0},
	}
	for _, c := range cases {
		got := ConstInt(c.typ, c.in).Val
		if got != c.want {
			t.Errorf("ConstInt(%s, %d).Val = %d, want %d", c.typ, c.in, got, c.want)
		}
	}
}

func TestConstIntIdempotent(t *testing.T) {
	// Property: normalizing twice equals normalizing once.
	f := func(v int64, bitsSel uint8) bool {
		bits := []int{1, 8, 16, 32, 64}[int(bitsSel)%5]
		typ := IntType{Bits: bits}
		once := ConstInt(typ, v).Val
		twice := ConstInt(typ, once).Val
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstFloat32Rounding(t *testing.T) {
	c := ConstFloat(F32, 0.1)
	if c.Val != float64(float32(0.1)) {
		t.Errorf("f32 constant not rounded to float32: %v", c.Val)
	}
	d := ConstFloat(F64, 0.1)
	if d.Val != 0.1 {
		t.Errorf("f64 constant altered: %v", d.Val)
	}
}

func TestSameConst(t *testing.T) {
	if !SameConst(ConstInt(I32, 5), ConstInt(I32, 5)) {
		t.Error("equal i32 constants must be SameConst")
	}
	if SameConst(ConstInt(I32, 5), ConstInt(I64, 5)) {
		t.Error("different widths must differ")
	}
	if SameConst(ConstInt(I32, 5), ConstFloat(F32, 5)) {
		t.Error("int vs float must differ")
	}
	if !SameConst(ConstFloat(F64, math.NaN()), ConstFloat(F64, math.NaN())) {
		t.Error("NaN constants compare equal for structural purposes")
	}
	if !SameConst(ConstNull(Ptr(I8)), ConstNull(Ptr(I8))) {
		t.Error("same-typed nulls are equal")
	}
	if SameConst(ConstNull(Ptr(I8)), ConstNull(Ptr(I32))) {
		t.Error("differently typed nulls differ")
	}
	a1 := &ArrayConst{Typ: ArrayOf(2, I32), Elems: []Const{ConstInt(I32, 1), ConstInt(I32, 2)}}
	a2 := &ArrayConst{Typ: ArrayOf(2, I32), Elems: []Const{ConstInt(I32, 1), ConstInt(I32, 2)}}
	a3 := &ArrayConst{Typ: ArrayOf(2, I32), Elems: []Const{ConstInt(I32, 1), ConstInt(I32, 3)}}
	if !SameConst(a1, a2) || SameConst(a1, a3) {
		t.Error("array constant comparison broken")
	}
	u := &UndefConst{Typ: I32}
	if SameConst(u, u) {
		t.Error("undef never equals anything, not even itself")
	}
}

func TestSameValue(t *testing.T) {
	p := &Param{Name: "x", Typ: I32}
	if !SameValue(p, p) {
		t.Error("identity must hold")
	}
	q := &Param{Name: "x", Typ: I32}
	if SameValue(p, q) {
		t.Error("distinct params with equal names are distinct values")
	}
	if !SameValue(ConstInt(I8, -1), ConstInt(I8, 255)) {
		t.Error("i8 -1 and 255 normalize to the same constant")
	}
}

func TestZeroValue(t *testing.T) {
	if c, ok := ZeroValue(I32).(*IntConst); !ok || c.Val != 0 {
		t.Error("zero of i32")
	}
	if c, ok := ZeroValue(F64).(*FloatConst); !ok || c.Val != 0 {
		t.Error("zero of f64")
	}
	if _, ok := ZeroValue(Ptr(I8)).(*NullConst); !ok {
		t.Error("zero of pointer is null")
	}
	if _, ok := ZeroValue(ArrayOf(3, I32)).(*ZeroConst); !ok {
		t.Error("zero of aggregate is zeroinitializer")
	}
}

func TestIdentSpellings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{ConstInt(I32, 42), "42"},
		{ConstInt(I32, -7), "-7"},
		{ConstFloat(F64, 1.5), "1.5"},
		{ConstFloat(F64, 2), "2.0"},
		{ConstNull(Ptr(I8)), "null"},
		{&UndefConst{Typ: I32}, "undef"},
		{&Param{Name: "x", Typ: I32}, "%x"},
		{&Global{Name: "g", Elem: I32}, "@g"},
	}
	for _, c := range cases {
		if got := c.v.Ident(); got != c.want {
			t.Errorf("Ident() = %q, want %q", got, c.want)
		}
	}
}

func TestIntValue(t *testing.T) {
	if v, ok := IntValue(ConstInt(I32, 9)); !ok || v != 9 {
		t.Error("IntValue on int constant")
	}
	if _, ok := IntValue(ConstFloat(F32, 9)); ok {
		t.Error("IntValue must reject floats")
	}
	if _, ok := IntValue(&Param{Name: "x", Typ: I32}); ok {
		t.Error("IntValue must reject non-constants")
	}
}
