package ir

import (
	"fmt"
	"strings"
)

// String returns the textual form of the module. The format round-trips
// through irparse.ParseModule.
func (m *Module) String() string {
	var sb strings.Builder
	for _, s := range m.Structs {
		fmt.Fprintf(&sb, "type %%%s = {", s.TypeName)
		for i, f := range s.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.String())
		}
		sb.WriteString("}\n")
	}
	if len(m.Structs) > 0 {
		sb.WriteByte('\n')
	}
	for _, g := range m.Globals {
		kw := "global"
		if g.ReadOnly {
			kw = "constant"
		}
		if g.Init != nil {
			fmt.Fprintf(&sb, "@%s = %s %s %s\n", g.Name, kw, g.Elem, g.Init.Ident())
		} else {
			fmt.Fprintf(&sb, "@%s = %s %s\n", g.Name, kw, g.Elem)
		}
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String returns the textual form of the function.
func (f *Func) String() string {
	var sb strings.Builder
	kw := "func"
	if f.IsDecl() {
		kw = "declare"
	}
	fmt.Fprintf(&sb, "%s %s @%s(", kw, f.Sig.Ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%s", p.Typ, p.Name)
	}
	sb.WriteString(")")
	if f.IsDecl() {
		if f.ReadOnly {
			sb.WriteString(" readonly")
		}
		sb.WriteString("\n")
		return sb.String()
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String returns the textual form of the instruction.
func (in *Instr) String() string {
	var sb strings.Builder
	if !IsVoid(in.Typ) && in.Name != "" {
		fmt.Fprintf(&sb, "%%%s = ", in.Name)
	}
	switch {
	case in.Op.IsBinary():
		fmt.Fprintf(&sb, "%s %s, %s", in.Op, typedIdent(in.Operands[0]), in.Operands[1].Ident())
	case in.Op == OpICmp || in.Op == OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Pred, typedIdent(in.Operands[0]), in.Operands[1].Ident())
	case in.Op == OpAlloca:
		fmt.Fprintf(&sb, "alloca %s, %s", in.Alloc, typedIdent(in.Operands[0]))
	case in.Op == OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Typ, typedIdent(in.Operands[0]))
	case in.Op == OpStore:
		fmt.Fprintf(&sb, "store %s, %s", typedIdent(in.Operands[0]), typedIdent(in.Operands[1]))
	case in.Op == OpGEP:
		fmt.Fprintf(&sb, "gep %s", typedIdent(in.Operands[0]))
		for _, idx := range in.Operands[1:] {
			fmt.Fprintf(&sb, ", %s", typedIdent(idx))
		}
	case in.Op == OpCall:
		fmt.Fprintf(&sb, "call %s @%s(", in.Typ, in.Callee.Name)
		for i, a := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(typedIdent(a))
		}
		sb.WriteString(")")
	case in.Op.IsCast():
		fmt.Fprintf(&sb, "%s %s to %s", in.Op, typedIdent(in.Operands[0]), in.Typ)
	case in.Op == OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Typ)
		for i := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %%%s]", in.Operands[i].Ident(), in.Blocks[i].Name)
		}
	case in.Op == OpSelect:
		fmt.Fprintf(&sb, "select %s, %s, %s",
			typedIdent(in.Operands[0]), typedIdent(in.Operands[1]), typedIdent(in.Operands[2]))
	case in.Op == OpBr:
		fmt.Fprintf(&sb, "br %%%s", in.Blocks[0].Name)
	case in.Op == OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, %%%s, %%%s", typedIdent(in.Operands[0]), in.Blocks[0].Name, in.Blocks[1].Name)
	case in.Op == OpRet:
		if len(in.Operands) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s", typedIdent(in.Operands[0]))
		}
	default:
		fmt.Fprintf(&sb, "<invalid op %d>", int(in.Op))
	}
	return sb.String()
}
