// Package reduce shrinks failing mini-C programs to minimal
// reproductions. It is deliberately syntax-light: candidates are
// produced by deleting lines (delta debugging over statements) and by
// textual expression simplifications, and every candidate is validated
// only through the caller's predicate — a candidate that no longer
// compiles, or fails differently, is simply rejected. This keeps the
// reducer correct for any predicate without needing a parser.
package reduce

import (
	"regexp"
	"strings"
)

// Predicate reports whether a candidate program still exhibits the
// failure being chased. It must be deterministic. Implementations
// typically compile the candidate and re-run the failing oracle check,
// accepting only the same failure class.
type Predicate func(src string) bool

// Minimize shrinks src while pred keeps holding, alternating
// statement-level delta debugging with expression-level
// simplifications until a fixpoint. The input itself must satisfy
// pred; otherwise it is returned unchanged.
func Minimize(src string, pred Predicate) string {
	if !pred(src) {
		return src
	}
	cur := src
	for {
		next := minimizeLines(cur, pred)
		next = simplifyExprs(next, pred)
		if next == cur {
			return cur
		}
		cur = next
	}
}

// Statements counts statement lines (semicolon-terminated) — the
// minimality metric used by tests and the CLI's reporting.
func Statements(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.HasSuffix(strings.TrimSpace(l), ";") {
			n++
		}
	}
	return n
}

// removable returns the indices of lines the reducer may try deleting:
// everything except structural lines containing braces (function
// headers, closers, struct definitions).
func removable(lines []string) []int {
	var idx []int
	for i, l := range lines {
		t := strings.TrimSpace(l)
		if t == "" || strings.ContainsAny(t, "{}") {
			continue
		}
		idx = append(idx, i)
	}
	return idx
}

func drop(lines []string, omit map[int]bool) string {
	out := make([]string, 0, len(lines))
	for i, l := range lines {
		if !omit[i] {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// minimizeLines is ddmin over deletable lines: try removing
// progressively smaller chunks, restarting whenever a removal
// succeeds, until no single line can be removed.
func minimizeLines(src string, pred Predicate) string {
	lines := strings.Split(src, "\n")
	n := 2
	for {
		cand := removable(lines)
		if len(cand) == 0 {
			break
		}
		if n > len(cand) {
			n = len(cand)
		}
		chunk := (len(cand) + n - 1) / n
		reduced := false
		for start := 0; start < len(cand); start += chunk {
			end := start + chunk
			if end > len(cand) {
				end = len(cand)
			}
			omit := map[int]bool{}
			for _, i := range cand[start:end] {
				omit[i] = true
			}
			candidate := drop(lines, omit)
			if pred(candidate) {
				lines = strings.Split(candidate, "\n")
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cand) {
				break
			}
			n *= 2
			if n > len(cand) {
				n = len(cand)
			}
		}
	}
	return strings.Join(lines, "\n")
}

var (
	// simpleOperand matches an identifier, an indexed access, a struct
	// field access, or an integer literal.
	operand = `(?:[A-Za-z_][A-Za-z0-9_]*(?:->[A-Za-z0-9_]+|\[[^\[\]]*\])?|\d+)`
	binOp   = regexp.MustCompile(`(` + operand + `)\s*(?:<<|>>|[-+*/%&|^])\s*(` + operand + `)`)
	bigLit  = regexp.MustCompile(`\b\d\d+\b`)
	index   = regexp.MustCompile(`\[[^\[\]]*\]`)
)

// simplifyExprs hill-climbs per-line textual simplifications: collapse
// a binary expression to one operand, shrink a multi-digit literal to
// a single digit, and zero an index expression. Each candidate edit is
// kept only if pred still holds.
func simplifyExprs(src string, pred Predicate) string {
	for {
		improved := false
		lines := strings.Split(src, "\n")
		for li, line := range lines {
			for _, cand := range lineCandidates(line) {
				if cand == line {
					continue
				}
				lines[li] = cand
				trial := strings.Join(lines, "\n")
				if pred(trial) {
					src = trial
					line = cand
					improved = true
				} else {
					lines[li] = line
				}
			}
		}
		if !improved {
			return src
		}
	}
}

// lineCandidates proposes simplified versions of one line, most
// aggressive first.
func lineCandidates(line string) []string {
	var out []string
	for _, m := range binOp.FindAllStringSubmatchIndex(line, -1) {
		// Replace the whole binary expression with each operand alone.
		lop, rop := line[m[2]:m[3]], line[m[4]:m[5]]
		out = append(out, line[:m[0]]+lop+line[m[1]:])
		out = append(out, line[:m[0]]+rop+line[m[1]:])
	}
	for _, m := range bigLit.FindAllStringIndex(line, -1) {
		out = append(out, line[:m[0]]+"1"+line[m[1]:])
	}
	for _, m := range index.FindAllStringIndex(line, -1) {
		if line[m[0]:m[1]] != "[0]" {
			out = append(out, line[:m[0]]+"[0]"+line[m[1]:])
		}
	}
	return out
}
