package reduce_test

import (
	"strings"
	"testing"

	"rolag/internal/cc"
	"rolag/internal/fuzzgen"
	"rolag/internal/interp"
	"rolag/internal/passes"
	"rolag/internal/reduce"
)

// divTraps is the reduction predicate for the planted bug: the program
// still compiles and @fz still traps with division by zero on the
// first harness seed.
func divTraps(src string) bool {
	m, err := cc.Compile(src, "red")
	if err != nil {
		return false
	}
	passes.Standard().Run(m)
	if m.Verify() != nil || m.FindFunc("fz") == nil {
		return false
	}
	h := &interp.Harness{MaxSteps: 1_000_000}
	_, rerr := h.Run(m, "fz", 1)
	tr, ok := interp.AsTrap(rerr)
	return ok && tr.Kind == interp.TrapDivByZero
}

// plantBug inserts a division by a folded zero into a generated
// program, burying one interesting statement in dozens of irrelevant
// ones — the scenario the reducer exists for.
func plantBug(seed int64) string {
	src := fuzzgen.Generate(seed, 60)
	return strings.Replace(src, "\tint acc = x;\n",
		"\tint acc = x;\n\tacc = acc + 7 / (x - x);\n", 1)
}

func TestMinimizeShrinksKnownBadProgram(t *testing.T) {
	src := plantBug(42)
	if !divTraps(src) {
		t.Fatalf("planted program does not trap:\n%s", src)
	}
	before := reduce.Statements(src)
	min := reduce.Minimize(src, divTraps)
	after := reduce.Statements(min)
	if !divTraps(min) {
		t.Fatalf("minimized program lost the failure:\n%s", min)
	}
	if after > 10 {
		t.Fatalf("minimized to %d statements (from %d), want <= 10:\n%s", after, before, min)
	}
	if after >= before {
		t.Fatalf("no shrinkage: %d -> %d", before, after)
	}
	t.Logf("shrank %d -> %d statements:\n%s", before, after, min)
}

func TestMinimizeRejectsNonFailingInput(t *testing.T) {
	src := fuzzgen.Generate(7, 30) // no planted bug
	if got := reduce.Minimize(src, divTraps); got != src {
		t.Fatal("input not satisfying the predicate must be returned unchanged")
	}
}

func TestMinimizeIsDeterministic(t *testing.T) {
	src := plantBug(9)
	a := reduce.Minimize(src, divTraps)
	b := reduce.Minimize(src, divTraps)
	if a != b {
		t.Fatal("two reductions of the same input differ")
	}
}

func TestStatements(t *testing.T) {
	if n := reduce.Statements("int g;\nint f() {\n\tint a = 1;\n\treturn a;\n}\n"); n != 3 {
		t.Fatalf("Statements = %d, want 3", n)
	}
}
