package passes_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/rolag"
	"rolag/internal/unroll"
)

// rollThenFlatten: unroll x8, RoLAG, then Flatten — the §V.C cleanup.
func rollThenFlatten(t *testing.T, src, fn string) (*ir.Module, *ir.Module, bool) {
	t.Helper()
	orig := lower(t, src)
	passes.Standard().Run(orig)
	work, err := cc.Compile(src, "w")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(work)
	for _, f := range work.Funcs {
		unroll.UnrollAll(f, 8)
	}
	passes.Standard().Run(work)
	rolag.RollModule(work, nil)
	passes.Standard().Run(work)
	flattened := false
	for _, f := range work.Funcs {
		if passes.Flatten(f) {
			flattened = true
		}
	}
	passes.Standard().Run(work)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	return orig, work, flattened
}

func selfLoops(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s == b {
				n++
			}
		}
	}
	return n
}

func TestFlattenRerolledLoop(t *testing.T) {
	src := `
void f(int *a, int *b) {
	for (int i = 0; i < 64; i++)
		a[i] = b[i] * 3 + 1;
}`
	orig, work, flattened := rollThenFlatten(t, src, "f")
	if !flattened {
		t.Fatalf("nest not flattened:\n%s", work.FindFunc("f"))
	}
	f := work.FindFunc("f")
	if selfLoops(f) != 1 {
		t.Errorf("want exactly one loop after flattening:\n%s", f)
	}
	if err := interp.CheckEquiv(orig, work, "f", 3, nil); err != nil {
		t.Errorf("equivalence: %v\n%s", err, f)
	}
	// The flattened function should be as small as the original rolled
	// source (the whole point of the paper's suggestion).
	no := orig.FindFunc("f").NumInstrs()
	nw := f.NumInstrs()
	if nw > no+2 {
		t.Errorf("flattened has %d instrs, original rolled %d", nw, no)
	}
}

func TestFlattenReductionLoop(t *testing.T) {
	src := `
int f(int *a) {
	int s = 0;
	for (int i = 0; i < 64; i++) s += a[i];
	return s;
}`
	orig, work, flattened := rollThenFlatten(t, src, "f")
	if !flattened {
		t.Fatalf("reduction nest not flattened:\n%s", work.FindFunc("f"))
	}
	if err := interp.CheckEquiv(orig, work, "f", 3, nil); err != nil {
		t.Errorf("equivalence: %v\n%s", err, work.FindFunc("f"))
	}
}

func TestFlattenRefusesUnsafeShapes(t *testing.T) {
	// The inner loop's index is used alone (not just in the combiner):
	// flattening must refuse.
	src := `
void g(int *a, int n) {
	for (int j = 0; j < n; j++) {
		a[0] = j; a[1] = j + 1; a[2] = j + 2; a[3] = j + 3;
		a[4] = j + 4; a[5] = j + 5; a[6] = j + 6; a[7] = j + 7;
	}
}`
	orig := lower(t, src)
	passes.Standard().Run(orig)
	work, err := cc.Compile(src, "w")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(work)
	rolag.RollModule(work, nil)
	passes.Standard().Run(work)
	for _, f := range work.Funcs {
		passes.Flatten(f)
	}
	passes.Standard().Run(work)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := interp.CheckEquiv(orig, work, "g", 3, nil); err != nil {
		t.Errorf("equivalence after (refused or applied) flatten: %v", err)
	}
}

func TestFlattenNoFalsePositives(t *testing.T) {
	// An ordinary nested loop (different trip counts, indices used
	// independently) must not be flattened.
	src := `
void f(int *a) {
	for (int i = 0; i < 8; i++)
		for (int j = 0; j < 4; j++)
			a[i * 4 + j] = i - j;
}`
	m := lower(t, src)
	passes.Standard().Run(m)
	orig := m.String()
	for _, f := range m.Funcs {
		if passes.Flatten(f) {
			t.Errorf("flattened a non-RoLAG nest")
		}
	}
	if m.String() != orig {
		t.Error("Flatten mutated IR it rejected")
	}
}
