package passes

import "rolag/internal/ir"

// FuncPass transforms one function and reports whether it changed
// anything.
type FuncPass struct {
	Name string
	Run  func(*ir.Func) bool
}

// Pipeline is an ordered list of function passes applied to every
// function of a module.
type Pipeline struct {
	Passes []FuncPass
	// Verify, if set, runs the IR verifier after each pass and panics on
	// failure; used in tests.
	Verify bool
}

// Standard returns the canonicalization pipeline run after the frontend
// and before loop transformations: promote memory to registers, fold
// constants, simplify, and clean up dead code.
func Standard() *Pipeline {
	return &Pipeline{Passes: []FuncPass{
		{Name: "mem2reg", Run: Mem2Reg},
		{Name: "constfold", Run: ConstFold},
		{Name: "simplify", Run: Simplify},
		{Name: "ifconvert", Run: IfConvert},
		{Name: "cse", Run: CSE},
		{Name: "licm", Run: LICM},
		{Name: "constfold", Run: ConstFold},
		{Name: "dce", Run: DCE},
		{Name: "simplify", Run: Simplify},
		{Name: "dce", Run: DCE},
	}}
}

// RunFunc applies the pipeline to one function, returning whether any
// pass changed it.
func (p *Pipeline) RunFunc(f *ir.Func) bool {
	changed := false
	for _, ps := range p.Passes {
		if ps.Run(f) {
			changed = true
		}
		if p.Verify {
			if err := f.Verify(); err != nil {
				panic("after pass " + ps.Name + ": " + err.Error())
			}
		}
	}
	return changed
}

// Run applies the pipeline to every function in the module.
func (p *Pipeline) Run(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if p.RunFunc(f) {
			changed = true
		}
	}
	return changed
}

// RunSandboxed applies the pipeline to every function under the
// fail-soft sandbox: each pass execution that panics, stalls past the
// budget, or breaks the verifier is rolled back and recorded on the
// sandbox's report, and the remaining passes keep running from the
// checkpoint. Pass and function order match Run exactly, so a run in
// which nothing fails produces a byte-identical module.
func (p *Pipeline) RunSandboxed(m *ir.Module, sb *Sandbox) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for _, ps := range p.Passes {
			if c, ok := sb.RunShadow(ps.Name, f, ps.Run); ok && c {
				changed = true
			}
		}
	}
	return changed
}
