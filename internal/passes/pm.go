package passes

import (
	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// FuncPass transforms one function and reports whether it changed
// anything.
type FuncPass struct {
	Name string
	Run  func(*ir.Func) bool
	// RunInfo, if set, is used instead of Run by pipelines that carry an
	// analysis cache: the pass may read cached analyses from the
	// FuncInfo and must report whether it changed the function (the
	// pipeline invalidates the cache on change). Passes running under
	// the fail-soft sandbox always use Run — the sandbox rewrites
	// instruction pointers every pass, so cached analyses cannot
	// survive it.
	RunInfo func(*ir.Func, *analysis.FuncInfo) bool
}

// Pipeline is an ordered list of function passes applied to every
// function of a module.
type Pipeline struct {
	Passes []FuncPass
	// Verify, if set, runs the IR verifier after each pass and panics on
	// failure; used in tests.
	Verify bool
}

// Standard returns the canonicalization pipeline run after the frontend
// and before loop transformations: promote memory to registers, fold
// constants, simplify, and clean up dead code.
func Standard() *Pipeline {
	return &Pipeline{Passes: []FuncPass{
		{Name: "mem2reg", Run: Mem2Reg},
		{Name: "constfold", Run: ConstFold},
		{Name: "simplify", Run: Simplify},
		{Name: "ifconvert", Run: IfConvert},
		{Name: "cse", Run: CSE, RunInfo: CSEInfo},
		{Name: "licm", Run: LICM},
		{Name: "constfold", Run: ConstFold},
		{Name: "dce", Run: DCE},
		{Name: "simplify", Run: Simplify},
		{Name: "dce", Run: DCE},
	}}
}

// RunFunc applies the pipeline to one function, returning whether any
// pass changed it. Analyses are cached across passes through a private
// analysis.Manager and invalidated whenever a pass reports a change.
func (p *Pipeline) RunFunc(f *ir.Func) bool {
	return p.runFunc(f, analysis.NewManager())
}

func (p *Pipeline) runFunc(f *ir.Func, am *analysis.Manager) bool {
	changed := false
	for _, ps := range p.Passes {
		var c bool
		if ps.RunInfo != nil {
			c = ps.RunInfo(f, am.Info(f))
		} else {
			c = ps.Run(f)
		}
		if c {
			changed = true
			am.Invalidate(f)
		}
		if p.Verify {
			if err := f.Verify(); err != nil {
				panic("after pass " + ps.Name + ": " + err.Error())
			}
		}
	}
	return changed
}

// Run applies the pipeline to every function in the module.
func (p *Pipeline) Run(m *ir.Module) bool {
	am := analysis.NewManager()
	changed := false
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if p.runFunc(f, am) {
			changed = true
		}
	}
	return changed
}

// RunSandboxed applies the pipeline to every function under the
// fail-soft sandbox: each pass execution that panics, stalls past the
// budget, or breaks the verifier is rolled back and recorded on the
// sandbox's report, and the remaining passes keep running from the
// checkpoint. Pass and function order match Run exactly, so a run in
// which nothing fails produces a byte-identical module.
func (p *Pipeline) RunSandboxed(m *ir.Module, sb *Sandbox) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if p.RunFuncSandboxed(f, sb) {
			changed = true
		}
	}
	return changed
}

// RunFuncSandboxed applies the pipeline to one function under the
// fail-soft sandbox. The parallel pipeline calls it with a private
// per-function sandbox; serial callers share one.
func (p *Pipeline) RunFuncSandboxed(f *ir.Func, sb *Sandbox) bool {
	changed := false
	for _, ps := range p.Passes {
		if c, ok := sb.RunShadow(ps.Name, f, ps.Run); ok && c {
			changed = true
		}
	}
	return changed
}
