package passes

import (
	"math"

	"rolag/internal/ir"
)

// ConstFold folds instructions whose operands are all constants and
// replaces their uses with the folded constant. Returns true if anything
// changed.
func ConstFold(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	changed := false
	for {
		progress := false
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				c := foldInstr(in)
				if c == nil {
					continue
				}
				f.ReplaceAllUses(in, c)
				b.Remove(in)
				progress = true
			}
		}
		if !progress {
			break
		}
		changed = true
	}
	return changed
}

// foldInstr returns the constant an instruction evaluates to, or nil.
func foldInstr(in *ir.Instr) ir.Const {
	switch {
	case in.Op.IsIntBinary():
		a, aok := in.Operand(0).(*ir.IntConst)
		b, bok := in.Operand(1).(*ir.IntConst)
		if !aok || !bok {
			return nil
		}
		v, ok := FoldIntBinary(in.Op, a.Val, b.Val, a.Typ.Bits)
		if !ok {
			return nil
		}
		return ir.ConstInt(a.Typ, v)
	case in.Op.IsFloatBinary():
		a, aok := in.Operand(0).(*ir.FloatConst)
		b, bok := in.Operand(1).(*ir.FloatConst)
		if !aok || !bok {
			return nil
		}
		return ir.ConstFloat(a.Typ, FoldFloatBinary(in.Op, a.Val, b.Val))
	case in.Op == ir.OpICmp:
		a, aok := in.Operand(0).(*ir.IntConst)
		b, bok := in.Operand(1).(*ir.IntConst)
		if !aok || !bok {
			return nil
		}
		return ir.ConstBool(FoldICmp(in.Pred, a.Val, b.Val))
	case in.Op == ir.OpFCmp:
		a, aok := in.Operand(0).(*ir.FloatConst)
		b, bok := in.Operand(1).(*ir.FloatConst)
		if !aok || !bok {
			return nil
		}
		return ir.ConstBool(FoldFCmp(in.Pred, a.Val, b.Val))
	case in.Op == ir.OpSelect:
		c, ok := in.Operand(0).(*ir.IntConst)
		if !ok {
			return nil
		}
		var arm ir.Value
		if c.Val != 0 {
			arm = in.Operand(1)
		} else {
			arm = in.Operand(2)
		}
		cv, ok := arm.(ir.Const)
		if !ok {
			return nil
		}
		return cv
	case in.Op.IsCast():
		return foldCast(in)
	}
	return nil
}

func foldCast(in *ir.Instr) ir.Const {
	switch op := in.Operand(0).(type) {
	case *ir.IntConst:
		switch in.Op {
		case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpBitcast:
			if t, ok := in.Typ.(ir.IntType); ok {
				v := op.Val
				if in.Op == ir.OpZExt {
					v = zext(v, op.Typ.Bits)
				}
				return ir.ConstInt(t, v)
			}
		case ir.OpSIToFP:
			if t, ok := in.Typ.(ir.FloatType); ok {
				return ir.ConstFloat(t, float64(op.Val))
			}
		}
	case *ir.FloatConst:
		switch in.Op {
		case ir.OpFPTrunc, ir.OpFPExt:
			if t, ok := in.Typ.(ir.FloatType); ok {
				return ir.ConstFloat(t, op.Val)
			}
		case ir.OpFPToSI:
			if t, ok := in.Typ.(ir.IntType); ok {
				return ir.ConstInt(t, int64(op.Val))
			}
		}
	}
	return nil
}

func zext(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	mask := int64(1)<<uint(bits) - 1
	return v & mask
}

// FoldIntBinary evaluates an integer binary op over 64-bit values,
// truncating/sign-extending to the given bit width. Division by zero is
// reported as not foldable.
func FoldIntBinary(op ir.Op, a, b int64, bits int) (int64, bool) {
	var v int64
	switch op {
	case ir.OpAdd:
		v = a + b
	case ir.OpSub:
		v = a - b
	case ir.OpMul:
		v = a * b
	case ir.OpSDiv:
		if b == 0 {
			return 0, false
		}
		v = a / b
	case ir.OpUDiv:
		if b == 0 {
			return 0, false
		}
		v = int64(uint64(zext(a, bits)) / uint64(zext(b, bits)))
	case ir.OpSRem:
		if b == 0 {
			return 0, false
		}
		v = a % b
	case ir.OpURem:
		if b == 0 {
			return 0, false
		}
		v = int64(uint64(zext(a, bits)) % uint64(zext(b, bits)))
	case ir.OpAnd:
		v = a & b
	case ir.OpOr:
		v = a | b
	case ir.OpXor:
		v = a ^ b
	case ir.OpShl:
		v = a << uint(b&63)
	case ir.OpLShr:
		v = int64(uint64(zext(a, bits)) >> uint(b&63))
	case ir.OpAShr:
		v = a >> uint(b&63)
	default:
		return 0, false
	}
	// Normalize to the declared width.
	if bits < 64 {
		shift := uint(64 - bits)
		v = v << shift >> shift
	}
	return v, true
}

// FoldFloatBinary evaluates a floating binary op.
func FoldFloatBinary(op ir.Op, a, b float64) float64 {
	switch op {
	case ir.OpFAdd:
		return a + b
	case ir.OpFSub:
		return a - b
	case ir.OpFMul:
		return a * b
	case ir.OpFDiv:
		return a / b
	}
	return math.NaN()
}

// FoldICmp evaluates an integer comparison on sign-extended values.
func FoldICmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	case ir.PredULT:
		return uint64(a) < uint64(b)
	case ir.PredULE:
		return uint64(a) <= uint64(b)
	case ir.PredUGT:
		return uint64(a) > uint64(b)
	case ir.PredUGE:
		return uint64(a) >= uint64(b)
	}
	return false
}

// FoldFCmp evaluates an ordered floating comparison.
func FoldFCmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredOEQ:
		return a == b
	case ir.PredONE:
		return a != b
	case ir.PredOLT:
		return a < b
	case ir.PredOLE:
		return a <= b
	case ir.PredOGT:
		return a > b
	case ir.PredOGE:
		return a >= b
	}
	return false
}
