package passes_test

import (
	"strings"
	"testing"
	"testing/quick"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/workloads/angha"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("pre verify: %v", err)
	}
	return m
}

func TestMem2RegPromotesScalars(t *testing.T) {
	m := lower(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	return s;
}`)
	f := m.FindFunc("f")
	if !passes.Mem2Reg(f) {
		t.Fatal("Mem2Reg reported no change")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				t.Errorf("alloca %%%s survived promotion", in.Name)
			}
		}
	}
	// The loop must carry phis now.
	hasPhi := false
	for _, b := range f.Blocks {
		if len(b.Phis()) > 0 {
			hasPhi = true
		}
	}
	if !hasPhi {
		t.Error("no phis inserted")
	}
}

func TestMem2RegSkipsEscapingAlloca(t *testing.T) {
	m := lower(t, `
extern void leak(int *p);
int f() {
	int x = 1;
	leak(&x);
	return x;
}`)
	f := m.FindFunc("f")
	passes.Mem2Reg(f)
	found := false
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpAlloca {
			found = true
		}
	}
	if !found {
		t.Error("escaping alloca must not be promoted")
	}
}

func TestMem2RegDiamond(t *testing.T) {
	m := lower(t, `
int f(int a) {
	int x;
	if (a > 0) x = 10; else x = 20;
	return x;
}`)
	f := m.FindFunc("f")
	passes.Mem2Reg(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	in, _ := interp.New(m)
	if v, _ := in.Call("f", interp.IntVal(1)); v.I != 10 {
		t.Errorf("f(1) = %d", v.I)
	}
	if v, _ := in.Call("f", interp.IntVal(-1)); v.I != 20 {
		t.Errorf("f(-1) = %d", v.I)
	}
}

func TestFoldIntBinaryMatchesGo(t *testing.T) {
	type opcase struct {
		op ir.Op
		f  func(a, b int32) int64
	}
	cases := []opcase{
		{ir.OpAdd, func(a, b int32) int64 { return int64(a + b) }},
		{ir.OpSub, func(a, b int32) int64 { return int64(a - b) }},
		{ir.OpMul, func(a, b int32) int64 { return int64(a * b) }},
		{ir.OpAnd, func(a, b int32) int64 { return int64(a & b) }},
		{ir.OpOr, func(a, b int32) int64 { return int64(a | b) }},
		{ir.OpXor, func(a, b int32) int64 { return int64(a ^ b) }},
	}
	for _, c := range cases {
		c := c
		prop := func(a, b int32) bool {
			got, ok := passes.FoldIntBinary(c.op, int64(a), int64(b), 32)
			return ok && got == c.f(a, b)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", c.op, err)
		}
	}
	// Division semantics and the zero guard.
	if _, ok := passes.FoldIntBinary(ir.OpSDiv, 5, 0, 32); ok {
		t.Error("division by zero must not fold")
	}
	if v, ok := passes.FoldIntBinary(ir.OpSDiv, -7, 2, 32); !ok || v != -3 {
		t.Errorf("sdiv(-7,2) = %d (truncating division)", v)
	}
	if v, ok := passes.FoldIntBinary(ir.OpSRem, -7, 2, 32); !ok || v != -1 {
		t.Errorf("srem(-7,2) = %d", v)
	}
	if v, ok := passes.FoldIntBinary(ir.OpUDiv, -1, 2, 32); !ok || v != 0x7FFFFFFF {
		t.Errorf("udiv(0xFFFFFFFF,2) = %x", v)
	}
	if v, ok := passes.FoldIntBinary(ir.OpLShr, -1, 1, 32); !ok || v != 0x7FFFFFFF {
		t.Errorf("lshr i32 -1, 1 = %x", v)
	}
	if v, ok := passes.FoldIntBinary(ir.OpAShr, -8, 1, 32); !ok || v != -4 {
		t.Errorf("ashr -8, 1 = %d", v)
	}
}

func TestFoldICmpPredicates(t *testing.T) {
	f := func(a, b int64) bool {
		return passes.FoldICmp(ir.PredSLT, a, b) == (a < b) &&
			passes.FoldICmp(ir.PredULT, a, b) == (uint64(a) < uint64(b)) &&
			passes.FoldICmp(ir.PredEQ, a, b) == (a == b) &&
			passes.FoldICmp(ir.PredSGE, a, b) == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstFoldCollapsesChains(t *testing.T) {
	m := lower(t, `int f() { return (3 + 4) * (10 - 2) / 2; }`)
	f := m.FindFunc("f")
	passes.Mem2Reg(f)
	passes.ConstFold(f)
	passes.DCE(f)
	// Expect just "ret 28".
	if n := f.NumInstrs(); n != 1 {
		t.Errorf("after folding, %d instructions remain:\n%s", n, f)
	}
	ret := f.Entry().Terminator()
	if v, ok := ir.IntValue(ret.Operand(0)); !ok || v != 28 {
		t.Errorf("folded to %s, want 28", ret.Operand(0).Ident())
	}
}

func TestSimplifyIdentities(t *testing.T) {
	m := lower(t, `
int f(int x) {
	int a = x + 0;
	int b = a * 1;
	int c = b - 0;
	int d = c / 1;
	int e = d | 0;
	return e ^ 0;
}`)
	f := m.FindFunc("f")
	passes.Standard().RunFunc(f)
	// Everything should cancel: ret %x.
	if n := f.NumInstrs(); n != 1 {
		t.Errorf("identities not simplified, %d instrs:\n%s", n, f)
	}
}

func TestSimplifyBranchFold(t *testing.T) {
	m := lower(t, `
int f() {
	if (1 > 2) return 111;
	return 222;
}`)
	f := m.FindFunc("f")
	passes.Standard().RunFunc(f)
	if len(f.Blocks) != 1 {
		t.Errorf("constant branch not folded, %d blocks remain:\n%s", len(f.Blocks), f)
	}
	in, _ := interp.New(m)
	if v, _ := in.Call("f"); v.I != 222 {
		t.Errorf("f() = %d", v.I)
	}
}

func TestSimplifyReassociation(t *testing.T) {
	// add(add(x,2),3) -> add(x,5); sub(x, 4) -> add(x, -4).
	m := lower(t, `int f(int x) { return x + 2 + 3; }
int g(int x) { return x - 4 - 6; }`)
	passes.Standard().Run(m)
	text := m.String()
	if !strings.Contains(text, ", 5") {
		t.Errorf("add chain not reassociated:\n%s", text)
	}
	if !strings.Contains(text, ", -10") {
		t.Errorf("sub chain not canonicalized:\n%s", text)
	}
	in, _ := interp.New(m)
	if v, _ := in.Call("g", interp.IntVal(100)); v.I != 90 {
		t.Errorf("g(100) = %d", v.I)
	}
}

func TestCSEUnifiesAddressing(t *testing.T) {
	m := lower(t, `
int f(int *a, int i) {
	return a[i] * a[i] + a[i];
}`)
	f := m.FindFunc("f")
	passes.Standard().RunFunc(f)
	geps := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGEP {
				geps++
			}
		}
	}
	if geps != 1 {
		t.Errorf("CSE left %d geps, want 1:\n%s", geps, f)
	}
	// Loads are not CSE'd (no memory dependence tracking): 3 remain.
}

func TestCSERespectsDominance(t *testing.T) {
	// The same expression in two sibling branches must NOT be unified
	// (neither dominates the other).
	m := lower(t, `
int f(int a, int b) {
	int r;
	if (a > 0) r = a * b; else r = a * b + 1;
	return r;
}`)
	f := m.FindFunc("f")
	passes.Standard().RunFunc(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	in, _ := interp.New(m)
	if v, _ := in.Call("f", interp.IntVal(2), interp.IntVal(3)); v.I != 6 {
		t.Errorf("f(2,3) = %d", v.I)
	}
	if v, _ := in.Call("f", interp.IntVal(-2), interp.IntVal(3)); v.I != -5 {
		t.Errorf("f(-2,3) = %d", v.I)
	}
}

func TestLICMHoistsInvariantAddress(t *testing.T) {
	m := lower(t, `
int g[16];
void f(int n) {
	for (int i = 0; i < n; i++)
		g[0] = g[0] + i;
}`)
	passes.Standard().Run(m)
	f := m.FindFunc("f")
	// The gep for g[0] must have been hoisted out of the loop block.
	for _, b := range f.Blocks {
		isLoop := false
		for _, s := range b.Succs() {
			if s == b {
				isLoop = true
			}
		}
		if !isLoop {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpGEP {
				t.Errorf("invariant gep %%%s left inside the loop:\n%s", in.Name, f)
			}
		}
	}
}

func TestLICMKeepsDivisionInLoop(t *testing.T) {
	// A division by a loop-invariant value must not be hoisted past the
	// guard (it could trap on the zero-trip path).
	m := lower(t, `
int f(int n, int d) {
	int s = 0;
	for (int i = 0; i < n; i++) s += 100 / d;
	return s;
}`)
	passes.Standard().Run(m)
	in, _ := interp.New(m)
	// n = 0 with d = 0 must not fault.
	v, err := in.Call("f", interp.IntVal(0), interp.IntVal(0))
	if err != nil {
		t.Fatalf("zero-trip loop trapped: %v", err)
	}
	if v.I != 0 {
		t.Errorf("f(0,0) = %d", v.I)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := lower(t, `
extern void out(int x);
int f(int a) {
	int unused = a * 99;
	out(a);
	return a;
}`)
	f := m.FindFunc("f")
	passes.Standard().RunFunc(f)
	calls := 0
	muls := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				calls++
			}
			if in.Op == ir.OpMul {
				muls++
			}
		}
	}
	if calls != 1 {
		t.Error("DCE removed a call with side effects")
	}
	if muls != 0 {
		t.Error("DCE kept a dead multiplication")
	}
}

// TestPipelinePreservesBehaviour is the pipeline's property test: for a
// seeded corpus, the optimized module must behave exactly like the
// unoptimized lowering.
func TestPipelinePreservesBehaviour(t *testing.T) {
	funcs := angha.Generate(150, 99)
	h := &interp.Harness{}
	for _, fn := range funcs {
		raw, err := cc.Compile(fn.Src, fn.Name)
		if err != nil {
			t.Fatalf("%s: %v", fn.Name, err)
		}
		opt, err := cc.Compile(fn.Src, fn.Name)
		if err != nil {
			t.Fatal(err)
		}
		passes.Standard().Run(opt)
		if err := opt.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", fn.Name, err)
		}
		for _, f := range opt.Funcs {
			if f.IsDecl() {
				continue
			}
			a, err := h.Run(raw, f.Name, 5)
			if err != nil {
				t.Fatalf("%s/%s raw: %v", fn.Name, f.Name, err)
			}
			b, err := h.Run(opt, f.Name, 5)
			if err != nil {
				t.Fatalf("%s/%s opt: %v", fn.Name, f.Name, err)
			}
			if err := interp.Equivalent(a, b); err != nil {
				t.Errorf("%s/%s (%s): pipeline changed behaviour: %v", fn.Name, f.Name, fn.Family, err)
			}
		}
	}
}

func TestPipelineIdempotent(t *testing.T) {
	// Running the pipeline twice must converge: the second run performs
	// no structural change.
	src := `
int f(int *a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += a[i] * 2 + 0;
	return s;
}`
	m := lower(t, src)
	passes.Standard().Run(m)
	first := m.String()
	passes.Standard().Run(m)
	second := m.String()
	if first != second {
		t.Errorf("pipeline not idempotent:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
