package passes

import (
	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// Flatten collapses the two-level loop nest RoLAG leaves behind when it
// rerolls a partially unrolled loop — an outer loop stepping by F whose
// body is exactly an inner loop of trip count F — into a single loop
// stepping by one. The paper suggests precisely this cleanup ("running a
// loop flattening pass after RoLAG or simply making it loop aware",
// §V.C); with it, RoLAG's output for perfectly rerollable loops matches
// the baseline's.
//
// The match is deliberately strict. Shape:
//
//	outerPre: ...
//	B:    %i   = phi [init, %outerPre], [%ivn, %E]     (+ paired phis)
//	      br %L
//	L:    %k   = phi i64 [0, %B], [%knext, %L]         (+ paired phis)
//	      %t   = trunc %k to T
//	      %idx = add %i, %t          ; the only uses of %i and %k
//	      ...body using %idx...
//	      %knext = add %k, 1
//	      %c  = icmp slt %knext, F
//	      condbr %c, %L, %E
//	E:    %ivn = add %i, F
//	      %c2 = icmp pred %ivn, %bound
//	      condbr %c2, %B, %exit
//
// becomes a single loop over %idx = init..bound stepping 1.
func Flatten(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	changed := false
	for _, l := range analysis.FindLoops(f) {
		if flattenOne(f, l) {
			changed = true
		}
	}
	if changed {
		Simplify(f)
		DCE(f)
	}
	return changed
}

func flattenOne(f *ir.Func, inner *analysis.Loop) bool {
	// Inner loop: 0..F step 1, constant trip count.
	if inner.Step != 1 {
		return false
	}
	if c, ok := ir.IntValue(inner.Init); !ok || c != 0 {
		return false
	}
	trip, ok := inner.TripCount()
	if !ok || trip < 2 {
		return false
	}
	B, L, E := inner.Preheader, inner.Header, inner.Exit

	// E must be exactly {ivn = add iv_out, F; cmp; condbr B, exit}.
	if len(E.Instrs) != 3 {
		return false
	}
	ivn, cmp2, term := E.Instrs[0], E.Instrs[1], E.Instrs[2]
	if ivn.Op != ir.OpAdd || cmp2.Op != ir.OpICmp || term.Op != ir.OpCondBr {
		return false
	}
	var outerExit *ir.Block
	backOnTrue := false
	switch {
	case term.Blocks[0] == B:
		outerExit, backOnTrue = term.Blocks[1], true
	case term.Blocks[1] == B:
		outerExit, backOnTrue = term.Blocks[0], false
	default:
		return false
	}
	if !backOnTrue {
		return false // canonical rotated loops branch back on true
	}
	step, ok := ir.IntValue(ivn.Operand(1))
	if !ok || step != trip {
		return false
	}
	ivOut, ok := ivn.Operand(0).(*ir.Instr)
	if !ok || ivOut.Op != ir.OpPhi || ivOut.Parent != B {
		return false
	}
	if cmp2.Operand(0) != ir.Value(ivn) {
		return false
	}
	bound := cmp2.Operand(1)
	if bv, isInstr := bound.(*ir.Instr); isInstr && (bv.Parent == B || bv.Parent == L || bv.Parent == E) {
		return false // bound must be outer-loop invariant
	}

	// B must contain only phis and the branch to L, with a unique outer
	// predecessor.
	var outerPre *ir.Block
	for _, p := range f.Preds(B) {
		if p == E {
			continue
		}
		if outerPre != nil {
			return false
		}
		outerPre = p
	}
	if outerPre == nil {
		return false
	}
	phisB := B.Phis()
	if len(B.Instrs) != len(phisB)+1 || B.Terminator().Op != ir.OpBr {
		return false
	}
	ivOutInit, ok1 := ivOut.PhiIncoming(outerPre)
	ivOutBack, ok2 := ivOut.PhiIncoming(E)
	if !ok1 || !ok2 || ivOutBack != ir.Value(ivn) {
		return false
	}

	users := f.Users()

	// The only uses of iv_out may be the combiner add (in L, possibly
	// via a cast) and the latch ivn.
	var combiner *ir.Instr
	var ivOutCast *ir.Instr
	for _, u := range users[ivOut] {
		switch {
		case u == ivn:
		case u.Parent == L && u.Op == ir.OpAdd:
			if combiner != nil {
				return false
			}
			combiner = u
		case u.Parent == L && u.Op.IsCast() && ivOutCast == nil:
			ivOutCast = u
		default:
			return false
		}
	}
	if ivOutCast != nil {
		// iv_out reaches the combiner through one cast.
		cu := users[ivOutCast]
		if combiner != nil || len(cu) != 1 || cu[0].Op != ir.OpAdd || cu[0].Parent != L {
			return false
		}
		combiner = cu[0]
	}
	if combiner == nil {
		return false
	}

	// The only uses of iv_in: the latch add, the latch cmp, and a single
	// cast chain that ends at the combiner.
	for _, u := range users[inner.IV] {
		switch {
		case u == inner.Next, u == inner.Cmp:
		case u.Parent == L && u.Op.IsCast():
			cu := users[u]
			if len(cu) != 1 || cu[0] != combiner {
				return false
			}
		case u == combiner:
		default:
			return false
		}
	}
	for _, u := range users[inner.Next] {
		if u != inner.Cmp && u != inner.IV {
			return false
		}
	}
	// The combiner's type must match iv_out's (the outer index domain).
	if !combiner.Typ.Equal(ivOut.Typ) || !bound.Type().Equal(ivOut.Typ) {
		return false
	}

	// Pair the remaining B phis with L phis: P_in's B-incoming must be
	// P_out, P_out's E-incoming must be P_in's backedge value, and P_out
	// must have no other users.
	type pair struct{ pout, pin *ir.Instr }
	var pairs []pair
	for _, pout := range phisB {
		if pout == ivOut {
			continue
		}
		vE, ok := pout.PhiIncoming(E)
		if !ok {
			return false
		}
		var pin *ir.Instr
		for _, u := range users[pout] {
			if u.Op == ir.OpPhi && u.Parent == L {
				if pin != nil {
					return false
				}
				pin = u
			} else {
				return false
			}
		}
		if pin == nil {
			return false
		}
		fromB, ok1 := pin.PhiIncoming(B)
		back, ok2 := pin.PhiIncoming(L)
		if !ok1 || !ok2 || fromB != ir.Value(pout) || back != vE {
			return false
		}
		pairs = append(pairs, pair{pout: pout, pin: pin})
	}
	// Every non-IV phi of L must be paired.
	for _, pin := range L.Phis() {
		if pin == inner.IV {
			continue
		}
		found := false
		for _, pr := range pairs {
			if pr.pin == pin {
				found = true
			}
		}
		if !found {
			return false
		}
	}

	// --- Rewrite ---
	// New induction: idx = phi [ivOutInit, B], [idxNext, L].
	idx := &ir.Instr{Op: ir.OpPhi, Typ: ivOut.Typ, Name: f.UniqueName("flat.idx")}
	L.InsertAt(0, idx)
	ir.AddIncoming(idx, ivOutInit, B)
	f.ReplaceAllUses(combiner, idx)

	// New latch: idxNext = add idx, 1; cmp2' = icmp pred idxNext, bound.
	idxNext := &ir.Instr{
		Op: ir.OpAdd, Typ: ivOut.Typ, Name: f.UniqueName("flat.next"),
		Operands: []ir.Value{idx, ir.ConstInt(ivOut.Typ.(ir.IntType), 1)},
	}
	newCmp := &ir.Instr{
		Op: ir.OpICmp, Typ: ir.I1, Pred: cmp2.Pred, Name: f.UniqueName("flat.cmp"),
		Operands: []ir.Value{idxNext, bound},
	}
	ir.AddIncoming(idx, idxNext, L)
	lterm := L.Terminator()
	ci := lterm.Index()
	L.InsertAt(ci, idxNext)
	L.InsertAt(ci+1, newCmp)
	lterm.SetOperand(0, newCmp)
	// The loop now exits straight to E, whose latch collapses to a
	// branch into the old outer exit.
	lterm.Blocks = []*ir.Block{L, E}

	// Rewire the paired phis into single-loop form.
	for _, pr := range pairs {
		for i, pb := range pr.pin.Blocks {
			if pb == B {
				pr.pin.Operands[i] = mustIncoming(pr.pout, outerPre)
			}
		}
	}

	// Drop the old machinery, users first so no dangling operands
	// remain: combiner (uses already replaced), then its cast feeders,
	// then the inner latch and induction phi.
	L.Remove(combiner)
	removeCastChainUses(f, L, combiner)
	if ivOutCast != nil {
		L.Remove(ivOutCast)
	}
	L.Remove(inner.Cmp)
	L.Remove(inner.Next)
	L.Remove(inner.IV)
	E.Remove(ivn)
	E.Remove(cmp2)
	E.Remove(term)
	brExit := &ir.Instr{Op: ir.OpBr, Typ: ir.Void, Blocks: []*ir.Block{outerExit}}
	E.Append(brExit)
	for _, pr := range pairs {
		B.Remove(pr.pout)
	}
	B.Remove(ivOut)
	return true
}

func mustIncoming(phi *ir.Instr, b *ir.Block) ir.Value {
	v, ok := phi.PhiIncoming(b)
	if !ok {
		panic("flatten: missing phi incoming")
	}
	return v
}

// removeCastChainUses removes now-dead casts in L that fed the combiner.
func removeCastChainUses(f *ir.Func, L *ir.Block, combiner *ir.Instr) {
	for _, op := range combiner.Operands {
		if c, ok := op.(*ir.Instr); ok && c.Parent == L && c.Op.IsCast() {
			// Only remove if dead now.
			if len(f.Users()[c]) == 0 {
				L.Remove(c)
			}
		}
	}
}
