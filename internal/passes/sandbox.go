package passes

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rolag/internal/faultpoint"
	"rolag/internal/ir"
	"rolag/internal/obs"
)

// SkipReason classifies why the fail-soft sandbox rolled back or
// refused one pass execution.
type SkipReason string

const (
	// SkipPanic: the pass panicked; the function was rolled back.
	SkipPanic SkipReason = "panic"
	// SkipTimeout: the pass exceeded its wall-clock budget.
	SkipTimeout SkipReason = "timeout"
	// SkipVerify: the pass produced IR the verifier rejects.
	SkipVerify SkipReason = "verify"
	// SkipError: the pass reported a failure (injected faults).
	SkipError SkipReason = "error"
	// SkipBreaker: the circuit breaker refused the pass without
	// attempting it.
	SkipBreaker SkipReason = "breaker"
)

// Skip records one pass execution that did not take effect. The
// function it names was left exactly as the previous pass produced it.
type Skip struct {
	// Pass is the pass name ("licm", and the pseudo-passes "rolag",
	// "reroll", "unroll", "flatten").
	Pass string
	// Func is the function the pass was running on.
	Func string
	// Reason is why the execution was discarded.
	Reason SkipReason
	// Detail is a human-readable explanation.
	Detail string
}

func (s Skip) String() string {
	return fmt.Sprintf("%s@%s: %s (%s)", s.Pass, s.Func, s.Reason, s.Detail)
}

// Degraded is the fail-soft report: which pass executions were skipped
// and why. A nil *Degraded means the compilation ran clean; a non-nil
// one means the output is correct but potentially larger than a fully
// healthy pipeline would have produced.
type Degraded struct {
	Skips []Skip
}

// Passes returns the sorted set of distinct skipped pass names.
func (d *Degraded) Passes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range d.Skips {
		if !seen[s.Pass] {
			seen[s.Pass] = true
			out = append(out, s.Pass)
		}
	}
	sort.Strings(out)
	return out
}

func (d *Degraded) String() string {
	var sb strings.Builder
	for i, s := range d.Skips {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Guard is consulted around every sandboxed pass execution. The service
// engine implements it with per-pass circuit breakers; a nil Guard
// allows everything.
type Guard interface {
	// Allow reports whether the pass may be attempted. A false return
	// makes the sandbox skip the pass outright (SkipBreaker).
	Allow(pass string) bool
	// Report feeds back the outcome of an attempted execution (true =
	// committed, false = rolled back). It is not called for executions
	// Allow refused.
	Report(pass string, ok bool)
}

// DefaultPassBudget is the per-pass wall-clock budget when
// Sandbox.Budget is zero. It is deliberately generous: on the paper's
// workloads every pass finishes in microseconds, so the budget exists
// only to cut wedged passes loose, not to police slow ones.
const DefaultPassBudget = 10 * time.Second

// Sandbox runs passes under checkpoint/rollback. Every execution is
// isolated from the committed function state: module-pure passes run
// against a shadow copy (ir.ShadowFunc) in a helper goroutine so a
// wedged pass can be abandoned without racing the pipeline, and
// module-appending passes (RoLAG's codegen creates constant-table
// globals) run in place behind a block snapshot and a globals
// high-water mark. In both modes the IR verifier is the commit gate:
// panic, budget overrun, or a verifier complaint discards the execution
// and the pipeline continues from the checkpoint with the pass skipped,
// recorded in the Report.
//
// A Sandbox is not safe for concurrent use; the service engine creates
// one per compilation job.
type Sandbox struct {
	// Budget is the per-pass wall-clock budget (0 = DefaultPassBudget).
	Budget time.Duration
	// Guard, when set, is consulted before and notified after every
	// execution (the service's circuit breakers).
	Guard Guard
	// Trace, when active and tracing is enabled, records every
	// sandboxed pass execution as a "pass:<name>" span on the request's
	// trace (rolagd's /debug/trace). The zero value records nothing.
	Trace obs.TraceContext

	report Degraded
}

func (s *Sandbox) budget() time.Duration {
	if s.Budget > 0 {
		return s.Budget
	}
	return DefaultPassBudget
}

// Report returns the accumulated degradation report, or nil if every
// pass took effect.
func (s *Sandbox) Report() *Degraded {
	if len(s.report.Skips) == 0 {
		return nil
	}
	return &s.report
}

// Absorb appends other's degradation report to s's and clears other.
// The parallel pipeline gives every concurrently-optimized function a
// private sandbox (a Sandbox is not safe for concurrent use) and then
// absorbs them into the job's sandbox in function order, so the
// aggregate report is deterministic and matches what a serial run over
// the same outcomes would have recorded.
func (s *Sandbox) Absorb(other *Sandbox) {
	s.report.Skips = append(s.report.Skips, other.report.Skips...)
	other.report.Skips = nil
}

// RunShadow executes a module-pure pass against a shadow copy of f and
// commits the shadow only if the pass returns within budget, does not
// panic, and leaves the function verifier-clean. It returns (changed,
// ok): ok reports that the execution was committed (so captured
// closure state may be read), changed is the pass's own report. On a
// timeout the helper goroutine is abandoned; it keeps mutating only the
// private shadow and exits when the pass returns.
func (s *Sandbox) RunShadow(pass string, f *ir.Func, run func(*ir.Func) bool) (changed, ok bool) {
	if f.IsDecl() {
		return false, true
	}
	if !s.allow(pass, f) {
		return false, false
	}
	span := obs.Now()
	defer obs.EndSpan(s.Trace, "pass:"+pass, span, f.Name)
	shadow := ir.ShadowFunc(f)
	type result struct {
		changed bool
		skip    *Skip
	}
	done := make(chan result, 1)
	go func() {
		var r result
		r.changed, r.skip = s.exec(pass, shadow, run)
		done <- r
	}()
	timer := time.NewTimer(s.budget())
	defer timer.Stop()
	select {
	case r := <-done:
		if r.skip != nil {
			s.fail(pass, *r.skip)
			return false, false
		}
		if err := shadow.Verify(); err != nil {
			s.fail(pass, Skip{Pass: pass, Func: f.Name, Reason: SkipVerify, Detail: err.Error()})
			return false, false
		}
		s.ok(pass)
		f.AdoptBody(shadow)
		return r.changed, true
	case <-timer.C:
		s.fail(pass, Skip{
			Pass: pass, Func: f.Name, Reason: SkipTimeout,
			Detail: fmt.Sprintf("exceeded %v budget; pass abandoned", s.budget()),
		})
		return false, false
	}
}

// RunInPlace executes a pass that may append globals to f's module
// (RoLAG). It snapshots the body and marks the module's globals, runs
// the pass in the calling goroutine with panic recovery, applies the
// budget after the fact (a stalled pass delays this one compilation but
// is still rolled back), verifies, and on any failure restores the
// snapshot and the globals mark. Global NAMES generated by a committed
// execution are identical to the fail-hard path because the pass runs
// against the real module. Returns (changed, ok) as RunShadow.
func (s *Sandbox) RunInPlace(pass string, f *ir.Func, run func(*ir.Func) bool) (changed, ok bool) {
	return s.RunInPlaceIn(pass, f, f.Parent, run)
}

// RunInPlaceIn is RunInPlace with the module that receives appended
// globals made explicit: the parallel pipeline stages each function's
// globals in a private sink module (see rolag.RollFuncInto), so the
// rollback mark must be taken on the sink rather than on f.Parent.
func (s *Sandbox) RunInPlaceIn(pass string, f *ir.Func, sink *ir.Module, run func(*ir.Func) bool) (changed, ok bool) {
	if f.IsDecl() {
		return false, true
	}
	if !s.allow(pass, f) {
		return false, false
	}
	span := obs.Now()
	defer obs.EndSpan(s.Trace, "pass:"+pass, span, f.Name)
	snapshot := ir.ShadowFunc(f)
	gmark := sink.MarkGlobals()
	start := time.Now()
	changed, skip := s.exec(pass, f, run)
	if skip == nil {
		if elapsed := time.Since(start); elapsed > s.budget() {
			skip = &Skip{
				Pass: pass, Func: f.Name, Reason: SkipTimeout,
				Detail: fmt.Sprintf("ran %v, budget %v", elapsed.Round(time.Millisecond), s.budget()),
			}
		}
	}
	if skip == nil {
		if err := f.Verify(); err != nil {
			skip = &Skip{Pass: pass, Func: f.Name, Reason: SkipVerify, Detail: err.Error()}
		}
	}
	if skip != nil {
		f.AdoptBody(snapshot)
		sink.ResetGlobals(gmark)
		s.fail(pass, *skip)
		return false, false
	}
	s.ok(pass)
	return changed, true
}

// exec runs the pass body with panic recovery and the pass-site fault
// point. target is the function the pass actually mutates (the shadow
// in RunShadow, f itself in RunInPlace).
func (s *Sandbox) exec(pass string, target *ir.Func, run func(*ir.Func) bool) (changed bool, skip *Skip) {
	defer func() {
		if r := recover(); r != nil {
			changed = false
			skip = &Skip{Pass: pass, Func: target.Name, Reason: SkipPanic, Detail: fmt.Sprint(r)}
		}
	}()
	switch faultpoint.Fire("pass:"+pass,
		faultpoint.KindPanic, faultpoint.KindStall, faultpoint.KindError, faultpoint.KindCorrupt) {
	case faultpoint.KindPanic:
		panic("faultpoint: injected panic at pass:" + pass)
	case faultpoint.KindError:
		return false, &Skip{Pass: pass, Func: target.Name, Reason: SkipError, Detail: "injected pass error"}
	case faultpoint.KindCorrupt:
		changed = run(target)
		corruptBody(target)
		return changed, nil
	}
	// KindStall already slept inside Fire; the pass still runs so an
	// absorbed stall (shorter than the budget) degrades nothing.
	return run(target), nil
}

// corruptBody damages the function in a way the verifier is guaranteed
// to reject: it drops the last instruction of the final block, leaving
// the block unterminated.
func corruptBody(f *ir.Func) {
	if len(f.Blocks) == 0 {
		return
	}
	b := f.Blocks[len(f.Blocks)-1]
	if n := len(b.Instrs); n > 0 {
		b.Instrs = b.Instrs[:n-1]
	}
}

func (s *Sandbox) allow(pass string, f *ir.Func) bool {
	if s.Guard == nil || s.Guard.Allow(pass) {
		return true
	}
	s.report.Skips = append(s.report.Skips, Skip{
		Pass: pass, Func: f.Name, Reason: SkipBreaker, Detail: "circuit breaker open",
	})
	return false
}

func (s *Sandbox) fail(pass string, sk Skip) {
	s.report.Skips = append(s.report.Skips, sk)
	if s.Guard != nil {
		s.Guard.Report(pass, false)
	}
}

func (s *Sandbox) ok(pass string) {
	if s.Guard != nil {
		s.Guard.Report(pass, true)
	}
}
