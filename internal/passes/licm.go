package passes

import (
	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// LICM hoists loop-invariant pure instructions (arithmetic, geps, casts,
// comparisons, selects) out of canonical single-block loops into their
// preheaders. Loads and stores are never moved — that would require
// alias analysis — but address computations, which is what the rerolling
// techniques trip over, are. Returns true if anything moved.
func LICM(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	changed := false
	for _, l := range analysis.FindLoops(f) {
		if hoistLoop(f, l) {
			changed = true
		}
	}
	return changed
}

func hoistLoop(f *ir.Func, l *analysis.Loop) bool {
	b := l.Header
	invariant := func(v ir.Value, hoisted map[*ir.Instr]bool) bool {
		in, ok := v.(*ir.Instr)
		if !ok {
			return true // constants, params, globals
		}
		if in.Parent != b {
			return true
		}
		return hoisted[in]
	}
	pure := func(in *ir.Instr) bool {
		switch {
		case in.Op.IsBinary(), in.Op.IsCast(),
			in.Op == ir.OpGEP, in.Op == ir.OpICmp, in.Op == ir.OpFCmp,
			in.Op == ir.OpSelect:
			return true
		}
		return false
	}
	hoisted := make(map[*ir.Instr]bool)
	changed := false
	for {
		progress := false
		for _, in := range b.Instrs {
			if hoisted[in] || !pure(in) {
				continue
			}
			// Division can trap; hoisting it past the loop guard would
			// execute it on the zero-trip path.
			if in.Op == ir.OpSDiv || in.Op == ir.OpUDiv || in.Op == ir.OpSRem || in.Op == ir.OpURem {
				continue
			}
			ok := true
			for _, op := range in.Operands {
				if !invariant(op, hoisted) {
					ok = false
					break
				}
			}
			if ok {
				hoisted[in] = true
				progress = true
			}
		}
		if !progress {
			break
		}
		changed = true
	}
	if !changed {
		return false
	}
	// Move the hoisted instructions (in their original order) to the end
	// of the preheader, before its terminator.
	pre := l.Preheader
	term := pre.Terminator()
	ti := term.Index()
	var keep []*ir.Instr
	for _, in := range b.Instrs {
		if hoisted[in] {
			in.Parent = pre
			pre.InsertAt(ti, in)
			ti++
		} else {
			keep = append(keep, in)
		}
	}
	b.Instrs = keep
	return true
}
