package passes_test

import (
	"strings"
	"testing"
	"time"

	"rolag/internal/ir"
	"rolag/internal/passes"
)

const sandboxSrc = `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i * 3 + 1;
	return s;
}`

func lowerF(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	m := lower(t, sandboxSrc)
	return m, m.FindFunc("f")
}

func TestSandboxPanicRollsBack(t *testing.T) {
	_, f := lowerF(t)
	before := f.String()
	sb := &passes.Sandbox{}
	changed, ok := sb.RunShadow("boom", f, func(sf *ir.Func) bool {
		sf.Blocks = nil // half-done mutation the rollback must discard
		panic("kaboom")
	})
	if changed || ok {
		t.Fatalf("panicking pass committed: changed=%v ok=%v", changed, ok)
	}
	if got := f.String(); got != before {
		t.Fatalf("function mutated after rollback:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	rep := sb.Report()
	if rep == nil || len(rep.Skips) != 1 {
		t.Fatalf("want one skip, got %v", rep)
	}
	sk := rep.Skips[0]
	if sk.Pass != "boom" || sk.Func != "f" || sk.Reason != passes.SkipPanic {
		t.Fatalf("bad skip record: %+v", sk)
	}
	if !strings.Contains(sk.Detail, "kaboom") {
		t.Fatalf("skip detail lost the panic value: %q", sk.Detail)
	}
}

func TestSandboxTimeoutAbandons(t *testing.T) {
	_, f := lowerF(t)
	before := f.String()
	sb := &passes.Sandbox{Budget: 20 * time.Millisecond}
	release := make(chan struct{})
	_, ok := sb.RunShadow("slow", f, func(sf *ir.Func) bool {
		<-release // wedged until after the sandbox gave up
		sf.Blocks = nil
		return true
	})
	close(release)
	if ok {
		t.Fatal("wedged pass committed")
	}
	if got := f.String(); got != before {
		t.Fatalf("function mutated by abandoned pass:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	rep := sb.Report()
	if rep == nil || rep.Skips[0].Reason != passes.SkipTimeout {
		t.Fatalf("want timeout skip, got %v", rep)
	}
}

func TestSandboxVerifyFailureRollsBack(t *testing.T) {
	_, f := lowerF(t)
	before := f.String()
	sb := &passes.Sandbox{}
	_, ok := sb.RunShadow("corrupter", f, func(sf *ir.Func) bool {
		// Drop the entry block's terminator: the verifier must refuse it.
		b := sf.Blocks[0]
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
		return true
	})
	if ok {
		t.Fatal("verifier-rejected pass committed")
	}
	if got := f.String(); got != before {
		t.Fatal("function kept verifier-rejected mutation")
	}
	rep := sb.Report()
	if rep == nil || rep.Skips[0].Reason != passes.SkipVerify {
		t.Fatalf("want verify skip, got %v", rep)
	}
}

func TestSandboxCommitMatchesDirectRun(t *testing.T) {
	_, sandboxed := lowerF(t)
	_, direct := lowerF(t)

	sb := &passes.Sandbox{}
	changed, ok := sb.RunShadow("mem2reg", sandboxed, passes.Mem2Reg)
	if !ok || !changed {
		t.Fatalf("healthy pass did not commit: changed=%v ok=%v", changed, ok)
	}
	if sb.Report() != nil {
		t.Fatalf("clean run produced a report: %v", sb.Report())
	}
	if !passes.Mem2Reg(direct) {
		t.Fatal("direct Mem2Reg reported no change")
	}
	if sandboxed.String() != direct.String() {
		t.Fatalf("sandboxed commit diverged from direct run:\nsandboxed:\n%s\ndirect:\n%s",
			sandboxed, direct)
	}
}

// vetoGuard refuses one pass and records Report calls.
type vetoGuard struct {
	veto    string
	reports []string
}

func (g *vetoGuard) Allow(pass string) bool { return pass != g.veto }
func (g *vetoGuard) Report(pass string, ok bool) {
	g.reports = append(g.reports, pass)
}

func TestSandboxGuardVeto(t *testing.T) {
	_, f := lowerF(t)
	g := &vetoGuard{veto: "licm"}
	sb := &passes.Sandbox{Guard: g}
	ran := false
	_, ok := sb.RunShadow("licm", f, func(*ir.Func) bool { ran = true; return true })
	if ok || ran {
		t.Fatalf("vetoed pass ran: ok=%v ran=%v", ok, ran)
	}
	rep := sb.Report()
	if rep == nil || rep.Skips[0].Reason != passes.SkipBreaker {
		t.Fatalf("want breaker skip, got %v", rep)
	}
	if len(g.reports) != 0 {
		t.Fatalf("Report called for a refused execution: %v", g.reports)
	}
	// A permitted pass still reports its outcome.
	if _, ok := sb.RunShadow("mem2reg", f, passes.Mem2Reg); !ok {
		t.Fatal("permitted pass did not commit")
	}
	if len(g.reports) != 1 || g.reports[0] != "mem2reg" {
		t.Fatalf("want one report for mem2reg, got %v", g.reports)
	}
}

func TestRunInPlaceRollsBackGlobals(t *testing.T) {
	m, f := lowerF(t)
	before := f.String()
	nGlobals := len(m.Globals)
	sb := &passes.Sandbox{}
	_, ok := sb.RunInPlace("rolag", f, func(tf *ir.Func) bool {
		m.Globals = append(m.Globals, &ir.Global{Name: "junk", Elem: ir.I32, Parent: m})
		panic("codegen died")
	})
	if ok {
		t.Fatal("panicking in-place pass committed")
	}
	if len(m.Globals) != nGlobals {
		t.Fatalf("appended globals survived rollback: %d -> %d", nGlobals, len(m.Globals))
	}
	if got := f.String(); got != before {
		t.Fatal("function body not restored by in-place rollback")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("module broken after rollback: %v", err)
	}
}

func TestRunInPlaceBudgetOverrun(t *testing.T) {
	_, f := lowerF(t)
	before := f.String()
	sb := &passes.Sandbox{Budget: time.Millisecond}
	_, ok := sb.RunInPlace("rolag", f, func(tf *ir.Func) bool {
		time.Sleep(20 * time.Millisecond)
		return true
	})
	if ok {
		t.Fatal("over-budget in-place pass committed")
	}
	rep := sb.Report()
	if rep == nil || rep.Skips[0].Reason != passes.SkipTimeout {
		t.Fatalf("want timeout skip, got %v", rep)
	}
	if f.String() != before {
		t.Fatal("function mutated by rolled-back in-place pass")
	}
}

func TestDegradedPassesSortedDistinct(t *testing.T) {
	d := &passes.Degraded{Skips: []passes.Skip{
		{Pass: "rolag", Func: "a"},
		{Pass: "licm", Func: "b"},
		{Pass: "rolag", Func: "c"},
	}}
	got := d.Passes()
	if len(got) != 2 || got[0] != "licm" || got[1] != "rolag" {
		t.Fatalf("Passes() = %v, want [licm rolag]", got)
	}
}
