package passes_test

import (
	"testing"

	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func runIfConvert(t *testing.T, src string) *ir.Module {
	t.Helper()
	m := lower(t, src)
	passes.Standard().Run(m)
	for _, f := range m.Funcs {
		passes.IfConvert(f)
		passes.Simplify(f)
		passes.DCE(f)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	return m
}

func countBlocksAndSelects(f *ir.Func) (blocks, selects int) {
	blocks = len(f.Blocks)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSelect {
				selects++
			}
		}
	}
	return
}

func TestIfConvertTriangle(t *testing.T) {
	m := runIfConvert(t, `
int f(int a, int m) {
	if (a > m) m = a;
	return m;
}`)
	f := m.FindFunc("f")
	blocks, selects := countBlocksAndSelects(f)
	if blocks != 1 || selects != 1 {
		t.Errorf("blocks=%d selects=%d, want 1/1:\n%s", blocks, selects, f)
	}
	in, _ := interp.New(m)
	if v, _ := in.Call("f", interp.IntVal(5), interp.IntVal(3)); v.I != 5 {
		t.Errorf("max(5,3) = %d", v.I)
	}
	if v, _ := in.Call("f", interp.IntVal(2), interp.IntVal(9)); v.I != 9 {
		t.Errorf("max(2,9) = %d", v.I)
	}
}

func TestIfConvertDiamond(t *testing.T) {
	m := runIfConvert(t, `
int f(int a, int x, int y) {
	int r;
	if (a > 0) r = x * 2; else r = y * 3;
	return r;
}`)
	f := m.FindFunc("f")
	blocks, selects := countBlocksAndSelects(f)
	if blocks != 1 || selects != 1 {
		t.Errorf("blocks=%d selects=%d, want 1/1:\n%s", blocks, selects, f)
	}
	in, _ := interp.New(m)
	if v, _ := in.Call("f", interp.IntVal(1), interp.IntVal(10), interp.IntVal(10)); v.I != 20 {
		t.Errorf("then arm = %d", v.I)
	}
	if v, _ := in.Call("f", interp.IntVal(-1), interp.IntVal(10), interp.IntVal(10)); v.I != 30 {
		t.Errorf("else arm = %d", v.I)
	}
}

func TestIfConvertRefusesStores(t *testing.T) {
	m := runIfConvert(t, `
void f(int *a, int i) {
	if (a[i] > 0) a[i] = 0;
}`)
	f := m.FindFunc("f")
	if len(f.Blocks) == 1 {
		t.Errorf("a store must not be speculated:\n%s", f)
	}
}

func TestIfConvertRefusesDivision(t *testing.T) {
	m := runIfConvert(t, `
int f(int a, int d) {
	int r = 0;
	if (d != 0) r = a / d;
	return r;
}`)
	f := m.FindFunc("f")
	if len(f.Blocks) == 1 {
		t.Errorf("division must not be speculated past its guard:\n%s", f)
	}
	in, _ := interp.New(m)
	if _, err := in.Call("f", interp.IntVal(5), interp.IntVal(0)); err != nil {
		t.Errorf("guarded division trapped: %v", err)
	}
}

func TestIfConvertMakesLoopSingleBlock(t *testing.T) {
	// The s314 max-reduction shape: after if-conversion the loop body is
	// one block, which the rolling techniques require.
	m := runIfConvert(t, `
float f(float *a) {
	float m = a[0];
	for (int i = 0; i < 64; i++) {
		if (a[i] > m) m = a[i];
	}
	return m;
}`)
	f := m.FindFunc("f")
	selfLoop := 0
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s == b {
				selfLoop++
			}
		}
	}
	if selfLoop != 1 {
		t.Errorf("expected a single-block loop after if-conversion:\n%s", f)
	}
	in, _ := interp.New(m)
	base, aerr := in.Alloc(256, 4)
	if aerr != nil {
		t.Fatal(aerr)
	}
	for i := int64(0); i < 64; i++ {
		val := float64((i*37)%19) - 9
		if err := in.StoreTyped(base+i*4, ir.F32, interp.FloatVal(val)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := in.Call("f", interp.IntVal(base))
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 9 {
		t.Errorf("max = %v, want 9", v.F)
	}
}
