package passes

import "rolag/internal/ir"

// DCE removes instructions whose results are unused and that have no
// side effects, iterating to a fixed point. It returns true if anything
// was removed.
func DCE(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	removedAny := false
	for {
		users := f.Users()
		removed := false
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.IsTerminator() || in.MayWriteMemory() {
					continue
				}
				if in.Op == ir.OpAlloca {
					// Dead allocas (no users) can go too.
					if len(users[in]) == 0 {
						b.Remove(in)
						removed = true
					}
					continue
				}
				if len(users[in]) == 0 {
					b.Remove(in)
					removed = true
				}
			}
		}
		if !removed {
			break
		}
		removedAny = true
	}
	return removedAny
}
