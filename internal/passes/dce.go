package passes

import "rolag/internal/ir"

// DCE removes instructions whose results are unused and that have no
// side effects. A single use-count map is built up front and
// decremented as instructions die, driving a worklist to the unique
// liveness fixpoint — the def-use chains are never recomputed, unlike a
// sweep-until-stable loop. Returns true if anything was removed.
func DCE(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	// Distinct-user counts, matching ir.Func.Users semantics: an
	// instruction using v through several operand slots counts as one
	// user of v. Operand lists are tiny, so a quadratic scan beats a
	// dedup map.
	useCount := make(map[ir.Value]int, f.NumInstrs())
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ops := in.Operands
		count:
			for i, op := range ops {
				if op == nil {
					continue
				}
				for _, prev := range ops[:i] {
					if prev == op {
						continue count
					}
				}
				useCount[op]++
			}
		}
	}

	removable := func(in *ir.Instr) bool {
		return !in.IsTerminator() && !in.MayWriteMemory()
	}

	var work []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if removable(in) && useCount[in] == 0 {
				work = append(work, in)
			}
		}
	}
	removed := make(map[*ir.Instr]bool)
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		if removed[in] || useCount[in] != 0 {
			continue
		}
		removed[in] = true
		ops := in.Operands
	release:
		for i, op := range ops {
			if op == nil {
				continue
			}
			for _, prev := range ops[:i] {
				if prev == op {
					continue release
				}
			}
			useCount[op]--
			if d, ok := op.(*ir.Instr); ok && useCount[op] == 0 && removable(d) && !removed[d] {
				work = append(work, d)
			}
		}
	}
	if len(removed) == 0 {
		return false
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if removed[in] {
				in.Parent = nil
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return true
}
