package passes

import "rolag/internal/ir"

// IfConvert converts triangle- and diamond-shaped conditionals whose
// arms are cheap, side-effect-free straight-line code into select
// instructions (the speculation simplifycfg performs in LLVM's -Os
// pipeline). Shapes handled:
//
//	A: condbr c, T, J        A: condbr c, T, F
//	T: ...pure...; br J      T: ...pure...; br J
//	J: phi [x, T], [y, A]    F: ...pure...; br J
//	                         J: phi [x, T], [y, F]
//
// The arm instructions are hoisted into A, the phis become selects, and
// the blocks merge. This is what turns `m = a > m ? a : m` and
// `if (a > m) m = a;` loop bodies into single blocks that the rolling
// techniques can work on (the paper's s3113/s314 discussion, §V.C).
func IfConvert(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	// Unify duplicate address computations first: an arm's reload is
	// only recognizably safe when its pointer is the same SSA value as
	// the dominating access.
	CSE(f)
	changed := false
	for {
		if !ifConvertOne(f) {
			break
		}
		changed = true
		// Merging may expose further opportunities (and fresh CSE
		// candidates across the merged blocks).
		Simplify(f)
		CSE(f)
	}
	return changed
}

// speculationBudget bounds how many instructions may be executed
// unconditionally per arm.
const speculationBudget = 8

func ifConvertOne(f *ir.Func) bool {
	for _, a := range f.Blocks {
		term := a.Terminator()
		if term == nil || term.Op != ir.OpCondBr {
			continue
		}
		tb, fb := term.Blocks[0], term.Blocks[1]
		if tb == fb || tb == a || fb == a {
			continue
		}
		// Identify the join block for triangle or diamond shapes.
		var join *ir.Block
		var arms []*ir.Block
		switch {
		case armTargets(f, tb) == fb:
			join, arms = fb, []*ir.Block{tb}
		case armTargets(f, fb) == tb:
			join, arms = tb, []*ir.Block{fb}
		case armTargets(f, tb) != nil && armTargets(f, tb) == armTargets(f, fb):
			join, arms = armTargets(f, tb), []*ir.Block{tb, fb}
		default:
			continue
		}
		if join == a {
			continue
		}
		ok := true
		for _, arm := range arms {
			if !speculatable(a, arm) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// The join must have exactly the two expected predecessors.
		preds := f.Preds(join)
		if len(preds) != 2 {
			continue
		}
		expectA, expectB := a, arms[0]
		if len(arms) == 2 {
			expectA, expectB = arms[0], arms[1]
		}
		if !(preds[0] == expectA && preds[1] == expectB) && !(preds[0] == expectB && preds[1] == expectA) {
			continue
		}

		// Perform the conversion: hoist arm instructions into a,
		// rewrite join phis as selects in a, branch a -> join.
		cond := term.Operand(0)
		a.Remove(term)
		for _, arm := range arms {
			at := arm.Terminator()
			arm.Remove(at)
			for _, in := range arm.Instrs {
				in.Parent = a
				a.Instrs = append(a.Instrs, in)
			}
			arm.Instrs = nil
		}
		// Each phi in join becomes a select on cond.
		phis := join.Phis()
		for _, phi := range phis {
			var tv, fv ir.Value
			for i, pb := range phi.Blocks {
				v := phi.Operands[i]
				switch pb {
				case tb:
					tv = v
				case fb:
					fv = v
				case a:
					// Triangle: this value flows around the arm on the
					// fall-through edge.
					if join == fb {
						fv = v
					} else {
						tv = v
					}
				}
			}
			if tv == nil || fv == nil {
				continue
			}
			sel := &ir.Instr{
				Op:       ir.OpSelect,
				Typ:      phi.Typ,
				Name:     f.UniqueName(phi.Name),
				Operands: []ir.Value{cond, tv, fv},
				Parent:   a,
			}
			a.Instrs = append(a.Instrs, sel)
			f.ReplaceAllUses(phi, sel)
			join.Remove(phi)
		}
		br := &ir.Instr{Op: ir.OpBr, Typ: ir.Void, Blocks: []*ir.Block{join}}
		a.Append(br)
		for _, arm := range arms {
			f.RemoveBlock(arm)
		}
		return true
	}
	return false
}

// armTargets returns the unique successor of a candidate arm block if the
// block is a plain straight-line arm (single unconditional exit, no
// phis), else nil.
func armTargets(f *ir.Func, b *ir.Block) *ir.Block {
	t := b.Terminator()
	if t == nil || t.Op != ir.OpBr {
		return nil
	}
	if len(b.Phis()) > 0 {
		return nil
	}
	// The arm must have exactly one predecessor (the branch block).
	if len(f.Preds(b)) != 1 {
		return nil
	}
	return t.Blocks[0]
}

// speculatable reports whether every instruction of the arm may execute
// unconditionally: pure, cheap, and no traps. A load is speculatable
// when the branch block already accesses the identical address
// unconditionally (it is known dereferenceable, and loads are
// idempotent).
func speculatable(branch *ir.Block, b *ir.Block) bool {
	n := 0
	for _, in := range b.Instrs {
		if in.IsTerminator() {
			continue
		}
		switch {
		case in.Op.IsBinary():
			// Division can trap.
			if in.Op == ir.OpSDiv || in.Op == ir.OpUDiv || in.Op == ir.OpSRem || in.Op == ir.OpURem {
				return false
			}
		case in.Op.IsCast(), in.Op == ir.OpGEP, in.Op == ir.OpICmp,
			in.Op == ir.OpFCmp, in.Op == ir.OpSelect:
		case in.Op == ir.OpLoad:
			if !derefInBlock(branch, in.Operand(0)) {
				return false
			}
		default:
			return false
		}
		n++
		if n > speculationBudget {
			return false
		}
	}
	return true
}

// derefInBlock reports whether ptr is loaded from or stored to in b.
func derefInBlock(b *ir.Block, ptr ir.Value) bool {
	for _, in := range b.Instrs {
		if in.Op == ir.OpLoad && in.Operand(0) == ptr {
			return true
		}
		if in.Op == ir.OpStore && in.Operand(1) == ptr {
			return true
		}
	}
	return false
}
