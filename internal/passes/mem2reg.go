// Package passes implements the scalar optimization pipeline that
// canonicalizes frontend output before loop transformations run:
// promotion of allocas to SSA registers, constant folding, dead-code
// elimination and CFG/instruction simplification, sequenced by a small
// pass manager.
package passes

import (
	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// Mem2Reg promotes promotable allocas (scalar, address never escapes,
// only loaded and stored) to SSA values, inserting phi nodes at iterated
// dominance frontiers — the standard SSA construction algorithm. It
// returns true if anything changed.
func Mem2Reg(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	allocas := promotableAllocas(f)
	if len(allocas) == 0 {
		return false
	}
	di := analysis.ComputeDom(f)

	// Insert phis: for each alloca, at the iterated dominance frontier
	// of its defining (storing) blocks.
	phiFor := make(map[*ir.Instr]*ir.Instr) // phi -> alloca
	phiAt := make(map[*ir.Block]map[*ir.Instr]*ir.Instr)
	for _, a := range allocas {
		defBlocks := make(map[*ir.Block]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Operand(1) == a {
					defBlocks[b] = true
				}
			}
		}
		// Seed the worklist in block order, not map order: phi creation
		// order feeds UniqueName, so a map-ordered seed would make the
		// output names differ run to run.
		work := make([]*ir.Block, 0, len(defBlocks))
		for _, b := range f.Blocks {
			if defBlocks[b] {
				work = append(work, b)
			}
		}
		placed := make(map[*ir.Block]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, df := range di.Frontier[b] {
				if placed[df] {
					continue
				}
				placed[df] = true
				phi := &ir.Instr{
					Op:   ir.OpPhi,
					Typ:  a.Alloc,
					Name: f.UniqueName(a.Name),
				}
				df.InsertAt(0, phi)
				phiFor[phi] = a
				if phiAt[df] == nil {
					phiAt[df] = make(map[*ir.Instr]*ir.Instr)
				}
				phiAt[df][a] = phi
				if !defBlocks[df] {
					defBlocks[df] = true
					work = append(work, df)
				}
			}
		}
	}

	// Rename along the dominator tree.
	stacks := make(map[*ir.Instr][]ir.Value, len(allocas))
	isAlloca := make(map[*ir.Instr]bool, len(allocas))
	for _, a := range allocas {
		isAlloca[a] = true
	}
	cur := func(a *ir.Instr) ir.Value {
		s := stacks[a]
		if len(s) == 0 {
			return &ir.UndefConst{Typ: a.Alloc}
		}
		return s[len(s)-1]
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var pushed []*ir.Instr
		var dead []*ir.Instr
		replace := make(map[ir.Value]ir.Value)
		for _, in := range b.Instrs {
			// Apply pending replacements within this block first.
			for i, op := range in.Operands {
				if r, ok := replace[op]; ok {
					in.Operands[i] = r
				}
			}
			switch in.Op {
			case ir.OpPhi:
				if a, ok := phiFor[in]; ok {
					stacks[a] = append(stacks[a], in)
					pushed = append(pushed, a)
				}
			case ir.OpLoad:
				if a, ok := in.Operand(0).(*ir.Instr); ok && isAlloca[a] {
					replace[in] = cur(a)
					dead = append(dead, in)
				}
			case ir.OpStore:
				if a, ok := in.Operand(1).(*ir.Instr); ok && isAlloca[a] {
					stacks[a] = append(stacks[a], in.Operand(0))
					pushed = append(pushed, a)
					dead = append(dead, in)
				}
			}
		}
		// Propagate replacements to the rest of the function (uses
		// dominated by this block get fixed when their block is
		// renamed; uses in this block already handled). Simplest:
		// record replacements globally and apply at the end. Here we
		// apply to all successor phi edges and then recurse.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				if a, ok := phiFor[phi]; ok {
					ir.AddIncoming(phi, cur(a), b)
				}
			}
		}
		for _, c := range di.Children[b] {
			rename(c)
		}
		// Replace remaining uses of loads we removed (uses in dominated
		// blocks were handled because we pushed values before
		// recursing; uses elsewhere are illegal SSA). Do a full-function
		// replace for safety.
		for old, nv := range replace {
			f.ReplaceAllUses(old, nv)
		}
		for _, in := range dead {
			b.Remove(in)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			a := pushed[i]
			stacks[a] = stacks[a][:len(stacks[a])-1]
		}
	}
	rename(f.Entry())

	for _, a := range allocas {
		a.Parent.Remove(a)
	}
	prunePhis(f, phiFor)
	return true
}

// prunePhis removes phis that are trivially redundant: all incoming
// values identical (or self-references), repeatedly.
func prunePhis(f *ir.Func, inserted map[*ir.Instr]*ir.Instr) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, phi := range b.Phis() {
				if _, ours := inserted[phi]; !ours {
					continue
				}
				var uniq ir.Value
				trivial := true
				for _, v := range phi.Operands {
					if v == phi {
						continue
					}
					if uniq == nil {
						uniq = v
					} else if uniq != v {
						trivial = false
						break
					}
				}
				if !trivial || uniq == nil {
					continue
				}
				f.ReplaceAllUses(phi, uniq)
				b.Remove(phi)
				delete(inserted, phi)
				changed = true
			}
		}
	}
}

// promotableAllocas returns the allocas of f that can be promoted: single
// static element of scalar type, used only as the pointer of loads and
// stores.
func promotableAllocas(f *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	users := f.Users()
	for _, in := range f.Entry().Instrs {
		if in.Op != ir.OpAlloca {
			continue
		}
		if c, ok := ir.IntValue(in.Operand(0)); !ok || c != 1 {
			continue
		}
		switch in.Alloc.(type) {
		case ir.IntType, ir.FloatType, ir.PointerType:
		default:
			continue
		}
		ok := true
		for _, u := range users[in] {
			switch {
			case u.Op == ir.OpLoad && u.Operand(0) == in:
			case u.Op == ir.OpStore && u.Operand(1) == in && u.Operand(0) != in:
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, in)
		}
	}
	return out
}
