package passes

import "rolag/internal/ir"

// Simplify performs local instruction and CFG cleanups:
//
//   - algebraic identities (x+0, x*1, x*0, x-0, x&x, x|x, gep p,0 → p);
//   - condbr on a constant becomes br;
//   - single-incoming phis are replaced by their value;
//   - straight-line block pairs are merged;
//   - unreachable blocks are deleted.
//
// Returns true if anything changed.
func Simplify(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	changed := false
	for {
		progress := false
		if simplifyInstrs(f) {
			progress = true
		}
		if foldBranches(f) {
			progress = true
		}
		if removeUnreachable(f) {
			progress = true
		}
		if mergeBlocks(f) {
			progress = true
		}
		if !progress {
			break
		}
		changed = true
	}
	return changed
}

func simplifyInstrs(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if reassociate(in) {
				changed = true
			}
			v := simplifyValue(in)
			if v == nil {
				continue
			}
			f.ReplaceAllUses(in, v)
			b.Remove(in)
			changed = true
		}
	}
	return changed
}

// reassociate canonicalizes constant chains in place:
//
//	sub x, c            -> add x, -c
//	add (add x, c1), c2 -> add x, c1+c2
//	gep (gep p, c1), c2 -> gep p, c1+c2   (single-index geps)
//
// which turns the chained induction-variable and pointer increments
// produced by unrolling into the base+k form the rerolling analyses
// expect.
func reassociate(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpSub:
		c, ok := in.Operand(1).(*ir.IntConst)
		if !ok {
			return false
		}
		in.Op = ir.OpAdd
		in.SetOperand(1, ir.ConstInt(c.Typ, -c.Val))
		return true
	case ir.OpAdd:
		c2, ok := in.Operand(1).(*ir.IntConst)
		if !ok {
			return false
		}
		inner, ok := in.Operand(0).(*ir.Instr)
		if !ok || inner.Op != ir.OpAdd {
			return false
		}
		c1, ok := inner.Operand(1).(*ir.IntConst)
		if !ok {
			return false
		}
		in.SetOperand(0, inner.Operand(0))
		in.SetOperand(1, ir.ConstInt(c1.Typ, c1.Val+c2.Val))
		return true
	case ir.OpGEP:
		if in.NumOperands() != 2 {
			return false
		}
		c2, ok := in.Operand(1).(*ir.IntConst)
		if !ok {
			return false
		}
		inner, ok := in.Operand(0).(*ir.Instr)
		if !ok || inner.Op != ir.OpGEP || inner.NumOperands() != 2 {
			return false
		}
		c1, ok := inner.Operand(1).(*ir.IntConst)
		if !ok || !inner.Typ.Equal(in.Operand(0).Type()) {
			return false
		}
		// Both geps step over the same element type (inner's result is
		// in's base), so indices add directly.
		in.SetOperand(0, inner.Operand(0))
		in.SetOperand(1, ir.ConstInt(c2.Typ, c1.Val+c2.Val))
		return true
	}
	return false
}

// simplifyValue returns a value equivalent to in if in is redundant, or
// nil.
func simplifyValue(in *ir.Instr) ir.Value {
	isZero := func(v ir.Value) bool {
		c, ok := ir.IntValue(v)
		return ok && c == 0
	}
	isOne := func(v ir.Value) bool {
		c, ok := ir.IntValue(v)
		return ok && c == 1
	}
	switch in.Op {
	case ir.OpAdd, ir.OpOr, ir.OpXor:
		if isZero(in.Operand(1)) {
			return in.Operand(0)
		}
		if isZero(in.Operand(0)) {
			return in.Operand(1)
		}
	case ir.OpSub, ir.OpShl, ir.OpLShr, ir.OpAShr:
		if isZero(in.Operand(1)) {
			return in.Operand(0)
		}
	case ir.OpMul:
		if isOne(in.Operand(1)) {
			return in.Operand(0)
		}
		if isOne(in.Operand(0)) {
			return in.Operand(1)
		}
		if isZero(in.Operand(0)) {
			return in.Operand(0)
		}
		if isZero(in.Operand(1)) {
			return in.Operand(1)
		}
	case ir.OpSDiv, ir.OpUDiv:
		if isOne(in.Operand(1)) {
			return in.Operand(0)
		}
	case ir.OpGEP:
		// gep p, 0 (single zero index) is p.
		if in.NumOperands() == 2 && isZero(in.Operand(1)) {
			return in.Operand(0)
		}
	case ir.OpPhi:
		if in.NumOperands() == 1 {
			return in.Operand(0)
		}
		var uniq ir.Value
		for _, v := range in.Operands {
			if v == in {
				continue
			}
			if uniq == nil {
				uniq = v
			} else if uniq != v {
				return nil
			}
		}
		return uniq
	case ir.OpSelect:
		if in.Operand(1) == in.Operand(2) {
			return in.Operand(1)
		}
	case ir.OpBitcast:
		if in.Operand(0).Type().Equal(in.Typ) {
			return in.Operand(0)
		}
	}
	return nil
}

// foldBranches turns condbr on constant conditions into unconditional
// branches and fixes phi edges in the no-longer-taken successor.
func foldBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		c, ok := ir.IntValue(t.Operand(0))
		if !ok {
			continue
		}
		taken, dropped := t.Blocks[0], t.Blocks[1]
		if c == 0 {
			taken, dropped = dropped, taken
		}
		if dropped != taken {
			removePhiEdge(dropped, b)
		}
		nb := &ir.Instr{Op: ir.OpBr, Typ: ir.Void, Blocks: []*ir.Block{taken}}
		b.Remove(t)
		b.Append(nb)
		changed = true
	}
	return changed
}

// removePhiEdge deletes the incoming edge from pred in every phi of b.
func removePhiEdge(b *ir.Block, pred *ir.Block) {
	for _, phi := range b.Phis() {
		for i := 0; i < len(phi.Blocks); i++ {
			if phi.Blocks[i] == pred {
				phi.Operands = append(phi.Operands[:i], phi.Operands[i+1:]...)
				phi.Blocks = append(phi.Blocks[:i], phi.Blocks[i+1:]...)
				i--
			}
		}
	}
}

func removeUnreachable(f *ir.Func) bool {
	reach := map[*ir.Block]bool{f.Entry(): true}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	if len(reach) == len(f.Blocks) {
		return false
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			// Remove phi edges from dead predecessors.
			for _, s := range b.Succs() {
				if reach[s] {
					removePhiEdge(s, b)
				}
			}
		}
	}
	f.Blocks = kept
	return true
}

// mergeBlocks merges b into its unique successor s when b ends in an
// unconditional branch, s has b as its only predecessor, and s starts
// with no phis (or only phis with a single incoming edge, which are
// folded first by simplifyInstrs).
func mergeBlocks(f *ir.Func) bool {
	changed := false
	for {
		merged := false
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			s := t.Blocks[0]
			if s == b || s == f.Entry() {
				continue
			}
			preds := f.Preds(s)
			if len(preds) != 1 || preds[0] != b {
				continue
			}
			if len(s.Phis()) > 0 {
				continue
			}
			// Splice s's instructions into b.
			b.Remove(t)
			for _, in := range s.Instrs {
				b.Append(in)
			}
			s.Instrs = nil
			// Any phi in s's successors that referenced s now comes
			// from b.
			for _, b2 := range f.Blocks {
				for _, phi := range b2.Phis() {
					for i, pb := range phi.Blocks {
						if pb == s {
							phi.Blocks[i] = b
						}
					}
				}
			}
			f.RemoveBlock(s)
			merged = true
			break
		}
		if !merged {
			break
		}
		changed = true
	}
	return changed
}
