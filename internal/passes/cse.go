package passes

import (
	"fmt"
	"strings"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// CSE performs dominator-scoped common-subexpression elimination of pure
// instructions (arithmetic, comparisons, geps, casts, selects). Loads and
// calls are left alone — eliminating them would require memory dependence
// tracking. Returns true if anything changed.
//
// Besides shrinking code, CSE canonicalizes repeated address computations
// (e.g. the per-statement array-decay geps the frontend emits), which the
// alignment strategies rely on: RoLAG's neutral-pointer rule (§IV.C2)
// needs the shared base pointer to be one SSA value.
func CSE(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	di := analysis.ComputeDom(f)
	changed := false

	type scope struct {
		table map[string]*ir.Instr
		prev  map[string]*ir.Instr // shadowed entries (nil = not present)
	}
	var stack []map[string]*ir.Instr
	lookup := func(k string) *ir.Instr {
		for i := len(stack) - 1; i >= 0; i-- {
			if in, ok := stack[i][k]; ok {
				return in
			}
		}
		return nil
	}
	_ = scope{}

	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		local := make(map[string]*ir.Instr)
		stack = append(stack, local)
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			k, ok := cseKey(in)
			if !ok {
				continue
			}
			if prev := lookup(k); prev != nil {
				f.ReplaceAllUses(in, prev)
				b.Remove(in)
				i--
				changed = true
				continue
			}
			local[k] = in
		}
		for _, c := range di.Children[b] {
			visit(c)
		}
		stack = stack[:len(stack)-1]
	}
	visit(f.Entry())
	if loadCSE(f) {
		changed = true
	}
	return changed
}

// loadCSE eliminates redundant loads within each block: a load from p
// reuses an earlier load of the same pointer value (or the value of an
// earlier store to it) as long as no intervening instruction may write
// memory that aliases p. Strictly block-local, so no path-sensitivity is
// needed.
func loadCSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := make(map[ir.Value]ir.Value) // pointer -> known loaded/stored value
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			switch in.Op {
			case ir.OpLoad:
				p := in.Operand(0)
				if v, ok := avail[p]; ok {
					f.ReplaceAllUses(in, v)
					b.Remove(in)
					i--
					changed = true
					continue
				}
				avail[p] = in
			case ir.OpStore:
				p := in.Operand(1)
				for q := range avail {
					if q != p && analysis.MayAlias(p, q) {
						delete(avail, q)
					}
				}
				avail[p] = in.Operand(0)
			case ir.OpCall:
				if in.Callee == nil || !in.Callee.ReadOnly {
					avail = make(map[ir.Value]ir.Value)
				}
			}
		}
	}
	return changed
}

// cseKey returns a structural hash key for pure instructions.
func cseKey(in *ir.Instr) (string, bool) {
	switch {
	case in.Op.IsBinary(), in.Op.IsCast(),
		in.Op == ir.OpGEP, in.Op == ir.OpICmp, in.Op == ir.OpFCmp,
		in.Op == ir.OpSelect:
	default:
		return "", false
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%s|%d|", in.Op, in.Typ, in.Pred)
	for _, op := range in.Operands {
		switch c := op.(type) {
		case *ir.IntConst:
			fmt.Fprintf(&sb, "i%s:%d;", c.Typ, c.Val)
		case *ir.FloatConst:
			fmt.Fprintf(&sb, "f%s:%x;", c.Typ, c.Val)
		case *ir.NullConst:
			fmt.Fprintf(&sb, "null%s;", c.Typ)
		default:
			fmt.Fprintf(&sb, "%p;", op)
		}
	}
	return sb.String(), true
}
