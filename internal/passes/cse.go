package passes

import (
	"math"
	"strconv"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// CSE performs dominator-scoped common-subexpression elimination of pure
// instructions (arithmetic, comparisons, geps, casts, selects). Loads and
// calls are left alone — eliminating them would require memory dependence
// tracking. Returns true if anything changed.
//
// Besides shrinking code, CSE canonicalizes repeated address computations
// (e.g. the per-statement array-decay geps the frontend emits), which the
// alignment strategies rely on: RoLAG's neutral-pointer rule (§IV.C2)
// needs the shared base pointer to be one SSA value.
func CSE(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	return cseDom(f, analysis.ComputeDom(f))
}

// CSEInfo is CSE reading the dominator tree from the cached analyses
// instead of recomputing it; used by pipelines that carry an
// analysis.Manager.
func CSEInfo(f *ir.Func, fi *analysis.FuncInfo) bool {
	if f.IsDecl() {
		return false
	}
	return cseDom(f, fi.Dom())
}

func cseDom(f *ir.Func, di *analysis.DomInfo) bool {
	changed := false

	// Value-numbering state shared across the walk: identity ids for
	// named operands and one scratch buffer the keys are encoded into.
	ids := make(map[ir.Value]uint32)
	var buf []byte

	var stack []map[string]*ir.Instr
	lookup := func(k string) *ir.Instr {
		for i := len(stack) - 1; i >= 0; i-- {
			if in, ok := stack[i][k]; ok {
				return in
			}
		}
		return nil
	}

	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		local := make(map[string]*ir.Instr)
		stack = append(stack, local)
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			kb, ok := cseKey(in, ids, buf[:0])
			buf = kb
			if !ok {
				continue
			}
			k := string(kb)
			if prev := lookup(k); prev != nil {
				f.ReplaceAllUses(in, prev)
				b.Remove(in)
				i--
				changed = true
				continue
			}
			local[k] = in
		}
		for _, c := range di.Children[b] {
			visit(c)
		}
		stack = stack[:len(stack)-1]
	}
	visit(f.Entry())
	if loadCSE(f) {
		changed = true
	}
	return changed
}

// loadCSE eliminates redundant loads within each block: a load from p
// reuses an earlier load of the same pointer value (or the value of an
// earlier store to it) as long as no intervening instruction may write
// memory that aliases p. Strictly block-local, so no path-sensitivity is
// needed.
func loadCSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := make(map[ir.Value]ir.Value) // pointer -> known loaded/stored value
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			switch in.Op {
			case ir.OpLoad:
				p := in.Operand(0)
				if v, ok := avail[p]; ok {
					f.ReplaceAllUses(in, v)
					b.Remove(in)
					i--
					changed = true
					continue
				}
				avail[p] = in
			case ir.OpStore:
				p := in.Operand(1)
				for q := range avail {
					if q != p && analysis.MayAlias(p, q) {
						delete(avail, q)
					}
				}
				avail[p] = in.Operand(0)
			case ir.OpCall:
				if in.Callee == nil || !in.Callee.ReadOnly {
					avail = make(map[ir.Value]ir.Value)
				}
			}
		}
	}
	return changed
}

// cseKey appends a structural key for pure instruction in to buf and
// reports whether the instruction is CSE-able. Constants encode by
// exact content (so structurally equal constants collide, as they
// must); every other operand encodes by a dense identity id from ids.
// The encoding uses strconv appends into the caller's scratch buffer —
// no fmt, no intermediate strings.
func cseKey(in *ir.Instr, ids map[ir.Value]uint32, buf []byte) ([]byte, bool) {
	switch {
	case in.Op.IsBinary(), in.Op.IsCast(),
		in.Op == ir.OpGEP, in.Op == ir.OpICmp, in.Op == ir.OpFCmp,
		in.Op == ir.OpSelect:
	default:
		return buf, false
	}
	buf = strconv.AppendUint(buf, uint64(in.Op), 10)
	buf = append(buf, '|')
	buf = append(buf, in.Typ.String()...)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, uint64(in.Pred), 10)
	buf = append(buf, '|')
	for _, op := range in.Operands {
		switch c := op.(type) {
		case *ir.IntConst:
			buf = append(buf, 'i')
			buf = strconv.AppendInt(buf, int64(c.Typ.Bits), 10)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, c.Val, 10)
		case *ir.FloatConst:
			buf = append(buf, 'f')
			buf = strconv.AppendInt(buf, int64(c.Typ.Bits), 10)
			buf = append(buf, ':')
			buf = strconv.AppendUint(buf, math.Float64bits(c.Val), 16)
		case *ir.NullConst:
			buf = append(buf, 'n')
			buf = append(buf, c.Typ.String()...)
		default:
			id, ok := ids[op]
			if !ok {
				id = uint32(len(ids))
				ids[op] = id
			}
			buf = append(buf, 'v')
			buf = strconv.AppendUint(buf, uint64(id), 10)
		}
		buf = append(buf, ';')
	}
	return buf, true
}
