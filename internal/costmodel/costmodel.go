// Package costmodel estimates the code size, in bytes, of IR
// instructions when lowered to an x86-64 target compiled at -Os. It
// stands in for LLVM's target-transformation-interface (TTI) code-size
// cost model, which the paper's profitability analysis queries (§IV.F).
//
// The estimates are calibrated against typical instruction encodings:
// simple register-register ALU ops are ~3 bytes, memory operands add a
// ModRM/SIB/displacement (~1-4 bytes), calls are 5 bytes, divisions
// expand to several instructions, and so on. Absolute accuracy is not
// required — the paper itself notes the model only approximates the
// lowered size — but relative ordering must be sensible, because the
// roll/no-roll decision compares the two versions' estimates.
package costmodel

import "rolag/internal/ir"

// Model is a code-size cost model. The zero value is the default x86-64
// -Os flavoured model.
type Model struct {
	// CallBytes is the size of a direct call instruction.
	CallBytes int
	// BranchBytes is the size of an unconditional branch.
	BranchBytes int
	// CondBranchBytes is the size of a compare-and-branch pair's branch
	// part (the compare is costed separately via the icmp).
	CondBranchBytes int
	// BinaryMode selects the finer "measurement" calibration used when
	// reporting final object sizes: phis cost edge copies, branch
	// targets get alignment padding, dynamic allocas cost frame setup,
	// and geps only fold into a memory access when they have a single
	// user. The profitability analysis uses the plain (TTI-style) model;
	// the deliberate gap between the two reproduces the paper's
	// observation that IR-level estimates are not a direct mapping to
	// the lowered binary, which is what causes its occasional
	// code-growth false positives (§V.A).
	BinaryMode bool
}

// Default returns the default (TTI-style, profitability) model.
func Default() *Model {
	return &Model{CallBytes: 5, BranchBytes: 2, CondBranchBytes: 2}
}

// Binary returns the measurement model used to report final "object
// file" sizes.
func Binary() *Model {
	return &Model{CallBytes: 5, BranchBytes: 2, CondBranchBytes: 2, BinaryMode: true}
}

// Instr returns the estimated byte size of one instruction.
//
// Pricing a gep needs the function's def-use chains (to decide whether
// it folds into its users' addressing modes); this entry point computes
// them on demand, which is O(function size). Callers pricing many
// instructions of one function should use InstrUsers, Func, FuncUsers,
// Block, or Module, which compute the chains once.
func (m *Model) Instr(in *ir.Instr) int {
	var users map[ir.Value][]*ir.Instr
	if in.Op == ir.OpGEP && in.Parent != nil && in.Parent.Parent != nil {
		users = in.Parent.Parent.Users()
	}
	return m.InstrUsers(in, users)
}

// InstrUsers is Instr with the enclosing function's def-use chains
// supplied by the caller (as returned by ir.Func.Users, or nil when the
// instruction is detached). It never recomputes them.
func (m *Model) InstrUsers(in *ir.Instr, users map[ir.Value][]*ir.Instr) int {
	switch {
	case in.Op == ir.OpPhi:
		// Phis lower to register copies on edges; the TTI-style model
		// treats them as free, while the measurement model charges for
		// the copies that register allocation cannot always coalesce.
		if m.BinaryMode {
			return 1
		}
		return 0
	case in.Op == ir.OpAlloca:
		// Static allocas fold into the prologue frame; in the
		// measurement model array allocas cost stack-frame adjustment.
		if m.BinaryMode {
			if at, ok := in.Alloc.(ir.ArrayType); ok && at.Len > 1 {
				return 4
			}
		}
		return 0
	case in.Op == ir.OpGEP:
		// Address arithmetic usually folds into the addressing mode of
		// the memory access that uses it; a standalone lea otherwise.
		if gepFoldable(in, m.BinaryMode, users) {
			return 0
		}
		return 4
	case in.Op == ir.OpBitcast || in.Op == ir.OpIntToPtr || in.Op == ir.OpPtrToInt:
		return 0
	case in.Op == ir.OpTrunc:
		return 0 // subregister use
	case in.Op == ir.OpZExt:
		return 3 // movzx
	case in.Op == ir.OpSExt:
		return 3 // movsx
	case in.Op == ir.OpFPTrunc, in.Op == ir.OpFPExt, in.Op == ir.OpSIToFP, in.Op == ir.OpFPToSI:
		return 4 // cvt* variants
	case in.Op == ir.OpLoad:
		return 3 + dispBytes(in.Operand(0))
	case in.Op == ir.OpStore:
		n := 3 + dispBytes(in.Operand(1))
		if c, ok := in.Operand(0).(*ir.IntConst); ok {
			n += immBytes(c.Val)
		}
		return n
	case in.Op == ir.OpCall:
		if !m.BinaryMode {
			return m.CallBytes
		}
		// Measurement mode counts the ABI staging around the call,
		// calibrated against the assembly backend (see
		// internal/backend/calib): each argument reaches its SysV slot
		// with a reg-reg mov (3 bytes) or a mov-imm32 (5 bytes), and a
		// used result moves out of the return register (3 bytes).
		n := m.CallBytes
		for _, a := range in.Operands {
			if _, ok := a.(*ir.IntConst); ok {
				n += 5
			} else {
				n += 3
			}
		}
		if _, void := in.Typ.(ir.VoidType); !void && len(users[in]) > 0 {
			n += 3
		}
		return n
	case in.Op == ir.OpBr:
		return m.BranchBytes
	case in.Op == ir.OpCondBr:
		return m.CondBranchBytes
	case in.Op == ir.OpRet:
		return 1
	case in.Op == ir.OpICmp:
		return 3 + immOperandBytes(in)
	case in.Op == ir.OpFCmp:
		return 4
	case in.Op == ir.OpSelect:
		return 4 // cmov
	case in.Op == ir.OpSDiv, in.Op == ir.OpUDiv, in.Op == ir.OpSRem, in.Op == ir.OpURem:
		return 8 // sign-extend + div sequence
	case in.Op == ir.OpMul:
		return 4 + immOperandBytes(in)
	case in.Op == ir.OpShl, in.Op == ir.OpLShr, in.Op == ir.OpAShr:
		return 3
	case in.Op.IsFloatBinary():
		return 4
	case in.Op.IsIntBinary():
		return 3 + immOperandBytes(in)
	}
	return 4
}

// gepFoldable reports whether the gep can fold into the addressing modes
// of its users: all users are loads/stores in the same block and the gep
// has at most a base + one index (reg+reg*scale+disp addressing). The
// measurement model additionally requires a single user: multi-use
// address computations are typically materialized once.
func gepFoldable(in *ir.Instr, binaryMode bool, users map[ir.Value][]*ir.Instr) bool {
	if in.NumOperands() > 3 {
		return false
	}
	if in.Parent == nil || in.Parent.Parent == nil {
		return false
	}
	us := users[in]
	if len(us) == 0 {
		return false
	}
	if binaryMode && len(us) > 1 {
		return false
	}
	for _, u := range us {
		if u.Op != ir.OpLoad && u.Op != ir.OpStore {
			return false
		}
	}
	return true
}

func dispBytes(addr ir.Value) int {
	// Loads/stores through a gep with constant indices get small
	// displacements; through arbitrary pointers, none.
	if g, ok := addr.(*ir.Instr); ok && g.Op == ir.OpGEP {
		for _, idx := range g.Operands[1:] {
			if c, ok := idx.(*ir.IntConst); ok && c.Val != 0 {
				return 1
			}
		}
	}
	if _, ok := addr.(*ir.Global); ok {
		return 4 // rip-relative disp32
	}
	return 0
}

func immOperandBytes(in *ir.Instr) int {
	for _, op := range in.Operands {
		if c, ok := op.(*ir.IntConst); ok {
			return immBytes(c.Val)
		}
	}
	return 0
}

func immBytes(v int64) int {
	if v >= -128 && v <= 127 {
		return 1
	}
	return 4
}

// Block returns the estimated size of all instructions in the block,
// computing the enclosing function's def-use chains once.
func (m *Model) Block(b *ir.Block) int {
	var users map[ir.Value][]*ir.Instr
	if b.Parent != nil {
		users = b.Parent.Users()
	}
	return m.blockUsers(b, users)
}

func (m *Model) blockUsers(b *ir.Block, users map[ir.Value][]*ir.Instr) int {
	n := 0
	for _, in := range b.Instrs {
		n += m.InstrUsers(in, users)
	}
	return n
}

// Func returns the estimated size of a function body, including a fixed
// prologue/epilogue overhead for defined functions. In the measurement
// model every non-entry block adds branch-target alignment padding.
func (m *Model) Func(f *ir.Func) int {
	if f.IsDecl() {
		return 0
	}
	return m.FuncUsers(f, f.Users())
}

// FuncUsers is Func with the def-use chains supplied by the caller —
// the entry point for pricing a function repeatedly against a cached
// analysis (see internal/analysis.FuncInfo).
func (m *Model) FuncUsers(f *ir.Func, users map[ir.Value][]*ir.Instr) int {
	if f.IsDecl() {
		return 0
	}
	const prologue = 4
	n := prologue
	hasCalls := false
	for i, b := range f.Blocks {
		n += m.blockUsers(b, users)
		if m.BinaryMode && i > 0 {
			n += 2
		}
		if m.BinaryMode && !hasCalls {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					hasCalls = true
					break
				}
			}
		}
	}
	// Non-leaf functions keep live values in callee-saved registers
	// across calls; the backend's push/pop pairs around them are real
	// bytes the leaf case never pays (calibrated: ~3 saved registers).
	if hasCalls {
		n += 12
	}
	return n
}

// Module returns the estimated text size of all functions in the module
// plus the size of read-only constant data emitted alongside the code
// (RoLAG's constant mismatch arrays land in .rodata, which the paper's
// object-file measurements include).
func (m *Model) Module(mod *ir.Module) int {
	n := 0
	for _, f := range mod.Funcs {
		if f.IsDecl() {
			continue
		}
		n += m.FuncUsers(f, f.Users())
	}
	// Mirror the backend's .rodata layout: symbols are emitted in
	// module order, each aligned to its type's natural alignment, so
	// inter-symbol padding is part of the measured section size and
	// must be part of the estimate (a bare sum of element sizes
	// under-counts whenever a wider symbol follows a narrower one).
	ro := 0
	for _, g := range mod.Globals {
		if !g.ReadOnly {
			continue
		}
		if a := g.Elem.Align(); a > 1 {
			ro = (ro + a - 1) &^ (a - 1)
		}
		ro += g.Elem.Size()
	}
	return n + ro
}

// Values returns the estimated size of an arbitrary set of instructions;
// used by the profitability analysis to cost a region that is not a whole
// block.
func (m *Model) Values(ins []*ir.Instr) int {
	n := 0
	for _, in := range ins {
		n += m.Instr(in)
	}
	return n
}
