package costmodel_test

import (
	"strings"
	"testing"

	"rolag"
	"rolag/internal/backend"
	"rolag/internal/cc"
	"rolag/internal/costmodel"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	return m
}

func TestInstrCostsSane(t *testing.T) {
	mod := ir.NewModule("t")
	callee := mod.NewDecl("ext", ir.Void, ir.I32)
	f := mod.NewFunc("f", ir.Void, &ir.Param{Name: "p", Typ: ir.Ptr(ir.I32)}, &ir.Param{Name: "x", Typ: ir.I32})
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	p, x := f.Params[0], f.Params[1]
	ld := bd.Load(p)
	add := bd.Add(ld, x)
	mul := bd.Mul(add, x)
	div := bd.Bin(ir.OpSDiv, mul, x)
	cmp := bd.ICmp(ir.PredSLT, div, x)
	sel := bd.Select(cmp, add, mul)
	call := bd.Call(callee, sel)
	st := bd.Store(sel, p)
	phiLike := bd.Cast(ir.OpSExt, sel, ir.I64)
	tr := bd.Cast(ir.OpTrunc, phiLike, ir.I32)
	bd.Ret(nil)
	_, _ = call, st

	m := costmodel.Default()
	if m.Instr(div) <= m.Instr(add) {
		t.Error("division should cost more than addition")
	}
	if m.Instr(call) != 5 {
		t.Errorf("direct call = %d bytes, want 5", m.Instr(call))
	}
	if m.Instr(tr) != 0 {
		t.Error("trunc is free (subregister)")
	}
	if m.Instr(ld) < 3 {
		t.Error("load under 3 bytes is implausible")
	}
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGepFoldsIntoAccess(t *testing.T) {
	m := build(t, `int f(int *a, int i) { return a[i]; }`)
	f := m.FindFunc("f")
	model := costmodel.Default()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGEP {
				if c := model.Instr(in); c != 0 {
					t.Errorf("single-use gep feeding a load should fold (cost %d)", c)
				}
			}
		}
	}
}

func TestBinaryModelDiffersSystematically(t *testing.T) {
	// A function with phis, multiple blocks and a multi-use gep must be
	// costed higher by the measurement model — that gap is what produces
	// the paper's profitability false positives.
	m := build(t, `
int f(int *a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		a[i] = a[i] + 1;
		s += a[i];
	}
	return s;
}`)
	f := m.FindFunc("f")
	d := costmodel.Default().Func(f)
	bm := costmodel.Binary().Func(f)
	if bm <= d {
		t.Errorf("binary model (%d) should exceed the TTI-style model (%d) on loop code", bm, d)
	}
}

func TestModuleIncludesRodata(t *testing.T) {
	m := build(t, `const long table[8] = {1,2,3,4,5,6,7,8}; int f() { return (int)table[3]; }`)
	model := costmodel.Default()
	withData := model.Module(m)
	// Strip the read-only flag: the 64 bytes of rodata must disappear.
	for _, g := range m.Globals {
		g.ReadOnly = false
	}
	withoutData := model.Module(m)
	if withData-withoutData != 64 {
		t.Errorf("rodata accounting: delta = %d, want 64", withData-withoutData)
	}
}

func TestCostMonotonicInCode(t *testing.T) {
	small := build(t, `void f(int *a) { a[0] = 1; }`)
	big := build(t, `void f(int *a) { a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4; }`)
	model := costmodel.Binary()
	if model.Module(big) <= model.Module(small) {
		t.Error("more stores must cost more bytes")
	}
}

func TestImmediateWidthMatters(t *testing.T) {
	imm8 := build(t, `void f(long *a) { a[0] = 100; }`)
	imm32 := build(t, `void f(long *a) { a[0] = 100000; }`)
	model := costmodel.Default()
	if model.Module(imm32) <= model.Module(imm8) {
		t.Error("a 32-bit immediate store should cost more than an 8-bit one")
	}
}

// TestRodataAgreesWithBackendOnJumpTable pins the .rodata accounting
// against the assembly backend on the roll.cdata case: rolling two
// mismatch-constant store sequences plants an i32 jump table followed
// by an i64 one, so the section layout needs inter-symbol alignment
// padding. The model's rodata term and the encoder's measured section
// size must agree byte for byte.
func TestRodataAgreesWithBackendOnJumpTable(t *testing.T) {
	src := `
void f(int *a, long *b) {
	a[0] = 1009; a[1] = 5021; a[2] = 2003; a[3] = 9049; a[4] = 4001;
	b[0] = 8087; b[1] = 3023; b[2] = 7039; b[3] = 6011; b[4] = 1097;
}`
	m, err := rolag.Compile(src, "jt")
	if err != nil {
		t.Fatal(err)
	}
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	res, err := rolag.Optimize(m, rolag.Config{Opt: rolag.OptRoLAG, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	cdata := 0
	for _, g := range res.Module.Globals {
		if strings.HasPrefix(g.Name, "roll.cdata") && g.ReadOnly {
			cdata++
		}
	}
	if cdata < 2 {
		t.Fatalf("want two roll.cdata jump tables, got %d:\n%s", cdata, res.Module)
	}

	br, err := backend.Compile(res.Module, nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.Code.Rodata == 0 {
		t.Fatal("backend measured no rodata")
	}
	// Isolate the model's rodata term: Module() is the per-function
	// text estimate plus the rodata layout.
	model := costmodel.Binary()
	text := 0
	for _, f := range res.Module.Funcs {
		if f.IsDecl() {
			continue
		}
		text += model.FuncUsers(f, f.Users())
	}
	ro := model.Module(res.Module) - text
	if int64(ro) != br.Code.Rodata {
		t.Errorf("rodata: model %d, backend measures %d", ro, br.Code.Rodata)
	}
	// The agreement must come from real alignment padding, not a happy
	// sum: 5 ints (20 bytes) then an 8-aligned long table forces a
	// 4-byte gap, so the section is strictly bigger than the elements.
	raw := 0
	for _, g := range res.Module.Globals {
		raw += g.Elem.Size()
	}
	if br.Code.Rodata <= int64(raw) {
		t.Errorf("no alignment padding: section %d bytes, elements %d", br.Code.Rodata, raw)
	}
}
