package costmodel_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/costmodel"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	return m
}

func TestInstrCostsSane(t *testing.T) {
	mod := ir.NewModule("t")
	callee := mod.NewDecl("ext", ir.Void, ir.I32)
	f := mod.NewFunc("f", ir.Void, &ir.Param{Name: "p", Typ: ir.Ptr(ir.I32)}, &ir.Param{Name: "x", Typ: ir.I32})
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	p, x := f.Params[0], f.Params[1]
	ld := bd.Load(p)
	add := bd.Add(ld, x)
	mul := bd.Mul(add, x)
	div := bd.Bin(ir.OpSDiv, mul, x)
	cmp := bd.ICmp(ir.PredSLT, div, x)
	sel := bd.Select(cmp, add, mul)
	call := bd.Call(callee, sel)
	st := bd.Store(sel, p)
	phiLike := bd.Cast(ir.OpSExt, sel, ir.I64)
	tr := bd.Cast(ir.OpTrunc, phiLike, ir.I32)
	bd.Ret(nil)
	_, _ = call, st

	m := costmodel.Default()
	if m.Instr(div) <= m.Instr(add) {
		t.Error("division should cost more than addition")
	}
	if m.Instr(call) != 5 {
		t.Errorf("direct call = %d bytes, want 5", m.Instr(call))
	}
	if m.Instr(tr) != 0 {
		t.Error("trunc is free (subregister)")
	}
	if m.Instr(ld) < 3 {
		t.Error("load under 3 bytes is implausible")
	}
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGepFoldsIntoAccess(t *testing.T) {
	m := build(t, `int f(int *a, int i) { return a[i]; }`)
	f := m.FindFunc("f")
	model := costmodel.Default()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGEP {
				if c := model.Instr(in); c != 0 {
					t.Errorf("single-use gep feeding a load should fold (cost %d)", c)
				}
			}
		}
	}
}

func TestBinaryModelDiffersSystematically(t *testing.T) {
	// A function with phis, multiple blocks and a multi-use gep must be
	// costed higher by the measurement model — that gap is what produces
	// the paper's profitability false positives.
	m := build(t, `
int f(int *a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		a[i] = a[i] + 1;
		s += a[i];
	}
	return s;
}`)
	f := m.FindFunc("f")
	d := costmodel.Default().Func(f)
	bm := costmodel.Binary().Func(f)
	if bm <= d {
		t.Errorf("binary model (%d) should exceed the TTI-style model (%d) on loop code", bm, d)
	}
}

func TestModuleIncludesRodata(t *testing.T) {
	m := build(t, `const long table[8] = {1,2,3,4,5,6,7,8}; int f() { return (int)table[3]; }`)
	model := costmodel.Default()
	withData := model.Module(m)
	// Strip the read-only flag: the 64 bytes of rodata must disappear.
	for _, g := range m.Globals {
		g.ReadOnly = false
	}
	withoutData := model.Module(m)
	if withData-withoutData != 64 {
		t.Errorf("rodata accounting: delta = %d, want 64", withData-withoutData)
	}
}

func TestCostMonotonicInCode(t *testing.T) {
	small := build(t, `void f(int *a) { a[0] = 1; }`)
	big := build(t, `void f(int *a) { a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4; }`)
	model := costmodel.Binary()
	if model.Module(big) <= model.Module(small) {
		t.Error("more stores must cost more bytes")
	}
}

func TestImmediateWidthMatters(t *testing.T) {
	imm8 := build(t, `void f(long *a) { a[0] = 100; }`)
	imm32 := build(t, `void f(long *a) { a[0] = 100000; }`)
	model := costmodel.Default()
	if model.Module(imm32) <= model.Module(imm8) {
		t.Error("a 32-bit immediate store should cost more than an 8-bit one")
	}
}
