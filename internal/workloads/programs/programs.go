// Package programs models the MiBench and SPEC CPU 2017 programs of the
// paper's Table I as multi-function synthetic binaries. Each program is a
// seeded corpus of functions whose family mix reflects how dense that
// codebase is in loop-rolling opportunities: image/raster code (the tiff
// tools, povray, blender) is rich in store/call sequences and field
// copies, while compression and integer kernels (sha, xz, mcf) mostly
// offer thin-margin shapes that trip the profitability analysis — which
// is how the paper's negative rows arise.
//
// Absolute sizes are scaled down (hundreds of functions instead of
// megabytes of text); what the reproduction preserves is the *shape* of
// Table I: which programs win, which regress, and how rolled-loop counts
// track program size.
package programs

import "rolag/internal/workloads/angha"

// Program describes one Table I row's synthetic stand-in.
type Program struct {
	// Suite is "MiBench" or "SPEC'17".
	Suite string
	// Name is the paper's program name.
	Name string
	// PaperKB is the paper's reported binary size (for the report).
	PaperKB float64
	// PaperRedPct is the paper's reported relative reduction (for the
	// report; negative = growth).
	PaperRedPct float64
	// NumFuncs is how many functions the stand-in generates.
	NumFuncs int
	// Mix is the family mix.
	Mix angha.Mix
	// Seed drives generation.
	Seed int64
}

// Functions generates the program's corpus.
func (p *Program) Functions() []angha.Function {
	return angha.GenerateMix(p.NumFuncs, p.Seed, p.Mix)
}

// Mix presets.
var (
	// mixRich: raster/rendering code — many regular sequences.
	mixRich = angha.Mix{
		angha.FamPlain: 55, angha.FamNearMiss: 10,
		angha.FamStoreSeq: 12, angha.FamFieldCopy: 8, angha.FamCallSeq: 7,
		angha.FamStridedPtr: 4, angha.FamReduction: 3, angha.FamChainedCall: 1,
	}
	// mixModerate: ordinary application code.
	mixModerate = angha.Mix{
		angha.FamPlain: 78, angha.FamNearMiss: 10,
		angha.FamStoreSeq: 5, angha.FamFieldCopy: 2, angha.FamCallSeq: 2,
		angha.FamStridedPtr: 1, angha.FamReduction: 1, angha.FamChainedCall: 1,
	}
	// mixSparse: almost no opportunities.
	mixSparse = angha.Mix{
		angha.FamPlain: 92, angha.FamNearMiss: 5,
		angha.FamStoreSeq: 2, angha.FamReduction: 1,
	}
	// mixThin: dominated by regression-prone shapes.
	mixThin = angha.Mix{
		angha.FamPlain: 84, angha.FamNearMiss: 8, angha.FamThin: 8,
	}
)

// Table returns the Table I program list.
func Table() []Program {
	return []Program{
		// MiBench.
		{Suite: "MiBench", Name: "typeset", PaperKB: 534.4, PaperRedPct: -0.1, NumFuncs: 170, Mix: mixThin, Seed: 101},
		{Suite: "MiBench", Name: "sha", PaperKB: 3.3, PaperRedPct: -0.8, NumFuncs: 10, Mix: mixThin, Seed: 102},
		{Suite: "MiBench", Name: "pgp", PaperKB: 179.2, PaperRedPct: 0, NumFuncs: 70, Mix: mixSparse, Seed: 103},
		{Suite: "MiBench", Name: "gsm", PaperKB: 48.6, PaperRedPct: 0.1, NumFuncs: 30, Mix: mixSparse, Seed: 104},
		{Suite: "MiBench", Name: "jpeg_d", PaperKB: 116.7, PaperRedPct: 0.1, NumFuncs: 50, Mix: mixModerate, Seed: 105},
		{Suite: "MiBench", Name: "jpeg_c", PaperKB: 121.1, PaperRedPct: 0.2, NumFuncs: 55, Mix: mixModerate, Seed: 106},
		{Suite: "MiBench", Name: "ghostscript", PaperKB: 908.8, PaperRedPct: 0.1, NumFuncs: 260, Mix: mixModerate, Seed: 107},
		{Suite: "MiBench", Name: "tiff2bw", PaperKB: 240.1, PaperRedPct: 1.3, NumFuncs: 90, Mix: mixRich, Seed: 108},
		{Suite: "MiBench", Name: "tiff2dither", PaperKB: 239.5, PaperRedPct: 1.4, NumFuncs: 90, Mix: mixRich, Seed: 109},
		{Suite: "MiBench", Name: "tiff2median", PaperKB: 239.6, PaperRedPct: 1.4, NumFuncs: 90, Mix: mixRich, Seed: 110},
		{Suite: "MiBench", Name: "tiff2rgba", PaperKB: 243.8, PaperRedPct: 1.4, NumFuncs: 92, Mix: mixRich, Seed: 111},
		// SPEC 2017.
		{Suite: "SPEC'17", Name: "657.xz_s", PaperKB: 158.2, PaperRedPct: -0.2, NumFuncs: 60, Mix: mixThin, Seed: 201},
		{Suite: "SPEC'17", Name: "620.omnetpp_s", PaperKB: 1512.2, PaperRedPct: 0, NumFuncs: 280, Mix: mixSparse, Seed: 202},
		{Suite: "SPEC'17", Name: "605.mcf_s", PaperKB: 17.8, PaperRedPct: -0.1, NumFuncs: 12, Mix: mixThin, Seed: 207},
		{Suite: "SPEC'17", Name: "644.nab_s", PaperKB: 149.9, PaperRedPct: 0, NumFuncs: 55, Mix: mixSparse, Seed: 204},
		{Suite: "SPEC'17", Name: "631.deepsjeng_s", PaperKB: 68.8, PaperRedPct: 0.1, NumFuncs: 35, Mix: mixModerate, Seed: 205},
		{Suite: "SPEC'17", Name: "619.lbm_s", PaperKB: 15.4, PaperRedPct: 0.9, NumFuncs: 12, Mix: mixRich, Seed: 206},
		{Suite: "SPEC'17", Name: "625.x264_s", PaperKB: 392.2, PaperRedPct: 0.1, NumFuncs: 130, Mix: mixModerate, Seed: 207},
		{Suite: "SPEC'17", Name: "638.imagick_s", PaperKB: 1574.9, PaperRedPct: 0.1, NumFuncs: 300, Mix: mixModerate, Seed: 208},
		{Suite: "SPEC'17", Name: "511.povray_r", PaperKB: 790.8, PaperRedPct: 2.7, NumFuncs: 220, Mix: mixRich, Seed: 209},
		{Suite: "SPEC'17", Name: "526.blender_r", PaperKB: 8508.5, PaperRedPct: 1.1, NumFuncs: 620, Mix: mixRich, Seed: 210},
	}
}
