package programs_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/passes"
	"rolag/internal/workloads/programs"
)

func TestTableProfilesWellFormed(t *testing.T) {
	rows := programs.Table()
	if len(rows) != 21 {
		t.Fatalf("Table I has %d rows, want 21 (11 MiBench + 10 SPEC)", len(rows))
	}
	names := make(map[string]bool)
	for _, p := range rows {
		if p.Suite != "MiBench" && p.Suite != "SPEC'17" {
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
		if names[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		names[p.Name] = true
		if p.NumFuncs < 4 {
			t.Errorf("%s: only %d functions", p.Name, p.NumFuncs)
		}
		if p.PaperKB <= 0 {
			t.Errorf("%s: missing paper size", p.Name)
		}
	}
	// The paper's negative rows must be present.
	for _, neg := range []string{"typeset", "sha", "657.xz_s", "605.mcf_s"} {
		found := false
		for _, p := range rows {
			if p.Name == neg && p.PaperRedPct < 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("expected %s with a negative paper reduction", neg)
		}
	}
}

func TestProgramsGenerateAndCompile(t *testing.T) {
	// Spot-check one small program per suite end to end.
	for _, name := range []string{"sha", "619.lbm_s"} {
		var found bool
		for _, p := range programs.Table() {
			if p.Name != name {
				continue
			}
			found = true
			funcs := p.Functions()
			if len(funcs) != p.NumFuncs {
				t.Errorf("%s: generated %d functions, want %d", name, len(funcs), p.NumFuncs)
			}
			for _, fn := range funcs {
				m, err := cc.Compile(fn.Src, fn.Name)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, fn.Name, err)
				}
				passes.Standard().Run(m)
				if err := m.Verify(); err != nil {
					t.Fatalf("%s/%s: verify: %v", name, fn.Name, err)
				}
			}
			// Determinism: same profile generates the same corpus.
			again := p.Functions()
			for i := range funcs {
				if funcs[i].Src != again[i].Src {
					t.Fatalf("%s: generation not deterministic", name)
				}
			}
		}
		if !found {
			t.Fatalf("program %s missing from Table()", name)
		}
	}
}
