package tsvc

func loopRestructuring() []Kernel {
	return []Kernel{
		k("s351", `
void s351() {
	float alpha_l = c[0];
	for (int i = 0; i < 256; i += 5) {
		a[i] += alpha_l * b[i];
		a[i + 1] += alpha_l * b[i + 1];
		a[i + 2] += alpha_l * b[i + 2];
		a[i + 3] += alpha_l * b[i + 3];
		a[i + 4] += alpha_l * b[i + 4];
	}
}`),
		k("s1351", `
void s1351() {
	float *ap = a;
	float *bp = b;
	float *cp = c;
	for (int i = 0; i < 256; i++) {
		*ap = *bp + *cp;
		ap++;
		bp++;
		cp++;
	}
}`),
		k("s352", `
float s352() {
	float d_ = 0.0f;
	for (int i = 0; i < 256; i += 5) {
		d_ = d_ + (a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2]
			+ a[i + 3] * b[i + 3] + a[i + 4] * b[i + 4]);
	}
	return d_;
}`),
		k("s353", `
void s353() {
	float alpha_l = c[0];
	for (int i = 0; i < 256; i += 5) {
		a[i] += alpha_l * b[ip[i]];
		a[i + 1] += alpha_l * b[ip[i + 1]];
		a[i + 2] += alpha_l * b[ip[i + 2]];
		a[i + 3] += alpha_l * b[ip[i + 3]];
		a[i + 4] += alpha_l * b[ip[i + 4]];
	}
}`),
	}
}

func equivalencing() []Kernel {
	return []Kernel{
		k("s421", `
void s421() {
	float *xx = flat_2d_array;
	for (int i = 0; i < 255; i++)
		xx[i] = flat_2d_array[i + 1] + a[i];
}`),
		k("s1421", `
void s1421() {
	float *xx = b + 128;
	for (int i = 0; i < 128; i++)
		b[i] = xx[i] + a[i];
}`),
		k("s422", `
void s422() {
	float *xx = flat_2d_array + 4;
	for (int i = 0; i < 252; i++)
		xx[i] = flat_2d_array[i + 8] + a[i];
}`),
		k("s423", `
void s423() {
	float *vxx = flat_2d_array + 64;
	for (int i = 0; i < 255; i++)
		vxx[i + 1] = flat_2d_array[i] + a[i];
}`),
		k("s424", `
void s424() {
	float *vxx = flat_2d_array + 63;
	for (int i = 0; i < 255; i++)
		vxx[i + 1] = flat_2d_array[i] + a[i];
}`),
		k("s431", `
void s431() {
	int k1 = 1;
	int k2 = 2;
	int kk = k2 - k1;
	for (int i = 0; i < 255; i++)
		a[i] = a[i + kk] + b[i];
}`),
		k("s441", `
void s441() {
	for (int i = 0; i < 256; i++) {
		if (d[i] < 0.0f)
			a[i] += b[i] * c[i];
		else if (d[i] == 0.0f)
			a[i] += b[i] * b[i];
		else
			a[i] += c[i] * c[i];
	}
}`),
		k("s443", `
void s443() {
	for (int i = 0; i < 256; i++) {
		if (d[i] <= 0.0f)
			a[i] += b[i] * c[i];
		else
			a[i] += b[i] * b[i];
	}
}`),
		k("s451", `
void s451() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i] + c[i] * d[i];
}`),
		k("s452", `
void s452() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i] + c[i] * (float)(i + 1);
}`),
		k("s453", `
void s453() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++) {
		s += 2.0f;
		a[i] = s * b[i];
	}
}`),
		k("s471", `
extern void s471s(void);
void s471() {
	int m = 256;
	for (int i = 0; i < m; i++) {
		x[i] = b[i] + d[i] * d[i];
		s471s();
		b[i] = c[i] + d[i] * e[i];
	}
}`),
		k("s481", `
extern void exit_now(int code);
void s481() {
	for (int i = 0; i < 256; i++) {
		if (d[i] < 0.0f)
			exit_now(0);
		a[i] += b[i] * c[i];
	}
}`),
		k("s482", `
void s482() {
	for (int i = 0; i < 256; i++) {
		a[i] += b[i] * c[i];
		if (c[i] > b[i])
			break;
	}
}`),
		k("s491", `
void s491() {
	for (int i = 0; i < 256; i++)
		a[ip[i]] = b[i] + c[i] * d[i];
}`),
	}
}

func indirectAddressing() []Kernel {
	return []Kernel{
		k("s4112", `
void s4112(float s) {
	for (int i = 0; i < 256; i++)
		a[i] = b[ip[i]] * s + a[i];
}`),
		k("s4113", `
void s4113() {
	for (int i = 0; i < 256; i++)
		a[ip[i]] = b[ip[i]] + c[i];
}`),
		k("s4114", `
void s4114(int n1_p) {
	for (int i = n1_p - 1; i < 256; i++) {
		int kk = ip[i];
		a[i] = b[i] + c[255 - kk] * d[i];
	}
}`),
		k("s4115", `
float s4115() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++)
		s += a[i] * b[ip[i]];
	return s;
}`),
		k("s4116", `
float s4116(int j_p, int inc_p) {
	float s = 0.0f;
	int off = j_p - 1;
	for (int i = 0; i < 255; i++)
		s += a[off + i * inc_p] * aa[ip[i]];
	return s;
}`),
		k("s4117", `
void s4117() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i] + c[i / 2] * d[i];
}`),
		k("s4121", `
extern float f_ret(float x, float y) pure;
void s4121() {
	for (int i = 0; i < 256; i++)
		a[i] += f_ret(b[i], c[i]);
}`),
	}
}

func controlLoops() []Kernel {
	return []Kernel{
		k("va", `
void va() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i];
}`),
		k("vag", `
void vag() {
	for (int i = 0; i < 256; i++)
		a[i] = b[ip[i]];
}`),
		k("vas", `
void vas() {
	for (int i = 0; i < 256; i++)
		a[ip[i]] = b[i];
}`),
		k("vif", `
void vif() {
	for (int i = 0; i < 256; i++) {
		if (b[i] > 0.0f)
			a[i] = b[i];
	}
}`),
		k("vpv", `
void vpv() {
	for (int i = 0; i < 256; i++)
		a[i] += b[i];
}`),
		k("vtv", `
void vtv() {
	for (int i = 0; i < 256; i++)
		a[i] *= b[i];
}`),
		k("vpvtv", `
void vpvtv() {
	for (int i = 0; i < 256; i++)
		a[i] += b[i] * c[i];
}`),
		k("vpvts", `
void vpvts(float s) {
	for (int i = 0; i < 256; i++)
		a[i] += b[i] * s;
}`),
		k("vpvpv", `
void vpvpv() {
	for (int i = 0; i < 256; i++)
		a[i] += b[i] + c[i];
}`),
		k("vtvtv", `
void vtvtv() {
	for (int i = 0; i < 256; i++)
		a[i] = a[i] * b[i] * c[i];
}`),
		k("vsumr", `
float vsumr() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++)
		s += a[i];
	return s;
}`),
		k("vdotr", `
float vdotr() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++)
		s += a[i] * b[i];
	return s;
}`),
		k("vbor", `
void vbor() {
	for (int i = 0; i < 256; i++) {
		float a1 = a[i];
		float b1 = b[i];
		float c1 = c[i];
		float d1 = d[i];
		float e1 = e[i];
		float f1 = aa[i];
		float s = a1*b1 + a1*c1 + a1*d1 + a1*e1 + a1*f1 + b1*c1 + b1*d1
			+ b1*e1 + b1*f1 + c1*d1 + c1*e1 + c1*f1 + d1*e1 + d1*f1 + e1*f1;
		x[i] = s * s;
	}
}`),
	}
}
