// Package tsvc provides the TSVC benchmark kernels (Callahan, Dongarra,
// Levine — "Vectorizing compilers: a test suite and results") translated
// to the project's mini-C subset. The paper's §V.C experiment force-
// unrolls every inner loop by 8 and measures how much of the original
// (rolled) size each rerolling technique recovers; the rolled sources
// here double as that experiment's oracle.
//
// Kernels operate on module-global arrays like the original suite
// (LEN = 256 floats, flattened 16x16 for the 2D kernels). Kernels whose
// control flow the techniques cannot handle (multi-block loop bodies,
// conditionals, early exits) are included on purpose: the paper uses them
// to expose the limitations of both techniques.
package tsvc

// Kernel is one TSVC kernel.
type Kernel struct {
	// Name is the original TSVC kernel name.
	Name string
	// Src is the mini-C translation unit (globals + the kernel
	// function). This is the *rolled* form, which also serves as the
	// oracle in Fig. 18.
	Src string
	// Func is the kernel function name.
	Func string
}

// Prelude declares the global arrays shared by all kernels (each kernel
// is compiled as its own module, so there is no cross-kernel
// interference).
const Prelude = `
float a[256]; float b[256]; float c[256]; float d[256]; float e[256];
float aa[256]; float bb[256]; float cc[256];
float flat_2d_array[256];
int ia[256]; int ib[256]; int ic[256]; int ip[256];
float x[256]; float q;
int n1; int n3; int inc;
float alpha; float beta;
float sum; float prod; float dot; float t_var;
int index_g;
`

func k(name, body string) Kernel {
	return Kernel{Name: name, Src: Prelude + body, Func: name}
}

// Kernels returns the suite in canonical order.
func Kernels() []Kernel {
	var out []Kernel
	out = append(out, linearDependence()...)
	out = append(out, induction()...)
	out = append(out, globalDataFlow()...)
	out = append(out, nonlogic()...)
	out = append(out, vectorization()...)
	out = append(out, controlFlow()...)
	out = append(out, reductions()...)
	out = append(out, recurrences()...)
	out = append(out, searching()...)
	out = append(out, packing()...)
	out = append(out, loopRestructuring()...)
	out = append(out, equivalencing()...)
	out = append(out, indirectAddressing()...)
	out = append(out, controlLoops()...)
	out = append(out, extraKernels()...)
	return out
}

// Find returns the kernel with the given name, or nil.
func Find(name string) *Kernel {
	for _, kr := range Kernels() {
		if kr.Name == name {
			return &kr
		}
	}
	return nil
}

func linearDependence() []Kernel {
	return []Kernel{
		k("s000", `
void s000() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i] + 1.0f;
}`),
		k("s111", `
void s111() {
	for (int i = 1; i < 256; i += 2)
		a[i] = a[i - 1] + b[i];
}`),
		k("s1111", `
void s1111() {
	for (int i = 0; i < 128; i++) {
		a[2*i] = c[i] * b[i] + d[i] * b[i] + c[i] * c[i] + d[i] * b[i] + d[i] * c[i];
	}
}`),
		k("s112", `
void s112() {
	for (int i = 254; i >= 0; i--)
		a[i + 1] = a[i] + b[i];
}`),
		k("s1112", `
void s1112() {
	for (int i = 255; i >= 0; i--)
		a[i] = b[i] + 1.0f;
}`),
		k("s113", `
void s113() {
	for (int i = 1; i < 256; i++)
		a[i] = a[0] + b[i];
}`),
		k("s1113", `
void s1113() {
	for (int i = 0; i < 256; i++)
		a[i] = a[128] + b[i];
}`),
		k("s114", `
void s114() {
	for (int i = 0; i < 16; i++)
		for (int j = 0; j < i; j++)
			aa[i*16 + j] = aa[j*16 + i] + bb[i*16 + j];
}`),
		k("s115", `
void s115() {
	for (int j = 0; j < 16; j++)
		for (int i = j + 1; i < 16; i++)
			a[i] = a[i] - aa[j*16 + i] * a[j];
}`),
		k("s1115", `
void s1115() {
	for (int i = 0; i < 16; i++)
		for (int j = 0; j < 16; j++)
			aa[i*16 + j] = aa[i*16 + j] * cc[j*16 + i] + bb[i*16 + j];
}`),
		k("s116", `
void s116() {
	for (int i = 0; i < 250; i += 5) {
		a[i] = a[i + 1] * a[i];
		a[i + 1] = a[i + 2] * a[i + 1];
		a[i + 2] = a[i + 3] * a[i + 2];
		a[i + 3] = a[i + 4] * a[i + 3];
		a[i + 4] = a[i + 5] * a[i + 4];
	}
}`),
		k("s118", `
void s118() {
	for (int i = 1; i < 16; i++)
		for (int j = 0; j <= i - 1; j++)
			a[i] = a[i] + bb[j*16 + i] * a[i - j - 1];
}`),
		k("s119", `
void s119() {
	for (int i = 1; i < 16; i++)
		for (int j = 1; j < 16; j++)
			aa[i*16 + j] = aa[(i-1)*16 + j - 1] + bb[i*16 + j];
}`),
	}
}

func induction() []Kernel {
	return []Kernel{
		k("s121", `
void s121() {
	for (int i = 0; i < 255; i++) {
		int j = i + 1;
		a[i] = a[j] + b[i];
	}
}`),
		k("s1221", `
void s1221() {
	for (int i = 4; i < 256; i++)
		b[i] = b[i - 4] + a[i];
}`),
		k("s122", `
void s122(int n1_p, int n3_p) {
	int j = 1;
	int k = 0;
	for (int i = n1_p - 1; i < 256; i += n3_p) {
		k += j;
		a[i] = a[i] + b[256 - k];
	}
}`),
		k("s124", `
void s124() {
	int j = -1;
	for (int i = 0; i < 256; i++) {
		if (b[i] > 0.0f) {
			j++;
			a[j] = b[i] + d[i] * e[i];
		} else {
			j++;
			a[j] = c[i] + d[i] * e[i];
		}
	}
}`),
		k("s125", `
void s125() {
	int k = -1;
	for (int i = 0; i < 16; i++) {
		for (int j = 0; j < 16; j++) {
			k++;
			flat_2d_array[k] = aa[i*16 + j] + bb[i*16 + j] * cc[i*16 + j];
		}
	}
}`),
		k("s126", `
void s126() {
	int k = 1;
	for (int i = 0; i < 16; i++) {
		for (int j = 1; j < 16; j++) {
			bb[j*16 + i] = bb[(j-1)*16 + i] + flat_2d_array[k - 1] * cc[j*16 + i];
			k++;
		}
		k++;
	}
}`),
		k("s127", `
void s127() {
	int j = -1;
	for (int i = 0; i < 128; i++) {
		j++;
		a[j] = b[i] + c[i] * d[i];
		j++;
		a[j] = b[i] + d[i] * e[i];
	}
}`),
		k("s128", `
void s128() {
	int j = -1;
	for (int i = 0; i < 128; i++) {
		int k = j + 1;
		a[i] = b[k] - d[i];
		j = k + 1;
		b[k] = a[i] + c[k];
	}
}`),
	}
}

func globalDataFlow() []Kernel {
	return []Kernel{
		k("s131", `
void s131() {
	int m = 1;
	for (int i = 0; i < 255; i++)
		a[i] = a[i + m] + b[i];
}`),
		k("s132", `
void s132() {
	int m = 0;
	int j = m;
	int k = m + 1;
	for (int i = 1; i < 16; i++)
		aa[j*16 + i] = aa[k*16 + i - 1] + b[i] * c[1];
}`),
	}
}

func nonlogic() []Kernel {
	return []Kernel{
		k("s141", `
void s141() {
	for (int i = 0; i < 16; i++) {
		int k = i;
		for (int j = i; j < 16; j++) {
			flat_2d_array[k] = flat_2d_array[k] + bb[j*16 + i];
			k += 16;
		}
	}
}`),
		k("s151", `
void s151s(float *ap, float *bp, int m) {
	for (int i = 0; i < 256 - 1; i++)
		ap[i] = ap[i + m] + bp[i];
}
void s151() {
	s151s(a, b, 1);
}`),
		k("s152", `
void s152s(float *ap, float *bp, float *cp, int i) {
	ap[i] = ap[i] + bp[i] * cp[i];
}
void s152() {
	for (int i = 0; i < 256; i++) {
		b[i] = d[i] * e[i];
		s152s(a, b, c, i);
	}
}`),
		k("s161", `
void s161() {
	for (int i = 0; i < 255; i++) {
		if (b[i] < 0.0f) {
			c[i + 1] = a[i] + d[i] * d[i];
		} else {
			a[i] = c[i] + d[i] * e[i];
		}
	}
}`),
		k("s162", `
void s162(int kp) {
	if (kp > 0) {
		for (int i = 0; i < 255; i++)
			a[i] = a[i + kp] + b[i] * c[i];
	}
}`),
		k("s171", `
void s171(int incp) {
	for (int i = 0; i < 256; i++)
		a[i * incp] = a[i * incp] + b[i];
}`),
		k("s172", `
void s172(int n1_p, int n3_p) {
	for (int i = n1_p - 1; i < 256; i += n3_p)
		a[i] = a[i] + b[i];
}`),
		k("s173", `
void s173() {
	int k = 128;
	for (int i = 0; i < 128; i++)
		a[i + k] = a[i] + b[i];
}`),
		k("s174", `
void s174(int mp) {
	for (int i = 0; i < mp; i++)
		a[i + mp] = a[i] + b[i];
}`),
		k("s175", `
void s175(int incp) {
	for (int i = 0; i < 255; i += incp)
		a[i] = a[i + incp] + b[i];
}`),
		k("s176", `
void s176() {
	int m = 128;
	for (int j = 0; j < 128; j++)
		for (int i = 0; i < 128; i++)
			a[i] = a[i] + b[i + m - j - 1] * c[j];
}`),
	}
}
