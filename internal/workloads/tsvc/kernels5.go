package tsvc

// The remaining kernels that complete the 151-kernel suite.

func extraKernels() []Kernel {
	return []Kernel{
		k("s1119", `
void s1119() {
	for (int i = 1; i < 16; i++)
		for (int j = 0; j < 16; j++)
			aa[i*16 + j] = aa[(i-1)*16 + j] + bb[i*16 + j];
}`),
		k("s1161", `
void s1161() {
	for (int i = 0; i < 255; i++) {
		if (c[i] < 0.0f) {
			b[i] = a[i] + d[i] * d[i];
		} else {
			a[i] = c[i] + d[i] * e[i];
		}
	}
}`),
		k("s2101", `
void s2101() {
	for (int i = 0; i < 16; i++)
		aa[i*16 + i] = aa[i*16 + i] + bb[i*16 + i] * cc[i*16 + i];
}`),
		k("s2102", `
void s2102() {
	for (int i = 0; i < 16; i++) {
		for (int j = 0; j < 16; j++)
			aa[j*16 + i] = 0.0f;
		aa[i*16 + i] = 1.0f;
	}
}`),
		k("s2111", `
void s2111() {
	for (int j = 1; j < 16; j++)
		for (int i = 1; i < 16; i++)
			aa[j*16 + i] = (aa[j*16 + i - 1] + aa[(j-1)*16 + i]) / 1.9f;
}`),
		k("s1281", `
void s1281() {
	for (int i = 0; i < 256; i++) {
		float xv = b[i] * c[i] + a[i] * d[i] + e[i];
		a[i] = xv - 1.0f;
		b[i] = xv;
	}
}`),
		k("s2711", `
void s2711() {
	for (int i = 0; i < 256; i++) {
		if (b[i] != 0.0f)
			a[i] += b[i] * c[i];
	}
}`),
		k("s2712", `
void s2712() {
	for (int i = 0; i < 256; i++) {
		if (a[i] > b[i])
			a[i] += b[i] * c[i];
	}
}`),
		k("s321b", `
void s321b() {
	for (int i = 1; i < 256; i++)
		a[i] += a[i - 1] * b[i] + c[i];
}`),
		k("s442", `
void s442(int *indx_p) {
	for (int i = 0; i < 256; i++) {
		int w = indx_p[i] & 3;
		if (w == 0)
			a[i] = b[i] + d[i] * d[i];
		else if (w == 1)
			a[i] = b[i] + e[i] * e[i];
		else
			a[i] = b[i] + c[i] * c[i];
	}
}`),
		k("s161b", `
void s161b() {
	for (int i = 0; i < 255; i++) {
		if (b[i] >= 0.0f)
			a[i] = c[i] + d[i] * e[i];
	}
}`),
		k("va8", `
void va8() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i] + 8.5f;
}`),
		k("vneg", `
void vneg() {
	for (int i = 0; i < 256; i++)
		a[i] = -b[i];
}`),
		k("vsqr", `
void vsqr() {
	for (int i = 0; i < 256; i++)
		a[i] = b[i] * b[i];
}`),
		k("vcopy8", `
void vcopy8() {
	a[0] = b[0]; a[1] = b[1]; a[2] = b[2]; a[3] = b[3];
	a[4] = b[4]; a[5] = b[5]; a[6] = b[6]; a[7] = b[7];
}`),
		k("vinit16", `
void vinit16() {
	for (int i = 0; i < 16; i++)
		ia[i] = 5;
	ia[16] = 1; ia[17] = 3; ia[18] = 5; ia[19] = 7;
	ia[20] = 9; ia[21] = 11; ia[22] = 13; ia[23] = 15;
}`),
	}
}
