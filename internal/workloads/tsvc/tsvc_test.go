package tsvc_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/passes"
	"rolag/internal/workloads/tsvc"
)

// TestKernelsCompile ensures every kernel parses, lowers and verifies.
func TestKernelsCompile(t *testing.T) {
	ks := tsvc.Kernels()
	if len(ks) < 80 {
		t.Fatalf("only %d kernels", len(ks))
	}
	names := make(map[string]bool)
	for _, kr := range ks {
		if names[kr.Name] {
			t.Errorf("duplicate kernel name %s", kr.Name)
		}
		names[kr.Name] = true
		m, err := cc.Compile(kr.Src, kr.Name)
		if err != nil {
			t.Errorf("%s: %v", kr.Name, err)
			continue
		}
		passes.Standard().Run(m)
		if err := m.Verify(); err != nil {
			t.Errorf("%s: verify: %v", kr.Name, err)
		}
		if m.FindFunc(kr.Func) == nil {
			t.Errorf("%s: missing function %s", kr.Name, kr.Func)
		}
	}
	t.Logf("%d kernels compiled", len(ks))
}
