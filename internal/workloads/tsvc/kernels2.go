package tsvc

func vectorization() []Kernel {
	return []Kernel{
		k("s211", `
void s211() {
	for (int i = 1; i < 255; i++) {
		a[i] = b[i - 1] + c[i] * d[i];
		b[i] = b[i + 1] - e[i] * d[i];
	}
}`),
		k("s212", `
void s212() {
	for (int i = 0; i < 255; i++) {
		a[i] = a[i] * c[i];
		b[i] = b[i] + a[i + 1] * d[i];
	}
}`),
		k("s1213", `
void s1213() {
	for (int i = 1; i < 255; i++) {
		a[i] = b[i-1] + c[i];
		b[i] = a[i+1] * d[i];
	}
}`),
		k("s221", `
void s221() {
	for (int i = 1; i < 256; i++) {
		a[i] = a[i] + c[i] * d[i];
		b[i] = b[i - 1] + a[i] + d[i];
	}
}`),
		k("s1221k", `
void s1221k() {
	for (int i = 4; i < 256; i++)
		b[i] = b[i - 4] + a[i];
}`),
		k("s222", `
void s222() {
	for (int i = 1; i < 256; i++) {
		a[i] = a[i] + b[i] * c[i];
		e[i] = e[i - 1] * e[i - 1];
		a[i] = a[i] - b[i] * c[i];
	}
}`),
		k("s231", `
void s231() {
	for (int i = 0; i < 16; i++)
		for (int j = 1; j < 16; j++)
			aa[j*16 + i] = aa[(j-1)*16 + i] + bb[j*16 + i];
}`),
		k("s232", `
void s232() {
	for (int j = 1; j < 16; j++)
		for (int i = 1; i <= j; i++)
			aa[j*16 + i] = aa[j*16 + i - 1] * aa[j*16 + i - 1] + bb[j*16 + i];
}`),
		k("s1232", `
void s1232() {
	for (int j = 0; j < 16; j++)
		for (int i = j; i < 16; i++)
			aa[i*16 + j] = bb[i*16 + j] + cc[i*16 + j];
}`),
		k("s233", `
void s233() {
	for (int i = 1; i < 16; i++) {
		for (int j = 1; j < 16; j++)
			aa[j*16 + i] = aa[(j-1)*16 + i] + cc[j*16 + i];
		for (int j = 1; j < 16; j++)
			bb[j*16 + i] = bb[j*16 + i - 1] + cc[j*16 + i];
	}
}`),
		k("s2233", `
void s2233() {
	for (int i = 1; i < 16; i++) {
		for (int j = 1; j < 16; j++)
			aa[j*16 + i] = aa[(j-1)*16 + i] + cc[j*16 + i];
		for (int j = 1; j < 16; j++)
			cc[j*16 + i] = bb[j*16 + i - 1] + cc[j*16 + i];
	}
}`),
		k("s235", `
void s235() {
	for (int i = 0; i < 16; i++) {
		a[i] = a[i] + b[i] * c[i];
		for (int j = 1; j < 16; j++)
			aa[j*16 + i] = aa[(j-1)*16 + i] + bb[j*16 + i] * a[i];
	}
}`),
	}
}

func controlFlow() []Kernel {
	return []Kernel{
		k("s241", `
void s241() {
	for (int i = 0; i < 255; i++) {
		a[i] = b[i] * c[i] * d[i];
		b[i] = a[i] * a[i + 1] * d[i];
	}
}`),
		k("s242", `
void s242(float s1, float s2) {
	for (int i = 1; i < 256; i++)
		a[i] = a[i - 1] + s1 + s2 + b[i] + c[i] + d[i];
}`),
		k("s243", `
void s243() {
	for (int i = 0; i < 255; i++) {
		a[i] = b[i] + c[i] * d[i];
		b[i] = a[i] + d[i] * e[i];
		a[i] = b[i] + a[i + 1] * d[i];
	}
}`),
		k("s244", `
void s244() {
	for (int i = 0; i < 255; i++) {
		a[i] = b[i] + c[i] * d[i];
		b[i] = c[i] + b[i];
		a[i + 1] = b[i] + a[i + 1] * d[i];
	}
}`),
		k("s1244", `
void s1244() {
	for (int i = 0; i < 255; i++) {
		a[i] = b[i] + c[i] * c[i] + b[i] * b[i] + c[i];
		d[i] = a[i] + a[i + 1];
	}
}`),
		k("s2244", `
void s2244() {
	for (int i = 0; i < 255; i++) {
		a[i + 1] = b[i] + e[i];
		a[i] = b[i] + c[i];
	}
}`),
		k("s251", `
void s251() {
	for (int i = 0; i < 256; i++) {
		float s = b[i] + c[i] * d[i];
		a[i] = s * s;
	}
}`),
		k("s1251", `
void s1251() {
	for (int i = 0; i < 256; i++) {
		float s = b[i] + c[i];
		b[i] = a[i] + d[i];
		a[i] = s * e[i];
	}
}`),
		k("s2251", `
void s2251() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++) {
		a[i] = s * e[i];
		s = b[i] + c[i];
		b[i] = a[i] + d[i];
	}
}`),
		k("s3251", `
void s3251() {
	for (int i = 0; i < 255; i++) {
		a[i + 1] = b[i] + c[i];
		b[i] = c[i] * e[i];
		d[i] = a[i] * e[i];
	}
}`),
		k("s252", `
void s252() {
	float t = 0.0f;
	for (int i = 0; i < 256; i++) {
		float s = b[i] * c[i];
		a[i] = s + t;
		t = s;
	}
}`),
		k("s253", `
void s253() {
	float s;
	for (int i = 0; i < 256; i++) {
		if (a[i] > b[i]) {
			s = a[i] - b[i] * d[i];
			c[i] = c[i] + s;
			a[i] = s;
		}
	}
}`),
		k("s254", `
void s254() {
	float t = b[255];
	for (int i = 0; i < 256; i++) {
		a[i] = (b[i] + t) * 0.5f;
		t = b[i];
	}
}`),
		k("s255", `
void s255() {
	float t = b[255];
	float s = b[254];
	for (int i = 0; i < 256; i++) {
		a[i] = (b[i] + t + s) * 0.333f;
		s = t;
		t = b[i];
	}
}`),
		k("s256", `
void s256() {
	for (int i = 0; i < 16; i++) {
		for (int j = 1; j < 16; j++) {
			a[j] = aa[j*16 + i] - a[j - 1];
			aa[j*16 + i] = a[j] + bb[j*16 + i];
		}
	}
}`),
		k("s257", `
void s257() {
	for (int i = 1; i < 16; i++) {
		for (int j = 0; j < 16; j++) {
			a[i] = aa[j*16 + i] - a[i - 1];
			aa[j*16 + i] = a[i] + bb[j*16 + i];
		}
	}
}`),
		k("s258", `
void s258() {
	float s = 0.0f;
	for (int i = 0; i < 16; i++) {
		if (a[i] > 0.0f)
			s = d[i] * d[i];
		b[i] = s * c[i] + d[i];
		e[i] = (s + 1.0f) * aa[i];
	}
}`),
		k("s261", `
void s261() {
	for (int i = 1; i < 256; i++) {
		float t = a[i] + b[i];
		a[i] = t + c[i - 1];
		t = c[i] * d[i];
		c[i] = t;
	}
}`),
	}
}
