package tsvc

func reductions() []Kernel {
	return []Kernel{
		k("s271", `
void s271() {
	for (int i = 0; i < 256; i++) {
		if (b[i] > 0.0f)
			a[i] += b[i] * c[i];
	}
}`),
		k("s272", `
void s272(float t) {
	for (int i = 0; i < 256; i++) {
		if (e[i] >= t) {
			a[i] += c[i] * d[i];
			b[i] += c[i] * c[i];
		}
	}
}`),
		k("s273", `
void s273() {
	for (int i = 0; i < 256; i++) {
		a[i] += d[i] * e[i];
		if (a[i] < 0.0f)
			b[i] += d[i] * e[i];
		c[i] += a[i] * d[i];
	}
}`),
		k("s274", `
void s274() {
	for (int i = 0; i < 256; i++) {
		a[i] = c[i] + e[i] * d[i];
		if (a[i] > 0.0f)
			b[i] = a[i] + b[i];
		else
			a[i] = d[i] * e[i];
	}
}`),
		k("s275", `
void s275() {
	for (int i = 0; i < 16; i++) {
		if (aa[i] > 0.0f) {
			for (int j = 1; j < 16; j++)
				aa[j*16 + i] = aa[(j-1)*16 + i] + bb[j*16 + i] * cc[j*16 + i];
		}
	}
}`),
		k("s2275", `
void s2275() {
	for (int i = 0; i < 16; i++) {
		for (int j = 0; j < 16; j++)
			aa[j*16 + i] = aa[j*16 + i] + bb[j*16 + i] * cc[j*16 + i];
		a[i] = b[i] + c[i] * d[i];
	}
}`),
		k("s276", `
void s276() {
	int mid = 128;
	for (int i = 0; i < 256; i++) {
		if (i + 1 < mid)
			a[i] += b[i] * c[i];
		else
			a[i] += b[i] * d[i];
	}
}`),
		k("s281", `
void s281() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++) {
		float xv = a[255 - i] + b[i] * c[i];
		a[i] = xv - 1.0f;
		b[i] = xv;
	}
}`),
		k("s291", `
void s291() {
	int im1 = 255;
	for (int i = 0; i < 256; i++) {
		a[i] = (b[i] + b[im1]) * 0.5f;
		im1 = i;
	}
}`),
		k("s292", `
void s292() {
	int im1 = 255;
	int im2 = 254;
	for (int i = 0; i < 256; i++) {
		a[i] = (b[i] + b[im1] + b[im2]) * 0.333f;
		im2 = im1;
		im1 = i;
	}
}`),
		k("s293", `
void s293() {
	for (int i = 0; i < 256; i++)
		a[i] = a[0];
}`),
		k("s311", `
float s311() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++)
		s += a[i];
	return s;
}`),
		k("s312", `
float s312() {
	float p = 1.0f;
	for (int i = 0; i < 256; i++)
		p *= a[i];
	return p;
}`),
		k("s313", `
float s313() {
	float d_ = 0.0f;
	for (int i = 0; i < 256; i++)
		d_ += a[i] * b[i];
	return d_;
}`),
		k("s314", `
float s314() {
	float m = a[0];
	for (int i = 0; i < 256; i++) {
		if (a[i] > m)
			m = a[i];
	}
	return m;
}`),
		k("s315", `
float s315() {
	float m = a[0];
	int j = 0;
	for (int i = 0; i < 256; i++) {
		if (a[i] > m) {
			m = a[i];
			j = i;
		}
	}
	return m + (float)j;
}`),
		k("s316", `
float s316() {
	float m = a[0];
	for (int i = 1; i < 256; i++) {
		if (a[i] < m)
			m = a[i];
	}
	return m;
}`),
		k("s317", `
float s317() {
	float qv = 1.0f;
	for (int i = 0; i < 128; i++)
		qv *= 0.99f;
	return qv;
}`),
		k("s318", `
float s318(int incp) {
	int j = 0;
	float m = a[0];
	if (m < 0.0f) m = -m;
	int idx = 0;
	for (int i = 1; i < 256; i++) {
		j += incp;
		float av = a[j];
		if (av < 0.0f) av = -av;
		if (av > m) {
			m = av;
			idx = i;
		}
	}
	return m + (float)idx;
}`),
		k("s319", `
float s319() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++) {
		a[i] = c[i] + d[i];
		s += a[i];
		b[i] = c[i] + e[i];
		s += b[i];
	}
	return s;
}`),
		k("s3110", `
float s3110() {
	float m = aa[0];
	for (int i = 0; i < 256; i++) {
		if (aa[i] > m)
			m = aa[i];
	}
	return m;
}`),
		k("s3111", `
float s3111() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++) {
		if (a[i] > 0.0f)
			s += a[i];
	}
	return s;
}`),
		k("s3112", `
float s3112() {
	float s = 0.0f;
	for (int i = 0; i < 256; i++) {
		s += a[i];
		b[i] = s;
	}
	return s;
}`),
		k("s3113", `
float s3113() {
	float m = a[0];
	for (int i = 0; i < 256; i++) {
		if ((a[i] > m ? a[i] : m) > m)
			m = a[i];
	}
	return m;
}`),
	}
}

func recurrences() []Kernel {
	return []Kernel{
		k("s321", `
void s321() {
	for (int i = 1; i < 256; i++)
		a[i] += a[i - 1] * b[i];
}`),
		k("s322", `
void s322() {
	for (int i = 2; i < 256; i++)
		a[i] = a[i] + a[i - 1] * b[i] + a[i - 2] * c[i];
}`),
		k("s323", `
void s323() {
	for (int i = 1; i < 256; i++) {
		a[i] = b[i - 1] + c[i] * d[i];
		b[i] = a[i] + c[i] * e[i];
	}
}`),
	}
}

func searching() []Kernel {
	return []Kernel{
		k("s331", `
int s331() {
	int j = -1;
	for (int i = 0; i < 256; i++) {
		if (a[i] < 0.0f)
			j = i;
	}
	return j;
}`),
		k("s332", `
float s332(float t) {
	int index_l = -2;
	float value = -1.0f;
	for (int i = 0; i < 256; i++) {
		if (a[i] > t) {
			index_l = i;
			value = a[i];
			break;
		}
	}
	return value + (float)index_l;
}`),
	}
}

func packing() []Kernel {
	return []Kernel{
		k("s341", `
void s341() {
	int j = -1;
	for (int i = 0; i < 256; i++) {
		if (b[i] > 0.0f) {
			j++;
			a[j] = b[i];
		}
	}
}`),
		k("s342", `
void s342() {
	int j = -1;
	for (int i = 0; i < 256; i++) {
		if (a[i] > 0.0f) {
			j++;
			a[i] = b[j];
		}
	}
}`),
		k("s343", `
void s343() {
	int k = -1;
	for (int i = 0; i < 16; i++) {
		for (int j = 0; j < 16; j++) {
			if (bb[j*16 + i] > 0.0f) {
				k++;
				flat_2d_array[k] = aa[j*16 + i];
			}
		}
	}
}`),
	}
}
