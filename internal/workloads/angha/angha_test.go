package angha_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/passes"
	"rolag/internal/workloads/angha"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := angha.Generate(100, 42)
	b := angha.Generate(100, 42)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Family != b[i].Family {
			t.Fatalf("function %d differs between runs with the same seed", i)
		}
	}
	c := angha.Generate(100, 43)
	same := 0
	for i := range a {
		if a[i].Src == c[i].Src {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical corpus")
	}
}

func TestGeneratorCoverage(t *testing.T) {
	funcs := angha.Generate(1200, 7)
	fams := make(map[string]int)
	names := make(map[string]bool)
	for _, fn := range funcs {
		fams[fn.Family]++
		if names[fn.Name] {
			t.Errorf("duplicate function name %s", fn.Name)
		}
		names[fn.Name] = true
	}
	for _, fam := range []string{
		angha.FamPlain, angha.FamNearMiss, angha.FamStoreSeq, angha.FamFieldCopy,
		angha.FamCallSeq, angha.FamStridedPtr, angha.FamReduction, angha.FamChainedCall,
	} {
		if fams[fam] == 0 {
			t.Errorf("family %s never generated", fam)
		}
	}
	if fams[angha.FamPlain] < fams[angha.FamChainedCall] {
		t.Error("plain functions should dominate the corpus")
	}
}

func TestEveryGeneratedFunctionCompiles(t *testing.T) {
	for _, fn := range angha.Generate(500, 3) {
		m, err := cc.Compile(fn.Src, fn.Name)
		if err != nil {
			t.Fatalf("%s (%s): %v\n%s", fn.Name, fn.Family, err, fn.Src)
		}
		passes.Standard().Run(m)
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", fn.Name, err)
		}
	}
}

func TestMixWeights(t *testing.T) {
	mix := angha.Mix{angha.FamPlain: 1, angha.FamThin: 9}
	funcs := angha.GenerateMix(400, 5, mix)
	thin := 0
	for _, fn := range funcs {
		switch fn.Family {
		case angha.FamThin:
			thin++
		case angha.FamPlain:
		default:
			t.Fatalf("unexpected family %s for restricted mix", fn.Family)
		}
	}
	if thin < 300 {
		t.Errorf("thin weight 90%% produced only %d/400", thin)
	}
}
