// Package angha synthesizes the AnghaBench-style corpus used by the
// paper's §V.A experiment. AnghaBench proper is one million compilable C
// functions mined from popular GitHub repositories; this package
// reproduces its *distribution of loop-rolling opportunities* with a
// seeded generator that emits functions drawn from the pattern families
// the paper reports (Fig. 16): sequences of stores, sequences of calls,
// struct field copies (the Linux KVM example that tops Fig. 15), chained
// call dependences (Fig. 4), reduction expressions, strided pointer
// writes (Fig. 3), plus deliberately irregular near-misses and plain
// unrollable-free code that keep the affected fraction small, as in the
// paper.
package angha

import (
	"fmt"
	"math/rand"
	"strings"
)

// Function is one synthesized corpus entry.
type Function struct {
	// Name identifies the function (unique in the corpus).
	Name string
	// Src is the full mini-C translation unit.
	Src string
	// Family records the generating pattern family (for diagnostics).
	Family string
}

// Families in generation-weight order.
const (
	FamStoreSeq    = "store-seq"
	FamCallSeq     = "call-seq"
	FamFieldCopy   = "field-copy"
	FamChainedCall = "chained-call"
	FamReduction   = "reduction"
	FamStridedPtr  = "strided-ptr"
	FamNearMiss    = "near-miss"
	FamPlain       = "plain"
	// FamThin is the regression-prone shape: a short run of wide stores
	// with large immediates whose profit margin sits inside the gap
	// between the profitability and measurement cost models.
	FamThin = "thin"
)

// Generate returns n corpus functions derived deterministically from
// seed, using the default family mix.
func Generate(n int, seed int64) []Function {
	return GenerateMix(n, seed, nil)
}

// Mix maps family names to relative weights. A nil Mix selects the
// default AnghaBench-like distribution.
type Mix map[string]int

// GenerateMix returns n corpus functions with a custom family mix; used
// by the MiBench/SPEC program profiles, whose codebases have different
// densities of rolling opportunities.
func GenerateMix(n int, seed int64, mix Mix) []Function {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Function, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, genMix(rng, i, mix))
	}
	return out
}

// family weights sum to 100. Most real-world functions contain no
// rolling opportunity; the rollable families mirror Fig. 16's mix.
var familyTable = []struct {
	fam    string
	weight int
}{
	{FamPlain, 38},
	{FamNearMiss, 14},
	{FamStoreSeq, 14},
	{FamFieldCopy, 9},
	{FamCallSeq, 9},
	{FamStridedPtr, 6},
	{FamReduction, 6},
	{FamChainedCall, 4},
}

func pickFamily(rng *rand.Rand, mix Mix) string {
	if mix == nil {
		x := rng.Intn(100)
		for _, e := range familyTable {
			if x < e.weight {
				return e.fam
			}
			x -= e.weight
		}
		return FamPlain
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	x := rng.Intn(total)
	// Deterministic iteration order over the known family names.
	for _, fam := range []string{FamPlain, FamNearMiss, FamStoreSeq, FamFieldCopy,
		FamCallSeq, FamStridedPtr, FamReduction, FamChainedCall, FamThin} {
		w := mix[fam]
		if x < w {
			return fam
		}
		x -= w
	}
	return FamPlain
}

func genMix(rng *rand.Rand, idx int, mix Mix) Function {
	fam := pickFamily(rng, mix)
	name := fmt.Sprintf("fn_%s_%04d", strings.ReplaceAll(fam, "-", ""), idx)
	var src string
	switch fam {
	case FamStoreSeq:
		src = genStoreSeq(rng, name)
	case FamCallSeq:
		src = genCallSeq(rng, name)
	case FamFieldCopy:
		src = genFieldCopy(rng, name)
	case FamChainedCall:
		src = genChainedCall(rng, name)
	case FamReduction:
		src = genReduction(rng, name)
	case FamStridedPtr:
		src = genStridedPtr(rng, name)
	case FamNearMiss:
		src = genNearMiss(rng, name)
	case FamThin:
		src = genThin(rng, name)
	default:
		src = genPlain(rng, name)
	}
	return Function{Name: name, Src: src, Family: fam}
}

// padding emits filler computation around the rollable pattern: real
// corpus functions embed their opportunities inside otherwise ordinary
// code, which dilutes per-function reductions (the paper's Fig. 15 curve
// spans ~90% down to slightly negative). The filler is a scalar
// arithmetic chain flushed into a global so it cannot be eliminated and
// cannot form an alignment seed.
const padDecl = "int pad_sink;\n"

func padding(rng *rand.Rand, label string) string {
	levels := rng.Intn(10)
	if levels == 0 {
		return ""
	}
	n := levels * (5 + rng.Intn(14))
	var b strings.Builder
	// Seed the chain from memory so constant folding cannot collapse it.
	fmt.Fprintf(&b, "\tint %s0 = pad_sink + %d;\n", label, rng.Intn(100))
	ops := []string{"+", "^", "*", "-", "|"}
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "\tint %s%d = %s%d %s %d;\n", label, i, label, i-1, ops[rng.Intn(len(ops))], rng.Intn(97)+1)
	}
	fmt.Fprintf(&b, "\tpad_sink = %s%d;\n", label, n)
	return b.String()
}

// genStoreSeq: a[0] = e0; a[1] = e1; ... with a regular value pattern.
func genStoreSeq(rng *rand.Rand, name string) string {
	n := 3 + rng.Intn(14)
	if rng.Intn(2) == 0 {
		// Short runs dominate real code; they also carry the thinnest
		// profitability margins.
		n = 3 + rng.Intn(4)
	}
	start := rng.Intn(50)
	step := 1 + rng.Intn(9)
	kind := rng.Intn(3)
	elem := "int"
	if kind == 0 && rng.Intn(2) == 0 {
		// Wider element type and large immediates: thinner profit
		// margins on short runs, which is where the cost model's false
		// positives live (§V.A).
		elem = "long"
		start = 200 + rng.Intn(5000)
		step = 10 + rng.Intn(60)
	}
	var b strings.Builder
	b.WriteString(padDecl)
	fmt.Fprintf(&b, "void %s(%s *a, int v) {\n", name, elem)
	b.WriteString(padding(rng, "sp"))
	for i := 0; i < n; i++ {
		switch kind {
		case 0: // constant arithmetic sequence
			fmt.Fprintf(&b, "\ta[%d] = %d;\n", i, start+i*step)
		case 1: // value scaled by the position
			fmt.Fprintf(&b, "\ta[%d] = v * %d;\n", i, start+i*step)
		default: // copy with offset
			fmt.Fprintf(&b, "\ta[%d] = a[%d] + v;\n", i, i+n)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// genCallSeq: n calls to the same callee with regular arguments (Fig. 3
// shape). Every third instance uses irregular scalar constants instead —
// those need a mismatch node (a constant pool) which a long enough call
// run still amortizes, reproducing the paper's profitable-mismatch cases
// (s452/s4117 in §V.C).
func genCallSeq(rng *rand.Rand, name string) string {
	n := 3 + rng.Intn(8)
	stride := 4 * (1 + rng.Intn(7))
	irregular := rng.Intn(3) == 0
	if irregular {
		n = 6 + rng.Intn(6)
	}
	var b strings.Builder
	b.WriteString(padDecl)
	b.WriteString("extern void sink2(char *p, int x);\n")
	fmt.Fprintf(&b, "void %s(char *p) {\n", name)
	b.WriteString(padding(rng, "cp"))
	for i := 0; i < n; i++ {
		arg := i
		if irregular {
			arg = rng.Intn(100000)
		}
		fmt.Fprintf(&b, "\tsink2(p + %d, %d);\n", i*stride, arg)
	}
	b.WriteString("}\n")
	return b.String()
}

// genFieldCopy: copy k same-typed fields between two structs — the shape
// of the Linux KVM copy_vmcs12_to_enlightened function that achieves the
// best reduction in Fig. 15.
func genFieldCopy(rng *rand.Rand, name string) string {
	k := 6 + rng.Intn(40)
	var b strings.Builder
	b.WriteString("struct SrcT {")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, " int f%d;", i)
	}
	b.WriteString(" };\n")
	b.WriteString("struct DstT {")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, " int g%d;", i)
	}
	b.WriteString(" };\n")
	b.WriteString(padDecl)
	fmt.Fprintf(&b, "void %s(struct DstT *d, struct SrcT *s) {\n", name)
	b.WriteString(padding(rng, "fp"))
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "\td->g%d = s->f%d;\n", i, i)
	}
	b.WriteString("}\n")
	return b.String()
}

// genChainedCall: r = f(r, x_i) chains (Fig. 4 shape).
func genChainedCall(rng *rand.Rand, name string) string {
	n := 4 + rng.Intn(6)
	var b strings.Builder
	b.WriteString("extern int fld_mod(int r, int v, int hi, int lo) pure;\n")
	b.WriteString("struct Fmt {")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " int m%d;", i)
	}
	b.WriteString(" };\n")
	b.WriteString(padDecl)
	fmt.Fprintf(&b, "int %s(int r0, struct Fmt *f) {\n\tint r = r0;\n", name)
	b.WriteString(padding(rng, "hp"))
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "\tr = fld_mod(r, f->m%d, %d, %d);\n", i, i, i)
	}
	b.WriteString("\treturn r;\n}\n")
	return b.String()
}

// genReduction: a straight-line dot-product / sum expression (Fig. 11
// shape).
func genReduction(rng *rand.Rand, name string) string {
	n := 4 + rng.Intn(12)
	var b strings.Builder
	b.WriteString(padDecl)
	fmt.Fprintf(&b, "int %s(const int *a, const int *b) {\n", name)
	b.WriteString(padding(rng, "rp"))
	b.WriteString("\treturn ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "a[%d]*b[%d]", i, i)
	}
	b.WriteString(";\n}\n")
	return b.String()
}

// genStridedPtr: void* writes at a fixed stride.
func genStridedPtr(rng *rand.Rand, name string) string {
	n := 4 + rng.Intn(8)
	stride := 8 * (1 + rng.Intn(4))
	var b strings.Builder
	b.WriteString(padDecl)
	fmt.Fprintf(&b, "void %s(int *dst, int *src) {\n", name)
	b.WriteString(padding(rng, "tp"))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tdst[%d] = src[%d];\n", i*stride/4, i)
	}
	b.WriteString("}\n")
	return b.String()
}

// genNearMiss: looks repetitive but has an irregularity that breaks the
// alignment — differing callees, a broken sequence, or a reordering
// hazard — so a correct implementation must reject or fail to profit.
func genNearMiss(rng *rand.Rand, name string) string {
	var b strings.Builder
	switch rng.Intn(3) {
	case 0: // different callees
		b.WriteString("extern void s_a(int x);\nextern void s_b(int x);\nextern void s_c(int x);\n")
		fmt.Fprintf(&b, "void %s(int v) {\n\ts_a(v);\n\ts_b(v + 1);\n\ts_c(v + 2);\n\ts_a(v + 9);\n}\n", name)
	case 1: // irregular constants (no common stride)
		irr := []int{3, 7, 8, 21, 22, 40}
		fmt.Fprintf(&b, "void %s(int *a) {\n", name)
		for i, c := range irr {
			fmt.Fprintf(&b, "\ta[%d] = %d;\n", i, c+rng.Intn(3))
		}
		b.WriteString("}\n")
	default: // overlapping writes that forbid reordering lanes
		fmt.Fprintf(&b, "void %s(int *a) {\n", name)
		b.WriteString("\ta[1] = a[0] + 1;\n\ta[0] = a[1] + 2;\n\ta[3] = a[2] + 1;\n\ta[2] = a[3] + 2;\n")
		b.WriteString("}\n")
	}
	return b.String()
}

// genPlain: ordinary code with no rolling opportunity. These functions
// carry most of a program's text mass, so they get bulk of their own.
func genPlain(rng *rand.Rand, name string) string {
	var b strings.Builder
	b.WriteString(padDecl)
	bulk := padding(rng, "pl")
	switch rng.Intn(4) {
	case 0:
		fmt.Fprintf(&b, "int %s(int x, int y) {\n%s\tint t = x * 3 + y;\n\tif (t > 100) t -= y * 2;\n\treturn t ^ (x >> 2);\n}\n", name, bulk)
	case 1:
		fmt.Fprintf(&b, "int %s(const int *p, int n) {\n%s\tint best = p[0];\n\tfor (int i = 1; i < n; i++) {\n\t\tif (p[i] > best) best = p[i];\n\t}\n\treturn best;\n}\n", name, bulk)
	case 2:
		fmt.Fprintf(&b, "void %s(int *p, int n, int v) {\n%s\tfor (int i = 0; i < n; i++)\n\t\tp[i] = p[i] * v + i;\n}\n", name, bulk)
	default:
		fmt.Fprintf(&b, "int %s(int a0, int b0) {\n%s\tint s = a0 + b0;\n\tint d_ = a0 - b0;\n\treturn s * d_;\n}\n", name, bulk)
	}
	return b.String()
}

// genThin emits the regression-prone shape: a 4-wide run of long stores
// with 32-bit immediates. The profitability model (TTI-style) sees a
// small win; the finer measurement model sees a small loss — reproducing
// the paper's cost-model false positives.
func genThin(rng *rand.Rand, name string) string {
	start := 200 + rng.Intn(5000)
	step := 10 + rng.Intn(60)
	var b strings.Builder
	b.WriteString(padDecl)
	fmt.Fprintf(&b, "void %s(long *a) {\n", name)
	b.WriteString(padding(rng, "np"))
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "\ta[%d] = %d;\n", i, start+i*step)
	}
	b.WriteString("}\n")
	return b.String()
}
