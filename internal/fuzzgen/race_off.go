//go:build !race

package fuzzgen

// raceDelayScale is 1 in regular builds; see race_on.go.
const raceDelayScale = 1
