//go:build race

package fuzzgen

// raceDelayScale stretches the chaos timing defaults under the race
// detector, whose instrumentation slows honest passes by roughly an
// order of magnitude; without the stretch they trip the budget and
// register as spurious degradations.
const raceDelayScale = 10
