// Package fuzzgen implements generative differential testing for the
// RoLAG pipeline: a seeded generator of well-typed mini-C programs
// biased toward rollable shapes, a mutator over existing corpus
// programs, and an oracle that compiles each program through every
// pipeline variant and checks verifier cleanliness, interpreter
// equivalence, and cost-model honesty (see oracle.go).
//
// The generator's contract is strict: Generate is deterministic in
// (seed, budget) and every program it emits compiles. Shapes are drawn
// from the alignment-graph node taxonomy of the paper (§IV.B–C) —
// store runs, call runs, reductions, recurrences, field copies,
// strided writes, guarded updates, min/max select chains — plus plain
// scalar filler, so that the corpus exercises both the rolling
// transformations and their profitability rejections.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Buffer layout contract with internal/interp.Harness: every pointer
// parameter is backed by 512 bytes, so int indices must stay below 128,
// long indices below 64, and the generator keeps base+span comfortably
// inside that.
const (
	maxIntIdx  = 96 // worst-case index through an int pointer
	maxLongIdx = 48 // worst-case index through a long pointer
)

// Generate returns a well-typed mini-C translation unit derived
// deterministically from seed, containing one function "fz" whose body
// has roughly budget statements. The result always compiles.
func Generate(seed int64, budget int) string {
	if budget < 4 {
		budget = 4
	}
	if budget > 96 {
		budget = 96
	}
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	return g.program(budget)
}

type gen struct {
	rng     *rand.Rand
	b       strings.Builder
	locals  int  // running counter for fresh scalar names
	hasStru bool // struct params present
	hasChar bool // char* param present
	hasLong bool // long* param present
	hasFlt  bool // float* param present
}

func (g *gen) program(budget int) string {
	g.hasStru = g.rng.Intn(3) == 0
	g.hasChar = g.rng.Intn(3) == 0
	g.hasLong = g.rng.Intn(4) == 0
	g.hasFlt = g.rng.Intn(5) == 0

	g.b.WriteString("int g_sink;\nint g_tab[32];\n")
	g.b.WriteString("extern void sink2(char *p, int x);\n")
	g.b.WriteString("extern int ext2(int a, int b) pure;\n")
	g.b.WriteString("extern int ext3(int a, int b, int c);\n")
	if g.hasFlt {
		g.b.WriteString("extern float extf(float a) pure;\n")
	}
	if g.hasStru {
		g.b.WriteString("struct S1 {")
		for i := 0; i < 8; i++ {
			fmt.Fprintf(&g.b, " int f%d;", i)
		}
		g.b.WriteString(" };\n")
	}

	params := "int *a, int *b, int x, int y"
	if g.hasLong {
		params += ", long *c"
	}
	if g.hasFlt {
		params += ", float *d"
	}
	if g.hasChar {
		params += ", char *p"
	}
	if g.hasStru {
		params += ", struct S1 *s, struct S1 *t"
	}
	fmt.Fprintf(&g.b, "int fz(%s) {\n", params)
	g.b.WriteString("\tint acc = x;\n")
	budget--

	for budget > 0 {
		budget -= g.shape(budget)
	}

	k := g.rng.Intn(32)
	fmt.Fprintf(&g.b, "\tg_tab[%d] = acc;\n", k)
	g.b.WriteString("\tg_sink = g_sink + acc;\n")
	g.b.WriteString("\treturn acc ^ g_tab[" + fmt.Sprint(g.rng.Intn(8)) + "];\n}\n")
	return g.b.String()
}

// shape emits one pattern and returns the number of statements used.
func (g *gen) shape(budget int) int {
	for {
		switch g.rng.Intn(14) {
		case 0:
			return g.storeRun(budget)
		case 1:
			return g.callRun(budget)
		case 2:
			return g.reduction(budget)
		case 3:
			return g.minMaxChain(budget)
		case 4:
			if !g.hasStru {
				continue
			}
			return g.fieldCopy(budget)
		case 5:
			return g.stridedCopy(budget)
		case 6:
			return g.guarded(budget)
		case 7:
			return g.recurrence(budget)
		case 8:
			return g.smallLoop()
		case 9:
			return g.scalarChain(budget)
		case 10:
			return g.jointRun(budget)
		case 11:
			return g.divMix(budget)
		case 12:
			if !g.hasLong && !g.hasFlt && !g.hasChar {
				continue
			}
			return g.typedRun(budget)
		default:
			return g.globalRun(budget)
		}
	}
}

func (g *gen) run(budget, min, max int) int {
	n := min + g.rng.Intn(max-min+1)
	if n > budget {
		n = budget
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (g *gen) ptr() string {
	if g.rng.Intn(2) == 0 {
		return "a"
	}
	return "b"
}

// intExpr returns a small side-effect-free int expression; lane is the
// position within a run so that consecutive statements form an
// alignable (or deliberately irregular) sequence.
func (g *gen) intExpr(lane int) string {
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprint(g.rng.Intn(2000) - 400)
	case 1:
		return fmt.Sprintf("x * %d + %d", g.rng.Intn(9)+1, lane)
	case 2:
		return fmt.Sprintf("%s[%d] + y", g.ptr(), g.rng.Intn(maxIntIdx))
	case 3:
		return fmt.Sprintf("(x << %d) ^ %d", g.rng.Intn(6), g.rng.Intn(64))
	case 4:
		return fmt.Sprintf("acc + %d", lane*g.rng.Intn(12))
	case 5:
		return fmt.Sprintf("y & %d", g.rng.Intn(255)+1)
	default:
		return fmt.Sprintf("%s[%d] - %s[%d]", g.ptr(), g.rng.Intn(maxIntIdx), g.ptr(), g.rng.Intn(maxIntIdx))
	}
}

// storeRun: the paper's Fig. 1 shape — n consecutive stores with a
// regular (or near-miss irregular) value pattern.
func (g *gen) storeRun(budget int) int {
	n := g.run(budget, 2, 10)
	dst := g.ptr()
	base := g.rng.Intn(maxIntIdx - n)
	regular := g.rng.Intn(4) != 0
	start, step := g.rng.Intn(60), g.rng.Intn(7)+1
	for i := 0; i < n; i++ {
		if regular {
			fmt.Fprintf(&g.b, "\t%s[%d] = %d;\n", dst, base+i, start+i*step)
		} else {
			fmt.Fprintf(&g.b, "\t%s[%d] = %s;\n", dst, base+i, g.intExpr(i))
		}
	}
	return n
}

// callRun: repeated calls to the same external with regular arguments
// (Fig. 3 shape), or an accumulator chain through a pure external.
func (g *gen) callRun(budget int) int {
	n := g.run(budget, 2, 7)
	if g.hasChar && g.rng.Intn(2) == 0 {
		stride := g.rng.Intn(6) + 1
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, "\tsink2(p + %d, %s);\n", i*stride, g.intExpr(i))
		}
		return n
	}
	src := g.ptr()
	base := g.rng.Intn(maxIntIdx - n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\tacc = ext2(acc, %s[%d]);\n", src, base+i)
	}
	return n
}

// reduction: acc += a[i]*b[i] terms, either one wide expression or a
// run of compound assignments (Fig. 11 shape).
func (g *gen) reduction(budget int) int {
	n := g.run(budget, 2, 8)
	base := g.rng.Intn(maxIntIdx - n)
	if g.rng.Intn(2) == 0 {
		g.b.WriteString("\tacc = acc")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, " + a[%d]*b[%d]", base+i, base+i)
		}
		g.b.WriteString(";\n")
		return 1
	}
	op := []string{"+", "^", "|"}[g.rng.Intn(3)]
	src := g.ptr()
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\tacc = acc %s %s[%d];\n", op, src, base+i)
	}
	return n
}

// minMaxChain: select-based min/max reduction (the s314 shape the
// Extensions configuration rolls).
func (g *gen) minMaxChain(budget int) int {
	n := g.run(budget, 2, 6)
	src := g.ptr()
	base := g.rng.Intn(maxIntIdx - n)
	cmp := []string{">", "<"}[g.rng.Intn(2)]
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\tacc = %s[%d] %s acc ? %s[%d] : acc;\n", src, base+i, cmp, src, base+i)
	}
	return n
}

// fieldCopy: homogeneous struct field copies (the Linux KVM shape).
func (g *gen) fieldCopy(budget int) int {
	n := g.run(budget, 2, 8)
	for i := 0; i < n; i++ {
		fi := i % 8
		switch g.rng.Intn(3) {
		case 0:
			fmt.Fprintf(&g.b, "\ts->f%d = t->f%d;\n", fi, fi)
		case 1:
			fmt.Fprintf(&g.b, "\ts->f%d = %s[%d];\n", fi, g.ptr(), g.rng.Intn(maxIntIdx))
		default:
			fmt.Fprintf(&g.b, "\tacc = acc + t->f%d;\n", fi)
		}
	}
	return n
}

// stridedCopy: dst[i*s] = src[i] op k — gep chains with a stride.
func (g *gen) stridedCopy(budget int) int {
	n := g.run(budget, 2, 8)
	stride := g.rng.Intn(3) + 1
	base := g.rng.Intn(maxIntIdx - n*stride - 1)
	dst, src := "a", "b"
	if g.rng.Intn(2) == 0 {
		dst, src = "b", "a"
	}
	k := g.rng.Intn(17)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\t%s[%d] = %s[%d] + %d;\n", dst, base+i*stride, src, base+i, k)
	}
	return n
}

// guarded: if-convertible updates and real branches around stores.
func (g *gen) guarded(budget int) int {
	n := g.run(budget, 2, 6)
	src := g.ptr()
	base := g.rng.Intn(maxIntIdx - n)
	if g.rng.Intn(2) == 0 {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, "\tif (%s[%d] > y) acc = acc + %d;\n", src, base+i, i+1)
		}
	} else {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, "\tif (%s[%d] > y) %s[%d] = y - %d;\n", src, base+i, src, base+i, i)
		}
	}
	return n
}

// recurrence: v = v*k + a[i] chains (second-order seeds, Fig. 4).
func (g *gen) recurrence(budget int) int {
	n := g.run(budget, 2, 7)
	src := g.ptr()
	base := g.rng.Intn(maxIntIdx - n)
	k := g.rng.Intn(5) + 2
	if g.rng.Intn(3) == 0 {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, "\tacc = ext3(acc, %s[%d], %d);\n", src, base+i, i)
		}
		return n
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\tacc = acc * %d + %s[%d];\n", k, src, base+i)
	}
	return n
}

// smallLoop: an already-rolled loop, food for the unroll-then-roll
// variants and the LLVM reroll baseline.
func (g *gen) smallLoop() int {
	iters := g.rng.Intn(14) + 2
	v := fmt.Sprintf("i%d", g.locals)
	g.locals++
	switch g.rng.Intn(3) {
	case 0:
		fmt.Fprintf(&g.b, "\tfor (int %s = 0; %s < %d; %s++) a[%s] = acc + %s;\n", v, v, iters, v, v, v)
	case 1:
		fmt.Fprintf(&g.b, "\tfor (int %s = 0; %s < %d; %s++) acc = acc + b[%s];\n", v, v, iters, v, v)
	default:
		fmt.Fprintf(&g.b, "\tfor (int %s = 0; %s < %d; %s++) a[%s] = b[%s] * x;\n", v, v, iters, v, v, v)
	}
	return 1
}

// scalarChain: plain filler arithmetic that must not roll.
func (g *gen) scalarChain(budget int) int {
	n := g.run(budget, 2, 6)
	v := fmt.Sprintf("t%d", g.locals)
	g.locals++
	fmt.Fprintf(&g.b, "\tint %s = %s;\n", v, g.intExpr(0))
	ops := []string{"+", "^", "*", "-", "|"}
	for i := 1; i < n; i++ {
		fmt.Fprintf(&g.b, "\t%s = %s %s %d;\n", v, v, ops[g.rng.Intn(len(ops))], g.rng.Intn(97)+1)
	}
	fmt.Fprintf(&g.b, "\tacc = acc + %s;\n", v)
	return n + 1
}

// jointRun: two interleaved store runs — the joint-node shape (§IV.C).
func (g *gen) jointRun(budget int) int {
	n := g.run(budget, 2, 5)
	ab := g.rng.Intn(maxIntIdx - n)
	bb := g.rng.Intn(maxIntIdx - n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\ta[%d] = x + %d;\n", ab+i, i)
		fmt.Fprintf(&g.b, "\tb[%d] = y - %d;\n", bb+i, i)
	}
	return 2 * n
}

// divMix: division and remainder with a nonzero divisor in the common
// case; the x-only divisor relies on the harness seeding x in 1..7, so
// mutated corpora can and do turn these into genuine trap sites.
func (g *gen) divMix(budget int) int {
	n := g.run(budget, 1, 4)
	src := g.ptr()
	for i := 0; i < n; i++ {
		base := g.rng.Intn(maxIntIdx)
		switch g.rng.Intn(3) {
		case 0:
			fmt.Fprintf(&g.b, "\tacc = acc + %s[%d] / ((%s[%d] & 7) + 1);\n", src, base, g.ptr(), g.rng.Intn(maxIntIdx))
		case 1:
			fmt.Fprintf(&g.b, "\tacc = acc + %s[%d] %% %d;\n", src, base, g.rng.Intn(9)+2)
		default:
			fmt.Fprintf(&g.b, "\tacc = acc + %s[%d] / x;\n", src, base)
		}
	}
	return n
}

// typedRun: store runs through the long/float/char pointers.
func (g *gen) typedRun(budget int) int {
	n := g.run(budget, 2, 6)
	switch {
	case g.hasLong && (g.rng.Intn(2) == 0 || !g.hasFlt && !g.hasChar):
		base := g.rng.Intn(maxLongIdx - n)
		start, step := g.rng.Intn(5000)+200, g.rng.Intn(60)+10
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, "\tc[%d] = %d;\n", base+i, start+i*step)
		}
	case g.hasFlt && (g.rng.Intn(2) == 0 || !g.hasChar):
		base := g.rng.Intn(maxIntIdx - n)
		for i := 0; i < n; i++ {
			if g.rng.Intn(2) == 0 {
				fmt.Fprintf(&g.b, "\td[%d] = d[%d] * 2.0;\n", base+i, base+i)
			} else {
				fmt.Fprintf(&g.b, "\td[%d] = extf(d[%d]);\n", base+i, base+i)
			}
		}
	default:
		base := g.rng.Intn(256)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&g.b, "\tp[%d] = x + %d;\n", base+i, i)
		}
	}
	return n
}

// globalRun: stores into the int global table, observable through the
// Observation.Globals comparison.
func (g *gen) globalRun(budget int) int {
	n := g.run(budget, 2, 6)
	base := g.rng.Intn(32 - n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "\tg_tab[%d] = %s;\n", base+i, g.intExpr(i))
	}
	return n
}
