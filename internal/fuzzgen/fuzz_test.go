package fuzzgen

import (
	"math/rand"
	"testing"
)

// FuzzGenerated drives the generator: the input is the generator seed
// and budget, so every exercised input is a well-typed program and any
// oracle failure is a real pipeline defect.
func FuzzGenerated(f *testing.F) {
	for s := int64(0); s < 24; s++ {
		f.Add(s, uint16(8+s*3))
	}
	o := &Oracle{Seeds: 2}
	f.Fuzz(func(t *testing.T, seed int64, budget uint16) {
		src := Generate(seed, int(budget%96)+4)
		fail, _ := o.Check(src)
		if fail != nil {
			t.Fatalf("%v\nprogram:\n%s", fail, src)
		}
	})
}

// FuzzMutated starts from a generated program and applies seeded
// mutations, probing irregular, near-miss, and trap-bearing shapes the
// generator avoids. Non-compiling mutants are skipped.
func FuzzMutated(f *testing.F) {
	for s := int64(0); s < 16; s++ {
		f.Add(s, s*31+7, uint8(s%5+1))
	}
	o := &Oracle{Seeds: 2, SkipCompileErrors: true}
	f.Fuzz(func(t *testing.T, seed, mutSeed int64, nmut uint8) {
		src := Mutate(rand.New(rand.NewSource(mutSeed)), Generate(seed, 40), int(nmut%8)+1)
		fail, exercised := o.Check(src)
		if !exercised {
			t.Skip("mutant does not compile")
		}
		if fail != nil {
			t.Fatalf("%v\nprogram:\n%s", fail, src)
		}
	})
}

// FuzzSource feeds raw text to the whole stack, so the coverage-guided
// engine can explore the frontend too. Compile rejections are skips;
// anything that compiles must survive the full differential oracle.
func FuzzSource(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(Generate(s, 24))
	}
	f.Add("int g; void fz(int *a) { a[0] = g; a[1] = g; a[2] = g; }")
	f.Add("int fz(int x) { return 7 / (x - x); }")
	f.Add("struct S { int a; int b; }; int fz(struct S *s) { return s->a + s->b; }")
	f.Add("int fz(int x) { int v[4]; v[0] = x; v[1] = x; v[2] = x; v[3] = x; return v[x & 3]; }")
	o := &Oracle{Seeds: 2, SkipCompileErrors: true}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			t.Skip("oversized input")
		}
		fail, exercised := o.Check(src)
		if !exercised {
			t.Skip("input does not compile")
		}
		if fail != nil {
			t.Fatalf("%v\nprogram:\n%s", fail, src)
		}
	})
}
