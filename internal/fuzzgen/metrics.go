package fuzzgen

import "sync/atomic"

// Package-wide fuzzing counters, updated by every Oracle.Check call in
// the process (native fuzz targets, the rolag-fuzz CLI, and any
// in-service background fuzzing alike). The service metrics registry
// (internal/service) snapshots these into its /metrics output.
var counters struct {
	execs    atomic.Int64
	skipped  atomic.Int64
	failures atomic.Int64

	compile  atomic.Int64
	verify   atomic.Int64
	equiv    atomic.Int64
	cost     atomic.Int64
	panics   atomic.Int64
	degraded atomic.Int64
	remark   atomic.Int64
	backend  atomic.Int64
}

// Counters is a point-in-time snapshot of the fuzzing counters.
type Counters struct {
	// Execs counts oracle runs that exercised the full pipeline.
	Execs int64 `json:"execs"`
	// Skipped counts inputs rejected before the pipeline (compile
	// errors under SkipCompileErrors).
	Skipped int64 `json:"skipped"`
	// Failures counts oracle runs that returned a Failure.
	Failures int64 `json:"failures"`

	// Per-class failure counts.
	FailCompile int64 `json:"fail_compile"`
	FailVerify  int64 `json:"fail_verify"`
	FailEquiv   int64 `json:"fail_equiv"`
	FailCost    int64 `json:"fail_cost"`
	FailPanic   int64 `json:"fail_panic"`
	// FailDegraded counts chaos-contract violations: the Degraded
	// report disagreed with the fault-injection ground truth.
	FailDegraded int64 `json:"fail_degraded"`
	// FailRemark counts remark-honesty violations: the remark stream
	// disagreed with the pipeline's actual rolling decisions.
	FailRemark int64 `json:"fail_remark"`
	// FailBackend counts x86-64 backend violations: a pipeline output
	// failed to lower or encode, or encoding was nondeterministic.
	FailBackend int64 `json:"fail_backend"`
}

// Snapshot returns the current fuzzing counters.
func Snapshot() Counters {
	return Counters{
		Execs:        counters.execs.Load(),
		Skipped:      counters.skipped.Load(),
		Failures:     counters.failures.Load(),
		FailCompile:  counters.compile.Load(),
		FailVerify:   counters.verify.Load(),
		FailEquiv:    counters.equiv.Load(),
		FailCost:     counters.cost.Load(),
		FailPanic:    counters.panics.Load(),
		FailDegraded: counters.degraded.Load(),
		FailRemark:   counters.remark.Load(),
		FailBackend:  counters.backend.Load(),
	}
}

func countFailure(class string) {
	counters.failures.Add(1)
	switch class {
	case ClassCompile:
		counters.compile.Add(1)
	case ClassVerify:
		counters.verify.Add(1)
	case ClassEquiv:
		counters.equiv.Add(1)
	case ClassCost:
		counters.cost.Add(1)
	case ClassPanic:
		counters.panics.Add(1)
	case ClassDegraded:
		counters.degraded.Add(1)
	case ClassRemark:
		counters.remark.Add(1)
	case ClassBackend:
		counters.backend.Add(1)
	}
}
