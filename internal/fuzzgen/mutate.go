package fuzzgen

import (
	"math/rand"
	"regexp"
	"strconv"
	"strings"
)

// Mutate returns a variant of src with up to n random line-level edits:
// duplicating, deleting, or swapping body statements, perturbing
// integer literals, and swapping binary operators. Mutants are NOT
// guaranteed to compile — callers route them through an Oracle with
// SkipCompileErrors set — but the edits are structured so that most do,
// and the ones that do frequently break the regularity the generator
// built in, probing the alignment and profitability boundaries.
func Mutate(rng *rand.Rand, src string, n int) string {
	lines := strings.Split(src, "\n")
	for i := 0; i < n; i++ {
		lines = mutateOnce(rng, lines)
	}
	return strings.Join(lines, "\n")
}

// bodyLines returns the indices of mutable statement lines: indented,
// semicolon-terminated, and not a declaration keeping later lines
// compiling.
func bodyLines(lines []string) []int {
	var idx []int
	for i, l := range lines {
		t := strings.TrimSpace(l)
		if !strings.HasPrefix(l, "\t") || !strings.HasSuffix(t, ";") {
			continue
		}
		if strings.HasPrefix(t, "return") {
			continue
		}
		idx = append(idx, i)
	}
	return idx
}

var intLit = regexp.MustCompile(`\b\d+\b`)

func mutateOnce(rng *rand.Rand, lines []string) []string {
	body := bodyLines(lines)
	if len(body) == 0 {
		return lines
	}
	pick := body[rng.Intn(len(body))]
	switch rng.Intn(5) {
	case 0: // duplicate — lengthens a run or creates a conflicting lane
		out := make([]string, 0, len(lines)+1)
		out = append(out, lines[:pick+1]...)
		out = append(out, lines[pick])
		return append(out, lines[pick+1:]...)
	case 1: // delete — breaks a run or a local's definition
		out := make([]string, 0, len(lines)-1)
		out = append(out, lines[:pick]...)
		return append(out, lines[pick+1:]...)
	case 2: // swap with the next statement — reorders lanes
		for j, b := range body {
			if b == pick && j+1 < len(body) {
				lines[pick], lines[body[j+1]] = lines[body[j+1]], lines[pick]
				break
			}
		}
		return lines
	case 3: // perturb an integer literal
		lits := intLit.FindAllStringIndex(lines[pick], -1)
		if len(lits) == 0 {
			return lines
		}
		span := lits[rng.Intn(len(lits))]
		v, _ := strconv.Atoi(lines[pick][span[0]:span[1]])
		switch rng.Intn(5) {
		case 0:
			v++
		case 1:
			v--
		case 2:
			v *= 2
		case 3:
			v = 0
		default:
			v = rng.Intn(1 << 16)
		}
		if v < 0 {
			v = 0
		}
		lines[pick] = lines[pick][:span[0]] + strconv.Itoa(v) + lines[pick][span[1]:]
		return lines
	default: // swap one binary operator
		ops := []string{" + ", " - ", " * ", " ^ ", " & ", " | "}
		from := ops[rng.Intn(len(ops))]
		to := ops[rng.Intn(len(ops))]
		lines[pick] = strings.Replace(lines[pick], from, to, 1)
		return lines
	}
}
