package fuzzgen

import (
	"testing"

	"rolag"
	"rolag/internal/faultpoint"
)

// TestChaosDegradedContract is the chaos suite: every fault point armed
// at 10% probability over seeded generated programs, asserting zero
// crashes, verifier-clean output, interpreter equivalence of degraded
// results, and Degraded reported iff a fault fired. Run under -race by
// `make race` / `make ci`.
func TestChaosDegradedContract(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	defer faultpoint.Reset()
	faultpoint.Enable(faultpoint.Options{
		Seed:  42,
		Prob:  0.10,
		Stall: DefaultChaosStall,
	})

	oracle := &ChaosOracle{PassBudget: DefaultChaosBudget}
	configs := []rolag.Config{
		{Opt: rolag.OptRoLAG},
		{Opt: rolag.OptRoLAG, Unroll: 8, Flatten: true},
	}
	var firedN, degradedN int
	for i := 0; i < n; i++ {
		src := Generate(int64(1000+i), 40)
		cfg := configs[i%len(configs)]
		fail, fired, degraded := oracle.Check(src, cfg)
		if fail != nil {
			t.Fatalf("seed %d: chaos contract violated: %v", 1000+i, fail)
		}
		if fired {
			firedN++
		}
		if degraded {
			degradedN++
		}
	}
	t.Logf("chaos: %d/%d programs hit faults (all degraded-and-correct)", firedN, n)
	// At 10% per-visit probability over dozens of pass visits per
	// program, a campaign with zero fired faults means the injection is
	// broken, not that we got lucky.
	if firedN == 0 {
		t.Fatal("no faults fired across the whole campaign; fault injection is not reaching the pipeline")
	}
	if degradedN != firedN {
		t.Fatalf("degraded count %d != fired count %d", degradedN, firedN)
	}
}

// TestChaosCleanWithoutFaults checks the oracle itself reports neither
// firing nor degradation when injection is disabled.
func TestChaosCleanWithoutFaults(t *testing.T) {
	faultpoint.Reset()
	oracle := &ChaosOracle{PassBudget: DefaultChaosBudget}
	for i := 0; i < 10; i++ {
		src := Generate(int64(i), 30)
		fail, fired, degraded := oracle.Check(src, rolag.Config{Opt: rolag.OptRoLAG})
		if fail != nil {
			t.Fatalf("seed %d: %v", i, fail)
		}
		if fired || degraded {
			t.Fatalf("seed %d: fired=%v degraded=%v with injection disabled", i, fired, degraded)
		}
	}
}
