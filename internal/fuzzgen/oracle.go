package fuzzgen

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"strings"

	"rolag"
	"rolag/internal/backend"
	"rolag/internal/cc"
	"rolag/internal/costmodel"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

// Failure classes, in roughly increasing order of severity.
const (
	// ClassCompile: the frontend rejected the program (only reported
	// when the oracle requires compilation, i.e. for generated inputs).
	ClassCompile = "compile"
	// ClassVerify: the IR verifier rejected a module mid-pipeline, or a
	// transformation itself returned an error.
	ClassVerify = "verify"
	// ClassEquiv: a transformed module behaves differently from the
	// original under the interpreter — a miscompile.
	ClassEquiv = "equiv"
	// ClassCost: a Result's claimed sizes disagree with re-measuring
	// its module under the cost models — a dishonest report.
	ClassCost = "cost"
	// ClassPanic: some stage panicked.
	ClassPanic = "panic"
	// ClassRemark: the optimization remarks disagree with what the
	// pipeline actually did — a "rolled" remark without a rolled loop in
	// the output, or vice versa.
	ClassRemark = "remark"
	// ClassBackend: the x86-64 backend rejected a module the pipeline
	// produced, or encoding the same module twice yielded different
	// bytes. Determinism here is what lets the serial and parallel
	// service pipelines report identical per-function byte counts.
	ClassBackend = "backend"
)

// Failure describes one oracle-detected defect.
type Failure struct {
	// Class is one of the Class* constants.
	Class string
	// Variant names the pipeline variant that exposed the defect
	// ("" when the defect precedes variant processing).
	Variant string
	// Detail is a human-readable explanation.
	Detail string
}

func (f *Failure) Error() string {
	if f.Variant == "" {
		return fmt.Sprintf("[%s] %s", f.Class, f.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Class, f.Variant, f.Detail)
}

// SameBug reports whether two failures are the same defect for
// reduction purposes: identical class and variant.
func (f *Failure) SameBug(g *Failure) bool {
	return g != nil && f.Class == g.Class && f.Variant == g.Variant
}

// Variant is one pipeline configuration the oracle runs every program
// through.
type Variant struct {
	// Name identifies the variant in Failure reports.
	Name string
	// Unroll, Opt, Options, Flatten mirror rolag.Config.
	Unroll  int
	Opt     rolag.Optimization
	Options *rolag.Options
	Flatten bool
}

// DefaultVariants returns the standard differential matrix: RoLAG under
// its paper defaults, with extensions, with profitability disabled
// (AlwaysRoll stresses correctness of every candidate roll, not just
// the profitable ones), the TSVC-style unroll-then-roll-then-flatten
// pipeline, and the LLVM reroll baseline.
func DefaultVariants() []Variant {
	always := rolag.DefaultOptions()
	always.AlwaysRoll = true
	return []Variant{
		{Name: "rolag", Opt: rolag.OptRoLAG},
		{Name: "rolag-ext", Opt: rolag.OptRoLAG, Options: rolag.Extensions()},
		{Name: "rolag-always", Opt: rolag.OptRoLAG, Options: always},
		{Name: "unroll8-flatten", Unroll: 8, Opt: rolag.OptRoLAG, Flatten: true},
		{Name: "llvm-reroll", Opt: rolag.OptLLVMReroll},
	}
}

// Oracle drives one program through the full differential pipeline.
// The zero value is ready to use with strict compilation.
type Oracle struct {
	// Seeds is the number of interpreter input vectors per function
	// (default 3).
	Seeds int
	// MaxSteps bounds each interpreter run (default 2M).
	MaxSteps int64
	// SkipCompileErrors makes frontend rejections a skip instead of a
	// ClassCompile failure; set for mutated or free-form inputs.
	SkipCompileErrors bool
	// Variants overrides DefaultVariants when non-nil.
	Variants []Variant
}

func (o *Oracle) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	return 3
}

func (o *Oracle) maxSteps() int64 {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 2_000_000
}

func (o *Oracle) variants() []Variant {
	if o.Variants != nil {
		return o.Variants
	}
	return DefaultVariants()
}

// runResult is one baseline interpreter observation (or trap).
type runResult struct {
	obs *interp.Observation
	err error
}

// Check runs src through the whole differential pipeline: compile,
// canonicalize with verification after every pass, then for each
// variant transform, re-verify, check cost-model honesty, and compare
// interpreter behaviour against the canonical module on seeded inputs.
// It returns the first Failure found (nil if the program is clean) and
// whether the input exercised the pipeline at all (false when a
// non-compiling input was skipped).
func (o *Oracle) Check(src string) (fail *Failure, exercised bool) {
	defer func() {
		if r := recover(); r != nil {
			fail = &Failure{Class: ClassPanic, Detail: fmt.Sprintf("%v\n%s", r, debug.Stack())}
			exercised = true
		}
		if fail != nil {
			countFailure(fail.Class)
		}
	}()

	m, err := cc.Compile(src, "fuzz")
	if err != nil {
		if o.SkipCompileErrors {
			counters.skipped.Add(1)
			return nil, false
		}
		counters.execs.Add(1)
		return &Failure{Class: ClassCompile, Detail: err.Error()}, true
	}
	counters.execs.Add(1)
	exercised = true

	if err := m.Verify(); err != nil {
		return &Failure{Class: ClassVerify, Variant: "frontend", Detail: err.Error()}, true
	}
	// Canonicalize with the verifier run after every single pass, so a
	// verifier complaint names the pass that broke the module.
	if f := runPipelineVerified(m, "canon"); f != nil {
		return f, true
	}

	// Baseline observations of the canonical module.
	h := &interp.Harness{MaxSteps: o.maxSteps()}
	base := map[string][]runResult{}
	for _, fn := range m.Funcs {
		if fn.IsDecl() {
			continue
		}
		rs := make([]runResult, o.seeds())
		for s := range rs {
			obs, err := h.Run(m, fn.Name, int64(s)+1)
			rs[s] = runResult{obs: obs, err: err}
		}
		base[fn.Name] = rs
	}

	for _, v := range o.variants() {
		cfg := rolag.Config{
			Name:       "fuzz",
			Unroll:     v.Unroll,
			Opt:        v.Opt,
			Options:    v.Options,
			Flatten:    v.Flatten,
			CloneInput: true,
		}
		res, err := rolag.Optimize(m, cfg)
		if err != nil {
			return &Failure{Class: ClassVerify, Variant: v.Name, Detail: err.Error()}, true
		}
		if f := o.checkCost(v, m, res); f != nil {
			return f, true
		}
		if f := checkBackend(v.Name, res.Module); f != nil {
			return f, true
		}
		if f := o.checkEquiv(v.Name, m, res.Module, base, h); f != nil {
			return f, true
		}
	}

	// Fine-grained post-roll verification: re-run the default RoLAG
	// variant without cleanup (and with remarks on), then apply the
	// cleanup pipeline one pass at a time with the verifier between, so
	// breakage inside the cleanup sequence is attributed to the
	// responsible pass.
	res, err := rolag.Optimize(m, rolag.Config{Name: "fuzz", Opt: rolag.OptRoLAG, SkipCleanup: true, CloneInput: true, Remarks: true})
	if err != nil {
		return &Failure{Class: ClassVerify, Variant: "rolag-nocleanup", Detail: err.Error()}, true
	}
	// Remark honesty: a "rolled" remark exists iff the output actually
	// contains a rolled loop. Cleanup is skipped, so every roll.loop
	// block codegen created is still present to count.
	if f := checkRemarks(res); f != nil {
		return f, true
	}
	if f := runPipelineVerified(res.Module, "postroll"); f != nil {
		return f, true
	}
	if f := checkBackend("rolag-stepwise", res.Module); f != nil {
		return f, true
	}
	if f := o.checkEquiv("rolag-stepwise", m, res.Module, base, h); f != nil {
		return f, true
	}
	return nil, true
}

// checkBackend asserts every pipeline output lowers and encodes through
// the x86-64 backend, and that two independent backend runs over the
// same module produce byte-identical machine code. The engine's serial
// and parallel pipelines both hand their output modules to this
// backend, so per-module determinism is exactly the contract that makes
// their reported byte counts interchangeable.
func checkBackend(variant string, m *ir.Module) *Failure {
	r1, err := backend.Compile(m, nil)
	if err != nil {
		return &Failure{Class: ClassBackend, Variant: variant, Detail: err.Error()}
	}
	r2, err := backend.Compile(m, nil)
	if err != nil {
		return &Failure{Class: ClassBackend, Variant: variant,
			Detail: fmt.Sprintf("second compile of the same module failed: %v", err)}
	}
	if r1.Code.Text != r2.Code.Text || r1.Code.Rodata != r2.Code.Rodata {
		return &Failure{Class: ClassBackend, Variant: variant,
			Detail: fmt.Sprintf("nondeterministic section sizes: text %d vs %d, rodata %d vs %d",
				r1.Code.Text, r2.Code.Text, r1.Code.Rodata, r2.Code.Rodata)}
	}
	for name, fc := range r1.Code.Funcs {
		fc2 := r2.Code.Funcs[name]
		if fc2 == nil {
			return &Failure{Class: ClassBackend, Variant: variant,
				Detail: fmt.Sprintf("@%s encoded once but not twice", name)}
		}
		if !bytes.Equal(fc.Bytes, fc2.Bytes) {
			return &Failure{Class: ClassBackend, Variant: variant,
				Detail: fmt.Sprintf("@%s: nondeterministic encoding (%d vs %d bytes)", name, len(fc.Bytes), len(fc2.Bytes))}
		}
	}
	return nil
}

// checkRemarks asserts the remark stream is an honest record of the
// compilation: the number of "rolled" remarks must equal both the
// Stats.LoopsRolled claim and the number of roll.loop blocks codegen
// left in the (cleanup-free) output module.
func checkRemarks(res *rolag.Result) *Failure {
	rolledRemarks := 0
	for _, r := range res.Remarks {
		if r.Pass == "rolag" && r.Name == "rolled" {
			rolledRemarks++
		}
	}
	claimed := 0
	if res.Stats != nil {
		claimed = res.Stats.LoopsRolled
	}
	loops := 0
	for _, fn := range res.Module.Funcs {
		for _, b := range fn.Blocks {
			if strings.HasPrefix(b.Name, "roll.loop") {
				loops++
			}
		}
	}
	if rolledRemarks != claimed || rolledRemarks != loops {
		return &Failure{Class: ClassRemark, Variant: "rolag-nocleanup",
			Detail: fmt.Sprintf("%d rolled remarks, Stats.LoopsRolled %d, %d roll.loop blocks in output",
				rolledRemarks, claimed, loops)}
	}
	return nil
}

// runPipelineVerified applies the standard pipeline pass by pass,
// verifying the module after each one.
func runPipelineVerified(m *ir.Module, stage string) *Failure {
	for i, p := range passes.Standard().Passes {
		for _, fn := range m.Funcs {
			if fn.IsDecl() {
				continue
			}
			p.Run(fn)
		}
		if err := m.Verify(); err != nil {
			return &Failure{
				Class:   ClassVerify,
				Variant: fmt.Sprintf("%s/%s#%d", stage, p.Name, i),
				Detail:  err.Error(),
			}
		}
	}
	return nil
}

// checkCost asserts that the Result's claimed sizes match re-measuring
// its module under both cost models — the honesty invariant the
// service's cache and the paper's reported reductions both depend on.
func (o *Oracle) checkCost(v Variant, orig *ir.Module, res *rolag.Result) *Failure {
	if got := costmodel.Default().Module(res.Module); got != res.SizeAfter {
		return &Failure{Class: ClassCost, Variant: v.Name,
			Detail: fmt.Sprintf("SizeAfter claims %d, module measures %d", res.SizeAfter, got)}
	}
	if got := costmodel.Binary().Module(res.Module); got != res.BinaryAfter {
		return &Failure{Class: ClassCost, Variant: v.Name,
			Detail: fmt.Sprintf("BinaryAfter claims %d, module measures %d", res.BinaryAfter, got)}
	}
	if v.Unroll < 2 {
		// Without unrolling, "before" is the untouched input module.
		if got := costmodel.Default().Module(orig); got != res.SizeBefore {
			return &Failure{Class: ClassCost, Variant: v.Name,
				Detail: fmt.Sprintf("SizeBefore claims %d, input measures %d", res.SizeBefore, got)}
		}
		if got := costmodel.Binary().Module(orig); got != res.BinaryBefore {
			return &Failure{Class: ClassCost, Variant: v.Name,
				Detail: fmt.Sprintf("BinaryBefore claims %d, input measures %d", res.BinaryBefore, got)}
		}
	}
	return nil
}

// checkEquiv compares the transformed module against the baseline
// observations, function by function and seed by seed.
//
// Trap policy (matching interp.CheckEquiv): a seed on which the
// original traps is skipped — the trapping conditions are undefined
// behaviour in the source language, and legal transformations may both
// remove a trap (DCE of an unused faulting load) and reorder which
// trap fires first, so nothing is checkable once the baseline faults.
// A transformed module failing where the original succeeded is always
// a miscompile.
func (o *Oracle) checkEquiv(variant string, orig, xform *ir.Module, base map[string][]runResult, h *interp.Harness) *Failure {
	for _, fn := range orig.Funcs {
		if fn.IsDecl() {
			continue
		}
		for s, br := range base[fn.Name] {
			seed := int64(s) + 1
			if br.err != nil {
				continue
			}
			xobs, xerr := h.Run(xform, fn.Name, seed)
			if xerr != nil {
				return &Failure{Class: ClassEquiv, Variant: variant,
					Detail: fmt.Sprintf("@%s seed %d: transformed fails (%v) where original succeeds", fn.Name, seed, xerr)}
			}
			if err := interp.Equivalent(br.obs, xobs); err != nil {
				return &Failure{Class: ClassEquiv, Variant: variant,
					Detail: fmt.Sprintf("@%s seed %d: %v", fn.Name, seed, err)}
			}
		}
	}
	return nil
}
