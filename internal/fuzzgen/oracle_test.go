package fuzzgen

import (
	"strings"
	"testing"

	"rolag"
	"rolag/internal/interp"
	"rolag/internal/ir"
)

// baselineFor records the canonical module's observations the way
// Oracle.Check does before entering the variant loop.
func baselineFor(t *testing.T, o *Oracle, h *interp.Harness, m *ir.Module) map[string][]runResult {
	t.Helper()
	base := map[string][]runResult{}
	for _, fn := range m.Funcs {
		if fn.IsDecl() {
			continue
		}
		rs := make([]runResult, o.seeds())
		for s := range rs {
			obs, err := h.Run(m, fn.Name, int64(s)+1)
			rs[s] = runResult{obs: obs, err: err}
		}
		base[fn.Name] = rs
	}
	return base
}

func TestOracleCleanOnGeneratedCorpus(t *testing.T) {
	o := &Oracle{Seeds: 2}
	for seed := int64(0); seed < 12; seed++ {
		src := Generate(seed, int(seed%40)+8)
		fail, exercised := o.Check(src)
		if !exercised {
			t.Fatalf("seed %d: generated program did not compile", seed)
		}
		if fail != nil {
			t.Fatalf("seed %d: %v\n%s", seed, fail, src)
		}
	}
}

func TestOracleStrictCompileFailure(t *testing.T) {
	o := &Oracle{}
	fail, exercised := o.Check("int fz(int x) { return (; }")
	if !exercised || fail == nil || fail.Class != ClassCompile {
		t.Fatalf("want strict compile failure, got %v (exercised=%v)", fail, exercised)
	}
}

func TestOracleSkipsNonCompiling(t *testing.T) {
	o := &Oracle{SkipCompileErrors: true}
	fail, exercised := o.Check("this is not C at all {{{")
	if exercised || fail != nil {
		t.Fatalf("want skip, got %v (exercised=%v)", fail, exercised)
	}
}

func TestCheckEquivCatchesMiscompile(t *testing.T) {
	orig, err := rolag.Compile("int g_r; int fz(int x) { g_r = x; return x + 1; }", "a")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := rolag.Compile("int g_r; int fz(int x) { g_r = x; return x + 2; }", "b")
	if err != nil {
		t.Fatal(err)
	}
	o := &Oracle{Seeds: 2}
	h := &interp.Harness{MaxSteps: o.maxSteps()}
	base := baselineFor(t, o, h, orig)
	fail := o.checkEquiv("test", orig, bad, base, h)
	if fail == nil || fail.Class != ClassEquiv {
		t.Fatalf("want equiv failure, got %v", fail)
	}
	if !strings.Contains(fail.Detail, "@fz") {
		t.Fatalf("failure should name the function: %v", fail)
	}
}

func TestCheckEquivTrapPolicy(t *testing.T) {
	// Original traps (division by a folded zero): the seed is undefined
	// behaviour in the source language, so nothing is checkable —
	// whatever the transformed module does, the comparison is skipped.
	orig, err := rolag.Compile("int fz(int x) { return 7 / (x - x); }", "a")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := rolag.Compile("int fz(int x) { return 0; }", "b")
	if err != nil {
		t.Fatal(err)
	}
	o := &Oracle{Seeds: 2}
	h := &interp.Harness{MaxSteps: o.maxSteps()}
	base := baselineFor(t, o, h, orig)
	if fail := o.checkEquiv("test", orig, clean, base, h); fail != nil {
		t.Fatalf("trapping baseline must skip, got %v", fail)
	}
	if fail := o.checkEquiv("self", orig, orig, base, h); fail != nil {
		t.Fatalf("self-comparison of a trapping program must pass: %v", fail)
	}
	// The strict direction: transformed traps where the original runs
	// clean is always a miscompile.
	cleanBase := baselineFor(t, o, h, clean)
	fail := o.checkEquiv("test", clean, orig, cleanBase, h)
	if fail == nil || fail.Class != ClassEquiv {
		t.Fatalf("want new-trap failure, got %v", fail)
	}
}

func TestCheckCostCatchesDishonestResult(t *testing.T) {
	src := Generate(3, 30)
	m, err := rolag.Compile(src, "cost")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rolag.Optimize(m, rolag.Config{Opt: rolag.OptRoLAG, CloneInput: true})
	if err != nil {
		t.Fatal(err)
	}
	o := &Oracle{}
	v := Variant{Name: "rolag", Opt: rolag.OptRoLAG}
	if fail := o.checkCost(v, m, res); fail != nil {
		t.Fatalf("honest result flagged: %v", fail)
	}
	res.SizeAfter++
	fail := o.checkCost(v, m, res)
	if fail == nil || fail.Class != ClassCost {
		t.Fatalf("want cost failure, got %v", fail)
	}
}

func TestCheckBackendCleanAndCounted(t *testing.T) {
	// Every generated program's pipeline outputs must lower and encode
	// deterministically; checkBackend also runs inside Oracle.Check, so
	// the clean-corpus test exercises it end to end. Here, pin the
	// direct contract plus the failure counter.
	src := Generate(7, 30)
	m, err := rolag.Compile(src, "be")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rolag.Optimize(m, rolag.Config{Opt: rolag.OptRoLAG, CloneInput: true})
	if err != nil {
		t.Fatal(err)
	}
	if fail := checkBackend("rolag", res.Module); fail != nil {
		t.Fatalf("clean module flagged: %v", fail)
	}

	before := Snapshot()
	countFailure(ClassBackend)
	after := Snapshot()
	if after.FailBackend != before.FailBackend+1 {
		t.Errorf("FailBackend = %d, want %d", after.FailBackend, before.FailBackend+1)
	}
	if after.Failures != before.Failures+1 {
		t.Errorf("Failures = %d, want %d", after.Failures, before.Failures+1)
	}
}

func TestCountersAdvance(t *testing.T) {
	before := Snapshot()
	o := &Oracle{Seeds: 1, SkipCompileErrors: true}
	o.Check("not C")
	o.Check(Generate(1, 10))
	after := Snapshot()
	if after.Skipped <= before.Skipped {
		t.Error("skip counter did not advance")
	}
	if after.Execs <= before.Execs {
		t.Error("exec counter did not advance")
	}
}

func TestFailureError(t *testing.T) {
	f := &Failure{Class: ClassEquiv, Variant: "rolag", Detail: "boom"}
	if got := f.Error(); !strings.Contains(got, "equiv") || !strings.Contains(got, "rolag") {
		t.Errorf("unhelpful error string %q", got)
	}
	g := &Failure{Class: ClassEquiv, Variant: "rolag", Detail: "other"}
	if !f.SameBug(g) {
		t.Error("same class+variant should be the same bug")
	}
	if f.SameBug(&Failure{Class: ClassCost, Variant: "rolag"}) {
		t.Error("different class is a different bug")
	}
}
