package fuzzgen

import (
	"math/rand"
	"strings"
	"testing"

	"rolag/internal/cc"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, 40)
		b := Generate(seed, 40)
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGenerateAlwaysCompiles(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		budget := int(seed%90) + 4
		src := Generate(seed, budget)
		if _, err := cc.Compile(src, "gen"); err != nil {
			t.Fatalf("seed %d budget %d: %v\n%s", seed, budget, err, src)
		}
	}
}

func TestGenerateRespectsBudgetClamp(t *testing.T) {
	small := Generate(1, -5)
	if !strings.Contains(small, "int fz(") {
		t.Fatalf("tiny budget still yields a function:\n%s", small)
	}
	big := Generate(1, 10_000)
	if n := strings.Count(big, "\n"); n > 200 {
		t.Fatalf("budget clamp failed: %d lines", n)
	}
}

func TestMutateDeterministic(t *testing.T) {
	src := Generate(7, 40)
	a := Mutate(rand.New(rand.NewSource(3)), src, 5)
	b := Mutate(rand.New(rand.NewSource(3)), src, 5)
	if a != b {
		t.Fatal("same mutation seed produced different mutants")
	}
}

func TestMutateMostlyCompiles(t *testing.T) {
	// Mutants need not all compile, but the edits are tame enough that
	// a clear majority must, or mutation-based fuzzing wastes its time.
	rng := rand.New(rand.NewSource(11))
	ok := 0
	const total = 100
	for i := 0; i < total; i++ {
		src := Generate(int64(i), 30)
		mut := Mutate(rng, src, 1+rng.Intn(4))
		if _, err := cc.Compile(mut, "mut"); err == nil {
			ok++
		}
	}
	if ok < total/2 {
		t.Fatalf("only %d/%d mutants compile", ok, total)
	}
}

func TestMutateChangesProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := Generate(9, 40)
	changed := 0
	for i := 0; i < 20; i++ {
		if Mutate(rng, src, 3) != src {
			changed++
		}
	}
	if changed < 15 {
		t.Fatalf("mutation is a no-op too often: %d/20 changed", changed)
	}
}
