package fuzzgen

import (
	"fmt"
	"runtime/debug"
	"time"

	"rolag"
	"rolag/internal/faultpoint"
	"rolag/internal/interp"
)

// ClassDegraded: the fail-soft Degraded report disagrees with the
// fault-injection ground truth — a fault fired but the result was not
// flagged degraded, or the result claims degradation with no fault.
const ClassDegraded = "degraded"

// ChaosOracle checks the fail-soft pipeline's contract under fault
// injection. For one source program it builds a fault-free reference
// (faults paused), then runs a fail-soft build with the armed fault
// points live, and asserts:
//
//   - no panic escapes the sandbox (zero process crashes),
//   - the degraded output is verifier-clean,
//   - the degraded output is interpreter-equivalent to the reference
//     program — skipping a pass may cost size, never correctness,
//   - Result.Degraded is reported exactly when a fault fired.
//
// Campaigns must be single-threaded: the fault-point subsystem (and
// its Pause) is process-global, and the fired-counter delta attributes
// faults to the one build between reads.
type ChaosOracle struct {
	// Seeds is the number of interpreter input vectors per function
	// (default 3).
	Seeds int
	// MaxSteps bounds each interpreter run (default 2M).
	MaxSteps int64
	// PassBudget is the fail-soft per-pass budget. Keep it well below
	// the armed stall duration so injected stalls are deterministically
	// observed as timeouts, and well above the honest per-pass runtime
	// so nothing degrades without a fault (default 100ms).
	PassBudget time.Duration
}

// DefaultChaosBudget and DefaultChaosStall are the campaign defaults:
// honest passes finish in microseconds, injected stalls in 250ms, so a
// 100ms budget separates the two with two decades of margin each way.
// Race-detector builds stretch both by raceDelayScale to keep the
// margins against the instrumentation slowdown.
const (
	DefaultChaosBudget = 100 * time.Millisecond * raceDelayScale
	DefaultChaosStall  = 250 * time.Millisecond * raceDelayScale
)

func (o *ChaosOracle) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	return 3
}

func (o *ChaosOracle) maxSteps() int64 {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 2_000_000
}

func (o *ChaosOracle) budget() time.Duration {
	if o.PassBudget > 0 {
		return o.PassBudget
	}
	return DefaultChaosBudget
}

// Check runs one program through the chaos contract under cfg (Opt,
// Unroll, Flatten and Options are honored; the fail-soft knobs are
// overridden). It returns the first violation (nil if clean), whether
// any fault fired during the fail-soft build, and whether the build
// reported degradation.
func (o *ChaosOracle) Check(src string, cfg rolag.Config) (fail *Failure, fired, degraded bool) {
	defer func() {
		if r := recover(); r != nil {
			fail = &Failure{Class: ClassPanic, Variant: "chaos",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack())}
		}
		if fail != nil {
			countFailure(fail.Class)
		}
	}()

	// Fault-free reference: the canonical compile of the same program,
	// built with injection paused so it cannot itself degrade.
	resume := faultpoint.Pause()
	ref, err := rolag.Compile(src, "chaos-ref")
	resume()
	if err != nil {
		counters.skipped.Add(1)
		return nil, false, false
	}
	counters.execs.Add(1)

	cfg.Name = "chaos"
	cfg.FailSoft = true
	cfg.PassBudget = o.budget()
	cfg.Guard = nil

	before := faultpoint.Fired()
	res, err := rolag.Build(src, cfg)
	fired = faultpoint.Fired() > before
	if err != nil {
		// With fail-soft on, the only error paths left are the frontend
		// (the reference compiled, so it cannot trip here) and the final
		// fail-hard verifier backstop — either way a sandbox bug.
		return &Failure{Class: ClassVerify, Variant: "chaos",
			Detail: "fail-soft build errored: " + err.Error()}, fired, false
	}
	degraded = res.Degraded != nil

	if err := res.Module.Verify(); err != nil {
		return &Failure{Class: ClassVerify, Variant: "chaos",
			Detail: "degraded module fails verification: " + err.Error()}, fired, degraded
	}

	if degraded != fired {
		detail := "faults fired but Result.Degraded is nil (source compiled clean despite injection)"
		if degraded {
			detail = fmt.Sprintf("Result.Degraded reports %s but no fault fired", res.Degraded)
		}
		return &Failure{Class: ClassDegraded, Variant: "chaos", Detail: detail}, fired, degraded
	}

	// A degraded result must still mean the same program.
	h := &interp.Harness{MaxSteps: o.maxSteps()}
	for _, fn := range ref.Funcs {
		if fn.IsDecl() {
			continue
		}
		if err := interp.CheckEquiv(ref, res.Module, fn.Name, o.seeds(), h); err != nil {
			return &Failure{Class: ClassEquiv, Variant: "chaos",
				Detail: fmt.Sprintf("@%s: %v", fn.Name, err)}, fired, degraded
		}
	}
	return nil, fired, degraded
}
