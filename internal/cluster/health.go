package cluster

// Live membership health. The router keeps a per-shard up/suspect/down
// state machine fed from two signals: a background prober that GETs
// every shard's /readyz on a fixed cadence, and passive outcomes of
// the requests it forwards anyway. Both feed the same transitions —
// any success snaps the shard back to up; consecutive failures demote
// it to suspect and, once they reach DownAfter, to down. Routing
// treats only down as actionable (suspect shards keep their traffic;
// one blip must not drain a warm cache), moving a down shard to the
// back of every successor list so its keyspace fails over proactively
// instead of per-request. A rejoined shard is re-promoted by its next
// successful probe and repopulates warmth via the peer-cache tier and
// its own warm-restart snapshot.

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// ShardState is one shard's tracked health. The zero value (ShardUp)
// is deliberate: a shard starts trusted and must be observed failing
// to lose traffic.
type ShardState int32

const (
	ShardUp ShardState = iota
	ShardSuspect
	ShardDown
)

func (s ShardState) String() string {
	switch s {
	case ShardUp:
		return "up"
	case ShardSuspect:
		return "suspect"
	case ShardDown:
		return "down"
	}
	return "unknown"
}

// Health-prober defaults.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultProbeTimeout  = 500 * time.Millisecond
	DefaultDownAfter     = 3
)

// healthSet tracks every shard's state machine.
type healthSet struct {
	downAfter int

	mu     sync.Mutex
	states map[string]*shardHealth
}

type shardHealth struct {
	state ShardState
	fails int // consecutive failures
}

func newHealthSet(shards []string, downAfter int) *healthSet {
	if downAfter <= 0 {
		downAfter = DefaultDownAfter
	}
	h := &healthSet{downAfter: downAfter, states: make(map[string]*shardHealth, len(shards))}
	for _, s := range shards {
		h.states[s] = &shardHealth{}
	}
	return h
}

// ok records a successful probe or forward. It returns the resulting
// state and whether this observation changed it (so callers can log
// transitions, not every heartbeat).
func (h *healthSet) ok(shard string) (ShardState, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.states[shard]
	if sh == nil {
		return ShardUp, false
	}
	changed := sh.state != ShardUp
	sh.state = ShardUp
	sh.fails = 0
	return sh.state, changed
}

// fail records a failed probe or forward.
func (h *healthSet) fail(shard string) (ShardState, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.states[shard]
	if sh == nil {
		return ShardUp, false
	}
	sh.fails++
	next := ShardSuspect
	if sh.fails >= h.downAfter {
		next = ShardDown
	}
	changed := sh.state != next
	sh.state = next
	return next, changed
}

func (h *healthSet) state(shard string) ShardState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sh := h.states[shard]; sh != nil {
		return sh.state
	}
	return ShardUp
}

// snapshot copies out every shard's state.
func (h *healthSet) snapshot() map[string]ShardState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]ShardState, len(h.states))
	for name, sh := range h.states {
		out[name] = sh.state
	}
	return out
}

// probeLoop probes every shard's /readyz each interval until Close.
func (rt *Router) probeLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for name, base := range rt.shards {
		wg.Add(1)
		go func(name, base string) {
			defer wg.Done()
			rt.recordProbe(name, rt.probeOne(base))
		}(name, base)
	}
	wg.Wait()
}

// probeOne reports whether one shard answered /readyz with 200 within
// the probe timeout. Probes ride the router's shard client, so in the
// chaos harness they cross the same faulty links real requests do.
func (rt *Router) probeOne(base string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) recordProbe(shard string, up bool) {
	if up {
		if state, changed := rt.health.ok(shard); changed {
			rt.logger().Info("shard recovered", "shard", shard, "state", state.String())
		}
		return
	}
	if state, changed := rt.health.fail(shard); changed {
		rt.logger().Warn("shard probe failed", "shard", shard, "state", state.String())
	}
}

// ShardStates exposes the tracked health map (loadgen, /healthz, and
// the router_shard_state gauge).
func (rt *Router) ShardStates() map[string]ShardState { return rt.health.snapshot() }

// orderShards returns succ with down shards moved to the back, order
// otherwise preserved: a proactively-detected failure costs zero
// connection attempts for the keys it does not own. With every shard
// down the original order comes back unchanged — routing of last
// resort beats refusing to route.
func (rt *Router) orderShards(succ []string) []string {
	out := make([]string, 0, len(succ))
	var down []string
	for _, s := range succ {
		if rt.health.state(s) == ShardDown {
			down = append(down, s)
		} else {
			out = append(out, s)
		}
	}
	return append(out, down...)
}
