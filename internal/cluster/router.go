// Package cluster is the rolagd cluster's routing layer: a
// consistent-hash router that fronts N rolagd replicas.
//
// Every request is routed by the same SHA-256 content address the
// engine's cache is indexed by (service.Key), so each shard owns a
// stable slice of the keyspace and its local LRU cache concentrates
// exactly the keys it will be asked for. Batches fan out across shards
// by per-item key ownership and multiplex back in input order. When a
// shard is unreachable the router retries the ring's next shard and
// marks the result degraded — content-addressed keys make any shard's
// answer for a key correct, so failover can never serve a wrong
// result, only a less cache-warm one.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/cluster/ring"
	"rolag/internal/obs"
	"rolag/internal/obs/fleet"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// FailoverPass is the pass name the router appends to a result's
// degradedPasses when the home shard was unreachable and the ring's
// next shard served the request instead. It shares the wire field with
// the engine's fail-soft pass skips so existing degraded-aware clients
// notice shard failover without learning a new field.
const FailoverPass = "router:failover"

// Config assembles a Router.
type Config struct {
	// Shards maps shard names to base URLs; the same membership every
	// replica was started with (-peers), so router and shards agree on
	// key ownership without coordination.
	Shards map[string]string
	// VNodes is the ring's virtual-node count per shard (0 = default).
	VNodes int
	// HTTPClient talks to the shards (nil = a client with Timeout 60s;
	// per-request deadlines still come from the caller's context).
	HTTPClient *http.Client
	// Log receives one structured line per routed request; nil falls
	// back to slog.Default().
	Log *slog.Logger

	// ProbeInterval is the background health prober's cadence (0 =
	// DefaultProbeInterval; negative disables the prober — passive
	// request outcomes still drive the state machine).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// DownAfter is how many consecutive failures demote a shard from
	// suspect to down (0 = DefaultDownAfter).
	DownAfter int

	// ScrapeInterval is the fleet-metrics scrape cadence: how often the
	// router pulls every shard's /v1/cachestats into the /debug/fleet
	// aggregation (0 = DefaultScrapeInterval; negative disables the
	// loop — /debug/fleet?refresh=1 still scrapes on demand).
	ScrapeInterval time.Duration

	// TraceRing, when set, is the router's own span ring instead of the
	// process-default one. Multi-daemon processes (tests, the loadgen
	// fleet harness) need it so router spans and shard spans live in
	// separate rings and stitch into distinct per-process tracks.
	TraceRing *obs.TraceRing

	// Hedge enables tail-latency request hedging on /v1/compile: when
	// the home shard has not answered within its adaptive delay, race a
	// second copy against the key's next ring successor.
	Hedge bool
	// HedgeQuantile picks the latency quantile used as the hedge delay
	// (0 = DefaultHedgeQuantile).
	HedgeQuantile float64
	// HedgeMinDelay / HedgeMaxDelay clamp the adaptive delay (0 =
	// DefaultHedgeMinDelay / DefaultHedgeMaxDelay).
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
}

// Router fronts the shard fleet. Create with New; the Handler serves
// the same /v1 protocol as a single daemon, so clients move from one
// rolagd to a cluster by changing a URL.
type Router struct {
	ring   *ring.Ring
	shards map[string]string
	httpc  *http.Client
	log    *slog.Logger

	health       *healthSet
	probeTimeout time.Duration
	probeStop    chan struct{}
	closeOnce    sync.Once

	hedge         bool
	hedgeQuantile float64
	hedgeMinDelay time.Duration
	hedgeMaxDelay time.Duration
	lat           map[string]*latWindow // per-shard; fixed at startup

	traceRing *obs.TraceRing
	collector *fleet.Collector
	// compileHist/batchHist are the router-observed per-route request
	// latencies (time to first usable shard answer, hops included) —
	// the "duration" leg of the fleet RED view and the SLO gate's
	// comparison point against shard-reported histograms.
	compileHist fleet.Hist
	batchHist   fleet.Hist

	requests     atomic.Int64
	batches      atomic.Int64
	items        atomic.Int64
	failovers    atomic.Int64
	hedgePrimary atomic.Int64
	hedgeWins    atomic.Int64
	hedgeFailed  atomic.Int64
	routed       map[string]*atomic.Int64 // per-shard; fixed at startup
}

// New builds a router over the given shard membership.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	rt := &Router{
		ring:          ring.New(cfg.VNodes),
		shards:        cfg.Shards,
		httpc:         cfg.HTTPClient,
		log:           cfg.Log,
		probeTimeout:  cfg.ProbeTimeout,
		probeStop:     make(chan struct{}),
		hedge:         cfg.Hedge,
		hedgeQuantile: cfg.HedgeQuantile,
		hedgeMinDelay: cfg.HedgeMinDelay,
		hedgeMaxDelay: cfg.HedgeMaxDelay,
		lat:           make(map[string]*latWindow, len(cfg.Shards)),
		routed:        make(map[string]*atomic.Int64, len(cfg.Shards)),
		traceRing:     cfg.TraceRing,
		collector:     fleet.NewCollector(),
	}
	names := make([]string, 0, len(cfg.Shards))
	for name := range cfg.Shards {
		rt.ring.Add(name)
		rt.routed[name] = new(atomic.Int64)
		rt.lat[name] = new(latWindow)
		names = append(names, name)
	}
	rt.health = newHealthSet(names, cfg.DownAfter)
	if rt.httpc == nil {
		rt.httpc = &http.Client{Timeout: 60 * time.Second}
	}
	if rt.probeTimeout <= 0 {
		rt.probeTimeout = DefaultProbeTimeout
	}
	if rt.hedgeQuantile <= 0 || rt.hedgeQuantile >= 1 {
		rt.hedgeQuantile = DefaultHedgeQuantile
	}
	if rt.hedgeMinDelay <= 0 {
		rt.hedgeMinDelay = DefaultHedgeMinDelay
	}
	if rt.hedgeMaxDelay <= 0 {
		rt.hedgeMaxDelay = DefaultHedgeMaxDelay
	}
	if cfg.ProbeInterval >= 0 {
		interval := cfg.ProbeInterval
		if interval == 0 {
			interval = DefaultProbeInterval
		}
		go rt.probeLoop(interval)
	}
	if cfg.ScrapeInterval >= 0 {
		interval := cfg.ScrapeInterval
		if interval == 0 {
			interval = DefaultScrapeInterval
		}
		go rt.scrapeLoop(interval)
	}
	return rt, nil
}

// obsRing resolves the ring router spans land in.
func (rt *Router) obsRing() *obs.TraceRing {
	if rt.traceRing != nil {
		return rt.traceRing
	}
	return obs.DefaultRing()
}

// Close stops the background health prober. Safe to call twice.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.probeStop) })
}

func (rt *Router) logger() *slog.Logger {
	if rt.log != nil {
		return rt.log
	}
	return slog.Default()
}

// Owner exposes ring ownership (used by tests and the loadgen's
// parity reporting).
func (rt *Router) Owner(key string) string { return rt.ring.Owner(key) }

// forwardCtx posts body to one shard's path, forwarding the trace ID,
// and returns the reply. retryable marks transport errors and statuses
// that justify trying the next shard: 5xx (shard broken or draining)
// and 429 (shard saturated — its keyspace neighbor may have capacity).
//
// Every outcome also feeds the health state machine: a served response
// is proof of life, a transport error with a live context or a 5xx is a
// failure. Only 2xx responses feed the hedging latency window, so the
// hedge delay tracks successful-compile latency rather than shed
// turnaround. A canceled context records nothing — a hedge race's loser
// is not evidence about the shard, only about the race.
func (rt *Router) forwardCtx(ctx context.Context, shard, path string, body []byte) (status int, reply []byte, retryable bool, err error) {
	base, ok := rt.shards[shard]
	if !ok {
		return 0, nil, true, fmt.Errorf("cluster: unknown shard %q", shard)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Every router→shard hop gets its own span ID sent downstream as
	// X-Trace-Parent, so the shard's spans attach under this hop in
	// the stitched trace. The hop span records an outcome status — a
	// hedge race's losing leg shows up as "canceled", which explains
	// the tail latency the hedge hid without feeding health evidence.
	tr := obs.TraceFrom(ctx)
	span := obs.Now()
	var hopID string
	if tr.Active() {
		req.Header.Set("X-Trace-Id", tr.ID)
		if !span.IsZero() && obs.TracingEnabled() {
			hopID = obs.NewSpanID()
			req.Header.Set("X-Trace-Parent", hopID)
		}
	}
	hopDone := func(status string) {
		obs.EndHopSpan(tr, "hop:"+shard, span, hopID, path, status)
	}
	start := time.Now()
	resp, err := rt.httpc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			if state, changed := rt.health.fail(shard); changed {
				rt.logger().Warn("shard unreachable", "shard", shard, "state", state.String())
			}
			hopDone("error")
			return 0, nil, true, err
		}
		if errors.Is(ctx.Err(), context.Canceled) {
			hopDone("canceled")
		} else {
			hopDone("error")
		}
		return 0, nil, false, err
	}
	defer resp.Body.Close()
	reply, err = io.ReadAll(resp.Body)
	if err != nil {
		hopDone("error")
		return 0, nil, true, err
	}
	retryable = resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
	if retryable {
		hopDone("error")
	} else {
		hopDone("ok")
	}
	if resp.StatusCode >= 500 {
		if state, changed := rt.health.fail(shard); changed {
			rt.logger().Warn("shard erroring", "shard", shard, "status", resp.StatusCode, "state", state.String())
		}
	} else {
		// Any served response (including 429 — saturated, not dead) is
		// proof of life, but only 2xx feeds the hedge-delay window: a
		// shed 429 turns around in microseconds, and sampling it would
		// drag the quantile down exactly when the fleet is saturated —
		// firing hedges that double load on an already-overloaded fleet.
		if state, changed := rt.health.ok(shard); changed {
			rt.logger().Info("shard recovered", "shard", shard, "state", state.String())
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			rt.lat[shard].add(time.Since(start))
		}
	}
	if retryable {
		err = fmt.Errorf("cluster: shard %s: HTTP %d", shard, resp.StatusCode)
	}
	return resp.StatusCode, reply, retryable, err
}

// handleCompile routes one compile to the key's home shard, failing
// over around the ring when it is unreachable. Shards the health
// tracker knows are down sort to the back of the walk, so a detected
// outage costs zero connection attempts; with hedging enabled each
// attempt may race the next shard in line. A result served by any
// shard other than the ring home is marked degraded (FailoverPass)
// before it is returned.
func (rt *Router) handleCompile(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "reading body: " + err.Error()})
		return
	}
	var cr rolagdapi.CompileRequest
	if err := json.Unmarshal(body, &cr); err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	sreq, err := cr.ToService()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	key := service.Key(&sreq)

	succ := rt.ring.Successors(key, rt.ring.Len())
	home := succ[0]
	order := rt.orderShards(succ)
	var lastErr error
	// Shards seen failing this request — as a primary or as the losing
	// half of a hedged race — are skipped for the rest of the walk: a
	// shard that just failed is not worth another round trip as the next
	// primary (or as a hedge secondary) during an outage.
	failed := make(map[string]bool, len(order))
	for i, shard := range order {
		if failed[shard] {
			continue
		}
		next := ""
		for _, cand := range order[i+1:] {
			if !failed[cand] {
				next = cand
				break
			}
		}
		res := rt.forwardHedged(r.Context(), shard, next, "/v1/compile", body)
		if res.err != nil && res.retryable {
			rt.logger().Warn("shard failed, trying next", "shard", res.shard, "key", key[:16], "err", res.err)
			lastErr = res.err
			failed[res.shard] = true
			for _, s := range res.raceFailed {
				failed[s] = true
			}
			continue
		}
		if res.err != nil && res.status == 0 {
			writeJSON(w, http.StatusBadGateway, rolagdapi.ErrorResponse{Error: res.err.Error()})
			return
		}
		rt.routed[res.shard].Add(1)
		reply := res.reply
		if res.shard != home && res.status == http.StatusOK {
			rt.failovers.Add(1)
			reply = markFailedOver(reply)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		w.Write(reply)
		return
	}
	writeJSON(w, http.StatusBadGateway, rolagdapi.ErrorResponse{Error: fmt.Sprintf("cluster: all shards failed: %v", lastErr)})
}

// markFailedOver rewrites a shard's CompileResponse to record that the
// home shard did not serve it: degraded=true plus the FailoverPass
// marker. The compiled payload is untouched — content addressing makes
// it byte-identical regardless of which shard compiled it.
func markFailedOver(reply []byte) []byte {
	var out rolagdapi.CompileResponse
	if err := json.Unmarshal(reply, &out); err != nil {
		return reply
	}
	out.Degraded = true
	out.DegradedPasses = append(out.DegradedPasses, FailoverPass)
	marked, err := json.Marshal(out)
	if err != nil {
		return reply
	}
	return marked
}

// shardBatch is one shard's slice of a routed batch.
type shardBatch struct {
	shard string
	// idx maps positions in items back to the caller's item order.
	idx   []int
	items []rolagdapi.CompileRequest
}

// handleBatch fans a batch out across shards by key ownership and
// multiplexes per-item results back in input order. When a shard's
// whole sub-batch fails the items are re-grouped onto each item's next
// ring successor (skipping shards already seen failing) and the
// recovered results are marked degraded/failed-over.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.batches.Add(1)
	var br rolagdapi.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(br.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "batch has no items"})
		return
	}
	rt.items.Add(int64(len(br.Items)))
	start := time.Now()

	out := rolagdapi.BatchResponse{Items: make([]rolagdapi.BatchItemResult, len(br.Items))}

	// Items that fail config mapping are answered by the router itself;
	// the rest are grouped by the first shard of their health-ordered
	// successor list — normally the ring home, but a shard the tracker
	// knows is down loses its groups up front instead of per-round.
	// Failover marking compares the serving shard against the ring home
	// (home[i]), so proactively re-routed items are still honestly
	// degraded. Successor lists are computed once per item and consumed
	// left to right as shards fail.
	succ := make([][]string, len(br.Items))
	home := make([]string, len(br.Items))
	groups := make(map[string]*shardBatch)
	for i := range br.Items {
		sreq, err := br.Items[i].ToService()
		if err != nil {
			out.Items[i].Error = err.Error()
			continue
		}
		key := service.Key(&sreq)
		succ[i] = rt.ring.Successors(key, rt.ring.Len())
		home[i] = succ[i][0]
		addToGroup(groups, rt.orderShards(succ[i])[0], i, &br.Items[i])
	}

	down := make(map[string]bool)
	for round := 0; len(groups) > 0 && round < rt.ring.Len(); round++ {
		failed := rt.runGroups(r, groups, br.TimeoutMs, &out, home)
		// Re-group every item of each failed shard onto its next live
		// successor; items with no successors left get a terminal error.
		groups = make(map[string]*shardBatch)
		for _, g := range failed {
			down[g.shard] = true
			rt.logger().Warn("shard sub-batch failed, re-routing", "shard", g.shard, "items", len(g.idx))
			for j, i := range g.idx {
				next := nextShard(succ[i], down)
				if next == "" {
					out.Items[i].Error = fmt.Sprintf("cluster: no live shard for item %d", i)
					continue
				}
				addToGroup(groups, next, i, &g.items[j])
			}
		}
	}
	for _, g := range groups { // rounds exhausted with shards still failing
		for _, i := range g.idx {
			out.Items[i].Error = "cluster: all shards failed"
		}
	}

	out.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, out)
}

func addToGroup(groups map[string]*shardBatch, shard string, i int, item *rolagdapi.CompileRequest) {
	g := groups[shard]
	if g == nil {
		g = &shardBatch{shard: shard}
		groups[shard] = g
	}
	g.idx = append(g.idx, i)
	g.items = append(g.items, *item)
}

// nextShard returns the first successor not known to be down.
func nextShard(succ []string, down map[string]bool) string {
	for _, s := range succ {
		if !down[s] {
			return s
		}
	}
	return ""
}

// runGroups posts every group's sub-batch concurrently, writes
// successful item results into out (marking an item failed-over when
// the shard that served it is not the item's ring home), and returns
// the groups whose shard failed entirely.
func (rt *Router) runGroups(r *http.Request, groups map[string]*shardBatch, timeoutMs int, out *rolagdapi.BatchResponse, home []string) []*shardBatch {
	var (
		mu     sync.Mutex
		failed []*shardBatch
		wg     sync.WaitGroup
	)
	for _, g := range groups {
		wg.Add(1)
		go func(g *shardBatch) {
			defer wg.Done()
			body, err := json.Marshal(rolagdapi.BatchRequest{Items: g.items, TimeoutMs: timeoutMs})
			if err == nil {
				var status int
				var reply []byte
				status, reply, _, err = rt.forwardCtx(r.Context(), g.shard, "/v1/batch", body)
				if err == nil && status == http.StatusOK {
					var sub rolagdapi.BatchResponse
					if err = json.Unmarshal(reply, &sub); err == nil && len(sub.Items) == len(g.idx) {
						rt.routed[g.shard].Add(int64(len(g.idx)))
						// Item results are index-aligned with the sub-batch by
						// the daemon's contract; no lock needed — each item
						// index is owned by exactly one group per round.
						for j, i := range g.idx {
							out.Items[i] = sub.Items[j]
							if g.shard != home[i] {
								rt.failovers.Add(1)
								out.Items[i].FailedOver = true
								out.Items[i].Degraded = true
								out.Items[i].DegradedPasses = append(out.Items[i].DegradedPasses, FailoverPass)
							}
						}
						return
					}
					if err == nil {
						err = fmt.Errorf("cluster: shard %s returned %d items for %d", g.shard, len(sub.Items), len(g.idx))
					}
				} else if err == nil {
					err = fmt.Errorf("cluster: shard %s: HTTP %d", g.shard, status)
				}
			}
			rt.logger().Warn("sub-batch failed", "shard", g.shard, "err", err)
			mu.Lock()
			failed = append(failed, g)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return failed
}

// handleCacheStats aggregates every shard's /v1/cachestats into one
// cluster-wide view: the top-level counters are field-wise sums, the
// per-shard breakdown rides along in Shards. Unreachable shards are
// reported with only their name so a partial cluster is visible, not
// silently smaller.
func (rt *Router) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	names := rt.ring.Shards()
	per := make([]rolagdapi.CacheStats, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			per[i].Shard = name
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.shards[name]+"/v1/cachestats", nil)
			if err != nil {
				return
			}
			resp, err := rt.httpc.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var cs rolagdapi.CacheStats
			if json.NewDecoder(resp.Body).Decode(&cs) == nil {
				cs.Shard = name
				per[i] = cs
			}
		}(i, name)
	}
	wg.Wait()
	total := rolagdapi.CacheStats{Shards: per}
	for i := range per {
		total.Add(&per[i])
	}
	writeJSON(w, http.StatusOK, total)
}

// handleHealth probes every shard's /readyz and reports the fleet.
// The router itself is healthy while it can serve; a dark shard makes
// the fleet "degraded", not down — failover covers its keyspace. The
// live probe results also feed the background health tracker, whose
// current up/suspect/down view rides along in "tracked".
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	names := rt.ring.Shards()
	states := make(map[string]string, len(names))
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := 0
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			state := "unreachable"
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.shards[name]+"/readyz", nil)
			if err == nil {
				if resp, err := rt.httpc.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						state = "ready"
					} else {
						state = fmt.Sprintf("not-ready (%d)", resp.StatusCode)
					}
				}
			}
			rt.recordProbe(name, state == "ready")
			mu.Lock()
			states[name] = state
			if state == "ready" {
				ready++
			}
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	status := "ok"
	if ready < len(names) {
		status = "degraded"
	}
	if ready == 0 {
		status = "down"
	}
	tracked := make(map[string]string, len(names))
	for name, st := range rt.health.snapshot() {
		tracked[name] = st.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"ready":   ready,
		"shards":  states,
		"tracked": tracked,
	})
}

// writeMetrics renders the router counters in Prometheus text format.
func (rt *Router) writeMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("router_requests_total", "Single-compile requests routed.", rt.requests.Load())
	counter("router_batch_requests_total", "Batch requests fanned out.", rt.batches.Load())
	counter("router_batch_items_total", "Batch items multiplexed.", rt.items.Load())
	counter("router_failover_total", "Requests or items served by a non-home shard after failover.", rt.failovers.Load())
	fmt.Fprintf(w, "# HELP router_hedge_total Hedged races by outcome (races never launched count in none).\n")
	fmt.Fprintf(w, "# TYPE router_hedge_total counter\n")
	fmt.Fprintf(w, "router_hedge_total{outcome=%q} %d\n", "primary", rt.hedgePrimary.Load())
	fmt.Fprintf(w, "router_hedge_total{outcome=%q} %d\n", "hedge", rt.hedgeWins.Load())
	fmt.Fprintf(w, "router_hedge_total{outcome=%q} %d\n", "failed", rt.hedgeFailed.Load())
	fmt.Fprintf(w, "# HELP router_routed_total Requests and batch items routed, by shard.\n")
	fmt.Fprintf(w, "# TYPE router_routed_total counter\n")
	names := make([]string, 0, len(rt.routed))
	for name := range rt.routed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "router_routed_total{shard=%q} %d\n", name, rt.routed[name].Load())
	}
	fmt.Fprintf(w, "# HELP router_shard_state Tracked shard health (0=up, 1=suspect, 2=down).\n")
	fmt.Fprintf(w, "# TYPE router_shard_state gauge\n")
	tracked := rt.health.snapshot()
	for _, name := range names {
		fmt.Fprintf(w, "router_shard_state{shard=%q} %d\n", name, int(tracked[name]))
	}
	fmt.Fprintf(w, "# HELP router_shards Shards on the consistent-hash ring.\n")
	fmt.Fprintf(w, "# TYPE router_shards gauge\nrouter_shards %d\n", rt.ring.Len())
	counter("router_trace_dropped_total", "Router trace spans overwritten in the bounded ring before export.",
		int64(rt.obsRing().Dropped()))
	// Fleet latency quantiles per route, from both vantage points: what
	// the router observed end to end and what the shards reported.
	fmt.Fprintf(w, "# HELP router_route_p99_seconds Route p99 latency by vantage (router-observed vs shard-reported fleet merge).\n")
	fmt.Fprintf(w, "# TYPE router_route_p99_seconds gauge\n")
	fmt.Fprintf(w, "router_route_p99_seconds{route=\"/v1/compile\",vantage=\"router\"} %g\n", rt.compileHist.Snapshot().Quantile(0.99))
	fmt.Fprintf(w, "router_route_p99_seconds{route=\"/v1/batch\",vantage=\"router\"} %g\n", rt.batchHist.Snapshot().Quantile(0.99))
	for _, rl := range rt.collector.Routes() {
		fmt.Fprintf(w, "router_route_p99_seconds{route=%q,vantage=\"fleet\"} %g\n", rl.Route, rl.P99Ms/1e3)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// traced mints or adopts the X-Trace-Id exactly like the daemon does,
// so one trace ID follows a request router → shard → engine → passes
// and the shard's /debug/trace export shows router-originated spans
// under the caller's ID.
func (rt *Router) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Junk X-Trace-Id / X-Trace-Parent headers are re-minted or
		// dropped at this boundary, exactly like the daemon's.
		tr := obs.NewTrace(obs.AdoptTraceID(r.Header.Get("X-Trace-Id")))
		tr = tr.InRing(rt.traceRing).WithParent(obs.AdoptSpanID(r.Header.Get("X-Trace-Parent")))
		w.Header().Set("X-Trace-Id", tr.ID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		span := obs.Now()
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		obs.EndSpan(tr, "router:"+r.URL.Path, span, r.Method)
		switch r.URL.Path {
		case "/v1/compile":
			rt.compileHist.Observe(time.Since(start).Seconds())
		case "/v1/batch":
			rt.batchHist.Observe(time.Since(start).Seconds())
		}

		level := slog.LevelDebug
		if r.URL.Path == "/v1/compile" || r.URL.Path == "/v1/batch" {
			level = slog.LevelInfo
		}
		rt.logger().Log(r.Context(), level, "routed",
			"trace", tr.ID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed", time.Since(start),
		)
	})
}

// Handler builds the router's routes behind the tracing middleware.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", rt.handleCompile)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/cachestats", rt.handleCacheStats)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.writeMetrics(w)
	})

	// Fleet telemetry: the aggregated shard view (JSON), the router's
	// own span ring, and the cross-process trace collector.
	mux.HandleFunc("GET /debug/fleet", rt.handleFleet)
	mux.HandleFunc("GET /debug/trace", rt.handleTraceRing)
	mux.HandleFunc("GET /debug/trace/{id}", rt.handleTraceStitch)

	// Runtime profiling — the router is the fleet's hottest single
	// process; it gets the same pprof surface the daemon has had.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return rt.traced(mux)
}
