package cluster

// Request hedging. Tail latency in the cluster is dominated by a few
// slow links (a stalled shard, an injected partition, a GC pause), so
// after waiting one adaptive delay the router launches a second copy of
// a compile to the key's next ring successor and serves whichever
// answer lands first. Content addressing is what makes this safe: both
// shards compute the same bytes for the same key, so the race can only
// change who answers, never what the answer is. The delay adapts per
// shard — a high quantile of that shard's recently observed latencies —
// so hedges fire on genuine stragglers instead of doubling every
// request's load.

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"
)

// Hedging defaults (Config can override quantile and clamps).
const (
	DefaultHedgeQuantile = 0.95
	DefaultHedgeMinDelay = 2 * time.Millisecond
	DefaultHedgeMaxDelay = 250 * time.Millisecond

	// hedgeColdDelay is used until a shard has hedgeMinSamples observed
	// latencies; before that a quantile of noise would misfire.
	hedgeColdDelay  = 25 * time.Millisecond
	hedgeWindowSize = 256
	hedgeMinSamples = 16
)

// latWindow is a fixed-size ring of one shard's recent request
// latencies; quantile() reads the straggler threshold out of it.
type latWindow struct {
	mu      sync.Mutex
	samples [hedgeWindowSize]time.Duration
	n       int // total ever recorded; min(n, len) are valid
}

func (w *latWindow) add(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%hedgeWindowSize] = d
	w.n++
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window, or (0, false) while
// the window has fewer than hedgeMinSamples samples.
func (w *latWindow) quantile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	n := w.n
	if n > hedgeWindowSize {
		n = hedgeWindowSize
	}
	if n < hedgeMinSamples {
		w.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	// Ceiling rank: overestimating the tail delays a hedge slightly,
	// underestimating it doubles load on requests that were fine.
	idx := int(math.Ceil(q * float64(n-1)))
	return buf[idx], true
}

// hedgeDelay is how long to wait on shard before launching the hedge:
// the shard's own high-quantile latency, clamped, or a fixed cold-start
// delay before enough samples exist.
func (rt *Router) hedgeDelay(shard string) time.Duration {
	d := hedgeColdDelay
	if w := rt.lat[shard]; w != nil {
		if q, ok := w.quantile(rt.hedgeQuantile); ok {
			d = q
		}
	}
	if d < rt.hedgeMinDelay {
		d = rt.hedgeMinDelay
	}
	if d > rt.hedgeMaxDelay {
		d = rt.hedgeMaxDelay
	}
	return d
}

// forwardResult is one shard's answer to a forwarded request, tagged
// with the shard that produced it so the caller can mark failover by
// comparing against the key's home.
type forwardResult struct {
	shard     string
	status    int
	reply     []byte
	retryable bool
	err       error
	// raceFailed lists every shard that failed retryably inside a hedged
	// race (primary and/or secondary), so the caller's failover walk can
	// skip shards already known bad instead of retrying one as the next
	// primary. Empty for unhedged calls — res.shard identifies the
	// failure there.
	raceFailed []string
}

// forwardHedged forwards to primary and, if no answer lands within the
// adaptive delay, races a second copy against the key's next successor.
// The first usable (non-retryable) answer wins and the loser's request
// context is canceled. A retryable failure that arrives before the
// hedge fires returns immediately — the caller's serial failover loop
// is the right tool once the primary is known-bad, and it must not
// count as a hedge outcome.
func (rt *Router) forwardHedged(ctx context.Context, primary, secondary, path string, body []byte) forwardResult {
	if !rt.hedge || secondary == "" || secondary == primary {
		status, reply, retryable, err := rt.forwardCtx(ctx, primary, path, body)
		return forwardResult{shard: primary, status: status, reply: reply, retryable: retryable, err: err}
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser's round trip dies with the winner's return

	// Buffered to the number of launches: a loser's send never blocks,
	// so its goroutine exits even though nobody reads the result.
	results := make(chan forwardResult, 2)
	launch := func(shard string) {
		status, reply, retryable, err := rt.forwardCtx(hctx, shard, path, body)
		results <- forwardResult{shard: shard, status: status, reply: reply, retryable: retryable, err: err}
	}
	go launch(primary)

	timer := time.NewTimer(rt.hedgeDelay(primary))
	defer timer.Stop()

	hedged := false
	pending := 1
	var lastFail forwardResult
	var raceFailed []string
	for {
		select {
		case res := <-results:
			pending--
			if res.err == nil && !res.retryable {
				if hedged {
					if res.shard == primary {
						rt.hedgePrimary.Add(1)
					} else {
						rt.hedgeWins.Add(1)
					}
				}
				return res
			}
			if !hedged {
				return res // pre-hedge failure: serial failover's turn
			}
			lastFail = res
			raceFailed = append(raceFailed, res.shard)
			if pending == 0 {
				rt.hedgeFailed.Add(1)
				lastFail.raceFailed = raceFailed
				return lastFail
			}
			// One of the racers failed; the other is still in flight.
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				go launch(secondary)
			}
		}
	}
}

// HedgeTotals reports how hedged races resolved: primary won anyway,
// the hedge won, or both sides failed. Races never launched (the
// common case) are in none of the buckets.
func (rt *Router) HedgeTotals() (primary, hedge, failed int64) {
	return rt.hedgePrimary.Load(), rt.hedgeWins.Load(), rt.hedgeFailed.Load()
}
