package cluster

// Fleet telemetry plane tests: cross-process trace stitching through
// the router's /debug/trace/{id} collector (including a hedged race
// whose losing leg must survive as a canceled span), trace-header
// propagation through batch fan-out and failover, router-side trace-ID
// validation, the /debug/fleet aggregation, the router_* metric
// additions, and the pprof surface.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rolag/internal/obs"
	"rolag/internal/obs/fleet"
	"rolag/internal/rolagdapi"
)

// tracingOn flips the global trace gate for one test. Cluster tests
// share the process-wide gate, but each testCluster records into its
// own rings, so tests stay isolated as long as they don't overlap —
// and package tests run serially.
func tracingOn(t *testing.T) {
	t.Helper()
	obs.EnableTracing(true)
	t.Cleanup(func() { obs.EnableTracing(false) })
}

// get fetches a router URL and returns status + body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// postCompileTraced posts one compile through the router with the
// given X-Trace-Id header and returns the response headers.
func postCompileTraced(t *testing.T, tc *testCluster, cr rolagdapi.CompileRequest, traceID string) http.Header {
	t.Helper()
	body, _ := json.Marshal(cr)
	req, err := http.NewRequest("POST", tc.rsrv.URL+"/v1/compile", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("compile: HTTP %d: %s", resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Header
}

// TestStitchedHedgedTrace is the acceptance-criterion test: a hedged
// compile whose home shard is stalled must produce, via the router's
// GET /debug/trace/{id}, one Chrome trace with a router process track
// AND at least one shard process track — and the losing hedge leg must
// appear as a span with status "canceled". The loser's span lands
// asynchronously (its round trip dies when the winner returns), so the
// test polls the collector.
func TestStitchedHedgedTrace(t *testing.T) {
	tracingOn(t)
	tc := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.Hedge = true
		cfg.ProbeInterval = -1 // no background probes muddying health
	})

	cr := rolagdapi.CompileRequest{Source: src(0)}
	owner := tc.router.Owner(keyOf(t, cr))
	for i := range tc.daemons {
		if tc.daemons[i].ShardID() == owner {
			// Stall the home shard well past the 25ms cold hedge delay so
			// the race fires and the successor wins.
			tc.stall[i].Store(int64(400 * time.Millisecond))
		}
	}

	const traceID = "feedbeeffeedbeef"
	postCompileTraced(t, tc, cr, traceID)

	if _, wins, _ := tc.router.HedgeTotals(); wins == 0 {
		t.Fatal("hedge never won despite a 400ms stalled primary; trace can't show a race")
	}

	deadline := time.Now().Add(5 * time.Second)
	var lastErr string
	for time.Now().Before(deadline) {
		status, body := get(t, tc.rsrv.URL+"/debug/trace/"+traceID)
		if status != http.StatusOK {
			t.Fatalf("GET /debug/trace/%s: HTTP %d: %s", traceID, status, body)
		}
		procs, err := fleet.Processes(body)
		if err != nil {
			t.Fatalf("stitched trace is not valid Chrome JSON: %v", err)
		}
		statuses, err := fleet.SpanStatuses(body)
		if err != nil {
			t.Fatal(err)
		}
		shardTracks := 0
		for name, n := range procs {
			if strings.HasPrefix(name, "shard-") && n > 0 {
				shardTracks++
			}
		}
		canceled := 0
		for _, s := range statuses {
			if s == "canceled" {
				canceled++
			}
		}
		if procs["router"] > 0 && shardTracks >= 1 && canceled >= 1 {
			return // fully stitched, loser visible
		}
		lastErr = fmt.Sprintf("procs=%v statuses=%v", procs, statuses)
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("stitched trace never complete: %s", lastErr)
}

// TestBatchTraceFanout asserts the batch-propagation contract: every
// shard-bound sub-batch request carries the batch's trace ID and a
// distinct, valid parent span ID — including the retry rounds after a
// shard dies mid-cluster.
func TestBatchTraceFanout(t *testing.T) {
	tracingOn(t)
	tc := newTestCluster(t, 3)

	var items []rolagdapi.CompileRequest
	for i := 0; i < 12; i++ {
		items = append(items, rolagdapi.CompileRequest{Source: src(i)})
	}

	const traceID = "beadfacebeadface"
	body, _ := json.Marshal(rolagdapi.BatchRequest{Items: items})
	req, err := http.NewRequest("POST", tc.rsrv.URL+"/v1/batch", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}

	checkFanout := func(since []int, wantTrace string, wantMin int) {
		t.Helper()
		parents := map[string]bool{}
		total := 0
		tc.mu.Lock()
		defer tc.mu.Unlock()
		for i := range tc.allHeaders {
			for _, h := range tc.allHeaders[i][since[i]:] {
				total++
				if got := h.Get("X-Trace-Id"); got != wantTrace {
					t.Errorf("shard %d sub-request carried trace ID %q, want %q", i, got, wantTrace)
				}
				parent := h.Get("X-Trace-Parent")
				if !obs.ValidSpanID(parent) {
					t.Errorf("shard %d sub-request parent %q is not a valid span ID", i, parent)
				}
				if parents[parent] {
					t.Errorf("parent span %q reused across sub-requests; each hop must mint its own", parent)
				}
				parents[parent] = true
			}
		}
		if total < wantMin {
			t.Fatalf("saw %d shard-bound sub-requests, want at least %d", total, wantMin)
		}
	}

	// Round one: items spread over 3 shards, so ≥2 sub-batches, each
	// with the batch's trace ID and its own parent span.
	checkFanout([]int{0, 0, 0}, traceID, 2)

	// Round two: kill the shard owning item 0 and re-send under a new
	// trace ID. The failover rounds must propagate headers identically.
	deadName := tc.router.Owner(keyOf(t, items[0]))
	for i := range tc.daemons {
		if tc.daemons[i].ShardID() == deadName {
			tc.kill(i)
		}
	}
	since := make([]int, len(tc.allHeaders))
	tc.mu.Lock()
	for i := range tc.allHeaders {
		since[i] = len(tc.allHeaders[i])
	}
	tc.mu.Unlock()

	const traceID2 = "cafecafecafecafe"
	req2, err := http.NewRequest("POST", tc.rsrv.URL+"/v1/batch", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Trace-Id", traceID2)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var br rolagdapi.BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	failedOver := 0
	for i, item := range br.Items {
		if item.Error != "" {
			t.Fatalf("item %d failed despite live successors: %s", i, item.Error)
		}
		if item.FailedOver {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Fatal("dead shard owned no items; failover propagation untested")
	}
	// The dead shard's server is closed, so every recorded header is
	// from a live shard: the original sub-batches plus ≥1 failover
	// round, all under the new trace ID with fresh distinct parents.
	checkFanout(since, traceID2, 3)

	// Sanity-check the per-item count metric still adds up.
	if got := tc.router.items.Load(); got < int64(2*len(items)) {
		t.Errorf("router items counter = %d, want ≥ %d", got, 2*len(items))
	}
}

// TestRouterTraceIDValidation mirrors the daemon-side regression: junk
// X-Trace-Id headers must be re-minted at the router boundary, never
// echoed back or forwarded.
func TestRouterTraceIDValidation(t *testing.T) {
	tc := newTestCluster(t, 3)

	junk := []string{
		"short",                 // under 8 chars
		strings.Repeat("a", 65), // over 64 chars
		"ABCDEF0123456789",      // uppercase
		"0123456789abcdeg",      // non-hex
		"0123 6789abcdef",       // whitespace
		"../../../../etc",       // traversal junk
	}
	for _, id := range junk {
		hdr := postCompileTraced(t, tc, rolagdapi.CompileRequest{Source: src(1)}, id)
		got := hdr.Get("X-Trace-Id")
		if got == id {
			t.Errorf("router echoed junk trace ID %q", id)
		}
		if !obs.ValidTraceID(got) {
			t.Errorf("router minted invalid trace ID %q for junk %q", got, id)
		}
	}

	// A valid caller-supplied ID is still honored verbatim.
	hdr := postCompileTraced(t, tc, rolagdapi.CompileRequest{Source: src(2)}, "0123456789abcdef")
	if got := hdr.Get("X-Trace-Id"); got != "0123456789abcdef" {
		t.Errorf("router re-minted a valid trace ID: got %q", got)
	}
}

// TestRouterFleetEndpoint drives traffic, forces a scrape, and checks
// the /debug/fleet document: one row per shard with health state and
// request counts, fleet-merged route latency, and router counters.
func TestRouterFleetEndpoint(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}
	for i := 0; i < 6; i++ {
		if _, err := c.Compile(context.Background(), &rolagdapi.CompileRequest{Source: src(i)}); err != nil {
			t.Fatal(err)
		}
	}

	status, body := get(t, tc.rsrv.URL+"/debug/fleet?refresh=1")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/fleet: HTTP %d: %s", status, body)
	}
	var ov fleet.Overview
	if err := json.Unmarshal(body, &ov); err != nil {
		t.Fatalf("fleet overview not valid JSON: %v", err)
	}
	if len(ov.Shards) != 3 {
		t.Fatalf("fleet overview has %d shard rows, want 3", len(ov.Shards))
	}
	var requests int64
	for _, sh := range ov.Shards {
		if !sh.ScrapeOK {
			t.Errorf("shard %s scrape failed: %s", sh.Shard, sh.ScrapeError)
		}
		if sh.State != "up" {
			t.Errorf("shard %s state %q, want up", sh.Shard, sh.State)
		}
		requests += sh.Requests
	}
	if requests < 6 {
		t.Errorf("fleet-aggregated shard requests = %d, want ≥ 6", requests)
	}
	foundCompile := false
	for _, rl := range ov.Routes {
		if rl.Route == "/v1/compile" {
			foundCompile = true
			if rl.Count < 6 {
				t.Errorf("fleet /v1/compile count = %d, want ≥ 6", rl.Count)
			}
		}
	}
	if !foundCompile {
		t.Error("fleet routes missing /v1/compile")
	}
	if ov.Router.Requests < 6 {
		t.Errorf("router requests counter = %d, want ≥ 6", ov.Router.Requests)
	}
	routerCompile := false
	for _, rl := range ov.Router.Routes {
		if rl.Route == "/v1/compile" && rl.Count >= 6 {
			routerCompile = true
		}
	}
	if !routerCompile {
		t.Error("router-vantage /v1/compile histogram missing or undercounted")
	}
}

// TestRouterMetricsFleetAdditions checks the new Prometheus series:
// the dropped-spans counter and the per-route p99 gauges at both
// vantages (router-observed and fleet-merged).
func TestRouterMetricsFleetAdditions(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}
	if _, err := c.Compile(context.Background(), &rolagdapi.CompileRequest{Source: src(3)}); err != nil {
		t.Fatal(err)
	}
	// Populate the fleet vantage.
	if status, _ := get(t, tc.rsrv.URL+"/debug/fleet?refresh=1"); status != http.StatusOK {
		t.Fatalf("refresh scrape failed: HTTP %d", status)
	}

	status, body := get(t, tc.rsrv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"router_trace_dropped_total",
		`router_route_p99_seconds{route="/v1/compile",vantage="router"}`,
		`router_route_p99_seconds{route="/v1/compile",vantage="fleet"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRouterDebugSurfaces covers the remaining debug mux wiring: pprof
// is mounted, the router's own ring export rejects junk filters, and
// the stitch collector rejects junk IDs.
func TestRouterDebugSurfaces(t *testing.T) {
	tc := newTestCluster(t, 3)

	if status, body := get(t, tc.rsrv.URL+"/debug/pprof/"); status != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("GET /debug/pprof/: HTTP %d, want pprof index", status)
	}
	if status, _ := get(t, tc.rsrv.URL+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: HTTP %d", status)
	}
	if status, _ := get(t, tc.rsrv.URL+"/debug/trace?trace=NOT-HEX"); status != http.StatusBadRequest {
		t.Errorf("junk ring filter: HTTP %d, want 400", status)
	}
	if status, _ := get(t, tc.rsrv.URL+"/debug/trace/NOT-HEX"); status != http.StatusBadRequest {
		t.Errorf("junk stitch ID: HTTP %d, want 400", status)
	}
	// Empty-but-valid stitched trace: a well-formed ID nobody traced
	// still yields valid (empty) Chrome JSON, not an error.
	status, body := get(t, tc.rsrv.URL+"/debug/trace/feedfacefeedface")
	if status != http.StatusOK {
		t.Fatalf("unknown trace ID: HTTP %d", status)
	}
	if procs, err := fleet.Processes(body); err != nil || len(procs) != 0 {
		t.Errorf("unknown trace: procs=%v err=%v, want empty valid trace", procs, err)
	}
}
