package ring

import (
	"fmt"
	"testing"
)

// keys returns n distinct synthetic cache keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func TestOwnerDeterministicAcrossRings(t *testing.T) {
	build := func() *Ring {
		r := New(0)
		// Insertion order must not matter: router and shards may list
		// peers in different orders.
		for _, s := range []string{"b", "a", "c"} {
			r.Add(s)
		}
		return r
	}
	r1, r2 := build(), build()
	for _, k := range keys(1000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("rings disagree on owner of %q: %q vs %q", k, r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestDistribution checks the satellite requirement: over 10k keys at
// 3 shards the per-shard share must stay within 15% of the even split.
func TestDistribution(t *testing.T) {
	r := New(0)
	shards := []string{"shard-a", "shard-b", "shard-c"}
	for _, s := range shards {
		r.Add(s)
	}
	const n = 10000
	counts := make(map[string]int)
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	mean := float64(n) / float64(len(shards))
	for _, s := range shards {
		skew := (float64(counts[s]) - mean) / mean
		if skew < -0.15 || skew > 0.15 {
			t.Errorf("shard %s owns %d keys (skew %+.1f%%, want within ±15%% of %.0f)",
				s, counts[s], 100*skew, mean)
		}
	}
}

// TestJoinMovesOnlyGainedKeys checks minimal movement on join: every
// key that changes owner moves TO the new shard (no churn between
// survivors), and the moved fraction is near 1/(N+1).
func TestJoinMovesOnlyGainedKeys(t *testing.T) {
	const n = 10000
	ks := keys(n)
	r := New(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	before := make(map[string]string, n)
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	r.Add("d")
	moved := 0
	for _, k := range ks {
		after := r.Owner(k)
		if after != before[k] {
			moved++
			if after != "d" {
				t.Fatalf("key %q moved between survivors: %q -> %q", k, before[k], after)
			}
		}
	}
	// Expect ~n/4 moved; allow a factor-of-2 band either way so the
	// test pins "minimal movement" without being flaky about skew.
	if moved < n/8 || moved > n/2 {
		t.Errorf("join moved %d/%d keys, want roughly %d (1/4 of keyspace)", moved, n, n/4)
	}
}

// TestLeaveMovesOnlyOrphanedKeys is the inverse: removing a shard must
// reassign only that shard's keys.
func TestLeaveMovesOnlyOrphanedKeys(t *testing.T) {
	const n = 10000
	ks := keys(n)
	r := New(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	before := make(map[string]string, n)
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	r.Remove("b")
	for _, k := range ks {
		after := r.Owner(k)
		if before[k] != "b" && after != before[k] {
			t.Fatalf("key %q not owned by the removed shard moved: %q -> %q", k, before[k], after)
		}
		if after == "b" {
			t.Fatalf("key %q still owned by removed shard", k)
		}
	}
}

func TestSuccessorsDistinctAndOrdered(t *testing.T) {
	r := New(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	for _, k := range keys(200) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("want 3 successors, got %v", succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("first successor %q is not the owner %q", succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate shard in successors: %v", succ)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("k", 10); len(got) != 3 {
		t.Fatalf("n beyond membership not clamped: %v", got)
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	r := New(4)
	if r.Owner("k") != "" || r.Successors("k", 2) != nil {
		t.Fatal("empty ring must own nothing")
	}
	r.Add("only")
	r.Add("only") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("duplicate Add changed membership: %v", r.Shards())
	}
	for _, k := range keys(50) {
		if r.Owner(k) != "only" {
			t.Fatal("single-shard ring must own every key")
		}
	}
}
