// Package ring is a consistent-hash ring with virtual nodes: the
// key-ownership substrate of the rolagd cluster. Every shard is placed
// on the ring at VNodes pseudo-random points derived from its name, a
// key is owned by the first shard clockwise from the key's point, and
// adding or removing one shard moves only the keys in the arcs that
// shard gains or loses (~1/N of the keyspace), never keys between two
// surviving shards.
//
// The ring is deterministic: two processes that Add the same shard
// names with the same VNodes compute identical ownership for every key.
// That property is load-bearing — the router and every rolagd replica
// each build their own ring from the shared -peers flag and must agree
// on which shard is "home" for a cache key without any coordination.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard. 128 points keeps
// the keyspace skew across 3 shards under ~10% (see TestDistribution)
// while the ring stays small enough that Owner is a binary search over
// a few hundred entries.
const DefaultVNodes = 128

// Ring is a consistent-hash ring. Not safe for concurrent mutation;
// Owner/Successors are safe to call concurrently as long as no
// Add/Remove runs at the same time (cluster membership is fixed at
// startup today, so callers simply build the ring before serving).
type Ring struct {
	vnodes int
	points []point  // sorted by hash
	shards []string // sorted member names
}

type point struct {
	hash  uint64
	shard string
}

// New returns an empty ring with the given virtual-node count per
// shard (<= 0 selects DefaultVNodes).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes}
}

// hash64 maps a string to a ring position. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: ring placement runs only at
// startup and on membership changes, and SHA-256's distribution is
// what keeps per-shard keyspace shares tight.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add places shard on the ring at vnodes points. Adding a present
// shard is a no-op.
func (r *Ring) Add(shard string) {
	for _, s := range r.shards {
		if s == shard {
			return
		}
	}
	r.shards = append(r.shards, shard)
	sort.Strings(r.shards)
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", shard, i)), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove takes shard off the ring. Removing an absent shard is a
// no-op.
func (r *Ring) Remove(shard string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
	for i, s := range r.shards {
		if s == shard {
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			break
		}
	}
}

// Shards returns the member names in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Shards() []string { return r.shards }

// Len returns the number of member shards.
func (r *Ring) Len() int { return len(r.shards) }

// Owner returns the shard that owns key: the first shard clockwise
// from the key's ring position. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].shard
}

// Successors returns up to n distinct shards in ring order starting at
// the key's owner. The second entry is the failover target when the
// owner is down, and so on. n > Len() is clamped.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, idx := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// search returns the index of the first ring point at or clockwise
// from the key's position.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
