package cluster

// End-to-end tests of the routing layer over real in-process shards:
// key-stable routing, byte-for-byte parity with serial compiles
// (single and batch, including remark streams and degraded flags),
// failover through an induced shard failure, trace propagation, and
// cluster-wide cache-stat aggregation.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rolag/internal/daemon"
	"rolag/internal/obs"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// testCluster is a 3-shard cluster plus router, all in-process over
// real HTTP. kill(i) makes shard i unreachable (connection refused);
// refuse/stall toggle softer failure modes per shard.
type testCluster struct {
	router  *Router
	rsrv    *httptest.Server
	daemons []*daemon.Daemon
	shards  []*httptest.Server
	headers []http.Header // last request headers seen per shard (compile/batch only)
	// allHeaders records EVERY compile/batch request's headers per
	// shard, in arrival order — the batch fan-out propagation tests
	// need the full history, not just the last request.
	allHeaders [][]http.Header
	mu         sync.Mutex

	// Per-process span rings: each daemon records into its own ring and
	// the router into routerRing, exactly like separate OS processes
	// would, so trace stitching is end-to-end honest even in-process.
	rings      []*obs.TraceRing
	routerRing *obs.TraceRing

	refuse []atomic.Bool  // shard answers 503 to everything (incl. /readyz)
	stall  []atomic.Int64 // ns to sleep before serving /v1/* (probes unaffected)
	hits   []atomic.Int64 // POST /v1/compile attempts seen, refused or not
}

func newTestCluster(t *testing.T, n int) *testCluster {
	return newTestClusterCfg(t, n, nil)
}

// newTestClusterCfg builds the cluster with a Config hook so tests can
// turn on hedging or speed up the health prober.
func newTestClusterCfg(t *testing.T, n int, mod func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		daemons:    make([]*daemon.Daemon, n),
		shards:     make([]*httptest.Server, n),
		headers:    make([]http.Header, n),
		allHeaders: make([][]http.Header, n),
		rings:      make([]*obs.TraceRing, n),
		routerRing: obs.NewTraceRing(0),
		refuse:     make([]atomic.Bool, n),
		stall:      make([]atomic.Int64, n),
		hits:       make([]atomic.Int64, n),
	}
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		i := i
		tc.shards[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/compile" {
				tc.hits[i].Add(1)
			}
			// Stall applies before refuse so stall+refuse together model a
			// shard that fails slowly (hangs, then errors) — the shape a
			// hedged race needs for both racers to fail.
			if strings.HasPrefix(r.URL.Path, "/v1/") {
				if ns := tc.stall[i].Load(); ns > 0 {
					time.Sleep(time.Duration(ns))
				}
			}
			if tc.refuse[i].Load() {
				http.Error(w, "injected refusal", http.StatusServiceUnavailable)
				return
			}
			if strings.HasPrefix(r.URL.Path, "/v1/compile") || strings.HasPrefix(r.URL.Path, "/v1/batch") {
				tc.mu.Lock()
				tc.headers[i] = r.Header.Clone()
				tc.allHeaders[i] = append(tc.allHeaders[i], r.Header.Clone())
				tc.mu.Unlock()
			}
			tc.daemons[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(tc.shards[i].Close)
		peers[shardName(i)] = tc.shards[i].URL
	}
	for i := 0; i < n; i++ {
		tc.rings[i] = obs.NewTraceRing(0)
		d := daemon.New(daemon.Config{
			Engine:     service.Config{Workers: 2},
			RequestCap: 10 * time.Second,
			ShardID:    shardName(i),
			Peers:      peers,
			TraceRing:  tc.rings[i],
		})
		t.Cleanup(func() { d.Close(context.Background()) })
		tc.daemons[i] = d
	}
	cfg := Config{Shards: peers, TraceRing: tc.routerRing}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	t.Cleanup(rt.Close)
	tc.rsrv = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.rsrv.Close)
	return tc
}

// shardIndex finds the test index of a shard by name.
func (tc *testCluster) shardIndex(t *testing.T, name string) int {
	t.Helper()
	for i := range tc.daemons {
		if tc.daemons[i].ShardID() == name {
			return i
		}
	}
	t.Fatalf("no shard named %s", name)
	return -1
}

func shardName(i int) string { return fmt.Sprintf("shard-%c", 'a'+i) }

// kill makes shard i unreachable.
func (tc *testCluster) kill(i int) { tc.shards[i].Close() }

// src returns a rollable function source, distinct per i.
func src(i int) string {
	return fmt.Sprintf(
		"void f%d(int *a) {\n  a[0] = a[0] + %d;\n  a[1] = a[1] + %d;\n  a[2] = a[2] + %d;\n  a[3] = a[3] + %d;\n}",
		i, i+1, i+1, i+1, i+1)
}

// keyOf computes the request's routing key the same way the router
// does.
func keyOf(t *testing.T, cr rolagdapi.CompileRequest) string {
	t.Helper()
	sreq, err := cr.ToService()
	if err != nil {
		t.Fatal(err)
	}
	return service.Key(&sreq)
}

// serialReference compiles items on a fresh standalone daemon, giving
// the byte-level ground truth a cluster run must match.
func serialReference(t *testing.T, items []rolagdapi.CompileRequest) []rolagdapi.CompileResponse {
	t.Helper()
	d := daemon.New(daemon.Config{Engine: service.Config{Workers: 2}, RequestCap: 10 * time.Second})
	t.Cleanup(func() { d.Close(context.Background()) })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c := &rolagdapi.Client{BaseURL: srv.URL}
	out := make([]rolagdapi.CompileResponse, len(items))
	for i, it := range items {
		resp, err := c.Compile(context.Background(), &it)
		if err != nil {
			t.Fatalf("serial reference item %d: %v", i, err)
		}
		out[i] = *resp
	}
	return out
}

func TestRouterCompileParityAndKeyAffinity(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	var items []rolagdapi.CompileRequest
	for i := 0; i < 9; i++ {
		items = append(items, rolagdapi.CompileRequest{Source: src(i), Remarks: true})
	}
	want := serialReference(t, items)

	for i, it := range items {
		got, err := c.Compile(context.Background(), &it)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got.IR != want[i].IR {
			t.Errorf("item %d IR differs from serial", i)
		}
		if len(got.Remarks) != len(want[i].Remarks) {
			t.Errorf("item %d remarks differ: %d vs %d", i, len(got.Remarks), len(want[i].Remarks))
		}
		if got.Degraded {
			t.Errorf("item %d degraded on a healthy cluster", i)
		}
		if got.CacheHit {
			t.Errorf("item %d: first compile reported a cache hit", i)
		}
	}

	// Identical requests land on the same shard and hit its cache.
	for i, it := range items {
		got, err := c.Compile(context.Background(), &it)
		if err != nil {
			t.Fatalf("repeat item %d: %v", i, err)
		}
		if !got.CacheHit {
			t.Errorf("repeat item %d missed the cache — key routing is not stable", i)
		}
	}

	// Each shard only compiled the keys it owns.
	var compiles int64
	for _, d := range tc.daemons {
		m := d.Engine().Metrics()
		compiles += m.Compiles
		if m.PeerHits+m.PeerMisses != 0 {
			t.Errorf("shard %s consulted a peer under pure router traffic: %+v", d.ShardID(), m)
		}
	}
	if compiles != int64(len(items)) {
		t.Errorf("cluster compiled %d times for %d distinct keys", compiles, len(items))
	}
}

func TestRouterBatchParity(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	var items []rolagdapi.CompileRequest
	for i := 0; i < 12; i++ {
		items = append(items, rolagdapi.CompileRequest{Source: src(i), Remarks: true})
	}
	want := serialReference(t, items)

	got, err := c.CompileBatch(context.Background(), &rolagdapi.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(items) {
		t.Fatalf("batch returned %d items for %d", len(got.Items), len(items))
	}
	shardsSeen := map[string]bool{}
	for i, item := range got.Items {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if item.IR != want[i].IR {
			t.Errorf("item %d IR differs from serial", i)
		}
		if len(item.Remarks) != len(want[i].Remarks) {
			t.Errorf("item %d remarks differ", i)
		}
		if item.Degraded != want[i].Degraded || item.FailedOver {
			t.Errorf("item %d flags differ: degraded=%v failedOver=%v", i, item.Degraded, item.FailedOver)
		}
		if item.Shard == "" {
			t.Errorf("item %d lacks shard attribution", i)
		}
		shardsSeen[item.Shard] = true
		// The serving shard is the key's ring owner.
		if owner := tc.router.Owner(keyOf(t, items[i])); item.Shard != owner {
			t.Errorf("item %d served by %s, ring owner is %s", i, item.Shard, owner)
		}
	}
	if len(shardsSeen) < 2 {
		t.Errorf("12-item batch used %d shards; fan-out is not spreading", len(shardsSeen))
	}
}

// TestRouterBatchShardFailure induces one shard failure mid-cluster:
// the batch must still return every item, re-routed items must be
// marked failed-over/degraded with the FailoverPass marker, and their
// IR must equal the serial compile byte-for-byte ("degraded, never
// wrong").
func TestRouterBatchShardFailure(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	var items []rolagdapi.CompileRequest
	for i := 0; i < 12; i++ {
		items = append(items, rolagdapi.CompileRequest{Source: src(i), Remarks: true})
	}
	want := serialReference(t, items)

	// Kill the shard that owns item 0's key; remember which items it
	// owned so we can assert they (and only they) failed over.
	deadName := tc.router.Owner(keyOf(t, items[0]))
	owned := map[int]bool{}
	for i := range items {
		if tc.router.Owner(keyOf(t, items[i])) == deadName {
			owned[i] = true
		}
	}
	for i := range tc.daemons {
		if tc.daemons[i].ShardID() == deadName {
			tc.kill(i)
		}
	}

	got, err := c.CompileBatch(context.Background(), &rolagdapi.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	failovers := 0
	for i, item := range got.Items {
		if item.Error != "" {
			t.Fatalf("item %d failed despite live successors: %s", i, item.Error)
		}
		if item.IR != want[i].IR {
			t.Errorf("item %d IR differs after failover — failover must never be wrong", i)
		}
		if owned[i] {
			failovers++
			if !item.FailedOver || !item.Degraded {
				t.Errorf("re-routed item %d not marked failed-over/degraded: %+v", i, item)
			}
			marked := false
			for _, p := range item.DegradedPasses {
				if p == FailoverPass {
					marked = true
				}
			}
			if !marked {
				t.Errorf("re-routed item %d missing %q in degradedPasses: %v", i, FailoverPass, item.DegradedPasses)
			}
			if item.Shard == deadName {
				t.Errorf("item %d claims the dead shard served it", i)
			}
		} else if item.FailedOver || item.Degraded {
			t.Errorf("item %d owned by a live shard marked degraded: %+v", i, item)
		}
	}
	if failovers == 0 {
		t.Fatal("the dead shard owned no items; test needs a bigger batch")
	}
	if got := tc.router.failovers.Load(); got != int64(failovers) {
		t.Errorf("router_failover_total = %d, want %d", got, failovers)
	}
}

// TestRouterCompileShardFailure is the single-compile flavor: the
// request fails over to the ring's next shard and comes back marked
// degraded with the failover pass.
func TestRouterCompileShardFailure(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	cr := rolagdapi.CompileRequest{Source: src(0)}
	want := serialReference(t, []rolagdapi.CompileRequest{cr})[0]
	deadName := tc.router.Owner(keyOf(t, cr))
	for i := range tc.daemons {
		if tc.daemons[i].ShardID() == deadName {
			tc.kill(i)
		}
	}
	got, err := c.Compile(context.Background(), &cr)
	if err != nil {
		t.Fatal(err)
	}
	if got.IR != want.IR {
		t.Error("failover result differs from serial compile")
	}
	if !got.Degraded {
		t.Error("failover result not marked degraded")
	}
	found := false
	for _, p := range got.DegradedPasses {
		if p == FailoverPass {
			found = true
		}
	}
	if !found {
		t.Errorf("degradedPasses = %v, want to contain %q", got.DegradedPasses, FailoverPass)
	}
}

// TestForwardCtxLatencySamplesOnly2xx pins the hedge window's diet:
// a shed 429 turns around fast and must not drag the hedge delay down;
// only successful responses count as latency samples.
func TestForwardCtxLatencySamplesOnly2xx(t *testing.T) {
	var status atomic.Int64
	status.Store(http.StatusTooManyRequests)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
	}))
	defer srv.Close()
	rt, err := New(Config{Shards: map[string]string{"s": srv.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if _, _, retryable, err := rt.forwardCtx(context.Background(), "s", "/v1/compile", nil); err == nil || !retryable {
		t.Fatalf("429 response: retryable=%v err=%v, want a retryable error", retryable, err)
	}
	if n := rt.lat["s"].n; n != 0 {
		t.Fatalf("shed 429 recorded %d latency samples, want 0", n)
	}
	status.Store(http.StatusOK)
	if _, _, _, err := rt.forwardCtx(context.Background(), "s", "/v1/compile", nil); err != nil {
		t.Fatal(err)
	}
	if n := rt.lat["s"].n; n != 1 {
		t.Fatalf("200 response recorded %d latency samples, want 1", n)
	}
}

func TestRouterTracePropagation(t *testing.T) {
	tc := newTestCluster(t, 3)

	cr := rolagdapi.CompileRequest{Source: src(0)}
	body, _ := json.Marshal(cr)
	req, err := http.NewRequest("POST", tc.rsrv.URL+"/v1/compile", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "0123456789abcdef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "0123456789abcdef" {
		t.Errorf("router echoed trace ID %q, want the caller's", got)
	}

	// The serving shard must have received the same trace ID.
	owner := tc.router.Owner(keyOf(t, cr))
	for i := range tc.daemons {
		if tc.daemons[i].ShardID() != owner {
			continue
		}
		tc.mu.Lock()
		h := tc.headers[i]
		tc.mu.Unlock()
		if h == nil {
			t.Fatal("owning shard saw no compile request")
		}
		if got := h.Get("X-Trace-Id"); got != "0123456789abcdef" {
			t.Errorf("shard received trace ID %q, want the caller's", got)
		}
	}
}

func TestRouterCacheStatsAggregation(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	var items []rolagdapi.CompileRequest
	for i := 0; i < 6; i++ {
		items = append(items, rolagdapi.CompileRequest{Source: src(i)})
	}
	// Compile everything twice: 6 misses then 6 hits, spread over the
	// fleet.
	for round := 0; round < 2; round++ {
		if _, err := c.CompileBatch(context.Background(), &rolagdapi.BatchRequest{Items: items}); err != nil {
			t.Fatal(err)
		}
	}

	cs, err := c.CacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Shards) != 3 {
		t.Fatalf("aggregate lists %d shards, want 3", len(cs.Shards))
	}
	if cs.Requests != 12 || cs.CacheMisses != 6 || cs.CacheHits != 6 {
		t.Errorf("aggregate = %+v, want 12 requests, 6 misses, 6 hits", cs)
	}
	var sum rolagdapi.CacheStats
	for i := range cs.Shards {
		sum.Add(&cs.Shards[i])
	}
	if sum.Requests != cs.Requests || sum.CacheHits != cs.CacheHits {
		t.Errorf("per-shard breakdown (%+v) does not sum to the aggregate (%+v)", sum, cs)
	}
	if got := cs.HitRate(); got != 0.5 {
		t.Errorf("cluster hit rate = %g, want 0.5", got)
	}
}

func TestRouterMetricsText(t *testing.T) {
	tc := newTestCluster(t, 3)
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}
	if _, err := c.Compile(context.Background(), &rolagdapi.CompileRequest{Source: src(0)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(tc.rsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"router_requests_total 1", "router_failover_total 0",
		"router_routed_total{shard=", "router_shards 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router metrics missing %q:\n%s", want, text)
		}
	}
}

func TestRouterHealthz(t *testing.T) {
	tc := newTestCluster(t, 3)
	get := func() (string, int) {
		resp, err := http.Get(tc.rsrv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Status string            `json:"status"`
			Ready  int               `json:"ready"`
			Shards map[string]string `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Status, out.Ready
	}
	if status, ready := get(); status != "ok" || ready != 3 {
		t.Errorf("healthy fleet: status=%s ready=%d, want ok/3", status, ready)
	}
	tc.kill(1)
	if status, ready := get(); status != "degraded" || ready != 2 {
		t.Errorf("one dead shard: status=%s ready=%d, want degraded/2", status, ready)
	}
}
