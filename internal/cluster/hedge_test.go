package cluster

// Tests of request hedging: the latency window's quantile math, a
// stalled home shard losing the race to its successor (byte-identical
// answer, honestly marked failed-over), and a healthy fast cluster
// never serving a hedged answer in the home shard's place.

import (
	"context"
	"testing"
	"time"

	"rolag/internal/rolagdapi"
)

func TestLatWindowQuantile(t *testing.T) {
	var w latWindow
	if _, ok := w.quantile(0.95); ok {
		t.Fatal("quantile on an empty window must report no data")
	}
	// Below the minimum sample count the window still refuses.
	for i := 0; i < hedgeMinSamples-1; i++ {
		w.add(time.Millisecond)
	}
	if _, ok := w.quantile(0.95); ok {
		t.Fatalf("quantile with %d samples must report no data", hedgeMinSamples-1)
	}
	w.add(100 * time.Millisecond)
	q, ok := w.quantile(0.95)
	if !ok {
		t.Fatal("quantile with enough samples reported no data")
	}
	if q != 100*time.Millisecond {
		t.Fatalf("p95 of 15x1ms+1x100ms = %v, want 100ms", q)
	}
	if q, _ := w.quantile(0.5); q != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", q)
	}
	// The ring wraps: after hedgeWindowSize fast samples the old outlier
	// is gone.
	for i := 0; i < hedgeWindowSize; i++ {
		w.add(2 * time.Millisecond)
	}
	if q, _ := w.quantile(0.99); q != 2*time.Millisecond {
		t.Fatalf("p99 after wrap = %v, want 2ms", q)
	}
}

func TestHedgeDelayClamped(t *testing.T) {
	tc := newTestClusterCfg(t, 2, func(cfg *Config) {
		cfg.ProbeInterval = -1 // no prober; this test never serves traffic
		cfg.Hedge = true
		cfg.HedgeMinDelay = 5 * time.Millisecond
		cfg.HedgeMaxDelay = 50 * time.Millisecond
	})
	rt := tc.router
	// Cold shard: the fixed cold-start delay (25ms) is inside the clamp.
	if d := rt.hedgeDelay("shard-a"); d != hedgeColdDelay {
		t.Fatalf("cold delay = %v, want %v", d, hedgeColdDelay)
	}
	for i := 0; i < hedgeWindowSize; i++ {
		rt.lat["shard-a"].add(time.Second) // a very slow shard...
	}
	if d := rt.hedgeDelay("shard-a"); d != 50*time.Millisecond {
		t.Fatalf("slow-shard delay = %v, want the 50ms clamp", d)
	}
	for i := 0; i < hedgeWindowSize; i++ {
		rt.lat["shard-a"].add(time.Microsecond) // ...then a very fast one
	}
	if d := rt.hedgeDelay("shard-a"); d != 5*time.Millisecond {
		t.Fatalf("fast-shard delay = %v, want the 5ms floor", d)
	}
}

// TestRouterHedgeWinsOnStall is the headline behavior: the home shard
// stalls, the hedge fires to the key's successor, the successor's
// byte-identical answer is served first and marked failed-over, and the
// canceled straggler does not poison the home shard's health.
func TestRouterHedgeWinsOnStall(t *testing.T) {
	tc := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = -1 // isolate hedging from the prober
		cfg.Hedge = true
	})
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	cr := rolagdapi.CompileRequest{Source: src(0)}
	want := serialReference(t, []rolagdapi.CompileRequest{cr})[0]
	home := tc.router.Owner(keyOf(t, cr))
	tc.stall[tc.shardIndex(t, home)].Store(int64(2 * time.Second))

	start := time.Now()
	got, err := c.Compile(context.Background(), &cr)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged compile took %v; the stalled home shard was waited out", elapsed)
	}
	if got.IR != want.IR {
		t.Error("hedged answer differs from serial compile — hedging must never be wrong")
	}
	if !got.Degraded {
		t.Error("answer served by the hedge shard not marked degraded")
	}
	found := false
	for _, p := range got.DegradedPasses {
		if p == FailoverPass {
			found = true
		}
	}
	if !found {
		t.Errorf("degradedPasses = %v, want to contain %q", got.DegradedPasses, FailoverPass)
	}
	_, hedgeWins, _ := tc.router.HedgeTotals()
	if hedgeWins != 1 {
		t.Errorf("hedge wins = %d, want 1", hedgeWins)
	}
	// The loser was canceled by the race, not observed failing: its
	// tracked health must still be up.
	if st := tc.router.ShardStates()[home]; st != ShardUp {
		t.Errorf("stalled home shard demoted to %v by a canceled hedge loser", st)
	}
}

// TestRouterFailoverSkipsRaceFailedShard: when a hedged race fails on
// both the primary and the secondary, the failover walk must advance
// past the secondary — it just failed; retrying it as the next primary
// would spend a round trip on a known-bad shard mid-outage.
func TestRouterFailoverSkipsRaceFailedShard(t *testing.T) {
	tc := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = -1
		cfg.Hedge = true
	})
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	cr := rolagdapi.CompileRequest{Source: src(0)}
	want := serialReference(t, []rolagdapi.CompileRequest{cr})[0]
	// The key's first two successors fail slowly: stall well past the
	// cold hedge delay, then 503. The hedge fires at the secondary, both
	// racers fail, and the walk must go straight to the third shard.
	order := tc.router.ring.Successors(keyOf(t, cr), 3)
	for _, name := range order[:2] {
		i := tc.shardIndex(t, name)
		tc.stall[i].Store(int64(6 * hedgeColdDelay))
		tc.refuse[i].Store(true)
	}

	got, err := c.Compile(context.Background(), &cr)
	if err != nil {
		t.Fatal(err)
	}
	if got.IR != want.IR {
		t.Error("failover answer differs from serial compile")
	}
	if !got.Degraded {
		t.Error("third-shard answer not marked degraded")
	}
	if _, _, failed := tc.router.HedgeTotals(); failed != 1 {
		t.Fatalf("hedge failed-races = %d, want 1 (the race must actually fire and lose)", failed)
	}
	// Each losing racer was contacted exactly once: the secondary in the
	// race, never again as a primary.
	for j, name := range order[:2] {
		if hits := tc.hits[tc.shardIndex(t, name)].Load(); hits != 1 {
			t.Errorf("race-failed shard %d (%s) saw %d compile attempts, want 1", j, name, hits)
		}
	}
}

// TestRouterHedgeQuietOnHealthyCluster pins the no-false-positive side:
// with fast shards, hedged answers never displace the home shard's, so
// nothing is marked degraded and the hedge never wins.
func TestRouterHedgeQuietOnHealthyCluster(t *testing.T) {
	tc := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = -1
		cfg.Hedge = true
		// A high floor keeps a merely slow cold compile (CI under -race)
		// from triggering a race this test asserts never fires.
		cfg.HedgeMinDelay = 300 * time.Millisecond
	})
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}
	for i := 0; i < 6; i++ {
		cr := rolagdapi.CompileRequest{Source: src(i)}
		got, err := c.Compile(context.Background(), &cr)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got.Degraded {
			t.Errorf("item %d degraded on a healthy hedging cluster", i)
		}
	}
	if _, hedgeWins, _ := tc.router.HedgeTotals(); hedgeWins != 0 {
		t.Errorf("hedge wins = %d on a healthy cluster, want 0", hedgeWins)
	}
}
