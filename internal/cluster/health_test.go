package cluster

// Tests of the live-membership layer: the state machine itself, the
// prober demoting a refusing shard to down, proactive routing around a
// down shard (zero connection attempts at the corpse), and re-promotion
// once the shard answers again.

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"rolag/internal/rolagdapi"
)

func TestHealthStateMachine(t *testing.T) {
	h := newHealthSet([]string{"a", "b"}, 3)
	if got := h.state("a"); got != ShardUp {
		t.Fatalf("fresh shard state %v, want up", got)
	}
	if st, changed := h.fail("a"); st != ShardSuspect || !changed {
		t.Fatalf("first failure: %v changed=%v, want suspect/true", st, changed)
	}
	if st, changed := h.fail("a"); st != ShardSuspect || changed {
		t.Fatalf("second failure: %v changed=%v, want suspect/false", st, changed)
	}
	if st, changed := h.fail("a"); st != ShardDown || !changed {
		t.Fatalf("third failure: %v changed=%v, want down/true", st, changed)
	}
	// One success snaps all the way back to up and resets the streak.
	if st, changed := h.ok("a"); st != ShardUp || !changed {
		t.Fatalf("recovery: %v changed=%v, want up/true", st, changed)
	}
	if st, _ := h.fail("a"); st != ShardSuspect {
		t.Fatalf("failure after recovery: %v, want suspect (streak reset)", st)
	}
	if got := h.state("b"); got != ShardUp {
		t.Fatalf("bystander shard state %v, want up", got)
	}
	if st, changed := h.fail("unknown"); st != ShardUp || changed {
		t.Fatalf("unknown shard: %v changed=%v, want up/false", st, changed)
	}
}

// waitForState polls the router's tracked health until shard reaches
// want or the deadline passes.
func waitForState(t *testing.T, rt *Router, shard string, want ShardState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.ShardStates()[shard] == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("shard %s never reached %v (now %v)", shard, want, rt.ShardStates()[shard])
}

func TestRouterProactiveFailoverAndRejoin(t *testing.T) {
	tc := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = 25 * time.Millisecond
		cfg.ProbeTimeout = 200 * time.Millisecond
		cfg.DownAfter = 2
	})
	c := &rolagdapi.Client{BaseURL: tc.rsrv.URL}

	cr := rolagdapi.CompileRequest{Source: src(0)}
	home := tc.router.Owner(keyOf(t, cr))
	idx := tc.shardIndex(t, home)

	// Refuse everything on the home shard; the prober must demote it.
	tc.refuse[idx].Store(true)
	waitForState(t, tc.router, home, ShardDown)

	// A compile for a key the down shard owns is routed around it
	// proactively: served, marked degraded, and the corpse never sees a
	// connection attempt.
	before := tc.hits[idx].Load()
	got, err := c.Compile(context.Background(), &cr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Error("proactively re-routed compile not marked degraded")
	}
	found := false
	for _, p := range got.DegradedPasses {
		if p == FailoverPass {
			found = true
		}
	}
	if !found {
		t.Errorf("degradedPasses = %v, want to contain %q", got.DegradedPasses, FailoverPass)
	}
	if after := tc.hits[idx].Load(); after != before {
		t.Errorf("down shard saw %d new compile attempts; proactive routing must skip it", after-before)
	}

	// The shard answers again: the next probe re-promotes it and its
	// keyspace comes home, undegraded.
	tc.refuse[idx].Store(false)
	waitForState(t, tc.router, home, ShardUp)
	got, err = c.Compile(context.Background(), &cr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Error("compile after rejoin still degraded; keyspace did not come home")
	}
	if tc.hits[idx].Load() == before {
		t.Error("rejoined shard saw no traffic")
	}
}

func TestRouterMetricsHealthAndHedgeSeries(t *testing.T) {
	tc := newTestCluster(t, 3)
	resp, err := tc.rsrv.Client().Get(tc.rsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`router_hedge_total{outcome="primary"} 0`,
		`router_hedge_total{outcome="hedge"} 0`,
		`router_hedge_total{outcome="failed"} 0`,
		`router_shard_state{shard="shard-a"} 0`,
		`router_shard_state{shard="shard-b"} 0`,
		`router_shard_state{shard="shard-c"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
