package cluster

// The router side of the fleet telemetry plane (internal/obs/fleet):
// a scrape loop that pulls every shard's /v1/cachestats into the
// fleet.Collector, the /debug/fleet JSON aggregation, and the
// cross-process trace collector that stitches the router's span ring
// together with every shard's matching trace segment.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"rolag/internal/obs"
	"rolag/internal/obs/fleet"
	"rolag/internal/rolagdapi"
)

// DefaultScrapeInterval is the fleet-metrics scrape cadence when
// Config.ScrapeInterval is zero. Scrapes are one GET per shard, so a
// couple of seconds keeps /debug/fleet near-live without meaningfully
// loading the shards.
const DefaultScrapeInterval = 2 * time.Second

// scrapeTimeout bounds one whole scrape round; a stuck shard must not
// stall the loop past its cadence.
const scrapeTimeout = 5 * time.Second

// scrapeLoop pulls shard stats until Close.
func (rt *Router) scrapeLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-t.C:
			rt.ScrapeNow(context.Background())
		}
	}
}

// ScrapeNow scrapes every shard's /v1/cachestats into the collector
// once, concurrently. Exported for the loadgen harness and tests,
// which need fresh aggregates without waiting out a tick.
func (rt *Router) ScrapeNow(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range rt.ring.Shards() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			rt.scrapeOne(ctx, name)
		}(name)
	}
	wg.Wait()
}

func (rt *Router) scrapeOne(ctx context.Context, name string) {
	now := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.shards[name]+"/v1/cachestats", nil)
	if err != nil {
		rt.collector.RecordError(name, err.Error(), now)
		return
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		rt.collector.RecordError(name, err.Error(), now)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.collector.RecordError(name, fmt.Sprintf("HTTP %d", resp.StatusCode), now)
		return
	}
	var cs rolagdapi.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		rt.collector.RecordError(name, "decoding: "+err.Error(), now)
		return
	}
	rt.collector.Record(name, fleet.ShardObservation{
		Requests:         cs.Requests,
		Errors:           cs.Errors,
		Shed:             cs.Shed,
		Degraded:         cs.Degraded,
		InFlight:         cs.InFlight,
		Hits:             cs.CacheHits + cs.DedupHits,
		Misses:           cs.CacheMisses,
		PeerHits:         cs.PeerHits,
		SnapshotWarmHits: cs.SnapshotWarmHits,
		TraceDropped:     cs.TraceDropped,
		Routes:           cs.Routes,
	}, now)
}

// FleetOverview assembles the /debug/fleet document: per-shard rows
// (scraped counters + the health tracker's state), fleet-merged route
// quantiles, and the router's own counters.
func (rt *Router) FleetOverview() fleet.Overview {
	shards := rt.collector.Shards(time.Now())
	tracked := rt.health.snapshot()
	for i := range shards {
		if st, ok := tracked[shards[i].Shard]; ok {
			shards[i].State = st.String()
		}
	}
	return fleet.Overview{
		Shards: shards,
		Routes: rt.collector.Routes(),
		Router: fleet.RouterStats{
			Requests:     rt.requests.Load(),
			Batches:      rt.batches.Load(),
			Items:        rt.items.Load(),
			Failovers:    rt.failovers.Load(),
			HedgePrimary: rt.hedgePrimary.Load(),
			HedgeWins:    rt.hedgeWins.Load(),
			HedgeFailed:  rt.hedgeFailed.Load(),
			TraceDropped: rt.obsRing().Dropped(),
			Routes: []fleet.RouteLatency{
				routerRoute("/v1/compile", &rt.compileHist),
				routerRoute("/v1/batch", &rt.batchHist),
			},
		},
	}
}

func routerRoute(route string, h *fleet.Hist) fleet.RouteLatency {
	s := h.Snapshot()
	return fleet.RouteLatency{
		Route: route,
		Count: s.Count,
		P50Ms: s.Quantile(0.50) * 1e3,
		P95Ms: s.Quantile(0.95) * 1e3,
		P99Ms: s.Quantile(0.99) * 1e3,
	}
}

// RouterRouteHist exposes the router-observed latency snapshot for one
// route (the SLO gate's router-side series).
func (rt *Router) RouterRouteHist(route string) fleet.HistSnapshot {
	switch route {
	case "/v1/compile":
		return rt.compileHist.Snapshot()
	case "/v1/batch":
		return rt.batchHist.Snapshot()
	}
	return fleet.HistSnapshot{}
}

// FleetRouteHist exposes the fleet-merged shard-reported histogram for
// one route (the SLO gate's shard-side series).
func (rt *Router) FleetRouteHist(route string) fleet.HistSnapshot {
	return rt.collector.RouteHist(route)
}

// handleFleet serves the aggregated fleet view. ?refresh=1 forces a
// synchronous scrape first, so tests and dashboards can opt into
// up-to-the-request freshness.
func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("refresh") != "" {
		rt.ScrapeNow(r.Context())
	}
	writeJSON(w, http.StatusOK, rt.FleetOverview())
}

// handleTraceRing serves the router's own span ring as Chrome trace
// JSON, with the same ?trace=<id> filter shards serve.
func (rt *Router) handleTraceRing(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("trace")
	if filter != "" && !obs.ValidTraceID(filter) {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "invalid trace id"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rt.obsRing().WriteChrome(w, filter)
}

// handleTraceStitch is the cross-process trace collector: it filters
// the router's own ring to the requested trace ID, pulls the matching
// segment from every shard's /debug/trace?trace=<id>, and merges them
// into one Chrome trace with per-process track names. Unreachable
// shards are skipped — a partial stitched trace beats none during the
// exact outages traces are needed most.
func (rt *Router) handleTraceStitch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidTraceID(id) {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "invalid trace id"})
		return
	}

	var own bytes.Buffer
	rt.obsRing().WriteChrome(&own, id)
	segments := []fleet.Segment{{Process: "router", Data: own.Bytes()}}

	names := rt.ring.Shards()
	shardSegs := make([][]byte, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
				rt.shards[name]+"/debug/trace?trace="+id, nil)
			if err != nil {
				return
			}
			resp, err := rt.httpc.Do(req)
			if err != nil {
				rt.logger().Debug("trace segment fetch failed", "shard", name, "trace", id, "err", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				return
			}
			shardSegs[i] = data
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		if shardSegs[i] != nil {
			segments = append(segments, fleet.Segment{Process: name, Data: shardSegs[i]})
		}
	}

	stitched, err := fleet.Stitch(segments)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, rolagdapi.ErrorResponse{Error: "stitching: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(stitched)
}
