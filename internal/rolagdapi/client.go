package rolagdapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client defaults.
const (
	DefaultMaxAttempts = 6
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 3 * time.Second
)

// Client talks to a rolagd instance (or a rolag-router, which serves
// the same protocol) with jittered exponential backoff. Retryable
// outcomes are transport errors, HTTP 429 (load shed) and HTTP 503
// (draining or not ready); a Retry-After header on either — seconds or
// HTTP-date form — is honored as the minimum wait before the next
// attempt. Everything else returns immediately. The zero BaseURL-only
// value is ready to use.
type Client struct {
	// BaseURL is the daemon or router root, e.g. "http://127.0.0.1:8723".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (0 = DefaultMaxAttempts).
	MaxAttempts int
	// BaseDelay/MaxDelay shape the backoff: the wait before attempt n
	// is drawn uniformly from (0, min(MaxDelay, BaseDelay·2ⁿ)] ("full
	// jitter"), so a fleet of shed clients does not retry in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// HTTPError is a non-2xx reply that was not retried (or exhausted its
// retries).
type HTTPError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint (429 and 503
	// replies), zero when absent.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("rolagd: HTTP %d: %s", e.Status, e.Message)
}

// parseRetryAfter decodes a Retry-After header value: either delta
// seconds or an HTTP-date (RFC 7231 §7.1.3). Zero when absent or
// malformed; dates in the past clamp to zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			// HTTP-dates have whole-second resolution, so the server's
			// intended deadline lies anywhere in [at, at+1s). Round up:
			// waiting a fraction too long is honoring the hint, waiting
			// a fraction too little is hammering a shedding server.
			if r := d % time.Second; r != 0 {
				d += time.Second - r
			}
			return d
		}
	}
	return 0
}

// Compile posts one request, retrying shed/unavailable replies with
// backoff until ctx expires or MaxAttempts is reached.
func (c *Client) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	var out CompileResponse
	if err := c.postRetry(ctx, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CompileBatch posts one batch, retrying whole-batch shed/unavailable
// replies with the same backoff as Compile. Per-item failures do not
// trigger retries — they come back in the items' Error fields.
func (c *Client) CompileBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.postRetry(ctx, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CacheStats fetches the server's cache counters (daemon: its own;
// router: the cluster-wide aggregate). No retries: stats probes are
// cheap and callers poll them.
func (c *Client) CacheStats(ctx context.Context) (*CacheStats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/cachestats", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, readHTTPError(hresp)
	}
	var out CacheStats
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("rolagd: decoding cachestats: %w", err)
	}
	return &out, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// postRetry marshals req, posts it to path, and decodes a 200 reply
// into out, retrying retryable failures with full-jitter backoff.
func (c *Client) postRetry(ctx context.Context, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt, lastErr)
			// A retry must never outlive the caller's budget: if the
			// wait (a Retry-After hint can stretch it to seconds)
			// cannot complete before ctx's deadline, give up now with
			// the last real failure instead of sleeping up against the
			// deadline only to fail with a bare context error.
			if deadline, ok := ctx.Deadline(); ok {
				if remaining := time.Until(deadline); remaining <= wait {
					return fmt.Errorf("rolagd: not retrying after %d attempts: backoff %v exceeds the %v left before the context deadline: %w",
						attempt, wait.Round(time.Millisecond), remaining.Round(time.Millisecond), lastErr)
				}
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
		}
		retry, err := c.post(ctx, path, body, out)
		if err == nil {
			return nil
		}
		if !retry {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("rolagd: giving up after %d attempts: %w", attempts, lastErr)
}

// post runs one attempt. retry reports whether the failure is worth
// another try.
func (c *Client) post(ctx context.Context, path string, body []byte, out any) (retry bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		// Transport errors (connection refused, reset) are retryable;
		// context expiry is surfaced as-is by the next sleepCtx.
		return ctx.Err() == nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hresp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("rolagd: decoding response: %w", err)
		}
		if tc, ok := out.(interface{ captureTraceID(string) }); ok {
			tc.captureTraceID(hresp.Header.Get("X-Trace-Id"))
		}
		return false, nil
	}
	herr := readHTTPError(hresp)
	switch hresp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true, herr
	}
	return false, herr
}

// readHTTPError drains a non-2xx reply into an HTTPError, capturing
// the Retry-After hint when present.
func readHTTPError(hresp *http.Response) *HTTPError {
	herr := &HTTPError{
		Status:     hresp.StatusCode,
		RetryAfter: parseRetryAfter(hresp.Header.Get("Retry-After")),
	}
	var eresp ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
	if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
		herr.Message = eresp.Error
	} else {
		herr.Message = string(raw)
	}
	return herr
}

// backoff computes the full-jitter wait before the given attempt,
// respecting a Retry-After hint carried by the previous error.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	max := c.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	ceil := base << uint(attempt-1)
	if ceil > max || ceil <= 0 {
		ceil = max
	}
	d := time.Duration(rand.Int63n(int64(ceil)) + 1)
	if he, ok := lastErr.(*HTTPError); ok && he.RetryAfter > d {
		d = he.RetryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
