package rolagdapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client defaults.
const (
	DefaultMaxAttempts = 6
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 3 * time.Second
)

// Client talks to a rolagd instance with jittered exponential backoff.
// Retryable outcomes are transport errors, HTTP 429 (load shed — the
// server's Retry-After is honored as the minimum wait) and HTTP 503
// (draining or not ready). Everything else returns immediately. The
// zero BaseURL-only value is ready to use.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8723".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per Compile call (0 = DefaultMaxAttempts).
	MaxAttempts int
	// BaseDelay/MaxDelay shape the backoff: the wait before attempt n
	// is drawn uniformly from (0, min(MaxDelay, BaseDelay·2ⁿ)] ("full
	// jitter"), so a fleet of shed clients does not retry in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// HTTPError is a non-2xx reply that was not retried (or exhausted its
// retries).
type HTTPError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint (429 replies), zero
	// when absent.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("rolagd: HTTP %d: %s", e.Status, e.Message)
}

// Compile posts one request, retrying shed/unavailable replies with
// backoff until ctx expires or MaxAttempts is reached.
func (c *Client) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.backoff(attempt, lastErr)); err != nil {
				return nil, err
			}
		}
		resp, retry, err := c.post(ctx, body)
		if err == nil {
			return resp, nil
		}
		if !retry {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rolagd: giving up after %d attempts: %w", attempts, lastErr)
}

// post runs one attempt. retry reports whether the failure is worth
// another try.
func (c *Client) post(ctx context.Context, body []byte) (resp *CompileResponse, retry bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		// Transport errors (connection refused, reset) are retryable;
		// context expiry is surfaced as-is by the next sleepCtx.
		return nil, ctx.Err() == nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusOK {
		var out CompileResponse
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			return nil, false, fmt.Errorf("rolagd: decoding response: %w", err)
		}
		return &out, false, nil
	}
	herr := &HTTPError{Status: hresp.StatusCode}
	var eresp ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
	if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
		herr.Message = eresp.Error
	} else {
		herr.Message = string(raw)
	}
	switch hresp.StatusCode {
	case http.StatusTooManyRequests:
		if ra, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && ra > 0 {
			herr.RetryAfter = time.Duration(ra) * time.Second
		}
		return nil, true, herr
	case http.StatusServiceUnavailable:
		return nil, true, herr
	}
	return nil, false, herr
}

// backoff computes the full-jitter wait before the given attempt,
// respecting a Retry-After hint carried by the previous error.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	max := c.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	ceil := base << uint(attempt-1)
	if ceil > max || ceil <= 0 {
		ceil = max
	}
	d := time.Duration(rand.Int63n(int64(ceil)) + 1)
	if he, ok := lastErr.(*HTTPError); ok && he.RetryAfter > d {
		d = he.RetryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
