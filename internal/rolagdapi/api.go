// Package rolagdapi holds the rolagd wire types and a small retrying
// HTTP client. The daemon (cmd/rolagd) serves these types, the
// experiment drivers (internal/experiments) consume them, and tests on
// both sides share one definition of the protocol.
package rolagdapi

import (
	"fmt"

	"rolag"
	"rolag/internal/obs/fleet"
	rl "rolag/internal/rolag"
	"rolag/internal/service"
)

// CompileConfig is the pipeline selection inside a CompileRequest.
type CompileConfig struct {
	Name string `json:"name,omitempty"`
	// Opt is "none", "llvm" or "rolag" (default "rolag").
	Opt            string `json:"opt,omitempty"`
	Unroll         int    `json:"unroll,omitempty"`
	Flatten        bool   `json:"flatten,omitempty"`
	FastMath       bool   `json:"fastMath,omitempty"`
	AlwaysRoll     bool   `json:"alwaysRoll,omitempty"`
	NoSpecialNodes bool   `json:"noSpecialNodes,omitempty"`
	// Extensions enables the beyond-paper min/max reductions.
	Extensions bool `json:"extensions,omitempty"`
}

// CompileRequest is the POST /v1/compile body.
type CompileRequest struct {
	// Source is mini-C, or textual IR when IR is set.
	Source string        `json:"source"`
	IR     bool          `json:"ir,omitempty"`
	Config CompileConfig `json:"config"`
	// EmitIR asks for the final IR text (default true).
	EmitIR *bool `json:"emitIR,omitempty"`
	// TimeoutMs is the caller's per-request compile deadline in
	// milliseconds. The server clamps it to its own -request-timeout
	// cap; zero means the server default applies.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Remarks asks the server to record optimization remarks — one
	// entry per RoLAG/reroll decision — and return them in the
	// response. The stream is deterministic for a given request, so it
	// caches and deduplicates like any other output.
	Remarks bool `json:"remarks,omitempty"`
	// Format asks for an additional lowered output: "asm" lowers the
	// optimized module through the x86-64 backend and returns the
	// assembly text and measured .text size in the response. Empty
	// means no lowering. Like Remarks, the format joins the cache key.
	Format string `json:"format,omitempty"`
}

// CompileResponse is the POST /v1/compile result.
type CompileResponse struct {
	IR           string  `json:"ir,omitempty"`
	SizeBefore   int     `json:"sizeBefore"`
	SizeAfter    int     `json:"sizeAfter"`
	BinaryBefore int     `json:"binaryBefore"`
	BinaryAfter  int     `json:"binaryAfter"`
	Reduction    float64 `json:"reduction"`
	LoopsRolled  int     `json:"loopsRolled"`
	Rerolled     int     `json:"rerolled"`
	CacheHit     bool    `json:"cacheHit"`
	ElapsedMs    float64 `json:"elapsedMs"`
	// Degraded reports a fail-soft compile: one or more passes were
	// rolled back and skipped, so the output is correct but possibly
	// larger than a healthy pipeline would produce. DegradedPasses
	// lists the distinct skipped pass names.
	Degraded       bool     `json:"degraded"`
	DegradedPasses []string `json:"degradedPasses,omitempty"`
	// NodeCounts is the RoLAG alignment-graph node histogram keyed by
	// the numeric rolag.NodeKind (JSON objects keyed by integers
	// marshal with string keys natively). Present only for opt=rolag.
	NodeCounts map[int]int `json:"nodeCounts,omitempty"`
	// Remarks is the optimization-remark stream (only when the request
	// set remarks). Absent, not empty, when no remarks were produced,
	// so responses round-trip the engine result exactly.
	Remarks []rolag.Remark `json:"remarks,omitempty"`
	// Asm is the x86-64 assembly of the optimized module and TextBytes
	// the measured size of its encoded .text section (only when the
	// request set format=asm). TextBytes is counted from real
	// instruction encodings, unlike binaryAfter which is the cost
	// model's estimate.
	Asm       string `json:"asm,omitempty"`
	TextBytes int64  `json:"textBytes,omitempty"`
	// TraceID is the server's X-Trace-Id response header, captured by
	// the client so callers can fetch the request's stitched trace from
	// the router's /debug/trace/{id} collector. Transport metadata, not
	// part of the response body.
	TraceID string `json:"-"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// BatchRequest is the POST /v1/batch body: one whole module/corpus
// compiled in a single round trip. The daemon fans the items out over
// its worker pool; the router additionally fans them out across shards
// by cache-key ownership. Results always come back in item order.
type BatchRequest struct {
	Items []CompileRequest `json:"items"`
	// TimeoutMs bounds each item's compile (clamped by the server's
	// -request-timeout cap, like CompileRequest.TimeoutMs). Items carry
	// no per-item timeout inside a batch; the batch-level value wins.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// BatchItemResult is one per-function result inside a BatchResponse.
// Exactly one of Error and the embedded CompileResponse payload is
// meaningful: when Error is non-empty the item failed and the other
// fields are zero.
type BatchItemResult struct {
	CompileResponse
	// Error is the item's failure, if any. Batches never fail as a
	// whole on item errors.
	Error string `json:"error,omitempty"`
	// Shard is the shard that served this item (router responses only).
	Shard string `json:"shard,omitempty"`
	// FailedOver reports that the item's home shard was unreachable and
	// the router re-routed it to the ring's next shard. Failed-over
	// items are also marked Degraded so existing clients notice without
	// learning a new field; the output is still byte-identical to a
	// serial compile — only the serving shard changed.
	FailedOver bool `json:"failedOver,omitempty"`
}

// BatchResponse is the POST /v1/batch result. Items is index-aligned
// with the request's Items.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
	// Shard identifies the responding daemon (empty from the router,
	// which multiplexes many shards; per-item attribution is in
	// BatchItemResult.Shard).
	Shard     string  `json:"shard,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
	// TraceID mirrors CompileResponse.TraceID for batches.
	TraceID string `json:"-"`
}

// captureTraceID lets the client thread the X-Trace-Id response header
// into response types without widening every decode path.
func (r *CompileResponse) captureTraceID(id string) { r.TraceID = id }
func (r *BatchResponse) captureTraceID(id string)   { r.TraceID = id }

// CacheStats is the GET /v1/cachestats body: the daemon's own cache
// counters, so cluster-wide hit rates can be computed from the source
// of truth instead of inferred client-side. From the router the same
// endpoint returns the field-wise sum over all shards plus the
// per-shard breakdown.
type CacheStats struct {
	Shard        string `json:"shard,omitempty"`
	Requests     int64  `json:"requests"`
	CacheHits    int64  `json:"cacheHits"`
	DedupHits    int64  `json:"dedupHits"`
	CacheMisses  int64  `json:"cacheMisses"`
	PeerHits     int64  `json:"peerHits"`
	PeerMisses   int64  `json:"peerMisses"`
	Compiles     int64  `json:"compiles"`
	CacheEntries int    `json:"cacheEntries"`
	// Warm-restart snapshot counters: whole-file saves/loads/rejections,
	// entries restored at startup, and cache hits those restored entries
	// went on to serve. Aggregated fleet-wide by the router like the
	// rest of the struct.
	SnapshotSaves    int64 `json:"snapshotSaves,omitempty"`
	SnapshotLoads    int64 `json:"snapshotLoads,omitempty"`
	SnapshotRejected int64 `json:"snapshotRejected,omitempty"`
	SnapshotEntries  int64 `json:"snapshotEntries,omitempty"`
	SnapshotWarmHits int64 `json:"snapshotWarmHits,omitempty"`
	// Fleet-telemetry fields: request outcomes and per-route request
	// latency as the shard itself observed them. The router's scrape
	// loop differentiates the counters into RED rates and merges the
	// route histograms fleet-wide, so /debug/fleet reports quantiles
	// computed from shard-side truth, not router-side inference.
	Errors       int64  `json:"errors,omitempty"`
	Shed         int64  `json:"shed,omitempty"`
	Degraded     int64  `json:"degraded,omitempty"`
	InFlight     int64  `json:"inFlight,omitempty"`
	TraceDropped uint64 `json:"traceDropped,omitempty"`
	// Routes maps request path ("/v1/compile", "/v1/batch") to the
	// shard's request-latency histogram over fleet.LatencyBounds.
	Routes map[string]fleet.HistSnapshot `json:"routes,omitempty"`
	// Shards is the per-shard breakdown (router responses only).
	Shards []CacheStats `json:"shards,omitempty"`
}

// HitRate returns the fraction of requests answered without a fresh
// compilation: local cache hits, single-flight dedup hits, and entries
// fetched from the key's home shard all count.
func (s *CacheStats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits+s.DedupHits+s.PeerHits) / float64(s.Requests)
}

// Add accumulates other into s (used by the router's aggregation).
func (s *CacheStats) Add(other *CacheStats) {
	s.Requests += other.Requests
	s.CacheHits += other.CacheHits
	s.DedupHits += other.DedupHits
	s.CacheMisses += other.CacheMisses
	s.PeerHits += other.PeerHits
	s.PeerMisses += other.PeerMisses
	s.Compiles += other.Compiles
	s.CacheEntries += other.CacheEntries
	s.SnapshotSaves += other.SnapshotSaves
	s.SnapshotLoads += other.SnapshotLoads
	s.SnapshotRejected += other.SnapshotRejected
	s.SnapshotEntries += other.SnapshotEntries
	s.SnapshotWarmHits += other.SnapshotWarmHits
	s.Errors += other.Errors
	s.Shed += other.Shed
	s.Degraded += other.Degraded
	s.InFlight += other.InFlight
	s.TraceDropped += other.TraceDropped
	for route, h := range other.Routes {
		if s.Routes == nil {
			s.Routes = make(map[string]fleet.HistSnapshot, len(other.Routes))
		}
		merged := s.Routes[route]
		merged.Merge(h)
		s.Routes[route] = merged
	}
}

// ToService maps the wire request onto an engine request.
func (cr *CompileRequest) ToService() (service.Request, error) {
	req := service.Request{Source: cr.Source, IRInput: cr.IR}
	req.EmitIR = cr.EmitIR == nil || *cr.EmitIR
	switch cr.Format {
	case "":
	case service.FormatAsm:
		req.Format = service.FormatAsm
	default:
		return req, fmt.Errorf("unknown format %q (want %q or empty)", cr.Format, service.FormatAsm)
	}
	cfg := rolag.Config{Name: cr.Config.Name, Unroll: cr.Config.Unroll, Flatten: cr.Config.Flatten, Remarks: cr.Remarks}
	switch cr.Config.Opt {
	case "none":
		cfg.Opt = rolag.OptNone
	case "llvm":
		cfg.Opt = rolag.OptLLVMReroll
	case "", "rolag":
		cfg.Opt = rolag.OptRoLAG
		opts := rolag.DefaultOptions()
		if cr.Config.NoSpecialNodes {
			opts = rolag.NoSpecialNodes()
		} else if cr.Config.Extensions {
			opts = rolag.Extensions()
		}
		opts.FastMath = cr.Config.FastMath
		opts.AlwaysRoll = cr.Config.AlwaysRoll
		cfg.Options = opts
	default:
		return req, fmt.Errorf("unknown opt %q (want none, llvm or rolag)", cr.Config.Opt)
	}
	req.Config = cfg
	return req, nil
}

// NodeCountsToWire converts a RoLAG node histogram to its wire form.
func NodeCountsToWire(m map[rl.NodeKind]int) map[int]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[int(k)] = v
	}
	return out
}

// NodeCountsFromWire is the inverse of NodeCountsToWire.
func NodeCountsFromWire(m map[int]int) map[rl.NodeKind]int {
	out := make(map[rl.NodeKind]int, len(m))
	for k, v := range m {
		out[rl.NodeKind(k)] = v
	}
	return out
}
