package rolagdapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// replySeq serves a scripted sequence of status codes, then 200s.
func replySeq(t *testing.T, codes ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i < len(codes) && codes[i] != http.StatusOK {
			if codes[i] == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(codes[i])
			json.NewEncoder(w).Encode(ErrorResponse{Error: http.StatusText(codes[i])})
			return
		}
		json.NewEncoder(w).Encode(CompileResponse{IR: "ok", SizeAfter: 7})
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

// fastClient returns a client with near-zero backoff so retry tests run
// in milliseconds.
func fastClient(url string) *Client {
	return &Client{BaseURL: url, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestClientRetriesShedThenSucceeds(t *testing.T) {
	srv, n := replySeq(t, http.StatusTooManyRequests, http.StatusServiceUnavailable)
	c := fastClient(srv.URL)

	// The configured backoff is milliseconds, but the 429 carries a
	// Retry-After of 1s and the hint is a floor — the call must both
	// succeed and take at least that long.
	start := time.Now()
	resp, err := c.Compile(context.Background(), &CompileRequest{Source: "int f() { return 1; }"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.IR != "ok" || resp.SizeAfter != 7 {
		t.Fatalf("bad response: %+v", resp)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("Retry-After hint ignored: finished in %v", elapsed)
	}
}

// TestClientHonorsRetryAfterOn503 pins the satellite fix: a draining
// replica's 503 Retry-After is a floor on the next attempt, exactly
// like a shed 429's — previously only the client's own jittered
// backoff applied to 503s.
func TestClientHonorsRetryAfterOn503(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "draining"})
			return
		}
		json.NewEncoder(w).Encode(CompileResponse{IR: "ok"})
	}))
	t.Cleanup(srv.Close)

	start := time.Now()
	resp, err := fastClient(srv.URL).Compile(context.Background(), &CompileRequest{Source: "int f() { return 1; }"})
	if err != nil || resp.IR != "ok" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("503 Retry-After ignored: finished in %v", elapsed)
	}
}

// TestClientHonorsRetryAfterHTTPDate pins the second half of the fix:
// the HTTP-date form of Retry-After (RFC 7231 §7.1.3) is honored too,
// not just delta-seconds.
func TestClientHonorsRetryAfterHTTPDate(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "shed"})
			return
		}
		json.NewEncoder(w).Encode(CompileResponse{IR: "ok"})
	}))
	t.Cleanup(srv.Close)

	start := time.Now()
	resp, err := fastClient(srv.URL).Compile(context.Background(), &CompileRequest{Source: "int f() { return 1; }"})
	if err != nil || resp.IR != "ok" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	// http.TimeFormat has whole-second resolution, so the parsed floor
	// can round down to just under 1s; half a second splits "honored"
	// from the millisecond jitter backoff unambiguously.
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("HTTP-date Retry-After ignored: finished in %v", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in       string
		min, max time.Duration
	}{
		{"", 0, 0},
		{"7", 7 * time.Second, 7 * time.Second},
		{"-3", 0, 0},
		{"garbage", 0, 0},
		{time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat), 25 * time.Second, 30 * time.Second},
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, 0}, // past date clamps to zero
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got < c.min || got > c.max {
			t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", c.in, got, c.min, c.max)
		}
	}
}

func TestClientTerminalErrorNotRetried(t *testing.T) {
	srv, n := replySeq(t, http.StatusUnprocessableEntity)
	resp, err := fastClient(srv.URL).Compile(context.Background(), &CompileRequest{Source: "bogus"})
	if resp != nil || err == nil {
		t.Fatalf("want terminal error, got resp=%v err=%v", resp, err)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want HTTPError 422, got %v", err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("terminal error retried: server saw %d requests", got)
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	srv, n := replySeq(t,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable)
	c := fastClient(srv.URL)
	c.MaxAttempts = 3
	_, err := c.Compile(context.Background(), &CompileRequest{Source: "int f() { return 1; }"})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhaustion error does not wrap the last HTTP failure: %v", err)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want MaxAttempts=3", got)
	}
}

// TestClientContextCancelsBackoff uses a deadline-less context (so the
// pre-sleep deadline cap cannot apply) and cancels it mid-backoff: the
// sleep itself must be interrupted promptly.
func TestClientContextCancelsBackoff(t *testing.T) {
	srv, _ := replySeq(t, http.StatusServiceUnavailable, http.StatusServiceUnavailable)
	c := fastClient(srv.URL)
	c.BaseDelay = time.Hour // the wait must be cut short by the context
	c.MaxDelay = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Compile(ctx, &CompileRequest{Source: "int f() { return 1; }"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context cancellation did not interrupt the backoff sleep")
	}
}

func TestClientTransportErrorRetried(t *testing.T) {
	// A server that dies after the first reply: the second attempt hits a
	// closed port and must be retried until attempts run out.
	srv, _ := replySeq(t, http.StatusServiceUnavailable)
	url := srv.URL
	srv.Close()
	c := fastClient(url)
	c.MaxAttempts = 2
	_, err := c.Compile(context.Background(), &CompileRequest{Source: "int f() { return 1; }"})
	if err == nil {
		t.Fatal("want transport error")
	}
	if !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("transport error not retried to exhaustion: %v", err)
	}
}

// TestClientBackoffCappedByDeadline pins the survivability fix: a
// Retry-After hint that schedules a sleep past the caller's context
// deadline must make the client give up immediately with the last real
// failure, not burn the caller's whole budget sleeping. Previously a
// 300ms-deadline call against a shedding server advertising
// "Retry-After: 5" slept until the deadline and surfaced a bare
// context error.
func TestClientBackoffCappedByDeadline(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "shed"})
	}))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(srv.URL).Compile(ctx, &CompileRequest{Source: "int f() { return 1; }"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call succeeded against an always-shedding server")
	}
	// Well before both the 5s hint and the 300ms deadline.
	if elapsed > 200*time.Millisecond {
		t.Fatalf("client slept %v toward a retry it could never make", elapsed)
	}
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusTooManyRequests {
		t.Fatalf("error %v does not carry the last real failure (want HTTP 429)", err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}
