package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Breaker defaults.
const (
	// DefaultBreakerThreshold is how many consecutive failures of one
	// pass open its breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker refuses the
	// pass before letting a half-open probe through.
	DefaultBreakerCooldown = 30 * time.Second
)

// BreakerState is one circuit breaker's state.
type BreakerState string

const (
	// BreakerClosed: the pass runs normally.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the pass is skipped without being attempted.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one probe execution is in flight; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerInfo is a point-in-time snapshot of one pass's breaker,
// exported on /metrics and in MetricsSnapshot.
type BreakerInfo struct {
	Pass                string       `json:"pass"`
	State               BreakerState `json:"state"`
	ConsecutiveFailures int          `json:"consecutiveFailures"`
}

type breaker struct {
	failures  int
	openUntil time.Time
	open      bool
	probing   bool // a half-open probe is in flight
}

// breakerSet implements passes.Guard with one circuit breaker per pass
// name, shared by every compilation job in the engine. After threshold
// consecutive failures of a pass (across jobs) the breaker opens and
// the pass is skipped outright; after the cooldown a single half-open
// probe is admitted, and its outcome closes the breaker or re-arms the
// cooldown.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	opens atomic.Int64 // closed/half-open -> open transitions

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		m:         make(map[string]*breaker),
	}
}

// Allow implements passes.Guard.
func (bs *breakerSet) Allow(pass string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[pass]
	if b == nil || !b.open {
		return true
	}
	if bs.now().Before(b.openUntil) {
		return false
	}
	// Cooldown expired: admit exactly one half-open probe; concurrent
	// jobs keep being refused until the probe reports.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Report implements passes.Guard.
func (bs *breakerSet) Report(pass string, ok bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[pass]
	if b == nil {
		b = &breaker{}
		bs.m[pass] = b
	}
	if ok {
		b.failures = 0
		b.open = false
		b.probing = false
		return
	}
	if b.open {
		// Failed half-open probe: re-arm the cooldown.
		b.probing = false
		b.openUntil = bs.now().Add(bs.cooldown)
		bs.opens.Add(1)
		return
	}
	b.failures++
	if b.failures >= bs.threshold {
		b.open = true
		b.probing = false
		b.openUntil = bs.now().Add(bs.cooldown)
		bs.opens.Add(1)
	}
}

// isOpen reports whether pass's breaker is currently refusing work
// (open and not yet probing).
func (bs *breakerSet) isOpen(pass string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[pass]
	return b != nil && b.open && bs.now().Before(b.openUntil)
}

// infos returns per-pass snapshots sorted by pass name.
func (bs *breakerSet) infos() []BreakerInfo {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make([]BreakerInfo, 0, len(bs.m))
	for pass, b := range bs.m {
		st := BreakerClosed
		if b.open {
			if b.probing || !bs.now().Before(b.openUntil) {
				st = BreakerHalfOpen
			} else {
				st = BreakerOpen
			}
		}
		out = append(out, BreakerInfo{Pass: pass, State: st, ConsecutiveFailures: b.failures})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pass < out[j].Pass })
	return out
}

// Breakers returns the engine's per-pass circuit-breaker snapshots
// (empty when fail-soft is disabled).
func (e *Engine) Breakers() []BreakerInfo {
	if e.breakers == nil {
		return nil
	}
	return e.breakers.infos()
}

// Dark reports whether the engine's core optimization is breaker-dark:
// the "rolag" pass breaker is open, so compilations are being served
// but the technique the service exists for is skipped. rolagd's /readyz
// reports 503 in this state to steer traffic elsewhere.
func (e *Engine) Dark() bool {
	return e.breakers != nil && e.breakers.isOpen("rolag")
}
