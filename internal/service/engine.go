// Package service is the concurrent compilation engine behind rolagd
// and the parallel experiment drivers. It wraps the serial rolag facade
// with a bounded worker pool, a content-addressed LRU result cache
// (SHA-256 of source + canonical config), single-flight deduplication
// of identical concurrent requests, per-job context deadlines, panic
// recovery, and lock-free metrics.
//
// Cached results are immutable: the engine owns every module it stores
// and hands callers deep clones (Request.NeedModule) or printed IR
// (Request.EmitIR), never the cached pointer.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rolag"
	"rolag/internal/backend"
	"rolag/internal/faultpoint"
	"rolag/internal/ir"
	"rolag/internal/irparse"
	"rolag/internal/obs"
	"rolag/internal/passes"
	rl "rolag/internal/rolag"
)

// Engine lifecycle errors.
var (
	// ErrClosed is returned by Compile after Close has been called.
	ErrClosed = errors.New("service: engine is closed")
	// ErrDraining is returned for jobs abandoned because Close gave up
	// waiting for the drain to finish.
	ErrDraining = errors.New("service: engine shut down before the job ran")
	// ErrOverloaded is returned when admission control sheds a request
	// because MaxInFlight requests are already being served. The caller
	// should back off and retry (rolagd maps it to HTTP 429).
	ErrOverloaded = errors.New("service: engine overloaded, request shed")
)

// Config sizes the engine.
type Config struct {
	// Workers is the worker-pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth is the job-queue buffer (default 4×Workers).
	QueueDepth int
	// CacheEntries bounds the result cache (default 4096; negative
	// disables caching and single-flight deduplication entirely).
	CacheEntries int
	// MaxInFlight bounds admitted Compile calls; beyond it requests are
	// shed with ErrOverloaded instead of queueing unboundedly. Default
	// 4×(Workers+QueueDepth), floored at 32 so it always exceeds
	// CompileBatch's submitter count; negative disables shedding.
	MaxInFlight int
	// DisableFailSoft turns off the fail-soft sandbox and the per-pass
	// circuit breakers, restoring fail-hard semantics: a broken pass
	// fails the whole job (its panic is still recovered per job).
	DisableFailSoft bool
	// PassBudget is the fail-soft per-pass wall-clock budget
	// (0 = passes.DefaultPassBudget).
	PassBudget time.Duration
	// BreakerThreshold is how many consecutive failures of one pass open
	// its circuit breaker (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses a pass before
	// admitting a half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// FuncParallelism is passed through to rolag.Config.Parallelism for
	// every job: how many functions of one module each pipeline stage
	// optimizes concurrently (0 or 1 = serial, negative = GOMAXPROCS).
	// Output is byte-identical for any value. Jobs are already spread
	// across Workers, so this mainly helps modules with many functions
	// on lightly loaded engines; the per-pass circuit breakers are safe
	// to share across the extra goroutines.
	FuncParallelism int
	// PeerFetch, when set, is consulted on every local cache miss
	// before compiling: the cluster layer uses it to ask the key's home
	// shard for the entry (fetch-on-miss peer caching). It returns the
	// fetched entry (nil = the peer doesn't have it or the fetch
	// failed) and whether a peer was actually asked — the hook returns
	// (nil, false) immediately for keys this shard owns itself, and
	// only attempted lookups count toward the peer hit/miss metrics.
	// The hook runs inside the key's single-flight slot, so concurrent
	// requests for one key trigger at most one peer fetch.
	PeerFetch func(ctx context.Context, key string) (ce *CacheEntry, attempted bool)
}

// Request is one compilation job: one translation unit (typically a
// single corpus function group) plus the pipeline configuration.
type Request struct {
	// Source is mini-C, or textual IR when IRInput is set.
	Source string
	// IRInput marks Source as textual IR (see internal/irparse).
	IRInput bool
	// Config selects the pipeline. Name does not affect the compiled
	// output and is excluded from the cache key.
	Config rolag.Config
	// EmitIR asks for the final IR text in Response.IR.
	EmitIR bool
	// NeedModule asks for a caller-owned deep clone of the final module
	// in Response.Module.
	NeedModule bool
	// Format selects an additional lowered output: "" (none) or
	// FormatAsm, which lowers the optimized module through
	// internal/backend and returns the x86-64 assembly plus the
	// measured .text size in Response.Asm/Response.TextBytes. Format is
	// part of the cache key — an asm-bearing entry only answers
	// requests that asked for asm.
	Format string
}

// FormatAsm asks for x86-64 assembly and measured .text bytes.
const FormatAsm = "asm"

// Response is the outcome of one compilation job. All fields are owned
// by the caller; nothing aliases the engine's cache.
type Response struct {
	// IR is the final IR text (only when Request.EmitIR).
	IR string
	// Module is a private clone of the final module (only when
	// Request.NeedModule).
	Module *ir.Module
	// Sizes under the profitability and binary cost models, as in
	// rolag.Result.
	SizeBefore, SizeAfter     int
	BinaryBefore, BinaryAfter int
	// Stats holds RoLAG statistics (nil unless Opt == OptRoLAG).
	Stats *rolag.Stats
	// Rerolled counts loops rerolled by the LLVM baseline.
	Rerolled int
	// CacheHit reports that the result came from the cache or from an
	// identical in-flight compilation rather than a fresh compile.
	CacheHit bool
	// Degraded is the fail-soft degradation report: nil for a clean
	// compile, otherwise the pass executions that were rolled back and
	// skipped. Degraded results are correct but not cached. The report
	// is shared (read-only) with single-flight followers of the same
	// compilation; callers must not mutate it.
	Degraded *rolag.Degraded
	// Remarks is the optimization-remark stream (only when
	// Request.Config.Remarks). Remark streams are deterministic, so
	// cached and fresh results carry identical remarks; the slice is
	// shared read-only with other hits of the same cache entry.
	Remarks []rolag.Remark
	// Asm is the x86-64 assembly of the optimized module (only when
	// Request.Format == FormatAsm).
	Asm string
	// TextBytes is the measured size of the encoded .text section
	// (only when Request.Format == FormatAsm). Unlike BinaryAfter,
	// which is the cost model's estimate, this is counted from actual
	// instruction encodings.
	TextBytes int64
}

// Reduction returns the relative binary-size reduction in percent.
func (r *Response) Reduction() float64 {
	if r.BinaryBefore == 0 {
		return 0
	}
	return 100 * float64(r.BinaryBefore-r.BinaryAfter) / float64(r.BinaryBefore)
}

// entry is an immutable cached result. The result module itself is
// NOT retained: cached modules are pointer-dense graphs the GC would
// re-scan on every cycle for the lifetime of the cache, which on a big
// corpus costs more than the compiles the cache saves. The printed IR
// (one flat, pointer-free string) carries the same information; the
// rare NeedModule hit reparses it, which the printer/parser round-trip
// guarantees is equivalent to cloning.
type entry struct {
	irText                    string
	sizeBefore, sizeAfter     int
	binaryBefore, binaryAfter int
	stats                     *rolag.Stats
	rerolled                  int
	// degraded is non-nil for fail-soft-degraded results. Such entries
	// are handed to single-flight followers but never stored in the
	// cache: a transient pass failure must not poison the key.
	degraded *rolag.Degraded
	// remarks is the deterministic remark stream; safe to cache because
	// Config.Remarks is part of the cache key and two compiles of the
	// same key produce byte-identical remarks.
	remarks []rolag.Remark
	// asm/textBytes carry the backend lowering (only for FormatAsm
	// keys; Format is part of the cache key, so entries without asm
	// never answer a request that wants it).
	asm       string
	textBytes int64
	// fromSnapshot marks entries restored by LoadSnapshot so the first
	// post-restart hit on each can be counted as snapshot warmth (the
	// signal the chaos harness gates on). Peer-imported entries do not
	// set it: they are cluster warmth, not restart warmth.
	fromSnapshot bool
}

type job struct {
	ctx  context.Context
	req  *Request
	done chan jobResult
}

type jobResult struct {
	entry *entry
	err   error
}

// Engine is a concurrency-safe compilation service over the rolag
// facade. Create with New, release with Close.
type Engine struct {
	cfg      Config
	cache    *lruCache   // nil when caching is disabled
	breakers *breakerSet // nil when fail-soft is disabled
	flights  flightGroup
	metrics  metrics

	jobs chan *job
	quit chan struct{} // closed by Close to stop the workers

	admitted atomic.Int64 // admission-control occupancy

	workerWG sync.WaitGroup
	inflight sync.WaitGroup // accepted Compile calls

	mu     sync.RWMutex // guards closed
	closed bool
}

// New starts an engine with cfg's worker pool and cache.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 4 * (cfg.Workers + cfg.QueueDepth)
		if cfg.MaxInFlight < 32 {
			cfg.MaxInFlight = 32
		}
	}
	e := &Engine{
		cfg:  cfg,
		jobs: make(chan *job, cfg.QueueDepth),
		quit: make(chan struct{}),
	}
	if cfg.CacheEntries > 0 {
		e.cache = newLRUCache(cfg.CacheEntries)
	}
	if !cfg.DisableFailSoft {
		e.breakers = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	e.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Metrics returns a point-in-time snapshot of the engine counters.
func (e *Engine) Metrics() MetricsSnapshot {
	s := e.metrics.snapshot()
	if e.cache != nil {
		s.CacheEntries = e.cache.len()
	}
	s.Workers = e.cfg.Workers
	if e.breakers != nil {
		s.BreakerOpens = e.breakers.opens.Load()
		s.Breakers = e.breakers.infos()
	}
	return s
}

// Compile runs one job and blocks until it completes, fails, or ctx
// expires. Identical concurrent requests (same source and canonical
// config) compile once and share the result. When MaxInFlight requests
// are already admitted the call is shed immediately with ErrOverloaded
// instead of queueing.
func (e *Engine) Compile(ctx context.Context, req Request) (*Response, error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	e.inflight.Add(1)
	e.mu.RUnlock()
	defer e.inflight.Done()

	if max := int64(e.cfg.MaxInFlight); max > 0 {
		if e.admitted.Add(1) > max {
			e.admitted.Add(-1)
			e.metrics.shed.Add(1)
			return nil, ErrOverloaded
		}
		defer e.admitted.Add(-1)
	}

	e.metrics.requests.Add(1)
	e.metrics.inFlight.Add(1)
	defer e.metrics.inFlight.Add(-1)

	if req.Source == "" {
		e.metrics.errors.Add(1)
		return nil, errors.New("service: empty source")
	}
	if req.Format != "" && req.Format != FormatAsm {
		e.metrics.errors.Add(1)
		return nil, fmt.Errorf("service: unknown format %q (want %q or empty)", req.Format, FormatAsm)
	}
	if req.EmitIR {
		e.metrics.emitIR.Add(1)
	}
	if req.Format == FormatAsm {
		e.metrics.emitAsm.Add(1)
	}

	if e.cache == nil {
		en, err := e.dispatch(ctx, &req)
		if err != nil {
			e.metrics.errors.Add(1)
			return nil, err
		}
		return respFromEntry(en, &req, false)
	}

	key := cacheKey(&req)
	if en, ok := e.cache.get(key); ok {
		// An injected cache:get fault turns the hit into a miss; the
		// compile below still produces a correct answer.
		if faultpoint.Fire(faultpoint.CacheGet, faultpoint.KindError) != faultpoint.KindError {
			e.metrics.cacheHits.Add(1)
			if en.fromSnapshot {
				e.metrics.snapshotWarmHits.Add(1)
			}
			return respFromEntry(en, &req, true)
		}
	}

	var peerHit bool
	en, err, leader := e.flights.do(ctx, key, func() (*entry, error) {
		e.metrics.cacheMisses.Add(1)
		if e.cfg.PeerFetch != nil {
			if ce, attempted := e.cfg.PeerFetch(ctx, key); ce != nil {
				e.metrics.peerHits.Add(1)
				peerHit = true
				pe := entryFromWire(ce)
				e.cache.put(key, pe)
				return pe, nil
			} else if attempted {
				e.metrics.peerMisses.Add(1)
			}
		}
		en, err := e.dispatch(ctx, &req)
		if err != nil {
			return nil, err
		}
		// Degraded results are served but never cached: a transient
		// pass failure must not poison this key until eviction. An
		// injected cache:put fault likewise drops the store.
		if en.degraded == nil &&
			faultpoint.Fire(faultpoint.CachePut, faultpoint.KindError) != faultpoint.KindError {
			e.cache.put(key, en)
		}
		return en, nil
	})
	if err != nil {
		e.metrics.errors.Add(1)
		return nil, err
	}
	if !leader {
		e.metrics.dedupHits.Add(1)
	}
	// A peer-cache hit is a cache hit from the caller's point of view:
	// the result came from the cluster's logical cache, not a compile.
	// peerHit is per-call and only written when this caller led the
	// flight (do runs fn synchronously on the leader's goroutine).
	return respFromEntry(en, &req, !leader || peerHit)
}

// BatchItem pairs one CompileBatch response with its error.
type BatchItem struct {
	Resp *Response
	Err  error
}

// CompileBatch fans reqs out over the worker pool and returns the
// results in request order. Per-item failures land in the item's Err;
// the batch itself never fails part-way. Submission is bounded to a
// small multiple of the worker count: a goroutine per request would
// keep thousands of stacks alive while the pool can only drain
// Workers jobs at a time, which costs real scheduler and GC time on
// large corpora.
func (e *Engine) CompileBatch(ctx context.Context, reqs []Request) []BatchItem {
	out := make([]BatchItem, len(reqs))
	submitters := 4 * e.cfg.Workers
	if submitters < 16 {
		submitters = 16
	}
	if submitters > len(reqs) {
		submitters = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i].Resp, out[i].Err = e.Compile(ctx, reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// dispatch hands the job to the worker pool and waits for the result.
func (e *Engine) dispatch(ctx context.Context, req *Request) (*entry, error) {
	j := &job{ctx: ctx, req: req, done: make(chan jobResult, 1)}
	select {
	case e.jobs <- j:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.quit:
		return nil, ErrDraining
	}
	select {
	case res := <-j.done:
		return res.entry, res.err
	case <-ctx.Done():
		// The worker will notice the expired context before compiling,
		// or finish a compile nobody is waiting for; done is buffered
		// so it never blocks.
		return nil, ctx.Err()
	case <-e.quit:
		return nil, ErrDraining
	}
}

func (e *Engine) worker() {
	defer e.workerWG.Done()
	for {
		select {
		case j := <-e.jobs:
			j.done <- e.runJob(j)
		case <-e.quit:
			return
		}
	}
}

// runJob executes one compilation with panic recovery: a crashing pass
// becomes that job's error instead of taking down the process.
func (e *Engine) runJob(j *job) (res jobResult) {
	if err := j.ctx.Err(); err != nil {
		return jobResult{err: err}
	}
	defer func() {
		if r := recover(); r != nil {
			e.metrics.panics.Add(1)
			res = jobResult{err: fmt.Errorf("service: compile panicked: %v", r)}
		}
	}()
	if hook := testCompileHook.Load(); hook != nil {
		(*hook)(j.req)
	}
	switch faultpoint.Fire(faultpoint.EngineRun,
		faultpoint.KindPanic, faultpoint.KindStall, faultpoint.KindError) {
	case faultpoint.KindPanic:
		panic("faultpoint: injected panic at engine:run")
	case faultpoint.KindError:
		return jobResult{err: errors.New("service: injected engine fault")}
	}
	tr := obs.TraceFrom(j.ctx)
	span := obs.Now()
	start := time.Now()
	cfg := j.req.Config
	defer func() { obs.EndSpan(tr, "engine:compile", span, cfg.Name) }()
	cfg.Parallelism = e.cfg.FuncParallelism
	if !e.cfg.DisableFailSoft {
		cfg.FailSoft = true
		cfg.PassBudget = e.cfg.PassBudget
		cfg.Guard = e.breakers
	}
	var out *rolag.Result
	var err error
	if j.req.IRInput {
		var m *ir.Module
		m, err = irparse.ParseModule(j.req.Source)
		if err == nil {
			// Pre-pipeline canonicalization of IR input runs under its
			// own sandbox so its skips land on the same report.
			var pre *passes.Sandbox
			if cfg.FailSoft {
				pre = &passes.Sandbox{Budget: cfg.PassBudget, Guard: cfg.Guard}
				passes.Standard().RunSandboxed(m, pre)
			} else {
				passes.Standard().Run(m)
			}
			// The parsed module is reachable by nothing else, but clone
			// anyway so a future module-input API cannot quietly alias
			// cache-owned memory.
			cfg.CloneInput = true
			out, err = rolag.OptimizeContext(j.ctx, m, cfg)
			if err == nil && pre != nil {
				if rep := pre.Report(); rep != nil {
					if out.Degraded == nil {
						out.Degraded = rep
					} else {
						rep.Skips = append(rep.Skips, out.Degraded.Skips...)
						out.Degraded = rep
					}
				}
			}
		}
	} else {
		out, err = rolag.BuildContext(j.ctx, j.req.Source, cfg)
	}
	if err != nil {
		return jobResult{err: err}
	}
	e.metrics.observeCompile(time.Since(start))
	e.metrics.compiles.Add(1)
	if out.Stats != nil {
		e.metrics.loopsRolled.Add(int64(out.Stats.LoopsRolled))
	}
	if out.Degraded != nil {
		e.metrics.degraded.Add(1)
		for _, sk := range out.Degraded.Skips {
			e.metrics.skipPass(sk.Pass)
		}
	}
	e.metrics.countRemarks(out.Remarks)
	var asm string
	var textBytes int64
	if j.req.Format == FormatAsm {
		// Lower through the assembly backend under the request trace,
		// so lower/encode spans show up in end-to-end traces next to
		// the optimizer phases.
		r, berr := backend.Compile(out.Module, &obs.Recorder{Trace: tr})
		if berr != nil {
			return jobResult{err: fmt.Errorf("service: lower to asm: %w", berr)}
		}
		asm = r.Asm()
		textBytes = r.Code.Text
	}
	return jobResult{entry: &entry{
		irText:       out.Module.String(),
		sizeBefore:   out.SizeBefore,
		sizeAfter:    out.SizeAfter,
		binaryBefore: out.BinaryBefore,
		binaryAfter:  out.BinaryAfter,
		stats:        copyStats(out.Stats),
		rerolled:     out.Rerolled,
		degraded:     out.Degraded,
		remarks:      out.Remarks,
		asm:          asm,
		textBytes:    textBytes,
	}}
}

// testCompileHook, when set by a test, runs inside the worker before
// each compilation (used to inject panics and stalls). Atomic because a
// worker abandoned by a timed-out Close can outlive the test that
// installed the hook.
var testCompileHook atomic.Pointer[func(*Request)]

// Close drains the engine: new Compile calls fail with ErrClosed,
// accepted jobs run to completion, then the workers stop. If ctx
// expires first, queued-but-unstarted jobs fail with ErrDraining and
// Close returns ctx.Err() without waiting for compilations already on a
// worker (they finish and are discarded).
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		close(e.quit)
		e.workerWG.Wait()
		return nil
	case <-ctx.Done():
		close(e.quit)
		return ctx.Err()
	}
}

// respFromEntry materializes a caller-owned Response from an immutable
// cache entry.
func respFromEntry(en *entry, req *Request, hit bool) (*Response, error) {
	resp := &Response{
		SizeBefore:   en.sizeBefore,
		SizeAfter:    en.sizeAfter,
		BinaryBefore: en.binaryBefore,
		BinaryAfter:  en.binaryAfter,
		Stats:        copyStats(en.stats),
		Rerolled:     en.rerolled,
		CacheHit:     hit,
		Degraded:     en.degraded,
		Remarks:      en.remarks,
		Asm:          en.asm,
		TextBytes:    en.textBytes,
	}
	if req.EmitIR {
		resp.IR = en.irText
	}
	if req.NeedModule {
		m, err := irparse.ParseModule(en.irText)
		if err != nil {
			return nil, fmt.Errorf("service: reparse cached result: %w", err)
		}
		resp.Module = m
	}
	return resp, nil
}

func copyStats(s *rolag.Stats) *rolag.Stats {
	if s == nil {
		return nil
	}
	ns := *s
	ns.NodeCounts = make(map[rl.NodeKind]int, len(s.NodeCounts))
	for k, v := range s.NodeCounts {
		ns.NodeCounts[k] = v
	}
	return &ns
}
