package service

// Warm-restart cache snapshots. A snapshot is the engine's LRU cache
// flattened to a JSON-lines file: one header line followed by exactly
// header.Entries entry lines, each carrying the pointer-free wire form
// of a cached result (the same CacheEntry the peer tier ships) plus a
// SHA-256 checksum over the key and the entry bytes. The header stamps
// the cache-key version, so a snapshot written under an older key
// layout can never warm a newer cache.
//
// Loading is all-or-nothing: every line is parsed and checksummed
// before anything touches the cache, so a truncated tail or a flipped
// bit rejects the whole file and the engine starts cold. Cold is safe
// (everything recompiles or peer-fetches); half-warm-with-garbage is
// not. Degraded results are never cached, hence never snapshotted —
// the writer keeps a belt-and-braces skip anyway.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

const (
	snapshotFormat  = "rolag-cache-snapshot"
	snapshotVersion = 1
	// maxSnapshotLine bounds a single snapshot line; an entry is one
	// printed function module plus optional asm, far below this.
	maxSnapshotLine = 64 << 20
	// maxSnapshotPrealloc caps the staging slice's pre-allocation. The
	// header is not checksummed, so its entry count is a hint, never an
	// allocation budget: a lying header must not be able to drive memory.
	maxSnapshotPrealloc = 4096
)

// ErrSnapshotRejected wraps every load failure so callers can log the
// rejection and proceed cold without inspecting the cause.
var ErrSnapshotRejected = errors.New("service: snapshot rejected")

// snapshotHeader is the first line of a snapshot file.
type snapshotHeader struct {
	Format    string `json:"format"`
	Version   int    `json:"version"`
	CacheKey  string `json:"cacheKey"`
	Shard     string `json:"shard,omitempty"`
	SavedUnix int64  `json:"savedUnix"`
	Entries   int    `json:"entries"`
}

// snapshotLine is one cached result: its content-address key, the wire
// entry, and a checksum over both.
type snapshotLine struct {
	Key   string          `json:"key"`
	Sum   string          `json:"sum"`
	Entry json.RawMessage `json:"entry"`
}

// snapshotSum checksums one entry line. The key participates so a
// bit-flip that moves an intact entry under the wrong content address
// is caught, not just corruption inside the entry bytes.
func snapshotSum(key string, entry []byte) string {
	h := sha256.New()
	io.WriteString(h, key)
	h.Write([]byte{'\n'})
	h.Write(entry)
	return hex.EncodeToString(h.Sum(nil))
}

// SaveSnapshot writes the cache to w and returns the number of entries
// written. Entries are ordered oldest-first so a loader that replays
// them through the cache reconstructs the recency order.
func (e *Engine) SaveSnapshot(w io.Writer, shard string) (int, error) {
	if e.cache == nil {
		return 0, errors.New("service: caching disabled, nothing to snapshot")
	}
	items := e.cache.exportAll()
	kept := items[:0]
	for _, it := range items {
		if it.val.degraded == nil {
			kept = append(kept, it)
		}
	}
	items = kept
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := snapshotHeader{
		Format:    snapshotFormat,
		Version:   snapshotVersion,
		CacheKey:  cacheKeyVersion,
		Shard:     shard,
		SavedUnix: time.Now().Unix(),
		Entries:   len(items),
	}
	if err := enc.Encode(&hdr); err != nil {
		return 0, err
	}
	for _, it := range items {
		raw, err := json.Marshal(wireFromEntry(it.val))
		if err != nil {
			return 0, err
		}
		line := snapshotLine{Key: it.key, Sum: snapshotSum(it.key, raw), Entry: raw}
		if err := enc.Encode(&line); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return len(items), nil
}

// LoadSnapshot restores cache entries from r. On any validation
// failure — wrong format, stale cache-key version, truncation, or a
// checksum mismatch — nothing is loaded, the rejected counter is
// bumped, and the returned error wraps ErrSnapshotRejected; the caller
// logs it and serves cold. It never panics on malformed input.
func (e *Engine) LoadSnapshot(r io.Reader) (int, error) {
	if e.cache == nil {
		return 0, nil
	}
	n, err := e.loadSnapshot(r)
	if err != nil {
		e.metrics.snapshotRejected.Add(1)
		return 0, fmt.Errorf("%w: %v", ErrSnapshotRejected, err)
	}
	e.metrics.snapshotLoads.Add(1)
	e.metrics.snapshotEntries.Add(int64(n))
	return n, nil
}

func (e *Engine) loadSnapshot(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSnapshotLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, errors.New("empty file")
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return 0, fmt.Errorf("bad header: %v", err)
	}
	if hdr.Format != snapshotFormat {
		return 0, fmt.Errorf("format %q, want %q", hdr.Format, snapshotFormat)
	}
	if hdr.Version != snapshotVersion {
		return 0, fmt.Errorf("snapshot version %d, want %d", hdr.Version, snapshotVersion)
	}
	if hdr.CacheKey != cacheKeyVersion {
		return 0, fmt.Errorf("cache-key version %q, want %q (stale snapshot)", hdr.CacheKey, cacheKeyVersion)
	}
	if hdr.Entries < 0 {
		return 0, fmt.Errorf("negative entry count %d", hdr.Entries)
	}
	type staged struct {
		key string
		en  *entry
	}
	// Cap the pre-allocation and let append grow against what the file
	// actually holds; an overclaimed count fails the truncation check
	// below instead of allocating first and asking questions later.
	prealloc := hdr.Entries
	if prealloc > maxSnapshotPrealloc {
		prealloc = maxSnapshotPrealloc
	}
	entries := make([]staged, 0, prealloc)
	for i := 0; i < hdr.Entries; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return 0, err
			}
			return 0, fmt.Errorf("truncated: %d of %d entries", i, hdr.Entries)
		}
		var line snapshotLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return 0, fmt.Errorf("entry %d: %v", i, err)
		}
		if got := snapshotSum(line.Key, line.Entry); got != line.Sum {
			return 0, fmt.Errorf("entry %d (key %.16s...): checksum mismatch", i, line.Key)
		}
		var ce CacheEntry
		if err := json.Unmarshal(line.Entry, &ce); err != nil {
			return 0, fmt.Errorf("entry %d: %v", i, err)
		}
		en := entryFromWire(&ce)
		en.fromSnapshot = true
		entries = append(entries, staged{key: line.Key, en: en})
	}
	// The whole file verified; commit. Oldest-first replay restores
	// LRU recency.
	for _, s := range entries {
		e.cache.put(s.key, s.en)
	}
	return len(entries), nil
}

// SaveSnapshotFile atomically writes the cache snapshot to path (via a
// temp file in the same directory plus rename), so a crash mid-save
// leaves the previous snapshot intact rather than a truncated one. The
// snapshot-saves counter is bumped only after the rename lands: it is
// the signal "a durable snapshot exists" (the chaos harness gates a
// victim kill on it), so a failed close or rename must not count.
func (e *Engine) SaveSnapshotFile(path, shard string) (int, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rolag-snapshot-*")
	if err != nil {
		return 0, err
	}
	n, err := e.SaveSnapshot(tmp, shard)
	if err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	e.metrics.snapshotSaves.Add(1)
	return n, nil
}

// LoadSnapshotFile restores the cache from path. A missing file is a
// normal cold start and returns (0, nil); any other failure counts as
// a rejection and returns an error wrapping ErrSnapshotRejected.
func (e *Engine) LoadSnapshotFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		e.metrics.snapshotRejected.Add(1)
		return 0, fmt.Errorf("%w: %v", ErrSnapshotRejected, err)
	}
	defer f.Close()
	return e.LoadSnapshot(f)
}
