package service

import (
	"context"
	"testing"
	"time"

	"rolag"
	"rolag/internal/faultpoint"
)

// TestBreakerLifecycle walks one breaker through every transition with
// an injected clock: closed -> open at the failure threshold, refusal
// while the cooldown runs, a single half-open probe after it, re-arm on
// probe failure, close on probe success.
func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	bs := newBreakerSet(3, 10*time.Second)
	bs.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if !bs.Allow("licm") {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		bs.Report("licm", false)
	}
	if bs.Allow("licm") {
		t.Fatal("breaker allowed work after hitting the threshold")
	}
	if !bs.isOpen("licm") {
		t.Fatal("isOpen false for an open breaker")
	}
	if got := bs.opens.Load(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}

	// Mid-cooldown: still refused.
	clock = clock.Add(5 * time.Second)
	if bs.Allow("licm") {
		t.Fatal("breaker allowed work mid-cooldown")
	}

	// Cooldown elapsed: exactly one probe gets through.
	clock = clock.Add(6 * time.Second)
	if !bs.Allow("licm") {
		t.Fatal("half-open probe refused")
	}
	if bs.Allow("licm") {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe fails: cooldown re-arms.
	bs.Report("licm", false)
	if bs.Allow("licm") {
		t.Fatal("breaker allowed work after a failed probe")
	}
	if got := bs.opens.Load(); got != 2 {
		t.Fatalf("opens = %d after failed probe, want 2", got)
	}

	// Next probe succeeds: breaker closes and stays closed.
	clock = clock.Add(11 * time.Second)
	if !bs.Allow("licm") {
		t.Fatal("second probe refused")
	}
	bs.Report("licm", true)
	for i := 0; i < 3; i++ {
		if !bs.Allow("licm") {
			t.Fatal("closed breaker refused work after recovery")
		}
	}
	if bs.isOpen("licm") {
		t.Fatal("isOpen true after recovery")
	}
}

// TestBreakerSuccessResetsCount checks intervening successes keep a
// flaky-but-mostly-healthy pass from tripping the breaker.
func TestBreakerSuccessResetsCount(t *testing.T) {
	bs := newBreakerSet(3, time.Hour)
	for i := 0; i < 10; i++ {
		bs.Report("licm", false)
		bs.Report("licm", false)
		bs.Report("licm", true)
	}
	if !bs.Allow("licm") {
		t.Fatal("breaker opened despite interleaved successes")
	}
	if got := bs.opens.Load(); got != 0 {
		t.Fatalf("opens = %d, want 0", got)
	}
}

func TestBreakerInfos(t *testing.T) {
	clock := time.Unix(0, 0)
	bs := newBreakerSet(1, 10*time.Second)
	bs.now = func() time.Time { return clock }
	bs.Report("rolag", false) // opens
	bs.Report("licm", true)

	infos := bs.infos()
	if len(infos) != 2 || infos[0].Pass != "licm" || infos[1].Pass != "rolag" {
		t.Fatalf("infos not sorted by pass: %+v", infos)
	}
	if infos[0].State != BreakerClosed || infos[1].State != BreakerOpen {
		t.Fatalf("states = %s/%s, want closed/open", infos[0].State, infos[1].State)
	}
	clock = clock.Add(11 * time.Second)
	infos = bs.infos()
	if infos[1].State != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", infos[1].State)
	}
}

// TestEngineBreakerSkipsPass drives the engine until a pass's breaker
// opens, then checks subsequent compilations skip the pass outright
// (SkipBreaker) and the metrics surface the transition.
func TestEngineBreakerSkipsPass(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	funcs := corpus(t, 2)
	e := New(Config{Workers: 1, BreakerThreshold: 1, BreakerCooldown: time.Hour, CacheEntries: -1})
	defer e.Close(context.Background())

	faultpoint.Arm("pass:licm", faultpoint.KindError, 1)
	r1, err := e.Compile(context.Background(), Request{
		Source: funcs[0].Src, Config: rolag.Config{Opt: rolag.OptRoLAG},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Degraded == nil {
		t.Fatal("faulted compile not marked degraded")
	}

	if !e.breakers.isOpen("licm") {
		t.Fatal("breaker did not open at threshold 1")
	}
	r2, err := e.Compile(context.Background(), Request{
		Source: funcs[1].Src, Config: rolag.Config{Opt: rolag.OptRoLAG},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Degraded == nil {
		t.Fatal("compile under an open breaker not marked degraded")
	}
	sawBreakerSkip := false
	for _, sk := range r2.Degraded.Skips {
		if sk.Pass == "licm" && sk.Reason == "breaker" {
			sawBreakerSkip = true
		}
		if sk.Pass == "licm" && sk.Reason == "error" {
			t.Fatal("licm was attempted under an open breaker")
		}
	}
	if !sawBreakerSkip {
		t.Fatalf("no breaker skip recorded: %v", r2.Degraded)
	}

	m := e.Metrics()
	if m.Degraded < 2 {
		t.Errorf("Degraded = %d, want >= 2", m.Degraded)
	}
	if m.BreakerOpens != 1 {
		t.Errorf("BreakerOpens = %d, want 1", m.BreakerOpens)
	}
	if m.PassSkipped["licm"] == 0 {
		t.Error("PassSkipped missing licm")
	}
	found := false
	for _, bi := range m.Breakers {
		if bi.Pass == "licm" && bi.State == BreakerOpen {
			found = true
		}
	}
	if !found {
		t.Errorf("breaker snapshot missing open licm: %+v", m.Breakers)
	}
}

// TestDegradedNotCached is the cache-poisoning regression test: a
// degraded compile must not populate the cache, and a later clean
// compile of the same request both recomputes and repopulates it.
func TestDegradedNotCached(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	fn := corpus(t, 1)[0]
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	req := Request{Source: fn.Src, Config: rolag.Config{Opt: rolag.OptRoLAG}, EmitIR: true}

	faultpoint.Arm("pass:constfold", faultpoint.KindError, 1)
	r1, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Degraded == nil {
		t.Fatal("faulted compile not marked degraded")
	}
	if r1.CacheHit {
		t.Fatal("first compile marked as cache hit")
	}

	faultpoint.Reset()
	r2, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatal("second compile hit the cache: the degraded result was stored")
	}
	if r2.Degraded != nil {
		t.Fatalf("clean recompile still degraded: %v", r2.Degraded)
	}

	r3, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit {
		t.Fatal("third compile missed: the clean result was not cached")
	}
	if r3.IR != r2.IR {
		t.Fatal("cached IR differs from the clean compile")
	}
	if m := e.Metrics(); m.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", m.Degraded)
	}
}
