package service

import "rolag"

// Key returns the content address of a request: the same SHA-256 key
// the engine's cache is indexed by. Exported so the cluster layer can
// route by key ownership — the router and every rolagd shard must
// compute identical keys for identical requests, which this guarantees
// by construction (one implementation, shared by all of them).
func Key(req *Request) string { return cacheKey(req) }

// CacheEntry is the wire form of one cached compilation result, served
// by rolagd's GET /v1/cache/{key} peer endpoint and imported by a
// shard that fetched it from the key's home shard.
//
// Degraded results never become CacheEntries: the engine refuses to
// cache them locally (a transient pass failure must not poison a
// content-addressed key) and ExportCached only reads the cache, so the
// peer tier inherits the same guarantee for free. That is also why the
// type has no degraded field.
type CacheEntry struct {
	IR           string         `json:"ir"`
	SizeBefore   int            `json:"sizeBefore"`
	SizeAfter    int            `json:"sizeAfter"`
	BinaryBefore int            `json:"binaryBefore"`
	BinaryAfter  int            `json:"binaryAfter"`
	Rerolled     int            `json:"rerolled,omitempty"`
	Stats        *rolag.Stats   `json:"stats,omitempty"`
	Remarks      []rolag.Remark `json:"remarks,omitempty"`
	// Asm/TextBytes carry the backend lowering for FormatAsm keys.
	// Format is part of the cache key, so a shard importing this entry
	// serves it only to requests that asked for the same format.
	Asm       string `json:"asm,omitempty"`
	TextBytes int64  `json:"textBytes,omitempty"`
}

// ExportCached returns the wire form of the cache entry for key, or
// false when the key is not cached here. It only reads the local
// cache — it never compiles and never fetches from a peer, so peer
// cache lookups cannot recurse or cascade across the cluster.
func (e *Engine) ExportCached(key string) (*CacheEntry, bool) {
	if e.cache == nil {
		return nil, false
	}
	en, ok := e.cache.get(key)
	if !ok {
		return nil, false
	}
	return wireFromEntry(en), true
}

// wireFromEntry is the inverse of entryFromWire: the pointer-free wire
// form of a cached result, shared by the peer-cache endpoint and the
// snapshot writer.
func wireFromEntry(en *entry) *CacheEntry {
	return &CacheEntry{
		IR:           en.irText,
		SizeBefore:   en.sizeBefore,
		SizeAfter:    en.sizeAfter,
		BinaryBefore: en.binaryBefore,
		BinaryAfter:  en.binaryAfter,
		Rerolled:     en.rerolled,
		Stats:        copyStats(en.stats),
		Remarks:      en.remarks,
		Asm:          en.asm,
		TextBytes:    en.textBytes,
	}
}

// ImportCached stores a peer-fetched entry in the local cache under
// key. The caller owns ce and must not mutate it afterwards (in
// practice ce is freshly decoded JSON, so nothing else aliases it).
func (e *Engine) ImportCached(key string, ce *CacheEntry) {
	if e.cache == nil || ce == nil {
		return
	}
	e.cache.put(key, entryFromWire(ce))
}

func entryFromWire(ce *CacheEntry) *entry {
	return &entry{
		irText:       ce.IR,
		sizeBefore:   ce.SizeBefore,
		sizeAfter:    ce.SizeAfter,
		binaryBefore: ce.BinaryBefore,
		binaryAfter:  ce.BinaryAfter,
		rerolled:     ce.Rerolled,
		stats:        ce.Stats,
		remarks:      ce.Remarks,
		asm:          ce.Asm,
		textBytes:    ce.TextBytes,
	}
}
