package service

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU map from content hash to immutable
// cache entries. It is deliberately simple: the working set of a corpus
// run is far smaller than the bound, and the bound only exists so a
// long-lived daemon cannot grow without limit.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruItem struct {
	key string
	val *entry
}

func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lruCache) put(key string, val *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruItem).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// exportAll copies out every cached item oldest-first, so replaying
// the slice through put() in order reconstructs the recency order
// (each put moves its key to the front, leaving the last — most
// recent — item as MRU). Entries are immutable, so sharing the
// pointers with the caller is safe.
func (c *lruCache) exportAll() []lruItem {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruItem, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*lruItem))
	}
	return out
}
