package service

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPeerFetchTimeoutSingleFlight pins the contract the cluster tier
// leans on: when the peer fetch for a key times out, the single-flight
// leader falls through to exactly one local compile, followers share
// it, the flight slot is released afterwards (the next call is a plain
// cache hit, no new flight, no second peer fetch), and no goroutines
// are left behind. Run under -race in CI.
func TestPeerFetchTimeoutSingleFlight(t *testing.T) {
	var fetches atomic.Int64
	e := New(Config{
		Workers: 2,
		PeerFetch: func(ctx context.Context, key string) (*CacheEntry, bool) {
			fetches.Add(1)
			// A peer that never answers: wait out a short timeout the
			// way daemon.peerFetch's per-fetch deadline would.
			tctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
			defer cancel()
			<-tctx.Done()
			return nil, true // attempted, failed
		},
	})
	defer e.Close(context.Background())

	before := runtime.NumGoroutine()
	req := Request{Source: corpus(t, 1)[0].Src, EmitIR: true}

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = e.Compile(context.Background(), req)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}

	m := e.Metrics()
	if m.Compiles != 1 {
		t.Fatalf("compiles %d, want exactly 1 (no double compile after peer timeout)", m.Compiles)
	}
	if fetches.Load() != 1 {
		t.Fatalf("peer fetches %d, want 1 (only the flight leader asks the peer)", fetches.Load())
	}
	if m.PeerMisses != 1 {
		t.Fatalf("peer misses %d, want 1", m.PeerMisses)
	}
	if m.CacheMisses != 1 || m.DedupHits != callers-1 {
		t.Fatalf("misses=%d dedup=%d, want 1/%d", m.CacheMisses, m.DedupHits, callers-1)
	}

	// The flight slot must be gone: a fresh call is a cache hit and
	// never re-enters the peer path.
	resp, err := e.Compile(context.Background(), req)
	if err != nil || !resp.CacheHit {
		t.Fatalf("follow-up: hit=%v err=%v, want cache hit", resp != nil && resp.CacheHit, err)
	}
	if fetches.Load() != 1 {
		t.Fatalf("follow-up triggered another peer fetch (%d total)", fetches.Load())
	}

	// No goroutine leak: everything spawned for the flight has exited.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, started with %d: leak after peer timeout", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
