package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/fuzzgen"
	"rolag/internal/obs"
)

// latencyBounds are the upper bounds (seconds) of the compile-latency
// histogram buckets; a final implicit +Inf bucket catches the rest.
var latencyBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// metrics is the engine's hot-path instrumentation: plain atomics, no
// locks, safe to bump from every worker concurrently.
type metrics struct {
	requests    atomic.Int64
	cacheHits   atomic.Int64
	dedupHits   atomic.Int64
	cacheMisses atomic.Int64
	inFlight    atomic.Int64
	compiles    atomic.Int64
	errors      atomic.Int64
	panics      atomic.Int64
	loopsRolled atomic.Int64
	degraded    atomic.Int64
	shed        atomic.Int64
	peerHits    atomic.Int64
	peerMisses  atomic.Int64
	emitIR      atomic.Int64
	emitAsm     atomic.Int64

	// Warm-restart snapshot instrumentation (see snapshot.go).
	snapshotSaves    atomic.Int64
	snapshotLoads    atomic.Int64
	snapshotRejected atomic.Int64
	snapshotEntries  atomic.Int64
	snapshotWarmHits atomic.Int64

	latencyBuckets [len(latencyBounds) + 1]atomic.Int64
	latencyCount   atomic.Int64
	latencyNanos   atomic.Int64

	// skipMu guards passSkipped; the per-pass breakdown is off the hot
	// path (bumped only when a pass actually degrades).
	skipMu      sync.Mutex
	passSkipped map[string]int64

	// remarkMu guards remarkCounts; remarks are only produced when a
	// request opts in, so this is off the default hot path too.
	remarkMu     sync.Mutex
	remarkCounts map[remarkKey]int64
}

// remarkKey labels one rolagd_remarks_total series.
type remarkKey struct {
	Pass   string
	Reason string
}

// countRemarks folds one compilation's remark stream into the
// rolagd_remarks_total{pass,reason} counters. Remarks without an
// explicit rejection reason (rolled, seed, align-node, ...) are keyed
// by their remark name so every decision the optimizer explains is
// countable.
func (m *metrics) countRemarks(remarks []obs.Remark) {
	if len(remarks) == 0 {
		return
	}
	m.remarkMu.Lock()
	if m.remarkCounts == nil {
		m.remarkCounts = make(map[remarkKey]int64)
	}
	for _, r := range remarks {
		reason := r.Reason
		if reason == "" {
			reason = r.Name
		}
		m.remarkCounts[remarkKey{Pass: r.Pass, Reason: reason}]++
	}
	m.remarkMu.Unlock()
}

// skipPass counts one skipped pass execution under the fail-soft
// sandbox, keyed by pass name.
func (m *metrics) skipPass(pass string) {
	m.skipMu.Lock()
	if m.passSkipped == nil {
		m.passSkipped = make(map[string]int64)
	}
	m.passSkipped[pass]++
	m.skipMu.Unlock()
}

func (m *metrics) observeCompile(d time.Duration) {
	sec := d.Seconds()
	idx := len(latencyBounds)
	for i, ub := range latencyBounds {
		if sec <= ub {
			idx = i
			break
		}
	}
	m.latencyBuckets[idx].Add(1)
	m.latencyCount.Add(1)
	m.latencyNanos.Add(int64(d))
}

// Bucket is one cumulative histogram bucket in a MetricsSnapshot.
type Bucket struct {
	// LE is the bucket's inclusive upper bound in seconds; the last
	// bucket's bound is +Inf and serialized as such.
	LE float64 `json:"le"`
	// Count is cumulative, Prometheus-style.
	Count int64 `json:"count"`
}

// MetricsSnapshot is a consistent-enough point-in-time copy of the
// engine counters, suitable for JSON or Prometheus text rendering.
type MetricsSnapshot struct {
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	DedupHits    int64 `json:"dedup_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	InFlight     int64 `json:"in_flight"`
	Compiles     int64 `json:"compiles"`
	Errors       int64 `json:"errors"`
	Panics       int64 `json:"panics"`
	LoopsRolled  int64 `json:"loops_rolled"`
	CacheEntries int   `json:"cache_entries"`
	Workers      int   `json:"workers"`

	// Peer-cache instrumentation: fetch-on-miss lookups against the
	// key's home shard (only counted when a peer was actually asked).
	PeerHits   int64 `json:"peer_hits"`
	PeerMisses int64 `json:"peer_misses"`

	// Emit counters: requests by requested output, the
	// rolagd_emit_total{format} series. A request asking for both IR
	// and assembly counts once under each label.
	EmitIR  int64 `json:"emit_ir"`
	EmitAsm int64 `json:"emit_asm"`

	// Warm-restart snapshot instrumentation: save/load/reject are
	// whole-file operations; SnapshotEntries counts entries restored at
	// load time and SnapshotWarmHits counts cache hits served by those
	// restored entries (the honest measure of restart warmth).
	SnapshotSaves    int64 `json:"snapshot_saves"`
	SnapshotLoads    int64 `json:"snapshot_loads"`
	SnapshotRejected int64 `json:"snapshot_rejected"`
	SnapshotEntries  int64 `json:"snapshot_entries"`
	SnapshotWarmHits int64 `json:"snapshot_warm_hits"`

	// Fail-soft and overload instrumentation.
	Degraded     int64            `json:"degraded"`
	Shed         int64            `json:"shed"`
	PassSkipped  map[string]int64 `json:"pass_skipped,omitempty"`
	BreakerOpens int64            `json:"breaker_opens"`
	Breakers     []BreakerInfo    `json:"breakers,omitempty"`

	LatencyCount      int64    `json:"latency_count"`
	LatencySumSeconds float64  `json:"latency_sum_seconds"`
	LatencyBuckets    []Bucket `json:"latency_buckets"`

	// Phases mirrors the process-wide RoLAG per-phase span histograms
	// (obs.SpanStats) — the exact histograms cmd/rolag-bench reads, so
	// the daemon's rolagd_phase_seconds series and the benchmark harness
	// always agree on phase boundaries. Empty unless span stats are
	// enabled (rolagd -phase-timing, on by default).
	Phases []PhaseStat `json:"phases,omitempty"`

	// Remarks is the per-(pass, reason) count of optimization remarks
	// emitted by compilations that requested them.
	Remarks []RemarkCount `json:"remarks,omitempty"`

	// Fuzz mirrors the process-wide differential-fuzzing counters
	// (internal/fuzzgen): oracle executions, skips, and failures by
	// class. They advance whenever fuzzing runs in this process.
	Fuzz fuzzgen.Counters `json:"fuzz"`
}

// PhaseStat is the accumulated timing of one RoLAG pipeline phase.
type PhaseStat struct {
	// Phase is the metric label: seed, align, schedule, or codegen.
	Phase string `json:"phase"`
	// Count is how many times the phase executed.
	Count int64 `json:"count"`
	// SumSeconds is the total wall-clock spent in the phase.
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets is the cumulative latency histogram (last bucket +Inf).
	Buckets []Bucket `json:"buckets"`
}

// RemarkCount is one rolagd_remarks_total series: how many remarks a
// given pass emitted for a given reason (the remark name, for remarks
// that are not rejections).
type RemarkCount struct {
	Pass   string `json:"pass"`
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// phaseStats converts an obs.SpanStats snapshot into cumulative
// Prometheus-style histogram stats, or nil when stats are disabled.
func phaseStats() []PhaseStat {
	if !obs.SpanStatsEnabled() {
		return nil
	}
	stats := obs.SpanStats()
	out := make([]PhaseStat, 0, len(stats))
	for _, t := range stats {
		st := PhaseStat{
			Phase:      t.Name,
			Count:      int64(t.Count),
			SumSeconds: float64(t.Nanos) / 1e9,
		}
		var cum int64
		for i, ub := range obs.SpanBounds {
			cum += int64(t.Buckets[i])
			st.Buckets = append(st.Buckets, Bucket{LE: ub, Count: cum})
		}
		// Durations above the last bound count only toward Count, so the
		// +Inf bucket is the total.
		st.Buckets = append(st.Buckets, Bucket{LE: inf, Count: st.Count})
		out = append(out, st)
	}
	return out
}

// HitRate returns the fraction of requests served from the cache or a
// shared in-flight compilation.
func (s *MetricsSnapshot) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits+s.DedupHits) / float64(s.Requests)
}

func (m *metrics) snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:          m.requests.Load(),
		CacheHits:         m.cacheHits.Load(),
		DedupHits:         m.dedupHits.Load(),
		CacheMisses:       m.cacheMisses.Load(),
		InFlight:          m.inFlight.Load(),
		Compiles:          m.compiles.Load(),
		Errors:            m.errors.Load(),
		Panics:            m.panics.Load(),
		LoopsRolled:       m.loopsRolled.Load(),
		PeerHits:          m.peerHits.Load(),
		PeerMisses:        m.peerMisses.Load(),
		EmitIR:            m.emitIR.Load(),
		EmitAsm:           m.emitAsm.Load(),
		SnapshotSaves:     m.snapshotSaves.Load(),
		SnapshotLoads:     m.snapshotLoads.Load(),
		SnapshotRejected:  m.snapshotRejected.Load(),
		SnapshotEntries:   m.snapshotEntries.Load(),
		SnapshotWarmHits:  m.snapshotWarmHits.Load(),
		Degraded:          m.degraded.Load(),
		Shed:              m.shed.Load(),
		LatencyCount:      m.latencyCount.Load(),
		LatencySumSeconds: float64(m.latencyNanos.Load()) / 1e9,
		Phases:            phaseStats(),
		Fuzz:              fuzzgen.Snapshot(),
	}
	m.skipMu.Lock()
	if len(m.passSkipped) > 0 {
		s.PassSkipped = make(map[string]int64, len(m.passSkipped))
		for k, v := range m.passSkipped {
			s.PassSkipped[k] = v
		}
	}
	m.skipMu.Unlock()
	m.remarkMu.Lock()
	for k, v := range m.remarkCounts {
		s.Remarks = append(s.Remarks, RemarkCount{Pass: k.Pass, Reason: k.Reason, Count: v})
	}
	m.remarkMu.Unlock()
	sort.Slice(s.Remarks, func(i, j int) bool {
		if s.Remarks[i].Pass != s.Remarks[j].Pass {
			return s.Remarks[i].Pass < s.Remarks[j].Pass
		}
		return s.Remarks[i].Reason < s.Remarks[j].Reason
	})
	var cum int64
	for i := range m.latencyBuckets {
		cum += m.latencyBuckets[i].Load()
		le := inf
		if i < len(latencyBounds) {
			le = latencyBounds[i]
		}
		s.LatencyBuckets = append(s.LatencyBuckets, Bucket{LE: le, Count: cum})
	}
	return s
}

// inf stands in for +Inf so the snapshot stays JSON-encodable.
const inf = 1e308

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters, one gauge, and the compile-latency histogram).
func (s *MetricsSnapshot) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("rolagd_requests_total", "Compilation requests received.", s.Requests)
	counter("rolagd_cache_hits_total", "Requests served from the result cache.", s.CacheHits)
	counter("rolagd_dedup_hits_total", "Requests served by an identical in-flight compilation.", s.DedupHits)
	counter("rolagd_cache_misses_total", "Requests that required a fresh compilation.", s.CacheMisses)
	counter("rolagd_compiles_total", "Fresh compilations executed.", s.Compiles)
	counter("rolagd_errors_total", "Requests that failed.", s.Errors)
	counter("rolagd_panics_total", "Compilations that panicked and were converted to errors.", s.Panics)
	counter("rolagd_loops_rolled_total", "Loops rolled across fresh compilations.", s.LoopsRolled)
	counter("rolagd_peer_cache_hit_total", "Cache misses answered by the key's home shard.", s.PeerHits)
	counter("rolagd_peer_cache_miss_total", "Peer-cache lookups the home shard could not answer.", s.PeerMisses)
	counter("rolagd_degraded_total", "Compilations that completed fail-soft with passes skipped.", s.Degraded)
	counter("rolagd_breaker_open_total", "Circuit-breaker open transitions (incl. re-arms after failed probes).", s.BreakerOpens)
	counter("rolagd_shed_total", "Requests shed by admission control.", s.Shed)
	counter("rolagd_snapshot_save_total", "Cache snapshots durably written (renamed into place) for warm restarts.", s.SnapshotSaves)
	counter("rolagd_snapshot_load_total", "Cache snapshots loaded at startup.", s.SnapshotLoads)
	counter("rolagd_snapshot_rejected_total", "Snapshots rejected (corrupt, truncated, or stale key version); the cache started cold instead.", s.SnapshotRejected)
	counter("rolagd_snapshot_entries_loaded_total", "Cache entries restored from snapshots.", s.SnapshotEntries)
	counter("rolagd_snapshot_warm_hits_total", "Cache hits served by snapshot-restored entries.", s.SnapshotWarmHits)

	fmt.Fprintf(w, "# HELP rolagd_emit_total Requests by requested output format.\n")
	fmt.Fprintf(w, "# TYPE rolagd_emit_total counter\n")
	fmt.Fprintf(w, "rolagd_emit_total{format=\"ir\"} %d\n", s.EmitIR)
	fmt.Fprintf(w, "rolagd_emit_total{format=\"asm\"} %d\n", s.EmitAsm)

	if len(s.PassSkipped) > 0 {
		fmt.Fprintf(w, "# HELP rolagd_pass_skipped_total Pass executions rolled back and skipped, by pass.\n")
		fmt.Fprintf(w, "# TYPE rolagd_pass_skipped_total counter\n")
		names := make([]string, 0, len(s.PassSkipped))
		for name := range s.PassSkipped {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "rolagd_pass_skipped_total{pass=%q} %d\n", name, s.PassSkipped[name])
		}
	}
	if len(s.Breakers) > 0 {
		fmt.Fprintf(w, "# HELP rolagd_breaker_state Per-pass breaker state (0 closed, 1 half-open, 2 open).\n")
		fmt.Fprintf(w, "# TYPE rolagd_breaker_state gauge\n")
		for _, b := range s.Breakers {
			v := 0
			switch b.State {
			case BreakerHalfOpen:
				v = 1
			case BreakerOpen:
				v = 2
			}
			fmt.Fprintf(w, "rolagd_breaker_state{pass=%q} %d\n", b.Pass, v)
		}
	}

	fmt.Fprintf(w, "# HELP rolagd_in_flight_jobs Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE rolagd_in_flight_jobs gauge\nrolagd_in_flight_jobs %d\n", s.InFlight)
	fmt.Fprintf(w, "# HELP rolagd_cache_entries Entries currently in the result cache.\n")
	fmt.Fprintf(w, "# TYPE rolagd_cache_entries gauge\nrolagd_cache_entries %d\n", s.CacheEntries)
	fmt.Fprintf(w, "# HELP rolagd_workers Size of the worker pool.\n")
	fmt.Fprintf(w, "# TYPE rolagd_workers gauge\nrolagd_workers %d\n", s.Workers)

	counter("rolagd_fuzz_execs_total", "Differential-fuzzing oracle executions.", s.Fuzz.Execs)
	counter("rolagd_fuzz_skipped_total", "Fuzz inputs skipped before exercising the pipeline.", s.Fuzz.Skipped)
	counter("rolagd_fuzz_failures_total", "Fuzz failures across all classes.", s.Fuzz.Failures)
	counter("rolagd_fuzz_fail_compile_total", "Fuzz failures: frontend rejections.", s.Fuzz.FailCompile)
	counter("rolagd_fuzz_fail_verify_total", "Fuzz failures: verifier or pass errors.", s.Fuzz.FailVerify)
	counter("rolagd_fuzz_fail_equiv_total", "Fuzz failures: interpreter-observable miscompiles.", s.Fuzz.FailEquiv)
	counter("rolagd_fuzz_fail_cost_total", "Fuzz failures: dishonest cost-model reports.", s.Fuzz.FailCost)
	counter("rolagd_fuzz_fail_panic_total", "Fuzz failures: panics in any stage.", s.Fuzz.FailPanic)
	counter("rolagd_fuzz_fail_remark_total", "Fuzz failures: remark streams that misreport rolling decisions.", s.Fuzz.FailRemark)
	counter("rolagd_fuzz_fail_backend_total", "Fuzz failures: backend lowering errors or nondeterministic encodings.", s.Fuzz.FailBackend)

	if len(s.Remarks) > 0 {
		fmt.Fprintf(w, "# HELP rolagd_remarks_total Optimization remarks emitted, by pass and reason.\n")
		fmt.Fprintf(w, "# TYPE rolagd_remarks_total counter\n")
		for _, r := range s.Remarks {
			fmt.Fprintf(w, "rolagd_remarks_total{pass=%q,reason=%q} %d\n", r.Pass, r.Reason, r.Count)
		}
	}

	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "# HELP rolagd_phase_seconds Wall-clock of RoLAG pipeline phases.\n")
		fmt.Fprintf(w, "# TYPE rolagd_phase_seconds histogram\n")
		for _, ph := range s.Phases {
			for _, b := range ph.Buckets {
				if b.LE >= inf {
					fmt.Fprintf(w, "rolagd_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", ph.Phase, b.Count)
				} else {
					fmt.Fprintf(w, "rolagd_phase_seconds_bucket{phase=%q,le=\"%g\"} %d\n", ph.Phase, b.LE, b.Count)
				}
			}
			fmt.Fprintf(w, "rolagd_phase_seconds_sum{phase=%q} %g\n", ph.Phase, ph.SumSeconds)
			fmt.Fprintf(w, "rolagd_phase_seconds_count{phase=%q} %d\n", ph.Phase, ph.Count)
		}
	}

	fmt.Fprintf(w, "# HELP rolagd_compile_seconds Latency of fresh compilations.\n")
	fmt.Fprintf(w, "# TYPE rolagd_compile_seconds histogram\n")
	for _, b := range s.LatencyBuckets {
		if b.LE >= inf {
			fmt.Fprintf(w, "rolagd_compile_seconds_bucket{le=\"+Inf\"} %d\n", b.Count)
		} else {
			fmt.Fprintf(w, "rolagd_compile_seconds_bucket{le=\"%g\"} %d\n", b.LE, b.Count)
		}
	}
	fmt.Fprintf(w, "rolagd_compile_seconds_sum %g\n", s.LatencySumSeconds)
	fmt.Fprintf(w, "rolagd_compile_seconds_count %d\n", s.LatencyCount)
}
