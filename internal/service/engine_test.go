package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rolag"
	"rolag/internal/workloads/angha"
)

// corpus returns n generated corpus functions with pairwise-distinct
// sources, so cache-hit counts in the tests are deterministic.
func corpus(t *testing.T, n int) []angha.Function {
	t.Helper()
	funcs := angha.Generate(4*n, 20220402)
	seen := make(map[string]bool)
	var out []angha.Function
	for _, fn := range funcs {
		if seen[fn.Src] {
			continue
		}
		seen[fn.Src] = true
		out = append(out, fn)
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("only %d distinct sources in %d generated functions", len(out), 4*n)
	return nil
}

// TestEngineMatchesSerialDriver drives ~50 corpus functions through the
// engine under -race, with identical and distinct configs, and checks
// byte-identical IR plus exact cache-hit accounting against the serial
// rolag facade.
func TestEngineMatchesSerialDriver(t *testing.T) {
	funcs := corpus(t, 50)
	e := New(Config{})
	defer e.Close(context.Background())

	configs := []rolag.Config{
		{Opt: rolag.OptNone},
		{Opt: rolag.OptRoLAG},
		{Opt: rolag.OptLLVMReroll},
	}
	var reqs []Request
	for _, fn := range funcs {
		for _, cfg := range configs {
			cfg.Name = fn.Name
			reqs = append(reqs, Request{Source: fn.Src, Config: cfg, EmitIR: true})
		}
	}

	// Cold pass: every request is distinct, so every one is a fresh
	// compile (a miss or a flight the miss leads).
	cold := e.CompileBatch(context.Background(), reqs)
	m := e.Metrics()
	if m.CacheHits+m.DedupHits != 0 {
		t.Errorf("cold pass: got %d cache hits and %d dedup hits, want 0", m.CacheHits, m.DedupHits)
	}
	if m.Compiles != int64(len(reqs)) {
		t.Errorf("cold pass: %d compiles, want %d", m.Compiles, len(reqs))
	}

	// Warm pass: everything must come from the cache.
	warm := e.CompileBatch(context.Background(), reqs)
	m = e.Metrics()
	if m.CacheHits != int64(len(reqs)) {
		t.Errorf("warm pass: %d cache hits, want %d", m.CacheHits, len(reqs))
	}
	if m.Compiles != int64(len(reqs)) {
		t.Errorf("warm pass recompiled: %d compiles, want %d", m.Compiles, len(reqs))
	}

	for i, item := range cold {
		if item.Err != nil {
			t.Fatalf("req %d: %v", i, item.Err)
		}
		if item.Resp.CacheHit {
			t.Errorf("req %d: cold response marked as cache hit", i)
		}
		w := warm[i]
		if w.Err != nil {
			t.Fatalf("warm req %d: %v", i, w.Err)
		}
		if !w.Resp.CacheHit {
			t.Errorf("req %d: warm response not marked as cache hit", i)
		}
		if w.Resp.IR != item.Resp.IR {
			t.Errorf("req %d: warm IR differs from cold IR", i)
		}

		serial, err := rolag.Build(reqs[i].Source, reqs[i].Config)
		if err != nil {
			t.Fatalf("serial req %d: %v", i, err)
		}
		if got, want := item.Resp.IR, serial.Module.String(); got != want {
			t.Errorf("req %d (%s): engine IR differs from serial driver\nengine:\n%s\nserial:\n%s",
				i, reqs[i].Config.Name, got, want)
		}
		if item.Resp.BinaryAfter != serial.BinaryAfter || item.Resp.SizeAfter != serial.SizeAfter {
			t.Errorf("req %d: sizes (%d,%d) differ from serial (%d,%d)",
				i, item.Resp.SizeAfter, item.Resp.BinaryAfter, serial.SizeAfter, serial.BinaryAfter)
		}
		if serial.Stats != nil {
			if item.Resp.Stats == nil {
				t.Fatalf("req %d: missing stats", i)
			}
			if item.Resp.Stats.LoopsRolled != serial.Stats.LoopsRolled {
				t.Errorf("req %d: rolled %d loops, serial rolled %d",
					i, item.Resp.Stats.LoopsRolled, serial.Stats.LoopsRolled)
			}
		}
	}
}

// TestEngineDedup floods the engine with one identical request and
// checks that exactly one compilation happens.
func TestEngineDedup(t *testing.T) {
	fn := corpus(t, 1)[0]
	e := New(Config{Workers: 4})
	defer e.Close(context.Background())

	const n = 32
	req := Request{Source: fn.Src, Config: rolag.Config{Opt: rolag.OptRoLAG}, EmitIR: true}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = req
	}
	out := e.CompileBatch(context.Background(), reqs)
	var ir string
	for i, item := range out {
		if item.Err != nil {
			t.Fatalf("req %d: %v", i, item.Err)
		}
		if ir == "" {
			ir = item.Resp.IR
		} else if item.Resp.IR != ir {
			t.Errorf("req %d: IR differs across identical requests", i)
		}
	}
	m := e.Metrics()
	if m.Compiles != 1 {
		t.Errorf("compiles = %d, want 1", m.Compiles)
	}
	if m.CacheHits+m.DedupHits != n-1 {
		t.Errorf("hits = %d (cache) + %d (dedup), want %d total", m.CacheHits, m.DedupHits, n-1)
	}
}

// TestCacheKey checks the canonicalization rules the cache relies on.
func TestCacheKey(t *testing.T) {
	base := Request{Source: "int f(int x) { return x; }", Config: rolag.Config{Opt: rolag.OptRoLAG}}

	named := base
	named.Config.Name = "other"
	if cacheKey(&base) != cacheKey(&named) {
		t.Error("Config.Name must not affect the cache key")
	}

	withOpts := base
	withOpts.Config.Options = rolag.DefaultOptions()
	if cacheKey(&base) != cacheKey(&withOpts) {
		t.Error("nil Options and DefaultOptions must share a key")
	}

	fast := base
	fast.Config.Options = rolag.DefaultOptions()
	fast.Config.Options.FastMath = true
	if cacheKey(&base) == cacheKey(&fast) {
		t.Error("FastMath must change the cache key")
	}

	unrolled := base
	unrolled.Config.Unroll = 8
	if cacheKey(&base) == cacheKey(&unrolled) {
		t.Error("Unroll must change the cache key")
	}

	otherSrc := base
	otherSrc.Source = "int g(int x) { return x + 1; }"
	if cacheKey(&base) == cacheKey(&otherSrc) {
		t.Error("source must change the cache key")
	}

	irIn := base
	irIn.IRInput = true
	if cacheKey(&base) == cacheKey(&irIn) {
		t.Error("IRInput must change the cache key")
	}

	asm := base
	asm.Format = FormatAsm
	if cacheKey(&base) == cacheKey(&asm) {
		t.Error("Format must change the cache key")
	}
}

// TestEngineFormatAsm exercises the format=asm path: the response
// carries assembly text and a measured .text size, both survive a
// cache hit, and a format-less request for the same source does not
// see them.
func TestEngineFormatAsm(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close(context.Background())

	req := Request{
		Source: "int sum4(int *a) { return a[0] + a[1] + a[2] + a[3]; }",
		Config: rolag.Config{Opt: rolag.OptRoLAG},
		Format: FormatAsm,
	}
	resp, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Asm == "" {
		t.Error("format=asm response missing assembly")
	}
	if !strings.Contains(resp.Asm, "sum4:") {
		t.Errorf("assembly lacks the function label:\n%s", resp.Asm)
	}
	if resp.TextBytes <= 0 {
		t.Errorf("measured .text size = %d, want > 0", resp.TextBytes)
	}

	hit, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Error("identical asm request missed the cache")
	}
	if hit.Asm != resp.Asm || hit.TextBytes != resp.TextBytes {
		t.Error("cached asm result differs from the fresh one")
	}

	plain := req
	plain.Format = ""
	presp, err := e.Compile(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if presp.CacheHit {
		t.Error("format-less request hit the asm entry: formats share a key")
	}
	if presp.Asm != "" || presp.TextBytes != 0 {
		t.Errorf("format-less response carries asm: %q, %d", presp.Asm, presp.TextBytes)
	}

	bad := req
	bad.Format = "elf"
	if _, err := e.Compile(context.Background(), bad); err == nil {
		t.Error("unknown format accepted")
	}

	m := e.Metrics()
	if m.EmitAsm != 2 {
		t.Errorf("EmitAsm = %d, want 2 (two accepted asm requests)", m.EmitAsm)
	}
}

// TestEngineImmutableCache mutates a returned module and re-requests the
// same key, checking the cached result is unaffected.
func TestEngineImmutableCache(t *testing.T) {
	fn := corpus(t, 1)[0]
	e := New(Config{Workers: 2})
	defer e.Close(context.Background())

	req := Request{Source: fn.Src, Config: rolag.Config{Opt: rolag.OptRoLAG}, EmitIR: true, NeedModule: true}
	first, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize the caller's copy.
	for _, f := range first.Module.Funcs {
		f.Name = "clobbered"
		f.Blocks = nil
	}
	first.Stats.LoopsRolled = 999999

	second, err := e.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("expected a cache hit")
	}
	if second.IR != first.IR {
		t.Error("cached IR changed after caller mutation")
	}
	if second.Module.String() != first.IR {
		t.Error("cached module changed after caller mutation")
	}
	if second.Stats.LoopsRolled == 999999 {
		t.Error("cached stats alias the caller's copy")
	}
}

// TestEnginePanicRecovery injects a panic into one job and checks it
// becomes that job's error while the batch survives.
func TestEnginePanicRecovery(t *testing.T) {
	funcs := corpus(t, 3)
	hook := func(r *Request) {
		if r.Config.Name == "boom" {
			panic("injected failure")
		}
	}
	testCompileHook.Store(&hook)
	defer testCompileHook.Store(nil)

	e := New(Config{Workers: 2})
	defer e.Close(context.Background())

	reqs := []Request{
		{Source: funcs[0].Src, Config: rolag.Config{Name: "ok1", Opt: rolag.OptRoLAG}},
		{Source: funcs[1].Src, Config: rolag.Config{Name: "boom", Opt: rolag.OptRoLAG}},
		{Source: funcs[2].Src, Config: rolag.Config{Name: "ok2", Opt: rolag.OptRoLAG}},
	}
	out := e.CompileBatch(context.Background(), reqs)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v, %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "panicked") {
		t.Fatalf("panicking job: got err %v, want a panic error", out[1].Err)
	}
	if m := e.Metrics(); m.Panics != 1 {
		t.Errorf("panics = %d, want 1", m.Panics)
	}
}

// TestEngineDeadline checks that an expired per-job context fails the
// job promptly.
func TestEngineDeadline(t *testing.T) {
	fn := corpus(t, 1)[0]
	hook := func(*Request) { time.Sleep(30 * time.Millisecond) }
	testCompileHook.Store(&hook)
	defer testCompileHook.Store(nil)

	e := New(Config{Workers: 1})
	defer e.Close(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := e.Compile(ctx, Request{Source: fn.Src, Config: rolag.Config{Opt: rolag.OptRoLAG}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestEngineCloseDrains checks graceful shutdown: in-flight jobs finish,
// later submissions are rejected, Close is idempotent.
func TestEngineCloseDrains(t *testing.T) {
	funcs := corpus(t, 8)
	hook := func(*Request) { time.Sleep(10 * time.Millisecond) }
	testCompileHook.Store(&hook)
	defer testCompileHook.Store(nil)

	e := New(Config{Workers: 2})
	var wg sync.WaitGroup
	errs := make([]error, len(funcs))
	for i, fn := range funcs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			_, errs[i] = e.Compile(context.Background(), Request{Source: src, Config: rolag.Config{Opt: rolag.OptNone}})
		}(i, fn.Src)
	}
	// Wait until every submission has been accepted, then drain.
	waitInFlight(t, e, len(funcs))
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d failed during graceful drain: %v", i, err)
		}
	}
	if _, err := e.Compile(context.Background(), Request{Source: funcs[0].Src}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compile after Close: got %v, want ErrClosed", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestEngineCloseTimeout checks that a drain deadline abandons queued
// jobs with ErrDraining instead of hanging.
func TestEngineCloseTimeout(t *testing.T) {
	funcs := corpus(t, 6)
	block := make(chan struct{})
	hook := func(*Request) { <-block }
	testCompileHook.Store(&hook)
	defer func() {
		close(block)
		testCompileHook.Store(nil)
	}()

	e := New(Config{Workers: 1, QueueDepth: 1})
	var wg sync.WaitGroup
	errCh := make(chan error, len(funcs))
	for _, fn := range funcs {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			_, err := e.Compile(context.Background(), Request{Source: src, Config: rolag.Config{Opt: rolag.OptNone}})
			errCh <- err
		}(fn.Src)
	}
	waitInFlight(t, e, len(funcs))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close: got %v, want context.DeadlineExceeded", err)
	}
	wg.Wait()
	close(errCh)
	var drained int
	for err := range errCh {
		if errors.Is(err, ErrDraining) {
			drained++
		} else if err != nil {
			t.Errorf("unexpected job error: %v", err)
		}
	}
	if drained == 0 {
		t.Error("no queued job was abandoned with ErrDraining")
	}
}

// waitInFlight blocks until the engine reports n accepted jobs.
func waitInFlight(t *testing.T, e *Engine, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Metrics().InFlight < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs in flight", e.Metrics().InFlight, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheEviction checks the LRU bound holds.
func TestCacheEviction(t *testing.T) {
	funcs := corpus(t, 10)
	e := New(Config{Workers: 2, CacheEntries: 4})
	defer e.Close(context.Background())
	for _, fn := range funcs {
		if _, err := e.Compile(context.Background(), Request{Source: fn.Src, Config: rolag.Config{Opt: rolag.OptNone}}); err != nil {
			t.Fatal(err)
		}
	}
	if m := e.Metrics(); m.CacheEntries != 4 {
		t.Errorf("cache entries = %d, want 4", m.CacheEntries)
	}
}
