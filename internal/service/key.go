package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"rolag"
	"rolag/internal/costmodel"
)

// cacheKeyVersion tags the cache-key layout. It is the first component
// of every key and is stamped into cache snapshots, so a snapshot
// written under an older key layout can never warm a cache whose keys
// are hashed under a newer one — the loader rejects it and starts cold.
const cacheKeyVersion = "v3"

// cacheKey derives the content address of a request: the SHA-256 of the
// source text plus a canonical encoding of every Config field that can
// change the compiled output.
//
// Config.Name is deliberately excluded — the module name never appears
// in the printed IR or in any size measurement, so two requests that
// differ only in name share one compilation. Config.CloneInput is an
// ownership knob, not a pipeline knob, and is likewise excluded. The
// fail-soft knobs (FailSoft, PassBudget, Guard) are excluded too: the
// engine sets them itself on every job, and a degraded result is never
// stored, so the cache only ever holds outputs equal to what the
// fail-hard pipeline would produce for the same key. Config.Parallelism
// is engine-set as well, and the parallel pipeline's output is
// byte-identical to serial by contract, so it cannot split the key
// space either. Config.Remarks IS part of the key: remarks travel in
// the Response, so a remark-less cached result must not satisfy a
// request that asked for them (and vice versa — remark streams are
// deterministic, so a remarks=true entry answers every remarks=true
// request exactly).
// Options.Model is canonicalized by value (nil means the default
// profitability model), so the fresh-but-identical *Model pointers that
// rolag.DefaultOptions returns on every call all map to the same key.
// Request.Format IS part of the key for the same reason Remarks is:
// the lowered assembly travels in the entry, so an asm-less cached
// result must not satisfy a request that asked for asm.
func cacheKey(req *Request) string {
	h := sha256.New()
	cfg := &req.Config
	fmt.Fprintf(h, "%s|ir=%t|unroll=%d|opt=%d|flatten=%t|skipcleanup=%t|remarks=%t|format=%s|",
		cacheKeyVersion, req.IRInput, cfg.Unroll, cfg.Opt, cfg.Flatten, cfg.SkipCleanup, cfg.Remarks, req.Format)
	if cfg.Opt == rolag.OptRoLAG {
		o := cfg.Options
		if o == nil {
			o = rolag.DefaultOptions()
		}
		fmt.Fprintf(h, "intseq=%t|neutralptr=%t|neutralbinop=%t|commutative=%t|recurrence=%t|reduction=%t|joint=%t|minmax=%t|mismatch=%t|fastmath=%t|alwaysroll=%t|minlanes=%d|",
			o.EnableIntSeq, o.EnableNeutralPtr, o.EnableNeutralBinOp,
			o.EnableCommutative, o.EnableRecurrence, o.EnableReduction,
			o.EnableJoint, o.EnableMinMaxReduction, o.EnableMismatch,
			o.FastMath, o.AlwaysRoll, o.MinLanes)
		model := o.Model
		if model == nil {
			model = costmodel.Default()
		}
		fmt.Fprintf(h, "model=%d,%d,%d,%t|",
			model.CallBytes, model.BranchBytes, model.CondBranchBytes, model.BinaryMode)
	}
	h.Write([]byte(req.Source))
	return hex.EncodeToString(h.Sum(nil))
}
