package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// snapshotEngine compiles n distinct corpus functions into a fresh
// engine and returns it with the requests it served.
func snapshotEngine(t *testing.T, n int) (*Engine, []Request) {
	t.Helper()
	e := New(Config{Workers: 2})
	t.Cleanup(func() { e.Close(context.Background()) })
	var reqs []Request
	for _, fn := range corpus(t, n) {
		req := Request{Source: fn.Src, EmitIR: true}
		if _, err := e.Compile(context.Background(), req); err != nil {
			t.Fatalf("compile %s: %v", fn.Name, err)
		}
		reqs = append(reqs, req)
	}
	return e, reqs
}

func TestSnapshotRoundTrip(t *testing.T) {
	src, reqs := snapshotEngine(t, 5)

	var buf bytes.Buffer
	wrote, err := src.SaveSnapshot(&buf, "shard-a")
	if err != nil {
		t.Fatal(err)
	}
	if wrote != len(reqs) {
		t.Fatalf("saved %d entries, want %d", wrote, len(reqs))
	}

	// Record the source engine's answers for parity.
	want := make([]string, len(reqs))
	for i, req := range reqs {
		resp, err := src.Compile(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp.IR
	}

	dst := New(Config{Workers: 2})
	defer dst.Close(context.Background())
	loaded, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != wrote {
		t.Fatalf("loaded %d entries, want %d", loaded, wrote)
	}
	for i, req := range reqs {
		resp, err := dst.Compile(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Fatalf("request %d: not a cache hit after snapshot load", i)
		}
		if resp.IR != want[i] {
			t.Fatalf("request %d: IR differs from the snapshotted engine's", i)
		}
	}
	m := dst.Metrics()
	if m.Compiles != 0 {
		t.Fatalf("warm engine compiled %d times, want 0", m.Compiles)
	}
	if m.SnapshotLoads != 1 || m.SnapshotEntries != int64(wrote) {
		t.Fatalf("loads=%d entries=%d, want 1/%d", m.SnapshotLoads, m.SnapshotEntries, wrote)
	}
	if m.SnapshotWarmHits != int64(len(reqs)) {
		t.Fatalf("snapshot warm hits %d, want %d", m.SnapshotWarmHits, len(reqs))
	}
	if m.SnapshotRejected != 0 {
		t.Fatalf("rejected %d, want 0", m.SnapshotRejected)
	}
}

// TestSnapshotRejection feeds the loader every class of damaged file —
// truncation, bit flips in entry payload / key / checksum, a stale
// cache-key version, wrong formats, garbage — and requires the same
// outcome for each: an ErrSnapshotRejected error, a bumped rejected
// counter, a stone-cold cache, and no panic.
func TestSnapshotRejection(t *testing.T) {
	src, reqs := snapshotEngine(t, 4)
	var buf bytes.Buffer
	if _, err := src.SaveSnapshot(&buf, "shard-a"); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	lines := bytes.SplitAfter(good, []byte("\n"))

	// flip corrupts the file at the first occurrence of marker past the
	// header line.
	flip := func(marker string) []byte {
		hdrLen := len(lines[0])
		i := bytes.Index(good[hdrLen:], []byte(marker))
		if i < 0 {
			t.Fatalf("marker %q not found", marker)
		}
		bad := append([]byte(nil), good...)
		bad[hdrLen+i+len(marker)] ^= 0x01
		return bad
	}
	rewriteHeader := func(mutate func(map[string]any)) []byte {
		var hdr map[string]any
		if err := json.Unmarshal(lines[0], &hdr); err != nil {
			t.Fatal(err)
		}
		mutate(hdr)
		out, err := json.Marshal(hdr)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, '\n')
		return append(out, good[len(lines[0]):]...)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not json at all\n")},
		{"header-only-truncation", lines[0]},
		{"mid-entry-truncation", good[:len(good)-len(lines[len(lines)-2])/2-1]},
		{"missing-last-entry", good[:len(good)-len(lines[len(lines)-2])]},
		{"bit-flipped-entry", flip(`"entry":{"ir":`)},
		{"bit-flipped-key", flip(`"key":"`)},
		{"bit-flipped-checksum", flip(`"sum":"`)},
		{"stale-cache-key-version", rewriteHeader(func(h map[string]any) { h["cacheKey"] = "v2" })},
		{"future-snapshot-version", rewriteHeader(func(h map[string]any) { h["version"] = 99 })},
		{"alien-format", rewriteHeader(func(h map[string]any) { h["format"] = "someone-elses-file" })},
		{"overclaimed-entry-count", rewriteHeader(func(h map[string]any) { h["entries"] = 1000 })},
		// The header is unchecksummed, so a hostile count must reject
		// without panicking or allocating: a negative count used to panic
		// makeslice, a huge one used to attempt the allocation up front.
		{"negative-entry-count", rewriteHeader(func(h map[string]any) { h["entries"] = -1 })},
		{"absurd-entry-count", rewriteHeader(func(h map[string]any) { h["entries"] = int64(1) << 40 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(Config{Workers: 1})
			defer e.Close(context.Background())
			n, err := e.LoadSnapshot(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("load succeeded, want rejection")
			}
			if !errors.Is(err, ErrSnapshotRejected) {
				t.Fatalf("error %v does not wrap ErrSnapshotRejected", err)
			}
			if n != 0 {
				t.Fatalf("reported %d loaded entries on rejection", n)
			}
			m := e.Metrics()
			if m.SnapshotRejected != 1 {
				t.Fatalf("rejected counter %d, want 1", m.SnapshotRejected)
			}
			if m.CacheEntries != 0 {
				t.Fatalf("cache holds %d entries after rejection, want cold", m.CacheEntries)
			}
			// Cold but alive: the engine still compiles.
			resp, err := e.Compile(context.Background(), reqs[0])
			if err != nil {
				t.Fatalf("compile after rejection: %v", err)
			}
			if resp.CacheHit {
				t.Fatal("cache hit on a cold engine")
			}
		})
	}
}

func TestSnapshotFileMissingIsColdStart(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	n, err := e.LoadSnapshotFile(t.TempDir() + "/nope.snapshot")
	if err != nil || n != 0 {
		t.Fatalf("missing file: (%d, %v), want (0, nil)", n, err)
	}
	if m := e.Metrics(); m.SnapshotRejected != 0 {
		t.Fatalf("missing file counted as rejection (%d)", m.SnapshotRejected)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	src, reqs := snapshotEngine(t, 3)
	path := t.TempDir() + "/cache.snapshot"
	wrote, err := src.SaveSnapshotFile(path, "shard-a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, ".snapshot") || wrote != len(reqs) {
		t.Fatalf("wrote %d entries to %s", wrote, path)
	}
	dst := New(Config{Workers: 1})
	defer dst.Close(context.Background())
	loaded, err := dst.LoadSnapshotFile(path)
	if err != nil || loaded != wrote {
		t.Fatalf("load: (%d, %v), want (%d, nil)", loaded, err, wrote)
	}
	resp, err := dst.Compile(context.Background(), reqs[0])
	if err != nil || !resp.CacheHit {
		t.Fatalf("post-load compile: hit=%v err=%v", resp != nil && resp.CacheHit, err)
	}
	if m := src.Metrics(); m.SnapshotSaves != 1 {
		t.Fatalf("snapshot saves = %d after one durable save, want 1", m.SnapshotSaves)
	}
}

// TestSnapshotSavesCountDurableWritesOnly pins the saves counter to the
// durable rename: the chaos harness gates a victim kill on it, so a
// stream-only save or a failed rename must not bump it.
func TestSnapshotSavesCountDurableWritesOnly(t *testing.T) {
	src, _ := snapshotEngine(t, 2)

	var buf bytes.Buffer
	if _, err := src.SaveSnapshot(&buf, "shard-a"); err != nil {
		t.Fatal(err)
	}
	if m := src.Metrics(); m.SnapshotSaves != 0 {
		t.Fatalf("stream save bumped the durable-saves counter to %d", m.SnapshotSaves)
	}

	// Renaming the temp file onto an existing directory fails, so the
	// save is not durable and must not count.
	if _, err := src.SaveSnapshotFile(t.TempDir(), "shard-a"); err == nil {
		t.Fatal("SaveSnapshotFile onto a directory succeeded, want rename failure")
	}
	if m := src.Metrics(); m.SnapshotSaves != 0 {
		t.Fatalf("failed rename bumped the durable-saves counter to %d", m.SnapshotSaves)
	}

	if _, err := src.SaveSnapshotFile(t.TempDir()+"/cache.snapshot", "shard-a"); err != nil {
		t.Fatal(err)
	}
	if m := src.Metrics(); m.SnapshotSaves != 1 {
		t.Fatalf("snapshot saves = %d after one durable save, want 1", m.SnapshotSaves)
	}
}

// TestSnapshotPreservesRecency pins the oldest-first write order: after
// reloading into a small cache, the entries that survive eviction must
// be the most recently used ones.
func TestSnapshotPreservesRecency(t *testing.T) {
	src, reqs := snapshotEngine(t, 6)
	var buf bytes.Buffer
	if _, err := src.SaveSnapshot(&buf, ""); err != nil {
		t.Fatal(err)
	}
	// Load into a cache that can only hold half the snapshot: the
	// oldest-first write order means eviction keeps the newest three.
	dst := New(Config{Workers: 1, CacheEntries: 3})
	defer dst.Close(context.Background())
	if _, err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for i := len(reqs) - 3; i < len(reqs); i++ {
		resp, err := dst.Compile(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Fatalf("recent entry %d evicted; write order lost recency", i)
		}
	}
}
