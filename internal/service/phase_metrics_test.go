package service

import (
	"context"
	"strings"
	"testing"

	"rolag"
	"rolag/internal/obs"
)

// TestPhaseMetrics drives RoLAG compilations with span stats enabled
// and function-level parallelism on, then checks that the per-phase
// histograms surface in the snapshot and in the Prometheus exposition
// with cumulative buckets.
func TestPhaseMetrics(t *testing.T) {
	obs.EnableSpanStats(true)
	defer obs.EnableSpanStats(false)
	obs.ResetSpanStats()

	e := New(Config{FuncParallelism: 4})
	defer e.Close(context.Background())

	for _, fn := range corpus(t, 12) {
		if _, err := e.Compile(context.Background(), Request{
			Source: fn.Src,
			Config: rolag.Config{Opt: rolag.OptRoLAG},
		}); err != nil {
			t.Fatal(err)
		}
	}

	s := e.Metrics()
	if len(s.Phases) < 4 {
		t.Fatalf("snapshot has %d phases, want at least the 4 RoLAG phases", len(s.Phases))
	}
	byName := make(map[string]PhaseStat)
	for _, ph := range s.Phases {
		byName[ph.Phase] = ph
	}
	seed, ok := byName["seed"]
	if !ok || seed.Count == 0 {
		t.Fatalf("seed phase not recorded: %+v", s.Phases)
	}
	for _, ph := range s.Phases {
		if len(ph.Buckets) != len(obs.SpanBounds)+1 {
			t.Fatalf("phase %s has %d buckets, want %d", ph.Phase, len(ph.Buckets), len(obs.SpanBounds)+1)
		}
		var prev int64
		for _, b := range ph.Buckets {
			if b.Count < prev {
				t.Fatalf("phase %s buckets not cumulative: %+v", ph.Phase, ph.Buckets)
			}
			prev = b.Count
		}
		if inf := ph.Buckets[len(ph.Buckets)-1]; inf.Count != ph.Count {
			t.Fatalf("phase %s +Inf bucket %d != count %d", ph.Phase, inf.Count, ph.Count)
		}
	}

	var sb strings.Builder
	s.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"# TYPE rolagd_phase_seconds histogram",
		`rolagd_phase_seconds_bucket{phase="seed",le="+Inf"}`,
		`rolagd_phase_seconds_count{phase="codegen"}`,
		`rolagd_phase_seconds_sum{phase="align"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// Disabled timing must drop the series from fresh snapshots.
	obs.EnableSpanStats(false)
	if s := e.Metrics(); len(s.Phases) != 0 {
		t.Errorf("phases present with timing disabled: %+v", s.Phases)
	}
}
