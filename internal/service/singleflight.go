package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent compilations of the same cache
// key: the first caller (the leader) runs the compile, every concurrent
// caller with the same key waits for the leader's result instead of
// compiling again. Results are shared as immutable cache entries;
// errors are shared with the waiting callers of that flight but are
// never cached.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done  chan struct{}
	entry *entry
	err   error
}

// do runs fn under the key's flight. It returns the entry, the error,
// and whether this caller was the leader (ran fn itself). A follower
// whose ctx expires before the leader finishes returns ctx.Err().
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*entry, error)) (*entry, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.entry, f.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.entry, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.entry, f.err, true
}
