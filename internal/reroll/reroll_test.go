package reroll_test

import (
	"testing"

	"rolag/internal/analysis"
	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/reroll"
	"rolag/internal/unroll"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "rr")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

// unrollThenReroll unrolls f's loops by factor, rerolls, and returns how
// many loops rerolled.
func unrollThenReroll(t *testing.T, m *ir.Module, factor int) int {
	t.Helper()
	n := 0
	for _, f := range m.Funcs {
		unroll.UnrollAll(f, factor)
	}
	passes.Standard().Run(m)
	for _, f := range m.Funcs {
		n += reroll.RerollFunc(f)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after reroll: %v\n%s", err, m)
	}
	return n
}

func TestRerollRoundTripShrinks(t *testing.T) {
	src := `
void f(int *a, int *b) {
	for (int i = 0; i < 64; i++) a[i] = b[i] * 3 + 1;
}`
	orig := build(t, src)
	work := build(t, src)
	sizeRolled := work.FindFunc("f").NumInstrs()
	if n := unrollThenReroll(t, work, 8); n != 1 {
		t.Fatalf("rerolled %d, want 1", n)
	}
	if got := work.FindFunc("f").NumInstrs(); got > sizeRolled+2 {
		t.Errorf("rerolled function has %d instrs; the rolled original had %d", got, sizeRolled)
	}
	if err := interp.CheckEquiv(orig, work, "f", 3, nil); err != nil {
		t.Error(err)
	}
}

func TestRerollReduction(t *testing.T) {
	src := `
int f(int *a) {
	int s = 0;
	for (int i = 0; i < 32; i++) s += a[i] * a[i];
	return s;
}`
	orig := build(t, src)
	work := build(t, src)
	if n := unrollThenReroll(t, work, 4); n != 1 {
		t.Fatalf("rerolled %d, want 1", n)
	}
	if err := interp.CheckEquiv(orig, work, "f", 3, nil); err != nil {
		t.Error(err)
	}
}

func TestRerollRejectsNonUnrolledLoop(t *testing.T) {
	// A step-1 loop has no roots to collect.
	m := build(t, `void f(int *a) { for (int i = 0; i < 8; i++) a[i] = i; }`)
	f := m.FindFunc("f")
	if n := reroll.RerollFunc(f); n != 0 {
		t.Errorf("rerolled %d loops in already-rolled code", n)
	}
}

func TestRerollRejectsPerturbedIteration(t *testing.T) {
	// Manually unrolled by 2 but with one iteration subtly different
	// (extra +1): the structural match must fail.
	src := `
void f(int *a, int *b) {
	for (int i = 0; i < 32; i += 2) {
		a[i] = b[i] * 3;
		a[i + 1] = b[i + 1] * 3 + 1;
	}
}`
	m := build(t, src)
	f := m.FindFunc("f")
	if n := reroll.RerollFunc(f); n != 0 {
		t.Errorf("rerolled %d perturbed loops, want 0\n%s", n, f)
	}
	if err := m.Verify(); err != nil {
		t.Errorf("rejected reroll broke the IR: %v", err)
	}
}

func TestRerollRejectsExtraInstruction(t *testing.T) {
	// An instruction belonging to no iteration (the coverage rule).
	src := `
int g;
void f(int *a, int *b) {
	for (int i = 0; i < 32; i += 2) {
		a[i] = b[i] * 3;
		a[i + 1] = b[i + 1] * 3;
		g = g + i;
	}
}`
	m := build(t, src)
	f := m.FindFunc("f")
	if n := reroll.RerollFunc(f); n != 0 {
		t.Errorf("rerolled %d loops despite uncovered instruction\n%s", n, f)
	}
}

func TestRerollHandwrittenUnrolledLoop(t *testing.T) {
	// The Fig. 1a shape, written by hand rather than machine-unrolled.
	src := `
void f(int *a, int factor) {
	for (int i = 0; i < 30; i += 3) {
		a[i] = factor * i;
		a[i + 1] = factor * (i + 1);
		a[i + 2] = factor * (i + 2);
	}
}`
	orig := build(t, src)
	work := build(t, src)
	f := work.FindFunc("f")
	n := reroll.RerollFunc(f)
	if n != 1 {
		t.Fatalf("rerolled %d, want 1\n%s", n, f)
	}
	passes.Standard().Run(work)
	if err := work.Verify(); err != nil {
		t.Fatal(err)
	}
	// Step must now be 1.
	loops := analysis.FindLoops(work.FindFunc("f"))
	if len(loops) != 1 || loops[0].Step != 1 {
		t.Errorf("expected a step-1 loop after rerolling")
	}
	if err := interp.CheckEquiv(orig, work, "f", 3, nil); err != nil {
		t.Error(err)
	}
}

func TestRerollMultipleArrays(t *testing.T) {
	src := `
void f(int *a, int *b, int *c, int *d) {
	for (int i = 0; i < 40; i++) {
		a[i] = b[i] + c[i];
		d[i] = a[i] * 2;
	}
}`
	orig := build(t, src)
	work := build(t, src)
	if n := unrollThenReroll(t, work, 8); n != 1 {
		t.Fatalf("rerolled %d, want 1", n)
	}
	if err := interp.CheckEquiv(orig, work, "f", 3, nil); err != nil {
		t.Error(err)
	}
}
