// Package reroll reimplements the loop-rerolling strategy of LLVM's
// LoopReroll pass as described in §II of the paper: for each single-block
// loop it looks for a basic induction variable with step F, finds the F-1
// "root" increments iv+1 .. iv+F-1, collects the instruction set of each
// unrolled iteration by following definition-use chains, structurally
// matches corresponding instructions across iterations, and — when every
// instruction in the loop is accounted for — deletes the replicas and
// resets the induction step to 1.
//
// Like the original, the technique is deliberately rigid: it reverses
// partial unrolls of step-1 loops (including simple reductions) and
// nothing else; that rigidity is precisely what the paper's evaluation
// exposes.
package reroll

import (
	"fmt"
	"sort"

	"rolag/internal/analysis"
	"rolag/internal/ir"
	"rolag/internal/obs"
)

// RerollFunc attempts to reroll every single-block loop in f, returning
// the number of loops rerolled.
func RerollFunc(f *ir.Func) int {
	return RerollFuncObs(f, nil)
}

// RerollFuncObs is RerollFunc with optimization remarks: every loop
// with an unrolled-looking induction step (>= 2) gets a "rerolled" or
// "reroll-reject" remark naming the header block and the rejection
// detail; step-1 loops are skipped silently, since there is nothing to
// reroll and remarking every ordinary loop would be noise. A nil rec
// collects nothing.
func RerollFuncObs(f *ir.Func, rec *obs.Recorder) int {
	n := 0
	for _, l := range analysis.FindLoops(f) {
		step := l.Step
		err := RerollLoop(f, l)
		if err == nil {
			n++
			if rec.On() {
				rec.Add(obs.Remark{
					Pass: "reroll", Name: "rerolled", Status: obs.StatusPassed,
					Func: f.Name, Block: l.Header.Name,
					Instr: "%" + l.IV.Name,
					Lanes: int(step),
				})
			}
			continue
		}
		if step >= 2 && rec.On() {
			rec.Add(obs.Remark{
				Pass: "reroll", Name: "reroll-reject", Status: obs.StatusMissed,
				Func: f.Name, Block: l.Header.Name,
				Instr:  "%" + l.IV.Name,
				Reason: "no-reroll",
				Detail: err.Error(),
				Lanes:  int(step),
			})
		}
	}
	return n
}

// RerollLoop rerolls one loop or returns an error explaining why it
// cannot.
func RerollLoop(f *ir.Func, l *analysis.Loop) error {
	factor := l.Step
	if factor < 2 {
		return fmt.Errorf("reroll: induction step %d leaves nothing to reroll", factor)
	}
	b := l.Header
	users := f.Users()
	index := make(map[*ir.Instr]int, len(b.Instrs))
	for i, in := range b.Instrs {
		index[in] = i
	}

	// Find the roots: add iv, m for m = 1..factor-1.
	roots := make([]*ir.Instr, factor) // roots[0] is conceptually the IV itself
	isRoot := make(map[*ir.Instr]bool)
	for _, in := range b.Instrs {
		if in.Op != ir.OpAdd || in == l.Next {
			continue
		}
		var m int64
		if in.Operand(0) == l.IV {
			c, ok := ir.IntValue(in.Operand(1))
			if !ok {
				continue
			}
			m = c
		} else if in.Operand(1) == l.IV {
			c, ok := ir.IntValue(in.Operand(0))
			if !ok {
				continue
			}
			m = c
		} else {
			continue
		}
		if m >= 1 && m < factor {
			if roots[m] != nil {
				return fmt.Errorf("reroll: duplicate root for offset %d", m)
			}
			roots[m] = in
			isRoot[in] = true
		}
	}
	for m := int64(1); m < factor; m++ {
		if roots[m] == nil {
			return fmt.Errorf("reroll: missing root iv+%d", m)
		}
	}

	// Latch instructions are excluded from iteration sets.
	isLatch := map[*ir.Instr]bool{l.Next: true, l.Cmp: true, l.CondBr: true}

	// Detect simple reductions: a non-IV phi whose backedge value is the
	// end of a chain of same-opcode binary operations of length factor.
	type reduction struct {
		phi   *ir.Instr
		chain []*ir.Instr
	}
	var reductions []reduction
	inChain := make(map[*ir.Instr]bool)
	for _, phi := range b.Phis() {
		if phi == l.IV {
			continue
		}
		back, ok := phi.PhiIncoming(b)
		if !ok {
			continue
		}
		last, ok := back.(*ir.Instr)
		if !ok || !last.Op.IsBinary() || last.Parent != b {
			return fmt.Errorf("reroll: unsupported loop-carried phi %%%s", phi.Name)
		}
		// Walk the chain backwards from last to the phi.
		chain := []*ir.Instr{last}
		cur := last
		for {
			var prev *ir.Instr
			done := false
			for _, op := range cur.Operands {
				if op == phi {
					done = true
					break
				}
				if pi, ok := op.(*ir.Instr); ok && pi.Op == cur.Op && pi.Parent == b && usedOnlyBy(users, pi, cur) {
					prev = pi
				}
			}
			if done {
				break
			}
			if prev == nil {
				return fmt.Errorf("reroll: phi %%%s is not a simple reduction", phi.Name)
			}
			chain = append(chain, prev)
			cur = prev
		}
		// chain is last..first; reverse to iteration order.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		if int64(len(chain)) != factor {
			return fmt.Errorf("reroll: reduction chain length %d != factor %d", len(chain), factor)
		}
		reductions = append(reductions, reduction{phi: phi, chain: chain})
		for _, c := range chain {
			inChain[c] = true
		}
	}

	// Collect the instruction set of each iteration by following
	// definition-use chains from its root.
	collect := func(seed ir.Value) []*ir.Instr {
		var set []*ir.Instr
		seen := make(map[*ir.Instr]bool)
		work := []ir.Value{seed}
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			for _, u := range users[v] {
				if u.Parent != b || seen[u] || isLatch[u] || isRoot[u] || inChain[u] || u.Op == ir.OpPhi {
					continue
				}
				seen[u] = true
				set = append(set, u)
				work = append(work, u)
			}
		}
		sort.Slice(set, func(i, j int) bool { return index[set[i]] < index[set[j]] })
		return set
	}
	sets := make([][]*ir.Instr, factor)
	sets[0] = collect(l.IV)
	for m := int64(1); m < factor; m++ {
		sets[m] = collect(roots[m])
	}
	// Iteration 0's traversal from the IV also discovers every other
	// iteration's instructions when they use the IV indirectly; the sets
	// must be disjoint, so remove from set 0 anything claimed by a later
	// iteration.
	claimed := make(map[*ir.Instr]int64)
	for m := int64(1); m < factor; m++ {
		for _, in := range sets[m] {
			if _, dup := claimed[in]; dup {
				return fmt.Errorf("reroll: instruction %%%s belongs to two iterations", in.Name)
			}
			claimed[in] = m
		}
	}
	var base []*ir.Instr
	for _, in := range sets[0] {
		if _, taken := claimed[in]; !taken {
			base = append(base, in)
		}
	}
	sets[0] = base

	// Structural matching: corresponding instructions must have the same
	// opcode and types, and operands must be loop-invariant equals or
	// correspondingly equivalent instructions.
	for m := int64(1); m < factor; m++ {
		if len(sets[m]) != len(sets[0]) {
			return fmt.Errorf("reroll: iteration %d has %d instructions, iteration 0 has %d", m, len(sets[m]), len(sets[0]))
		}
	}
	for m := int64(1); m < factor; m++ {
		equiv := map[ir.Value]ir.Value{l.IV: roots[m]}
		for _, r := range reductions {
			if m == 1 {
				equiv[r.phi] = r.chain[0]
			} else {
				equiv[r.chain[m-2]] = r.chain[m-1]
			}
		}
		for j := range sets[0] {
			a, c := sets[0][j], sets[m][j]
			if a.Op != c.Op || !a.Typ.Equal(c.Typ) || a.Pred != c.Pred || a.Callee != c.Callee {
				return fmt.Errorf("reroll: mismatched instructions %%%s vs %%%s", a.Name, c.Name)
			}
			if len(a.Operands) != len(c.Operands) {
				return fmt.Errorf("reroll: operand count mismatch")
			}
			for oi := range a.Operands {
				oa, oc := a.Operands[oi], c.Operands[oi]
				if ir.SameValue(oa, oc) {
					continue
				}
				if e, ok := equiv[oa]; ok && e == oc {
					continue
				}
				return fmt.Errorf("reroll: operand %d of %%%s does not correspond", oi, c.Name)
			}
			equiv[a] = c
		}
		// The reduction chain element of iteration m must mirror
		// iteration 0's: same opcode (checked at chain build) and its
		// non-accumulator operand must correspond.
		for _, r := range reductions {
			a, c := r.chain[0], r.chain[m]
			av := otherOperand(a, r.phi)
			var prev ir.Value = r.phi
			if m > 0 {
				prev = r.chain[m-1]
			}
			cv := otherOperand(c, prev)
			if av == nil || cv == nil {
				return fmt.Errorf("reroll: reduction chain shape mismatch")
			}
			if !ir.SameValue(av, cv) {
				if e, ok := equiv[av]; !ok || e != cv {
					return fmt.Errorf("reroll: reduction operand does not correspond")
				}
			}
		}
	}

	// Coverage: every instruction in the loop must be a phi, a root, a
	// latch instruction, a chain element or a member of some set.
	member := make(map[*ir.Instr]bool)
	for _, set := range sets {
		for _, in := range set {
			member[in] = true
		}
	}
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi || isRoot[in] || isLatch[in] || inChain[in] || member[in] {
			continue
		}
		return fmt.Errorf("reroll: instruction %%%s is not part of any unrolled iteration", in.Name)
	}

	// All constraints hold: perform the rerolling.
	// 1. External uses of the last iteration's values now observe
	//    iteration 0's values.
	lastEquiv := make(map[ir.Value]ir.Value)
	for j := range sets[0] {
		lastEquiv[sets[factor-1][j]] = sets[0][j]
	}
	for _, r := range reductions {
		lastEquiv[r.chain[factor-1]] = r.chain[0]
	}
	for _, ob := range f.Blocks {
		for _, in := range ob.Instrs {
			if in.Parent == b {
				continue
			}
			for oi, op := range in.Operands {
				if nv, ok := lastEquiv[op]; ok {
					in.Operands[oi] = nv
				}
			}
		}
	}
	// 2. Reduction phis take iteration 0's chain element on the
	//    backedge; the cmp tests iv+1.
	for _, r := range reductions {
		for i, pb := range r.phi.Blocks {
			if pb == b {
				r.phi.Operands[i] = r.chain[0]
			}
		}
	}
	// 3. Reset the induction step to 1.
	for oi, op := range l.Next.Operands {
		if c, ok := op.(*ir.IntConst); ok && c.Val == factor {
			l.Next.SetOperand(oi, ir.ConstInt(c.Typ, 1))
		}
	}
	// 4. Delete iterations 1..factor-1, the chains beyond element 0 and
	//    the roots.
	var dead []*ir.Instr
	for m := int64(1); m < factor; m++ {
		dead = append(dead, sets[m]...)
		dead = append(dead, roots[m])
	}
	for _, r := range reductions {
		dead = append(dead, r.chain[1:]...)
	}
	sort.Slice(dead, func(i, j int) bool { return index[dead[i]] > index[dead[j]] })
	for _, in := range dead {
		b.Remove(in)
	}
	return nil
}

func usedOnlyBy(users map[ir.Value][]*ir.Instr, v *ir.Instr, u *ir.Instr) bool {
	us := users[v]
	return len(us) == 1 && us[0] == u
}

func otherOperand(in *ir.Instr, not ir.Value) ir.Value {
	if in.NumOperands() != 2 {
		return nil
	}
	if in.Operand(0) == not {
		return in.Operand(1)
	}
	if in.Operand(1) == not {
		return in.Operand(0)
	}
	return nil
}
