package cc

import "fmt"

// Parser parses mini-C source into an AST.
type Parser struct {
	lx      *Lexer
	tok     Token
	peeked  *Token
	structs map[string]*CStruct
	file    *File
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	p := &Parser{
		lx:      NewLexer(src),
		structs: make(map[string]*CStruct),
		file:    &File{},
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokEOF {
		if err := p.parseTopLevel(); err != nil {
			return nil, err
		}
	}
	return p.file, nil
}

func (p *Parser) next() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peek() (Token, error) {
	if p.peeked == nil {
		t, err := p.lx.Next()
		if err != nil {
			return Token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &Error{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isPunct(s string) bool {
	return p.tok.Kind == TokPunct && p.tok.Text == s
}

func (p *Parser) isKeyword(s string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == s
}

func (p *Parser) acceptPunct(s string) (bool, error) {
	if p.isPunct(s) {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, found %q", s, p.tok.Text)
	}
	return p.next()
}

func (p *Parser) acceptKeyword(s string) (bool, error) {
	if p.isKeyword(s) {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) expectIdent() (string, error) {
	if p.tok.Kind != TokIdent {
		return "", p.errf("expected identifier, found %q", p.tok.Text)
	}
	name := p.tok.Text
	return name, p.next()
}

// startsType reports whether the current token can begin a type
// specifier.
func (p *Parser) startsType() bool {
	if p.tok.Kind != TokKeyword {
		return false
	}
	switch p.tok.Text {
	case "void", "char", "short", "int", "long", "float", "double",
		"unsigned", "signed", "const", "struct":
		return true
	}
	return false
}

// parseTypeSpec parses a base type: keywords or struct references.
func (p *Parser) parseTypeSpec() (*CType, error) {
	// Eat qualifiers.
	readonly := false
	for p.isKeyword("const") || p.isKeyword("unsigned") || p.isKeyword("signed") || p.isKeyword("static") {
		if p.isKeyword("const") {
			readonly = true
		}
		_ = readonly
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	switch {
	case p.isKeyword("void"):
		return CVoid, p.next()
	case p.isKeyword("char"):
		return CChar, p.next()
	case p.isKeyword("short"):
		if err := p.next(); err != nil {
			return nil, err
		}
		// "short int"
		if p.isKeyword("int") {
			return CShort, p.next()
		}
		return CShort, nil
	case p.isKeyword("int"):
		return CInt, p.next()
	case p.isKeyword("long"):
		if err := p.next(); err != nil {
			return nil, err
		}
		for p.isKeyword("long") || p.isKeyword("int") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		return CLong, nil
	case p.isKeyword("float"):
		return CFloat, p.next()
	case p.isKeyword("double"):
		return CDouble, p.next()
	case p.isKeyword("struct"):
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s, ok := p.structs[name]
		if !ok {
			s = &CStruct{Name: name}
			p.structs[name] = s
		}
		return &CType{Kind: KStruct, Struct: s}, nil
	}
	return nil, p.errf("expected type, found %q", p.tok.Text)
}

// parseDeclarator parses "*"* name ("[" N "]")* applied to base.
func (p *Parser) parseDeclarator(base *CType) (string, *CType, error) {
	t := base
	for p.isPunct("*") {
		if err := p.next(); err != nil {
			return "", nil, err
		}
		// "const" may follow the star.
		for p.isKeyword("const") {
			if err := p.next(); err != nil {
				return "", nil, err
			}
		}
		t = CPtr(t)
	}
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	// Array suffixes, innermost last: int a[2][3] is array(2, array(3, int)).
	var dims []int
	for p.isPunct("[") {
		if err := p.next(); err != nil {
			return "", nil, err
		}
		if p.tok.Kind != TokIntLit {
			return "", nil, p.errf("expected constant array length")
		}
		dims = append(dims, int(p.tok.Int))
		if err := p.next(); err != nil {
			return "", nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return "", nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = &CType{Kind: KArray, Elem: t, Len: dims[i]}
	}
	return name, t, nil
}

func (p *Parser) parseTopLevel() error {
	// extern declarations.
	isExtern, err := p.acceptKeyword("extern")
	if err != nil {
		return err
	}
	isConst := p.isKeyword("const")

	// Struct definition: struct Name { ... };
	if p.isKeyword("struct") {
		save := p.tok
		t, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		if p.isPunct("{") {
			return p.parseStructBody(t.Struct)
		}
		// Not a definition; continue as a declaration with this base
		// type.
		return p.parseVarOrFunc(t, isExtern, isConst, save.Pos)
	}

	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	return p.parseVarOrFunc(base, isExtern, isConst, p.tok.Pos)
}

func (p *Parser) parseStructBody(s *CStruct) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if len(s.Fields) > 0 {
		return p.errf("struct %s redefined", s.Name)
	}
	for !p.isPunct("}") {
		base, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		for {
			name, t, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			s.Fields = append(s.Fields, CField{Name: name, Type: t})
			ok, err := p.acceptPunct(",")
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	if err := p.next(); err != nil { // consume "}"
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	p.file.Structs = append(p.file.Structs, s)
	return nil
}

func (p *Parser) parseVarOrFunc(base *CType, isExtern, isConst bool, pos Pos) error {
	name, t, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if p.isPunct("(") {
		return p.parseFunc(name, t, pos)
	}
	// Global variable(s).
	for {
		g := &GlobalDecl{Pos: pos, Name: name, Type: t, Extern: isExtern, ReadOnly: isConst}
		if p.isPunct("=") {
			if err := p.next(); err != nil {
				return err
			}
			if p.isPunct("{") {
				if err := p.next(); err != nil {
					return err
				}
				for !p.isPunct("}") {
					e, err := p.parseAssignExpr()
					if err != nil {
						return err
					}
					g.Init = append(g.Init, e)
					if ok, err := p.acceptPunct(","); err != nil {
						return err
					} else if !ok {
						break
					}
				}
				if err := p.expectPunct("}"); err != nil {
					return err
				}
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return err
				}
				g.Init = []Expr{e}
			}
		}
		p.file.Globals = append(p.file.Globals, g)
		ok, err := p.acceptPunct(",")
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		name, t, err = p.parseDeclarator(base)
		if err != nil {
			return err
		}
	}
	return p.expectPunct(";")
}

func (p *Parser) parseFunc(name string, ret *CType, pos Pos) error {
	fd := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if p.isKeyword("void") {
		if pk, err := p.peek(); err != nil {
			return err
		} else if pk.Kind == TokPunct && pk.Text == ")" {
			if err := p.next(); err != nil {
				return err
			}
		}
	}
	for !p.isPunct(")") {
		base, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		// Parameter name may be omitted in prototypes.
		t := base
		for p.isPunct("*") {
			if err := p.next(); err != nil {
				return err
			}
			for p.isKeyword("const") {
				if err := p.next(); err != nil {
					return err
				}
			}
			t = CPtr(t)
		}
		pname := ""
		if p.tok.Kind == TokIdent {
			pname = p.tok.Text
			if err := p.next(); err != nil {
				return err
			}
			// Array parameters decay to pointers.
			for p.isPunct("[") {
				if err := p.next(); err != nil {
					return err
				}
				if p.tok.Kind == TokIntLit {
					if err := p.next(); err != nil {
						return err
					}
				}
				if err := p.expectPunct("]"); err != nil {
					return err
				}
				t = CPtr(t)
			}
		}
		fd.Params = append(fd.Params, ParamDecl{Name: pname, Type: t})
		if ok, err := p.acceptPunct(","); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if ok, err := p.acceptKeyword("pure"); err != nil {
		return err
	} else if ok {
		fd.Pure = true
	}
	if p.isPunct(";") {
		p.file.Funcs = append(p.file.Funcs, fd)
		return p.next()
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	p.file.Funcs = append(p.file.Funcs, fd)
	return nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	pos := p.tok.Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: pos}
	for !p.isPunct("}") {
		if p.tok.Kind == TokEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, p.next()
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		return &EmptyStmt{Pos: pos}, p.next()
	case p.isKeyword("if"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: pos, Cond: cond, Then: then}
		if ok, err := p.acceptKeyword("else"); err != nil {
			return nil, err
		} else if ok {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.isKeyword("for"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Pos: pos}
		if !p.isPunct(";") {
			if p.startsType() {
				ds, err := p.parseDeclStmtNoSemi()
				if err != nil {
					return nil, err
				}
				st.Init = ds
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Init = &ExprStmt{Pos: e.exprPos(), X: e}
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(";") {
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = c
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = e
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.isKeyword("while"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
	case p.isKeyword("do"):
		if err := p.next(); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if ok, err := p.acceptKeyword("while"); err != nil {
			return nil, err
		} else if !ok {
			return nil, p.errf("expected 'while' after do-body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Pos: pos, Cond: cond, Body: body}, p.expectPunct(";")
	case p.isKeyword("return"):
		if err := p.next(); err != nil {
			return nil, err
		}
		st := &ReturnStmt{Pos: pos}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		return st, p.expectPunct(";")
	case p.isKeyword("break"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, p.expectPunct(";")
	case p.isKeyword("continue"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, p.expectPunct(";")
	case p.startsType():
		ds, err := p.parseDeclStmtNoSemi()
		if err != nil {
			return nil, err
		}
		return ds, p.expectPunct(";")
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: e}, p.expectPunct(";")
	}
}

// parseDeclStmtNoSemi parses "type declarator (= init)?" possibly with
// comma-separated declarators, folded into a BlockStmt when multiple.
func (p *Parser) parseDeclStmtNoSemi() (Stmt, error) {
	pos := p.tok.Pos
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	var decls []Stmt
	for {
		name, t, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Pos: pos, Name: name, Type: t}
		if p.isPunct("=") {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		decls = append(decls, d)
		if ok, err := p.acceptPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &BlockStmt{Pos: pos, Stmts: decls}, nil
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokPunct && assignOps[p.tok.Text] {
		op := p.tok.Text
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: pos, Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		f, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{Pos: pos, C: c, T: t, F: f}, nil
	}
	return c, nil
}

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[p.tok.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.Text
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	pos := p.tok.Pos
	if p.tok.Kind == TokPunct {
		switch p.tok.Text {
		case "-", "!", "~", "*", "&", "+":
			op := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			if op == "+" {
				return x, nil
			}
			return &Unary{Pos: pos, Op: op, X: x}, nil
		case "++", "--":
			op := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			x, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Pos: pos, Op: op, X: x}, nil
		case "(":
			// Could be a cast: "(" type ")" unary.
			pk, err := p.peek()
			if err != nil {
				return nil, err
			}
			if pk.Kind == TokKeyword && isTypeKeyword(pk.Text) {
				if err := p.next(); err != nil { // consume "("
					return nil, err
				}
				base, err := p.parseTypeSpec()
				if err != nil {
					return nil, err
				}
				t := base
				for p.isPunct("*") {
					if err := p.next(); err != nil {
						return nil, err
					}
					t = CPtr(t)
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnaryExpr()
				if err != nil {
					return nil, err
				}
				return &CastExpr{Pos: pos, To: t, X: x}, nil
			}
		}
	}
	return p.parsePostfixExpr()
}

func isTypeKeyword(s string) bool {
	switch s {
	case "void", "char", "short", "int", "long", "float", "double",
		"unsigned", "signed", "const", "struct":
		return true
	}
	return false
}

func (p *Parser) parsePostfixExpr() (Expr, error) {
	x, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.tok.Pos
		switch {
		case p.isPunct("["):
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{Pos: pos, X: x, Idx: idx}
		case p.isPunct("."):
			if err := p.next(); err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{Pos: pos, X: x, Name: name}
		case p.isPunct("->"):
			if err := p.next(); err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{Pos: pos, X: x, Name: name, Arrow: true}
		case p.isPunct("++") || p.isPunct("--"):
			op := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			x = &Unary{Pos: pos, Op: op, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokIntLit:
		v := p.tok.Int
		return &IntLit{Pos: pos, Val: v}, p.next()
	case TokFloatLit:
		v := p.tok.Flt
		f32 := p.tok.F32
		return &FloatLit{Pos: pos, Val: v, F32: f32}, p.next()
	case TokIdent:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			if err := p.next(); err != nil {
				return nil, err
			}
			call := &Call{Pos: pos, Name: name}
			for !p.isPunct(")") {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if ok, err := p.acceptPunct(","); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			return call, p.expectPunct(")")
		}
		return &Ident{Pos: pos, Name: name}, nil
	case TokPunct:
		if p.tok.Text == "(" {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, p.errf("unexpected token %q in expression", p.tok.Text)
}
