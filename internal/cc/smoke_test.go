package cc_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/passes"
)

const smokeSrc = `
extern void vst1q_u8(char *p, char *v);
struct state { char v[80]; };
void save_state(struct state *st, void *state) {
	vst1q_u8(state, st->v);
	vst1q_u8(state + 16, st->v + 16);
	vst1q_u8(state + 32, st->v + 32);
}
int dot(const int *a, const int *b) {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2];
}
int sumn(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	return s;
}
`

func TestSmoke(t *testing.T) {
	m, err := cc.Compile(smokeSrc, "smoke")
	if err != nil {
		t.Fatalf("compile error: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify pre: %v\n%s", err, m)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify post: %v\n%s", err, m)
	}
	if m.FindFunc("sumn") == nil || m.FindFunc("dot") == nil {
		t.Error("functions missing after pipeline")
	}
}
