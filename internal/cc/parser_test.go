package cc

import "testing"

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParseDeclarations(t *testing.T) {
	f := parseOK(t, `
int a;
long b = 9;
const int c = -3;
extern double d;
int arr[4] = {1, 2, 3, 4};
float m[2][3];
int *p;
int **pp;
struct Pt { int x; int y; };
struct Pt origin;
int first, second = 2, third;
`)
	if len(f.Globals) != 12 {
		t.Errorf("parsed %d globals, want 12", len(f.Globals))
	}
	byName := make(map[string]*GlobalDecl)
	for _, g := range f.Globals {
		byName[g.Name] = g
	}
	if !byName["c"].ReadOnly {
		t.Error("const global not marked read-only")
	}
	if !byName["d"].Extern {
		t.Error("extern global not marked extern")
	}
	if byName["arr"].Type.Kind != KArray || byName["arr"].Type.Len != 4 {
		t.Error("array type wrong")
	}
	if m := byName["m"].Type; m.Kind != KArray || m.Len != 2 || m.Elem.Kind != KArray || m.Elem.Len != 3 {
		t.Error("2D array type wrong")
	}
	if byName["pp"].Type.Kind != KPtr || byName["pp"].Type.Elem.Kind != KPtr {
		t.Error("pointer-to-pointer type wrong")
	}
	if byName["origin"].Type.Kind != KStruct {
		t.Error("struct global type wrong")
	}
	if byName["second"] == nil || byName["third"] == nil {
		t.Error("comma-separated declarators lost")
	}
}

func TestParsePrototypesAndDefinitions(t *testing.T) {
	f := parseOK(t, `
int named(int a, float b);
int anon(int, float);
void noargs(void);
extern long pure_thing(long x) pure;
int impl(int a, float b) { return a; }
`)
	if len(f.Funcs) != 5 {
		t.Fatalf("parsed %d functions, want 5", len(f.Funcs))
	}
	byName := make(map[string]*FuncDecl)
	for _, fn := range f.Funcs {
		byName[fn.Name] = fn
	}
	if byName["named"].Body != nil {
		t.Error("prototype must have no body")
	}
	if len(byName["anon"].Params) != 2 {
		t.Error("anonymous parameters lost")
	}
	if len(byName["noargs"].Params) != 0 {
		t.Error("(void) parameter list should be empty")
	}
	if !byName["pure_thing"].Pure {
		t.Error("pure annotation lost")
	}
	if byName["impl"].Body == nil {
		t.Error("definition must carry its body")
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	f := parseOK(t, `int f(int a, int b, int c) { return a + b * c - a / b % c; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	// Expect ((a + (b*c)) - ((a/b)%c)).
	sub, ok := ret.X.(*Binary)
	if !ok || sub.Op != "-" {
		t.Fatalf("top operator %T", ret.X)
	}
	add, ok := sub.X.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("left of - is %T", sub.X)
	}
	if mul, ok := add.Y.(*Binary); !ok || mul.Op != "*" {
		t.Error("b*c must bind tighter than +")
	}
	if mod, ok := sub.Y.(*Binary); !ok || mod.Op != "%" {
		t.Error("modulo must group last")
	}
}

func TestParseRightAssociativeAssignment(t *testing.T) {
	f := parseOK(t, `void f(int a, int b, int c) { a = b = c; }`)
	es := f.Funcs[0].Body.Stmts[0].(*ExprStmt)
	outer, ok := es.X.(*Assign)
	if !ok {
		t.Fatalf("statement is %T", es.X)
	}
	if _, ok := outer.RHS.(*Assign); !ok {
		t.Error("assignment must be right-associative")
	}
}

func TestParseArrowVsDot(t *testing.T) {
	f := parseOK(t, `
struct S { int x; };
int f(struct S *p) { struct S s; s.x = 1; return p->x + s.x; }`)
	body := f.Funcs[0].Body
	if len(body.Stmts) != 3 {
		t.Fatalf("%d statements", len(body.Stmts))
	}
	ret := body.Stmts[2].(*ReturnStmt)
	add := ret.X.(*Binary)
	arrow := add.X.(*Member)
	dot := add.Y.(*Member)
	if !arrow.Arrow || dot.Arrow {
		t.Error("-> and . confused")
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	f := parseOK(t, `int f(int a) { return a ? 1 : a ? 2 : 3; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	c := ret.X.(*Cond)
	if _, ok := c.F.(*Cond); !ok {
		t.Error("ternary must nest in the else arm")
	}
}

func TestParseUnaryChains(t *testing.T) {
	parseOK(t, `int f(int *p) { return -*p + !*p + ~*p + **&p; }`)
	parseOK(t, `int f(int a) { return - - a; }`)
}

func TestParseForVariants(t *testing.T) {
	parseOK(t, `void f() { for (;;) { break; } }`)
	parseOK(t, `void f(int n) { int i; for (i = 0; i < n; i++) { } }`)
	parseOK(t, `void f(int n) { for (int i = 0, j = 1; i < n; i++) { } }`)
	parseOK(t, `void f(int n) { for (int i = 0; ; i++) { if (i > n) break; } }`)
}

func TestParseCasts(t *testing.T) {
	f := parseOK(t, `long f(int a) { return (long)a + (long)(char)a; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add := ret.X.(*Binary)
	if _, ok := add.X.(*CastExpr); !ok {
		t.Error("(long)a not parsed as cast")
	}
	inner := add.Y.(*CastExpr)
	if _, ok := inner.X.(*CastExpr); !ok {
		t.Error("nested casts not parsed")
	}
}
