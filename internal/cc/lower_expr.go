package cc

import (
	"fmt"

	"rolag/internal/ir"
)

// lowerExpr lowers e to an rvalue, returning the IR value and its C type.
// Array-typed lvalues decay to pointers to their first element.
func (lw *lowerer) lowerExpr(e Expr) (ir.Value, *CType, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.ConstInt(ir.I32, e.Val), CInt, nil
	case *FloatLit:
		if e.F32 {
			return ir.ConstFloat(ir.F32, e.Val), CFloat, nil
		}
		return ir.ConstFloat(ir.F64, e.Val), CDouble, nil
	case *Ident:
		addr, ct, err := lw.lowerAddr(e)
		if err != nil {
			return nil, nil, err
		}
		return lw.loadOrDecay(addr, ct)
	case *Index, *Member:
		addr, ct, err := lw.lowerAddr(e)
		if err != nil {
			return nil, nil, err
		}
		return lw.loadOrDecay(addr, ct)
	case *Unary:
		return lw.lowerUnary(e)
	case *Binary:
		if e.Op == "&&" || e.Op == "||" {
			c, err := lw.lowerCond(e)
			if err != nil {
				return nil, nil, err
			}
			return lw.bd.Cast(ir.OpZExt, c, ir.I32), CInt, nil
		}
		return lw.lowerBinary(e)
	case *Assign:
		return lw.lowerAssign(e)
	case *Cond:
		return lw.lowerTernary(e)
	case *Call:
		return lw.lowerCall(e)
	case *CastExpr:
		v, vt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		cv, err := lw.convert(v, vt, e.To, e.Pos)
		if err != nil {
			return nil, nil, err
		}
		return cv, e.To, nil
	}
	return nil, nil, fmt.Errorf("cc: unhandled expression %T", e)
}

// loadOrDecay turns an lvalue address into an rvalue: arrays decay to a
// pointer to the first element, everything else is loaded.
func (lw *lowerer) loadOrDecay(addr ir.Value, ct *CType) (ir.Value, *CType, error) {
	if ct.Kind == KArray {
		z := ir.ConstInt(ir.I64, 0)
		g := lw.bd.GEP(addr, z, z)
		return g, CPtr(ct.Elem), nil
	}
	if ct.Kind == KStruct {
		// Struct rvalues only appear as sources of member access, which
		// goes through lowerAddr; loading whole structs is unsupported.
		return nil, nil, fmt.Errorf("cc: struct values are not first class; take a pointer")
	}
	return lw.bd.Load(addr), ct, nil
}

// lowerAddr lowers e to an address (lvalue), returning the pointer value
// and the pointee's C type.
func (lw *lowerer) lowerAddr(e Expr) (ir.Value, *CType, error) {
	switch e := e.(type) {
	case *Ident:
		if li, ok := lw.lookup(e.Name); ok {
			return li.addr, li.ct, nil
		}
		if gi, ok := lw.globals[e.Name]; ok {
			return gi.g, gi.ct, nil
		}
		return nil, nil, lw.errf(e.Pos, "undefined variable %s", e.Name)
	case *Index:
		xv, xt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		if xt.Kind != KPtr {
			return nil, nil, lw.errf(e.Pos, "indexing a non-pointer (%s)", xt)
		}
		iv, it, err := lw.lowerExpr(e.Idx)
		if err != nil {
			return nil, nil, err
		}
		idx, err := lw.toI64(iv, it, e.Pos)
		if err != nil {
			return nil, nil, err
		}
		return lw.bd.GEP(xv, idx), xt.Elem, nil
	case *Member:
		var base ir.Value
		var st *CType
		if e.Arrow {
			v, vt, err := lw.lowerExpr(e.X)
			if err != nil {
				return nil, nil, err
			}
			if vt.Kind != KPtr || vt.Elem.Kind != KStruct {
				return nil, nil, lw.errf(e.Pos, "-> on non-struct-pointer (%s)", vt)
			}
			base, st = v, vt.Elem
		} else {
			v, vt, err := lw.lowerAddr(e.X)
			if err != nil {
				return nil, nil, err
			}
			if vt.Kind != KStruct {
				return nil, nil, lw.errf(e.Pos, ". on non-struct (%s)", vt)
			}
			base, st = v, vt
		}
		fi := st.Struct.FieldIndex(e.Name)
		if fi < 0 {
			return nil, nil, lw.errf(e.Pos, "struct %s has no field %s", st.Struct.Name, e.Name)
		}
		g := lw.bd.GEP(base, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I32, int64(fi)))
		return g, st.Struct.Fields[fi].Type, nil
	case *Unary:
		if e.Op == "*" {
			v, vt, err := lw.lowerExpr(e.X)
			if err != nil {
				return nil, nil, err
			}
			if vt.Kind != KPtr {
				return nil, nil, lw.errf(e.Pos, "dereferencing a non-pointer (%s)", vt)
			}
			return v, vt.Elem, nil
		}
	}
	return nil, nil, lw.errf(e.exprPos(), "expression is not an lvalue")
}

func (lw *lowerer) lowerUnary(e *Unary) (ir.Value, *CType, error) {
	switch e.Op {
	case "-":
		v, vt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		v, vt = lw.promote(v, vt)
		if vt.Kind == KFloat {
			zero := ir.ConstFloat(ir.FloatType{Bits: vt.Bits}, 0)
			return lw.bd.Bin(ir.OpFSub, zero, v), vt, nil
		}
		zero := ir.ConstInt(ir.IntType{Bits: vt.Bits}, 0)
		return lw.bd.Bin(ir.OpSub, zero, v), vt, nil
	case "~":
		v, vt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		v, vt = lw.promote(v, vt)
		if vt.Kind != KInt {
			return nil, nil, lw.errf(e.Pos, "~ on non-integer")
		}
		return lw.bd.Bin(ir.OpXor, v, ir.ConstInt(ir.IntType{Bits: vt.Bits}, -1)), vt, nil
	case "!":
		c, err := lw.lowerCond(e.X)
		if err != nil {
			return nil, nil, err
		}
		ne := lw.bd.Bin(ir.OpXor, c, ir.ConstBool(true))
		return lw.bd.Cast(ir.OpZExt, ne, ir.I32), CInt, nil
	case "*":
		addr, ct, err := lw.lowerAddr(e)
		if err != nil {
			return nil, nil, err
		}
		return lw.loadOrDecay(addr, ct)
	case "&":
		addr, ct, err := lw.lowerAddr(e.X)
		if err != nil {
			return nil, nil, err
		}
		return addr, CPtr(ct), nil
	case "++", "--":
		addr, ct, err := lw.lowerAddr(e.X)
		if err != nil {
			return nil, nil, err
		}
		old := lw.bd.Load(addr)
		var next ir.Value
		switch ct.Kind {
		case KInt:
			one := ir.ConstInt(ir.IntType{Bits: ct.Bits}, 1)
			op := ir.OpAdd
			if e.Op == "--" {
				op = ir.OpSub
			}
			next = lw.bd.Bin(op, old, one)
		case KFloat:
			one := ir.ConstFloat(ir.FloatType{Bits: ct.Bits}, 1)
			op := ir.OpFAdd
			if e.Op == "--" {
				op = ir.OpFSub
			}
			next = lw.bd.Bin(op, old, one)
		case KPtr:
			step := int64(1)
			if e.Op == "--" {
				step = -1
			}
			next = lw.bd.GEP(old, ir.ConstInt(ir.I64, step))
		default:
			return nil, nil, lw.errf(e.Pos, "%s on unsupported type %s", e.Op, ct)
		}
		lw.bd.Store(next, addr)
		if e.Postfix {
			return old, ct, nil
		}
		return next, ct, nil
	}
	return nil, nil, lw.errf(e.Pos, "unhandled unary operator %s", e.Op)
}

var intBinOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv, "%": ir.OpSRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpAShr,
}

var floatBinOps = map[string]ir.Op{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
}

var cmpPreds = map[string]ir.Pred{
	"==": ir.PredEQ, "!=": ir.PredNE,
	"<": ir.PredSLT, "<=": ir.PredSLE, ">": ir.PredSGT, ">=": ir.PredSGE,
}

var floatCmpPreds = map[string]ir.Pred{
	"==": ir.PredOEQ, "!=": ir.PredONE,
	"<": ir.PredOLT, "<=": ir.PredOLE, ">": ir.PredOGT, ">=": ir.PredOGE,
}

func (lw *lowerer) lowerBinary(e *Binary) (ir.Value, *CType, error) {
	x, xt, err := lw.lowerExpr(e.X)
	if err != nil {
		return nil, nil, err
	}
	y, yt, err := lw.lowerExpr(e.Y)
	if err != nil {
		return nil, nil, err
	}
	return lw.applyBinary(e.Op, x, xt, y, yt, e.Pos)
}

func (lw *lowerer) applyBinary(op string, x ir.Value, xt *CType, y ir.Value, yt *CType, pos Pos) (ir.Value, *CType, error) {
	// Pointer arithmetic.
	if xt.Kind == KPtr && yt.Kind == KInt && (op == "+" || op == "-") {
		idx, err := lw.toI64(y, yt, pos)
		if err != nil {
			return nil, nil, err
		}
		if op == "-" {
			idx = lw.bd.Bin(ir.OpSub, ir.ConstInt(ir.I64, 0), idx)
		}
		return lw.bd.GEP(x, idx), xt, nil
	}
	if yt.Kind == KPtr && xt.Kind == KInt && op == "+" {
		return lw.applyBinary(op, y, yt, x, xt, pos)
	}
	// Pointer comparison.
	if xt.Kind == KPtr && yt.Kind == KPtr {
		if p, ok := cmpPreds[op]; ok {
			c := lw.bd.ICmp(p, x, y)
			return lw.bd.Cast(ir.OpZExt, c, ir.I32), CInt, nil
		}
		return nil, nil, lw.errf(pos, "unsupported pointer operation %s", op)
	}

	x, y, ct, err := lw.usualArith(x, xt, y, yt, pos)
	if err != nil {
		return nil, nil, err
	}
	if _, isCmp := cmpPreds[op]; isCmp {
		var c *ir.Instr
		if ct.Kind == KFloat {
			c = lw.bd.FCmp(floatCmpPreds[op], x, y)
		} else {
			c = lw.bd.ICmp(cmpPreds[op], x, y)
		}
		return lw.bd.Cast(ir.OpZExt, c, ir.I32), CInt, nil
	}
	if ct.Kind == KFloat {
		fop, ok := floatBinOps[op]
		if !ok {
			return nil, nil, lw.errf(pos, "operator %s not defined for floating point", op)
		}
		return lw.bd.Bin(fop, x, y), ct, nil
	}
	iop, ok := intBinOps[op]
	if !ok {
		return nil, nil, lw.errf(pos, "unhandled binary operator %s", op)
	}
	return lw.bd.Bin(iop, x, y), ct, nil
}

func (lw *lowerer) lowerAssign(e *Assign) (ir.Value, *CType, error) {
	addr, ct, err := lw.lowerAddr(e.LHS)
	if err != nil {
		return nil, nil, err
	}
	rv, rt, err := lw.lowerExpr(e.RHS)
	if err != nil {
		return nil, nil, err
	}
	if e.Op != "=" {
		op := e.Op[:len(e.Op)-1]
		old := lw.bd.Load(addr)
		nv, nt, err := lw.applyBinary(op, old, ct, rv, rt, e.Pos)
		if err != nil {
			return nil, nil, err
		}
		rv, rt = nv, nt
	}
	cv, err := lw.convert(rv, rt, ct, e.Pos)
	if err != nil {
		return nil, nil, err
	}
	lw.bd.Store(cv, addr)
	return cv, ct, nil
}

// lowerTernary lowers c ? t : f using a temporary slot so the result
// stays in pre-Mem2Reg (alloca) form like every other local.
func (lw *lowerer) lowerTernary(e *Cond) (ir.Value, *CType, error) {
	cond, err := lw.lowerCond(e.C)
	if err != nil {
		return nil, nil, err
	}
	thenB := lw.fn.NewBlock("sel.then")
	elseB := lw.fn.NewBlock("sel.else")
	endB := lw.fn.NewBlock("sel.end")
	lw.bd.CondBr(cond, thenB, elseB)

	lw.bd.SetBlock(thenB)
	tv, tt, err := lw.lowerExpr(e.T)
	if err != nil {
		return nil, nil, err
	}
	thenOut := lw.bd.Block

	lw.bd.SetBlock(elseB)
	fv, ft, err := lw.lowerExpr(e.F)
	if err != nil {
		return nil, nil, err
	}
	elseOut := lw.bd.Block

	// Unify types: prefer the "larger" of the two arms.
	rt := tt
	if tt.Kind == KPtr {
		rt = tt
	} else if ft.Kind == KFloat && (tt.Kind != KFloat || ft.Bits > tt.Bits) {
		rt = ft
	} else if ft.Kind == KInt && tt.Kind == KInt && ft.Bits > tt.Bits {
		rt = ft
	}
	slot := lw.allocaInEntry(lw.irType(rt), "sel")

	lw.bd.SetBlock(thenOut)
	ctv, err := lw.convert(tv, tt, rt, e.Pos)
	if err != nil {
		return nil, nil, err
	}
	lw.bd.Store(ctv, slot)
	lw.bd.Br(endB)

	lw.bd.SetBlock(elseOut)
	cfv, err := lw.convert(fv, ft, rt, e.Pos)
	if err != nil {
		return nil, nil, err
	}
	lw.bd.Store(cfv, slot)
	lw.bd.Br(endB)

	lw.bd.SetBlock(endB)
	return lw.bd.Load(slot), rt, nil
}

func (lw *lowerer) lowerCall(e *Call) (ir.Value, *CType, error) {
	fi, ok := lw.funcs[e.Name]
	if !ok {
		// Implicit declaration: infer the signature from this call.
		var ptypes []*CType
		var irptypes []ir.Type
		args := make([]ir.Value, 0, len(e.Args))
		for _, a := range e.Args {
			v, vt, err := lw.lowerExpr(a)
			if err != nil {
				return nil, nil, err
			}
			args = append(args, v)
			ptypes = append(ptypes, vt)
			irptypes = append(irptypes, v.Type())
		}
		f := lw.mod.NewDecl(e.Name, ir.I32, irptypes...)
		fi = &funcInfo{f: f, ret: CInt, params: ptypes}
		lw.funcs[e.Name] = fi
		call := lw.bd.Call(f, args...)
		return call, CInt, nil
	}
	if len(e.Args) != len(fi.params) {
		return nil, nil, lw.errf(e.Pos, "call to %s with %d args, want %d", e.Name, len(e.Args), len(fi.params))
	}
	args := make([]ir.Value, len(e.Args))
	for i, a := range e.Args {
		v, vt, err := lw.lowerExpr(a)
		if err != nil {
			return nil, nil, err
		}
		cv, err := lw.convert(v, vt, fi.params[i], a.exprPos())
		if err != nil {
			return nil, nil, err
		}
		args[i] = cv
	}
	call := lw.bd.Call(fi.f, args...)
	if fi.ret.Kind == KVoid {
		return call, CVoid, nil
	}
	return call, fi.ret, nil
}

// lowerCond lowers an expression used as a branch condition to an i1,
// short-circuiting && and ||.
func (lw *lowerer) lowerCond(e Expr) (ir.Value, error) {
	switch e := e.(type) {
	case *Binary:
		switch e.Op {
		case "&&", "||":
			slot := lw.allocaInEntry(ir.I1, "cc")
			x, err := lw.lowerCond(e.X)
			if err != nil {
				return nil, err
			}
			lw.bd.Store(x, slot)
			rhsB := lw.fn.NewBlock("cond.rhs")
			endB := lw.fn.NewBlock("cond.end")
			if e.Op == "&&" {
				lw.bd.CondBr(x, rhsB, endB)
			} else {
				lw.bd.CondBr(x, endB, rhsB)
			}
			lw.bd.SetBlock(rhsB)
			y, err := lw.lowerCond(e.Y)
			if err != nil {
				return nil, err
			}
			lw.bd.Store(y, slot)
			lw.bd.Br(endB)
			lw.bd.SetBlock(endB)
			return lw.bd.Load(slot), nil
		}
		if _, isCmp := cmpPreds[e.Op]; isCmp {
			x, xt, err := lw.lowerExpr(e.X)
			if err != nil {
				return nil, err
			}
			y, yt, err := lw.lowerExpr(e.Y)
			if err != nil {
				return nil, err
			}
			if xt.Kind == KPtr && yt.Kind == KPtr {
				return lw.bd.ICmp(cmpPreds[e.Op], x, y), nil
			}
			x, y, ct, err := lw.usualArith(x, xt, y, yt, e.Pos)
			if err != nil {
				return nil, err
			}
			if ct.Kind == KFloat {
				return lw.bd.FCmp(floatCmpPreds[e.Op], x, y), nil
			}
			return lw.bd.ICmp(cmpPreds[e.Op], x, y), nil
		}
	case *Unary:
		if e.Op == "!" {
			c, err := lw.lowerCond(e.X)
			if err != nil {
				return nil, err
			}
			return lw.bd.Bin(ir.OpXor, c, ir.ConstBool(true)), nil
		}
	}
	// Fallback: value != 0.
	v, vt, err := lw.lowerExpr(e)
	if err != nil {
		return nil, err
	}
	switch vt.Kind {
	case KInt:
		return lw.bd.ICmp(ir.PredNE, v, ir.ConstInt(ir.IntType{Bits: vt.Bits}, 0)), nil
	case KFloat:
		return lw.bd.FCmp(ir.PredONE, v, ir.ConstFloat(ir.FloatType{Bits: vt.Bits}, 0)), nil
	case KPtr:
		return lw.bd.ICmp(ir.PredNE, v, ir.ConstNull(v.Type().(ir.PointerType))), nil
	}
	return nil, lw.errf(e.exprPos(), "cannot use %s as a condition", vt)
}

// promote applies the C integer promotions: sub-int integers widen to
// int.
func (lw *lowerer) promote(v ir.Value, t *CType) (ir.Value, *CType) {
	if t.Kind == KInt && t.Bits < 32 {
		return lw.bd.Cast(ir.OpSExt, v, ir.I32), CInt
	}
	return v, t
}

// usualArith applies the usual arithmetic conversions to a pair of scalar
// operands and returns them converted to the common type.
func (lw *lowerer) usualArith(x ir.Value, xt *CType, y ir.Value, yt *CType, pos Pos) (ir.Value, ir.Value, *CType, error) {
	if (xt.Kind != KInt && xt.Kind != KFloat) || (yt.Kind != KInt && yt.Kind != KFloat) {
		return nil, nil, nil, lw.errf(pos, "invalid operands (%s, %s)", xt, yt)
	}
	x, xt = lw.promote(x, xt)
	y, yt = lw.promote(y, yt)
	var ct *CType
	switch {
	case xt.Kind == KFloat && yt.Kind == KFloat:
		ct = xt
		if yt.Bits > xt.Bits {
			ct = yt
		}
	case xt.Kind == KFloat:
		ct = xt
	case yt.Kind == KFloat:
		ct = yt
	default:
		ct = xt
		if yt.Bits > xt.Bits {
			ct = yt
		}
	}
	cx, err := lw.convert(x, xt, ct, pos)
	if err != nil {
		return nil, nil, nil, err
	}
	cy, err := lw.convert(y, yt, ct, pos)
	if err != nil {
		return nil, nil, nil, err
	}
	return cx, cy, ct, nil
}

// toI64 converts an integer value to i64 for use as a gep index.
func (lw *lowerer) toI64(v ir.Value, t *CType, pos Pos) (ir.Value, error) {
	if t.Kind != KInt {
		return nil, lw.errf(pos, "index is not an integer (%s)", t)
	}
	cv, err := lw.convert(v, t, CLong, pos)
	if err != nil {
		return nil, err
	}
	return cv, nil
}

// convert emits the conversion of v from C type `from` to `to`.
// Conversions between equal types are free; constants are folded.
func (lw *lowerer) convert(v ir.Value, from, to *CType, pos Pos) (ir.Value, error) {
	if from.Kind == to.Kind {
		switch from.Kind {
		case KInt:
			if from.Bits == to.Bits {
				return v, nil
			}
			if c, ok := v.(*ir.IntConst); ok {
				return ir.ConstInt(ir.IntType{Bits: to.Bits}, c.Val), nil
			}
			if to.Bits > from.Bits {
				return lw.bd.Cast(ir.OpSExt, v, ir.IntType{Bits: to.Bits}), nil
			}
			return lw.bd.Cast(ir.OpTrunc, v, ir.IntType{Bits: to.Bits}), nil
		case KFloat:
			if from.Bits == to.Bits {
				return v, nil
			}
			if c, ok := v.(*ir.FloatConst); ok {
				return ir.ConstFloat(ir.FloatType{Bits: to.Bits}, c.Val), nil
			}
			if to.Bits > from.Bits {
				return lw.bd.Cast(ir.OpFPExt, v, ir.FloatType{Bits: to.Bits}), nil
			}
			return lw.bd.Cast(ir.OpFPTrunc, v, ir.FloatType{Bits: to.Bits}), nil
		case KPtr:
			toIR := lw.irType(to)
			if v.Type().Equal(toIR) {
				return v, nil
			}
			return lw.bd.Cast(ir.OpBitcast, v, toIR), nil
		case KVoid:
			return v, nil
		case KStruct:
			if from.Struct == to.Struct {
				return v, nil
			}
		}
		return nil, lw.errf(pos, "cannot convert %s to %s", from, to)
	}
	switch {
	case from.Kind == KInt && to.Kind == KFloat:
		if c, ok := v.(*ir.IntConst); ok {
			return ir.ConstFloat(ir.FloatType{Bits: to.Bits}, float64(c.Val)), nil
		}
		return lw.bd.Cast(ir.OpSIToFP, v, ir.FloatType{Bits: to.Bits}), nil
	case from.Kind == KFloat && to.Kind == KInt:
		if c, ok := v.(*ir.FloatConst); ok {
			return ir.ConstInt(ir.IntType{Bits: to.Bits}, int64(c.Val)), nil
		}
		return lw.bd.Cast(ir.OpFPToSI, v, ir.IntType{Bits: to.Bits}), nil
	case from.Kind == KInt && to.Kind == KPtr:
		if c, ok := v.(*ir.IntConst); ok && c.Val == 0 {
			return ir.ConstNull(lw.irType(to).(ir.PointerType)), nil
		}
		return lw.bd.Cast(ir.OpIntToPtr, v, lw.irType(to)), nil
	case from.Kind == KPtr && to.Kind == KInt:
		return lw.bd.Cast(ir.OpPtrToInt, v, ir.IntType{Bits: to.Bits}), nil
	case from.Kind == KPtr && to.Kind == KVoid:
		return v, nil
	case from.Kind == KInt && to.Kind == KVoid:
		return v, nil
	}
	return nil, lw.errf(pos, "cannot convert %s to %s", from, to)
}
