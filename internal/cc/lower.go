package cc

import (
	"fmt"

	"rolag/internal/ir"
)

// Compile parses src and lowers it to an IR module. The emitted IR keeps
// all locals in allocas; run passes.Mem2Reg to promote them to SSA
// registers.
func Compile(src, moduleName string) (*ir.Module, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(f, moduleName)
}

// Lower lowers a parsed file to an IR module.
func Lower(f *File, moduleName string) (*ir.Module, error) {
	lw := &lowerer{
		mod:     ir.NewModule(moduleName),
		structs: make(map[*CStruct]*ir.StructType),
		globals: make(map[string]*globalInfo),
		funcs:   make(map[string]*funcInfo),
	}
	return lw.lowerFile(f)
}

type globalInfo struct {
	g  *ir.Global
	ct *CType
}

type funcInfo struct {
	f      *ir.Func
	ret    *CType
	params []*CType
}

type localInfo struct {
	addr *ir.Instr // the alloca
	ct   *CType
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type lowerer struct {
	mod     *ir.Module
	structs map[*CStruct]*ir.StructType
	globals map[string]*globalInfo
	funcs   map[string]*funcInfo

	fn     *ir.Func
	fnDecl *FuncDecl
	bd     *ir.Builder
	scopes []map[string]localInfo
	loops  []loopCtx
	entry  *ir.Block
}

func (lw *lowerer) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// irType maps a C type to its IR representation.
func (lw *lowerer) irType(t *CType) ir.Type {
	switch t.Kind {
	case KVoid:
		return ir.Void
	case KInt:
		return ir.IntType{Bits: t.Bits}
	case KFloat:
		return ir.FloatType{Bits: t.Bits}
	case KPtr:
		if t.Elem.Kind == KVoid {
			return ir.Ptr(ir.I8) // void* is treated as char*
		}
		return ir.Ptr(lw.irType(t.Elem))
	case KArray:
		return ir.ArrayOf(t.Len, lw.irType(t.Elem))
	case KStruct:
		if st, ok := lw.structs[t.Struct]; ok {
			return st
		}
		st := &ir.StructType{TypeName: t.Struct.Name}
		lw.structs[t.Struct] = st
		for _, f := range t.Struct.Fields {
			st.Fields = append(st.Fields, lw.irType(f.Type))
		}
		lw.mod.AddStruct(st)
		return st
	}
	panic("cc: unknown type kind")
}

func (lw *lowerer) lowerFile(f *File) (*ir.Module, error) {
	// Structs first so field layouts exist.
	for _, s := range f.Structs {
		lw.irType(&CType{Kind: KStruct, Struct: s})
	}
	for _, g := range f.Globals {
		if err := lw.lowerGlobal(g); err != nil {
			return nil, err
		}
	}
	// Declare every function first so calls resolve in any order.
	for _, fd := range f.Funcs {
		if err := lw.declareFunc(fd); err != nil {
			return nil, err
		}
	}
	for _, fd := range f.Funcs {
		if fd.Body != nil {
			if err := lw.lowerFuncBody(fd); err != nil {
				return nil, err
			}
		}
	}
	return lw.mod, nil
}

func (lw *lowerer) lowerGlobal(g *GlobalDecl) error {
	if _, dup := lw.globals[g.Name]; dup {
		return lw.errf(g.Pos, "global %s redefined", g.Name)
	}
	elem := lw.irType(g.Type)
	var init ir.Const
	if g.Extern {
		init = nil
	} else if len(g.Init) == 0 {
		init = ir.ZeroValue(elem)
	} else if at, ok := elem.(ir.ArrayType); ok {
		arr := &ir.ArrayConst{Typ: at}
		for _, e := range g.Init {
			c, err := lw.constEval(e, g.Type.Elem)
			if err != nil {
				return err
			}
			arr.Elems = append(arr.Elems, c)
		}
		for len(arr.Elems) < at.Len {
			arr.Elems = append(arr.Elems, ir.ZeroValue(at.Elem))
		}
		init = arr
	} else {
		c, err := lw.constEval(g.Init[0], g.Type)
		if err != nil {
			return err
		}
		init = c
	}
	gv := lw.mod.NewGlobal(g.Name, elem, init)
	gv.ReadOnly = g.ReadOnly
	lw.globals[g.Name] = &globalInfo{g: gv, ct: g.Type}
	return nil
}

// constEval folds a constant initializer expression.
func (lw *lowerer) constEval(e Expr, want *CType) (ir.Const, error) {
	switch e := e.(type) {
	case *IntLit:
		switch want.Kind {
		case KFloat:
			return ir.ConstFloat(ir.FloatType{Bits: want.Bits}, float64(e.Val)), nil
		case KInt:
			return ir.ConstInt(ir.IntType{Bits: want.Bits}, e.Val), nil
		}
		return ir.ConstInt(ir.I32, e.Val), nil
	case *FloatLit:
		bits := 64
		if want.Kind == KFloat {
			bits = want.Bits
		}
		return ir.ConstFloat(ir.FloatType{Bits: bits}, e.Val), nil
	case *Unary:
		if e.Op == "-" {
			c, err := lw.constEval(e.X, want)
			if err != nil {
				return nil, err
			}
			switch c := c.(type) {
			case *ir.IntConst:
				return ir.ConstInt(c.Typ, -c.Val), nil
			case *ir.FloatConst:
				return ir.ConstFloat(c.Typ, -c.Val), nil
			}
		}
	}
	return nil, lw.errf(e.exprPos(), "initializer is not a constant")
}

func (lw *lowerer) declareFunc(fd *FuncDecl) error {
	if fi, ok := lw.funcs[fd.Name]; ok {
		// A prior prototype; definitions may follow it.
		if fd.Body != nil && fi.f.IsDecl() {
			return nil
		}
		if fd.Body == nil {
			return nil
		}
		return lw.errf(fd.Pos, "function %s redefined", fd.Name)
	}
	params := make([]*ir.Param, len(fd.Params))
	ctypes := make([]*CType, len(fd.Params))
	for i, pd := range fd.Params {
		name := pd.Name
		if name == "" {
			name = fmt.Sprintf("p%d", i)
		}
		pt := pd.Type
		if pt.Kind == KArray {
			pt = CPtr(pt.Elem)
		}
		if pt.Kind == KStruct {
			return lw.errf(fd.Pos, "struct-by-value parameters are not supported; pass a pointer")
		}
		params[i] = &ir.Param{Name: name, Typ: lw.irType(pt)}
		ctypes[i] = pt
	}
	f := lw.mod.NewFunc(fd.Name, lw.irType(fd.Ret), params...)
	if fd.Body == nil {
		f.Blocks = nil
		f.ReadOnly = fd.Pure
	}
	lw.funcs[fd.Name] = &funcInfo{f: f, ret: fd.Ret, params: ctypes}
	return nil
}

func (lw *lowerer) lowerFuncBody(fd *FuncDecl) error {
	fi := lw.funcs[fd.Name]
	lw.fn = fi.f
	lw.fnDecl = fd
	lw.fn.Blocks = nil
	entry := lw.fn.NewBlock("entry")
	lw.entry = entry
	lw.bd = ir.NewBuilder(entry)
	lw.scopes = []map[string]localInfo{make(map[string]localInfo)}
	lw.loops = nil

	// Spill parameters to allocas so assignments to parameters work;
	// Mem2Reg promotes them back.
	for i, p := range lw.fn.Params {
		a := lw.bd.Alloca(p.Typ, nil, p.Name+".addr")
		lw.bd.Store(p, a)
		lw.scopes[0][fd.Params[i].Name] = localInfo{addr: a, ct: fi.params[i]}
	}

	if err := lw.lowerStmt(fd.Body); err != nil {
		return err
	}
	// Implicit return.
	if lw.bd.Block.Terminator() == nil {
		if fd.Ret.Kind == KVoid {
			lw.bd.Ret(nil)
		} else {
			lw.bd.Ret(ir.ZeroValue(lw.irType(fd.Ret)))
		}
	}
	lw.removeUnreachable()
	return nil
}

// removeUnreachable deletes blocks not reachable from the entry; such
// blocks arise after return/break statements.
func (lw *lowerer) removeUnreachable() {
	reach := map[*ir.Block]bool{lw.fn.Entry(): true}
	work := []*ir.Block{lw.fn.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	var kept []*ir.Block
	for _, b := range lw.fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	lw.fn.Blocks = kept
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, make(map[string]localInfo)) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookup(name string) (localInfo, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if li, ok := lw.scopes[i][name]; ok {
			return li, true
		}
	}
	return localInfo{}, false
}

func (lw *lowerer) lowerStmt(s Stmt) error {
	switch s := s.(type) {
	case *EmptyStmt:
		return nil
	case *BlockStmt:
		lw.pushScope()
		defer lw.popScope()
		for _, st := range s.Stmts {
			if lw.bd.Block.Terminator() != nil {
				// Dead code after return/break; lower into a fresh
				// unreachable block that cleanup removes.
				dead := lw.fn.NewBlock("dead")
				lw.bd.SetBlock(dead)
			}
			if err := lw.lowerStmt(st); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		elem := lw.irType(s.Type)
		a := lw.allocaInEntry(elem, s.Name)
		lw.scopes[len(lw.scopes)-1][s.Name] = localInfo{addr: a, ct: s.Type}
		if s.Init != nil {
			v, vt, err := lw.lowerExpr(s.Init)
			if err != nil {
				return err
			}
			cv, err := lw.convert(v, vt, s.Type, s.Pos)
			if err != nil {
				return err
			}
			lw.bd.Store(cv, a)
		}
		return nil
	case *ExprStmt:
		_, _, err := lw.lowerExpr(s.X)
		return err
	case *ReturnStmt:
		if s.X == nil {
			lw.bd.Ret(nil)
			return nil
		}
		v, vt, err := lw.lowerExpr(s.X)
		if err != nil {
			return err
		}
		cv, err := lw.convert(v, vt, lw.fnDecl.Ret, s.Pos)
		if err != nil {
			return err
		}
		lw.bd.Ret(cv)
		return nil
	case *IfStmt:
		cond, err := lw.lowerCond(s.Cond)
		if err != nil {
			return err
		}
		thenB := lw.fn.NewBlock("if.then")
		exitB := lw.fn.NewBlock("if.end")
		elseB := exitB
		if s.Else != nil {
			elseB = lw.fn.NewBlock("if.else")
		}
		lw.bd.CondBr(cond, thenB, elseB)
		lw.bd.SetBlock(thenB)
		if err := lw.lowerStmt(s.Then); err != nil {
			return err
		}
		if lw.bd.Block.Terminator() == nil {
			lw.bd.Br(exitB)
		}
		if s.Else != nil {
			lw.bd.SetBlock(elseB)
			if err := lw.lowerStmt(s.Else); err != nil {
				return err
			}
			if lw.bd.Block.Terminator() == nil {
				lw.bd.Br(exitB)
			}
		}
		lw.bd.SetBlock(exitB)
		return nil
	case *ForStmt:
		return lw.lowerLoop(s.Init, s.Cond, s.Post, s.Body)
	case *WhileStmt:
		return lw.lowerLoop(nil, s.Cond, nil, s.Body)
	case *DoWhileStmt:
		return lw.lowerDoWhile(s.Cond, s.Body)
	case *BreakStmt:
		if len(lw.loops) == 0 {
			return lw.errf(s.Pos, "break outside loop")
		}
		lw.bd.Br(lw.loops[len(lw.loops)-1].breakTo)
		return nil
	case *ContinueStmt:
		if len(lw.loops) == 0 {
			return lw.errf(s.Pos, "continue outside loop")
		}
		lw.bd.Br(lw.loops[len(lw.loops)-1].continueTo)
		return nil
	}
	return fmt.Errorf("cc: unhandled statement %T", s)
}

// allocaInEntry creates an alloca in the entry block (before any
// non-alloca instruction) so that Mem2Reg sees every local.
func (lw *lowerer) allocaInEntry(elem ir.Type, name string) *ir.Instr {
	save := lw.bd.Block
	saveAt := lw.bd.At
	idx := 0
	for idx < len(lw.entry.Instrs) && lw.entry.Instrs[idx].Op == ir.OpAlloca {
		idx++
	}
	lw.bd.Block = lw.entry
	lw.bd.At = idx
	a := lw.bd.Alloca(elem, nil, name)
	lw.bd.Block = save
	lw.bd.At = saveAt
	if save == lw.entry && saveAt < 0 {
		// Appending to entry: nothing to fix.
		_ = saveAt
	}
	return a
}

// lowerLoop lowers a (rotated) for/while loop:
//
//	init; if (cond) { do { body; post } while (cond); }
//
// so that simple counted loops become the canonical single-block shape
// after Mem2Reg. Loops whose body uses continue get a separate latch.
func (lw *lowerer) lowerLoop(init Stmt, cond Expr, post Expr, body Stmt) error {
	lw.pushScope()
	defer lw.popScope()
	if init != nil {
		if err := lw.lowerStmt(init); err != nil {
			return err
		}
	}
	bodyB := lw.fn.NewBlock("loop.body")
	exitB := lw.fn.NewBlock("loop.exit")

	// Guard.
	if cond != nil {
		c, err := lw.lowerCond(cond)
		if err != nil {
			return err
		}
		lw.bd.CondBr(c, bodyB, exitB)
	} else {
		lw.bd.Br(bodyB)
	}

	needLatch := usesContinue(body)
	var latchB *ir.Block
	continueTo := bodyB
	if needLatch {
		latchB = lw.fn.NewBlock("loop.latch")
		continueTo = latchB
	}
	lw.loops = append(lw.loops, loopCtx{breakTo: exitB, continueTo: continueTo})
	lw.bd.SetBlock(bodyB)
	if err := lw.lowerStmt(body); err != nil {
		return err
	}
	lw.loops = lw.loops[:len(lw.loops)-1]

	emitLatch := func() error {
		if post != nil {
			if _, _, err := lw.lowerExpr(post); err != nil {
				return err
			}
		}
		if cond != nil {
			c, err := lw.lowerCond(cond)
			if err != nil {
				return err
			}
			lw.bd.CondBr(c, bodyB, exitB)
		} else {
			lw.bd.Br(bodyB)
		}
		return nil
	}

	if needLatch {
		if lw.bd.Block.Terminator() == nil {
			lw.bd.Br(latchB)
		}
		lw.bd.SetBlock(latchB)
		if err := emitLatch(); err != nil {
			return err
		}
	} else if lw.bd.Block.Terminator() == nil {
		if err := emitLatch(); err != nil {
			return err
		}
	}
	lw.bd.SetBlock(exitB)
	return nil
}

// lowerDoWhile lowers do { body } while (cond): the body runs
// unconditionally, then loops while the condition holds. This is the
// rotated loop shape without the guard.
func (lw *lowerer) lowerDoWhile(cond Expr, body Stmt) error {
	lw.pushScope()
	defer lw.popScope()
	bodyB := lw.fn.NewBlock("loop.body")
	exitB := lw.fn.NewBlock("loop.exit")
	lw.bd.Br(bodyB)

	needLatch := usesContinue(body)
	var latchB *ir.Block
	continueTo := bodyB
	if needLatch {
		latchB = lw.fn.NewBlock("loop.latch")
		continueTo = latchB
	}
	lw.loops = append(lw.loops, loopCtx{breakTo: exitB, continueTo: continueTo})
	lw.bd.SetBlock(bodyB)
	if err := lw.lowerStmt(body); err != nil {
		return err
	}
	lw.loops = lw.loops[:len(lw.loops)-1]

	emitLatch := func() error {
		c, err := lw.lowerCond(cond)
		if err != nil {
			return err
		}
		lw.bd.CondBr(c, bodyB, exitB)
		return nil
	}
	if needLatch {
		if lw.bd.Block.Terminator() == nil {
			lw.bd.Br(latchB)
		}
		lw.bd.SetBlock(latchB)
		if err := emitLatch(); err != nil {
			return err
		}
	} else if lw.bd.Block.Terminator() == nil {
		if err := emitLatch(); err != nil {
			return err
		}
	}
	lw.bd.SetBlock(exitB)
	return nil
}

// usesContinue reports whether the statement contains a continue that
// binds to this loop (i.e. not inside a nested loop).
func usesContinue(s Stmt) bool {
	switch s := s.(type) {
	case *ContinueStmt:
		return true
	case *BlockStmt:
		for _, st := range s.Stmts {
			if usesContinue(st) {
				return true
			}
		}
	case *IfStmt:
		if usesContinue(s.Then) {
			return true
		}
		if s.Else != nil && usesContinue(s.Else) {
			return true
		}
	}
	return false
}
