package cc

// CType is the frontend's view of a C type.
type CType struct {
	Kind   CTypeKind
	Bits   int      // for KInt/KFloat
	Elem   *CType   // for KPtr/KArray
	Len    int      // for KArray
	Struct *CStruct // for KStruct
}

// CTypeKind classifies C types.
type CTypeKind int

// C type kinds.
const (
	KVoid CTypeKind = iota
	KInt
	KFloat
	KPtr
	KArray
	KStruct
)

// CStruct is a declared struct type.
type CStruct struct {
	Name   string
	Fields []CField
}

// CField is one struct field.
type CField struct {
	Name string
	Type *CType
}

// FieldIndex returns the index of the field with the given name, or -1.
func (s *CStruct) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

func (t *CType) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt:
		switch t.Bits {
		case 8:
			return "char"
		case 16:
			return "short"
		case 32:
			return "int"
		default:
			return "long"
		}
	case KFloat:
		if t.Bits == 32 {
			return "float"
		}
		return "double"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return t.Elem.String() + "[]"
	case KStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// Common C types.
var (
	CVoid   = &CType{Kind: KVoid}
	CChar   = &CType{Kind: KInt, Bits: 8}
	CShort  = &CType{Kind: KInt, Bits: 16}
	CInt    = &CType{Kind: KInt, Bits: 32}
	CLong   = &CType{Kind: KInt, Bits: 64}
	CFloat  = &CType{Kind: KFloat, Bits: 32}
	CDouble = &CType{Kind: KFloat, Bits: 64}
)

// CPtr returns the pointer type to elem.
func CPtr(elem *CType) *CType { return &CType{Kind: KPtr, Elem: elem} }

// Expr is a parsed expression.
type Expr interface{ exprPos() Pos }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// FloatLit is a floating-point literal. F32 marks an 'f'-suffixed
// literal of C type float.
type FloatLit struct {
	Pos Pos
	Val float64
	F32 bool
}

// Ident is a variable reference.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is a prefix or postfix unary expression. Op is one of
// "-", "!", "~", "*", "&", "++", "--".
type Unary struct {
	Pos     Pos
	Op      string
	X       Expr
	Postfix bool // for ++/--
}

// Binary is a binary expression. Op is an arithmetic, comparison,
// bitwise, shift or logical operator.
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Assign is an assignment; Op is "=", "+=", "-=", "*=", "/=", "%=",
// "&=", "|=", "^=", "<<=" or ">>=".
type Assign struct {
	Pos Pos
	Op  string
	LHS Expr
	RHS Expr
}

// Cond is the ternary conditional c ? t : f.
type Cond struct {
	Pos     Pos
	C, T, F Expr
}

// Call is a function call by name.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Index is array subscripting x[i].
type Index struct {
	Pos Pos
	X   Expr
	Idx Expr
}

// Member is field access x.f or x->f.
type Member struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is an explicit conversion (T)x.
type CastExpr struct {
	Pos Pos
	To  *CType
	X   Expr
}

func (e *IntLit) exprPos() Pos   { return e.Pos }
func (e *FloatLit) exprPos() Pos { return e.Pos }
func (e *Ident) exprPos() Pos    { return e.Pos }
func (e *Unary) exprPos() Pos    { return e.Pos }
func (e *Binary) exprPos() Pos   { return e.Pos }
func (e *Assign) exprPos() Pos   { return e.Pos }
func (e *Cond) exprPos() Pos     { return e.Pos }
func (e *Call) exprPos() Pos     { return e.Pos }
func (e *Index) exprPos() Pos    { return e.Pos }
func (e *Member) exprPos() Pos   { return e.Pos }
func (e *CastExpr) exprPos() Pos { return e.Pos }

// Stmt is a parsed statement.
type Stmt interface{ stmtPos() Pos }

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type *CType
	Init Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a for loop; any of Init, Cond, Post may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { ... } while (cond); loop — the body always runs
// at least once.
type DoWhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ReturnStmt returns from the function; X may be nil.
type ReturnStmt struct {
	Pos Pos
	X   Expr
}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Pos Pos }

func (s *DeclStmt) stmtPos() Pos     { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }
func (s *IfStmt) stmtPos() Pos       { return s.Pos }
func (s *ForStmt) stmtPos() Pos      { return s.Pos }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos }
func (s *DoWhileStmt) stmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos }
func (s *BlockStmt) stmtPos() Pos    { return s.Pos }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos }
func (s *EmptyStmt) stmtPos() Pos    { return s.Pos }

// Param is a function parameter declaration.
type ParamDecl struct {
	Name string
	Type *CType
}

// FuncDecl is a function definition or external declaration.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    *CType
	Params []ParamDecl
	Body   *BlockStmt // nil for declarations
	Pure   bool       // declaration marked "pure": does not write memory
}

// GlobalDecl is a module-level variable.
type GlobalDecl struct {
	Pos      Pos
	Name     string
	Type     *CType
	Init     []Expr // scalar init has len 1; array init may have many
	Extern   bool
	ReadOnly bool // declared const
}

// File is a parsed translation unit.
type File struct {
	Structs []*CStruct
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
