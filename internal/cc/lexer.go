// Package cc implements a frontend for a subset of C sufficient for the
// paper's benchmark kernels: functions, scalar and pointer types, arrays,
// structs, for/while/if control flow and the usual expression operators.
// Source is lowered to the project's SSA IR (allocas first, promoted to
// registers by passes.Mem2Reg).
package cc

import (
	"fmt"
	"strings"
)

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokPunct
	TokKeyword
)

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
	Int  int64
	Flt  float64
	// F32 marks a float literal with an 'f' suffix (C type float).
	F32 bool
}

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"const": true, "struct": true, "extern": true, "static": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "pure": true,
}

// Error is a frontend error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes mini-C source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(i int) byte {
	if lx.off+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+i]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '#':
			// Preprocessor lines are ignored (benchmark sources carry
			// occasional #define noise); skip to end of line.
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

var multiPuncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for lx.off < len(lx.src) && isIdentPart(lx.peekByte()) {
			sb.WriteByte(lx.advance())
		}
		text := sb.String()
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: start}, nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(start)
	default:
		for _, mp := range multiPuncts {
			if strings.HasPrefix(lx.src[lx.off:], mp) {
				for range mp {
					lx.advance()
				}
				return Token{Kind: TokPunct, Text: mp, Pos: start}, nil
			}
		}
		lx.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
	}
}

func (lx *Lexer) lexNumber(start Pos) (Token, error) {
	var sb strings.Builder
	isFloat := false
	if lx.peekByte() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		sb.WriteByte(lx.advance())
		sb.WriteByte(lx.advance())
		for isHexDigit(lx.peekByte()) {
			sb.WriteByte(lx.advance())
		}
		lx.skipIntSuffix()
		var v int64
		if _, err := fmt.Sscanf(sb.String(), "%v", &v); err != nil {
			return Token{}, &Error{Pos: start, Msg: "bad hex literal " + sb.String()}
		}
		return Token{Kind: TokIntLit, Text: sb.String(), Pos: start, Int: v}, nil
	}
	for isDigit(lx.peekByte()) {
		sb.WriteByte(lx.advance())
	}
	if lx.peekByte() == '.' {
		isFloat = true
		sb.WriteByte(lx.advance())
		for isDigit(lx.peekByte()) {
			sb.WriteByte(lx.advance())
		}
	}
	if lx.peekByte() == 'e' || lx.peekByte() == 'E' {
		isFloat = true
		sb.WriteByte(lx.advance())
		if lx.peekByte() == '+' || lx.peekByte() == '-' {
			sb.WriteByte(lx.advance())
		}
		for isDigit(lx.peekByte()) {
			sb.WriteByte(lx.advance())
		}
	}
	isF32 := false
	if lx.peekByte() == 'f' || lx.peekByte() == 'F' {
		isFloat = true
		isF32 = true
		lx.advance()
	} else {
		lx.skipIntSuffix()
	}
	if isFloat {
		var v float64
		if _, err := fmt.Sscanf(sb.String(), "%g", &v); err != nil {
			return Token{}, &Error{Pos: start, Msg: "bad float literal " + sb.String()}
		}
		return Token{Kind: TokFloatLit, Text: sb.String(), Pos: start, Flt: v, F32: isF32}, nil
	}
	var v int64
	if _, err := fmt.Sscanf(sb.String(), "%d", &v); err != nil {
		return Token{}, &Error{Pos: start, Msg: "bad int literal " + sb.String()}
	}
	return Token{Kind: TokIntLit, Text: sb.String(), Pos: start, Int: v}, nil
}

func (lx *Lexer) skipIntSuffix() {
	for {
		c := lx.peekByte()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
