package cc

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("lex error: %v", err)
		}
		if tok.Kind == TokEOF {
			return toks
		}
		toks = append(toks, tok)
	}
}

func TestLexBasics(t *testing.T) {
	toks := lexAll(t, "int x = 42;")
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "int"}, {TokIdent, "x"}, {TokPunct, "="},
		{TokIntLit, "42"}, {TokPunct, ";"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || (w.text != "" && toks[i].Text != w.text && toks[i].Kind != TokIntLit) {
			t.Errorf("token %d: %+v, want %+v", i, toks[i], w)
		}
	}
	if toks[3].Int != 42 {
		t.Errorf("literal value = %d", toks[3].Int)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src   string
		kind  TokKind
		i     int64
		f     float64
		isF32 bool
	}{
		{"0", TokIntLit, 0, 0, false},
		{"123", TokIntLit, 123, 0, false},
		{"0x1F", TokIntLit, 31, 0, false},
		{"42u", TokIntLit, 42, 0, false},
		{"42L", TokIntLit, 42, 0, false},
		{"42ull", TokIntLit, 42, 0, false},
		{"1.5", TokFloatLit, 0, 1.5, false},
		{"1.5f", TokFloatLit, 0, 1.5, true},
		{"2e3", TokFloatLit, 0, 2000, false},
		{"1.25e-2", TokFloatLit, 0, 0.0125, false},
		{".5", TokFloatLit, 0, 0.5, false},
		{"3F", TokFloatLit, 0, 3, true},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if len(toks) != 1 {
			t.Errorf("%q: %d tokens", c.src, len(toks))
			continue
		}
		tok := toks[0]
		if tok.Kind != c.kind {
			t.Errorf("%q: kind %d, want %d", c.src, tok.Kind, c.kind)
		}
		if c.kind == TokIntLit && tok.Int != c.i {
			t.Errorf("%q: int %d, want %d", c.src, tok.Int, c.i)
		}
		if c.kind == TokFloatLit && (tok.Flt != c.f || tok.F32 != c.isF32) {
			t.Errorf("%q: float %v/%v, want %v/%v", c.src, tok.Flt, tok.F32, c.f, c.isF32)
		}
	}
}

func TestLexPunctuation(t *testing.T) {
	toks := lexAll(t, "a<<=b>>c<=d==e&&f->g++h--i")
	var got []string
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			got = append(got, tok.Text)
		}
	}
	want := []string{"<<=", ">>", "<=", "==", "&&", "->", "++", "--"}
	if len(got) != len(want) {
		t.Fatalf("puncts %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("punct %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLexCommentsAndPreprocessor(t *testing.T) {
	src := `
// line comment
#define FOO 1
int /* block
comment */ x;
`
	toks := lexAll(t, src)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3 (int x ;): %+v", len(toks), toks)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	lx := NewLexer("/* never closed")
	if _, err := lx.Next(); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}
