package cc_test

// C semantics tests: each case compiles a tiny program, runs it through
// the interpreter and checks the result — covering arithmetic,
// conversions, control flow, pointers, arrays, structs and globals.

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func compileAndRun(t *testing.T, src, fn string, args ...interp.Val) interp.Val {
	t.Helper()
	m, err := cc.Compile(src, "sem")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := in.Call(fn, args...)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	return v
}

func TestIntSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []interp.Val
		want int64
	}{
		{"arith", `int f(int a, int b) { return a*3 + b/2 - 7; }`,
			[]interp.Val{interp.IntVal(10), interp.IntVal(9)}, 27},
		{"precedence", `int f() { return 2 + 3 * 4 - 10 / 5; }`, nil, 12},
		{"parens", `int f() { return (2 + 3) * (4 - 1); }`, nil, 15},
		{"mod", `int f(int a) { return a % 7; }`, []interp.Val{interp.IntVal(23)}, 2},
		{"negmod", `int f() { return -9 % 4; }`, nil, -1},
		{"bitwise", `int f() { return (0xF0 | 0x0F) & 0x3C ^ 0x01; }`, nil, 0x3D},
		{"shifts", `int f(int a) { return (a << 3) >> 1; }`, []interp.Val{interp.IntVal(5)}, 20},
		{"negshift", `int f() { return -16 >> 2; }`, nil, -4}, // arithmetic shift
		{"cmp_chain", `int f(int a) { return (a > 3) + (a >= 4) + (a == 4) + (a != 0); }`,
			[]interp.Val{interp.IntVal(4)}, 4},
		{"logical_and", `int f(int a, int b) { return a && b; }`,
			[]interp.Val{interp.IntVal(3), interp.IntVal(0)}, 0},
		{"logical_or", `int f(int a, int b) { return a || b; }`,
			[]interp.Val{interp.IntVal(0), interp.IntVal(5)}, 1},
		{"not", `int f(int a) { return !a + !!a; }`, []interp.Val{interp.IntVal(7)}, 1},
		{"neg", `int f(int a) { return -a; }`, []interp.Val{interp.IntVal(12)}, -12},
		{"bitnot", `int f() { return ~0; }`, nil, -1},
		{"ternary", `int f(int a) { return a > 10 ? 100 : 200; }`, []interp.Val{interp.IntVal(11)}, 100},
		{"ternary_nested", `int f(int a) { return a < 0 ? -1 : a == 0 ? 0 : 1; }`,
			[]interp.Val{interp.IntVal(0)}, 0},
		{"compound_assign", `int f(int a) { int x = a; x += 3; x *= 2; x -= 1; x /= 3; x %= 4; return x; }`,
			[]interp.Val{interp.IntVal(5)}, 1},
		{"compound_bits", `int f() { int x = 12; x &= 10; x |= 1; x ^= 2; x <<= 2; x >>= 1; return x; }`,
			nil, 22},
		{"preincr", `int f(int a) { int x = a; return ++x + x; }`, []interp.Val{interp.IntVal(4)}, 10},
		{"postincr", `int f(int a) { int x = a; return x++ + x; }`, []interp.Val{interp.IntVal(4)}, 9},
		{"predecr", `int f() { int x = 3; return --x; }`, nil, 2},
		{"postdecr", `int f() { int x = 3; return x--; }`, nil, 3},
		{"overflow_wrap", `int f() { int x = 2147483647; return x + 1; }`, nil, -2147483648},
		{"char_trunc", `int f() { char c = 300; return c; }`, nil, 44},
		{"short_trunc", `int f() { short s = 70000; return s; }`, nil, 4464},
		{"long_arith", `long f(long a) { return a * 1000000007; }`,
			[]interp.Val{interp.IntVal(1 << 33)}, (1 << 33) * 1000000007},
		{"hex", `int f() { return 0xff + 0x10; }`, nil, 271},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := compileAndRun(t, c.src, "f", c.args...)
			if got.I != c.want {
				t.Errorf("got %d, want %d", got.I, c.want)
			}
		})
	}
}

func TestFloatSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []interp.Val
		want float64
	}{
		{"double_arith", `double f(double a) { return a * 2.5 + 1.0; }`,
			[]interp.Val{interp.FloatVal(4)}, 11},
		{"float_literal", `float f() { return 1.5f + 2.5f; }`, nil, 4},
		{"mixed_promote", `double f(int a) { return a / 2.0; }`,
			[]interp.Val{interp.IntVal(5)}, 2.5},
		{"int_div_stays_int", `double f(int a) { return a / 2; }`,
			[]interp.Val{interp.IntVal(5)}, 2},
		{"float_to_int", `int f(double x) { return (int)x; }`,
			[]interp.Val{interp.FloatVal(3.99)}, 0}, // want is in wantI below
		{"cmp", `int f(double a, double b) { return a < b; }`,
			[]interp.Val{interp.FloatVal(1.5), interp.FloatVal(2.5)}, 0},
	}
	// float_to_int and cmp return ints.
	got := compileAndRun(t, cases[4].src, "f", cases[4].args...)
	if got.I != 3 {
		t.Errorf("float_to_int: got %d, want 3", got.I)
	}
	got = compileAndRun(t, cases[5].src, "f", cases[5].args...)
	if got.I != 1 {
		t.Errorf("float cmp: got %d, want 1", got.I)
	}
	for _, c := range cases[:4] {
		t.Run(c.name, func(t *testing.T) {
			got := compileAndRun(t, c.src, "f", c.args...)
			if got.F != c.want {
				t.Errorf("got %v, want %v", got.F, c.want)
			}
		})
	}
}

func TestControlFlowSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []interp.Val
		want int64
	}{
		{"if_else", `int f(int a) { if (a > 0) return 1; else return -1; }`,
			[]interp.Val{interp.IntVal(-5)}, -1},
		{"if_no_else", `int f(int a) { int r = 0; if (a) r = 5; return r; }`,
			[]interp.Val{interp.IntVal(0)}, 0},
		{"for_sum", `int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }`,
			[]interp.Val{interp.IntVal(10)}, 55},
		{"for_zero_trips", `int f() { int s = 9; for (int i = 0; i < 0; i++) s = 0; return s; }`,
			nil, 9},
		{"for_step", `int f() { int s = 0; for (int i = 0; i < 10; i += 3) s += i; return s; }`,
			nil, 18},
		{"for_down", `int f() { int s = 0; for (int i = 5; i > 0; i--) s = s * 10 + i; return s; }`,
			nil, 54321},
		{"while", `int f(int n) { int c = 0; while (n > 1) { if (n % 2) n = 3 * n + 1; else n = n / 2; c++; } return c; }`,
			[]interp.Val{interp.IntVal(6)}, 8}, // Collatz(6)
		{"break", `int f() { int i; for (i = 0; i < 100; i++) { if (i == 7) break; } return i; }`,
			nil, 7},
		{"continue", `int f() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }`,
			nil, 20},
		{"nested_loops", `int f() { int s = 0; for (int i = 0; i < 4; i++) for (int j = 0; j < i; j++) s++; return s; }`,
			nil, 6},
		{"nested_break", `int f() { int s = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 10; j++) { if (j == 2) break; s++; } } return s; }`,
			nil, 6},
		{"shortcircuit_effect", `
int g;
int bump() { g += 1; return 0; }
int f() { g = 0; int r = bump() && bump(); return g + r; }`,
			nil, 1},
		{"recursion", `int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }`,
			[]interp.Val{interp.IntVal(12)}, 144},
		{"mutual_recursion", `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int f(int n) { return isEven(n); }`,
			[]interp.Val{interp.IntVal(10)}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := compileAndRun(t, c.src, "f", c.args...)
			if got.I != c.want {
				t.Errorf("got %d, want %d", got.I, c.want)
			}
		})
	}
}

func TestMemorySemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"local_array", `int f() { int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; return a[3]; }`, 9},
		{"array_2d", `int f() { int a[3][4]; a[2][3] = 77; a[0][0] = 1; return a[2][3] + a[0][0]; }`, 78},
		{"pointer_deref", `int f() { int x = 5; int *p = &x; *p = 9; return x; }`, 9},
		{"pointer_arith", `int f() { int a[4]; a[0]=1; a[1]=2; a[2]=3; a[3]=4; int *p = a; p = p + 2; return *p + p[-1]; }`, 5},
		{"pointer_incr", `int f() { int a[3]; a[0]=10; a[1]=20; a[2]=30; int *p = a; p++; return *p; }`, 20},
		{"struct_fields", `
struct P { int x; int y; };
int f() { struct P p; p.x = 3; p.y = 4; return p.x * p.x + p.y * p.y; }`, 25},
		{"struct_ptr", `
struct P { int x; int y; };
int set(struct P *p) { p->x = 11; p->y = 22; return 0; }
int f() { struct P p; set(&p); return p.y - p.x; }`, 11},
		{"struct_mixed_layout", `
struct M { char c; int i; char d; long l; };
int f() { struct M m; m.c = 1; m.i = 2; m.d = 3; m.l = 4; return m.c + m.i + m.d + (int)m.l; }`, 10},
		{"struct_array_field", `
struct B { int v[4]; };
int f() { struct B b; for (int i = 0; i < 4; i++) b.v[i] = i + 1; return b.v[0] + b.v[3]; }`, 5},
		{"global_scalar", `int g = 41; int f() { g += 1; return g; }`, 42},
		{"global_array_init", `int tab[5] = {10, 20, 30}; int f() { return tab[0] + tab[1] + tab[2] + tab[3] + tab[4]; }`, 60},
		{"global_negative_init", `int g = -7; int f() { return g; }`, -7},
		{"swap_through_pointers", `
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int f() { int x = 3; int y = 5; swap(&x, &y); return x * 10 + y; }`, 53},
		{"char_array", `int f() { char a[4]; a[0] = 250; a[1] = 6; return a[0] + a[1]; }`, 0},
		{"address_of_element", `int f() { int a[3]; a[1] = 42; int *p = &a[1]; return *p; }`, 42},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := compileAndRun(t, c.src, "f")
			if got.I != c.want {
				t.Errorf("got %d, want %d", got.I, c.want)
			}
		})
	}
}

func TestExternCalls(t *testing.T) {
	src := `
extern int magic(int x);
int f(int a) { return magic(a) + magic(a); }`
	m, err := cc.Compile(src, "ext")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	in.Externs["magic"] = func(_ *interp.Interp, args []interp.Val) (interp.Val, error) {
		return interp.IntVal(args[0].I * 10), nil
	}
	v, err := in.Call("f", interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 60 {
		t.Errorf("got %d, want 60", v.I)
	}
	if len(in.Trace) != 2 {
		t.Errorf("trace has %d events, want 2", len(in.Trace))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int f( { return 0; }`,
		`int f() { return ; `,
		`int f() { x = ; }`,
		`struct S { int x }; int f() { return 0; }`,
		`int f() { int a[]; return 0; }`,
		`int f() { break; }`,
		`void f() { continue; }`,
		`int f() { undeclared_var += 1; return 0; }`,
		`struct S { int x; }; int f(struct S s) { return s.x; }`, // by-value param
		`int f() { return 1 ? 2; }`,
	}
	for i, src := range cases {
		if _, err := cc.Compile(src, "bad"); err == nil {
			t.Errorf("case %d: expected a frontend error for %q", i, src)
		}
	}
}

func TestImplicitDeclaration(t *testing.T) {
	// Calls to unknown functions get implicit int declarations.
	src := `int f(int a) { return helper(a, 2); }`
	m, err := cc.Compile(src, "impl")
	if err != nil {
		t.Fatal(err)
	}
	h := m.FindFunc("helper")
	if h == nil || !h.IsDecl() {
		t.Fatal("implicit declaration missing")
	}
	if !h.Sig.Ret.Equal(ir.I32) || len(h.Sig.Params) != 2 {
		t.Errorf("implicit signature = %s", h.Sig)
	}
}

func TestGlobalConstArray(t *testing.T) {
	src := `const int weights[4] = {1, 2, 3, 4}; int f(int i) { return weights[i]; }`
	m, err := cc.Compile(src, "cg")
	if err != nil {
		t.Fatal(err)
	}
	g := m.FindGlobal("weights")
	if g == nil || !g.ReadOnly {
		t.Fatal("const global should be read-only")
	}
	passes.Standard().Run(m)
	in, _ := interp.New(m)
	v, err := in.Call("f", interp.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 {
		t.Errorf("weights[2] = %d", v.I)
	}
}

func TestDoWhileSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []interp.Val
		want int64
	}{
		{"runs_once", `int f() { int n = 0; do { n++; } while (n < 0); return n; }`, nil, 1},
		{"counts", `int f(int n) { int c = 0; do { c++; n /= 2; } while (n > 0); return c; }`,
			[]interp.Val{interp.IntVal(100)}, 7},
		{"break_inside", `int f() { int i = 0; do { if (i == 3) break; i++; } while (1); return i; }`, nil, 3},
		{"continue_inside", `int f() { int i = 0; int s = 0; do { i++; if (i % 2) continue; s += i; } while (i < 10); return s; }`, nil, 30},
		{"nested", `int f() { int s = 0; int i = 0; do { int j = 0; do { s++; j++; } while (j < 3); i++; } while (i < 2); return s; }`, nil, 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := compileAndRun(t, c.src, "f", c.args...)
			if got.I != c.want {
				t.Errorf("got %d, want %d", got.I, c.want)
			}
		})
	}
}
