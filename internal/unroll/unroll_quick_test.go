package unroll_test

import (
	"strings"
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/unroll"
)

func TestUnrollQuick(t *testing.T) {
	src := `
void saxpy(float *a, float *b, int n) {
	for (int i = 0; i < 64; i++)
		a[i] = a[i] * 2.0f + b[i];
}
int redsum(int *a) {
	int s = 0;
	for (int i = 0; i < 16; i++) s += a[i];
	return s;
}
`
	build := func() *ir.Module {
		m, err := cc.Compile(src, "u")
		if err != nil {
			t.Fatal(err)
		}
		passes.Standard().Run(m)
		return m
	}
	orig := build()
	unrolled := build()
	for _, f := range unrolled.Funcs {
		n := unroll.UnrollAll(f, 8)
		if !f.IsDecl() && n != 1 {
			t.Fatalf("@%s: unrolled %d loops, want 1", f.Name, n)
		}
	}
	passes.Standard().Run(unrolled)
	if err := unrolled.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, unrolled)
	}
	for _, name := range []string{"saxpy", "redsum"} {
		if err := interp.CheckEquiv(orig, unrolled, name, 3, nil); err != nil {
			t.Errorf("@%s not equivalent after unroll: %v", name, err)
		}
	}
	// The unrolled IR should contain iv+k adds in the canonical form.
	text := unrolled.String()
	if !strings.Contains(text, ", 7") {
		t.Errorf("expected reassociated iv+7 increment in:\n%s", text)
	}
	t.Log("\n" + unrolled.FindFunc("redsum").String())
}
