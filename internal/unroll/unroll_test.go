package unroll_test

import (
	"testing"

	"rolag/internal/analysis"
	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/unroll"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "u")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestUnrollFactors(t *testing.T) {
	src := `
int f(int *a) {
	int s = 0;
	for (int i = 0; i < 24; i++) { a[i] = i * 2; s += a[i]; }
	return s;
}`
	for _, factor := range []int{2, 3, 4, 6, 8, 12} {
		orig := build(t, src)
		work := build(t, src)
		f := work.FindFunc("f")
		loops := analysis.FindLoops(f)
		if len(loops) != 1 {
			t.Fatalf("factor %d: %d loops", factor, len(loops))
		}
		if err := unroll.Unroll(f, loops[0], factor); err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		passes.Standard().Run(work)
		if err := work.Verify(); err != nil {
			t.Fatalf("factor %d: verify: %v", factor, err)
		}
		if err := interp.CheckEquiv(orig, work, "f", 2, nil); err != nil {
			t.Errorf("factor %d: %v", factor, err)
		}
	}
}

func TestUnrollBodyGrowth(t *testing.T) {
	src := `void f(int *a) { for (int i = 0; i < 16; i++) a[i] = i; }`
	m := build(t, src)
	f := m.FindFunc("f")
	before := f.NumInstrs()
	loops := analysis.FindLoops(f)
	if err := unroll.Unroll(f, loops[0], 4); err != nil {
		t.Fatal(err)
	}
	after := f.NumInstrs()
	if after <= before*2 {
		t.Errorf("unroll x4 grew %d -> %d instructions; too little", before, after)
	}
}

func TestUnrollRejections(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		factor int
	}{
		{"unknown trip", `void f(int *a, int n) { for (int i = 0; i < n; i++) a[i] = i; }`, 4},
		{"indivisible", `void f(int *a) { for (int i = 0; i < 10; i++) a[i] = i; }`, 4},
		{"factor one", `void f(int *a) { for (int i = 0; i < 8; i++) a[i] = i; }`, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := build(t, c.src)
			f := m.FindFunc("f")
			loops := analysis.FindLoops(f)
			if len(loops) != 1 {
				t.Fatalf("%d loops", len(loops))
			}
			if err := unroll.Unroll(f, loops[0], c.factor); err == nil {
				t.Error("expected a rejection")
			}
			if err := m.Verify(); err != nil {
				t.Errorf("rejected unroll left broken IR: %v", err)
			}
		})
	}
}

func TestUnrollAllCounts(t *testing.T) {
	src := `
void f(int *a, int *b) {
	for (int i = 0; i < 16; i++) a[i] = i;
	for (int i = 0; i < 10; i++) b[i] = i;  // 10 % 8 != 0: skipped
	for (int i = 0; i < 32; i++) b[i] += a[i % 16];
}`
	m := build(t, src)
	f := m.FindFunc("f")
	n := unroll.UnrollAll(f, 8)
	if n != 2 {
		t.Errorf("unrolled %d loops, want 2", n)
	}
}

func TestUnrollPreservesExitValues(t *testing.T) {
	// The loop's final accumulator and IV values are observed after the
	// loop; the unroller must remap those uses to the last clone.
	src := `
int f() {
	int s = 0;
	int i;
	for (i = 0; i < 12; i++) s += i * i;
	return s * 100 + i;
}`
	orig := build(t, src)
	work := build(t, src)
	f := work.FindFunc("f")
	if n := unroll.UnrollAll(f, 4); n != 1 {
		t.Fatalf("unrolled %d", n)
	}
	passes.Standard().Run(work)
	if err := work.Verify(); err != nil {
		t.Fatal(err)
	}
	in1, _ := interp.New(orig)
	in2, _ := interp.New(work)
	v1, err1 := in1.Call("f")
	v2, err2 := in2.Call("f")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1 != v2 {
		t.Errorf("exit values differ: %d vs %d", v1.I, v2.I)
	}
	if v1.I != 506*100+12 {
		t.Errorf("f() = %d, want %d", v1.I, 506*100+12)
	}
}

func TestUnrollDownwardLoop(t *testing.T) {
	src := `
void f(int *a) {
	for (int i = 15; i >= 0; i--) a[i] = i;
}`
	orig := build(t, src)
	work := build(t, src)
	f := work.FindFunc("f")
	if n := unroll.UnrollAll(f, 4); n != 1 {
		t.Fatalf("unrolled %d, want 1", n)
	}
	passes.Standard().Run(work)
	if err := interp.CheckEquiv(orig, work, "f", 2, nil); err != nil {
		t.Error(err)
	}
}
