// Package unroll implements a partial unroller for canonical
// single-block loops. The paper's TSVC experiment (§V.C) force-unrolls
// every inner loop by a factor of 8 before applying the rerolling
// techniques; this package produces those inputs.
package unroll

import (
	"fmt"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// Unroll unrolls the loop by the given factor, replicating the body
// factor-1 extra times inside the single loop block. It requires a
// compile-time trip count divisible by the factor (no epilogue loop is
// generated). Returns an error describing why the loop was left alone
// otherwise.
func Unroll(f *ir.Func, l *analysis.Loop, factor int) error {
	if factor < 2 {
		return fmt.Errorf("unroll: factor must be >= 2")
	}
	trip, known := l.TripCount()
	if !known {
		return fmt.Errorf("unroll: trip count unknown")
	}
	if trip <= 0 || trip%int64(factor) != 0 {
		return fmt.Errorf("unroll: trip count %d not divisible by factor %d", trip, factor)
	}
	b := l.Header
	phis := b.Phis()

	// The section to replicate: everything after the phis and before the
	// latch comparison. The latch is (cmp, condbr); the IV increment is
	// part of the replicated body.
	var body []*ir.Instr
	for _, in := range b.Instrs[len(phis):] {
		if in == l.Cmp || in == l.CondBr {
			continue
		}
		body = append(body, in)
	}
	if l.Cmp.Index() > l.CondBr.Index() {
		return fmt.Errorf("unroll: unexpected latch layout")
	}

	// vmap maps each original loop value to its value at the end of the
	// most recently emitted iteration.
	vmap := make(map[ir.Value]ir.Value)
	for _, in := range b.Instrs {
		vmap[in] = in
	}

	insertAt := l.Cmp.Index()
	for k := 1; k < factor; k++ {
		// Entering iteration k: each phi's current value is the
		// previous iteration's version of its backedge value.
		iterIn := make(map[ir.Value]ir.Value, len(phis))
		for _, phi := range phis {
			back, ok := phi.PhiIncoming(b)
			if !ok {
				return fmt.Errorf("unroll: phi %%%s lacks a backedge value", phi.Name)
			}
			iterIn[phi] = mapped(vmap, back)
		}
		newmap := make(map[ir.Value]ir.Value, len(body))
		for _, in := range body {
			clone := &ir.Instr{
				Op:     in.Op,
				Typ:    in.Typ,
				Pred:   in.Pred,
				Callee: in.Callee,
				Alloc:  in.Alloc,
			}
			if !ir.IsVoid(in.Typ) {
				clone.Name = f.UniqueName(in.Name)
			}
			clone.Operands = make([]ir.Value, len(in.Operands))
			for oi, op := range in.Operands {
				v := op
				if nv, ok := newmap[op]; ok {
					v = nv
				} else if nv, ok := iterIn[op]; ok {
					v = nv
				}
				clone.Operands[oi] = v
			}
			b.InsertAt(insertAt, clone)
			insertAt++
			newmap[in] = clone
		}
		// Roll the maps forward.
		for orig, iv := range iterIn {
			vmap[orig] = iv
		}
		for orig, clone := range newmap {
			vmap[orig] = clone
		}
	}

	// Rewire the latch: the comparison now tests the last iteration's IV
	// increment, and phi backedges take the last iteration's values.
	for oi, op := range l.Cmp.Operands {
		l.Cmp.Operands[oi] = mapped(vmap, op)
	}
	for _, phi := range phis {
		for i, pb := range phi.Blocks {
			if pb == b {
				phi.Operands[i] = mapped(vmap, phi.Operands[i])
			}
		}
	}
	// Uses outside the loop (exit phis and anything dominated by the
	// exit) observe the value after the *last* replicated iteration.
	for _, ob := range f.Blocks {
		if ob == b {
			continue
		}
		for _, in := range ob.Instrs {
			for oi, op := range in.Operands {
				if d, ok := op.(*ir.Instr); ok && d.Parent == b && d.Op != ir.OpPhi {
					in.Operands[oi] = mapped(vmap, op)
				}
			}
		}
	}
	return nil
}

func mapped(vmap map[ir.Value]ir.Value, v ir.Value) ir.Value {
	if nv, ok := vmap[v]; ok && nv != v {
		// Chase one level is enough: vmap is rolled forward each
		// iteration.
		return nv
	}
	return v
}

// UnrollAll unrolls every canonical loop in f by factor, returning the
// number of loops unrolled.
func UnrollAll(f *ir.Func, factor int) int {
	n := 0
	for _, l := range analysis.FindLoops(f) {
		if err := Unroll(f, l, factor); err == nil {
			n++
		}
	}
	return n
}
