package mach

import (
	"fmt"
	"strings"
)

// Register name tables, indexed by hardware encoding 0..15.
var gpr64 = [16]string{"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"}
var gpr32 = [16]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"}
var gpr16 = [16]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"}
var gpr8 = [16]string{"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"}

// RegName returns the AT&T name (no %) of a physical register at the
// given width. Virtual registers print as v<n> for debugging.
func RegName(r Reg, sz int8) string {
	if r.IsVirtual() {
		return fmt.Sprintf("v%d", r-VRegBase)
	}
	if r.IsXMM() {
		return fmt.Sprintf("xmm%d", r.Enc())
	}
	switch sz {
	case 1:
		return gpr8[r.Enc()]
	case 2:
		return gpr16[r.Enc()]
	case 4:
		return gpr32[r.Enc()]
	default:
		return gpr64[r.Enc()]
	}
}

func sizeSuffix(sz int8) string {
	switch sz {
	case 1:
		return "b"
	case 2:
		return "w"
	case 4:
		return "l"
	default:
		return "q"
	}
}

// sanitizeLabel maps an IR block name onto the assembler label charset.
func sanitizeLabel(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '.', c == '$':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// BlockLabel is the assembler-local label of block i of f.
func BlockLabel(f *Func, i int) string {
	return fmt.Sprintf(".L%s_%d_%s", sanitizeLabel(f.Name), i, sanitizeLabel(f.Blocks[i].Name))
}

type printer struct {
	b *strings.Builder
	f *Func
}

func (p *printer) reg(r Reg, sz int8) string { return "%" + RegName(r, sz) }

func (p *printer) operand(o Operand, sz int8) string {
	switch o.Kind {
	case KReg:
		return p.reg(o.Reg, sz)
	case KImm:
		return fmt.Sprintf("$%d", o.Imm)
	case KMem:
		if o.Sym != "" {
			if o.Imm != 0 {
				return fmt.Sprintf("%s+%d(%%rip)", sanitizeLabel(o.Sym), o.Imm)
			}
			return fmt.Sprintf("%s(%%rip)", sanitizeLabel(o.Sym))
		}
		var b strings.Builder
		if o.Imm != 0 {
			fmt.Fprintf(&b, "%d", o.Imm)
		}
		b.WriteByte('(')
		if o.Base != NoReg {
			b.WriteString(p.reg(o.Base, 8))
		}
		if o.Index != NoReg {
			fmt.Fprintf(&b, ",%s,%d", p.reg(o.Index, 8), o.Scale)
		}
		b.WriteByte(')')
		return b.String()
	case KFrame:
		return fmt.Sprintf("frame%d+%d", int(o.Index), o.Imm)
	case KIncoming:
		return fmt.Sprintf("incoming%d", int(o.Index))
	}
	return "?"
}

// widthSuffix for movzx/movsx: source then dest letter (movzbl etc).
func extMnemonic(base string, srcSz, dstSz int8) string {
	letter := func(sz int8) string {
		switch sz {
		case 1:
			return "b"
		case 2:
			return "w"
		case 4:
			return "l"
		default:
			return "q"
		}
	}
	if base == "movs" && srcSz == 4 && dstSz == 8 {
		return "movslq"
	}
	return base + letter(srcSz) + letter(dstSz)
}

func (p *printer) inst(in *Inst) string {
	suf := sizeSuffix(in.Sz)
	two := func(m string) string {
		return fmt.Sprintf("%s\t%s, %s", m, p.operand(in.Src, in.Sz), p.operand(in.Dst, in.Sz))
	}
	// Float ops: register operands are always xmm (or mem); no suffix
	// logic needed beyond the mnemonic itself.
	fp := func(m string) string {
		return fmt.Sprintf("%s\t%s, %s", m, p.operand(in.Src, 8), p.operand(in.Dst, 8))
	}
	switch in.Op {
	case ONop:
		return "nop"
	case OMov:
		return two("mov" + suf)
	case OMovAbs:
		return fmt.Sprintf("movabsq\t$%d, %s", in.Src.Imm, p.operand(in.Dst, 8))
	case OLea:
		return fmt.Sprintf("leaq\t%s, %s", p.operand(in.Src, 8), p.operand(in.Dst, 8))
	case OAdd:
		return two("add" + suf)
	case OSub:
		return two("sub" + suf)
	case OAnd:
		return two("and" + suf)
	case OOr:
		return two("or" + suf)
	case OXor:
		return two("xor" + suf)
	case OImul:
		if in.Src.Kind == KImm {
			return fmt.Sprintf("imul%s\t$%d, %s, %s", suf, in.Src.Imm,
				p.operand(in.Dst, in.Sz), p.operand(in.Dst, in.Sz))
		}
		return two("imul" + suf)
	case OShl, OShr, OSar:
		m := map[Op]string{OShl: "shl", OShr: "shr", OSar: "sar"}[in.Op]
		if in.Src.Kind == KImm {
			return fmt.Sprintf("%s%s\t$%d, %s", m, suf, in.Src.Imm, p.operand(in.Dst, in.Sz))
		}
		return fmt.Sprintf("%s%s\t%%cl, %s", m, suf, p.operand(in.Dst, in.Sz))
	case OCmp:
		return two("cmp" + suf)
	case OTest:
		return two("test" + suf)
	case OMovzx:
		return fmt.Sprintf("%s\t%s, %s", extMnemonic("movz", in.SrcSz, in.Sz),
			p.operand(in.Src, in.SrcSz), p.operand(in.Dst, in.Sz))
	case OMovsx:
		return fmt.Sprintf("%s\t%s, %s", extMnemonic("movs", in.SrcSz, in.Sz),
			p.operand(in.Src, in.SrcSz), p.operand(in.Dst, in.Sz))
	case OCwd:
		if in.Sz == 8 {
			return "cqto"
		}
		return "cltd"
	case OIdiv:
		return fmt.Sprintf("idiv%s\t%s", suf, p.operand(in.Src, in.Sz))
	case ODiv:
		return fmt.Sprintf("div%s\t%s", suf, p.operand(in.Src, in.Sz))
	case OSet:
		return fmt.Sprintf("set%s\t%s", in.Cond.Name(), p.operand(in.Dst, 1))
	case OCmov:
		return fmt.Sprintf("cmov%s\t%s, %s", in.Cond.Name(),
			p.operand(in.Src, in.Sz), p.operand(in.Dst, in.Sz))
	case OJmp:
		return fmt.Sprintf("jmp\t%s", BlockLabel(p.f, in.Target))
	case OJcc:
		return fmt.Sprintf("j%s\t%s", in.Cond.Name(), BlockLabel(p.f, in.Target))
	case OCall:
		return fmt.Sprintf("call\t%s", sanitizeLabel(in.Src.Sym))
	case ORet:
		return "ret"
	case OPush:
		return fmt.Sprintf("pushq\t%s", p.operand(in.Src, 8))
	case OPop:
		return fmt.Sprintf("popq\t%s", p.operand(in.Dst, 8))
	case OMovss:
		return fp("movss")
	case OMovsd:
		return fp("movsd")
	case OAddss:
		return fp("addss")
	case OAddsd:
		return fp("addsd")
	case OSubss:
		return fp("subss")
	case OSubsd:
		return fp("subsd")
	case OMulss:
		return fp("mulss")
	case OMulsd:
		return fp("mulsd")
	case ODivss:
		return fp("divss")
	case ODivsd:
		return fp("divsd")
	case OUcomiss:
		return fp("ucomiss")
	case OUcomisd:
		return fp("ucomisd")
	case OXorps:
		return fp("xorps")
	case OMovd:
		return fmt.Sprintf("movd\t%s, %s", p.gprOrXmm(in.Src, 4), p.gprOrXmm(in.Dst, 4))
	case OMovq:
		return fmt.Sprintf("movq\t%s, %s", p.gprOrXmm(in.Src, 8), p.gprOrXmm(in.Dst, 8))
	case OCvtss2sd:
		return fp("cvtss2sd")
	case OCvtsd2ss:
		return fp("cvtsd2ss")
	case OCvtsi2ss:
		return fmt.Sprintf("cvtsi2ss\t%s, %s", p.operand(in.Src, in.SrcSz), p.operand(in.Dst, 8))
	case OCvtsi2sd:
		return fmt.Sprintf("cvtsi2sd\t%s, %s", p.operand(in.Src, in.SrcSz), p.operand(in.Dst, 8))
	case OCvttss2si:
		return fmt.Sprintf("cvttss2si\t%s, %s", p.operand(in.Src, 8), p.operand(in.Dst, in.Sz))
	case OCvttsd2si:
		return fmt.Sprintf("cvttsd2si\t%s, %s", p.operand(in.Src, 8), p.operand(in.Dst, in.Sz))
	}
	return fmt.Sprintf("?op%d", in.Op)
}

// gprOrXmm sizes a register operand by its file: XMM registers have a
// single name, GPRs use the given integer width.
func (p *printer) gprOrXmm(o Operand, gprSz int8) string {
	if o.Kind == KReg && !o.Reg.IsVirtual() && !o.Reg.IsXMM() {
		return p.reg(o.Reg, gprSz)
	}
	return p.operand(o, 8)
}

// Print renders the module as GNU-as-compatible AT&T assembly. ann, if
// non-nil, maps function names to encoded .text byte counts emitted as
// comments (comments never change what the assembler produces).
func Print(m *Module, ann map[string]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# module %s — x86-64 AT&T syntax (rolag backend)\n", m.Name)
	b.WriteString("\t.text\n")
	for _, f := range m.Funcs {
		p := &printer{b: &b, f: f}
		name := sanitizeLabel(f.Name)
		b.WriteByte('\n')
		if ann != nil {
			if n, ok := ann[f.Name]; ok {
				fmt.Fprintf(&b, "# .text %s: %d bytes\n", f.Name, n)
			}
		}
		fmt.Fprintf(&b, "\t.globl\t%s\n", name)
		fmt.Fprintf(&b, "\t.type\t%s, @function\n", name)
		fmt.Fprintf(&b, "%s:\n", name)
		for i, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", BlockLabel(f, i))
			for _, in := range blk.Insts {
				b.WriteByte('\t')
				b.WriteString(p.inst(in))
				b.WriteByte('\n')
			}
		}
		fmt.Fprintf(&b, "\t.size\t%s, .-%s\n", name, name)
	}
	if len(m.Rodata) > 0 {
		b.WriteString("\n\t.section\t.rodata\n")
		for _, s := range m.Rodata {
			if s.Align > 1 {
				fmt.Fprintf(&b, "\t.balign\t%d\n", s.Align)
			}
			fmt.Fprintf(&b, "%s:\n", sanitizeLabel(s.Name))
			for i := 0; i < len(s.Data); i += 16 {
				end := i + 16
				if end > len(s.Data) {
					end = len(s.Data)
				}
				b.WriteString("\t.byte\t")
				for j := i; j < end; j++ {
					if j > i {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "0x%02x", s.Data[j])
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
