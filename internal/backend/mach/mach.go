// Package mach is the machine-level IR the backend lowers SSA into: a
// thin, x86-64-shaped instruction list over virtual and physical
// registers. It deliberately stays close to what the encoder and the
// AT&T printer need and nothing more — no scheduling metadata, no
// target hooks. Instruction selection produces mach code over virtual
// registers, register allocation rewrites it onto physical ones, and
// the frame-finalize pass resolves the two pseudo addressing kinds
// (KFrame, KIncoming) into %rsp-relative memory operands.
package mach

import "fmt"

// Reg names a register. Values 0..15 are the GPRs in encoding order
// (rax..r15), 16..31 the XMM registers, and values >= VRegBase are
// virtual registers handed out by instruction selection.
type Reg int32

const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

const (
	XMM0 Reg = 16 + iota
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
)

// NoReg marks an absent register (e.g. a memory operand with no index).
const NoReg Reg = -1

// VRegBase is the first virtual register number.
const VRegBase Reg = 64

// IsVirtual reports whether r is a virtual register.
func (r Reg) IsVirtual() bool { return r >= VRegBase }

// IsXMM reports whether a *physical* register is an XMM register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

// Enc returns the 4-bit hardware encoding of a physical register.
func (r Reg) Enc() byte {
	if r.IsVirtual() || r == NoReg {
		panic(fmt.Sprintf("mach: Enc on non-physical register %d", r))
	}
	if r >= XMM0 {
		return byte(r - XMM0)
	}
	return byte(r)
}

// RegClass separates the two register files.
type RegClass uint8

const (
	ClassGPR RegClass = iota
	ClassXMM
)

// Kind discriminates operand shapes.
type Kind uint8

const (
	KNone Kind = iota
	// KReg is a register (physical or virtual).
	KReg
	// KImm is an integer immediate.
	KImm
	// KMem is a memory operand: Sym(%rip) when Sym != "" (Base/Index
	// must be NoReg), else Imm(Base,Index,Scale).
	KMem
	// KFrame addresses a function-local frame slot (alloca or spill)
	// before frame layout: slot Index, byte offset Imm within the slot.
	// Frame finalization rewrites it to an %rsp-relative KMem.
	KFrame
	// KIncoming addresses the Index'th stack-passed argument byte
	// offset (0, 8, 16, ... above the return address). Resolved by
	// frame finalization.
	KIncoming
)

// Operand is one instruction operand.
type Operand struct {
	Kind  Kind
	Reg   Reg    // KReg
	Imm   int64  // KImm; or displacement for KMem/KFrame
	Base  Reg    // KMem base (NoReg for rip-relative)
	Index Reg    // KMem index (NoReg if none); KFrame/KIncoming slot index
	Scale int8   // KMem index scale: 1, 2, 4, 8
	Sym   string // KMem rip-relative symbol
}

// RegOp, ImmOp, MemOp, SymOp, FrameOp, IncomingOp build operands.
func RegOp(r Reg) Operand  { return Operand{Kind: KReg, Reg: r} }
func ImmOp(v int64) Operand { return Operand{Kind: KImm, Imm: v} }
func MemOp(base Reg, disp int64) Operand {
	return Operand{Kind: KMem, Base: base, Index: NoReg, Scale: 1, Imm: disp}
}
func MemIdxOp(base, index Reg, scale int8, disp int64) Operand {
	return Operand{Kind: KMem, Base: base, Index: index, Scale: scale, Imm: disp}
}

// SymOp is a rip-relative reference to a global symbol (+disp).
func SymOp(sym string, disp int64) Operand {
	return Operand{Kind: KMem, Base: NoReg, Index: NoReg, Sym: sym, Imm: disp}
}
func FrameOp(slot int, off int64) Operand {
	return Operand{Kind: KFrame, Base: NoReg, Index: Reg(slot), Imm: off}
}
func IncomingOp(i int) Operand {
	return Operand{Kind: KIncoming, Base: NoReg, Index: Reg(i)}
}

// Op is the instruction opcode. The set covers exactly what lowering
// of the mini-C SSA subset emits; the encoder and printer must handle
// every listed op, nothing else.
type Op uint8

const (
	ONop Op = iota

	// Integer moves and address arithmetic.
	OMov    // mov Src, Dst (rr, ri, load, store, mi)
	OMovAbs // movabs $imm64, r64
	OLea    // lea mem, r64

	// Two-address integer ALU: op Src, Dst (Dst read+written).
	OAdd
	OSub
	OAnd
	OOr
	OXor
	OImul // imul r/imm, r  (imm form uses the 69/6B three-operand encoding with dst==src1)
	OShl  // shift count: imm or %cl
	OShr
	OSar

	// Compares (no destination write).
	OCmp  // cmp Src, Dst-as-second-operand  (AT&T: cmp src, dst → flags from dst-src)
	OTest // test Src, Dst

	// Widening moves. SrcSz is the source width, Sz the destination.
	OMovzx
	OMovsx

	// Sign-extend rax into rdx:rax (cdq when Sz==4, cqo when Sz==8).
	OCwd
	OIdiv // signed divide rdx:rax by Src
	ODiv  // unsigned divide rdx:rax by Src

	OSet  // setcc Dst (byte register)
	OCmov // cmovcc Src, Dst (Sz >= 4)

	// Control flow. Target is a block index within the function;
	// OCall's callee is Src.Sym.
	OJmp
	OJcc
	OCall
	ORet

	OPush // push r64
	OPop  // pop r64

	// SSE scalar float. OMovss/OMovsd move xmm<->xmm/mem; the integer
	//<->xmm transfer ops OMovd/OMovq pick direction from which operand
	// is the XMM register.
	OMovss
	OMovsd
	OAddss
	OAddsd
	OSubss
	OSubsd
	OMulss
	OMulsd
	ODivss
	ODivsd
	OUcomiss
	OUcomisd
	OXorps // xorps x, x — used only as the zeroing idiom
	OMovd  // 32-bit gpr<->xmm
	OMovq  // 64-bit gpr<->xmm

	// Conversions. SrcSz/Sz give the integer width where relevant.
	OCvtss2sd
	OCvtsd2ss
	OCvtsi2ss // int(SrcSz) -> f32
	OCvtsi2sd // int(SrcSz) -> f64
	OCvttss2si // f32 -> int(Sz)
	OCvttsd2si // f64 -> int(Sz)
)

// Cond is a condition code (the low nibble of the 0F 8x / 0F 9x
// opcode families).
type Cond uint8

const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2 // unsigned <
	CondAE Cond = 0x3 // unsigned >=
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6 // unsigned <=
	CondA  Cond = 0x7 // unsigned >
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC // signed <
	CondGE Cond = 0xD // signed >=
	CondLE Cond = 0xE // signed <=
	CondG  Cond = 0xF // signed >
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// Name returns the AT&T mnemonic suffix ("ne", "l", ...).
func (c Cond) Name() string { return condNames[c&0xF] }

// Inst is one machine instruction. AT&T operand order: Src then Dst.
type Inst struct {
	Op     Op
	Sz     int8 // main operand width in bytes: 1, 2, 4, 8
	SrcSz  int8 // source width for movzx/movsx/cvtsi2*/cvtt*2si
	Src    Operand
	Dst    Operand
	Cond   Cond // OJcc, OSet, OCmov
	Target int  // OJmp/OJcc destination block index
}

// Block is a label plus a straight run of instructions.
type Block struct {
	Name  string
	Insts []*Inst
}

// AllocaSlot describes one static stack allocation.
type AllocaSlot struct {
	Size  int64
	Align int64
}

// Func is one lowered function.
type Func struct {
	Name   string
	Blocks []*Block

	// NumVRegs counts virtual registers handed out; VRegClass[i] is
	// the class of register VRegBase+i.
	NumVRegs  int
	VRegClass []RegClass

	// AllocaSlots are the function's static allocas; KFrame operands
	// index into this table. Register allocation appends spill slots.
	AllocaSlots []AllocaSlot

	// MaxOutArgs is the byte size of the outgoing stack-argument area
	// (calls with more than the register-passed arguments).
	MaxOutArgs int64

	// FrameSize and SavedRegs are filled by frame finalization:
	// FrameSize is the `sub $n, %rsp` amount, SavedRegs the pushed
	// callee-saved registers in push order.
	FrameSize int64
	SavedRegs []Reg
}

// NewVReg allocates a fresh virtual register of the given class.
func (f *Func) NewVReg(c RegClass) Reg {
	r := VRegBase + Reg(f.NumVRegs)
	f.NumVRegs++
	f.VRegClass = append(f.VRegClass, c)
	return r
}

// Class returns the register class of r (physical or virtual).
func (f *Func) Class(r Reg) RegClass {
	if r.IsVirtual() {
		return f.VRegClass[r-VRegBase]
	}
	if r.IsXMM() {
		return ClassXMM
	}
	return ClassGPR
}

// RodataSym is one read-only data symbol: either a copied IR global
// or a float literal pool entry.
type RodataSym struct {
	Name  string
	Align int64
	Data  []byte
}

// Module is a set of lowered functions plus their .rodata section.
type Module struct {
	Name   string
	Funcs  []*Func
	Rodata []RodataSym
}

// RodataSize returns the total byte size of the .rodata section with
// each symbol aligned to its declared alignment, mirroring exactly how
// the printer and encoder lay the section out.
func (m *Module) RodataSize() int64 {
	var off int64
	for _, s := range m.Rodata {
		off = alignUp(off, s.Align)
		off += int64(len(s.Data))
	}
	return off
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}
