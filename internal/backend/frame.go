package backend

import "rolag/internal/backend/mach"

// Frame layout (no frame pointer; %rbp is an ordinary callee-saved
// register here):
//
//	rsp + 0 .. MaxOutArgs          outgoing stack arguments
//	rsp + MaxOutArgs ..            alloca + spill slots, each aligned
//	rsp + FrameSize                end of the `sub $n, %rsp` area
//	[pushed callee-saved regs]     8 bytes each
//	[return address]
//	[incoming stack arguments]     KIncoming slot i at +8*i above that
//
// For functions that make calls, FrameSize is padded so %rsp stays
// 16-byte aligned at every call site (at entry %rsp ≡ 8 mod 16).
func finalizeFrame(f *mach.Func) {
	// Slot offsets relative to rsp, after the out-args area.
	off := f.MaxOutArgs
	slotOff := make([]int64, len(f.AllocaSlots))
	for i, s := range f.AllocaSlots {
		a := s.Align
		if a <= 0 {
			a = 8
		}
		off = (off + a - 1) &^ (a - 1)
		slotOff[i] = off
		off += s.Size
	}
	frame := (off + 7) &^ 7

	hasCalls := false
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == mach.OCall {
				hasCalls = true
			}
		}
	}
	pushed := int64(len(f.SavedRegs)) * 8
	if hasCalls {
		// After `push`es and `sub`, %rsp must be 16-aligned:
		// entry rsp ≡ 8 (mod 16), so 8 + pushed + frame ≡ 0 (mod 16).
		for (8+pushed+frame)%16 != 0 {
			frame += 8
		}
	}
	f.FrameSize = frame

	// Rewrite the pseudo operands.
	resolve := func(o *mach.Operand) {
		switch o.Kind {
		case mach.KFrame:
			*o = mach.MemOp(mach.RSP, slotOff[o.Index]+o.Imm)
		case mach.KIncoming:
			*o = mach.MemOp(mach.RSP, frame+pushed+8+8*int64(o.Index))
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			resolve(&in.Src)
			resolve(&in.Dst)
		}
	}

	// Prologue: pushes then the frame sub, ahead of the parameter
	// moves already sitting in block 0.
	var pro []*mach.Inst
	for _, r := range f.SavedRegs {
		pro = append(pro, &mach.Inst{Op: mach.OPush, Src: mach.RegOp(r)})
	}
	if frame > 0 {
		pro = append(pro, &mach.Inst{Op: mach.OSub, Sz: 8, Src: mach.ImmOp(frame), Dst: mach.RegOp(mach.RSP)})
	}
	if len(pro) > 0 {
		f.Blocks[0].Insts = append(pro, f.Blocks[0].Insts...)
	}

	// Epilogue before every ret: undo the sub, pop in reverse order.
	for _, b := range f.Blocks {
		var out []*mach.Inst
		for _, in := range b.Insts {
			if in.Op == mach.ORet {
				if frame > 0 {
					out = append(out, &mach.Inst{Op: mach.OAdd, Sz: 8, Src: mach.ImmOp(frame), Dst: mach.RegOp(mach.RSP)})
				}
				for i := len(f.SavedRegs) - 1; i >= 0; i-- {
					out = append(out, &mach.Inst{Op: mach.OPop, Dst: mach.RegOp(f.SavedRegs[i])})
				}
			}
			out = append(out, in)
		}
		b.Insts = out
	}
}
