package backend

import (
	"math"

	"rolag/internal/backend/mach"
	"rolag/internal/ir"
)

var intBinOp = map[ir.Op]mach.Op{
	ir.OpAdd: mach.OAdd, ir.OpSub: mach.OSub, ir.OpMul: mach.OImul,
	ir.OpAnd: mach.OAnd, ir.OpOr: mach.OOr, ir.OpXor: mach.OXor,
	ir.OpShl: mach.OShl, ir.OpLShr: mach.OShr, ir.OpAShr: mach.OSar,
}

var fpBinOp = map[ir.Op]map[int8]mach.Op{
	ir.OpFAdd: {4: mach.OAddss, 8: mach.OAddsd},
	ir.OpFSub: {4: mach.OSubss, 8: mach.OSubsd},
	ir.OpFMul: {4: mach.OMulss, 8: mach.OMulsd},
	ir.OpFDiv: {4: mach.ODivss, 8: mach.ODivsd},
}

func (s *isel) lowerInstr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr:
		return s.lowerIntBinary(in)
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		return s.lowerDiv(in)
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return s.lowerFPBinary(in)
	case ir.OpICmp, ir.OpFCmp:
		if s.foldedCmp[in] {
			return nil // emitted at the condbr site
		}
		return s.lowerCmpValue(in)
	case ir.OpAlloca:
		// Slot assigned in prepass; expose the address in a register
		// only if some user needs it as a value.
		if !s.allAddrUsers(in) && !s.usedOnlyByFoldedGEPs(in) {
			r := s.f.NewVReg(mach.ClassGPR)
			s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.FrameOp(s.allocaSlot[in], 0), Dst: mach.RegOp(r)})
			s.vreg[in] = r
		}
		return nil
	case ir.OpLoad:
		return s.lowerLoad(in)
	case ir.OpStore:
		return s.lowerStore(in)
	case ir.OpGEP:
		return s.lowerGEP(in)
	case ir.OpCall:
		return s.lowerCall(in)
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpFPTrunc, ir.OpFPExt,
		ir.OpFPToSI, ir.OpSIToFP, ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitcast:
		return s.lowerCast(in)
	case ir.OpSelect:
		return s.lowerSelect(in)
	case ir.OpBr:
		if err := s.lowerPhiCopies(in); err != nil {
			return err
		}
		tgt := s.blockIdx[in.Blocks[0]]
		if tgt != s.fallthroughOf(in.Parent) {
			s.emit(&mach.Inst{Op: mach.OJmp, Target: tgt})
		}
		return nil
	case ir.OpCondBr:
		return s.lowerCondBr(in)
	case ir.OpRet:
		if len(in.Operands) == 1 {
			v := in.Operands[0]
			if isFloat(v.Type()) {
				r, err := s.valueReg(v)
				if err != nil {
					return err
				}
				op := mach.OMovsd
				if opSize(v.Type()) == 4 {
					op = mach.OMovss
				}
				s.emit(&mach.Inst{Op: op, Sz: opSize(v.Type()), Src: mach.RegOp(r), Dst: mach.RegOp(mach.XMM0)})
			} else {
				rm, err := s.intRM(v)
				if err != nil {
					return err
				}
				s.emit(&mach.Inst{Op: mach.OMov, Sz: gprSize(v.Type()), Src: rm, Dst: mach.RegOp(mach.RAX)})
			}
		}
		s.emit(&mach.Inst{Op: mach.ORet})
		return nil
	}
	return s.errf("unsupported opcode %s", in.Op)
}

// usedOnlyByFoldedGEPs reports whether every non-address user of an
// alloca is a GEP that folded the slot into its own addressing.
func (s *isel) usedOnlyByFoldedGEPs(v ir.Value) bool {
	for _, u := range s.users[v] {
		if isAddrUser(u, v) {
			continue
		}
		if u.Op == ir.OpGEP && u.Operands[0] == v {
			continue // lowerGEP handles both folded and materialized bases
		}
		return false
	}
	return true
}

// fallthroughOf returns the mach block index that physically follows
// IR block b in the layout.
func (s *isel) fallthroughOf(b *ir.Block) int {
	return s.blockIdx[b] + 1
}

// lowerPhiCopies emits the incoming-edge copies (value -> phi temp)
// for every phi in the successors of the block ending with terminator
// `t`. Copies run before the compare/branch and never touch flags.
func (s *isel) lowerPhiCopies(t *ir.Instr) error {
	for _, succ := range t.Blocks {
		for _, phi := range succ.Phis() {
			v, ok := phi.PhiIncoming(t.Parent)
			if !ok {
				continue
			}
			tmp := s.phiTmp[phi]
			if c, ok := v.(*ir.IntConst); ok {
				s.materializeInt(c.Val, opSize(c.Typ), tmp)
				continue
			}
			if _, ok := v.(*ir.NullConst); ok {
				s.materializeInt(0, 8, tmp)
				continue
			}
			if fc, ok := v.(*ir.FloatConst); ok {
				r := s.floatReg(fc)
				s.copyReg(tmp, r, fc.Typ)
				continue
			}
			r, err := s.valueReg(v)
			if err != nil {
				return err
			}
			s.copyReg(tmp, r, v.Type())
		}
	}
	return nil
}

func (s *isel) lowerIntBinary(in *ir.Instr) error {
	lhs, rhs := in.Operands[0], in.Operands[1]
	sz := gprSize(in.Typ)
	dst := s.f.NewVReg(mach.ClassGPR)
	op := intBinOp[in.Op]

	// Logical/arithmetic right shifts see the true value: normalize a
	// narrow lhs before shifting at 32 bits.
	normalize := func(v ir.Value, signed bool) (mach.Operand, error) {
		srcSz := opSize(v.Type())
		if srcSz >= 4 {
			return s.intRM(v)
		}
		if c, ok := v.(*ir.IntConst); ok {
			val := c.Val
			if !signed {
				val = int64(uint64(val) & (1<<(uint(srcSz)*8) - 1))
			}
			return mach.ImmOp(val), nil
		}
		r, err := s.valueReg(v)
		if err != nil {
			return mach.Operand{}, err
		}
		ext := s.f.NewVReg(mach.ClassGPR)
		eop := mach.OMovzx
		if signed {
			eop = mach.OMovsx
		}
		s.emit(&mach.Inst{Op: eop, Sz: 4, SrcSz: srcSz, Src: mach.RegOp(r), Dst: mach.RegOp(ext)})
		return mach.RegOp(ext), nil
	}

	var lhsOp mach.Operand
	var err error
	if (in.Op == ir.OpLShr || in.Op == ir.OpAShr) && opSize(in.Typ) < 4 {
		lhsOp, err = normalize(lhs, in.Op == ir.OpAShr)
	} else {
		lhsOp, err = s.intRM(lhs)
	}
	if err != nil {
		return err
	}
	rhsOp, err := s.intRM(rhs)
	if err != nil {
		return err
	}

	// Prefer a register in the copy position for move coalescing.
	if lhsOp.Kind == mach.KImm && rhsOp.Kind == mach.KReg && in.Op.IsCommutative() {
		lhsOp, rhsOp = rhsOp, lhsOp
	}
	if lhsOp.Kind == mach.KReg {
		// Full-width copy: the allocator may coalesce it away, and an
		// 8-byte self-move is always deletable (a 4-byte one would be a
		// load-bearing zero-extension).
		s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: lhsOp, Dst: mach.RegOp(dst)})
	} else {
		s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: lhsOp, Dst: mach.RegOp(dst)})
	}

	switch in.Op {
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if rhsOp.Kind == mach.KImm {
			s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.ImmOp(rhsOp.Imm & 63), Dst: mach.RegOp(dst)})
		} else {
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 4, Src: rhsOp, Dst: mach.RegOp(mach.RCX)})
			s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.RegOp(mach.RCX), Dst: mach.RegOp(dst)})
		}
	default:
		s.emit(&mach.Inst{Op: op, Sz: sz, Src: rhsOp, Dst: mach.RegOp(dst)})
	}
	s.vreg[in] = dst
	return nil
}

// lowerDiv emits the rdx:rax division sequence. Narrow operands are
// extended to 32 bits first — division, unlike the other ALU ops,
// reads the full register.
func (s *isel) lowerDiv(in *ir.Instr) error {
	signed := in.Op == ir.OpSDiv || in.Op == ir.OpSRem
	rem := in.Op == ir.OpSRem || in.Op == ir.OpURem
	sz := gprSize(in.Typ)

	widen := func(v ir.Value) (mach.Operand, error) {
		srcSz := opSize(v.Type())
		if srcSz >= 4 {
			return s.intRM(v)
		}
		if c, ok := v.(*ir.IntConst); ok {
			val := c.Val
			if !signed {
				val = int64(uint64(val) & (1<<(uint(srcSz)*8) - 1))
			}
			return mach.ImmOp(val), nil
		}
		r, err := s.valueReg(v)
		if err != nil {
			return mach.Operand{}, err
		}
		ext := s.f.NewVReg(mach.ClassGPR)
		eop := mach.OMovzx
		if signed {
			eop = mach.OMovsx
		}
		s.emit(&mach.Inst{Op: eop, Sz: 4, SrcSz: srcSz, Src: mach.RegOp(r), Dst: mach.RegOp(ext)})
		return mach.RegOp(ext), nil
	}

	lhsOp, err := widen(in.Operands[0])
	if err != nil {
		return err
	}
	rhsOp, err := widen(in.Operands[1])
	if err != nil {
		return err
	}
	// Divisor must be a register.
	if rhsOp.Kind == mach.KImm {
		t := s.f.NewVReg(mach.ClassGPR)
		s.materializeInt(rhsOp.Imm, sz, t)
		rhsOp = mach.RegOp(t)
	}
	s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: lhsOp, Dst: mach.RegOp(mach.RAX)})
	if signed {
		s.emit(&mach.Inst{Op: mach.OCwd, Sz: sz})
		s.emit(&mach.Inst{Op: mach.OIdiv, Sz: sz, Src: rhsOp})
	} else {
		s.emit(&mach.Inst{Op: mach.OXor, Sz: 4, Src: mach.RegOp(mach.RDX), Dst: mach.RegOp(mach.RDX)})
		s.emit(&mach.Inst{Op: mach.ODiv, Sz: sz, Src: rhsOp})
	}
	dst := s.f.NewVReg(mach.ClassGPR)
	res := mach.RAX
	if rem {
		res = mach.RDX
	}
	s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: mach.RegOp(res), Dst: mach.RegOp(dst)})
	s.vreg[in] = dst
	return nil
}

func (s *isel) lowerFPBinary(in *ir.Instr) error {
	sz := opSize(in.Typ)
	lhs, err := s.valueReg(in.Operands[0])
	if err != nil {
		return err
	}
	// The rhs can stay in memory for pool constants, but keeping it
	// uniform in registers keeps the allocator honest; constants are
	// materialized by valueReg.
	rhs, err := s.valueReg(in.Operands[1])
	if err != nil {
		return err
	}
	dst := s.f.NewVReg(mach.ClassXMM)
	mov := mach.OMovsd
	if sz == 4 {
		mov = mach.OMovss
	}
	s.emit(&mach.Inst{Op: mov, Sz: sz, Src: mach.RegOp(lhs), Dst: mach.RegOp(dst)})
	s.emit(&mach.Inst{Op: fpBinOp[in.Op][sz], Sz: sz, Src: mach.RegOp(rhs), Dst: mach.RegOp(dst)})
	s.vreg[in] = dst
	return nil
}

// emitCompare emits the flag-setting compare for an icmp/fcmp and
// returns the condition code that makes the comparison true.
func (s *isel) emitCompare(in *ir.Instr) (mach.Cond, error) {
	lhs, rhs := in.Operands[0], in.Operands[1]
	if in.Op == ir.OpICmp {
		sz := opSize(lhs.Type())
		lr, err := s.valueReg(lhs)
		if err != nil {
			return 0, err
		}
		rm, err := s.intRM(rhs)
		if err != nil {
			return 0, err
		}
		// Byte compares of sub-byte immediates must be in range.
		if rm.Kind == mach.KImm && sz == 1 {
			rm.Imm = int64(int8(rm.Imm))
		}
		s.emit(&mach.Inst{Op: mach.OCmp, Sz: sz, Src: rm, Dst: mach.RegOp(lr)})
		return intPredCond[in.Pred], nil
	}
	// Ordered FP relational compare via ucomis*: arrange operands so
	// the condition is A/AE, which are false on unordered inputs.
	sz := opSize(lhs.Type())
	op := mach.OUcomisd
	if sz == 4 {
		op = mach.OUcomiss
	}
	a, err := s.valueReg(lhs)
	if err != nil {
		return 0, err
	}
	b, err := s.valueReg(rhs)
	if err != nil {
		return 0, err
	}
	switch in.Pred {
	case ir.PredOGT:
		s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.RegOp(b), Dst: mach.RegOp(a)})
		return mach.CondA, nil
	case ir.PredOGE:
		s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.RegOp(b), Dst: mach.RegOp(a)})
		return mach.CondAE, nil
	case ir.PredOLT:
		s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.RegOp(a), Dst: mach.RegOp(b)})
		return mach.CondA, nil
	case ir.PredOLE:
		s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.RegOp(a), Dst: mach.RegOp(b)})
		return mach.CondAE, nil
	}
	return 0, s.errf("fcmp predicate %s needs the setcc path", in.Pred)
}

// lowerCmpValue materializes a comparison as a 0/1 register value.
func (s *isel) lowerCmpValue(in *ir.Instr) error {
	dst := s.f.NewVReg(mach.ClassGPR)
	if in.Op == ir.OpFCmp && (in.Pred == ir.PredOEQ || in.Pred == ir.PredONE) {
		// oeq = e && np; one = ne && np (both false on NaN).
		lhs, err := s.valueReg(in.Operands[0])
		if err != nil {
			return err
		}
		rhs, err := s.valueReg(in.Operands[1])
		if err != nil {
			return err
		}
		op := mach.OUcomisd
		if opSize(in.Operands[0].Type()) == 4 {
			op = mach.OUcomiss
		}
		s.emit(&mach.Inst{Op: op, Sz: opSize(in.Operands[0].Type()), Src: mach.RegOp(rhs), Dst: mach.RegOp(lhs)})
		cc := mach.CondE
		if in.Pred == ir.PredONE {
			cc = mach.CondNE
		}
		t := s.f.NewVReg(mach.ClassGPR)
		s.emit(&mach.Inst{Op: mach.OSet, Cond: cc, Dst: mach.RegOp(t)})
		s.emit(&mach.Inst{Op: mach.OSet, Cond: mach.CondNP, Dst: mach.RegOp(dst)})
		s.emit(&mach.Inst{Op: mach.OAnd, Sz: 1, Src: mach.RegOp(t), Dst: mach.RegOp(dst)})
		s.emit(&mach.Inst{Op: mach.OMovzx, Sz: 4, SrcSz: 1, Src: mach.RegOp(dst), Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	}
	cc, err := s.emitCompare(in)
	if err != nil {
		return err
	}
	s.emit(&mach.Inst{Op: mach.OSet, Cond: cc, Dst: mach.RegOp(dst)})
	s.emit(&mach.Inst{Op: mach.OMovzx, Sz: 4, SrcSz: 1, Src: mach.RegOp(dst), Dst: mach.RegOp(dst)})
	s.vreg[in] = dst
	return nil
}

func (s *isel) lowerCondBr(in *ir.Instr) error {
	if err := s.lowerPhiCopies(in); err != nil {
		return err
	}
	trueIdx := s.blockIdx[in.Blocks[0]]
	falseIdx := s.blockIdx[in.Blocks[1]]
	next := s.fallthroughOf(in.Parent)

	var cc mach.Cond
	cond := in.Operands[0]
	if ci, ok := cond.(*ir.Instr); ok && s.foldedCmp[ci] {
		var err error
		cc, err = s.emitCompare(ci)
		if err != nil {
			return err
		}
	} else {
		r, err := s.valueReg(cond)
		if err != nil {
			return err
		}
		s.emit(&mach.Inst{Op: mach.OTest, Sz: 1, Src: mach.RegOp(r), Dst: mach.RegOp(r)})
		cc = mach.CondNE
	}

	switch {
	case falseIdx == next:
		s.emit(&mach.Inst{Op: mach.OJcc, Cond: cc, Target: trueIdx})
	case trueIdx == next:
		s.emit(&mach.Inst{Op: mach.OJcc, Cond: cc ^ 1, Target: falseIdx})
	default:
		s.emit(&mach.Inst{Op: mach.OJcc, Cond: cc, Target: trueIdx})
		s.emit(&mach.Inst{Op: mach.OJmp, Target: falseIdx})
	}
	return nil
}

func (s *isel) lowerLoad(in *ir.Instr) error {
	a, err := s.addrOf(in.Operands[0])
	if err != nil {
		return err
	}
	mem := a.operand()
	if isFloat(in.Typ) {
		dst := s.f.NewVReg(mach.ClassXMM)
		op := mach.OMovsd
		if opSize(in.Typ) == 4 {
			op = mach.OMovss
		}
		s.emit(&mach.Inst{Op: op, Sz: opSize(in.Typ), Src: mem, Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	}
	dst := s.f.NewVReg(mach.ClassGPR)
	switch sz := opSize(in.Typ); sz {
	case 1, 2:
		s.emit(&mach.Inst{Op: mach.OMovzx, Sz: 4, SrcSz: sz, Src: mem, Dst: mach.RegOp(dst)})
	default:
		s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: mem, Dst: mach.RegOp(dst)})
	}
	s.vreg[in] = dst
	return nil
}

func (s *isel) lowerStore(in *ir.Instr) error {
	val, ptr := in.Operands[0], in.Operands[1]
	a, err := s.addrOf(ptr)
	if err != nil {
		return err
	}
	mem := a.operand()
	sz := opSize(val.Type())
	if isFloat(val.Type()) {
		// FP constants store through an integer immediate when the
		// bit pattern allows (gcc's movl $0x…, (mem) idiom).
		if fc, ok := val.(*ir.FloatConst); ok {
			if sz == 4 {
				bits := int64(math.Float32bits(float32(fc.Val)))
				s.emit(&mach.Inst{Op: mach.OMov, Sz: 4, Src: mach.ImmOp(bits), Dst: mem})
				return nil
			}
			bits := int64(math.Float64bits(fc.Val))
			if bits >= math.MinInt32 && bits <= math.MaxInt32 {
				s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.ImmOp(bits), Dst: mem})
				return nil
			}
		}
		r, err := s.valueReg(val)
		if err != nil {
			return err
		}
		op := mach.OMovsd
		if sz == 4 {
			op = mach.OMovss
		}
		s.emit(&mach.Inst{Op: op, Sz: sz, Src: mach.RegOp(r), Dst: mem})
		return nil
	}
	rm, err := s.intRM(val)
	if err != nil {
		return err
	}
	if rm.Kind == mach.KImm && sz == 1 {
		rm.Imm = int64(int8(rm.Imm))
	}
	s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: rm, Dst: mem})
	return nil
}

func (s *isel) lowerCall(in *ir.Instr) error {
	if in.Callee == nil {
		return s.errf("indirect call %s not supported (deliberate encoder gap)", in.Ident())
	}
	intIdx, fpIdx, stackOff := 0, 0, int64(0)
	type stackArg struct {
		off int64
		v   ir.Value
	}
	var stackArgs []stackArg
	for _, arg := range in.Operands {
		fp := isFloat(arg.Type())
		switch {
		case fp && fpIdx < len(fpArgRegs):
			r, err := s.valueReg(arg)
			if err != nil {
				return err
			}
			op := mach.OMovsd
			if opSize(arg.Type()) == 4 {
				op = mach.OMovss
			}
			s.emit(&mach.Inst{Op: op, Sz: opSize(arg.Type()), Src: mach.RegOp(r), Dst: mach.RegOp(fpArgRegs[fpIdx])})
			fpIdx++
		case !fp && intIdx < len(intArgRegs):
			rm, err := s.intRM(arg)
			if err != nil {
				return err
			}
			sz := int8(8)
			// Immediate arguments take the shorter 32-bit mov whenever
			// the zero-extending form produces the right value (always
			// for int-sized args, whose upper halves are dont-cares).
			if rm.Kind == mach.KImm && (rm.Imm >= 0 || opSize(arg.Type()) <= 4) {
				sz = 4
				rm.Imm = int64(uint32(rm.Imm))
			}
			s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: rm, Dst: mach.RegOp(intArgRegs[intIdx])})
			intIdx++
		default:
			stackArgs = append(stackArgs, stackArg{stackOff, arg})
			stackOff += 8
		}
	}
	for _, sa := range stackArgs {
		dst := mach.MemOp(mach.RSP, sa.off)
		if isFloat(sa.v.Type()) {
			r, err := s.valueReg(sa.v)
			if err != nil {
				return err
			}
			op := mach.OMovsd
			if opSize(sa.v.Type()) == 4 {
				op = mach.OMovss
			}
			s.emit(&mach.Inst{Op: op, Sz: opSize(sa.v.Type()), Src: mach.RegOp(r), Dst: dst})
		} else {
			rm, err := s.intRM(sa.v)
			if err != nil {
				return err
			}
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: rm, Dst: dst})
		}
	}
	if stackOff > s.f.MaxOutArgs {
		s.f.MaxOutArgs = stackOff
	}
	s.emit(&mach.Inst{Op: mach.OCall, Src: mach.Operand{Kind: mach.KMem, Sym: in.Callee.Name}})
	if _, ok := in.Typ.(ir.VoidType); !ok && len(s.users[in]) > 0 {
		if isFloat(in.Typ) {
			dst := s.f.NewVReg(mach.ClassXMM)
			op := mach.OMovsd
			if opSize(in.Typ) == 4 {
				op = mach.OMovss
			}
			s.emit(&mach.Inst{Op: op, Sz: opSize(in.Typ), Src: mach.RegOp(mach.XMM0), Dst: mach.RegOp(dst)})
			s.vreg[in] = dst
		} else {
			dst := s.f.NewVReg(mach.ClassGPR)
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(mach.RAX), Dst: mach.RegOp(dst)})
			s.vreg[in] = dst
		}
	}
	return nil
}

func (s *isel) lowerCast(in *ir.Instr) error {
	v := in.Operands[0]
	srcT, dstT := v.Type(), in.Typ
	switch in.Op {
	case ir.OpTrunc:
		r, err := s.valueReg(v)
		if err != nil {
			return err
		}
		dst := s.f.NewVReg(mach.ClassGPR)
		s.emit(&mach.Inst{Op: mach.OMov, Sz: gprSize(dstT), Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		if it, ok := dstT.(ir.IntType); ok && it.Bits == 1 {
			// i1 values must be exactly 0 or 1.
			s.emit(&mach.Inst{Op: mach.OAnd, Sz: 4, Src: mach.ImmOp(1), Dst: mach.RegOp(dst)})
		}
		s.vreg[in] = dst
		return nil
	case ir.OpZExt, ir.OpSExt:
		signed := in.Op == ir.OpSExt
		srcBits := srcT.(ir.IntType).Bits
		r, err := s.valueReg(v)
		if err != nil {
			return err
		}
		dst := s.f.NewVReg(mach.ClassGPR)
		switch {
		case srcBits == 1 && !signed:
			// i1 registers already hold exactly 0 or 1.
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		case srcBits == 1 && signed:
			// 0/1 -> 0/-1 without a neg op: zero, subtract.
			s.emit(&mach.Inst{Op: mach.OXor, Sz: 4, Src: mach.RegOp(dst), Dst: mach.RegOp(dst)})
			s.emit(&mach.Inst{Op: mach.OSub, Sz: gprSize(dstT), Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		case srcBits <= 16:
			op := mach.OMovzx
			if signed {
				op = mach.OMovsx
			}
			s.emit(&mach.Inst{Op: op, Sz: gprSize(dstT), SrcSz: opSize(srcT), Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		case srcBits <= 32 && signed:
			s.emit(&mach.Inst{Op: mach.OMovsx, Sz: 8, SrcSz: 4, Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		default:
			// zext i32->i64: the 32-bit mov zero-extends.
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 4, Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		}
		s.vreg[in] = dst
		return nil
	case ir.OpPtrToInt, ir.OpIntToPtr:
		r, err := s.valueReg(v)
		if err != nil {
			return err
		}
		dst := s.f.NewVReg(mach.ClassGPR)
		s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	case ir.OpFPTrunc, ir.OpFPExt:
		r, err := s.valueReg(v)
		if err != nil {
			return err
		}
		dst := s.f.NewVReg(mach.ClassXMM)
		op := mach.OCvtss2sd
		if in.Op == ir.OpFPTrunc {
			op = mach.OCvtsd2ss
		}
		s.emit(&mach.Inst{Op: op, Sz: 8, Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	case ir.OpFPToSI:
		r, err := s.valueReg(v)
		if err != nil {
			return err
		}
		dst := s.f.NewVReg(mach.ClassGPR)
		op := mach.OCvttsd2si
		if opSize(srcT) == 4 {
			op = mach.OCvttss2si
		}
		s.emit(&mach.Inst{Op: op, Sz: gprSize(dstT), Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	case ir.OpSIToFP:
		srcOp, err := s.valueReg(v)
		if err != nil {
			return err
		}
		srcSz := gprSize(srcT)
		src := srcOp
		if opSize(srcT) < 4 {
			ext := s.f.NewVReg(mach.ClassGPR)
			s.emit(&mach.Inst{Op: mach.OMovsx, Sz: 4, SrcSz: opSize(srcT), Src: mach.RegOp(srcOp), Dst: mach.RegOp(ext)})
			src = ext
			srcSz = 4
		}
		dst := s.f.NewVReg(mach.ClassXMM)
		op := mach.OCvtsi2sd
		if opSize(dstT) == 4 {
			op = mach.OCvtsi2ss
		}
		s.emit(&mach.Inst{Op: op, SrcSz: srcSz, Src: mach.RegOp(src), Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	case ir.OpBitcast:
		srcFP, dstFP := isFloat(srcT), isFloat(dstT)
		r, err := s.valueReg(v)
		if err != nil {
			return err
		}
		switch {
		case srcFP == dstFP:
			class := mach.ClassGPR
			if dstFP {
				class = mach.ClassXMM
			}
			dst := s.f.NewVReg(class)
			s.copyReg(dst, r, dstT)
			s.vreg[in] = dst
		default:
			op := mach.OMovq
			if opSize(dstT) == 4 || opSize(srcT) == 4 {
				op = mach.OMovd
			}
			class := mach.ClassGPR
			if dstFP {
				class = mach.ClassXMM
			}
			dst := s.f.NewVReg(class)
			s.emit(&mach.Inst{Op: op, Sz: 8, Src: mach.RegOp(r), Dst: mach.RegOp(dst)})
			s.vreg[in] = dst
		}
		return nil
	}
	return s.errf("unsupported cast %s", in.Op)
}

func (s *isel) lowerSelect(in *ir.Instr) error {
	// setCond emits whatever establishes the condition — the folded
	// comparison itself (cmp; cmovcc) or a test of the materialized i1
	// (test; cmovne) — and must run after every operand materialization
	// so no mov lands between the flag-setter and the cmov.
	cc := mach.CondNE
	setCond := func() error {
		if ci, ok := in.Operands[0].(*ir.Instr); ok && s.foldedCmp[ci] {
			var err error
			cc, err = s.emitCompare(ci)
			return err
		}
		cond, err := s.valueReg(in.Operands[0])
		if err != nil {
			return err
		}
		s.emit(&mach.Inst{Op: mach.OTest, Sz: 1, Src: mach.RegOp(cond), Dst: mach.RegOp(cond)})
		return nil
	}
	if isFloat(in.Typ) {
		// Route the FP bits through GPRs so cmov applies.
		tv, err := s.valueReg(in.Operands[1])
		if err != nil {
			return err
		}
		fv, err := s.valueReg(in.Operands[2])
		if err != nil {
			return err
		}
		op := mach.OMovq
		if opSize(in.Typ) == 4 {
			op = mach.OMovd
		}
		gt := s.f.NewVReg(mach.ClassGPR)
		gf := s.f.NewVReg(mach.ClassGPR)
		s.emit(&mach.Inst{Op: op, Sz: 8, Src: mach.RegOp(tv), Dst: mach.RegOp(gt)})
		s.emit(&mach.Inst{Op: op, Sz: 8, Src: mach.RegOp(fv), Dst: mach.RegOp(gf)})
		if err := setCond(); err != nil {
			return err
		}
		s.emit(&mach.Inst{Op: mach.OCmov, Sz: 8, Cond: cc, Src: mach.RegOp(gt), Dst: mach.RegOp(gf)})
		dst := s.f.NewVReg(mach.ClassXMM)
		s.emit(&mach.Inst{Op: op, Sz: 8, Src: mach.RegOp(gf), Dst: mach.RegOp(dst)})
		s.vreg[in] = dst
		return nil
	}
	sz := gprSize(in.Typ)
	if sz < 4 {
		sz = 4
	}
	tv, err := s.valueReg(in.Operands[1])
	if err != nil {
		return err
	}
	fv, err := s.intRM(in.Operands[2])
	if err != nil {
		return err
	}
	dst := s.f.NewVReg(mach.ClassGPR)
	s.emit(&mach.Inst{Op: mach.OMov, Sz: sz, Src: fv, Dst: mach.RegOp(dst)})
	if err := setCond(); err != nil {
		return err
	}
	s.emit(&mach.Inst{Op: mach.OCmov, Sz: sz, Cond: cc, Src: mach.RegOp(tv), Dst: mach.RegOp(dst)})
	s.vreg[in] = dst
	return nil
}
