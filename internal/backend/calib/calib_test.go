package calib

import (
	"encoding/json"
	"testing"
)

// TestRunSmall runs a reduced corpus and sanity-checks the aggregates.
func TestRunSmall(t *testing.T) {
	r, err := Run(Config{N: 60, Worst: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Functions != 60 {
		t.Errorf("Functions = %d, want 60", r.Functions)
	}
	if r.MAPE <= 0 || r.MAPE >= 1 {
		t.Errorf("MAPE = %v, want a small positive fraction", r.MAPE)
	}
	if r.SignAgreement <= 0.5 || r.SignAgreement > 1 {
		t.Errorf("SignAgreement = %v out of range", r.SignAgreement)
	}
	if r.Changed == 0 {
		t.Error("no function changed under RoLAG; corpus is not exercising rolling")
	}
	if len(r.Worst) != 5 {
		t.Errorf("Worst has %d entries, want 5", len(r.Worst))
	}
	if len(r.FamilyMAPE) == 0 {
		t.Error("no family breakdown")
	}

	// Determinism: the whole pipeline from generator to encoder must
	// reproduce the report bit-for-bit.
	r2, err := Run(Config{N: 60, Worst: 5})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Errorf("calibration is not deterministic:\n%s\n%s", b1, b2)
	}
}

// TestCheckGate exercises the regression gate on synthetic reports.
func TestCheckGate(t *testing.T) {
	good := &Report{Functions: MinFunctions, MAPE: MaxMAPE, SignAgreement: MinSignAgreement}
	if err := good.Check(); err != nil {
		t.Errorf("boundary report rejected: %v", err)
	}
	cases := []*Report{
		{Functions: MinFunctions - 1, MAPE: 0.01, SignAgreement: 1},
		{Functions: MinFunctions, MAPE: MaxMAPE + 0.01, SignAgreement: 1},
		{Functions: MinFunctions, MAPE: 0.01, SignAgreement: MinSignAgreement - 0.01},
	}
	for i, c := range cases {
		if err := c.Check(); err == nil {
			t.Errorf("case %d: bad report passed the gate", i)
		}
	}
}
