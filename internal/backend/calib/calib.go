// Package calib calibrates the binary cost model against the assembly
// backend: it compiles a corpus of synthesized AnghaBench-like
// functions both straight-line (OptNone) and rolled (OptRoLAG),
// measures the real encoded object size of each variant, and compares
// it to the cost model's estimate. The two headline statistics are
//
//   - MAPE: the mean absolute percentage error of the estimated object
//     size against the measured one, over every compiled variant; and
//   - sign agreement: how often the model's predicted direction of the
//     rolled-minus-straight delta matches the measured direction.
//
// Sign agreement is the number that matters for correctness of the
// profitability decision — a model can be biased by a few bytes
// everywhere and still make every roll/don't-roll call correctly, but
// a sign flip means RoLAG shipped a size regression it believed was a
// win. MAPE bounds the bias itself so estimates stay meaningful as
// absolute numbers (reports, Fig. 15 reductions).
package calib

import (
	"fmt"
	"sort"

	"rolag"
	"rolag/internal/backend"
	"rolag/internal/costmodel"
	"rolag/internal/workloads/angha"
)

// Sample is one corpus function's calibration record.
type Sample struct {
	Name   string `json:"name"`
	Family string `json:"family"`
	// MeasuredNone/MeasuredRoLAG are the encoder's object sizes
	// (.text plus .rodata) for the straight-line and rolled builds.
	MeasuredNone  int64 `json:"measuredNone"`
	MeasuredRoLAG int64 `json:"measuredRolag"`
	// EstimatedNone/EstimatedRoLAG are the binary cost model's
	// estimates for the same two modules.
	EstimatedNone  int `json:"estimatedNone"`
	EstimatedRoLAG int `json:"estimatedRolag"`
}

// MeasuredDelta is the real byte effect of rolling (negative = smaller).
func (s *Sample) MeasuredDelta() int64 { return s.MeasuredRoLAG - s.MeasuredNone }

// EstimatedDelta is the modeled byte effect of rolling.
func (s *Sample) EstimatedDelta() int { return s.EstimatedRoLAG - s.EstimatedNone }

// err is the relative error of one variant's estimate.
func relErr(est int, meas int64) float64 {
	if meas == 0 {
		return 0
	}
	d := float64(est) - float64(meas)
	if d < 0 {
		d = -d
	}
	return d / float64(meas)
}

// Report is the aggregated calibration outcome, serialized to
// results/CALIB_costmodel.json.
type Report struct {
	// Functions is the corpus size (each contributes two variants).
	Functions int `json:"functions"`
	// Seed reproduces the corpus.
	Seed int64 `json:"seed"`
	// MAPE is the mean absolute percentage error of the model's object
	// size against the encoder's, over all 2·Functions variants.
	MAPE float64 `json:"mape"`
	// SignAgreement is the fraction of functions where the model
	// predicts the correct direction of the rolled-vs-straight delta
	// (sign in {-1, 0, +1}; both-zero counts as agreement).
	SignAgreement float64 `json:"signAgreement"`
	// Changed counts functions whose measured size actually moved.
	Changed int `json:"changed"`
	// Disagreements counts sign mismatches (the gate's complement).
	Disagreements int `json:"disagreements"`
	// MeanMeasuredDelta / MeanEstimatedDelta average the per-function
	// deltas over changed functions: the real and modeled mean byte
	// savings of rolling on this corpus.
	MeanMeasuredDelta  float64 `json:"meanMeasuredDelta"`
	MeanEstimatedDelta float64 `json:"meanEstimatedDelta"`
	// FamilyMAPE breaks the error down by generator family, the first
	// place to look when the gate trips: a drifting per-instruction
	// estimate shows up as one family going bad, not uniform noise.
	FamilyMAPE map[string]float64 `json:"familyMape"`
	// Worst lists the samples with the largest relative error
	// (descending), for re-tuning per-instruction estimates.
	Worst []Sample `json:"worst"`
}

// Gate thresholds: the committed calibration must stay at least this
// good, or `experiments -run calib -check` fails the build.
const (
	// MaxMAPE bounds the mean absolute percentage error.
	MaxMAPE = 0.15
	// MinSignAgreement bounds the direction-prediction accuracy.
	MinSignAgreement = 0.95
	// MinFunctions keeps the corpus large enough to mean something.
	MinFunctions = 200
)

// Check applies the regression gate to a report (fresh or committed).
func (r *Report) Check() error {
	if r.Functions < MinFunctions {
		return fmt.Errorf("calib: only %d functions, want >= %d", r.Functions, MinFunctions)
	}
	if r.MAPE > MaxMAPE {
		return fmt.Errorf("calib: MAPE %.4f exceeds %.2f", r.MAPE, MaxMAPE)
	}
	if r.SignAgreement < MinSignAgreement {
		return fmt.Errorf("calib: sign agreement %.4f below %.2f", r.SignAgreement, MinSignAgreement)
	}
	return nil
}

// Config tunes a calibration run.
type Config struct {
	// N is the corpus size (default 400).
	N int
	// Seed drives the corpus generator (default 20220402, the same
	// default seed the angha experiment uses).
	Seed int64
	// Worst bounds the worst-offender list in the report (default 10).
	Worst int
}

// Run compiles the corpus twice per function and aggregates the
// calibration report. The work is deterministic for a given Config.
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 {
		cfg.N = 400
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20220402
	}
	if cfg.Worst <= 0 {
		cfg.Worst = 10
	}
	funcs := angha.Generate(cfg.N, cfg.Seed)

	samples := make([]Sample, 0, len(funcs))
	model := costmodel.Binary()
	for _, fn := range funcs {
		s := Sample{Name: fn.Name, Family: fn.Family}
		for _, opt := range []rolag.Optimization{rolag.OptNone, rolag.OptRoLAG} {
			c := rolag.Config{Name: fn.Name, Opt: opt}
			if opt == rolag.OptRoLAG {
				c.Options = rolag.DefaultOptions()
			}
			res, err := rolag.Build(fn.Src, c)
			if err != nil {
				return nil, fmt.Errorf("calib: %s opt=%v: %w", fn.Name, opt, err)
			}
			br, err := backend.Compile(res.Module, nil)
			if err != nil {
				return nil, fmt.Errorf("calib: %s opt=%v: lower: %w", fn.Name, opt, err)
			}
			measured := br.Code.Text + br.Code.Rodata
			estimated := model.Module(res.Module)
			if opt == rolag.OptNone {
				s.MeasuredNone, s.EstimatedNone = measured, estimated
			} else {
				s.MeasuredRoLAG, s.EstimatedRoLAG = measured, estimated
			}
		}
		samples = append(samples, s)
	}
	return aggregate(samples, cfg), nil
}

func sign64(v int64) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

func aggregate(samples []Sample, cfg Config) *Report {
	r := &Report{
		Functions:  len(samples),
		Seed:       cfg.Seed,
		FamilyMAPE: make(map[string]float64),
	}
	famN := make(map[string]int)
	var errSum float64
	var measSum, estSum float64
	type scored struct {
		s   Sample
		err float64
	}
	var ranked []scored
	for _, s := range samples {
		e := relErr(s.EstimatedNone, s.MeasuredNone) + relErr(s.EstimatedRoLAG, s.MeasuredRoLAG)
		errSum += e
		r.FamilyMAPE[s.Family] += e
		famN[s.Family] += 2
		ranked = append(ranked, scored{s, e / 2})

		md, ed := s.MeasuredDelta(), s.EstimatedDelta()
		if md != 0 {
			r.Changed++
			r.MeanMeasuredDelta += float64(md)
			r.MeanEstimatedDelta += float64(ed)
		}
		if sign64(md) != sign64(int64(ed)) {
			r.Disagreements++
		}
		measSum += float64(s.MeasuredNone + s.MeasuredRoLAG)
		estSum += float64(s.EstimatedNone + s.EstimatedRoLAG)
	}
	if n := len(samples); n > 0 {
		r.MAPE = errSum / float64(2*n)
		r.SignAgreement = float64(n-r.Disagreements) / float64(n)
	}
	if r.Changed > 0 {
		r.MeanMeasuredDelta /= float64(r.Changed)
		r.MeanEstimatedDelta /= float64(r.Changed)
	}
	for fam, sum := range r.FamilyMAPE {
		r.FamilyMAPE[fam] = sum / float64(famN[fam])
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].err != ranked[j].err {
			return ranked[i].err > ranked[j].err
		}
		return ranked[i].s.Name < ranked[j].s.Name
	})
	for i := 0; i < len(ranked) && i < cfg.Worst; i++ {
		r.Worst = append(r.Worst, ranked[i].s)
	}
	return r
}
