package backend_test

import (
	"bytes"
	"debug/elf"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"rolag"
	"rolag/internal/backend"
)

func buildExample(t *testing.T, path string, opt rolag.Optimization) *rolag.Result {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rolag.Config{Name: filepath.Base(path), Opt: opt}
	if opt == rolag.OptRoLAG {
		cfg.Options = rolag.DefaultOptions()
	}
	res, err := rolag.Build(string(src), cfg)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return res
}

func examplePaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "c", "*.c"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	return paths
}

// TestLowerExamples lowers every example under both pipelines and
// checks the encoder produces a nonzero, deterministic .text.
func TestLowerExamples(t *testing.T) {
	for _, path := range examplePaths(t) {
		for _, opt := range []rolag.Optimization{rolag.OptNone, rolag.OptRoLAG} {
			res := buildExample(t, path, opt)
			r, err := backend.Compile(res.Module, nil)
			if err != nil {
				t.Fatalf("%s opt=%v: %v", path, opt, err)
			}
			if r.Code.Text == 0 {
				t.Errorf("%s opt=%v: empty .text", path, opt)
			}
			asm := r.Asm()
			if asm == "" {
				t.Errorf("%s opt=%v: empty asm", path, opt)
			}
			// Determinism: a second compile of the same module must be
			// byte-identical.
			r2, err := backend.Compile(res.Module, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range r.Code.FuncOrder {
				if !bytes.Equal(r.Code.Funcs[name].Bytes, r2.Code.Funcs[name].Bytes) {
					t.Errorf("%s opt=%v: non-deterministic encoding for %s", path, opt, name)
				}
			}
			if r.Asm() != asm {
				t.Errorf("%s opt=%v: non-deterministic asm", path, opt)
			}
		}
	}
}

// TestAssemblerAgreement assembles the printed assembly with the system
// assembler (when present) and checks the built-in encoder agrees on
// the total .text size, function by function via symbol sizes.
func TestAssemblerAgreement(t *testing.T) {
	as, err := exec.LookPath("as")
	if err != nil {
		t.Skip("no system assembler in PATH")
	}
	for _, path := range examplePaths(t) {
		for _, opt := range []rolag.Optimization{rolag.OptNone, rolag.OptRoLAG} {
			res := buildExample(t, path, opt)
			r, err := backend.Compile(res.Module, nil)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			obj := filepath.Join(t.TempDir(), "out.o")
			cmd := exec.Command(as, "--64", "-o", obj, "--", "-")
			cmd.Stdin = bytes.NewReader([]byte(r.Asm()))
			if outb, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("%s opt=%v: as failed: %v\n%s\nasm:\n%s", path, opt, err, outb, r.Asm())
			}
			ef, err := elf.Open(obj)
			if err != nil {
				t.Fatal(err)
			}
			syms, err := ef.Symbols()
			if err != nil {
				t.Fatal(err)
			}
			for _, sym := range syms {
				if elf.ST_TYPE(sym.Info) != elf.STT_FUNC {
					continue
				}
				if got := r.Code.FuncSize(sym.Name); got != int64(sym.Size) {
					t.Errorf("%s opt=%v: %s: encoder says %d bytes, assembler says %d",
						path, opt, sym.Name, got, sym.Size)
				}
			}
			text := ef.Section(".text")
			if text == nil {
				t.Fatalf("%s opt=%v: no .text section", path, opt)
			}
			if int64(text.Size) != r.Code.Text {
				t.Errorf("%s opt=%v: .text size: encoder %d, assembler %d",
					path, opt, r.Code.Text, text.Size)
			}
			ef.Close()
		}
	}
}
