package backend

import (
	"encoding/binary"
	"math"

	"rolag/internal/backend/encode"
	"rolag/internal/backend/mach"
	"rolag/internal/ir"
	"rolag/internal/obs"
)

// Backend phases appear in obs.SpanStats alongside the RoLAG pipeline
// phases, so -stats and end-to-end traces show lowering and encoding
// time next to seed/align/schedule/codegen.
var (
	lowerSpan  = obs.RegisterSpanClass("lower")
	encodeSpan = obs.RegisterSpanClass("encode")
)

// Result pairs a lowered machine module with its encoding.
type Result struct {
	Mach *mach.Module
	Code *encode.ModuleCode
}

// Lower lowers an IR module to machine code: instruction selection,
// register allocation, and frame layout for every function definition
// (declarations are skipped — they contribute no bytes).
func Lower(m *ir.Module, rec *obs.Recorder) (*mach.Module, error) {
	start := obs.Now()
	ml := &modLower{
		out:    &mach.Module{Name: m.Name},
		fpPool: make(map[uint64]string),
	}
	for _, irf := range m.Funcs {
		if len(irf.Blocks) == 0 {
			continue
		}
		f := &mach.Func{Name: irf.Name}
		s := &isel{
			ml:         ml,
			irf:        irf,
			f:          f,
			users:      irf.Users(),
			vreg:       make(map[ir.Value]mach.Reg),
			phiTmp:     make(map[*ir.Instr]mach.Reg),
			allocaSlot: make(map[*ir.Instr]int),
			gepAddr:    make(map[*ir.Instr]addr),
			foldedCmp:  make(map[*ir.Instr]bool),
		}
		if err := s.lowerFunc(); err != nil {
			return nil, err
		}
		regalloc(f)
		finalizeFrame(f)
		ml.out.Funcs = append(ml.out.Funcs, f)
	}
	// Rodata: global data in module order, then the float literal pool
	// in first-use order. Nothing here is ever executed or linked —
	// writable globals land in .rodata too, which keeps the printed
	// assembly self-contained for a system assembler without changing
	// any measured .text byte. (.data vs .rodata placement does not
	// affect code size.)
	for _, g := range m.Globals {
		ml.out.Rodata = append(ml.out.Rodata, mach.RodataSym{
			Name:  g.Name,
			Align: int64(g.Elem.Align()),
			Data:  serializeConst(g.Init, g.Elem),
		})
	}
	ml.out.Rodata = append(ml.out.Rodata, ml.fpOrder...)
	lowerSpan.End(rec.TraceCtx(), start)
	return ml.out, nil
}

// Encode encodes a lowered module, timing it under the "encode" span.
func Encode(mm *mach.Module, rec *obs.Recorder) (*encode.ModuleCode, error) {
	start := obs.Now()
	code, err := encode.Module(mm)
	encodeSpan.End(rec.TraceCtx(), start)
	return code, err
}

// Compile lowers and encodes m in one step.
func Compile(m *ir.Module, rec *obs.Recorder) (*Result, error) {
	mm, err := Lower(m, rec)
	if err != nil {
		return nil, err
	}
	code, err := Encode(mm, rec)
	if err != nil {
		return nil, err
	}
	return &Result{Mach: mm, Code: code}, nil
}

// Asm renders the result as AT&T assembly with per-function byte
// annotations from the encoder.
func (r *Result) Asm() string {
	ann := make(map[string]int64, len(r.Code.Funcs))
	for name, fc := range r.Code.Funcs {
		ann[name] = fc.Size()
	}
	return mach.Print(r.Mach, ann)
}

// serializeConst flattens a global initializer to its in-memory bytes
// (little-endian). A nil initializer serializes as zeros.
func serializeConst(c ir.Const, t ir.Type) []byte {
	size := t.Size()
	if size < 0 {
		size = 0
	}
	out := make([]byte, 0, size)
	out = appendConst(out, c, t)
	// Pad (or clamp) to the declared type size.
	for len(out) < size {
		out = append(out, 0)
	}
	return out[:size]
}

func appendConst(out []byte, c ir.Const, t ir.Type) []byte {
	switch c := c.(type) {
	case *ir.IntConst:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(c.Val))
		return append(out, buf[:c.Typ.Size()]...)
	case *ir.FloatConst:
		if c.Typ.Bits == 32 {
			return binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(c.Val)))
		}
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(c.Val))
	case *ir.ArrayConst:
		stride := c.Typ.Elem.Size()
		for _, e := range c.Elems {
			start := len(out)
			out = appendConst(out, e, c.Typ.Elem)
			for len(out)-start < stride {
				out = append(out, 0)
			}
		}
		return out
	}
	// NullConst, UndefConst, ZeroConst, nil: zero bytes of t's size.
	return append(out, make([]byte, t.Size())...)
}
