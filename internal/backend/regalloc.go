package backend

import (
	"sort"

	"rolag/internal/backend/mach"
)

// Register allocation: linear scan over conservative live intervals.
//
// The GPR pool is callee-saved registers only, so values never need
// saving around calls, division, shifts, or argument setup — all of
// which use caller-saved physical registers directly. The XMM pool has
// no callee-saved registers on SysV, so intervals that cross a call are
// force-spilled. Copy-related intervals are hinted to share a register;
// the resulting self-moves are deleted, which is what keeps emitted
// byte counts close to a production compiler's.

// Pools. Functions that make calls allocate callee-saved GPRs only, so
// live values never need saving around a call; XMM registers are all
// caller-saved on SysV, so XMM intervals crossing a call spill. Leaf
// functions additionally use the caller-saved argument registers
// (cheapest: no push/pop), guarded by busy-until constraints while they
// still hold incoming parameters. %rax/%rcx/%rdx are never allocated —
// isel references them directly for returns, shifts, and division —
// and %r10/%r11/%xmm14/%xmm15 are reserved as spill scratch.
var gprPoolCall = []mach.Reg{mach.RBX, mach.RBP, mach.R12, mach.R13, mach.R14, mach.R15}
var gprPoolLeaf = []mach.Reg{mach.RDI, mach.RSI, mach.R8, mach.R9,
	mach.RBX, mach.RBP, mach.R12, mach.R13, mach.R14, mach.R15}
var xmmPoolCall = []mach.Reg{mach.XMM8, mach.XMM9, mach.XMM10, mach.XMM11, mach.XMM12, mach.XMM13}
var xmmPoolLeaf = []mach.Reg{mach.XMM0, mach.XMM1, mach.XMM2, mach.XMM3, mach.XMM4, mach.XMM5,
	mach.XMM6, mach.XMM7, mach.XMM8, mach.XMM9, mach.XMM10, mach.XMM11, mach.XMM12, mach.XMM13}

var gprScratch = []mach.Reg{mach.R10, mach.R11, mach.RAX}
var xmmScratch = []mach.Reg{mach.XMM14, mach.XMM15}

// instRegs appends the uses and defs of in, physical and virtual alike.
// Reads happen at position 2i, writes at 2i+1.
func instRegs(in *mach.Inst, uses, defs []mach.Reg) ([]mach.Reg, []mach.Reg) {
	addOperandUses := func(o mach.Operand) {
		switch o.Kind {
		case mach.KReg:
			uses = append(uses, o.Reg)
		case mach.KMem:
			if o.Base != mach.NoReg {
				uses = append(uses, o.Base)
			}
			if o.Index != mach.NoReg {
				uses = append(uses, o.Index)
			}
		}
	}

	// xorps r, r with identical operands is an idiom for zeroing: a
	// pure def, not a use.
	if in.Op == mach.OXorps && in.Src.Kind == mach.KReg && in.Dst.Kind == mach.KReg && in.Src.Reg == in.Dst.Reg {
		defs = append(defs, in.Dst.Reg)
		return uses, defs
	}

	addOperandUses(in.Src)
	switch in.Op {
	case mach.OMov, mach.OMovAbs, mach.OLea, mach.OMovzx, mach.OMovsx,
		mach.OSet, mach.OMovss, mach.OMovsd, mach.OMovd, mach.OMovq,
		mach.OCvtss2sd, mach.OCvtsd2ss, mach.OCvtsi2ss, mach.OCvtsi2sd,
		mach.OCvttss2si, mach.OCvttsd2si:
		// Pure-def destination — unless it is a memory operand, whose
		// registers are address uses.
		if in.Dst.Kind == mach.KReg {
			defs = append(defs, in.Dst.Reg)
		} else {
			addOperandUses(in.Dst)
		}
	case mach.OCmp, mach.OTest, mach.OUcomiss, mach.OUcomisd:
		// Flag-setting compares read both operands.
		addOperandUses(in.Dst)
	case mach.ONop, mach.OJmp, mach.OJcc, mach.OCall, mach.ORet,
		mach.OCwd, mach.OIdiv, mach.ODiv, mach.OPush, mach.OPop:
		// No virtual-register destination (implicit operands are
		// physical and outside the allocatable pools).
	default:
		// Two-address ALU (add/sub/imul/and/or/xor/shifts/cmov/FP
		// arith): destination is read and written.
		if in.Dst.Kind == mach.KReg {
			uses = append(uses, in.Dst.Reg)
			defs = append(defs, in.Dst.Reg)
		} else {
			addOperandUses(in.Dst)
		}
	}
	return uses, defs
}

// isRegCopy reports whether in is a plain register-to-register copy
// whose deletion is safe when both sides land in the same register.
func isRegCopy(in *mach.Inst) bool {
	if in.Src.Kind != mach.KReg || in.Dst.Kind != mach.KReg {
		return false
	}
	switch in.Op {
	case mach.OMov:
		return in.Sz == 8 // 4-byte movs zero-extend; keep them
	case mach.OMovss, mach.OMovsd:
		return true
	}
	return false
}

type interval struct {
	vreg       mach.Reg
	start, end int
	spilled    bool
	phys       mach.Reg
	slot       int // spill slot (AllocaSlots index) when spilled
}

type allocator struct {
	f         *mach.Func
	intervals map[mach.Reg]*interval
	// hint maps a vreg to a copy-related register — another vreg or a
	// physical register (a parameter's incoming argument register).
	hint      map[mach.Reg]mach.Reg
	callPos   []int
	hasCalls  bool
	// busyUntil[phys] is the last position at which isel reads the
	// physical register directly (incoming parameters); it cannot be
	// allocated to an interval starting at or before that.
	busyUntil map[mach.Reg]int
}

// regalloc assigns physical registers to every virtual register in f,
// rewrites the instruction stream (inserting spill code), deletes
// coalesced self-moves, and records the callee-saved registers used.
func regalloc(f *mach.Func) {
	a := &allocator{
		f:         f,
		intervals: make(map[mach.Reg]*interval),
		hint:      make(map[mach.Reg]mach.Reg),
		busyUntil: make(map[mach.Reg]int),
	}
	a.buildIntervals()
	a.scan()
	a.rewrite()
}

// blockSuccs returns the successor block indices of block bi.
func blockSuccs(f *mach.Func, bi int) []int {
	var succs []int
	insts := f.Blocks[bi].Insts
	for _, in := range insts {
		if in.Op == mach.OJmp || in.Op == mach.OJcc {
			succs = append(succs, in.Target)
		}
	}
	// A block ending in anything but jmp/ret falls through (including
	// the untaken side of a jcc and branches elided by block layout).
	falls := true
	if n := len(insts); n > 0 {
		falls = insts[n-1].Op != mach.OJmp && insts[n-1].Op != mach.ORet
	}
	if falls && bi+1 < len(f.Blocks) {
		succs = append(succs, bi+1)
	}
	return succs
}

func (a *allocator) buildIntervals() {
	f := a.f
	nb := len(f.Blocks)

	// Per-block gen (used before defined) and kill (defined) sets.
	gen := make([]map[mach.Reg]bool, nb)
	kill := make([]map[mach.Reg]bool, nb)
	var ubuf, dbuf []mach.Reg
	for bi, b := range f.Blocks {
		g, k := map[mach.Reg]bool{}, map[mach.Reg]bool{}
		for _, in := range b.Insts {
			ubuf, dbuf = instRegs(in, ubuf[:0], dbuf[:0])
			for _, u := range ubuf {
				if u.IsVirtual() && !k[u] {
					g[u] = true
				}
			}
			for _, d := range dbuf {
				if d.IsVirtual() {
					k[d] = true
				}
			}
		}
		gen[bi], kill[bi] = g, k
	}

	// Backward liveness fixpoint.
	liveIn := make([]map[mach.Reg]bool, nb)
	liveOut := make([]map[mach.Reg]bool, nb)
	for i := range liveIn {
		liveIn[i], liveOut[i] = map[mach.Reg]bool{}, map[mach.Reg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			out := liveOut[bi]
			for _, s := range blockSuccs(f, bi) {
				for r := range liveIn[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := liveIn[bi]
			for r := range gen[bi] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !kill[bi][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}

	// Interval construction: reads at 2i, writes at 2i+1, extended to
	// block boundaries where live-in/live-out.
	touch := func(r mach.Reg, pos int) {
		iv, ok := a.intervals[r]
		if !ok {
			iv = &interval{vreg: r, start: pos, end: pos, phys: mach.NoReg}
			a.intervals[r] = iv
			return
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
	}
	pos := 0
	blockStart := make([]int, nb)
	blockEnd := make([]int, nb)
	for bi, b := range f.Blocks {
		blockStart[bi] = 2 * pos
		for _, in := range b.Insts {
			ubuf, dbuf = instRegs(in, ubuf[:0], dbuf[:0])
			for _, u := range ubuf {
				if u.IsVirtual() {
					touch(u, 2*pos)
				} else if 2*pos > a.busyUntil[u] {
					// A direct physical read (incoming parameter):
					// the register is off-limits until here.
					a.busyUntil[u] = 2 * pos
				}
			}
			for _, d := range dbuf {
				if d.IsVirtual() {
					touch(d, 2*pos+1)
				}
			}
			if in.Op == mach.OCall {
				a.callPos = append(a.callPos, 2*pos)
				a.hasCalls = true
			}
			pos++
		}
		blockEnd[bi] = 2*pos - 1
		if len(b.Insts) == 0 {
			blockEnd[bi] = blockStart[bi]
		}
	}
	for bi := range f.Blocks {
		for r := range liveIn[bi] {
			touch(r, blockStart[bi])
		}
		for r := range liveOut[bi] {
			touch(r, blockEnd[bi])
		}
	}

	// Copy hints: virtual-virtual both ways, plus physical sources
	// (parameter moves — hinting the vreg to its argument register
	// turns the move into a deletable self-move in leaf functions).
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if !isRegCopy(in) || !in.Dst.Reg.IsVirtual() {
				continue
			}
			if _, ok := a.hint[in.Dst.Reg]; !ok {
				a.hint[in.Dst.Reg] = in.Src.Reg
			}
			if in.Src.Reg.IsVirtual() {
				if _, ok := a.hint[in.Src.Reg]; !ok {
					a.hint[in.Src.Reg] = in.Dst.Reg
				}
			}
		}
	}
}

func (iv *interval) crossesCall(callPos []int) bool {
	for _, p := range callPos {
		if iv.start < p && iv.end > p {
			return true
		}
	}
	return false
}

func (a *allocator) newSpillSlot() int {
	slot := len(a.f.AllocaSlots)
	a.f.AllocaSlots = append(a.f.AllocaSlots, mach.AllocaSlot{Size: 8, Align: 8})
	return slot
}

func (a *allocator) scan() {
	ivs := make([]*interval, 0, len(a.intervals))
	for _, iv := range a.intervals {
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].vreg < ivs[j].vreg
	})

	gprPool, xmmPool := gprPoolLeaf, xmmPoolLeaf
	if a.hasCalls {
		gprPool, xmmPool = gprPoolCall, xmmPoolCall
	}
	free := map[mach.RegClass]map[mach.Reg]bool{
		mach.ClassGPR: {},
		mach.ClassXMM: {},
	}
	for _, r := range gprPool {
		free[mach.ClassGPR][r] = true
	}
	for _, r := range xmmPool {
		free[mach.ClassXMM][r] = true
	}
	var active []*interval

	expire := func(start int) {
		kept := active[:0]
		for _, iv := range active {
			if iv.end < start {
				free[a.f.Class(iv.vreg)][iv.phys] = true
			} else {
				kept = append(kept, iv)
			}
		}
		active = kept
	}

	poolOrder := func(c mach.RegClass) []mach.Reg {
		if c == mach.ClassXMM {
			return xmmPool
		}
		return gprPool
	}

	for _, iv := range ivs {
		expire(iv.start)
		class := a.f.Class(iv.vreg)
		if class == mach.ClassXMM && iv.crossesCall(a.callPos) {
			// No callee-saved XMM registers on SysV.
			iv.spilled = true
			iv.slot = a.newSpillSlot()
			continue
		}
		// usable rejects registers still holding an incoming parameter
		// that is read at or after this interval's start.
		usable := func(r mach.Reg) bool {
			if !free[class][r] {
				return false
			}
			bu, busy := a.busyUntil[r]
			return !busy || iv.start > bu
		}
		// Prefer the register of a copy-related vreg (or the incoming
		// argument register of a parameter) when available.
		var phys mach.Reg = mach.NoReg
		if h, ok := a.hint[iv.vreg]; ok {
			if h.IsVirtual() {
				if hiv, ok := a.intervals[h]; ok && !hiv.spilled && hiv.phys != mach.NoReg && usable(hiv.phys) {
					phys = hiv.phys
				}
			} else if usable(h) {
				phys = h
			}
		}
		if phys == mach.NoReg {
			for _, r := range poolOrder(class) {
				if usable(r) {
					phys = r
					break
				}
			}
		}
		if phys != mach.NoReg {
			iv.phys = phys
			free[class][phys] = false
			active = append(active, iv)
			continue
		}
		// Pool exhausted: spill whichever of (current, furthest-ending
		// active of this class) lives longest.
		var victim *interval
		for _, act := range active {
			if a.f.Class(act.vreg) != class {
				continue
			}
			if victim == nil || act.end > victim.end {
				victim = act
			}
		}
		if victim != nil && victim.end > iv.end {
			iv.phys = victim.phys
			victim.spilled = true
			victim.phys = mach.NoReg
			victim.slot = a.newSpillSlot()
			for i, act := range active {
				if act == victim {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
			active = append(active, iv)
		} else {
			iv.spilled = true
			iv.slot = a.newSpillSlot()
		}
	}

	// Unassigned phys on non-spilled intervals cannot happen (every
	// path sets one), but default to NoReg-safe behavior in rewrite.
}

// rewrite replaces virtual registers with their physical assignments,
// inserting spill loads/stores via scratch registers, deleting
// coalesced self-moves, and recording used callee-saved registers.
func (a *allocator) rewrite() {
	f := a.f
	usedSaved := map[mach.Reg]bool{}
	savedPool := map[mach.Reg]bool{}
	for _, r := range gprPoolCall {
		savedPool[r] = true
	}

	var ubuf, dbuf []mach.Reg
	for _, b := range f.Blocks {
		out := make([]*mach.Inst, 0, len(b.Insts))
		for _, in := range b.Insts {
			ubuf, dbuf = instRegs(in, ubuf[:0], dbuf[:0])

			// Scratch assignment for spilled vregs in this instruction.
			scratch := map[mach.Reg]mach.Reg{}
			nextG, nextX := 0, 0
			takeScratch := func(v mach.Reg) mach.Reg {
				if s, ok := scratch[v]; ok {
					return s
				}
				var s mach.Reg
				if f.Class(v) == mach.ClassXMM {
					s = xmmScratch[nextX]
					nextX++
				} else {
					s = gprScratch[nextG]
					nextG++
				}
				scratch[v] = s
				return s
			}
			spilledIn := func(rs []mach.Reg) []*interval {
				var res []*interval
				for _, r := range rs {
					if iv := a.intervals[r]; iv != nil && iv.spilled {
						res = append(res, iv)
					}
				}
				return res
			}

			// Fold spilled operands of plain moves straight to memory
			// instead of bouncing through a scratch register.
			if isFoldableMov(in) {
				if iv := a.spilledReg(in.Src); iv != nil && a.spilledReg(in.Dst) == nil {
					in.Src = mach.FrameOp(iv.slot, 0)
				} else if iv := a.spilledReg(in.Dst); iv != nil && a.spilledReg(in.Src) == nil &&
					in.Src.Kind == mach.KReg {
					in.Dst = mach.FrameOp(iv.slot, 0)
				}
				ubuf, dbuf = instRegs(in, ubuf[:0], dbuf[:0])
			}

			// Loads for spilled uses.
			for _, iv := range spilledIn(ubuf) {
				s := takeScratch(iv.vreg)
				out = append(out, a.reloadInst(iv, s))
			}
			defSpills := spilledIn(dbuf)
			for _, iv := range defSpills {
				takeScratch(iv.vreg)
			}

			// Substitute registers.
			mapReg := func(r mach.Reg) mach.Reg {
				if !r.IsVirtual() {
					return r
				}
				if s, ok := scratch[r]; ok {
					return s
				}
				iv := a.intervals[r]
				if iv == nil {
					// Defined but never live (dead def with no
					// interval cannot happen — defs create intervals);
					// fall back to a scratch register.
					return gprScratch[0]
				}
				return iv.phys
			}
			subst := func(o *mach.Operand) {
				switch o.Kind {
				case mach.KReg:
					o.Reg = mapReg(o.Reg)
				case mach.KMem:
					if o.Base != mach.NoReg {
						o.Base = mapReg(o.Base)
					}
					if o.Index != mach.NoReg {
						o.Index = mapReg(o.Index)
					}
				}
			}
			subst(&in.Src)
			subst(&in.Dst)

			// Coalesced copies vanish.
			if isRegCopy(in) && in.Src.Reg == in.Dst.Reg {
				continue
			}
			out = append(out, in)

			// Stores for spilled defs.
			for _, iv := range defSpills {
				out = append(out, a.storeInst(iv, scratch[iv.vreg]))
			}

			for _, o := range []mach.Operand{in.Src, in.Dst} {
				switch o.Kind {
				case mach.KReg:
					if savedPool[o.Reg] {
						usedSaved[o.Reg] = true
					}
				case mach.KMem:
					if savedPool[o.Base] {
						usedSaved[o.Base] = true
					}
					if savedPool[o.Index] {
						usedSaved[o.Index] = true
					}
				}
			}
		}
		b.Insts = out
	}

	for _, r := range gprPoolCall {
		if usedSaved[r] {
			f.SavedRegs = append(f.SavedRegs, r)
		}
	}
}

// spilledReg returns the interval when o is a spilled virtual register
// operand.
func (a *allocator) spilledReg(o mach.Operand) *interval {
	if o.Kind != mach.KReg || !o.Reg.IsVirtual() {
		return nil
	}
	if iv := a.intervals[o.Reg]; iv != nil && iv.spilled {
		return iv
	}
	return nil
}

// isFoldableMov reports whether in is a plain full-width move whose
// spilled register operand can become a direct memory operand.
func isFoldableMov(in *mach.Inst) bool {
	switch in.Op {
	case mach.OMov:
		return in.Sz == 8 && (in.Src.Kind == mach.KReg || in.Src.Kind == mach.KImm) && in.Dst.Kind == mach.KReg
	case mach.OMovss, mach.OMovsd:
		return in.Src.Kind == mach.KReg && in.Dst.Kind == mach.KReg
	}
	return false
}

func (a *allocator) reloadInst(iv *interval, scratch mach.Reg) *mach.Inst {
	src := mach.FrameOp(iv.slot, 0)
	if a.f.Class(iv.vreg) == mach.ClassXMM {
		return &mach.Inst{Op: mach.OMovsd, Sz: 8, Src: src, Dst: mach.RegOp(scratch)}
	}
	return &mach.Inst{Op: mach.OMov, Sz: 8, Src: src, Dst: mach.RegOp(scratch)}
}

func (a *allocator) storeInst(iv *interval, scratch mach.Reg) *mach.Inst {
	dst := mach.FrameOp(iv.slot, 0)
	if a.f.Class(iv.vreg) == mach.ClassXMM {
		return &mach.Inst{Op: mach.OMovsd, Sz: 8, Src: mach.RegOp(scratch), Dst: dst}
	}
	return &mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(scratch), Dst: dst}
}
