// Package backend lowers the typed SSA of internal/ir to x86-64
// machine code: instruction selection onto internal/backend/mach,
// linear-scan register allocation, frame layout, and (via
// internal/backend/encode) real encoded byte sizes. It is the
// measurement side of the cost model: costmodel estimates, backend
// measures, and internal/backend/calib pins how far apart they drift.
//
// Covered subset — everything the mini-C frontend and RoLAG emit:
// integer/FP arithmetic at i8..i64/f32/f64, icmp/fcmp with branch
// folding, loads/stores with GEP-folded addressing (base+index*scale+
// disp and rip-relative), static allocas, SysV calls (register and
// stack args), phis (destroyed via per-edge temporaries), select via
// cmov, and the full cast set. Deliberate gaps, rejected with errors
// rather than guessed at: dynamic allocas, function pointers, and
// varargs — none of which the frontend can produce.
package backend

import (
	"encoding/binary"
	"fmt"
	"math"

	"rolag/internal/backend/mach"
	"rolag/internal/ir"
)

// SysV argument registers.
var intArgRegs = []mach.Reg{mach.RDI, mach.RSI, mach.RDX, mach.RCX, mach.R8, mach.R9}
var fpArgRegs = []mach.Reg{mach.XMM0, mach.XMM1, mach.XMM2, mach.XMM3, mach.XMM4, mach.XMM5, mach.XMM6, mach.XMM7}

// modLower carries module-wide lowering state: the output module and
// the deduplicated float-literal pool.
type modLower struct {
	out     *mach.Module
	fpPool  map[uint64]string // bits<<1|is32 -> symbol
	fpOrder []mach.RodataSym
}

func isFloat(t ir.Type) bool {
	_, ok := t.(ir.FloatType)
	return ok
}

// opSize returns the operand byte width used for a type.
func opSize(t ir.Type) int8 {
	switch t := t.(type) {
	case ir.IntType:
		switch {
		case t.Bits <= 8:
			return 1
		case t.Bits <= 16:
			return 2
		case t.Bits <= 32:
			return 4
		default:
			return 8
		}
	case ir.FloatType:
		return int8(t.Bits / 8)
	case ir.PointerType:
		return 8
	}
	return 8
}

// gprSize widens sub-32-bit integer operations to 32 bits: the upper
// bits of a virtual register holding an iN value are garbage, which is
// fine for everything except compares, stores, shifts right, and
// division (those normalize explicitly).
func gprSize(t ir.Type) int8 {
	if s := opSize(t); s == 8 {
		return 8
	}
	return 4
}

// addr is a resolved addressing expression for a folded GEP/alloca/
// global access: one of frame slot + disp, rip-relative sym + disp, or
// base reg (+ index*scale) + disp.
type addr struct {
	frame   bool
	slot    int
	sym     string
	base    mach.Reg // NoReg unless register-based
	index   mach.Reg // NoReg if none
	scale   int8
	disp    int64
}

func (a addr) operand() mach.Operand {
	switch {
	case a.frame:
		return mach.FrameOp(a.slot, a.disp)
	case a.sym != "":
		return mach.SymOp(a.sym, a.disp)
	case a.index != mach.NoReg:
		return mach.MemIdxOp(a.base, a.index, a.scale, a.disp)
	default:
		return mach.MemOp(a.base, a.disp)
	}
}

type isel struct {
	ml    *modLower
	irf   *ir.Func
	f     *mach.Func
	users map[ir.Value][]*ir.Instr

	vreg       map[ir.Value]mach.Reg
	phiTmp     map[*ir.Instr]mach.Reg
	allocaSlot map[*ir.Instr]int
	gepAddr    map[*ir.Instr]addr
	foldedCmp  map[*ir.Instr]bool // icmp/fcmp emitted at the branch site
	blockIdx   map[*ir.Block]int

	cur *mach.Block
}

func (s *isel) emit(in *mach.Inst) { s.cur.Insts = append(s.cur.Insts, in) }

func (s *isel) errf(format string, args ...any) error {
	return fmt.Errorf("backend: %s: %s", s.irf.Name, fmt.Sprintf(format, args...))
}

// valueReg returns the vreg holding v, materializing constants and
// global addresses into fresh vregs as needed.
func (s *isel) valueReg(v ir.Value) (mach.Reg, error) {
	if r, ok := s.vreg[v]; ok {
		return r, nil
	}
	switch c := v.(type) {
	case *ir.IntConst:
		r := s.f.NewVReg(mach.ClassGPR)
		s.materializeInt(c.Val, opSize(c.Typ), r)
		return r, nil
	case *ir.NullConst:
		r := s.f.NewVReg(mach.ClassGPR)
		s.materializeInt(0, 8, r)
		return r, nil
	case *ir.UndefConst:
		if isFloat(c.Typ) {
			r := s.f.NewVReg(mach.ClassXMM)
			s.emit(&mach.Inst{Op: mach.OXorps, Sz: 4, Src: mach.RegOp(r), Dst: mach.RegOp(r)})
			return r, nil
		}
		r := s.f.NewVReg(mach.ClassGPR)
		s.materializeInt(0, 8, r)
		return r, nil
	case *ir.FloatConst:
		return s.floatReg(c), nil
	case *ir.Global:
		r := s.f.NewVReg(mach.ClassGPR)
		s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.SymOp(c.Name, 0), Dst: mach.RegOp(r)})
		return r, nil
	case *ir.Instr:
		if c.Op == ir.OpAlloca || c.Op == ir.OpGEP {
			// Folded address value used in a register context; the
			// materializing paths should have assigned a vreg.
			return 0, s.errf("address value %s has no register", c.Ident())
		}
		return 0, s.errf("value %s has no vreg", c.Ident())
	}
	return 0, s.errf("unsupported operand %T", v)
}

// materializeInt loads an integer constant into r with the width
// gymnastics gas/gcc use: zero via the 32-bit form, imm64 via movabs.
func (s *isel) materializeInt(val int64, size int8, r mach.Reg) {
	switch {
	case val >= 0 && val <= math.MaxUint32 || size <= 4:
		// 32-bit mov zero-extends; covers all non-negative imm32 and
		// every sub-64-bit value (upper garbage is allowed there).
		s.emit(&mach.Inst{Op: mach.OMov, Sz: 4, Src: mach.ImmOp(int64(uint32(val))), Dst: mach.RegOp(r)})
	case val >= math.MinInt32:
		s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.ImmOp(val), Dst: mach.RegOp(r)})
	default:
		s.emit(&mach.Inst{Op: mach.OMovAbs, Sz: 8, Src: mach.ImmOp(val), Dst: mach.RegOp(r)})
	}
}

// floatReg materializes a float constant: xorps for +0.0, otherwise a
// load from the deduplicated literal pool.
func (s *isel) floatReg(c *ir.FloatConst) mach.Reg {
	r := s.f.NewVReg(mach.ClassXMM)
	if c.Val == 0 && !math.Signbit(c.Val) {
		s.emit(&mach.Inst{Op: mach.OXorps, Sz: 4, Src: mach.RegOp(r), Dst: mach.RegOp(r)})
		return r
	}
	sym := s.ml.floatSym(c)
	op := mach.OMovsd
	if c.Typ.Bits == 32 {
		op = mach.OMovss
	}
	s.emit(&mach.Inst{Op: op, Sz: int8(c.Typ.Bits / 8), Src: mach.SymOp(sym, 0), Dst: mach.RegOp(r)})
	return r
}

func (ml *modLower) floatSym(c *ir.FloatConst) string {
	var key uint64
	var data []byte
	var align int64
	if c.Typ.Bits == 32 {
		bits := math.Float32bits(float32(c.Val))
		key = uint64(bits)<<1 | 1
		data = binary.LittleEndian.AppendUint32(nil, bits)
		align = 4
	} else {
		bits := math.Float64bits(c.Val)
		key = bits << 1
		data = binary.LittleEndian.AppendUint64(nil, bits)
		align = 8
	}
	if sym, ok := ml.fpPool[key]; ok {
		return sym
	}
	sym := fmt.Sprintf(".LC%d", len(ml.fpPool))
	ml.fpPool[key] = sym
	ml.fpOrder = append(ml.fpOrder, mach.RodataSym{Name: sym, Align: align, Data: data})
	return sym
}

// intRM returns v as an immediate operand when it is an int32-range
// constant, else as a register.
func (s *isel) intRM(v ir.Value) (mach.Operand, error) {
	if c, ok := v.(*ir.IntConst); ok && c.Val >= math.MinInt32 && c.Val <= math.MaxInt32 {
		return mach.ImmOp(c.Val), nil
	}
	if _, ok := v.(*ir.NullConst); ok {
		return mach.ImmOp(0), nil
	}
	r, err := s.valueReg(v)
	if err != nil {
		return mach.Operand{}, err
	}
	return mach.RegOp(r), nil
}

// addrOf resolves a pointer value to a memory addressing expression.
func (s *isel) addrOf(v ir.Value) (addr, error) {
	switch p := v.(type) {
	case *ir.Global:
		return addr{sym: p.Name, base: mach.NoReg, index: mach.NoReg}, nil
	case *ir.Instr:
		if a, ok := s.gepAddr[p]; ok {
			return a, nil
		}
		if slot, ok := s.allocaSlot[p]; ok {
			if _, hasReg := s.vreg[p]; !hasReg {
				return addr{frame: true, slot: slot, base: mach.NoReg, index: mach.NoReg}, nil
			}
		}
	case *ir.NullConst:
		return addr{}, s.errf("load/store through null pointer")
	}
	r, err := s.valueReg(v)
	if err != nil {
		return addr{}, err
	}
	return addr{base: r, index: mach.NoReg}, nil
}

// isAddrUser reports whether user u uses v purely as a load/store
// address (not as a stored value or any other operand).
func isAddrUser(u *ir.Instr, v ir.Value) bool {
	switch u.Op {
	case ir.OpLoad:
		return u.Operands[0] == v
	case ir.OpStore:
		return u.Operands[1] == v && u.Operands[0] != v
	}
	return false
}

func (s *isel) allAddrUsers(v ir.Value) bool {
	for _, u := range s.users[v] {
		if !isAddrUser(u, v) {
			return false
		}
	}
	return true
}

// phiNeedsTmp reports whether phi p of block b needs the temp-register
// scheme for SSA destruction. The edge copies run sequentially at each
// predecessor, before the terminator, so writing p's register directly
// is unsafe when parallel-copy semantics could be violated — p's
// incoming value is itself a phi of b (its register may already hold
// this iteration's value), or another phi of b reads p — and when a
// predecessor's terminator still reads p after the copies (a latch
// branching on a header phi, directly or through a branch-folded
// compare).
func (s *isel) phiNeedsTmp(b *ir.Block, p *ir.Instr) bool {
	isPhiOfB := func(v ir.Value) bool {
		in, ok := v.(*ir.Instr)
		return ok && in.Op == ir.OpPhi && in.Parent == b
	}
	for _, q := range b.Phis() {
		for _, op := range q.Operands {
			if q == p && isPhiOfB(op) {
				return true
			}
			if q != p && op == ir.Value(p) {
				return true
			}
		}
	}
	predOfB := func(blk *ir.Block) bool {
		for _, succ := range blk.Succs() {
			if succ == b {
				return true
			}
		}
		return false
	}
	for _, u := range s.users[p] {
		if u.Parent == nil || !predOfB(u.Parent) {
			continue
		}
		switch u.Op {
		case ir.OpCondBr:
			return true
		case ir.OpICmp, ir.OpFCmp:
			// Conservative: the compare might be folded into the
			// predecessor's branch and re-emitted after the copies.
			return true
		}
	}
	return false
}

var intPredCond = map[ir.Pred]mach.Cond{
	ir.PredEQ: mach.CondE, ir.PredNE: mach.CondNE,
	ir.PredSLT: mach.CondL, ir.PredSLE: mach.CondLE,
	ir.PredSGT: mach.CondG, ir.PredSGE: mach.CondGE,
	ir.PredULT: mach.CondB, ir.PredULE: mach.CondBE,
	ir.PredUGT: mach.CondA, ir.PredUGE: mach.CondAE,
}

// lowerFunc lowers one IR function. Block 0 of the mach function is a
// synthetic prologue block (parameter moves; frame setup is inserted
// there by finalizeFrame), followed by the IR blocks in layout order.
func (s *isel) lowerFunc() error {
	f := s.f
	s.blockIdx = make(map[*ir.Block]int, len(s.irf.Blocks))
	for i, b := range s.irf.Blocks {
		s.blockIdx[b] = i + 1
	}
	pro := &mach.Block{Name: "prologue"}
	f.Blocks = append(f.Blocks, pro)
	s.cur = pro

	// Parameter moves out of the SysV argument registers.
	intIdx, fpIdx, stackOff := 0, 0, int64(0)
	for _, p := range s.irf.Params {
		fp := isFloat(p.Typ)
		var src mach.Operand
		switch {
		case fp && fpIdx < len(fpArgRegs):
			src = mach.RegOp(fpArgRegs[fpIdx])
			fpIdx++
		case !fp && intIdx < len(intArgRegs):
			src = mach.RegOp(intArgRegs[intIdx])
			intIdx++
		default:
			src = mach.IncomingOp(int(stackOff / 8))
			stackOff += 8
		}
		if len(s.users[p]) == 0 {
			continue
		}
		if fp {
			r := s.f.NewVReg(mach.ClassXMM)
			s.vreg[p] = r
			op := mach.OMovsd
			if opSize(p.Typ) == 4 {
				op = mach.OMovss
			}
			s.emit(&mach.Inst{Op: op, Sz: opSize(p.Typ), Src: src, Dst: mach.RegOp(r)})
		} else {
			r := s.f.NewVReg(mach.ClassGPR)
			s.vreg[p] = r
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: src, Dst: mach.RegOp(r)})
		}
	}

	// Pre-pass: phi dst/tmp vregs, alloca slots, cmp-fold and
	// gep-fold decisions.
	if err := s.prepass(); err != nil {
		return err
	}

	for _, b := range s.irf.Blocks {
		mb := &mach.Block{Name: b.Name}
		f.Blocks = append(f.Blocks, mb)
		s.cur = mb
		// Phi landing copies: tmp -> dst (elided for hazard-free phis,
		// whose predecessors write the phi register directly).
		for _, phi := range b.Phis() {
			if s.phiTmp[phi] != s.vreg[phi] {
				s.copyReg(s.vreg[phi], s.phiTmp[phi], phi.Typ)
			}
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				continue
			}
			if err := s.lowerInstr(in); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *isel) copyReg(dst, src mach.Reg, t ir.Type) {
	if isFloat(t) {
		op := mach.OMovsd
		if opSize(t) == 4 {
			op = mach.OMovss
		}
		s.emit(&mach.Inst{Op: op, Sz: opSize(t), Src: mach.RegOp(src), Dst: mach.RegOp(dst)})
		return
	}
	s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(src), Dst: mach.RegOp(dst)})
}

func (s *isel) prepass() error {
	for _, b := range s.irf.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				class := mach.ClassGPR
				if isFloat(in.Typ) {
					class = mach.ClassXMM
				}
				s.vreg[in] = s.f.NewVReg(class)
				if s.phiNeedsTmp(b, in) {
					s.phiTmp[in] = s.f.NewVReg(class)
				} else {
					// No parallel-copy hazard on any edge: predecessors
					// write the phi register directly and the landing
					// copy disappears.
					s.phiTmp[in] = s.vreg[in]
				}
			case ir.OpAlloca:
				cnt, ok := in.Operands[0].(*ir.IntConst)
				if !ok {
					return s.errf("dynamic alloca %s not supported (deliberate encoder gap)", in.Ident())
				}
				size := int64(in.Alloc.Size()) * cnt.Val
				if size < 0 || size > 1<<20 {
					return s.errf("alloca %s size %d out of range", in.Ident(), size)
				}
				slot := len(s.f.AllocaSlots)
				s.f.AllocaSlots = append(s.f.AllocaSlots, mach.AllocaSlot{Size: size, Align: int64(in.Alloc.Align())})
				s.allocaSlot[in] = slot
			case ir.OpICmp, ir.OpFCmp:
				// Fold into the flag consumer when the comparison's
				// only user is a condbr (jcc) or a select (cmovcc) and
				// a single condition code implements it (every int
				// predicate; ordered FP relational predicates). For a
				// select the comparison must be the condition operand,
				// not an i1 data operand.
				us := s.users[in]
				if len(us) == 1 && (us[0].Op == ir.OpCondBr ||
					us[0].Op == ir.OpSelect && us[0].Operands[0] == ir.Value(in) &&
						us[0].Operands[1] != ir.Value(in) && us[0].Operands[2] != ir.Value(in)) {
					ok := in.Op == ir.OpICmp
					switch in.Pred {
					case ir.PredOLT, ir.PredOLE, ir.PredOGT, ir.PredOGE:
						ok = true
					}
					if ok {
						s.foldedCmp[in] = true
					}
				}
			}
		}
	}
	return nil
}

// lowerGEP decomposes a GEP into const displacement + at most one
// scaled dynamic index, deciding between folding into user addressing
// and materializing the address into a vreg.
func (s *isel) lowerGEP(in *ir.Instr) error {
	baseVal := in.Operands[0]
	pt, ok := baseVal.Type().(ir.PointerType)
	if !ok {
		return s.errf("gep base %s is not a pointer", baseVal.Ident())
	}
	var disp int64
	type dyn struct {
		v     ir.Value
		scale int64
	}
	var dyns []dyn
	t := ir.Type(pt.Elem)
	for i, idxV := range in.Operands[1:] {
		var scale int64
		if i == 0 {
			scale = int64(t.Size())
		} else {
			switch at := t.(type) {
			case ir.ArrayType:
				t = at.Elem
				scale = int64(t.Size())
			case *ir.StructType:
				c, ok := idxV.(*ir.IntConst)
				if !ok {
					return s.errf("gep %s: non-constant struct field index", in.Ident())
				}
				disp += int64(at.FieldOffset(int(c.Val)))
				t = at.Fields[c.Val]
				continue
			default:
				return s.errf("gep %s: cannot index into %s", in.Ident(), t)
			}
		}
		if c, ok := idxV.(*ir.IntConst); ok {
			disp += c.Val * scale
			continue
		}
		dyns = append(dyns, dyn{idxV, scale})
	}

	// Normalize dynamic indices to 64-bit registers (sign-extended).
	idxReg := func(d dyn) (mach.Reg, error) {
		r, err := s.valueReg(d.v)
		if err != nil {
			return 0, err
		}
		if sz := opSize(d.v.Type()); sz < 8 {
			ext := s.f.NewVReg(mach.ClassGPR)
			s.emit(&mach.Inst{Op: mach.OMovsx, Sz: 8, SrcSz: sz, Src: mach.RegOp(r), Dst: mach.RegOp(ext)})
			return ext, nil
		}
		return r, nil
	}
	hwScale := func(sc int64) bool { return sc == 1 || sc == 2 || sc == 4 || sc == 8 }

	fitsDisp := disp >= math.MinInt32 && disp <= math.MaxInt32
	foldable := s.allAddrUsers(in) && fitsDisp && len(dyns) <= 1 &&
		(len(dyns) == 0 || hwScale(dyns[0].scale))
	if foldable {
		switch base := baseVal.(type) {
		case *ir.Global:
			if len(dyns) == 0 {
				s.gepAddr[in] = addr{sym: base.Name, disp: disp, base: mach.NoReg, index: mach.NoReg}
				return nil
			}
			// rip-relative has no index form: lea the base once, keep
			// the scaled index in the operand (what gcc emits for
			// table[i]).
			t := s.f.NewVReg(mach.ClassGPR)
			s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.SymOp(base.Name, 0), Dst: mach.RegOp(t)})
			ix, err := idxReg(dyns[0])
			if err != nil {
				return err
			}
			s.gepAddr[in] = addr{base: t, index: ix, scale: int8(dyns[0].scale), disp: disp}
			return nil
		case *ir.Instr:
			if slot, ok := s.allocaSlot[base]; ok {
				if len(dyns) == 0 {
					s.gepAddr[in] = addr{frame: true, slot: slot, disp: disp, base: mach.NoReg, index: mach.NoReg}
					return nil
				}
				break // dynamic index over a frame slot: materialize
			}
		}
		if _, isGlobal := baseVal.(*ir.Global); !isGlobal {
			br, err := s.valueReg(baseVal)
			if err == nil {
				a := addr{base: br, index: mach.NoReg, disp: disp}
				if len(dyns) == 1 {
					ix, err := idxReg(dyns[0])
					if err != nil {
						return err
					}
					a.index, a.scale = ix, int8(dyns[0].scale)
				}
				s.gepAddr[in] = a
				return nil
			}
		}
	}

	// Materialize the full address into a vreg.
	dst := s.f.NewVReg(mach.ClassGPR)
	switch base := baseVal.(type) {
	case *ir.Global:
		s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.SymOp(base.Name, disp), Dst: mach.RegOp(dst)})
	default:
		_ = base
		br, err := s.valueReg(baseVal)
		if err != nil {
			// Alloca base: lea the slot.
			if a, ok := baseVal.(*ir.Instr); ok {
				if slot, ok2 := s.allocaSlot[a]; ok2 {
					s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.FrameOp(slot, disp), Dst: mach.RegOp(dst)})
					br = dst
					err = nil
				}
			}
			if err != nil {
				return err
			}
		} else if len(dyns) == 1 && hwScale(dyns[0].scale) && fitsDisp {
			// One lea covers base + idx*scale + disp.
			ix, err := idxReg(dyns[0])
			if err != nil {
				return err
			}
			s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.MemIdxOp(br, ix, int8(dyns[0].scale), disp), Dst: mach.RegOp(dst)})
			s.vreg[in] = dst
			return nil
		} else {
			if disp != 0 && fitsDisp {
				s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.MemOp(br, disp), Dst: mach.RegOp(dst)})
			} else {
				s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(br), Dst: mach.RegOp(dst)})
				if disp != 0 {
					tmp := s.f.NewVReg(mach.ClassGPR)
					s.materializeInt(disp, 8, tmp)
					s.emit(&mach.Inst{Op: mach.OAdd, Sz: 8, Src: mach.RegOp(tmp), Dst: mach.RegOp(dst)})
				}
			}
			br = dst
		}
	}
	// Remaining dynamic contributions: idx*scale added one at a time.
	for _, d := range dyns {
		ix, err := idxReg(d)
		if err != nil {
			return err
		}
		switch {
		case d.scale == 1:
			s.emit(&mach.Inst{Op: mach.OAdd, Sz: 8, Src: mach.RegOp(ix), Dst: mach.RegOp(dst)})
		case hwScale(d.scale):
			s.emit(&mach.Inst{Op: mach.OLea, Sz: 8, Src: mach.MemIdxOp(dst, ix, int8(d.scale), 0), Dst: mach.RegOp(dst)})
		default:
			t := s.f.NewVReg(mach.ClassGPR)
			s.emit(&mach.Inst{Op: mach.OMov, Sz: 8, Src: mach.RegOp(ix), Dst: mach.RegOp(t)})
			s.emit(&mach.Inst{Op: mach.OImul, Sz: 8, Src: mach.ImmOp(d.scale), Dst: mach.RegOp(t)})
			s.emit(&mach.Inst{Op: mach.OAdd, Sz: 8, Src: mach.RegOp(t), Dst: mach.RegOp(dst)})
		}
	}
	s.vreg[in] = dst
	return nil
}
