// Package encode turns mach instructions into x86-64 machine code and
// is the repo's size oracle: the byte counts every experiment reports
// come from here. It covers exactly the instruction shapes the
// instruction selector emits (see internal/backend); anything else is
// a hard error, never a silent guess. Branches are relaxed to rel8
// where the displacement fits, matching what GNU as produces for the
// same assembly, so encoder lengths can be cross-checked against a
// system assembler when one is present.
package encode

import (
	"fmt"

	"rolag/internal/backend/mach"
)

// errf wraps an encoding failure with the offending instruction's op.
func errf(in *mach.Inst, format string, args ...any) error {
	return fmt.Errorf("encode: op %d: %s", in.Op, fmt.Sprintf(format, args...))
}

// asm is a byte buffer for one instruction.
type asm struct {
	b []byte
}

func (a *asm) byte(v ...byte)  { a.b = append(a.b, v...) }
func (a *asm) imm8(v int64)    { a.b = append(a.b, byte(v)) }
func (a *asm) imm16(v int64)   { a.b = append(a.b, byte(v), byte(v>>8)) }
func (a *asm) imm32(v int64)   { a.b = append(a.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (a *asm) imm64(v int64) {
	a.imm32(v)
	a.imm32(v >> 32)
}

func fitsInt8(v int64) bool  { return v >= -128 && v <= 127 }
func fitsInt32(v int64) bool { return v >= -1<<31 && v <= 1<<31-1 }

// rmArgs carries everything the ModRM emitter needs.
type rmArgs struct {
	legacy []byte       // F3/F2/66 mandatory prefixes (before REX)
	op     []byte       // opcode bytes (0F escapes included)
	reg    byte         // 4-bit reg field (register number or /digit extension)
	rm     mach.Operand // KReg or KMem
	w      bool         // REX.W
	sz66   bool         // 0x66 operand-size prefix (16-bit integer ops)
	// forceRex: byte-register operands with encodings 4-7 (spl, bpl,
	// sil, dil) need an empty REX prefix to mean the low byte.
	forceRex bool
}

// modrm emits prefix+opcode+ModRM(+SIB)(+disp) for one rm-form
// instruction. Immediates are appended by the caller.
func (a *asm) modrm(in *mach.Inst, g rmArgs) error {
	if g.sz66 {
		a.byte(0x66)
	}
	a.byte(g.legacy...)

	rex := byte(0)
	if g.w {
		rex |= 0x48
	}
	if g.reg >= 8 {
		rex |= 0x44 // REX.R
	}

	var modrmByte byte
	var sib []byte
	var disp []byte

	regField := (g.reg & 7) << 3

	switch g.rm.Kind {
	case mach.KReg:
		enc := g.rm.Reg.Enc()
		if enc >= 8 {
			rex |= 0x41 // REX.B
		}
		modrmByte = 0xC0 | regField | (enc & 7)
	case mach.KMem:
		if g.rm.Sym != "" {
			// RIP-relative: mod=00, rm=101, disp32. The displacement
			// is a relocation in a real object file; its length is
			// what matters here, so emit the addend.
			modrmByte = 0x00 | regField | 0x05
			disp = []byte{byte(g.rm.Imm), byte(g.rm.Imm >> 8), byte(g.rm.Imm >> 16), byte(g.rm.Imm >> 24)}
			break
		}
		base := g.rm.Base
		index := g.rm.Index
		if base == mach.NoReg {
			return errf(in, "memory operand without base or symbol")
		}
		if index == mach.RSP {
			return errf(in, "rsp cannot be an index register")
		}
		baseEnc := base.Enc()
		if baseEnc >= 8 {
			rex |= 0x41 // REX.B
		}
		needSIB := index != mach.NoReg || baseEnc&7 == 4 // rsp/r12 base forces SIB
		d := g.rm.Imm
		var mod byte
		switch {
		case d == 0 && baseEnc&7 != 5: // rbp/r13 base always needs a disp
			mod = 0x00
		case fitsInt8(d):
			mod = 0x40
			disp = []byte{byte(d)}
		default:
			if !fitsInt32(d) {
				return errf(in, "displacement %d does not fit in 32 bits", d)
			}
			mod = 0x80
			disp = []byte{byte(d), byte(d >> 8), byte(d >> 16), byte(d >> 24)}
		}
		if needSIB {
			var scaleBits byte
			idxEnc := byte(4) // none
			if index != mach.NoReg {
				ie := index.Enc()
				if ie >= 8 {
					rex |= 0x42 // REX.X
				}
				idxEnc = ie & 7
				switch g.rm.Scale {
				case 1:
					scaleBits = 0
				case 2:
					scaleBits = 1 << 6
				case 4:
					scaleBits = 2 << 6
				case 8:
					scaleBits = 3 << 6
				default:
					return errf(in, "bad scale %d", g.rm.Scale)
				}
			}
			modrmByte = mod | regField | 0x04
			sib = []byte{scaleBits | idxEnc<<3 | (baseEnc & 7)}
		} else {
			modrmByte = mod | regField | (baseEnc & 7)
		}
	default:
		return errf(in, "bad rm operand kind %d", g.rm.Kind)
	}

	if rex != 0 {
		rex |= 0x40
	} else if g.forceRex {
		rex = 0x40
	}
	if rex != 0 {
		a.byte(rex)
	}
	a.byte(g.op...)
	a.byte(modrmByte)
	a.byte(sib...)
	a.byte(disp...)
	return nil
}

// byteRegNeedsRex reports whether using r as a byte register requires
// a REX prefix (spl/bpl/sil/dil).
func byteRegNeedsRex(o mach.Operand) bool {
	if o.Kind != mach.KReg {
		return false
	}
	e := o.Reg.Enc()
	return o.Reg < mach.XMM0 && e >= 4 && e <= 7
}

// aluSpec describes one two-address integer ALU op family.
type aluSpec struct {
	storeOp byte // op r, r/m
	loadOp  byte // op r/m, r
	immExt  byte // /digit for the 80/81/83 immediate group
}

var aluSpecs = map[mach.Op]aluSpec{
	mach.OAdd: {0x01, 0x03, 0},
	mach.OOr:  {0x09, 0x0B, 1},
	mach.OAnd: {0x21, 0x23, 4},
	mach.OSub: {0x29, 0x2B, 5},
	mach.OXor: {0x31, 0x33, 6},
	mach.OCmp: {0x39, 0x3B, 7},
}

// Inst encodes one non-control-flow instruction (everything except
// OJmp/OJcc, which need layout context for their displacements).
func Inst(in *mach.Inst) ([]byte, error) {
	a := &asm{}
	err := encodeInto(a, in)
	if err != nil {
		return nil, err
	}
	return a.b, nil
}

func intOpPrefix(sz int8) (w bool, sz66 bool) {
	return sz == 8, sz == 2
}

func encodeInto(a *asm, in *mach.Inst) error {
	switch in.Op {
	case mach.ONop:
		a.byte(0x90)
		return nil

	case mach.OMov:
		return encodeMov(a, in)

	case mach.OMovAbs:
		if in.Dst.Kind != mach.KReg {
			return errf(in, "movabs needs a register destination")
		}
		enc := in.Dst.Reg.Enc()
		rex := byte(0x48)
		if enc >= 8 {
			rex |= 1
		}
		a.byte(rex, 0xB8+(enc&7))
		a.imm64(in.Src.Imm)
		return nil

	case mach.OLea:
		if in.Src.Kind != mach.KMem || in.Dst.Kind != mach.KReg {
			return errf(in, "lea needs mem source and register destination")
		}
		return a.modrm(in, rmArgs{op: []byte{0x8D}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: true})

	case mach.OAdd, mach.OSub, mach.OAnd, mach.OOr, mach.OXor, mach.OCmp:
		return encodeALU(a, in, aluSpecs[in.Op])

	case mach.OImul:
		w, sz66 := intOpPrefix(in.Sz)
		if in.Src.Kind == mach.KImm {
			// imul $imm, rm, r with rm == r (two-address form).
			op := byte(0x69)
			if fitsInt8(in.Src.Imm) {
				op = 0x6B
			}
			if err := a.modrm(in, rmArgs{op: []byte{op}, reg: in.Dst.Reg.Enc(), rm: in.Dst, w: w, sz66: sz66}); err != nil {
				return err
			}
			if op == 0x6B {
				a.imm8(in.Src.Imm)
			} else if in.Sz == 2 {
				a.imm16(in.Src.Imm)
			} else {
				a.imm32(in.Src.Imm)
			}
			return nil
		}
		return a.modrm(in, rmArgs{op: []byte{0x0F, 0xAF}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: w, sz66: sz66})

	case mach.OShl, mach.OShr, mach.OSar:
		ext := map[mach.Op]byte{mach.OShl: 4, mach.OShr: 5, mach.OSar: 7}[in.Op]
		w, sz66 := intOpPrefix(in.Sz)
		byteOp := in.Sz == 1
		if in.Src.Kind == mach.KImm {
			if in.Src.Imm == 1 {
				// Shift-by-one short form (what gas emits for $1).
				op := byte(0xD1)
				if byteOp {
					op = 0xD0
				}
				return a.modrm(in, rmArgs{op: []byte{op}, reg: ext, rm: in.Dst, w: w, sz66: sz66, forceRex: byteOp && byteRegNeedsRex(in.Dst)})
			}
			op := byte(0xC1)
			if byteOp {
				op = 0xC0
			}
			if err := a.modrm(in, rmArgs{op: []byte{op}, reg: ext, rm: in.Dst, w: w, sz66: sz66, forceRex: byteOp && byteRegNeedsRex(in.Dst)}); err != nil {
				return err
			}
			a.imm8(in.Src.Imm)
			return nil
		}
		// Count in %cl.
		op := byte(0xD3)
		if byteOp {
			op = 0xD2
		}
		return a.modrm(in, rmArgs{op: []byte{op}, reg: ext, rm: in.Dst, w: w, sz66: sz66, forceRex: byteOp && byteRegNeedsRex(in.Dst)})

	case mach.OTest:
		w, sz66 := intOpPrefix(in.Sz)
		op := byte(0x85)
		forceRex := false
		if in.Sz == 1 {
			op = 0x84
			forceRex = byteRegNeedsRex(in.Src) || byteRegNeedsRex(in.Dst)
		}
		if in.Src.Kind != mach.KReg {
			return errf(in, "test needs a register source")
		}
		return a.modrm(in, rmArgs{op: []byte{op}, reg: in.Src.Reg.Enc(), rm: in.Dst, w: w, sz66: sz66, forceRex: forceRex})

	case mach.OMovzx, mach.OMovsx:
		return encodeExt(a, in)

	case mach.OCwd:
		if in.Sz == 8 {
			a.byte(0x48, 0x99)
		} else {
			a.byte(0x99)
		}
		return nil

	case mach.OIdiv, mach.ODiv:
		ext := byte(7)
		if in.Op == mach.ODiv {
			ext = 6
		}
		w, sz66 := intOpPrefix(in.Sz)
		return a.modrm(in, rmArgs{op: []byte{0xF7}, reg: ext, rm: in.Src, w: w, sz66: sz66})

	case mach.OSet:
		return a.modrm(in, rmArgs{op: []byte{0x0F, 0x90 + byte(in.Cond)}, reg: 0, rm: in.Dst, forceRex: byteRegNeedsRex(in.Dst)})

	case mach.OCmov:
		w, sz66 := intOpPrefix(in.Sz)
		return a.modrm(in, rmArgs{op: []byte{0x0F, 0x40 + byte(in.Cond)}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: w, sz66: sz66})

	case mach.OCall:
		// call rel32 — the target is an external symbol (relocation);
		// length is fixed at 5 bytes either way.
		a.byte(0xE8)
		a.imm32(0)
		return nil

	case mach.ORet:
		a.byte(0xC3)
		return nil

	case mach.OPush, mach.OPop:
		o := in.Src
		base := byte(0x50)
		if in.Op == mach.OPop {
			o = in.Dst
			base = 0x58
		}
		if o.Kind != mach.KReg {
			return errf(in, "push/pop needs a register")
		}
		enc := o.Reg.Enc()
		if enc >= 8 {
			a.byte(0x41)
		}
		a.byte(base + (enc & 7))
		return nil

	case mach.OMovss, mach.OMovsd:
		pfx := byte(0xF3)
		if in.Op == mach.OMovsd {
			pfx = 0xF2
		}
		if in.Dst.Kind == mach.KReg { // load or reg-reg: 0F 10
			return a.modrm(in, rmArgs{legacy: []byte{pfx}, op: []byte{0x0F, 0x10}, reg: in.Dst.Reg.Enc(), rm: in.Src})
		}
		// store: 0F 11
		if in.Src.Kind != mach.KReg {
			return errf(in, "movss/movsd store needs a register source")
		}
		return a.modrm(in, rmArgs{legacy: []byte{pfx}, op: []byte{0x0F, 0x11}, reg: in.Src.Reg.Enc(), rm: in.Dst})

	case mach.OAddss, mach.OAddsd, mach.OSubss, mach.OSubsd,
		mach.OMulss, mach.OMulsd, mach.ODivss, mach.ODivsd:
		type fpSpec struct {
			pfx byte
			op  byte
		}
		spec := map[mach.Op]fpSpec{
			mach.OAddss: {0xF3, 0x58}, mach.OAddsd: {0xF2, 0x58},
			mach.OSubss: {0xF3, 0x5C}, mach.OSubsd: {0xF2, 0x5C},
			mach.OMulss: {0xF3, 0x59}, mach.OMulsd: {0xF2, 0x59},
			mach.ODivss: {0xF3, 0x5E}, mach.ODivsd: {0xF2, 0x5E},
		}[in.Op]
		return a.modrm(in, rmArgs{legacy: []byte{spec.pfx}, op: []byte{0x0F, spec.op}, reg: in.Dst.Reg.Enc(), rm: in.Src})

	case mach.OUcomiss:
		return a.modrm(in, rmArgs{op: []byte{0x0F, 0x2E}, reg: in.Dst.Reg.Enc(), rm: in.Src})
	case mach.OUcomisd:
		return a.modrm(in, rmArgs{legacy: []byte{0x66}, op: []byte{0x0F, 0x2E}, reg: in.Dst.Reg.Enc(), rm: in.Src})
	case mach.OXorps:
		return a.modrm(in, rmArgs{op: []byte{0x0F, 0x57}, reg: in.Dst.Reg.Enc(), rm: in.Src})

	case mach.OMovd, mach.OMovq:
		w := in.Op == mach.OMovq
		// Direction from which side is the XMM register: 6E loads
		// gpr->xmm (reg=xmm, rm=gpr), 7E stores xmm->gpr.
		if in.Dst.Kind == mach.KReg && in.Dst.Reg.IsXMM() {
			return a.modrm(in, rmArgs{legacy: []byte{0x66}, op: []byte{0x0F, 0x6E}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: w})
		}
		if in.Src.Kind == mach.KReg && in.Src.Reg.IsXMM() {
			return a.modrm(in, rmArgs{legacy: []byte{0x66}, op: []byte{0x0F, 0x7E}, reg: in.Src.Reg.Enc(), rm: in.Dst, w: w})
		}
		return errf(in, "movd/movq needs an xmm register on one side")

	case mach.OCvtss2sd:
		return a.modrm(in, rmArgs{legacy: []byte{0xF3}, op: []byte{0x0F, 0x5A}, reg: in.Dst.Reg.Enc(), rm: in.Src})
	case mach.OCvtsd2ss:
		return a.modrm(in, rmArgs{legacy: []byte{0xF2}, op: []byte{0x0F, 0x5A}, reg: in.Dst.Reg.Enc(), rm: in.Src})
	case mach.OCvtsi2ss:
		return a.modrm(in, rmArgs{legacy: []byte{0xF3}, op: []byte{0x0F, 0x2A}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: in.SrcSz == 8})
	case mach.OCvtsi2sd:
		return a.modrm(in, rmArgs{legacy: []byte{0xF2}, op: []byte{0x0F, 0x2A}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: in.SrcSz == 8})
	case mach.OCvttss2si:
		return a.modrm(in, rmArgs{legacy: []byte{0xF3}, op: []byte{0x0F, 0x2C}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: in.Sz == 8})
	case mach.OCvttsd2si:
		return a.modrm(in, rmArgs{legacy: []byte{0xF2}, op: []byte{0x0F, 0x2C}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: in.Sz == 8})
	}
	return errf(in, "unsupported opcode")
}

func encodeALU(a *asm, in *mach.Inst, spec aluSpec) error {
	w, sz66 := intOpPrefix(in.Sz)
	byteOp := in.Sz == 1
	adj := func(op byte) byte {
		if byteOp {
			return op - 1 // word opcodes are byte opcode + 1 in this family
		}
		return op
	}
	switch {
	case in.Src.Kind == mach.KImm:
		var op byte
		imm8 := fitsInt8(in.Src.Imm)
		// Accumulator short forms (04/05-family), which gas prefers
		// whenever they are no longer than the ModRM encoding: byte
		// ops on %al, and wider ops whose immediate needs 16/32 bits.
		if in.Dst.Kind == mach.KReg && in.Dst.Reg == mach.RAX && (byteOp || !imm8) {
			if sz66 {
				a.byte(0x66)
			}
			if w {
				a.byte(0x48)
			}
			if byteOp {
				a.byte(spec.storeOp + 3)
				a.imm8(in.Src.Imm)
			} else {
				a.byte(spec.storeOp + 4)
				if in.Sz == 2 {
					a.imm16(in.Src.Imm)
				} else {
					if !fitsInt32(in.Src.Imm) {
						return errf(in, "ALU immediate %d does not fit in 32 bits", in.Src.Imm)
					}
					a.imm32(in.Src.Imm)
				}
			}
			return nil
		}
		switch {
		case byteOp:
			op = 0x80
		case imm8:
			op = 0x83
		default:
			op = 0x81
		}
		forceRex := byteOp && byteRegNeedsRex(in.Dst)
		if err := a.modrm(in, rmArgs{op: []byte{op}, reg: spec.immExt, rm: in.Dst, w: w, sz66: sz66, forceRex: forceRex}); err != nil {
			return err
		}
		switch {
		case byteOp || op == 0x83:
			a.imm8(in.Src.Imm)
		case in.Sz == 2:
			a.imm16(in.Src.Imm)
		default:
			if !fitsInt32(in.Src.Imm) {
				return errf(in, "ALU immediate %d does not fit in 32 bits", in.Src.Imm)
			}
			a.imm32(in.Src.Imm)
		}
		return nil
	case in.Src.Kind == mach.KReg && (in.Dst.Kind == mach.KReg || in.Dst.Kind == mach.KMem):
		forceRex := byteOp && (byteRegNeedsRex(in.Src) || byteRegNeedsRex(in.Dst))
		return a.modrm(in, rmArgs{op: []byte{adj(spec.storeOp)}, reg: in.Src.Reg.Enc(), rm: in.Dst, w: w, sz66: sz66, forceRex: forceRex})
	case in.Src.Kind == mach.KMem && in.Dst.Kind == mach.KReg:
		forceRex := byteOp && byteRegNeedsRex(in.Dst)
		return a.modrm(in, rmArgs{op: []byte{adj(spec.loadOp)}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: w, sz66: sz66, forceRex: forceRex})
	}
	return errf(in, "unsupported ALU operand shapes")
}

func encodeMov(a *asm, in *mach.Inst) error {
	w, sz66 := intOpPrefix(in.Sz)
	byteOp := in.Sz == 1
	switch {
	case in.Src.Kind == mach.KImm && in.Dst.Kind == mach.KReg:
		enc := in.Dst.Reg.Enc()
		switch {
		case in.Sz == 8:
			// mov $imm32s, r64 → C7 /0 id (gas picks this over movabs
			// whenever the immediate sign-extends).
			if !fitsInt32(in.Src.Imm) {
				return errf(in, "64-bit mov immediate %d needs movabs", in.Src.Imm)
			}
			if err := a.modrm(in, rmArgs{op: []byte{0xC7}, reg: 0, rm: in.Dst, w: true}); err != nil {
				return err
			}
			a.imm32(in.Src.Imm)
		case in.Sz == 4:
			if enc >= 8 {
				a.byte(0x41)
			}
			a.byte(0xB8 + (enc & 7))
			a.imm32(in.Src.Imm)
		case in.Sz == 2:
			a.byte(0x66)
			if enc >= 8 {
				a.byte(0x41)
			}
			a.byte(0xB8 + (enc & 7))
			a.imm16(in.Src.Imm)
		default:
			if byteRegNeedsRex(in.Dst) {
				a.byte(0x40)
			} else if enc >= 8 {
				a.byte(0x41)
			}
			a.byte(0xB0 + (enc & 7))
			a.imm8(in.Src.Imm)
		}
		return nil
	case in.Src.Kind == mach.KImm && in.Dst.Kind == mach.KMem:
		op := byte(0xC7)
		if byteOp {
			op = 0xC6
		}
		if err := a.modrm(in, rmArgs{op: []byte{op}, reg: 0, rm: in.Dst, w: w, sz66: sz66}); err != nil {
			return err
		}
		switch {
		case byteOp:
			a.imm8(in.Src.Imm)
		case in.Sz == 2:
			a.imm16(in.Src.Imm)
		default:
			if !fitsInt32(in.Src.Imm) {
				return errf(in, "store immediate %d does not fit in 32 bits", in.Src.Imm)
			}
			a.imm32(in.Src.Imm)
		}
		return nil
	case in.Src.Kind == mach.KReg && (in.Dst.Kind == mach.KReg || in.Dst.Kind == mach.KMem):
		op := byte(0x89)
		if byteOp {
			op = 0x88
		}
		forceRex := byteOp && (byteRegNeedsRex(in.Src) || byteRegNeedsRex(in.Dst))
		return a.modrm(in, rmArgs{op: []byte{op}, reg: in.Src.Reg.Enc(), rm: in.Dst, w: w, sz66: sz66, forceRex: forceRex})
	case in.Src.Kind == mach.KMem && in.Dst.Kind == mach.KReg:
		op := byte(0x8B)
		if byteOp {
			op = 0x8A
		}
		forceRex := byteOp && byteRegNeedsRex(in.Dst)
		return a.modrm(in, rmArgs{op: []byte{op}, reg: in.Dst.Reg.Enc(), rm: in.Src, w: w, sz66: sz66, forceRex: forceRex})
	}
	return errf(in, "unsupported mov operand shapes")
}

func encodeExt(a *asm, in *mach.Inst) error {
	signed := in.Op == mach.OMovsx
	if in.Dst.Kind != mach.KReg {
		return errf(in, "movzx/movsx needs a register destination")
	}
	w := in.Sz == 8
	sz66 := in.Sz == 2
	var op []byte
	switch {
	case in.SrcSz == 1 && signed:
		op = []byte{0x0F, 0xBE}
	case in.SrcSz == 1:
		op = []byte{0x0F, 0xB6}
	case in.SrcSz == 2 && signed:
		op = []byte{0x0F, 0xBF}
	case in.SrcSz == 2:
		op = []byte{0x0F, 0xB7}
	case in.SrcSz == 4 && signed:
		op = []byte{0x63} // movslq
	default:
		return errf(in, "unsupported extension %d -> %d", in.SrcSz, in.Sz)
	}
	forceRex := in.SrcSz == 1 && byteRegNeedsRex(in.Src)
	return a.modrm(in, rmArgs{op: op, reg: in.Dst.Reg.Enc(), rm: in.Src, w: w, sz66: sz66, forceRex: forceRex})
}
