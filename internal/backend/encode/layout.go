package encode

import (
	"fmt"

	"rolag/internal/backend/mach"
)

// FuncCode is the encoded body of one function.
type FuncCode struct {
	Bytes []byte
	// BlockOffsets[i] is the byte offset of block i's first instruction.
	BlockOffsets []int64
}

// Size returns the encoded length in bytes.
func (fc *FuncCode) Size() int64 { return int64(len(fc.Bytes)) }

// branch relaxation state for one jmp/jcc instruction.
type branchSite struct {
	block, idx int // position in the function
	inst       *mach.Inst
	long       bool // rel32 form
}

func branchLen(in *mach.Inst, long bool) int64 {
	if long {
		if in.Op == mach.OJcc {
			return 6 // 0F 8x rel32
		}
		return 5 // E9 rel32
	}
	return 2 // EB/7x rel8
}

// Func encodes one function, relaxing every jmp/jcc to its rel8 form
// when the displacement fits — the same iterate-to-fixpoint policy GNU
// as applies, so lengths agree with a system assembler. All other
// instructions are encoded once up front.
func Func(f *mach.Func) (*FuncCode, error) {
	type slot struct {
		bytes  []byte      // fixed encoding, nil for branches
		branch *branchSite // non-nil for jmp/jcc
	}
	var blocks [][]slot
	var branches []*branchSite
	for bi, blk := range f.Blocks {
		var row []slot
		for ii, in := range blk.Insts {
			if in.Op == mach.OJmp || in.Op == mach.OJcc {
				bs := &branchSite{block: bi, idx: ii, inst: in}
				branches = append(branches, bs)
				row = append(row, slot{branch: bs})
				continue
			}
			b, err := Inst(in)
			if err != nil {
				return nil, fmt.Errorf("%s/%s[%d]: %w", f.Name, blk.Name, ii, err)
			}
			row = append(row, slot{bytes: b})
		}
		blocks = append(blocks, row)
	}

	offsets := make([]int64, len(f.Blocks)+1)
	layout := func() {
		var off int64
		for bi, row := range blocks {
			offsets[bi] = off
			for _, s := range row {
				if s.branch != nil {
					off += branchLen(s.branch.inst, s.branch.long)
				} else {
					off += int64(len(s.bytes))
				}
			}
		}
		offsets[len(blocks)] = off
	}

	// Start with every branch short and grow until stable. Growth is
	// monotone, so the loop terminates in at most len(branches) passes.
	for {
		layout()
		changed := false
		var off int64
		for bi, row := range blocks {
			off = offsets[bi]
			for _, s := range row {
				if s.branch == nil {
					off += int64(len(s.bytes))
					continue
				}
				n := branchLen(s.branch.inst, s.branch.long)
				off += n
				if !s.branch.long {
					rel := offsets[s.branch.inst.Target] - off
					if !fitsInt8(rel) {
						s.branch.long = true
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Final emission with resolved displacements.
	fc := &FuncCode{BlockOffsets: offsets[:len(f.Blocks)]}
	var out []byte
	for _, row := range blocks {
		for _, s := range row {
			if s.branch == nil {
				out = append(out, s.bytes...)
				continue
			}
			in := s.branch.inst
			end := int64(len(out)) + branchLen(in, s.branch.long)
			rel := offsets[in.Target] - end
			if s.branch.long {
				if in.Op == mach.OJcc {
					out = append(out, 0x0F, 0x80+byte(in.Cond))
				} else {
					out = append(out, 0xE9)
				}
				out = append(out, byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24))
			} else {
				if in.Op == mach.OJcc {
					out = append(out, 0x70+byte(in.Cond))
				} else {
					out = append(out, 0xEB)
				}
				out = append(out, byte(rel))
			}
		}
	}
	fc.Bytes = out
	return fc, nil
}

// ModuleCode holds encoded sizes for a whole module.
type ModuleCode struct {
	// Funcs maps function name to encoded code; FuncOrder preserves
	// module order for deterministic iteration.
	Funcs     map[string]*FuncCode
	FuncOrder []string
	// Text is the total .text size (functions packed back to back, no
	// inter-function padding — matching the printed assembly, which
	// emits no alignment directives).
	Text int64
	// Rodata is the .rodata section size with per-symbol alignment.
	Rodata int64
}

// FuncSize returns the encoded size of the named function (0 if absent).
func (mc *ModuleCode) FuncSize(name string) int64 {
	if fc, ok := mc.Funcs[name]; ok {
		return fc.Size()
	}
	return 0
}

// Module encodes every function and sizes the rodata section.
func Module(m *mach.Module) (*ModuleCode, error) {
	mc := &ModuleCode{Funcs: make(map[string]*FuncCode, len(m.Funcs))}
	for _, f := range m.Funcs {
		fc, err := Func(f)
		if err != nil {
			return nil, err
		}
		mc.Funcs[f.Name] = fc
		mc.FuncOrder = append(mc.FuncOrder, f.Name)
		mc.Text += fc.Size()
	}
	mc.Rodata = m.RodataSize()
	return mc, nil
}
