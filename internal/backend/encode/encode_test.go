package encode

import (
	"bytes"
	"fmt"
	"testing"

	"rolag/internal/backend/mach"
)

// Shorthand builders for the golden table.
func r(reg mach.Reg) mach.Operand            { return mach.RegOp(reg) }
func imm(v int64) mach.Operand               { return mach.ImmOp(v) }
func mem(base mach.Reg, d int64) mach.Operand { return mach.MemOp(base, d) }
func memIdx(base, idx mach.Reg, scale int8, d int64) mach.Operand {
	return mach.MemIdxOp(base, idx, scale, d)
}
func rip(sym string, d int64) mach.Operand { return mach.SymOp(sym, d) }

func ins(op mach.Op, sz int8, src, dst mach.Operand) *mach.Inst {
	return &mach.Inst{Op: op, Sz: sz, Src: src, Dst: dst}
}

// TestGoldenEncodings pins hand-assembled byte sequences: REX
// presence and bits, ModRM/SIB shapes (rsp/rbp/r12/r13 special
// cases), disp8 vs disp32 selection, and immediate widths. Each
// expected sequence was assembled by hand from the Intel SDM tables.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		name string
		in   *mach.Inst
		want []byte
	}{
		// Integer ALU, register forms.
		{"addl %eax, %ebx", ins(mach.OAdd, 4, r(mach.RAX), r(mach.RBX)), []byte{0x01, 0xC3}},
		{"addq %rax, %rbx", ins(mach.OAdd, 8, r(mach.RAX), r(mach.RBX)), []byte{0x48, 0x01, 0xC3}},
		{"addq %r8, %r15", ins(mach.OAdd, 8, r(mach.R8), r(mach.R15)), []byte{0x4D, 0x01, 0xC7}},
		{"xorl %esi, %esi", ins(mach.OXor, 4, r(mach.RSI), r(mach.RSI)), []byte{0x31, 0xF6}},
		{"cmpq %r9, %rdi", ins(mach.OCmp, 8, r(mach.R9), r(mach.RDI)), []byte{0x4C, 0x39, 0xCF}},

		// ALU immediates: imm8 short form vs imm32.
		{"addl $5, %ebx", ins(mach.OAdd, 4, imm(5), r(mach.RBX)), []byte{0x83, 0xC3, 0x05}},
		{"addq $1000, %rbx", ins(mach.OAdd, 8, imm(1000), r(mach.RBX)), []byte{0x48, 0x81, 0xC3, 0xE8, 0x03, 0x00, 0x00}},
		{"subq $8, %rsp", ins(mach.OSub, 8, imm(8), r(mach.RSP)), []byte{0x48, 0x83, 0xEC, 0x08}},
		{"cmpl $0, %esi", ins(mach.OCmp, 4, imm(0), r(mach.RSI)), []byte{0x83, 0xFE, 0x00}},
		{"cmpb $7, %al", ins(mach.OCmp, 1, imm(7), r(mach.RAX)), []byte{0x3C, 0x07}},
		{"cmpb $7, %bl", ins(mach.OCmp, 1, imm(7), r(mach.RBX)), []byte{0x80, 0xFB, 0x07}},
		{"addl $1000, %eax", ins(mach.OAdd, 4, imm(1000), r(mach.RAX)), []byte{0x05, 0xE8, 0x03, 0x00, 0x00}},
		{"cmpq $100000, %rax", ins(mach.OCmp, 8, imm(100000), r(mach.RAX)), []byte{0x48, 0x3D, 0xA0, 0x86, 0x01, 0x00}},
		{"addl $5, %eax", ins(mach.OAdd, 4, imm(5), r(mach.RAX)), []byte{0x83, 0xC0, 0x05}},

		// Plain moves.
		{"movq %rdi, %rbx", ins(mach.OMov, 8, r(mach.RDI), r(mach.RBX)), []byte{0x48, 0x89, 0xFB}},
		{"movl $7, %eax", ins(mach.OMov, 4, imm(7), r(mach.RAX)), []byte{0xB8, 0x07, 0x00, 0x00, 0x00}},
		{"movq $-1, %rax", ins(mach.OMov, 8, imm(-1), r(mach.RAX)), []byte{0x48, 0xC7, 0xC0, 0xFF, 0xFF, 0xFF, 0xFF}},
		{"movabsq $0x123456789, %rax", &mach.Inst{Op: mach.OMovAbs, Sz: 8, Src: imm(0x123456789), Dst: r(mach.RAX)},
			[]byte{0x48, 0xB8, 0x89, 0x67, 0x45, 0x23, 0x01, 0x00, 0x00, 0x00}},
		{"movb %sil, %al", ins(mach.OMov, 1, r(mach.RSI), r(mach.RAX)), []byte{0x40, 0x88, 0xF0}},

		// Loads/stores: ModRM addressing special cases.
		{"movl (%rax), %ecx", ins(mach.OMov, 4, mem(mach.RAX, 0), r(mach.RCX)), []byte{0x8B, 0x08}},
		{"movq 8(%rsp), %rax", ins(mach.OMov, 8, mem(mach.RSP, 8), r(mach.RAX)), []byte{0x48, 0x8B, 0x44, 0x24, 0x08}},
		{"movl %edx, 16(%rbp)", ins(mach.OMov, 4, r(mach.RDX), mem(mach.RBP, 16)), []byte{0x89, 0x55, 0x10}},
		{"movq (%rbp), %rax", ins(mach.OMov, 8, mem(mach.RBP, 0), r(mach.RAX)), []byte{0x48, 0x8B, 0x45, 0x00}},
		{"movl (%r12), %eax", ins(mach.OMov, 4, mem(mach.R12, 0), r(mach.RAX)), []byte{0x41, 0x8B, 0x04, 0x24}},
		{"movq (%r13), %rax", ins(mach.OMov, 8, mem(mach.R13, 0), r(mach.RAX)), []byte{0x49, 0x8B, 0x45, 0x00}},
		{"movl (%rax,%rcx,4), %edx", ins(mach.OMov, 4, memIdx(mach.RAX, mach.RCX, 4, 0), r(mach.RDX)), []byte{0x8B, 0x14, 0x88}},
		{"movq 128(%rax), %rbx", ins(mach.OMov, 8, mem(mach.RAX, 128), r(mach.RBX)), []byte{0x48, 0x8B, 0x98, 0x80, 0x00, 0x00, 0x00}},
		{"movb %al, (%rdx)", ins(mach.OMov, 1, r(mach.RAX), mem(mach.RDX, 0)), []byte{0x88, 0x02}},
		{"movl tbl(%rip), %eax", ins(mach.OMov, 4, rip("tbl", 0), r(mach.RAX)), []byte{0x8B, 0x05, 0x00, 0x00, 0x00, 0x00}},
		{"movq $3, (%rax)", ins(mach.OMov, 8, imm(3), mem(mach.RAX, 0)), []byte{0x48, 0xC7, 0x00, 0x03, 0x00, 0x00, 0x00}},
		{"movl $1, 4(%rsp)", ins(mach.OMov, 4, imm(1), mem(mach.RSP, 4)), []byte{0xC7, 0x44, 0x24, 0x04, 0x01, 0x00, 0x00, 0x00}},
		{"movw %ax, (%rdi)", ins(mach.OMov, 2, r(mach.RAX), mem(mach.RDI, 0)), []byte{0x66, 0x89, 0x07}},

		// lea.
		{"leaq 8(%rsp), %rdi", ins(mach.OLea, 8, mem(mach.RSP, 8), r(mach.RDI)), []byte{0x48, 0x8D, 0x7C, 0x24, 0x08}},
		{"leaq tbl(%rip), %rax", ins(mach.OLea, 8, rip("tbl", 0), r(mach.RAX)), []byte{0x48, 0x8D, 0x05, 0x00, 0x00, 0x00, 0x00}},

		// Multiply / divide / shifts.
		{"imulq %rbx, %rax", ins(mach.OImul, 8, r(mach.RBX), r(mach.RAX)), []byte{0x48, 0x0F, 0xAF, 0xC3}},
		{"imull $10, %ecx, %ecx", ins(mach.OImul, 4, imm(10), r(mach.RCX)), []byte{0x6B, 0xC9, 0x0A}},
		{"imulq $1000, %rdx, %rdx", ins(mach.OImul, 8, imm(1000), r(mach.RDX)), []byte{0x48, 0x69, 0xD2, 0xE8, 0x03, 0x00, 0x00}},
		{"shlq $3, %rbx", ins(mach.OShl, 8, imm(3), r(mach.RBX)), []byte{0x48, 0xC1, 0xE3, 0x03}},
		{"shlq $1, %rbx", ins(mach.OShl, 8, imm(1), r(mach.RBX)), []byte{0x48, 0xD1, 0xE3}},
		{"sarl %cl, %ebx", ins(mach.OSar, 4, r(mach.RCX), r(mach.RBX)), []byte{0xD3, 0xFB}},
		{"cltd", &mach.Inst{Op: mach.OCwd, Sz: 4}, []byte{0x99}},
		{"cqto", &mach.Inst{Op: mach.OCwd, Sz: 8}, []byte{0x48, 0x99}},
		{"idivl %ecx", &mach.Inst{Op: mach.OIdiv, Sz: 4, Src: r(mach.RCX)}, []byte{0xF7, 0xF9}},
		{"divq %rsi", &mach.Inst{Op: mach.ODiv, Sz: 8, Src: r(mach.RSI)}, []byte{0x48, 0xF7, 0xF6}},

		// setcc / cmovcc: byte-register REX rules.
		{"setne %al", &mach.Inst{Op: mach.OSet, Cond: mach.CondNE, Dst: r(mach.RAX)}, []byte{0x0F, 0x95, 0xC0}},
		{"setl %bpl", &mach.Inst{Op: mach.OSet, Cond: mach.CondL, Dst: r(mach.RBP)}, []byte{0x40, 0x0F, 0x9C, 0xC5}},
		{"setb %r12b", &mach.Inst{Op: mach.OSet, Cond: mach.CondB, Dst: r(mach.R12)}, []byte{0x41, 0x0F, 0x92, 0xC4}},
		{"cmovne %eax, %ebx", &mach.Inst{Op: mach.OCmov, Sz: 4, Cond: mach.CondNE, Src: r(mach.RAX), Dst: r(mach.RBX)}, []byte{0x0F, 0x45, 0xD8}},
		{"cmovg %rcx, %rax", &mach.Inst{Op: mach.OCmov, Sz: 8, Cond: mach.CondG, Src: r(mach.RCX), Dst: r(mach.RAX)}, []byte{0x48, 0x0F, 0x4F, 0xC1}},

		// Widening moves.
		{"movzbl %al, %eax", &mach.Inst{Op: mach.OMovzx, Sz: 4, SrcSz: 1, Src: r(mach.RAX), Dst: r(mach.RAX)}, []byte{0x0F, 0xB6, 0xC0}},
		{"movzbl (%rdi), %eax", &mach.Inst{Op: mach.OMovzx, Sz: 4, SrcSz: 1, Src: mem(mach.RDI, 0), Dst: r(mach.RAX)}, []byte{0x0F, 0xB6, 0x07}},
		{"movswq %ax, %rbx", &mach.Inst{Op: mach.OMovsx, Sz: 8, SrcSz: 2, Src: r(mach.RAX), Dst: r(mach.RBX)}, []byte{0x48, 0x0F, 0xBF, 0xD8}},
		{"movslq %edi, %rax", &mach.Inst{Op: mach.OMovsx, Sz: 8, SrcSz: 4, Src: r(mach.RDI), Dst: r(mach.RAX)}, []byte{0x48, 0x63, 0xC7}},

		// test.
		{"testq %rax, %rax", ins(mach.OTest, 8, r(mach.RAX), r(mach.RAX)), []byte{0x48, 0x85, 0xC0}},
		{"testb %r10b, %r10b", ins(mach.OTest, 1, r(mach.R10), r(mach.R10)), []byte{0x45, 0x84, 0xD2}},

		// Stack ops, call, ret.
		{"pushq %rbx", &mach.Inst{Op: mach.OPush, Src: r(mach.RBX)}, []byte{0x53}},
		{"pushq %r12", &mach.Inst{Op: mach.OPush, Src: r(mach.R12)}, []byte{0x41, 0x54}},
		{"popq %rbp", &mach.Inst{Op: mach.OPop, Dst: r(mach.RBP)}, []byte{0x5D}},
		{"call f", &mach.Inst{Op: mach.OCall, Src: mach.Operand{Kind: mach.KMem, Sym: "f"}}, []byte{0xE8, 0x00, 0x00, 0x00, 0x00}},
		{"ret", &mach.Inst{Op: mach.ORet}, []byte{0xC3}},

		// SSE scalar.
		{"movss (%rax), %xmm0", ins(mach.OMovss, 4, mem(mach.RAX, 0), r(mach.XMM0)), []byte{0xF3, 0x0F, 0x10, 0x00}},
		{"movsd %xmm1, 8(%rsp)", ins(mach.OMovsd, 8, r(mach.XMM1), mem(mach.RSP, 8)), []byte{0xF2, 0x0F, 0x11, 0x4C, 0x24, 0x08}},
		{"movsd %xmm0, %xmm1", ins(mach.OMovsd, 8, r(mach.XMM0), r(mach.XMM1)), []byte{0xF2, 0x0F, 0x10, 0xC8}},
		{"addsd %xmm1, %xmm0", ins(mach.OAddsd, 8, r(mach.XMM1), r(mach.XMM0)), []byte{0xF2, 0x0F, 0x58, 0xC1}},
		{"mulss %xmm8, %xmm2", ins(mach.OMulss, 4, r(mach.XMM8), r(mach.XMM2)), []byte{0xF3, 0x41, 0x0F, 0x59, 0xD0}},
		{"ucomisd %xmm1, %xmm0", ins(mach.OUcomisd, 8, r(mach.XMM1), r(mach.XMM0)), []byte{0x66, 0x0F, 0x2E, 0xC1}},
		{"xorps %xmm3, %xmm3", ins(mach.OXorps, 4, r(mach.XMM3), r(mach.XMM3)), []byte{0x0F, 0x57, 0xDB}},
		{"movq %rax, %xmm0", ins(mach.OMovq, 8, r(mach.RAX), r(mach.XMM0)), []byte{0x66, 0x48, 0x0F, 0x6E, 0xC0}},
		{"movd %xmm1, %ecx", ins(mach.OMovd, 4, r(mach.XMM1), r(mach.RCX)), []byte{0x66, 0x0F, 0x7E, 0xC9}},
		{"cvtss2sd %xmm0, %xmm0", ins(mach.OCvtss2sd, 8, r(mach.XMM0), r(mach.XMM0)), []byte{0xF3, 0x0F, 0x5A, 0xC0}},
		{"cvtsi2sd %eax, %xmm0", &mach.Inst{Op: mach.OCvtsi2sd, SrcSz: 4, Src: r(mach.RAX), Dst: r(mach.XMM0)}, []byte{0xF2, 0x0F, 0x2A, 0xC0}},
		{"cvtsi2sdq %rax, %xmm0", &mach.Inst{Op: mach.OCvtsi2sd, SrcSz: 8, Src: r(mach.RAX), Dst: r(mach.XMM0)}, []byte{0xF2, 0x48, 0x0F, 0x2A, 0xC0}},
		{"cvttsd2si %xmm0, %rax", &mach.Inst{Op: mach.OCvttsd2si, Sz: 8, Src: r(mach.XMM0), Dst: r(mach.RAX)}, []byte{0xF2, 0x48, 0x0F, 0x2C, 0xC0}},
	}
	for _, tc := range cases {
		got, err := Inst(tc.in)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("%s:\n got  % X\n want % X", tc.name, got, tc.want)
		}
	}
}

// TestBranchRelaxation pins rel8 selection for short displacements and
// rel32 growth once a branch can no longer reach.
func TestBranchRelaxation(t *testing.T) {
	// Short backward jump over one nop: 90; EB FD.
	f := &mach.Func{Name: "f", Blocks: []*mach.Block{
		{Name: "a", Insts: []*mach.Inst{{Op: mach.ONop}}},
		{Name: "b", Insts: []*mach.Inst{{Op: mach.OJmp, Target: 0}}},
	}}
	fc, err := Func(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0x90, 0xEB, 0xFD}; !bytes.Equal(fc.Bytes, want) {
		t.Fatalf("short loop: got % X want % X", fc.Bytes, want)
	}

	// 128 nops force the conditional back-edge out of rel8 range.
	pad := make([]*mach.Inst, 128)
	for i := range pad {
		pad[i] = &mach.Inst{Op: mach.ONop}
	}
	g := &mach.Func{Name: "g", Blocks: []*mach.Block{
		{Name: "a", Insts: pad},
		{Name: "b", Insts: []*mach.Inst{{Op: mach.OJcc, Cond: mach.CondE, Target: 0}}},
	}}
	gc, err := Func(g)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Size() != 128+6 {
		t.Fatalf("long jcc: total %d, want 134", gc.Size())
	}
	tail := gc.Bytes[128:]
	// rel = 0 - 134 = -134 = 0xFFFFFF7A.
	if want := []byte{0x0F, 0x84, 0x7A, 0xFF, 0xFF, 0xFF}; !bytes.Equal(tail, want) {
		t.Fatalf("long jcc: got % X want % X", tail, want)
	}

	// A forward jump of exactly 127 bytes stays rel8; 128 grows.
	mk := func(n int) int64 {
		pad := make([]*mach.Inst, n)
		for i := range pad {
			pad[i] = &mach.Inst{Op: mach.ONop}
		}
		h := &mach.Func{Name: "h", Blocks: []*mach.Block{
			{Name: "a", Insts: []*mach.Inst{{Op: mach.OJmp, Target: 2}}},
			{Name: "mid", Insts: pad},
			{Name: "end", Insts: []*mach.Inst{{Op: mach.ORet}}},
		}}
		hc, err := Func(h)
		if err != nil {
			t.Fatal(err)
		}
		return hc.Size()
	}
	if got := mk(127); got != 2+127+1 {
		t.Errorf("127-byte forward jump: size %d, want %d (rel8)", got, 2+127+1)
	}
	if got := mk(128); got != 5+128+1 {
		t.Errorf("128-byte forward jump: size %d, want %d (rel32)", got, 5+128+1)
	}
}

// TestRodataSize pins the aligned .rodata layout.
func TestRodataSize(t *testing.T) {
	m := &mach.Module{Name: "t", Rodata: []mach.RodataSym{
		{Name: "a", Align: 1, Data: make([]byte, 3)},
		{Name: "b", Align: 8, Data: make([]byte, 10)},
		{Name: "c", Align: 4, Data: make([]byte, 4)},
	}}
	// 3 bytes, pad to 8, +10 = 18, pad to 20, +4 = 24.
	if got := m.RodataSize(); got != 24 {
		t.Fatalf("rodata size %d, want 24", got)
	}
	mc, err := Module(m)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Rodata != 24 {
		t.Fatalf("ModuleCode rodata %d, want 24", mc.Rodata)
	}
}

// TestUnsupportedShapesError ensures the encoder fails loudly instead
// of guessing on shapes the selector never emits.
func TestUnsupportedShapesError(t *testing.T) {
	bad := []*mach.Inst{
		ins(mach.OMov, 8, mem(mach.RAX, 0), mem(mach.RBX, 0)),      // mem->mem
		ins(mach.OLea, 8, r(mach.RAX), r(mach.RBX)),                // lea from reg
		{Op: mach.OMov, Sz: 8, Src: imm(1 << 40), Dst: r(mach.RAX)}, // needs movabs
		ins(mach.OMov, 8, mem(mach.RAX, 0), memIdx(mach.RBX, mach.RSP, 1, 0)), // rsp index
	}
	for i, in := range bad {
		if _, err := Inst(in); err == nil {
			t.Errorf("case %d (%v): expected an error", i, fmt.Sprintf("%+v", in))
		}
	}
}
