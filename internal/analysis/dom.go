package analysis

import "rolag/internal/ir"

// DomInfo holds dominator-tree information for one function.
type DomInfo struct {
	Func *ir.Func
	// IDom maps each block (except the entry) to its immediate
	// dominator.
	IDom map[*ir.Block]*ir.Block
	// Children is the dominator tree: the blocks immediately dominated
	// by each block.
	Children map[*ir.Block][]*ir.Block
	// Frontier is the dominance frontier of each block.
	Frontier map[*ir.Block][]*ir.Block

	domSets map[*ir.Block]map[*ir.Block]bool
}

// ComputeDom computes dominators, the dominator tree and dominance
// frontiers for f using the classic iterative data-flow formulation
// (adequate at the CFG sizes this project handles).
func ComputeDom(f *ir.Func) *DomInfo {
	entry := f.Entry()
	all := f.Blocks
	dom := make(map[*ir.Block]map[*ir.Block]bool, len(all))
	for _, b := range all {
		if b == entry {
			dom[b] = map[*ir.Block]bool{b: true}
			continue
		}
		full := make(map[*ir.Block]bool, len(all))
		for _, x := range all {
			full[x] = true
		}
		dom[b] = full
	}
	preds := make(map[*ir.Block][]*ir.Block)
	for _, b := range all {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range all {
			if b == entry {
				continue
			}
			var inter map[*ir.Block]bool
			for _, p := range preds[b] {
				if inter == nil {
					inter = make(map[*ir.Block]bool, len(dom[p]))
					for k := range dom[p] {
						inter[k] = true
					}
					continue
				}
				for k := range inter {
					if !dom[p][k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = make(map[*ir.Block]bool)
			}
			inter[b] = true
			if !sameSet(inter, dom[b]) {
				dom[b] = inter
				changed = true
			}
		}
	}

	di := &DomInfo{
		Func:     f,
		IDom:     make(map[*ir.Block]*ir.Block),
		Children: make(map[*ir.Block][]*ir.Block),
		Frontier: make(map[*ir.Block][]*ir.Block),
		domSets:  dom,
	}
	// idom(b): the dominator d != b dominated by every other strict
	// dominator of b.
	for _, b := range all {
		if b == entry {
			continue
		}
		var idom *ir.Block
		for d := range dom[b] {
			if d == b {
				continue
			}
			candidate := true
			for e := range dom[b] {
				if e == b || e == d {
					continue
				}
				if !dom[d][e] {
					candidate = false
					break
				}
			}
			if candidate {
				idom = d
				break
			}
		}
		if idom != nil {
			di.IDom[b] = idom
			di.Children[idom] = append(di.Children[idom], b)
		}
	}
	// Dominance frontiers.
	for _, b := range all {
		if len(preds[b]) < 2 {
			continue
		}
		for _, p := range preds[b] {
			runner := p
			for runner != nil && runner != di.IDom[b] {
				di.Frontier[runner] = appendUnique(di.Frontier[runner], b)
				if runner == entry {
					break
				}
				runner = di.IDom[runner]
			}
		}
	}
	return di
}

// Dominates reports whether a dominates b.
func (di *DomInfo) Dominates(a, b *ir.Block) bool {
	return di.domSets[b][a]
}

func sameSet(a, b map[*ir.Block]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func appendUnique(s []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}
