package analysis

import "rolag/internal/ir"

// MayAlias conservatively reports whether two pointer values may address
// overlapping memory. It understands three cheap disambiguation facts:
//
//   - distinct allocas never alias;
//   - distinct globals never alias;
//   - geps off the same base with different constant index vectors of the
//     same shape do not alias;
//   - an alloca never aliases a global.
//
// Everything else may alias.
func MayAlias(a, b ir.Value) bool {
	ba, offa, oka := baseAndOffset(a)
	bb, offb, okb := baseAndOffset(b)
	if roota, rootb := ultimateBase(a), ultimateBase(b); roota != nil && rootb != nil {
		if !sameClass(roota, rootb) {
			return false
		}
		if roota != rootb && identified(roota) && identified(rootb) {
			return false
		}
	}
	if oka && okb && ba == bb {
		return offa == offb
	}
	return true
}

// Conflict reports whether two instructions have a memory conflict that
// forbids reordering them: both access memory, at least one writes, and
// the accessed locations may alias. Calls conflict with everything that
// touches memory.
func Conflict(a, b *ir.Instr) bool {
	if !a.HasMemoryEffect() || !b.HasMemoryEffect() {
		return false
	}
	if !a.MayWriteMemory() && !b.MayWriteMemory() {
		return false
	}
	if a.Op == ir.OpCall || b.Op == ir.OpCall {
		return true
	}
	return MayAlias(addrOf(a), addrOf(b))
}

func addrOf(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpLoad:
		return in.Operand(0)
	case ir.OpStore:
		return in.Operand(1)
	}
	return nil
}

// baseAndOffset peels a gep with all-constant indices down to its base
// pointer and a constant byte offset.
func baseAndOffset(v ir.Value) (base ir.Value, offset int64, ok bool) {
	offset = 0
	for {
		g, isGep := v.(*ir.Instr)
		if !isGep || g.Op != ir.OpGEP {
			return v, offset, true
		}
		off, constant := gepConstOffset(g)
		if !constant {
			return nil, 0, false
		}
		offset += off
		v = g.Operand(0)
	}
}

// gepConstOffset computes the byte offset of a gep whose indices are all
// constants.
func gepConstOffset(g *ir.Instr) (int64, bool) {
	pt := g.Operand(0).Type().(ir.PointerType)
	cur := ir.Type(pt.Elem)
	var off int64
	for i, idx := range g.Operands[1:] {
		c, ok := ir.IntValue(idx)
		if !ok {
			return 0, false
		}
		if i == 0 {
			off += c * int64(cur.Size())
			continue
		}
		switch t := cur.(type) {
		case ir.ArrayType:
			off += c * int64(t.Elem.Size())
			cur = t.Elem
		case *ir.StructType:
			off += int64(t.FieldOffset(int(c)))
			cur = t.Fields[c]
		default:
			return 0, false
		}
	}
	return off, true
}

// ultimateBase walks through geps and bitcasts to the root pointer.
func ultimateBase(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v
		}
		switch in.Op {
		case ir.OpGEP, ir.OpBitcast:
			v = in.Operand(0)
		default:
			return v
		}
	}
}

// identified reports whether v is an identified memory object (alloca or
// global) whose address is distinct from every other identified object.
func identified(v ir.Value) bool {
	if _, ok := v.(*ir.Global); ok {
		return true
	}
	if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpAlloca {
		return true
	}
	return false
}

// sameClass reports whether the two roots could be the same object class;
// an alloca can never alias a global.
func sameClass(a, b ir.Value) bool {
	_, ga := a.(*ir.Global)
	_, gb := b.(*ir.Global)
	ia, oka := a.(*ir.Instr)
	ib, okb := b.(*ir.Instr)
	aAlloca := oka && ia.Op == ir.OpAlloca
	bAlloca := okb && ib.Op == ir.OpAlloca
	if (ga && bAlloca) || (gb && aAlloca) {
		return false
	}
	return true
}
