// Package analysis provides the loop and dependence analyses shared by
// the unroller, the loop-rerolling baseline and RoLAG: detection of
// single-block natural loops with their induction variables, and a
// conservative memory-dependence test used by scheduling.
package analysis

import (
	"rolag/internal/ir"
)

// Loop describes a single-block natural loop of the canonical shape the
// paper's §II works with:
//
//	pre:
//	  ...
//	  br %loop
//	loop:
//	  %iv = phi [init, %pre], [%ivn, %loop]
//	  ...body...
//	  %ivn = add %iv, step
//	  %cmp = icmp <pred> %ivn, %bound
//	  condbr %cmp, %loop, %exit      (or the converse)
//	exit:
type Loop struct {
	Header    *ir.Block // the single loop block
	Preheader *ir.Block
	Exit      *ir.Block
	IV        *ir.Instr // the basic induction variable phi
	Init      ir.Value  // initial value of the IV
	Next      *ir.Instr // the add producing the next IV value
	Step      int64     // loop-invariant step (constant)
	Cmp       *ir.Instr // the latch comparison
	Bound     ir.Value  // the comparison bound
	CondBr    *ir.Instr // the latch branch
	// BackedgeOnTrue reports whether the condbr loops when the
	// comparison is true.
	BackedgeOnTrue bool
}

// TripCount returns the number of iterations if it is a compile-time
// constant, and whether it is known. Only the canonical
// "iv from init to bound by step with slt/sgt/ne" shapes are handled.
func (l *Loop) TripCount() (int64, bool) {
	init, ok1 := ir.IntValue(l.Init)
	bound, ok2 := ir.IntValue(l.Bound)
	if !ok1 || !ok2 || l.Step == 0 {
		return 0, false
	}
	var dist int64
	switch l.Cmp.Pred {
	case ir.PredSLT, ir.PredULT:
		dist = bound - init
	case ir.PredSLE, ir.PredULE:
		dist = bound - init + 1
	case ir.PredSGT, ir.PredUGT:
		dist = init - bound
	case ir.PredSGE, ir.PredUGE:
		dist = init - bound + 1
	case ir.PredNE:
		dist = bound - init
		if l.Step < 0 {
			dist = -dist
		}
	default:
		return 0, false
	}
	step := l.Step
	if step < 0 {
		step = -step
	}
	if dist <= 0 {
		return 0, true
	}
	if dist%step != 0 && l.Cmp.Pred == ir.PredNE {
		return 0, false // would not terminate cleanly
	}
	return (dist + step - 1) / step, true
}

// FindLoops returns all single-block loops in f in block order.
func FindLoops(f *ir.Func) []*Loop {
	var loops []*Loop
	for _, b := range f.Blocks {
		if l := MatchLoop(f, b); l != nil {
			loops = append(loops, l)
		}
	}
	return loops
}

// MatchLoop attempts to interpret block b as the header of a canonical
// single-block loop, returning nil if the shape does not match.
func MatchLoop(f *ir.Func, b *ir.Block) *Loop {
	term := b.Terminator()
	if term == nil || term.Op != ir.OpCondBr {
		return nil
	}
	var exit *ir.Block
	backOnTrue := false
	switch {
	case term.Blocks[0] == b && term.Blocks[1] != b:
		exit, backOnTrue = term.Blocks[1], true
	case term.Blocks[1] == b && term.Blocks[0] != b:
		exit, backOnTrue = term.Blocks[0], false
	default:
		return nil
	}
	preds := f.Preds(b)
	var preheader *ir.Block
	for _, p := range preds {
		if p == b {
			continue
		}
		if preheader != nil {
			return nil // multiple entries
		}
		preheader = p
	}
	if preheader == nil {
		return nil
	}
	cmp, ok := term.Operand(0).(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.Parent != b {
		return nil
	}

	// Find a basic induction variable: a phi whose backedge value is
	// phi+const and which feeds the latch comparison (directly or via
	// the increment).
	for _, phi := range b.Phis() {
		backVal, ok := phi.PhiIncoming(b)
		if !ok {
			continue
		}
		initVal, ok := phi.PhiIncoming(preheader)
		if !ok {
			continue
		}
		next, ok := backVal.(*ir.Instr)
		if !ok || (next.Op != ir.OpAdd && next.Op != ir.OpSub) || next.Parent != b {
			continue
		}
		var step int64
		if next.Operand(0) == phi {
			c, ok := ir.IntValue(next.Operand(1))
			if !ok {
				continue
			}
			step = c
		} else if next.Operand(1) == phi && next.Op == ir.OpAdd {
			c, ok := ir.IntValue(next.Operand(0))
			if !ok {
				continue
			}
			step = c
		} else {
			continue
		}
		if next.Op == ir.OpSub {
			step = -step
		}
		// The comparison must involve the IV or its increment.
		var bound ir.Value
		if cmp.Operand(0) == next || cmp.Operand(0) == phi {
			bound = cmp.Operand(1)
		} else if cmp.Operand(1) == next || cmp.Operand(1) == phi {
			bound = cmp.Operand(0)
		} else {
			continue
		}
		return &Loop{
			Header:         b,
			Preheader:      preheader,
			Exit:           exit,
			IV:             phi,
			Init:           initVal,
			Next:           next,
			Step:           step,
			Cmp:            cmp,
			Bound:          bound,
			CondBr:         term,
			BackedgeOnTrue: backOnTrue,
		}
	}
	return nil
}
