package analysis_test

import (
	"testing"

	"rolag/internal/analysis"
	"rolag/internal/cc"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "a")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestMatchLoopCanonical(t *testing.T) {
	m := lower(t, `
void f(int *a) {
	for (int i = 0; i < 64; i++) a[i] = i;
}`)
	f := m.FindFunc("f")
	loops := analysis.FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1\n%s", len(loops), f)
	}
	l := loops[0]
	if l.Step != 1 {
		t.Errorf("step = %d", l.Step)
	}
	if init, _ := ir.IntValue(l.Init); init != 0 {
		t.Errorf("init = %v", l.Init)
	}
	trip, ok := l.TripCount()
	if !ok || trip != 64 {
		t.Errorf("trip = %d/%v, want 64", trip, ok)
	}
	if l.Preheader == nil || l.Exit == nil || l.IV == nil || l.Next == nil {
		t.Error("loop components missing")
	}
}

func TestTripCounts(t *testing.T) {
	cases := []struct {
		src  string
		trip int64
		ok   bool
	}{
		{`void f(int *a) { for (int i = 0; i < 10; i++) a[i] = 1; }`, 10, true},
		{`void f(int *a) { for (int i = 0; i <= 10; i++) a[i] = 1; }`, 11, true},
		{`void f(int *a) { for (int i = 0; i < 10; i += 3) a[i] = 1; }`, 4, true},
		{`void f(int *a) { for (int i = 9; i >= 0; i--) a[i] = 1; }`, 10, true},
		{`void f(int *a) { for (int i = 20; i > 10; i -= 2) a[i] = 1; }`, 5, true},
		{`void f(int *a, int n) { for (int i = 0; i < n; i++) a[i] = 1; }`, 0, false},
	}
	for i, c := range cases {
		m := lower(t, c.src)
		loops := analysis.FindLoops(m.FindFunc("f"))
		if len(loops) != 1 {
			t.Errorf("case %d: %d loops", i, len(loops))
			continue
		}
		trip, ok := loops[0].TripCount()
		if ok != c.ok || (ok && trip != c.trip) {
			t.Errorf("case %d: trip = %d/%v, want %d/%v", i, trip, ok, c.trip, c.ok)
		}
	}
}

func TestMatchLoopRejectsMultiBlockBody(t *testing.T) {
	m := lower(t, `
void f(int *a, int n) {
	for (int i = 0; i < n; i++) {
		if (a[i] > 0) a[i] = 0;
	}
}`)
	f := m.FindFunc("f")
	for _, l := range analysis.FindLoops(f) {
		// Any loop found must be single-block by construction; the outer
		// loop with the if inside must not match.
		if len(l.Header.Phis()) > 0 && l.Header.Name == "loop.body" {
			for _, in := range l.Header.Instrs {
				if in.Op == ir.OpCondBr && in.Blocks[0] != l.Header && in.Blocks[1] != l.Header {
					t.Error("matched a loop whose body branches elsewhere")
				}
			}
		}
	}
}

func TestDominators(t *testing.T) {
	m := lower(t, `
int f(int a) {
	int r = 0;
	if (a > 0) { r = 1; } else { r = 2; }
	return r;
}`)
	f := m.FindFunc("f")
	di := analysis.ComputeDom(f)
	entry := f.Entry()
	for _, b := range f.Blocks {
		if !di.Dominates(entry, b) {
			t.Errorf("entry must dominate %s", b.Name)
		}
	}
	// The join block is in the frontier of both arms.
	var thenB *ir.Block
	for _, b := range f.Blocks {
		if b.Name == "if.then" {
			thenB = b
		}
	}
	if thenB != nil {
		fr := di.Frontier[thenB]
		if len(fr) != 1 {
			t.Errorf("frontier of if.then has %d blocks", len(fr))
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	m := lower(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	return s;
}`)
	f := m.FindFunc("f")
	di := analysis.ComputeDom(f)
	var loop, exit *ir.Block
	for _, b := range f.Blocks {
		switch b.Name {
		case "loop.body":
			loop = b
		case "loop.exit":
			exit = b
		}
	}
	if loop == nil || exit == nil {
		t.Fatalf("blocks not found:\n%s", f)
	}
	if di.Dominates(loop, exit) {
		t.Error("rotated loop body must not dominate the exit (guard bypasses it)")
	}
	if !di.Dominates(f.Entry(), loop) {
		t.Error("entry dominates the loop")
	}
	if di.IDom[loop] != f.Entry() {
		t.Errorf("idom(loop) = %v", di.IDom[loop])
	}
}

func buildMemFunc(t *testing.T) (*ir.Func, *ir.Builder) {
	m := ir.NewModule("mem")
	f := m.NewFunc("f", ir.Void,
		&ir.Param{Name: "p", Typ: ir.Ptr(ir.I32)},
		&ir.Param{Name: "q", Typ: ir.Ptr(ir.I32)})
	b := f.NewBlock("entry")
	return f, ir.NewBuilder(b)
}

func TestMayAliasRules(t *testing.T) {
	f, bd := buildMemFunc(t)
	p, q := f.Params[0], f.Params[1]
	a1 := bd.Alloca(ir.I32, nil, "a1")
	a2 := bd.Alloca(ir.I32, nil, "a2")
	g := f.Parent.NewGlobal("g", ir.ArrayOf(8, ir.I32), nil)

	gp0 := bd.GEP(p, ir.ConstInt(ir.I64, 0))
	gp1 := bd.GEP(p, ir.ConstInt(ir.I64, 1))
	gg0 := bd.GEP(g, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0))
	gg1 := bd.GEP(g, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 1))
	bd.Ret(nil)

	cases := []struct {
		a, b ir.Value
		want bool
		desc string
	}{
		{a1, a2, false, "distinct allocas"},
		{a1, a1, true, "same alloca"},
		{a1, g, false, "alloca vs global"},
		// Conservative: an alloca whose address escapes could be
		// reachable through an unknown pointer, so this stays "may".
		{a1, p, true, "alloca vs unknown pointer (conservative)"},
		{p, q, true, "two unknown params may alias"},
		{gp0, gp1, false, "same base, different constant offsets"},
		{gp0, p, true, "offset 0 aliases the base"},
		{gg0, gg1, false, "global elements 0 and 1"},
		{gg0, q, true, "global element vs unknown pointer"},
	}
	for _, c := range cases {
		if got := analysis.MayAlias(c.a, c.b); got != c.want {
			t.Errorf("%s: MayAlias = %v, want %v", c.desc, got, c.want)
		}
	}
}

func TestConflict(t *testing.T) {
	f, bd := buildMemFunc(t)
	p, q := f.Params[0], f.Params[1]
	ld := bd.Load(p)
	st := bd.Store(ld, q)
	ld2 := bd.Load(q)
	add := bd.Add(ld, ld2)
	ext := f.Parent.NewDecl("ext", ir.Void)
	call := bd.Call(ext)
	pure := f.Parent.NewDecl("pure_fn", ir.I32)
	pure.ReadOnly = true
	pcall := bd.Call(pure)
	bd.Ret(nil)
	_ = add

	if analysis.Conflict(ld, ld2) {
		t.Error("two loads never conflict")
	}
	if !analysis.Conflict(ld, st) {
		t.Error("load p vs store q may conflict (unknown pointers)")
	}
	if !analysis.Conflict(st, call) {
		t.Error("store vs opaque call conflicts")
	}
	if analysis.Conflict(ld, pcall) {
		t.Error("load vs read-only call does not conflict")
	}
	if analysis.Conflict(add, st) {
		t.Error("pure arithmetic never conflicts")
	}
}
