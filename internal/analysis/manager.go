package analysis

import (
	"fmt"

	"rolag/internal/ir"
)

// Manager caches per-function analyses so the optimization hot paths
// (seed collection, alignment, scheduling, codegen, cost modelling,
// DCE/CSE) stop recomputing use-def chains and position indexes on
// every query. Results are memoized per *ir.Func and stay valid until a
// pass mutates the function and calls Invalidate.
//
// A Manager is NOT safe for concurrent use: the parallel pipeline gives
// every function worker its own Manager, mirroring how each worker owns
// the functions it mutates.
type Manager struct {
	infos map[*ir.Func]*FuncInfo
	// nocache forces every Info call to return a fresh, empty FuncInfo,
	// turning all cached queries into recomputations. Used to validate
	// the invalidation contract: a cached and an uncached pipeline must
	// produce byte-identical IR.
	nocache bool
}

// NewManager returns an empty analysis cache.
func NewManager() *Manager {
	return &Manager{infos: make(map[*ir.Func]*FuncInfo)}
}

// NewUncachedManager returns a Manager that never reuses an analysis:
// each Info call starts blank. It exists so differential tests can
// compare cached and uncached pipelines.
func NewUncachedManager() *Manager {
	return &Manager{infos: make(map[*ir.Func]*FuncInfo), nocache: true}
}

// Info returns the (lazily computed) analyses for f.
func (am *Manager) Info(f *ir.Func) *FuncInfo {
	if am.nocache {
		return &FuncInfo{f: f}
	}
	fi, ok := am.infos[f]
	if !ok {
		fi = &FuncInfo{f: f}
		am.infos[f] = fi
	}
	return fi
}

// Invalidate drops every cached analysis for f. Passes must call it
// (directly or through their pipeline) after mutating f; the next query
// recomputes from the new IR.
func (am *Manager) Invalidate(f *ir.Func) {
	delete(am.infos, f)
}

// InvalidateAll drops the whole cache.
func (am *Manager) InvalidateAll() {
	clear(am.infos)
}

// FuncInfo holds the cached analyses of one function. Every accessor
// computes on first use and memoizes; the struct is invalidated as a
// whole (the analyses are cheap relative to the queries they serve, and
// fine-grained dirty tracking is not worth the bookkeeping).
type FuncInfo struct {
	f     *ir.Func
	users map[ir.Value][]*ir.Instr
	index map[*ir.Instr]int
	dom   *DomInfo
	intern *Interner
}

// Func returns the function this info describes.
func (fi *FuncInfo) Func() *ir.Func { return fi.f }

// Users returns the function's def-use chains (ir.Func.Users), computed
// once. Callers must not mutate the map.
func (fi *FuncInfo) Users() map[ir.Value][]*ir.Instr {
	if fi.users == nil {
		fi.users = fi.f.Users()
	}
	return fi.users
}

// Index returns a map from every instruction to its position within its
// own block. Positions of instructions in different blocks are not
// comparable. Callers must not mutate the map.
func (fi *FuncInfo) Index() map[*ir.Instr]int {
	if fi.index == nil {
		n := 0
		for _, b := range fi.f.Blocks {
			n += len(b.Instrs)
		}
		fi.index = make(map[*ir.Instr]int, n)
		for _, b := range fi.f.Blocks {
			for i, in := range b.Instrs {
				fi.index[in] = i
			}
		}
	}
	return fi.index
}

// Dom returns the function's dominator-tree information, computed once.
func (fi *FuncInfo) Dom() *DomInfo {
	if fi.dom == nil {
		fi.dom = ComputeDom(fi.f)
	}
	return fi.dom
}

// Interner returns the function's value-interning table, shared by all
// alignment-graph builds of the function so group keys are tiny integer
// sequences instead of formatted strings.
func (fi *FuncInfo) Interner() *Interner {
	if fi.intern == nil {
		fi.intern = NewInterner()
	}
	return fi.intern
}

// Interner assigns small dense ids to IR values. Named values intern by
// identity; constants intern by content (type and literal), so
// structurally equal constants — e.g. the index sequence 0..n appearing
// under several parents — receive one id and hash-cons to the same
// group key. Ids are stable for the Interner's lifetime; an Interner
// survives function mutation because ids only accumulate (a stale id
// for a deleted value is unreachable, not wrong).
type Interner struct {
	ids    map[ir.Value]uint32
	consts map[string]uint32
	next   uint32
}

// NewInterner returns an empty interning table.
func NewInterner() *Interner {
	return &Interner{
		ids:    make(map[ir.Value]uint32),
		consts: make(map[string]uint32),
	}
}

// ID returns the dense id for v, allocating one on first sight.
func (it *Interner) ID(v ir.Value) uint32 {
	if id, ok := it.ids[v]; ok {
		return id
	}
	var id uint32
	if c, ok := v.(ir.Const); ok {
		// Content key: structurally equal constants share an id even
		// when they are distinct Go objects.
		k := fmt.Sprintf("%s\x00%s", c.Type(), c.Ident())
		if cid, ok := it.consts[k]; ok {
			it.ids[v] = cid
			return cid
		}
		id = it.next
		it.next++
		it.consts[k] = id
	} else {
		id = it.next
		it.next++
	}
	it.ids[v] = id
	return id
}

// AppendKey appends the ids of vals to dst in little-endian byte order,
// returning the extended slice. The resulting bytes (wrapped in a
// string) form a hash-consed group key: equal value sequences produce
// equal keys, distinct sequences distinct keys.
func (it *Interner) AppendKey(dst []byte, vals []ir.Value) []byte {
	for _, v := range vals {
		id := it.ID(v)
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dst
}
