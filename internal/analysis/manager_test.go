package analysis_test

import (
	"testing"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

func managerTestFunc(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	m := lower(t, `
int f(int *a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += a[i];
	return s;
}`)
	return m, m.FindFunc("f")
}

func TestManagerCachesAnalyses(t *testing.T) {
	_, f := managerTestFunc(t)
	am := analysis.NewManager()
	fi := am.Info(f)
	if fi != am.Info(f) {
		t.Fatal("Info returned distinct FuncInfo for the same function")
	}
	u1, u2 := fi.Users(), fi.Users()
	if len(u1) == 0 {
		t.Fatal("empty users map")
	}
	// Memoized accessors must return the same map, not a recomputation.
	u1[nil] = nil
	if _, ok := u2[nil]; !ok {
		t.Error("Users recomputed instead of memoized")
	}
	delete(u1, nil)
	i1 := fi.Index()
	i1[nil] = -1
	if _, ok := fi.Index()[nil]; !ok {
		t.Error("Index recomputed instead of memoized")
	}
	delete(i1, nil)
	if fi.Dom() != fi.Dom() {
		t.Error("Dom recomputed instead of memoized")
	}
	if fi.Interner() != fi.Interner() {
		t.Error("Interner recomputed instead of memoized")
	}
}

// TestManagerInvalidationContract is the ISSUE 4 contract test: a pass
// that mutates a function and invalidates it must observe fresh
// users/index analyses afterward — new instructions appear, deleted
// ones are gone.
func TestManagerInvalidationContract(t *testing.T) {
	_, f := managerTestFunc(t)
	am := analysis.NewManager()
	fi := am.Info(f)
	staleUsers := fi.Users()
	staleIndex := fi.Index()

	// Mutate: append a new add instruction to the entry block, using an
	// existing instruction result if one exists, else a param.
	entry := f.Blocks[0]
	var opnd ir.Value = f.Params[1]
	in := &ir.Instr{Op: ir.OpAdd, Name: f.Name + ".m", Typ: ir.I32,
		Operands: []ir.Value{opnd, opnd}, Parent: entry}
	entry.Instrs = append(entry.Instrs[:len(entry.Instrs)-1],
		in, entry.Instrs[len(entry.Instrs)-1])

	if _, ok := staleIndex[in]; ok {
		t.Fatal("stale index already knows the new instruction")
	}

	am.Invalidate(f)
	fresh := am.Info(f)
	if fresh == fi {
		t.Fatal("Invalidate did not drop the FuncInfo")
	}
	if _, ok := fresh.Index()[in]; !ok {
		t.Error("fresh index is missing the appended instruction")
	}
	if len(fresh.Users()[opnd]) != len(staleUsers[opnd])+1 {
		t.Errorf("fresh users[%v] = %d, want %d (stale %d plus the new use)",
			opnd, len(fresh.Users()[opnd]), len(staleUsers[opnd])+1, len(staleUsers[opnd]))
	}

	am.InvalidateAll()
	if am.Info(f) == fresh {
		t.Error("InvalidateAll did not drop the FuncInfo")
	}
}

func TestUncachedManagerNeverReuses(t *testing.T) {
	_, f := managerTestFunc(t)
	am := analysis.NewUncachedManager()
	if am.Info(f) == am.Info(f) {
		t.Error("uncached manager reused a FuncInfo")
	}
}

func TestInternerHashConsesConstants(t *testing.T) {
	it := analysis.NewInterner()
	a := ir.ConstInt(ir.I32, 7)
	b := ir.ConstInt(ir.I32, 7)
	c := ir.ConstInt(ir.I64, 7)
	d := ir.ConstInt(ir.I32, 8)
	if a == b {
		t.Fatal("test needs distinct objects")
	}
	if it.ID(a) != it.ID(b) {
		t.Error("structurally equal constants got distinct ids")
	}
	if it.ID(a) == it.ID(c) {
		t.Error("same literal, different type shared an id")
	}
	if it.ID(a) == it.ID(d) {
		t.Error("different literals shared an id")
	}
	// Named values intern by identity.
	p1 := &ir.Param{Name: "x", Typ: ir.I32}
	p2 := &ir.Param{Name: "x", Typ: ir.I32}
	if it.ID(p1) != it.ID(p1) {
		t.Error("id not stable")
	}
	if it.ID(p1) == it.ID(p2) {
		t.Error("distinct params shared an id")
	}
	k1 := it.AppendKey(nil, []ir.Value{a, p1})
	k2 := it.AppendKey(nil, []ir.Value{b, p1})
	k3 := it.AppendKey(nil, []ir.Value{p1, a})
	if string(k1) != string(k2) {
		t.Error("equal value sequences produced distinct keys")
	}
	if string(k1) == string(k3) {
		t.Error("order-swapped sequence produced the same key")
	}
}
