package faultpoint

// Network-shaped faults. The cluster's links (router → shard, shard →
// peer) are modeled as sites named by NetSite; Transport wraps an
// http.RoundTripper so every request crossing a link visits its site
// and can be delayed (KindStall), refused (KindError), or black-holed
// until the request's context expires (KindDrop). The chaos harness
// arms them with EnableSites("net:", ...), which leaves the pipeline
// and cache sites untouched.

import (
	"fmt"
	"net/http"
)

// NetSitePrefix is the namespace of network fault sites; arm all links
// at once with EnableSites(NetSitePrefix, opts).
const NetSitePrefix = "net:"

// NetSite names the fault site of the link to one shard.
func NetSite(shard string) string { return NetSitePrefix + shard }

// Transport is an http.RoundTripper that injects network faults on the
// links SiteFor recognizes. The zero value with a SiteFor is usable;
// requests SiteFor maps to "" pass through untouched.
type Transport struct {
	// Base performs the real round trip (nil = http.DefaultTransport).
	Base http.RoundTripper
	// SiteFor maps a request to its fault site, typically by host via
	// NetSite. Returning "" exempts the request.
	SiteFor func(*http.Request) string
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	site := ""
	if t.SiteFor != nil {
		site = t.SiteFor(req)
	}
	if site != "" {
		switch Fire(site, KindStall, KindError, KindDrop) {
		case KindError:
			// A fast refusal, like a connection reset by a dead peer.
			return nil, fmt.Errorf("faultpoint: injected refusal at %s", site)
		case KindDrop:
			// A partition: the packets just vanish. Nothing moves until
			// the caller's own deadline or hedge gives up on the link.
			<-req.Context().Done()
			return nil, fmt.Errorf("faultpoint: injected blackhole at %s: %w", site, req.Context().Err())
		}
		// KindStall already slept inside Fire; fall through to the real
		// round trip — a slow link, not a dead one.
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
