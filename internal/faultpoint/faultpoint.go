// Package faultpoint provides named fault-injection sites compiled into
// the compilation pipeline, the service engine, and the result cache.
//
// A site is a string name ("pass:licm", "engine:run", "cache:get").
// Code visits a site by calling Fire with the set of fault kinds it
// knows how to enact at that point; Fire decides — from deterministic
// arms installed with Arm, or from the seeded probability installed
// with Enable — whether a fault fires there and of which kind. When
// nothing is armed the fast path is a single atomic load, so shipping
// the sites compiled into production code costs nothing.
//
// The package powers the chaos test suite and `rolag-fuzz -chaos`,
// which assert the fail-soft pipeline's contract: no process crash,
// verifier-clean output, interpreter equivalence of degraded results,
// and a Degraded report exactly when a fault fired.
package faultpoint

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the kind of fault a site enacts.
type Kind int

const (
	// None means no fault fires at this visit.
	None Kind = iota
	// KindPanic makes the visiting code panic.
	KindPanic
	// KindStall makes Fire sleep for the configured stall duration
	// before returning, simulating a wedged pass or a slow dependency.
	KindStall
	// KindError makes the visiting code fail with an error.
	KindError
	// KindCorrupt makes the visiting code corrupt its in-flight IR so
	// the verifier (not the fault site) must catch the damage.
	KindCorrupt
	// KindDrop makes the visiting code black-hole the operation: at a
	// network site the request is swallowed until its context expires,
	// simulating a partition rather than a fast refusal.
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	case KindDrop:
		return "drop"
	}
	return "unknown"
}

// ParseKind parses a kind name as used in arm specs.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return KindPanic, nil
	case "stall":
		return KindStall, nil
	case "error":
		return KindError, nil
	case "corrupt":
		return KindCorrupt, nil
	case "drop":
		return KindDrop, nil
	}
	return None, fmt.Errorf("faultpoint: unknown kind %q (want panic, stall, error, corrupt or drop)", s)
}

// Well-known non-pass sites. Pass sites are named "pass:<pass name>" by
// the sandbox (internal/passes).
const (
	// EngineRun is visited by every service worker before compiling.
	EngineRun = "engine:run"
	// CacheGet is visited on every result-cache hit; an error fault
	// turns the hit into a miss.
	CacheGet = "cache:get"
	// CachePut is visited before storing a fresh result; an error fault
	// drops the store.
	CachePut = "cache:put"
)

// Options configures probabilistic arming of every site.
type Options struct {
	// Seed drives the draw sequence; runs with the same seed and the
	// same visit order fire identically.
	Seed int64
	// Prob is the per-visit fire probability in [0, 1].
	Prob float64
	// Kinds restricts the drawn kinds (default: all four).
	Kinds []Kind
	// Stall is how long KindStall sleeps (default 150ms). Chaos suites
	// must keep this above the sandbox pass budget so injected stalls
	// are observed as timeouts.
	Stall time.Duration
}

// DefaultStall is the stall duration when Options.Stall is zero.
const DefaultStall = 150 * time.Millisecond

type arm struct {
	kind  Kind
	count int // <= 0: every visit
}

// siteProb is one prefix-scoped probabilistic arming (EnableSites):
// unlike the global Enable it only fires at sites matching its prefix,
// so a cluster chaos run can shape the network without also injecting
// pipeline faults.
type siteProb struct {
	prefix string
	prob   float64
	kinds  []Kind
	rng    *rand.Rand
}

var (
	active atomic.Bool

	mu        sync.Mutex
	arms      map[string]*arm
	prob      float64
	probKinds []Kind
	rng       *rand.Rand
	siteProbs []*siteProb
	stall     time.Duration
	firedN    uint64
	firedBy   map[string]uint64
)

func init() { resetLocked() }

func resetLocked() {
	arms = make(map[string]*arm)
	prob = 0
	probKinds = nil
	rng = nil
	siteProbs = nil
	stall = DefaultStall
	firedN = 0
	firedBy = make(map[string]uint64)
}

// Enable arms every site probabilistically per o and activates the
// subsystem. Deterministic arms installed with Arm take precedence at
// their site.
func Enable(o Options) {
	mu.Lock()
	defer mu.Unlock()
	prob = o.Prob
	probKinds = o.Kinds
	if len(probKinds) == 0 {
		probKinds = []Kind{KindPanic, KindStall, KindError, KindCorrupt}
	}
	rng = rand.New(rand.NewSource(o.Seed))
	if o.Stall > 0 {
		stall = o.Stall
	}
	active.Store(true)
}

// EnableSites arms only the sites whose name starts with prefix
// probabilistically per o, and activates the subsystem. Later prefixes
// win on overlap; deterministic arms still take precedence at their
// site, and the global Enable probability never applies to a site a
// prefix covers. o.Stall, when set, adjusts the shared stall duration.
func EnableSites(prefix string, o Options) {
	mu.Lock()
	defer mu.Unlock()
	kinds := o.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindPanic, KindStall, KindError, KindCorrupt}
	}
	siteProbs = append([]*siteProb{{
		prefix: prefix,
		prob:   o.Prob,
		kinds:  kinds,
		rng:    rand.New(rand.NewSource(o.Seed)),
	}}, siteProbs...)
	if o.Stall > 0 {
		stall = o.Stall
	}
	active.Store(true)
}

// Arm installs a deterministic fault at one site: the next count visits
// that allow k fire it (count <= 0 means every visit). Arm activates
// the subsystem.
func Arm(site string, k Kind, count int) {
	mu.Lock()
	defer mu.Unlock()
	arms[site] = &arm{kind: k, count: count}
	active.Store(true)
}

// ArmSpec parses and installs a comma-separated arm list of the form
// "site=kind[:count]", e.g. "pass:licm=panic:2,engine:run=stall".
func ArmSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faultpoint: bad spec %q (want site=kind[:count])", part)
		}
		kindName, countStr, hasCount := strings.Cut(rest, ":")
		k, err := ParseKind(kindName)
		if err != nil {
			return err
		}
		count := 0
		if hasCount {
			count, err = strconv.Atoi(countStr)
			if err != nil {
				return fmt.Errorf("faultpoint: bad count in %q: %v", part, err)
			}
		}
		Arm(site, k, count)
	}
	return nil
}

// Reset disarms everything and zeroes the fired counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	resetLocked()
	active.Store(false)
}

// Pause deactivates firing (counters and arms are kept) and returns a
// function that reactivates it. Chaos drivers pause around baseline
// compilations. Not safe for concurrent pause/resume from multiple
// goroutines; chaos campaigns are single-threaded by design.
func Pause() (resume func()) {
	was := active.Swap(false)
	return func() { active.Store(was) }
}

// Active reports whether any faults can fire.
func Active() bool { return active.Load() }

// Fired returns the total number of faults fired since the last Reset.
func Fired() uint64 {
	mu.Lock()
	defer mu.Unlock()
	return firedN
}

// FiredAt returns how many faults fired at one site.
func FiredAt(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return firedBy[site]
}

// Fire visits a site. allowed lists the kinds the call site knows how
// to enact; a fault of any other kind neither fires nor is consumed.
// KindStall is enacted inside Fire (the call sleeps), every other
// returned kind must be enacted by the caller: panic on KindPanic,
// fail on KindError, corrupt the in-flight IR on KindCorrupt.
func Fire(site string, allowed ...Kind) Kind {
	if !active.Load() {
		return None
	}
	mu.Lock()
	k := None
	if a, ok := arms[site]; ok && kindAllowed(a.kind, allowed) {
		k = a.kind
		if a.count > 0 {
			a.count--
			if a.count == 0 {
				delete(arms, site)
			}
		}
	} else if sp := siteProbFor(site); sp != nil {
		if sp.prob > 0 && sp.rng.Float64() < sp.prob {
			k = drawKind(sp.rng, allowedOf(sp.kinds, allowed))
		}
	} else if rng != nil && prob > 0 && rng.Float64() < prob {
		k = drawKind(rng, allowedOf(probKinds, allowed))
	}
	if k != None {
		firedN++
		firedBy[site]++
	}
	d := stall
	mu.Unlock()
	if k == KindStall {
		time.Sleep(d)
	}
	return k
}

// siteProbFor returns the first (most recently installed) prefix
// arming covering site. Callers hold mu.
func siteProbFor(site string) *siteProb {
	for _, sp := range siteProbs {
		if strings.HasPrefix(site, sp.prefix) {
			return sp
		}
	}
	return nil
}

// drawKind picks uniformly from cands, None when empty.
func drawKind(r *rand.Rand, cands []Kind) Kind {
	switch len(cands) {
	case 0:
		return None
	case 1:
		return cands[0]
	}
	return cands[r.Intn(len(cands))]
}

func kindAllowed(k Kind, allowed []Kind) bool {
	for _, a := range allowed {
		if a == k {
			return true
		}
	}
	return false
}

func allowedOf(kinds, allowed []Kind) []Kind {
	var out []Kind
	for _, k := range kinds {
		if kindAllowed(k, allowed) {
			out = append(out, k)
		}
	}
	return out
}
