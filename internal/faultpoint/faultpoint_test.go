package faultpoint

import (
	"testing"
	"time"
)

func TestInactiveByDefault(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("active after Reset")
	}
	if k := Fire("pass:licm", KindPanic, KindError); k != None {
		t.Fatalf("fired %v with nothing armed", k)
	}
	if Fired() != 0 {
		t.Fatalf("fired counter %d after no-op visits", Fired())
	}
}

func TestArmCountsDown(t *testing.T) {
	defer Reset()
	Reset()
	Arm("pass:licm", KindError, 2)
	for i := 0; i < 2; i++ {
		if k := Fire("pass:licm", KindError); k != KindError {
			t.Fatalf("visit %d: got %v, want error", i, k)
		}
	}
	if k := Fire("pass:licm", KindError); k != None {
		t.Fatalf("arm survived its count: %v", k)
	}
	if got := FiredAt("pass:licm"); got != 2 {
		t.Fatalf("FiredAt = %d, want 2", got)
	}
	if Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", Fired())
	}
}

func TestArmSiteIsolation(t *testing.T) {
	defer Reset()
	Reset()
	Arm("pass:licm", KindError, 0) // every visit
	if k := Fire("pass:dce", KindError); k != None {
		t.Fatalf("fault leaked to another site: %v", k)
	}
	for i := 0; i < 3; i++ {
		if k := Fire("pass:licm", KindError); k != KindError {
			t.Fatalf("persistent arm stopped firing at visit %d: %v", i, k)
		}
	}
}

func TestArmKindFiltering(t *testing.T) {
	defer Reset()
	Reset()
	Arm("cache:get", KindCorrupt, 1)
	// The cache site only enacts errors; a corrupt arm must neither fire
	// nor be consumed there.
	if k := Fire("cache:get", KindError); k != None {
		t.Fatalf("disallowed kind fired: %v", k)
	}
	if Fired() != 0 {
		t.Fatal("disallowed kind consumed the arm")
	}
	if k := Fire("cache:get", KindError, KindCorrupt); k != KindCorrupt {
		t.Fatalf("arm gone after disallowed visit: %v", k)
	}
}

func TestArmSpec(t *testing.T) {
	defer Reset()
	Reset()
	if err := ArmSpec("pass:licm=panic:2, engine:run=stall"); err != nil {
		t.Fatal(err)
	}
	if k := Fire("pass:licm", KindPanic); k != KindPanic {
		t.Fatalf("licm arm missing: %v", k)
	}
	Enable(Options{Stall: time.Millisecond}) // keep the stall sleep short
	if k := Fire("engine:run", KindStall); k != KindStall {
		t.Fatalf("engine arm missing: %v", k)
	}

	for _, bad := range []string{"nonsense", "site=frob", "a=panic:x"} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted", bad)
		}
	}
}

func TestSeededProbabilityDeterministic(t *testing.T) {
	defer Reset()
	run := func() []Kind {
		Reset()
		Enable(Options{Seed: 7, Prob: 0.5, Stall: time.Microsecond})
		out := make([]Kind, 0, 64)
		for i := 0; i < 64; i++ {
			out = append(out, Fire("pass:x", KindPanic, KindStall, KindError, KindCorrupt))
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d diverged across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] != None {
			fired++
		}
	}
	// 64 visits at p=0.5: zero fires means the draw is broken.
	if fired == 0 {
		t.Fatal("no faults fired at p=0.5")
	}
}

func TestProbabilityRespectsAllowedKinds(t *testing.T) {
	defer Reset()
	Reset()
	Enable(Options{Seed: 1, Prob: 1, Kinds: []Kind{KindPanic}, Stall: time.Microsecond})
	// The site only enacts errors; a panic-only configuration must never
	// fire there.
	for i := 0; i < 16; i++ {
		if k := Fire("cache:put", KindError); k != None {
			t.Fatalf("kind outside the allowed set fired: %v", k)
		}
	}
}

func TestPauseResume(t *testing.T) {
	defer Reset()
	Reset()
	Arm("pass:licm", KindError, 0)
	resume := Pause()
	if Active() {
		t.Fatal("active while paused")
	}
	if k := Fire("pass:licm", KindError); k != None {
		t.Fatalf("fired while paused: %v", k)
	}
	resume()
	if !Active() {
		t.Fatal("not active after resume")
	}
	if k := Fire("pass:licm", KindError); k != KindError {
		t.Fatalf("arm lost across pause: %v", k)
	}
}

func TestResetClearsEverything(t *testing.T) {
	Arm("pass:licm", KindError, 0)
	Fire("pass:licm", KindError)
	Reset()
	if Active() || Fired() != 0 || FiredAt("pass:licm") != 0 {
		t.Fatalf("Reset left state: active=%v fired=%d", Active(), Fired())
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindPanic, KindStall, KindError, KindCorrupt} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("none"); err == nil {
		t.Error(`ParseKind("none") accepted; arms must name a real fault`)
	}
}
