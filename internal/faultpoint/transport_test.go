package faultpoint

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func netClient(srvHost, shard string) *http.Client {
	return &http.Client{Transport: &Transport{
		SiteFor: func(req *http.Request) string {
			if req.URL.Host == srvHost {
				return NetSite(shard)
			}
			return ""
		},
	}}
}

func TestTransportPassThroughWhenDisarmed(t *testing.T) {
	t.Cleanup(Reset)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	c := netClient(strings.TrimPrefix(srv.URL, "http://"), "shard-a")
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
}

func TestTransportRefusal(t *testing.T) {
	t.Cleanup(Reset)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	t.Cleanup(srv.Close)
	Arm(NetSite("shard-a"), KindError, 1)
	c := netClient(strings.TrimPrefix(srv.URL, "http://"), "shard-a")
	if _, err := c.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "injected refusal") {
		t.Fatalf("want injected refusal, got %v", err)
	}
	// The arm is consumed: the next request goes through.
	if _, err := c.Get(srv.URL); err != nil {
		t.Fatalf("second request: %v", err)
	}
}

// TestTransportDropBlocksUntilContext pins the partition shape: a
// dropped request must not fail fast — it hangs until the caller's
// context gives up, exactly like a real blackhole.
func TestTransportDropBlocksUntilContext(t *testing.T) {
	t.Cleanup(Reset)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	t.Cleanup(srv.Close)
	Arm(NetSite("shard-a"), KindDrop, 1)
	c := netClient(strings.TrimPrefix(srv.URL, "http://"), "shard-a")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the caller's deadline error, got %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("drop failed fast (%v); a partition must block until the context expires", d)
	}
}

// TestEnableSitesScoping pins that a "net:" prefix arming never fires
// at pipeline sites and that the global Enable never fires at sites a
// prefix covers.
func TestEnableSitesScoping(t *testing.T) {
	t.Cleanup(Reset)
	EnableSites(NetSitePrefix, Options{Seed: 1, Prob: 1, Kinds: []Kind{KindError}})
	if k := Fire(EngineRun, KindError); k != None {
		t.Fatalf("prefix arming fired at %s: %v", EngineRun, k)
	}
	if k := Fire(NetSite("shard-a"), KindStall, KindError, KindDrop); k != KindError {
		t.Fatalf("prefix arming did not fire at its own site: %v", k)
	}
	Reset()
	Enable(Options{Seed: 1, Prob: 1, Kinds: []Kind{KindError}})
	EnableSites(NetSitePrefix, Options{Seed: 1, Prob: 0})
	if k := Fire(NetSite("shard-a"), KindStall, KindError, KindDrop); k != None {
		t.Fatalf("global prob leaked into a prefix-covered site: %v", k)
	}
	if k := Fire(EngineRun, KindError); k != KindError {
		t.Fatalf("global prob stopped firing elsewhere: %v", k)
	}
}
