package interp

import (
	"fmt"
	"math"

	"rolag/internal/ir"
	"rolag/internal/passes"
)

// eval resolves an operand to its runtime value.
func (in *Interp) eval(v ir.Value, frame map[ir.Value]Val) (Val, error) {
	switch v := v.(type) {
	case *ir.IntConst:
		return IntVal(v.Val), nil
	case *ir.FloatConst:
		return FloatVal(v.Val), nil
	case *ir.NullConst:
		return IntVal(0), nil
	case *ir.UndefConst:
		return Val{}, nil
	case *ir.Global:
		return IntVal(in.globalAddr[v]), nil
	case *ir.Func:
		return Val{}, fmt.Errorf("interp: function values are not supported as data")
	case *ir.Param, *ir.Instr:
		val, ok := frame[v]
		if !ok {
			return Val{}, fmt.Errorf("interp: use of undefined value %s", v.Ident())
		}
		return val, nil
	}
	return Val{}, fmt.Errorf("interp: unknown value kind %T", v)
}

// execInstr executes a non-terminator instruction.
func (in *Interp) execInstr(instr *ir.Instr, frame map[ir.Value]Val) (Val, error) {
	ops := make([]Val, len(instr.Operands))
	for i, o := range instr.Operands {
		v, err := in.eval(o, frame)
		if err != nil {
			return Val{}, err
		}
		ops[i] = v
	}
	switch {
	case instr.Op.IsIntBinary():
		bits := instr.Typ.(ir.IntType).Bits
		v, ok := passes.FoldIntBinary(instr.Op, ops[0].I, ops[1].I, bits)
		if !ok {
			return Val{}, &Trap{Kind: TrapDivByZero}
		}
		return IntVal(v), nil
	case instr.Op.IsFloatBinary():
		f := passes.FoldFloatBinary(instr.Op, ops[0].F, ops[1].F)
		if instr.Typ.(ir.FloatType).Bits == 32 {
			f = float64(float32(f))
		}
		return FloatVal(f), nil
	case instr.Op == ir.OpICmp:
		return boolVal(passes.FoldICmp(instr.Pred, ops[0].I, ops[1].I)), nil
	case instr.Op == ir.OpFCmp:
		return boolVal(passes.FoldFCmp(instr.Pred, ops[0].F, ops[1].F)), nil
	case instr.Op == ir.OpAlloca:
		n := ops[0].I
		elem := int64(instr.Alloc.Size())
		if n < 0 || (elem > 0 && n > in.MaxMem/elem) {
			return Val{}, &Trap{Kind: TrapBadAlloca, Detail: fmt.Sprintf("count %d of %d-byte elements", n, elem)}
		}
		size := elem * n
		addr, err := in.Alloc(size, int64(instr.Alloc.Align()))
		if err != nil {
			return Val{}, err
		}
		// Zero the slot: allocas may be re-executed (loops) and the
		// bump allocator does not recycle, so fresh memory is zero
		// already, but be explicit for clarity.
		for i := addr; i < addr+size; i++ {
			in.mem[i] = 0
		}
		return IntVal(addr), nil
	case instr.Op == ir.OpLoad:
		return in.LoadTyped(ops[0].I, instr.Typ)
	case instr.Op == ir.OpStore:
		t := instr.Operand(1).Type().(ir.PointerType).Elem
		return Val{}, in.StoreTyped(ops[1].I, t, ops[0])
	case instr.Op == ir.OpGEP:
		return in.evalGEP(instr, ops)
	case instr.Op == ir.OpCall:
		return in.CallFunc(instr.Callee, ops)
	case instr.Op == ir.OpSelect:
		if ops[0].I != 0 {
			return ops[1], nil
		}
		return ops[2], nil
	case instr.Op.IsCast():
		return execCast(instr, ops[0])
	}
	return Val{}, fmt.Errorf("interp: unhandled opcode %s", instr.Op)
}

func (in *Interp) evalGEP(instr *ir.Instr, ops []Val) (Val, error) {
	base := ops[0].I
	pt := instr.Operand(0).Type().(ir.PointerType)
	cur := ir.Type(pt.Elem)
	addr := base + ops[1].I*int64(cur.Size())
	for i, idxVal := range ops[2:] {
		switch t := cur.(type) {
		case ir.ArrayType:
			addr += idxVal.I * int64(t.Elem.Size())
			cur = t.Elem
		case *ir.StructType:
			fc, ok := instr.Operand(i + 2).(*ir.IntConst)
			if !ok || fc.Val < 0 || int(fc.Val) >= len(t.Fields) {
				return Val{}, fmt.Errorf("interp: gep struct index is not a valid constant field")
			}
			fi := fc.Val
			addr += int64(t.FieldOffset(int(fi)))
			cur = t.Fields[fi]
		default:
			return Val{}, fmt.Errorf("interp: gep into non-aggregate %s", cur)
		}
	}
	return IntVal(addr), nil
}

func execCast(instr *ir.Instr, v Val) (Val, error) {
	from := instr.Operand(0).Type()
	switch instr.Op {
	case ir.OpTrunc, ir.OpSExt:
		bits := instr.Typ.(ir.IntType).Bits
		return IntVal(signExtendI(v.I, bits)), nil
	case ir.OpZExt:
		fromBits := from.(ir.IntType).Bits
		u := uint64(v.I)
		if fromBits < 64 {
			u &= (1 << uint(fromBits)) - 1
		}
		return IntVal(int64(u)), nil
	case ir.OpFPTrunc:
		return FloatVal(float64(float32(v.F))), nil
	case ir.OpFPExt:
		return v, nil
	case ir.OpFPToSI:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return IntVal(0), nil
		}
		return IntVal(int64(v.F)), nil
	case ir.OpSIToFP:
		f := float64(v.I)
		if instr.Typ.(ir.FloatType).Bits == 32 {
			f = float64(float32(f))
		}
		return FloatVal(f), nil
	case ir.OpPtrToInt:
		bits := instr.Typ.(ir.IntType).Bits
		return IntVal(signExtendI(v.I, bits)), nil
	case ir.OpIntToPtr, ir.OpBitcast:
		return v, nil
	}
	return Val{}, fmt.Errorf("interp: unhandled cast %s", instr.Op)
}

func signExtendI(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return v << shift >> shift
}

func boolVal(b bool) Val {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// callExtern dispatches a call to an external declaration. Registered
// host functions run directly. Unregistered ones get the default
// behaviour: the call is recorded in the trace and returns a value
// derived deterministically from the callee name and arguments, so that
// two executions are comparable.
//
// Pointer arguments are canonicalized by reading the first pointed-to
// element at call time: transformed code may place objects at different
// addresses than the original, so raw addresses must not influence the
// trace or the returned value, but pointed-to *contents* must.
func (in *Interp) callExtern(f *ir.Func, args []Val) (Val, error) {
	if h, ok := in.Externs[f.Name]; ok {
		ret, err := h(in, args)
		if err != nil {
			return Val{}, err
		}
		in.Trace = append(in.Trace, TraceEvent{Callee: f.Name, Args: in.canonArgs(f, args), Ret: ret})
		return ret, nil
	}
	canon := in.canonArgs(f, args)
	var ret Val
	switch f.Sig.Ret.(type) {
	case ir.IntType:
		ret = IntVal(hashArgs(f.Name, canon))
	case ir.FloatType:
		h := hashArgs(f.Name, canon)
		ret = FloatVal(float64(h%1000) / 7.0)
	case ir.PointerType:
		ret = IntVal(0)
	}
	in.Trace = append(in.Trace, TraceEvent{Callee: f.Name, Args: canon, Ret: ret})
	return ret, nil
}

// canonArgs replaces pointer-typed arguments by the value of their first
// pointed-to element (0 if unreadable), making traces comparable across
// address-layout changes.
func (in *Interp) canonArgs(f *ir.Func, args []Val) []Val {
	canon := make([]Val, len(args))
	for i, a := range args {
		pt, isPtr := f.Sig.Params[i].(ir.PointerType)
		if !isPtr {
			canon[i] = a
			continue
		}
		switch pt.Elem.(type) {
		case ir.IntType, ir.FloatType:
			if v, err := in.LoadTyped(a.I, pt.Elem); err == nil {
				canon[i] = v
				continue
			}
		}
		canon[i] = Val{}
	}
	return canon
}

// hashArgs derives a deterministic value from a callee name and argument
// list (FNV-style).
func hashArgs(name string, args []Val) int64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	for _, a := range args {
		u := uint64(a.I) ^ math.Float64bits(a.F)
		for s := 0; s < 64; s += 8 {
			mix(byte(u >> uint(s)))
		}
	}
	// Keep the value small so that int32 truncation in user code does
	// not change behaviour between equivalent programs.
	return int64(h % 100003)
}
