// Package interp implements an interpreter for the project's IR. It is
// used two ways: as the semantic-equivalence oracle in tests (the
// original and transformed functions must produce the same return value,
// memory contents and external-call trace on the same inputs) and to
// estimate runtime overhead for the paper's §V.D experiment via executed
// instruction counts.
package interp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"rolag/internal/ir"
)

// TrapKind classifies a defined runtime trap: a condition under which
// execution stops with a well-defined error instead of a Go panic or an
// unbounded hang. Traps make the interpreter safe to drive from a fuzzer
// — no input can take down or stall the harness.
type TrapKind int

// Trap kinds.
const (
	// TrapDivByZero is an integer division or remainder by zero.
	TrapDivByZero TrapKind = iota
	// TrapOutOfBounds is a memory access outside the allocated range
	// (including accesses through null or small invalid addresses).
	TrapOutOfBounds
	// TrapStepLimit means the execution fuel (MaxSteps) ran out.
	TrapStepLimit
	// TrapMemLimit means an allocation would exceed MaxMem.
	TrapMemLimit
	// TrapCallDepth means the call stack exceeded MaxDepth.
	TrapCallDepth
	// TrapBadAlloca is an alloca with a negative or absurd element count.
	TrapBadAlloca
)

func (k TrapKind) String() string {
	switch k {
	case TrapDivByZero:
		return "division by zero"
	case TrapOutOfBounds:
		return "out-of-bounds access"
	case TrapStepLimit:
		return "step limit exceeded"
	case TrapMemLimit:
		return "memory limit exceeded"
	case TrapCallDepth:
		return "call depth exceeded"
	case TrapBadAlloca:
		return "invalid alloca size"
	}
	return "unknown trap"
}

// Trap is a defined runtime error. It wraps no other error; use AsTrap to
// recover it from the (possibly annotated) error chain.
type Trap struct {
	Kind   TrapKind
	Detail string
}

func (t *Trap) Error() string {
	if t.Detail == "" {
		return "interp: trap: " + t.Kind.String()
	}
	return "interp: trap: " + t.Kind.String() + ": " + t.Detail
}

// AsTrap extracts a *Trap from an error chain.
func AsTrap(err error) (*Trap, bool) {
	var t *Trap
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

// IsResourceTrap reports whether err is a fuel, memory or call-depth
// trap — the traps whose trigger point legitimately differs between two
// equivalent programs (a rolled loop executes more instructions than its
// straight-line original).
func IsResourceTrap(err error) bool {
	t, ok := AsTrap(err)
	return ok && (t.Kind == TrapStepLimit || t.Kind == TrapMemLimit || t.Kind == TrapCallDepth)
}

// Val is a runtime value: integers and pointers in I (pointers are
// addresses), floats in F. The static type of the producing value selects
// the active field.
type Val struct {
	I int64
	F float64
}

// IntVal returns an integer Val.
func IntVal(v int64) Val { return Val{I: v} }

// FloatVal returns a floating-point Val.
func FloatVal(v float64) Val { return Val{F: v} }

// TraceEvent records one call to an external function.
type TraceEvent struct {
	Callee string
	Args   []Val
	Ret    Val
}

// ExternFunc is a host implementation of an external function.
type ExternFunc func(in *Interp, args []Val) (Val, error)

// Interp executes functions of one module against a flat memory.
type Interp struct {
	Mod *ir.Module
	// Externs maps external function names to host implementations.
	// Unregistered externals get the default behaviour: record a trace
	// event and return a value derived deterministically from the
	// arguments.
	Externs map[string]ExternFunc
	// Trace is the ordered log of external calls made during execution.
	Trace []TraceEvent
	// Steps counts executed instructions.
	Steps int64
	// MaxSteps is the execution fuel: the run traps with TrapStepLimit
	// once more than MaxSteps instructions execute (default 10M).
	MaxSteps int64
	// MaxMem bounds the flat memory in bytes; allocations beyond it trap
	// with TrapMemLimit (default 64 MiB).
	MaxMem int64
	// MaxDepth bounds the call stack; deeper calls trap with
	// TrapCallDepth (default 4096).
	MaxDepth int

	mem        []byte
	brk        int64
	depth      int
	spans      []span
	globalAddr map[*ir.Global]int64
	funcAddr   map[int64]*ir.Func
	nextFnAddr int64
}

// span is one live allocation. Accesses must fall entirely inside a
// single span; anything else traps with TrapOutOfBounds. Spans are
// separated by redZone bytes of unmapped address space so that
// out-of-bounds offsets land between objects instead of silently
// aliasing the next allocation — essential when the interpreter serves
// as a differential-testing oracle, where transformed modules lay
// objects out at different addresses.
type span struct{ start, end int64 }

// redZone is the guard gap between allocations.
const redZone = 4096

// New returns an interpreter for mod with globals laid out and
// initialized in memory.
func New(mod *ir.Module) (*Interp, error) {
	in := &Interp{
		Mod:        mod,
		Externs:    make(map[string]ExternFunc),
		MaxSteps:   10_000_000,
		MaxMem:     64 << 20,
		MaxDepth:   4096,
		mem:        make([]byte, 1<<16),
		brk:        16, // keep 0 (null) and small addresses invalid
		globalAddr: make(map[*ir.Global]int64),
		funcAddr:   make(map[int64]*ir.Func),
		nextFnAddr: -1024,
	}
	for _, g := range mod.Globals {
		addr, err := in.Alloc(int64(g.Elem.Size()), int64(g.Elem.Align()))
		if err != nil {
			return nil, fmt.Errorf("interp: allocating @%s: %w", g.Name, err)
		}
		in.globalAddr[g] = addr
		if g.Init != nil {
			if err := in.storeConst(addr, g.Elem, g.Init); err != nil {
				return nil, fmt.Errorf("interp: initializing @%s: %w", g.Name, err)
			}
		}
	}
	return in, nil
}

// Alloc reserves size bytes with the given alignment and returns the
// address. Memory grows as needed and is zero-initialized; growth past
// MaxMem traps with TrapMemLimit.
func (in *Interp) Alloc(size, align int64) (int64, error) {
	if size < 0 {
		return 0, &Trap{Kind: TrapBadAlloca, Detail: fmt.Sprintf("negative size %d", size)}
	}
	if align < 1 {
		align = 1
	}
	addr := (in.brk + align - 1) / align * align
	if size > in.MaxMem || addr > in.MaxMem-size {
		return 0, &Trap{Kind: TrapMemLimit, Detail: fmt.Sprintf("%d bytes at break %d (limit %d)", size, in.brk, in.MaxMem)}
	}
	in.spans = append(in.spans, span{start: addr, end: addr + size})
	in.brk = addr + size + redZone
	for int64(len(in.mem)) < addr+size {
		in.mem = append(in.mem, make([]byte, len(in.mem))...)
	}
	return addr, nil
}

// GlobalAddr returns the address of a global.
func (in *Interp) GlobalAddr(g *ir.Global) int64 { return in.globalAddr[g] }

// Mem returns the backing memory up to the last allocation. Tests use
// it to compare final state.
func (in *Interp) Mem() []byte {
	if len(in.spans) == 0 {
		return in.mem[:0]
	}
	return in.mem[:in.spans[len(in.spans)-1].end]
}

// checkRange traps unless [addr, addr+size) lies entirely inside one
// live allocation.
func (in *Interp) checkRange(addr, size int64) error {
	if addr < 16 || size < 0 {
		return &Trap{Kind: TrapOutOfBounds, Detail: fmt.Sprintf("address %d, size %d", addr, size)}
	}
	// Find the last span starting at or before addr; spans are sorted
	// because the bump allocator hands out monotonically increasing
	// addresses.
	i := sort.Search(len(in.spans), func(i int) bool { return in.spans[i].start > addr })
	if i == 0 || addr+size > in.spans[i-1].end {
		return &Trap{Kind: TrapOutOfBounds, Detail: fmt.Sprintf("address %d, size %d outside any allocation", addr, size)}
	}
	return nil
}

// LoadBytes copies size bytes at addr.
func (in *Interp) LoadBytes(addr, size int64) ([]byte, error) {
	if err := in.checkRange(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, in.mem[addr:addr+size])
	return out, nil
}

// StoreBytes writes b at addr.
func (in *Interp) StoreBytes(addr int64, b []byte) error {
	if err := in.checkRange(addr, int64(len(b))); err != nil {
		return err
	}
	copy(in.mem[addr:], b)
	return nil
}

// LoadTyped reads a scalar of type t at addr.
func (in *Interp) LoadTyped(addr int64, t ir.Type) (Val, error) {
	size := int64(t.Size())
	if err := in.checkRange(addr, size); err != nil {
		return Val{}, err
	}
	switch t := t.(type) {
	case ir.IntType:
		var u uint64
		switch t.Size() {
		case 1:
			u = uint64(in.mem[addr])
		case 2:
			u = uint64(binary.LittleEndian.Uint16(in.mem[addr:]))
		case 4:
			u = uint64(binary.LittleEndian.Uint32(in.mem[addr:]))
		default:
			u = binary.LittleEndian.Uint64(in.mem[addr:])
		}
		return IntVal(signExtend(u, t.Bits)), nil
	case ir.FloatType:
		if t.Bits == 32 {
			u := binary.LittleEndian.Uint32(in.mem[addr:])
			return FloatVal(float64(math.Float32frombits(u))), nil
		}
		u := binary.LittleEndian.Uint64(in.mem[addr:])
		return FloatVal(math.Float64frombits(u)), nil
	case ir.PointerType:
		return IntVal(int64(binary.LittleEndian.Uint64(in.mem[addr:]))), nil
	}
	return Val{}, fmt.Errorf("interp: load of non-scalar type %s", t)
}

// StoreTyped writes a scalar of type t at addr.
func (in *Interp) StoreTyped(addr int64, t ir.Type, v Val) error {
	size := int64(t.Size())
	if err := in.checkRange(addr, size); err != nil {
		return err
	}
	switch t := t.(type) {
	case ir.IntType:
		switch t.Size() {
		case 1:
			in.mem[addr] = byte(v.I)
		case 2:
			binary.LittleEndian.PutUint16(in.mem[addr:], uint16(v.I))
		case 4:
			binary.LittleEndian.PutUint32(in.mem[addr:], uint32(v.I))
		default:
			binary.LittleEndian.PutUint64(in.mem[addr:], uint64(v.I))
		}
		return nil
	case ir.FloatType:
		if t.Bits == 32 {
			binary.LittleEndian.PutUint32(in.mem[addr:], math.Float32bits(float32(v.F)))
			return nil
		}
		binary.LittleEndian.PutUint64(in.mem[addr:], math.Float64bits(v.F))
		return nil
	case ir.PointerType:
		binary.LittleEndian.PutUint64(in.mem[addr:], uint64(v.I))
		return nil
	}
	return fmt.Errorf("interp: store of non-scalar type %s", t)
}

func (in *Interp) storeConst(addr int64, t ir.Type, c ir.Const) error {
	switch c := c.(type) {
	case *ir.IntConst:
		return in.StoreTyped(addr, c.Typ, IntVal(c.Val))
	case *ir.FloatConst:
		return in.StoreTyped(addr, c.Typ, FloatVal(c.Val))
	case *ir.NullConst:
		return in.StoreTyped(addr, c.Typ, IntVal(0))
	case *ir.ZeroConst:
		return nil // memory is already zero
	case *ir.ArrayConst:
		elem := c.Typ.Elem
		for i, e := range c.Elems {
			if err := in.storeConst(addr+int64(i*elem.Size()), elem, e); err != nil {
				return err
			}
		}
		return nil
	case *ir.UndefConst:
		return nil
	}
	return fmt.Errorf("interp: unsupported constant initializer")
}

func signExtend(u uint64, bits int) int64 {
	if bits >= 64 {
		return int64(u)
	}
	shift := uint(64 - bits)
	return int64(u<<shift) >> shift
}

// Call executes the named function with the given arguments.
func (in *Interp) Call(name string, args ...Val) (Val, error) {
	f := in.Mod.FindFunc(name)
	if f == nil {
		return Val{}, fmt.Errorf("interp: no function @%s", name)
	}
	return in.CallFunc(f, args)
}

// CallFunc executes f with args.
func (in *Interp) CallFunc(f *ir.Func, args []Val) (Val, error) {
	if f.IsDecl() {
		return in.callExtern(f, args)
	}
	if len(args) != len(f.Params) {
		return Val{}, fmt.Errorf("interp: call @%s with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	if in.depth >= in.MaxDepth && in.MaxDepth > 0 {
		return Val{}, &Trap{Kind: TrapCallDepth, Detail: fmt.Sprintf("@%s at depth %d", f.Name, in.depth)}
	}
	in.depth++
	defer func() { in.depth-- }()
	frame := make(map[ir.Value]Val, f.NumInstrs()+len(args))
	for i, p := range f.Params {
		frame[p] = args[i]
	}
	savedBrk := in.brk // reclaim stack allocas on return
	defer func() { in.brk = savedBrk }()

	block := f.Entry()
	var prev *ir.Block
	for {
		next, ret, done, err := in.execBlock(f, block, prev, frame)
		if err != nil {
			return Val{}, err
		}
		if done {
			return ret, nil
		}
		prev, block = block, next
	}
}

func (in *Interp) execBlock(f *ir.Func, b, prev *ir.Block, frame map[ir.Value]Val) (next *ir.Block, ret Val, done bool, err error) {
	// Phis first, in parallel.
	phis := b.Phis()
	if len(phis) > 0 {
		vals := make([]Val, len(phis))
		for i, phi := range phis {
			inc, ok := phi.PhiIncoming(prev)
			if !ok {
				return nil, Val{}, false, fmt.Errorf("interp: phi %%%s has no incoming from %%%s", phi.Name, prev.Name)
			}
			v, err := in.eval(inc, frame)
			if err != nil {
				return nil, Val{}, false, err
			}
			vals[i] = v
		}
		for i, phi := range phis {
			frame[phi] = vals[i]
		}
		in.Steps += int64(len(phis))
	}
	for _, instr := range b.Instrs[len(phis):] {
		in.Steps++
		if in.Steps > in.MaxSteps {
			return nil, Val{}, false, &Trap{Kind: TrapStepLimit, Detail: "in @" + f.Name}
		}
		switch instr.Op {
		case ir.OpBr:
			return instr.Blocks[0], Val{}, false, nil
		case ir.OpCondBr:
			c, err := in.eval(instr.Operand(0), frame)
			if err != nil {
				return nil, Val{}, false, err
			}
			if c.I != 0 {
				return instr.Blocks[0], Val{}, false, nil
			}
			return instr.Blocks[1], Val{}, false, nil
		case ir.OpRet:
			if len(instr.Operands) == 0 {
				return nil, Val{}, true, nil
			}
			v, err := in.eval(instr.Operand(0), frame)
			if err != nil {
				return nil, Val{}, false, err
			}
			return nil, v, true, nil
		default:
			v, err := in.execInstr(instr, frame)
			if err != nil {
				return nil, Val{}, false, fmt.Errorf("%w\n  in @%s: %s", err, f.Name, instr)
			}
			if !ir.IsVoid(instr.Typ) {
				frame[instr] = v
			}
		}
	}
	return nil, Val{}, false, fmt.Errorf("interp: block %%%s fell through", b.Name)
}
