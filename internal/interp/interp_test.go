package interp_test

import (
	"strings"
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "i")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestMemoryLayoutTyped(t *testing.T) {
	m := ir.NewModule("mem")
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	addr, aerr := in.Alloc(64, 8)
	if aerr != nil {
		t.Fatal(aerr)
	}
	cases := []struct {
		typ ir.Type
		val interp.Val
	}{
		{ir.I8, interp.IntVal(-5)},
		{ir.I16, interp.IntVal(-1234)},
		{ir.I32, interp.IntVal(1 << 30)},
		{ir.I64, interp.IntVal(-(1 << 60))},
		{ir.F32, interp.FloatVal(1.5)},
		{ir.F64, interp.FloatVal(-2.25)},
		{ir.Ptr(ir.I8), interp.IntVal(4096)},
	}
	for _, c := range cases {
		if err := in.StoreTyped(addr, c.typ, c.val); err != nil {
			t.Fatalf("%s: store: %v", c.typ, err)
		}
		got, err := in.LoadTyped(addr, c.typ)
		if err != nil {
			t.Fatalf("%s: load: %v", c.typ, err)
		}
		if got != c.val {
			t.Errorf("%s: round-trip %+v -> %+v", c.typ, c.val, got)
		}
	}
	// Narrow loads sign-extend.
	if err := in.StoreTyped(addr, ir.I8, interp.IntVal(0xFF)); err != nil {
		t.Fatal(err)
	}
	got, _ := in.LoadTyped(addr, ir.I8)
	if got.I != -1 {
		t.Errorf("i8 0xFF loads as %d, want -1", got.I)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	m := ir.NewModule("mem")
	in, _ := interp.New(m)
	if _, err := in.LoadTyped(0, ir.I32); err == nil {
		t.Error("null load must fault")
	}
	if err := in.StoreTyped(4, ir.I64, interp.IntVal(1)); err == nil {
		t.Error("low-address store must fault")
	}
	if _, err := in.LoadTyped(1<<40, ir.I8); err == nil {
		t.Error("wild load must fault")
	}
}

func TestNullDerefInProgram(t *testing.T) {
	m := build(t, `int f() { int *p = (int*)0; return *p; }`)
	in, _ := interp.New(m)
	if _, err := in.Call("f"); err == nil {
		t.Error("null dereference must be reported")
	}
}

func TestStepLimit(t *testing.T) {
	m := build(t, `void f() { for (;;) { } }`)
	in, _ := interp.New(m)
	in.MaxSteps = 1000
	if _, err := in.Call("f"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("infinite loop must hit the step limit, got %v", err)
	}
}

func TestGlobalInitialization(t *testing.T) {
	m := build(t, `
int scalars = 7;
long wide = -1;
double d = 2.5;
int arr[4] = {1, 2, 3};
int f() { return scalars + arr[0] + arr[2] + arr[3] + (int)wide; }
double g() { return d; }`)
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := in.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 10 { // 7 + 1 + 3 + 0 + (-1)
		t.Errorf("f() = %d, want 10", v.I)
	}
	d, _ := in.Call("g")
	if d.F != 2.5 {
		t.Errorf("g() = %v", d.F)
	}
}

func TestDefaultExternDeterminism(t *testing.T) {
	m := build(t, `
extern int oracle(int x);
int f(int a) { return oracle(a); }`)
	run := func() (int64, int) {
		in, _ := interp.New(m)
		v, err := in.Call("f", interp.IntVal(5))
		if err != nil {
			t.Fatal(err)
		}
		return v.I, len(in.Trace)
	}
	v1, n1 := run()
	v2, n2 := run()
	if v1 != v2 || n1 != n2 {
		t.Error("default extern must be deterministic across runs")
	}
	in, _ := interp.New(m)
	a, _ := in.Call("f", interp.IntVal(5))
	b, _ := in.Call("f", interp.IntVal(6))
	if a == b {
		t.Error("different args should (very likely) give different results")
	}
}

func TestTracePointerCanonicalization(t *testing.T) {
	// Two layouts of the same logical program: addresses differ but the
	// pointed-to first element is what lands in the trace.
	m1 := build(t, `
extern void sink(int *p);
void f() { int x = 42; sink(&x); }`)
	m2 := build(t, `
extern void sink(int *p);
void f() { int pad0 = 1; int pad[9]; pad[0] = pad0; int x = 42; sink(&x); }`)
	h := &interp.Harness{}
	a, err := h.Run(m1, "f", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(m2, "f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != 1 || len(b.Trace) != 1 {
		t.Fatal("expected one trace event each")
	}
	if a.Trace[0].Args[0] != b.Trace[0].Args[0] {
		t.Errorf("canonicalized pointer args differ: %+v vs %+v", a.Trace[0].Args[0], b.Trace[0].Args[0])
	}
	if a.Trace[0].Args[0].I != 42 {
		t.Errorf("canonical arg = %+v, want pointee 42", a.Trace[0].Args[0])
	}
}

func TestHarnessSeededDeterminism(t *testing.T) {
	m := build(t, `
int f(int *a, int n) {
	int s = 0;
	for (int i = 0; i < 16; i++) s += a[i] * n;
	return s;
}`)
	h := &interp.Harness{}
	a, err := h.Run(m, "f", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(m, "f", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Equivalent(a, b); err != nil {
		t.Errorf("same seed must give identical observations: %v", err)
	}
	c, err := h.Run(m, "f", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ret == c.Ret {
		t.Log("note: different seeds gave same return (possible but unlikely)")
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	m1 := build(t, `int f(int *a) { a[0] = 1; return 5; }`)
	m2 := build(t, `int f(int *a) { a[0] = 2; return 5; }`)
	m3 := build(t, `int f(int *a) { a[0] = 1; return 6; }`)
	h := &interp.Harness{}
	o1, _ := h.Run(m1, "f", 1)
	o2, _ := h.Run(m2, "f", 1)
	o3, _ := h.Run(m3, "f", 1)
	if err := interp.Equivalent(o1, o2); err == nil {
		t.Error("differing memory writes must be detected")
	}
	if err := interp.Equivalent(o1, o3); err == nil {
		t.Error("differing return values must be detected")
	}
}

func TestStepsCounted(t *testing.T) {
	m := build(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	return s;
}`)
	in, _ := interp.New(m)
	if _, err := in.Call("f", interp.IntVal(10)); err != nil {
		t.Fatal(err)
	}
	ten := in.Steps
	in2, _ := interp.New(m)
	if _, err := in2.Call("f", interp.IntVal(100)); err != nil {
		t.Fatal(err)
	}
	if in2.Steps <= ten {
		t.Errorf("100 iterations (%d steps) should cost more than 10 (%d steps)", in2.Steps, ten)
	}
}

func TestRecursionReclaimsStack(t *testing.T) {
	m := build(t, `
int depth(int n) {
	int local[32];
	local[0] = n;
	if (n == 0) return 0;
	return depth(n - 1) + local[0];
}`)
	in, _ := interp.New(m)
	v, err := in.Call("depth", interp.IntVal(100))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 5050 {
		t.Errorf("depth(100) = %d, want 5050", v.I)
	}
	before := len(in.Mem())
	if _, err := in.Call("depth", interp.IntVal(100)); err != nil {
		t.Fatal(err)
	}
	if len(in.Mem()) > before {
		t.Error("stack frames not reclaimed between calls")
	}
}
